# Developer entry points; CI (.github/workflows/ci.yml) runs `make check`
# plus the `make bench-smoke` job.

GO ?= go

.PHONY: build test race vet check prop bench bench-smoke pages-guard bench-baseline bench-new benchstat bench-json bench-flat bench-parallel bench-grid scal serve smoke-server bench-service metrics-smoke journal-smoke mutate-smoke crash-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the whole tree — the parallel engine must stay
# race-clean. -short skips wall-clock speedup assertions.
race:
	$(GO) test -race -short ./...

check: build vet race prop metrics-smoke journal-smoke mutate-smoke crash-smoke

# Observability slice under the race detector: the obs metric/trace
# primitives (concurrent scrape-while-mutate, shared-trace Add) and the
# service-level reconciliation tests (trace sums == response stats,
# /metrics deltas == per-query stats, explain, slow-query log).
metrics-smoke:
	$(GO) test -race ./internal/obs/...
	$(GO) test -race -run 'TestTrace|TestMetrics|TestStreamTrace|TestExplainDoesNotExecute|TestSlowQueryLog|TestRequestLog' ./internal/service/...

# Introspection slice under the race detector: journal ring wraparound and
# slowest-K retention (concurrent joins included), stats reconciliation
# (journal record == response == /metrics deltas), JSONL sink round-trip,
# Chrome trace export golden fields, metrics-history sampling and window
# math, and the /debug/queries + /stats/history endpoints.
journal-smoke:
	$(GO) test -race -run 'TestJournal|TestDebugQueries|TestStatsHistory|TestExplainObserved|TestChromeTrace|TestRuntimeCollector|TestRingWraparound|TestWindow|TestStartStop' \
		./internal/obs/... ./internal/service/...

# Mutation slice under the race detector: the live-dataset surface —
# mutation batches vs the brute-force oracle across every algorithm,
# snapshot isolation (joins racing point mutations always see one clean
# version), subscription churn reconciliation (baseline + events == full
# recompute), the field-exact cache invalidation regression, and the
# panic-recovery middleware.
mutate-smoke:
	$(GO) test -race -run 'TestMutate|TestSubscribeChurn|TestCacheInvalidationExactNames|TestInstrumentPanicRecovery' \
		./internal/service/...

# Property-based equivalence harness (internal/check): the fixed seed
# matrix holding NM ≡ PM ≡ FM ≡ parallel ≡ grid ≡ brute, the delta
# maintenance oracle (incremental pair churn ≡ full recompute across the
# same seed matrix × insert/delete/update batches), plus the planner's
# algo-selection tests, under the race detector with a coverage profile
# over the whole module (CI uploads coverage.out).
prop:
	$(GO) test -race -coverprofile=coverage.out -coverpkg=./... \
		-run 'TestEquivalenceSeeds|TestInvariantSeeds|TestGeneratorShape|TestFlatPagedEquivalence|TestFlatStatsEquivalenceParallel|TestPlanSelection|TestIngestComputesSkew|TestConcurrentAutoAndGridJoins|TestDeltaSeeds|TestMutateSnapshotIsolationRace' \
		./internal/check/... ./internal/service/...

bench:
	$(GO) test -bench . -benchmem -run xxx ./...

# One iteration of every benchmark — catches bit-rot in bench code without
# paying for stable numbers. CI runs this on every push.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run xxx ./...

# Pages guard: recompute the Fig. 7 joins and assert pages/op is
# byte-identical to the committed BENCH_nmcij.json for NM/PM/FM, and that
# flat-storage NM emits the byte-identical pair sequence with zero page
# accesses. The paper's I/O metric must never move under CPU-side
# optimization (decode caching, pooling, flat arenas, geometric fast
# paths); CI fails the build if it does.
pages-guard:
	$(GO) test -run 'TestFig7PagesMatchBaseline|TestFlatModeZeroPages' -count 1 .

# benchstat workflow: record a baseline on the base commit, re-run on your
# branch, compare. BENCH_FILTER narrows the set; COUNT=10 gives benchstat
# enough samples for significance tests.
BENCH_FILTER ?= BenchmarkFig7_|BenchmarkParallel_SpeedupCurve
COUNT ?= 10
bench-baseline:
	$(GO) test -run xxx -bench '$(BENCH_FILTER)' -benchmem -count $(COUNT) . | tee bench-baseline.txt
bench-new:
	$(GO) test -run xxx -bench '$(BENCH_FILTER)' -benchmem -count $(COUNT) . | tee bench-new.txt
benchstat:
	@command -v benchstat >/dev/null || { \
		echo "benchstat not installed: go install golang.org/x/perf/cmd/benchstat@latest"; exit 1; }
	benchstat bench-baseline.txt bench-new.txt

# Machine-readable perf trajectory (ns/op, allocs/op, pages/op for Fig. 7
# and the parallel speedup curve) written to BENCH_nmcij.json.
bench-json:
	./scripts/bench_json.sh

# Paged-vs-flat storage comparison (Fig. 7 NM on both backends plus the
# arena build cost), written to BENCH_flat.json.
bench-flat:
	./scripts/bench_json.sh flat

# Multicore speedup curve (1/2/4/8 workers x paged/flat), written to
# BENCH_parallel.json; on a 1-CPU host the document records the skip
# reason instead of a misleading 1.0x curve.
bench-parallel:
	./scripts/bench_json.sh parallel

# Grid-vs-NM crossover at reduced scale, recorded in BENCH_grid.json
# (also part of bench-json).
bench-grid:
	$(GO) run ./cmd/cijbench -exp grid -scale 0.2

# Parallel scalability table at reduced scale.
scal:
	$(GO) run ./cmd/cijbench -exp scal -scale 0.1

# Run the CIJ query service locally with two demo datasets preloaded
# (README "Serving CIJ" has curl examples against it).
serve:
	$(GO) run ./cmd/cijserver -addr :8080 -preload "demo_p=uniform:20000,demo_q=clustered:20000"

# End-to-end server smoke: start cijserver, ingest, join, stream, assert.
# CI runs this on every push.
smoke-server:
	./scripts/smoke_server.sh

# Durability smoke: the in-process crash matrix (every fault point × every
# crash mode, under the race detector) plus the out-of-process one — start
# cijserver -data-dir, kill -9 it mid-mutation-stream, fsck, restart, and
# assert the recovered join matches the in-memory grid oracle and the
# SIGTERM cycle round-trips the clean-shutdown marker. Part of `make
# check`; CI runs it on every push.
crash-smoke:
	$(GO) test -race -run 'TestCrashMatrix|TestDurable|TestCheckpoint|TestWAL|TestFaultFS|TestPageFile|TestFsck|TestOpen' \
		./internal/check/... ./internal/service/... ./internal/storage/... ./internal/rtree/...
	./scripts/crash_smoke.sh

# Query-service load benchmark: sustained req/s at 1/4/16 concurrent join
# clients, written to BENCH_service.json (also part of bench-json).
bench-service:
	$(GO) run ./cmd/cijbench -exp serve -scale 0.02 -clients 1,4,16 -servejson BENCH_service.json
