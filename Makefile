# Developer entry points; CI (.github/workflows/ci.yml) runs `make check`
# plus the `make bench-smoke` job.

GO ?= go

.PHONY: build test race vet check bench bench-smoke bench-baseline bench-new benchstat bench-json scal

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the whole tree — the parallel engine must stay
# race-clean. -short skips wall-clock speedup assertions.
race:
	$(GO) test -race -short ./...

check: build vet race

bench:
	$(GO) test -bench . -benchmem -run xxx ./...

# One iteration of every benchmark — catches bit-rot in bench code without
# paying for stable numbers. CI runs this on every push.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run xxx ./...

# benchstat workflow: record a baseline on the base commit, re-run on your
# branch, compare. BENCH_FILTER narrows the set; COUNT=10 gives benchstat
# enough samples for significance tests.
BENCH_FILTER ?= BenchmarkFig7_|BenchmarkParallel_SpeedupCurve
COUNT ?= 10
bench-baseline:
	$(GO) test -run xxx -bench '$(BENCH_FILTER)' -benchmem -count $(COUNT) . | tee bench-baseline.txt
bench-new:
	$(GO) test -run xxx -bench '$(BENCH_FILTER)' -benchmem -count $(COUNT) . | tee bench-new.txt
benchstat:
	@command -v benchstat >/dev/null || { \
		echo "benchstat not installed: go install golang.org/x/perf/cmd/benchstat@latest"; exit 1; }
	benchstat bench-baseline.txt bench-new.txt

# Machine-readable perf trajectory (ns/op, allocs/op, pages/op for Fig. 7
# and the parallel speedup curve) written to BENCH_nmcij.json.
bench-json:
	./scripts/bench_json.sh

# Parallel scalability table at reduced scale.
scal:
	$(GO) run ./cmd/cijbench -exp scal -scale 0.1
