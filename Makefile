# Developer entry points; CI (.github/workflows/ci.yml) runs `make check`.

GO ?= go

.PHONY: build test race vet check bench scal

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the whole tree — the parallel engine must stay
# race-clean. -short skips wall-clock speedup assertions.
race:
	$(GO) test -race -short ./...

check: build vet race

bench:
	$(GO) test -bench . -run xxx ./...

# Parallel scalability table at reduced scale.
scal:
	$(GO) run ./cmd/cijbench -exp scal -scale 0.1
