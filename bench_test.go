// Benchmarks: one per table and figure of the paper's evaluation
// (Section V), at scales small enough for `go test -bench=.` to finish in
// minutes. cmd/cijbench runs the same experiments at paper scale. Custom
// metrics report the paper's units (page accesses, false-hit ratio, cell
// computations) alongside ns/op.
package cij_test

import (
	"math/rand"
	"runtime"
	"testing"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/exp"
	"cij/internal/joins"
	"cij/internal/parallel"
	"cij/internal/rtree"
	"cij/internal/storage"
	"cij/internal/voronoi"
)

const benchN = 8000 // per-set cardinality for the CIJ benches

func benchEnv(b *testing.B, np, nq int) *exp.Env {
	b.Helper()
	p := dataset.Uniform(np, 1)
	q := dataset.Uniform(nq, 2)
	return exp.BuildEnv(p, q, exp.DefaultPageSize, exp.DefaultBufferPct)
}

// --- Fig. 5: single Voronoi cell computation ---

func BenchmarkFig5_VoronoiCell_BFVor(b *testing.B) {
	pts := dataset.Uniform(50_000, 1)
	buf := storage.NewBuffer(storage.NewDisk(exp.DefaultPageSize), 0)
	tree := rtree.BulkLoadPoints(buf, pts, exp.Domain, 1)
	rng := rand.New(rand.NewSource(7))
	buf.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := rng.Intn(len(pts))
		voronoi.BFVor(tree, voronoi.Site{ID: int64(idx), Pt: pts[idx]}, exp.Domain)
	}
	b.ReportMetric(float64(buf.Stats().LogicalReads)/float64(b.N), "nodes/op")
}

func BenchmarkFig5_VoronoiCell_TPVor(b *testing.B) {
	pts := dataset.Uniform(50_000, 1)
	buf := storage.NewBuffer(storage.NewDisk(exp.DefaultPageSize), 0)
	tree := rtree.BulkLoadPoints(buf, pts, exp.Domain, 1)
	rng := rand.New(rand.NewSource(7))
	buf.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := rng.Intn(len(pts))
		voronoi.TPVor(tree, voronoi.Site{ID: int64(idx), Pt: pts[idx]}, exp.Domain, 1000)
	}
	b.ReportMetric(float64(buf.Stats().LogicalReads)/float64(b.N), "nodes/op")
}

// --- Fig. 6: full diagram computation ---

func benchDiagram(b *testing.B, batch bool) {
	pts := dataset.Uniform(20_000, 3)
	buf := storage.NewBuffer(storage.NewDisk(exp.DefaultPageSize), 1<<20)
	tree := rtree.BulkLoadPoints(buf, pts, exp.Domain, 1)
	buf.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batch {
			voronoi.ComputeDiagramBatch(tree, exp.Domain, func(voronoi.Cell) {})
		} else {
			voronoi.ComputeDiagramIter(tree, exp.Domain, func(voronoi.Cell) {})
		}
	}
	b.ReportMetric(float64(buf.Stats().LogicalReads)/float64(b.N), "nodes/op")
}

func BenchmarkFig6_Diagram_ITER(b *testing.B)  { benchDiagram(b, false) }
func BenchmarkFig6_Diagram_BATCH(b *testing.B) { benchDiagram(b, true) }

// --- Table II: BATCH on a clustered (real-like) dataset ---

func BenchmarkTable2_BatchRealLike_PA(b *testing.B) {
	pts, err := dataset.RealLike("PA", 0.2) // ~11.6K points
	if err != nil {
		b.Fatal(err)
	}
	buf := storage.NewBuffer(storage.NewDisk(exp.DefaultPageSize), 1<<20)
	tree := rtree.BulkLoadPoints(buf, pts, exp.Domain, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		voronoi.ComputeDiagramBatch(tree, exp.Domain, func(voronoi.Cell) {})
	}
}

// --- Fig. 7: the three CIJ algorithms (cost breakdown setting) ---

func benchCIJ(b *testing.B, algo func(*exp.Env) core.Result) {
	benchCIJSetup(b, nil, algo)
}

// benchCIJSetup is benchCIJ with an untimed per-iteration setup hook —
// the flat benches freeze the arena trees there, so the measured run is
// the join alone (matching how a server pays the freeze once at ingest,
// not per query).
func benchCIJSetup(b *testing.B, setup func(*exp.Env), algo func(*exp.Env) core.Result) {
	var pages int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env := benchEnv(b, benchN, benchN)
		if setup != nil {
			setup(env)
			// Setup allocated arena-scale garbage (the frozen trees'
			// sources); collect it now so the timed join does not pay
			// setup's GC debt.
			runtime.GC()
		}
		b.StartTimer()
		res := algo(env)
		pages += res.Stats.PageAccesses()
	}
	b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
}

func BenchmarkFig7_FMCIJ(b *testing.B) {
	benchCIJ(b, func(e *exp.Env) core.Result {
		return core.FMCIJ(e.RP, e.RQ, exp.Domain, core.Options{})
	})
}

func BenchmarkFig7_PMCIJ(b *testing.B) {
	benchCIJ(b, func(e *exp.Env) core.Result {
		return core.PMCIJ(e.RP, e.RQ, exp.Domain, core.Options{})
	})
}

func BenchmarkFig7_NMCIJ(b *testing.B) {
	benchCIJ(b, func(e *exp.Env) core.Result {
		return core.NMCIJ(e.RP, e.RQ, exp.Domain, core.Options{Reuse: true})
	})
}

// BenchmarkFig7_NMCIJ_Flat is the same join on flat (arena) storage: no
// page buffer, no per-read decode. The pages/op metric is structurally 0;
// the ns/op against BenchmarkFig7_NMCIJ is the decode-free speedup.
func BenchmarkFig7_NMCIJ_Flat(b *testing.B) {
	benchCIJSetup(b,
		func(e *exp.Env) { e.Flat() }, // freeze outside the timer
		func(e *exp.Env) core.Result {
			frp, frq := e.Flat()
			return core.NMCIJ(frp, frq, exp.Domain, core.Options{Reuse: true})
		})
}

// --- Fig. 8a: buffer size effect (NM-CIJ at two buffer settings) ---

func benchNMBuffer(b *testing.B, pct float64) {
	var pages int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env := benchEnv(b, benchN, benchN)
		env.SetBufferPct(pct)
		env.Reset()
		b.StartTimer()
		res := core.NMCIJ(env.RP, env.RQ, exp.Domain, core.Options{Reuse: true})
		pages += res.Stats.PageAccesses()
	}
	b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
}

func BenchmarkFig8a_Buffer0_5pct_NMCIJ(b *testing.B) { benchNMBuffer(b, 0.5) }
func BenchmarkFig8a_Buffer10pct_NMCIJ(b *testing.B)  { benchNMBuffer(b, 10) }

// --- Fig. 8b: scalability (NM-CIJ at two datasizes) ---

func BenchmarkFig8b_Scalability(b *testing.B) {
	for _, n := range []int{4000, 8000} {
		n := n
		b.Run("n="+itoa(n), func(b *testing.B) {
			var pages int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				env := benchEnv(b, n, n)
				b.StartTimer()
				res := core.NMCIJ(env.RP, env.RQ, exp.Domain, core.Options{Reuse: true})
				pages += res.Stats.PageAccesses()
			}
			b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
		})
	}
}

// --- Fig. 9a: cardinality ratio ---

func BenchmarkFig9a_Ratio(b *testing.B) {
	for _, r := range []exp.Ratio{{QPart: 1, PPart: 4}, {QPart: 1, PPart: 1}, {QPart: 4, PPart: 1}} {
		r := r
		b.Run(r.Label(), func(b *testing.B) {
			nq, np := r.Split(2 * benchN)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				env := benchEnv(b, np, nq)
				b.StartTimer()
				core.NMCIJ(env.RP, env.RQ, exp.Domain, core.Options{Reuse: true})
			}
		})
	}
}

// --- Fig. 9b: progressive output ---

func BenchmarkFig9b_Progress(b *testing.B) {
	var firstPairIO int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env := benchEnv(b, benchN, benchN)
		b.StartTimer()
		res := core.NMCIJ(env.RP, env.RQ, exp.Domain, core.Options{Reuse: true})
		for _, pt := range res.Stats.Progress {
			if pt.Pairs > 0 {
				firstPairIO += pt.PageAccesses
				break
			}
		}
	}
	b.ReportMetric(float64(firstPairIO)/float64(b.N), "pages-to-first-pairs/op")
}

// --- Fig. 10: false hit ratio ---

func BenchmarkFig10_FalseHits(b *testing.B) {
	var fhr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env := benchEnv(b, benchN, benchN)
		b.StartTimer()
		res := core.NMCIJ(env.RP, env.RQ, exp.Domain, core.Options{Reuse: true})
		fhr += res.Stats.FalseHitRatio()
	}
	b.ReportMetric(fhr/float64(b.N), "fhr/op")
}

// --- Fig. 11: reuse ablation ---

func benchReuse(b *testing.B, reuse bool) {
	var cells int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env := benchEnv(b, benchN, benchN)
		b.StartTimer()
		res := core.NMCIJ(env.RP, env.RQ, exp.Domain, core.Options{Reuse: reuse})
		cells += res.Stats.PCellsComputed
	}
	b.ReportMetric(float64(cells)/float64(b.N), "p-cells/op")
}

func BenchmarkFig11_Reuse(b *testing.B)   { benchReuse(b, true) }
func BenchmarkFig11_NoReuse(b *testing.B) { benchReuse(b, false) }

// --- Table III: real-like dataset pair ---

func BenchmarkTable3_PA_SC(b *testing.B) {
	pa, err := dataset.RealLike("PA", 0.1)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := dataset.RealLike("SC", 0.1)
	if err != nil {
		b.Fatal(err)
	}
	var pages int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env := exp.BuildEnv(sc, pa, exp.DefaultPageSize, exp.DefaultBufferPct)
		b.StartTimer()
		res := core.NMCIJ(env.RP, env.RQ, exp.Domain, core.Options{Reuse: true})
		pages += res.Stats.PageAccesses()
	}
	b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
}

// --- Parallel engine: speedup curve over serial NM-CIJ ---
//
// The workers=W wall-clock divided into BenchmarkFig7_NMCIJ's is the
// speedup curve; on a multicore machine 4 workers clear 1.5x comfortably
// (the scal experiment of cmd/cijbench prints the same curve as a table).

func benchParallel(b *testing.B, workers int, balanced, flat bool) {
	var setup func(*exp.Env)
	if flat {
		setup = func(e *exp.Env) { e.Flat() }
	}
	benchCIJSetup(b, setup, func(e *exp.Env) core.Result {
		rp, rq := e.RP, e.RQ
		if flat {
			rp, rq = e.Flat()
		}
		opts := parallel.DefaultOptions()
		opts.Workers = workers
		opts.Balanced = balanced
		opts.CollectPairs = false
		return parallel.Join(rp, rq, exp.Domain, opts)
	})
}

// BenchmarkParallel_SpeedupCurve measures workers=1/2/4/8 over both
// storage backends; `make bench-parallel` commits it as
// BENCH_parallel.json. Dividing each width's ns/op into its own
// workers=1 row gives the per-backend speedup curve — flat removes the
// shared-buffer decode work from the span, so it is the curve where
// multicore scaling is visible undiluted.
func BenchmarkParallel_SpeedupCurve(b *testing.B) {
	if runtime.GOMAXPROCS(0) == 1 {
		// A single-CPU host serializes every worker pool, so the "curve"
		// degenerates to 1.0x at all widths. Skipping keeps that
		// meaningless flat line out of BENCH_parallel.json (whose host
		// block records the CPU count and the skip reason precisely so
		// readers can interpret absences like this one).
		b.Skip("GOMAXPROCS=1: a speedup curve measured on one CPU records a misleading 1.0x everywhere")
	}
	for _, backend := range []struct {
		name string
		flat bool
	}{{"paged", false}, {"flat", true}} {
		backend := backend
		b.Run("storage="+backend.name, func(b *testing.B) {
			for _, w := range []int{1, 2, 4, 8} {
				w := w
				b.Run("workers="+itoa(w), func(b *testing.B) { benchParallel(b, w, false, backend.flat) })
			}
		})
	}
}

func BenchmarkParallel_Balanced4Workers(b *testing.B) { benchParallel(b, 4, true, false) }

// --- Baseline operators (Section II-A), for context ---

// Like the Fig. 7 benches (benchCIJ), the environment is rebuilt outside
// the timer for every iteration, so each run starts from a cold buffer —
// reusing one env across iterations made these numbers incomparable with
// the CIJ rows (warm LRU buffer, no page faults after the first run).

func BenchmarkBaseline_DistanceJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env := benchEnv(b, benchN, benchN)
		b.StartTimer()
		count := 0
		joins.DistanceJoin(env.RP, env.RQ, 100, func(joins.PointPair) { count++ })
	}
}

func BenchmarkBaseline_ClosestPairs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env := benchEnv(b, benchN, benchN)
		b.StartTimer()
		joins.ClosestPairs(env.RP, env.RQ, 100)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
