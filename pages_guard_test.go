// Pages guard: the paper's I/O metric is the whole point of the
// reproduction, so the Fig. 7 page counts are pinned to the committed
// BENCH_nmcij.json. CPU-side work — the decoded-node cache, geometric
// fast paths, allocation pooling — must never move a single page access;
// if it does, this test (run by the CI bench-smoke job and the regular
// suite) fails the build instead of letting the regression ship inside a
// "faster" benchmark record.
package cij_test

import (
	"encoding/json"
	"os"
	"testing"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/exp"
)

// benchDoc mirrors the shape of BENCH_nmcij.json (scripts/bench_json.sh).
type benchDoc struct {
	Benchmarks []struct {
		Name    string `json:"name"`
		PagesOp int64  `json:"pages_op"`
	} `json:"benchmarks"`
}

// TestFig7PagesMatchBaseline recomputes the Fig. 7 experiments at the
// benchmark cardinality and asserts byte-identical pages/op against the
// committed baseline for NM, PM and FM.
func TestFig7PagesMatchBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 7 joins; the bench-smoke CI job runs this without -short")
	}
	raw, err := os.ReadFile("BENCH_nmcij.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parsing BENCH_nmcij.json: %v", err)
	}
	want := map[string]int64{}
	for _, b := range doc.Benchmarks {
		want[b.Name] = b.PagesOp
	}

	algos := []struct {
		bench string
		run   func(e *exp.Env) core.Result
	}{
		{"BenchmarkFig7_NMCIJ", func(e *exp.Env) core.Result {
			return core.NMCIJ(e.RP, e.RQ, exp.Domain, core.Options{Reuse: true})
		}},
		{"BenchmarkFig7_PMCIJ", func(e *exp.Env) core.Result {
			return core.PMCIJ(e.RP, e.RQ, exp.Domain, core.Options{})
		}},
		{"BenchmarkFig7_FMCIJ", func(e *exp.Env) core.Result {
			return core.FMCIJ(e.RP, e.RQ, exp.Domain, core.Options{})
		}},
	}
	for _, a := range algos {
		baseline, ok := want[a.bench]
		if !ok {
			t.Fatalf("BENCH_nmcij.json has no record for %s", a.bench)
		}
		// Identical setup to benchCIJ in bench_test.go: fresh env, cold
		// buffer, fixed seeds.
		env := exp.BuildEnv(dataset.Uniform(benchN, 1), dataset.Uniform(benchN, 2),
			exp.DefaultPageSize, exp.DefaultBufferPct)
		got := a.run(env).Stats.PageAccesses()
		if got != baseline {
			t.Errorf("%s: pages/op = %d, committed baseline %d — an optimization moved the paper's I/O metric",
				a.bench, got, baseline)
		}
	}
}
