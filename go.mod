module cij

go 1.24
