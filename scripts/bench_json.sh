#!/usr/bin/env bash
# bench_json.sh — run benchmark sections and write the results as JSON,
# so the repo accumulates a machine-readable performance trajectory
# alongside the human-readable benchstat workflow (see README
# "Performance").
#
# Usage:
#   scripts/bench_json.sh                  # full run: BENCH_nmcij.json,
#                                          # BENCH_service.json, BENCH_grid.json
#   scripts/bench_json.sh flat             # BENCH_flat.json: paged-vs-flat
#                                          # Fig. 7 NM plus the arena build cost
#   scripts/bench_json.sh parallel         # BENCH_parallel.json: the speedup
#                                          # curve at 1/2/4/8 workers x both
#                                          # storage backends
#   scripts/bench_json.sh [out.json] [service_out.json] [grid_out.json]
#   BENCHTIME=5x scripts/bench_json.sh     # more iterations per bench
#   SERVE_SCALE=0.05 SERVE_DUR=5s scripts/bench_json.sh   # bigger serve run
#   GRID_SCALE=0.5 scripts/bench_json.sh                  # bigger grid sweep
#
# Each benchmark record carries ns/op, B/op, allocs/op and any custom
# units (the paper's pages/op, the flat benches' nodes/op); the service
# document carries sustained req/s and latency quantiles at 1/4/16
# concurrent join clients; the grid document carries the grid-vs-NM
# wall-clock crossover per distribution.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime=${BENCHTIME:-3x}

# Host metadata: a perf trajectory is uninterpretable without it — a flat
# parallel speedup curve is damning on a 32-core box and expected on a
# 1-CPU runner, and only the record itself can say which one measured it.
# The block comes from exp.Host() (via `cijbench -hostinfo`), the same
# source WriteServeJSON/WriteGridJSON embed, so all BENCH_*.json
# documents of one run describe the machine identically.
host_json=$(go run ./cmd/cijbench -hostinfo)

# bench_lines_json converts `go test -bench` output on stdin to a JSON
# benchmark array (one object per Benchmark line, custom units included).
bench_lines_json() {
	awk '
		/^Benchmark/ {
			if (n++) printf ",\n"
			name = $1
			sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
			printf "    {\"name\":\"%s\",\"iterations\":%s", name, $2
			for (i = 3; i + 1 <= NF; i += 2) {
				unit = $(i + 1)
				sub(/\/op$/, "", unit)
				gsub(/[^A-Za-z0-9]/, "_", unit)
				printf ",\"%s_op\":%s", unit, $i
			}
			printf "}"
		}
		END { printf "\n" }
	'
}

# doc_header emits the shared metadata preamble of a benchmark document.
doc_header() {
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "host": %s,\n' "$host_json"
	printf '  "benchtime": "%s",\n' "$benchtime"
}

case "${1:-}" in
flat)
	# Paged-vs-flat Fig. 7 NM join (same workload, the storage mode is the
	# only variable) plus the one-time arena build cost from the rtree
	# package — the amortization denominator of the flat speedup.
	out=BENCH_flat.json
	raw=$(go test -run xxx -bench 'BenchmarkFig7_NMCIJ$|BenchmarkFig7_NMCIJ_Flat$' \
		-benchmem -benchtime "$benchtime" .)
	raw_build=$(go test -run xxx -bench 'BenchmarkFlatBuild' \
		-benchmem -benchtime "$benchtime" ./internal/rtree)
	if ! grep -q '^Benchmark' <<<"$raw" || ! grep -q '^Benchmark' <<<"$raw_build"; then
		echo "bench_json.sh: flat benchmarks matched nothing; refusing to write an empty $out" >&2
		exit 1
	fi
	{
		doc_header
		printf '  "benchmarks": [\n'
		printf '%s\n%s\n' "$raw" "$raw_build" | bench_lines_json
		printf '  ]\n}\n'
	} >"$out"
	echo "wrote $out"
	exit 0
	;;
parallel)
	# The multicore speedup curve. On a 1-CPU host the benchmark skips
	# itself (a one-core "curve" is a misleading 1.0x line), and the
	# document records the skip and the host that forced it instead of
	# silently recording nothing.
	out=BENCH_parallel.json
	raw=$(go test -run xxx -bench 'BenchmarkParallel_SpeedupCurve' \
		-benchmem -benchtime "$benchtime" .)
	{
		doc_header
		if grep -q '^Benchmark' <<<"$raw"; then
			printf '  "benchmarks": [\n'
			bench_lines_json <<<"$raw"
			printf '  ]\n}\n'
		else
			printf '  "benchmarks": [],\n'
			printf '  "skipped": "BenchmarkParallel_SpeedupCurve skipped: GOMAXPROCS=1 — a speedup curve measured on one CPU records a misleading 1.0x at every width; re-run make bench-parallel on a multicore host to fill this in"\n'
			printf '}\n'
		fi
	} >"$out"
	echo "wrote $out"
	exit 0
	;;
esac

out=${1:-BENCH_nmcij.json}
bench_filter='BenchmarkFig7_FMCIJ|BenchmarkFig7_PMCIJ|BenchmarkFig7_NMCIJ$|BenchmarkParallel_SpeedupCurve'

raw=$(go test -run xxx -bench "$bench_filter" \
	-benchmem -benchtime "$benchtime" .)

# A filter that matches nothing (renamed benchmarks, typo'd override)
# would silently produce an empty document that looks like a recorded
# regression-to-zero. Refuse to write it.
if ! grep -q '^Benchmark' <<<"$raw"; then
	echo "bench_json.sh: benchmark filter '$bench_filter' matched no benchmarks; refusing to write an empty $out" >&2
	exit 1
fi

{
	doc_header
	printf '  "benchmarks": [\n'
	bench_lines_json <<<"$raw"
	printf '  ]\n}\n'
} >"$out"

echo "wrote $out"

# Query-service throughput: sustained req/s at 1/4/16 concurrent clients
# against an in-process server (cache off, so every request executes a
# join). cijbench writes the JSON document itself.
service_out=${2:-BENCH_service.json}
go run ./cmd/cijbench -exp serve \
	-scale "${SERVE_SCALE:-0.02}" \
	-clients "${SERVE_CLIENTS:-1,4,16}" \
	-serveduration "${SERVE_DUR:-2s}" \
	-servejson "$service_out"

# Grid-vs-NM crossover: the in-memory backend against serial NM-CIJ on
# uniform and clustered data. cijbench writes the JSON document itself.
grid_out=${3:-BENCH_grid.json}
go run ./cmd/cijbench -exp grid \
	-scale "${GRID_SCALE:-0.2}" \
	-gridjson "$grid_out"
