#!/usr/bin/env bash
# bench_json.sh — run the Fig. 7 CIJ benchmarks and the parallel speedup
# curve and write the results as JSON (default: BENCH_nmcij.json), then run
# the query-service load benchmark and write BENCH_service.json — so the
# repo accumulates a machine-readable performance trajectory alongside the
# human-readable benchstat workflow (see README "Performance").
#
# Usage:
#   scripts/bench_json.sh [out.json] [service_out.json] [grid_out.json]
#   BENCHTIME=5x scripts/bench_json.sh        # more iterations per bench
#   SERVE_SCALE=0.05 SERVE_DUR=5s scripts/bench_json.sh   # bigger serve run
#   GRID_SCALE=0.5 scripts/bench_json.sh                  # bigger grid sweep
#
# Each benchmark record carries ns/op, B/op, allocs/op and the paper-unit
# pages/op; the service document carries sustained req/s and latency
# quantiles at 1/4/16 concurrent join clients; the grid document carries
# the grid-vs-NM wall-clock crossover per distribution.
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_nmcij.json}
benchtime=${BENCHTIME:-3x}
bench_filter='BenchmarkFig7_|BenchmarkParallel_SpeedupCurve'

raw=$(go test -run xxx -bench "$bench_filter" \
	-benchmem -benchtime "$benchtime" .)

# A filter that matches nothing (renamed benchmarks, typo'd override)
# would silently produce an empty document that looks like a recorded
# regression-to-zero. Refuse to write it.
if ! grep -q '^Benchmark' <<<"$raw"; then
	echo "bench_json.sh: benchmark filter '$bench_filter' matched no benchmarks; refusing to write an empty $out" >&2
	exit 1
fi

# Host metadata: a perf trajectory is uninterpretable without it — a flat
# parallel speedup curve is damning on a 32-core box and expected on a
# 1-CPU runner, and only the record itself can say which one measured it.
# The block comes from exp.Host() (via `cijbench -hostinfo`), the same
# source WriteServeJSON/WriteGridJSON embed, so all three BENCH_*.json
# documents of one run describe the machine identically.
host_json=$(go run ./cmd/cijbench -hostinfo)

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "host": %s,\n' "$host_json"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "benchmarks": [\n'
	echo "$raw" | awk '
		/^Benchmark/ {
			if (n++) printf ",\n"
			name = $1
			sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
			printf "    {\"name\":\"%s\",\"iterations\":%s", name, $2
			for (i = 3; i + 1 <= NF; i += 2) {
				unit = $(i + 1)
				sub(/\/op$/, "", unit)
				gsub(/[^A-Za-z0-9]/, "_", unit)
				printf ",\"%s_op\":%s", unit, $i
			}
			printf "}"
		}
		END { printf "\n" }
	'
	printf '  ]\n}\n'
} >"$out"

echo "wrote $out"

# Query-service throughput: sustained req/s at 1/4/16 concurrent clients
# against an in-process server (cache off, so every request executes a
# join). cijbench writes the JSON document itself.
service_out=${2:-BENCH_service.json}
go run ./cmd/cijbench -exp serve \
	-scale "${SERVE_SCALE:-0.02}" \
	-clients "${SERVE_CLIENTS:-1,4,16}" \
	-serveduration "${SERVE_DUR:-2s}" \
	-servejson "$service_out"

# Grid-vs-NM crossover: the in-memory backend against serial NM-CIJ on
# uniform and clustered data. cijbench writes the JSON document itself.
grid_out=${3:-BENCH_grid.json}
go run ./cmd/cijbench -exp grid \
	-scale "${GRID_SCALE:-0.2}" \
	-gridjson "$grid_out"
