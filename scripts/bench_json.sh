#!/usr/bin/env bash
# bench_json.sh — run the Fig. 7 CIJ benchmarks and the parallel speedup
# curve and write the results as JSON (default: BENCH_nmcij.json), so the
# repo accumulates a machine-readable performance trajectory alongside the
# human-readable benchstat workflow (see README "Performance").
#
# Usage:
#   scripts/bench_json.sh [out.json]
#   BENCHTIME=5x scripts/bench_json.sh     # more iterations per bench
#
# Each record carries ns/op, B/op, allocs/op and the paper-unit pages/op.
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_nmcij.json}
benchtime=${BENCHTIME:-3x}

raw=$(go test -run xxx -bench 'BenchmarkFig7_|BenchmarkParallel_SpeedupCurve' \
	-benchmem -benchtime "$benchtime" .)

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "benchmarks": [\n'
	echo "$raw" | awk '
		/^Benchmark/ {
			if (n++) printf ",\n"
			name = $1
			sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
			printf "    {\"name\":\"%s\",\"iterations\":%s", name, $2
			for (i = 3; i + 1 <= NF; i += 2) {
				unit = $(i + 1)
				sub(/\/op$/, "", unit)
				gsub(/[^A-Za-z0-9]/, "_", unit)
				printf ",\"%s_op\":%s", unit, $i
			}
			printf "}"
		}
		END { printf "\n" }
	'
	printf '  ]\n}\n'
} >"$out"

echo "wrote $out"
