#!/usr/bin/env bash
# smoke_server.sh — end-to-end smoke of cmd/cijserver: build and start the
# server, load two generated datasets, run a buffered join and a streamed
# join, and assert HTTP 200 with non-empty pairs; then exercise the
# introspection surface (query journal, metrics history, Chrome trace
# export). CI runs this on every push (`make smoke-server`); it needs only
# curl + grep/sed.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${PORT:-18080}
base="http://127.0.0.1:$PORT"
tmp=$(mktemp -d)
go build -o "$tmp/cijserver" ./cmd/cijserver

"$tmp/cijserver" -addr "127.0.0.1:$PORT" -history-interval 100ms \
  -journal "$tmp/journal.jsonl" >"$tmp/server.log" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

ready=
for _ in $(seq 1 100); do
  if curl -sf "$base/stats" >/dev/null 2>&1; then ready=1; break; fi
  sleep 0.1
done
[ -n "$ready" ] || { echo "server never became ready"; cat "$tmp/server.log"; exit 1; }

curl -sf -X POST "$base/datasets/a?gen=uniform&n=2000&seed=1" >/dev/null
curl -sf -X POST "$base/datasets/b?gen=clustered&n=2000&clusters=16&seed=2" >/dev/null

resp=$(curl -sf -X POST "$base/join" -H 'Content-Type: application/json' \
  -d '{"left":"a","right":"b","algo":"nm","topk":3}')
count=$(printf '%s' "$resp" | sed -n 's/.*"count":\([0-9][0-9]*\).*/\1/p')
if [ -z "$count" ] || [ "$count" -le 0 ]; then
  echo "join returned no pairs: $resp"
  exit 1
fi

# The cached repeat must say so.
printf '%s' "$(curl -sf -X POST "$base/join" -H 'Content-Type: application/json' \
  -d '{"left":"a","right":"b","algo":"nm","topk":3}')" | grep -q '"cached":true' || {
  echo "repeat join was not served from cache"
  exit 1
}

# The NDJSON stream ends in a summary line.
curl -sf "$base/join/stream?left=a&right=b&algo=parallel&workers=2&topk=5" \
  | tail -n 1 | grep -q '"type":"summary"' || {
  echo "stream did not end with a summary line"
  exit 1
}

# The in-memory grid backend answers over HTTP and agrees on cardinality
# with the NM join above (same datasets, same pair set).
grid_count=$(curl -sf -X POST "$base/join" -H 'Content-Type: application/json' \
  -d '{"left":"a","right":"b","algo":"grid","topk":3}' \
  | sed -n 's/.*"count":\([0-9][0-9]*\).*/\1/p')
if [ -z "$grid_count" ] || [ "$grid_count" != "$count" ]; then
  echo "grid join count $grid_count disagrees with nm count $count"
  exit 1
fi

curl -sf "$base/stats" | grep -q '"joins_served":4' || {
  echo "stats did not report 4 joins served"
  exit 1
}

# --- observability surface ---

# ?explain=1 returns the plan without executing (joins_served must not move).
curl -sf -X POST "$base/join?explain=1" -H 'Content-Type: application/json' \
  -d '{"left":"a","right":"b"}' | grep -q '"reason"' || {
  echo "explain did not return a reason"
  exit 1
}
curl -sf "$base/stats" | grep -q '"joins_served":4' || {
  echo "explain executed a join"
  exit 1
}

# A traced join carries the per-phase trace block.
curl -sf -X POST "$base/join" -H 'Content-Type: application/json' \
  -d '{"left":"a","right":"b","algo":"pm","topk":1,"trace":true}' | grep -q '"trace":{' || {
  echo "traced join returned no trace block"
  exit 1
}

# /metrics is parseable Prometheus text exposition with the core families
# present and the I/O counters moved by the joins above.
metrics=$(curl -sf "$base/metrics")
for family in cij_http_requests_total cij_joins_total cij_join_seconds_bucket \
              cij_pages_read_total cij_logical_reads_total cij_planner_decisions_total; do
  printf '%s\n' "$metrics" | grep -q "^$family" || {
    echo "metrics family $family missing"
    exit 1
  }
done
# Every sample line: metric_name{optional="labels"} value.
bad=$(printf '%s\n' "$metrics" | grep -v '^#' \
  | grep -Ev '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$' || true)
if [ -n "$bad" ]; then
  echo "unparseable metrics lines:"
  printf '%s\n' "$bad"
  exit 1
fi
pages=$(printf '%s\n' "$metrics" | sed -n 's/^cij_pages_read_total \([0-9][0-9]*\).*/\1/p')
if [ -z "$pages" ] || [ "$pages" -le 0 ]; then
  echo "cij_pages_read_total did not move: '$pages'"
  exit 1
fi

# Runtime, build and cache-counter families are exported too.
for family in go_goroutines go_heap_inuse_bytes go_gc_pause_seconds_bucket \
              process_uptime_seconds cij_build_info cij_cache_hits_total \
              cij_cache_misses_total; do
  printf '%s\n' "$metrics" | grep -q "^$family" || {
    echo "metrics family $family missing"
    exit 1
  }
done

# --- query journal ---

# A fresh computed join gets a query ID; its journal record's stats block
# must be byte-identical to the response's.
join_resp=$(curl -sf -X POST "$base/join" -H 'Content-Type: application/json' \
  -d '{"left":"a","right":"b","algo":"fm","topk":1}')
qid=$(printf '%s' "$join_resp" | sed -n 's/.*"query_id":\([0-9][0-9]*\).*/\1/p')
if [ -z "$qid" ]; then
  echo "join response carries no query_id: $join_resp"
  exit 1
fi
resp_stats=$(printf '%s' "$join_resp" | sed -n 's/.*"stats":{\([^}]*\)}.*/\1/p')
journal_rec=$(curl -sf "$base/debug/queries/$qid")
rec_stats=$(printf '%s' "$journal_rec" | sed -n 's/.*"stats":{\([^}]*\)}.*/\1/p')
if [ -z "$resp_stats" ] || [ "$resp_stats" != "$rec_stats" ]; then
  echo "journal stats {$rec_stats} != response stats {$resp_stats}"
  exit 1
fi

# The listing endpoint filters and reports the total.
curl -sf "$base/debug/queries?algo=fm&limit=5" | grep -q '"algo":"fm"' || {
  echo "/debug/queries?algo=fm did not list the fm join"
  exit 1
}

# The journaled join's trace renders as Chrome trace-event JSON.
chrome=$(curl -sf "$base/debug/queries/$qid/trace.json")
for field in '"traceEvents"' '"ph"' '"ts"' '"dur"' '"pid"' '"tid"'; do
  printf '%s' "$chrome" | grep -q "$field" || {
    echo "trace.json lacks $field: $chrome"
    exit 1
  }
done

# The JSONL sink received one line per served join, replayable as JSON.
if [ ! -s "$tmp/journal.jsonl" ]; then
  echo "-journal sink file empty"
  exit 1
fi
grep -q "\"id\":$qid" "$tmp/journal.jsonl" || {
  echo "journal sink lacks query $qid"
  exit 1
}

# --- metrics history ---

# At -history-interval 100ms the self-scraper has taken several samples by
# now; the windowed view must report them plus the join traffic above.
sleep 0.3
history=$(curl -sf "$base/stats/history?window=1h")
samples=$(printf '%s' "$history" | sed -n 's/.*"samples":\([0-9][0-9]*\).*/\1/p')
if [ -z "$samples" ] || [ "$samples" -lt 2 ]; then
  echo "stats/history reports $samples samples, want >= 2: $history"
  exit 1
fi
for field in '"requests_per_sec"' '"joins_per_sec"' '"http_latency"' \
             '"cache_hit_ratio"' '"series"'; do
  printf '%s' "$history" | grep -q "$field" || {
    echo "stats/history lacks $field"
    exit 1
  }
done

# /stats carries the build block.
curl -sf "$base/stats" | grep -q '"build":{"go_version"' || {
  echo "/stats lacks build info"
  exit 1
}

# --- live mutation + subscription ---

# Subscribe to the (a, b) join's churn stream in the background, then
# mutate dataset a: an insert must surface as +pair events (a new point's
# Voronoi cell always intersects some opposite cell), deleting the same
# point must surface as -pair events, and the live count must be restored.
curl -sN "$base/join/subscribe?left=a&right=b" >"$tmp/churn.ndjson" &
subpid=$!
trap 'kill "$subpid" "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
ok=
for _ in $(seq 1 50); do
  if grep -q '"type":"subscribed"' "$tmp/churn.ndjson" 2>/dev/null; then ok=1; break; fi
  sleep 0.1
done
[ -n "$ok" ] || { echo "subscribe handshake never arrived"; cat "$tmp/churn.ndjson"; exit 1; }

mut=$(curl -sf -X POST "$base/datasets/a/points" -H 'Content-Type: application/json' \
  -d '{"insert":[{"x":5000,"y":5000}]}')
printf '%s' "$mut" | grep -q '"version":2' || {
  echo "insert did not bump the version: $mut"
  exit 1
}
new_id=$(printf '%s' "$mut" | sed -n 's/.*"inserted_ids":\[\([0-9][0-9]*\)\].*/\1/p')
if [ -z "$new_id" ]; then
  echo "insert response carries no inserted_ids: $mut"
  exit 1
fi
ok=
for _ in $(seq 1 50); do
  if grep -q '"type":"+pair"' "$tmp/churn.ndjson" 2>/dev/null; then ok=1; break; fi
  sleep 0.1
done
[ -n "$ok" ] || { echo "insert produced no +pair event"; cat "$tmp/churn.ndjson"; exit 1; }

curl -sf -X DELETE "$base/datasets/a/points/$new_id" | grep -q '"version":3' || {
  echo "delete did not bump the version"
  exit 1
}
ok=
for _ in $(seq 1 50); do
  if grep -q '"type":"-pair"' "$tmp/churn.ndjson" 2>/dev/null; then ok=1; break; fi
  sleep 0.1
done
[ -n "$ok" ] || { echo "delete produced no -pair event"; cat "$tmp/churn.ndjson"; exit 1; }

# Every mutation's event burst ends with one delta summary line.
deltas=$(grep -c '"type":"delta"' "$tmp/churn.ndjson" || true)
if [ "$deltas" -ne 2 ]; then
  echo "expected 2 delta summary lines, got $deltas"
  cat "$tmp/churn.ndjson"
  exit 1
fi

# Insert + delete of the same point restores the live count; the
# tombstone stays on the books.
curl -sf "$base/datasets" | grep -q '"name":"a","version":3,"points":2000,"tombstones":1' || {
  echo "dataset a did not return to 2000 live points with 1 tombstone"
  curl -sf "$base/datasets"
  exit 1
}

# The mutation surface is on the books: /stats and /metrics agree.
stats=$(curl -sf "$base/stats")
printf '%s' "$stats" | grep -q '"mutations":2' || {
  echo "/stats does not report 2 mutations: $stats"
  exit 1
}
printf '%s' "$stats" | grep -q '"delta_runs":2' || {
  echo "/stats does not report 2 delta runs: $stats"
  exit 1
}
metrics=$(curl -sf "$base/metrics")
for family in cij_mutations_total cij_delta_runs_total cij_pair_churn_total \
              cij_delta_seconds_bucket cij_panics_total; do
  printf '%s\n' "$metrics" | grep -q "^$family" || {
    echo "metrics family $family missing after mutations"
    exit 1
  }
done
printf '%s\n' "$metrics" | grep -q '^cij_delta_runs_total 2' || {
  echo "cij_delta_runs_total did not reach 2"
  exit 1
}

# A post-mutation full join answers from the new version (version-
# qualified cache keys make staleness structurally impossible).
curl -sf -X POST "$base/join" -H 'Content-Type: application/json' \
  -d '{"left":"a","right":"b","algo":"nm","topk":1}' | grep -q '"left_version":3' || {
  echo "post-mutation join did not execute against version 3"
  exit 1
}

kill "$subpid" 2>/dev/null || true

echo "server smoke OK: $count pairs, cache hit, stream summary, explain, trace, /metrics, journal, history and live mutation churn verified"
