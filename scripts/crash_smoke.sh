#!/usr/bin/env bash
# crash_smoke.sh — end-to-end durability smoke of cmd/cijserver: start the
# server with -data-dir, load datasets, kill -9 it in the middle of a
# mutation stream, fsck the directory, restart, and assert the recovered
# state is an exactly-installed version whose join agrees with the
# independent in-memory grid backend (the oracle: it recomputes from the
# recovered points, not the restored tree pages). Finishes with a SIGTERM
# cycle proving the clean-shutdown marker round-trips. CI runs this in the
# check job (`make crash-smoke`); it needs only curl + grep/sed.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${PORT:-18081}
base="http://127.0.0.1:$PORT"
tmp=$(mktemp -d)
data="$tmp/data"
go build -o "$tmp/cijserver" ./cmd/cijserver
go build -o "$tmp/cijtool" ./cmd/cijtool

start_server() {
  "$tmp/cijserver" -addr "127.0.0.1:$PORT" -data-dir "$data" >>"$tmp/server.log" 2>&1 &
  pid=$!
}
wait_ready() {
  for _ in $(seq 1 100); do
    if curl -sf "$base/stats" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "server never became ready"; cat "$tmp/server.log"; exit 1
}

start_server
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
wait_ready

curl -sf -X POST "$base/datasets/a?gen=uniform&n=2000&seed=1" >/dev/null
curl -sf -X POST "$base/datasets/b?gen=clustered&n=2000&clusters=16&seed=2" >/dev/null

# Stream mutation batches and kill -9 the server mid-stream. Every batch
# inserts exactly one point, so version v implies 2000 + (v - 1) live
# points — the invariant recovery is held to below.
acked=1
for i in $(seq 1 200); do
  resp=$(curl -sf -X POST "$base/datasets/a/points" -H 'Content-Type: application/json' \
    -d "{\"insert\":[{\"x\":$((i * 37 % 10000)),\"y\":$((i * 53 % 10000))}]}" || true)
  v=$(printf '%s' "$resp" | sed -n 's/.*"version":\([0-9][0-9]*\).*/\1/p')
  if [ -z "$v" ]; then break; fi
  acked=$v
  if [ "$i" -eq 23 ]; then
    kill -9 "$pid"   # mid-stream, no warning, no flush
    break
  fi
done
wait "$pid" 2>/dev/null || true
if [ "$acked" -lt 2 ]; then
  echo "no mutation was acknowledged before the kill"; exit 1
fi

# The directory must be recoverable as it stands (unclean is expected).
"$tmp/cijtool" fsck -data-dir "$data" >"$tmp/fsck1.out" || {
  echo "fsck failed on the crashed directory:"; cat "$tmp/fsck1.out"; exit 1
}
grep -q 'unclean shutdown' "$tmp/fsck1.out" || {
  echo "fsck did not flag the kill -9 as unclean:"; cat "$tmp/fsck1.out"; exit 1
}

# Restart on the same directory: every acknowledged batch must be back.
start_server
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
wait_ready

listing=$(curl -sf "$base/datasets")
rec_v=$(printf '%s' "$listing" | sed -n 's/.*"name":"a","version":\([0-9][0-9]*\).*/\1/p')
rec_pts=$(printf '%s' "$listing" | sed -n 's/.*"name":"a","version":[0-9]*,"points":\([0-9][0-9]*\).*/\1/p')
if [ -z "$rec_v" ] || [ "$rec_v" -lt "$acked" ]; then
  echo "recovered version $rec_v below acknowledged $acked: $listing"; exit 1
fi
if [ "$rec_pts" != $((2000 + rec_v - 1)) ]; then
  echo "recovered version $rec_v should hold $((2000 + rec_v - 1)) points, has $rec_pts"; exit 1
fi
grep -q '"clean_shutdown":false' "$tmp/server.log" || {
  echo "recovery log did not report the unclean shutdown"; exit 1
}

# Recovered join == oracle: nm reads the restored tree pages, grid
# recomputes from the recovered point set in memory. Same pair count or
# the restore corrupted something.
nm=$(curl -sf -X POST "$base/join" -H 'Content-Type: application/json' \
  -d '{"left":"a","right":"b","algo":"nm","topk":1}' \
  | sed -n 's/.*"count":\([0-9][0-9]*\).*/\1/p')
oracle=$(curl -sf -X POST "$base/join" -H 'Content-Type: application/json' \
  -d '{"left":"a","right":"b","algo":"grid","topk":1}' \
  | sed -n 's/.*"count":\([0-9][0-9]*\).*/\1/p')
if [ -z "$nm" ] || [ "$nm" != "$oracle" ]; then
  echo "recovered nm join ($nm pairs) disagrees with grid oracle ($oracle)"; exit 1
fi

# Graceful cycle: SIGTERM must flush, mark clean, and recover clean.
kill -TERM "$pid"
for _ in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$pid" 2>/dev/null && { echo "server ignored SIGTERM"; exit 1; }
"$tmp/cijtool" fsck -data-dir "$data" >"$tmp/fsck2.out" || {
  echo "fsck failed after graceful shutdown:"; cat "$tmp/fsck2.out"; exit 1
}
grep -q 'clean shutdown marker present' "$tmp/fsck2.out" || {
  echo "graceful shutdown left no clean marker:"; cat "$tmp/fsck2.out"; exit 1
}

start_server
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
wait_ready
grep -q '"clean_shutdown":true' "$tmp/server.log" || {
  echo "second boot did not log a clean recovery"; exit 1
}
final_v=$(curl -sf "$base/datasets" | sed -n 's/.*"name":"a","version":\([0-9][0-9]*\).*/\1/p')
if [ "$final_v" != "$rec_v" ]; then
  echo "clean restart changed the version: $rec_v -> $final_v"; exit 1
fi
kill -TERM "$pid"; wait "$pid" 2>/dev/null || true

echo "crash smoke OK: kill -9 at v$acked recovered to v$rec_v, join matches oracle, clean-shutdown cycle verified"
