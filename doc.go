// Package cij reproduces "Common Influence Join: A Natural Join Operation
// for Spatial Pointsets" (Yiu, Mamoulis, Karras; ICDE 2008) as a
// self-contained Go library.
//
// Given two planar pointsets P and Q, the common influence join CIJ(P,Q)
// returns every pair (p, q) whose Voronoi cells V(p,P) and V(q,Q)
// intersect: some location in space is simultaneously closer to p than to
// any other point of P and closer to q than to any other point of Q. The
// join is parameter-free — no distance threshold ε and no result count k.
//
// The implementation lives under internal/ (see README.md for the
// architecture): geometry (internal/geom), a simulated paged disk with an
// LRU buffer (internal/storage), a disk-resident R-tree
// (internal/rtree), single-traversal and batch Voronoi cell computation
// (internal/voronoi), the three CIJ evaluation algorithms FM/PM/NM
// (internal/core), a partition-parallel execution engine running NM-CIJ
// across a worker pool with exact result equivalence (internal/parallel),
// the traditional join operators used as baselines (internal/joins),
// dataset generators (internal/dataset), and the experiment harness
// regenerating every table and figure of the paper plus a parallel
// scalability experiment (internal/exp, driven by cmd/cijbench).
//
// Trees read their nodes through one of three storage modes: paged (the
// paper's byte format behind the LRU buffer — every access is page I/O),
// decode-cached (the same pages, with decoded nodes riding buffer
// residency), and flat (an immutable in-memory arena built by
// rtree.Tree.Freeze or rtree.FlatBulkLoadPoints — no pages, no decode,
// structurally zero I/O). All three emit the byte-identical pair
// sequence; they differ only in cost profile, and the query service's
// planner picks flat automatically for its in-memory datasets (README
// "Execution backends" documents the selection rules and the storage
// knob).
//
// The benchmarks in bench_test.go exercise one paper artifact each at
// reduced scale — including the parallel speedup curve — and cmd/cijbench
// runs them at paper scale.
package cij
