// Package cij reproduces "Common Influence Join: A Natural Join Operation
// for Spatial Pointsets" (Yiu, Mamoulis, Karras; ICDE 2008) as a
// self-contained Go library.
//
// Given two planar pointsets P and Q, the common influence join CIJ(P,Q)
// returns every pair (p, q) whose Voronoi cells V(p,P) and V(q,Q)
// intersect: some location in space is simultaneously closer to p than to
// any other point of P and closer to q than to any other point of Q. The
// join is parameter-free — no distance threshold ε and no result count k.
//
// The implementation lives under internal/ (see README.md for the
// architecture): geometry (internal/geom), a simulated paged disk with an
// LRU buffer (internal/storage), a disk-resident R-tree
// (internal/rtree), single-traversal and batch Voronoi cell computation
// (internal/voronoi), the three CIJ evaluation algorithms FM/PM/NM
// (internal/core), a partition-parallel execution engine running NM-CIJ
// across a worker pool with exact result equivalence (internal/parallel),
// the traditional join operators used as baselines (internal/joins),
// dataset generators (internal/dataset), and the experiment harness
// regenerating every table and figure of the paper plus a parallel
// scalability experiment (internal/exp, driven by cmd/cijbench).
//
// The benchmarks in bench_test.go exercise one paper artifact each at
// reduced scale — including the parallel speedup curve — and cmd/cijbench
// runs them at paper scale.
package cij
