// Ablation benchmarks for the design choices DESIGN.md calls out:
//   - Hilbert-ordered vs plain depth-first leaf visiting in NM-CIJ
//     (Section III-C's "tuned" traversal is what buys buffer locality);
//   - the Voronoi-cell reuse buffer (Section IV-B / Fig. 11);
//   - Hilbert packing vs STR bulk loading of the input trees;
//   - BF-VOR's best-first order vs the multi-traversal TP-VOR baseline
//     (the Fig. 5 comparison, exposed here as a bench pair).
package cij_test

import (
	"math/rand"
	"testing"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/exp"
	"cij/internal/rtree"
	"cij/internal/storage"
	"cij/internal/voronoi"
)

func benchNMVisitOrder(b *testing.B, plain bool) {
	// The input trees are STR-loaded: their stored leaf order differs
	// from Hilbert order (Hilbert-packed trees make the two traversals
	// identical, hiding the effect).
	p := dataset.Uniform(benchN, 1)
	q := dataset.Uniform(benchN, 2)
	var pages int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		buf := storage.NewBuffer(storage.NewDisk(exp.DefaultPageSize), 1<<30)
		rp := rtree.BulkLoadPointsSTR(buf, p, 1)
		rq := rtree.BulkLoadPointsSTR(buf, q, 1)
		// Buffer sized to ~the per-batch working set (a 2% buffer at this
		// reduced scale is a degenerate 9 pages; at paper scale 2% ≈ 100).
		buf.SetCapacity((rp.NumPages() + rq.NumPages()) / 10)
		buf.DropAll()
		buf.ResetStats()
		b.StartTimer()
		res := core.NMCIJ(rp, rq, exp.Domain, core.Options{Reuse: true, PlainVisitOrder: plain})
		pages += res.Stats.PageAccesses()
	}
	b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
}

func BenchmarkAblation_VisitOrder_Hilbert(b *testing.B) { benchNMVisitOrder(b, false) }
func BenchmarkAblation_VisitOrder_Plain(b *testing.B)   { benchNMVisitOrder(b, true) }

func benchBulkLoadQueries(b *testing.B, str bool) {
	pts := dataset.Uniform(30_000, 5)
	buf := storage.NewBuffer(storage.NewDisk(exp.DefaultPageSize), 64)
	var tree *rtree.Tree
	if str {
		tree = rtree.BulkLoadPointsSTR(buf, pts, 1)
	} else {
		tree = rtree.BulkLoadPoints(buf, pts, exp.Domain, 1)
	}
	rng := rand.New(rand.NewSource(6))
	buf.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := rng.Intn(len(pts))
		voronoi.BFVor(tree, voronoi.Site{ID: int64(idx), Pt: pts[idx]}, exp.Domain)
	}
	b.ReportMetric(float64(buf.Stats().LogicalReads)/float64(b.N), "nodes/op")
}

func BenchmarkAblation_BulkLoad_Hilbert(b *testing.B) { benchBulkLoadQueries(b, false) }
func BenchmarkAblation_BulkLoad_STR(b *testing.B)     { benchBulkLoadQueries(b, true) }
