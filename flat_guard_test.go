// Flat-storage guard: the companion of the pages guard. Flat mode's
// whole claim is "same join, same answer, zero page I/O" — so at the
// benchmark cardinality the flat run must emit the byte-identical pair
// sequence of the paged run while reporting no page accesses and no
// decode misses. If a flat-path change ever starts touching the page
// layer (or drifting the result), this test fails the build.
package cij_test

import (
	"testing"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/exp"
)

// TestFlatModeZeroPages runs NM-CIJ at the benchmark cardinality on both
// backends and pins the flat run's result and cost profile to the paged
// baseline.
func TestFlatModeZeroPages(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark-scale joins; `make pages-guard` and CI run this without -short")
	}
	env := exp.BuildEnv(dataset.Uniform(benchN, 1), dataset.Uniform(benchN, 2),
		exp.DefaultPageSize, exp.DefaultBufferPct)
	frp, frq := env.Flat()

	paged := core.NMCIJ(env.RP, env.RQ, exp.Domain, core.Options{Reuse: true})
	pagedIO := env.Buf.Stats()
	env.Reset()
	flat := core.NMCIJ(frp, frq, exp.Domain, core.Options{Reuse: true})
	flatIO := frp.Buffer().Stats()

	if len(flat.Pairs) != len(paged.Pairs) {
		t.Fatalf("flat emitted %d pairs, paged %d", len(flat.Pairs), len(paged.Pairs))
	}
	for i := range flat.Pairs {
		if flat.Pairs[i] != paged.Pairs[i] {
			t.Fatalf("pair %d: flat %v, paged %v — emission order diverged", i, flat.Pairs[i], paged.Pairs[i])
		}
	}
	if pages := flatIO.PageAccesses(); pages != 0 {
		t.Errorf("flat join performed %d page accesses, want 0", pages)
	}
	if flatIO.DecodeMisses != 0 {
		t.Errorf("flat join reported %d decode misses, want 0", flatIO.DecodeMisses)
	}
	if flatIO.DecodeHits != flatIO.LogicalReads {
		t.Errorf("flat join: %d decode hits vs %d logical reads, want equal (every read decode-free)",
			flatIO.DecodeHits, flatIO.LogicalReads)
	}
	if flatIO.LogicalReads != pagedIO.LogicalReads {
		t.Errorf("flat join read %d nodes, paged read %d — the traversals diverged",
			flatIO.LogicalReads, pagedIO.LogicalReads)
	}
	if pagedIO.PageAccesses() == 0 {
		t.Error("paged baseline reported zero page accesses — the guard is not guarding")
	}
}
