// Command cijtool runs ad hoc common-influence joins and Voronoi-cell
// computations over CSV pointsets.
//
// Subcommands:
//
//	cijtool gen   -kind uniform|clustered|PP|SC|CE|LO|PA -n 1000 -seed 1 -o pts.csv
//	cijtool join  -p restaurants.csv -q cinemas.csv [-algo nm|pm|fm|grid] [-pairs] [-json]
//	cijtool delta -p left.csv -q right.csv -insert "x,y;..." -delete "0,5" -update "3:x,y" [-verify]
//	cijtool vor   -p pts.csv -site 17
//	cijtool fsck  -data-dir /var/lib/cij
//
// Input CSVs are "x,y" lines; coordinates are normalized to the library's
// [0,10000]² domain before indexing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/delta"
	"cij/internal/exp"
	"cij/internal/geom"
	"cij/internal/grid"
	"cij/internal/obs"
	"cij/internal/service"
	"cij/internal/storage"
	"cij/internal/voronoi"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "join":
		err = runJoin(os.Args[2:])
	case "delta":
		err = runDelta(os.Args[2:])
	case "vor":
		err = runVor(os.Args[2:])
	case "fsck":
		err = runFsck(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "cijtool: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cijtool: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cijtool gen   -kind uniform|clustered|PP|SC|CE|LO|PA -n 1000 -seed 1 [-clusters 20] -o out.csv
  cijtool join  -p left.csv -q right.csv [-algo nm|pm|fm|grid] [-pairs] [-json] [-trace-out t.json] [-buffer 2]
  cijtool delta -p left.csv -q right.csv [-insert "x,y;..."] [-delete "0,5"] [-update "3:x,y;..."] [-verify] [-json]
  cijtool vor   -p pts.csv -site 0
  cijtool fsck  -data-dir /var/lib/cij [-json]`)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "uniform", "uniform, clustered, or a Table I code (PP/SC/CE/LO/PA)")
	n := fs.Int("n", 1000, "number of points (ignored for Table I datasets)")
	seed := fs.Int64("seed", 1, "random seed")
	clusters := fs.Int("clusters", 20, "cluster count for -kind clustered")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := dataset.Spec{Kind: *kind, N: *n, Clusters: *clusters, Seed: *seed}
	pts, err := spec.Generate()
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dataset.WriteCSV(w, pts)
}

func loadCSV(path string) ([]geom.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pts, err := dataset.ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("%s: no points", path)
	}
	return dataset.Normalize(pts), nil
}

func runJoin(args []string) error {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	pPath := fs.String("p", "", "CSV of pointset P")
	qPath := fs.String("q", "", "CSV of pointset Q")
	algo := fs.String("algo", "nm", "algorithm: nm, pm, fm, or grid (in-memory, no index)")
	storageMode := fs.String("storage", "", "node representation for nm: paged (LRU-buffered pages, the default) or flat (in-memory arena, zero page I/O)")
	showPairs := fs.Bool("pairs", false, "print every pair (indexes into the input files)")
	asJSON := fs.Bool("json", false, "emit the result as JSON on stdout (the query service's JoinResponse encoding)")
	withTrace := fs.Bool("trace", false, "record per-phase spans; printed to stderr, and embedded in -json output")
	traceOut := fs.String("trace-out", "", "write the phase trace as Chrome trace-event JSON to this file (implies -trace; open in chrome://tracing or Perfetto)")
	buffer := fs.Float64("buffer", exp.DefaultBufferPct, "LRU buffer, % of data size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceOut != "" {
		*withTrace = true
	}
	if *pPath == "" || *qPath == "" {
		return fmt.Errorf("join: -p and -q are required")
	}
	switch *storageMode {
	case "":
		// Algorithm default: paged for the tree algorithms, nothing for
		// grid (which indexes no pages at all).
	case "paged":
		if *algo == "grid" {
			return fmt.Errorf("join: -storage does not apply to the grid backend")
		}
	case "flat":
		if *algo != "nm" {
			return fmt.Errorf("join: -storage flat requires -algo nm (pm/fm materialize pages, grid has no tree)")
		}
	default:
		return fmt.Errorf("join: unknown storage %q (want paged or flat)", *storageMode)
	}
	p, err := loadCSV(*pPath)
	if err != nil {
		return err
	}
	q, err := loadCSV(*qPath)
	if err != nil {
		return err
	}
	var count int64
	onPair := func(pr core.Pair) {
		count++
		if *showPairs {
			fmt.Printf("%d\t%d\n", pr.P, pr.Q)
		}
	}

	var tr *obs.Trace
	if *withTrace {
		tr = obs.NewTrace()
	}
	var res core.Result
	var io storage.Stats
	var lowerBound int64
	var elapsed time.Duration
	if *algo == "grid" {
		// The in-memory backend needs no R-tree environment and performs
		// no page I/O; its lower bound is trivially zero.
		opts := grid.DefaultOptions()
		opts.CollectPairs = *asJSON
		opts.OnPair = onPair
		opts.Trace = tr
		start := time.Now()
		res = grid.Join(p, q, exp.Domain, opts)
		elapsed = time.Since(start)
	} else {
		env := exp.BuildEnv(p, q, exp.DefaultPageSize, *buffer)
		lowerBound = env.LowerBound()
		opts := core.DefaultOptions()
		opts.CollectPairs = *asJSON
		opts.OnPair = onPair
		opts.Trace = tr
		rp, rq := env.RP, env.RQ
		if *storageMode == "flat" {
			rp, rq = env.Flat() // one-shot freeze; the join reads arena nodes
		}
		start := time.Now()
		switch *algo {
		case "fm":
			res = core.FMCIJ(rp, rq, exp.Domain, opts)
		case "pm":
			res = core.PMCIJ(rp, rq, exp.Domain, opts)
		case "nm":
			res = core.NMCIJ(rp, rq, exp.Domain, opts)
		default:
			return fmt.Errorf("join: unknown algorithm %q", *algo)
		}
		elapsed = time.Since(start)
		io = res.Stats.Mat.Add(res.Stats.Join)
	}

	if *asJSON {
		// The service's response encoding, verbatim (service/encode.go):
		// one schema for CLI and server output.
		resp := service.NewJoinResponse(*pPath, *qPath, *algo, 0,
			res.Pairs, io, elapsed, 0)
		if *algo != "grid" {
			resp.Storage = *storageMode
			if resp.Storage == "" {
				resp.Storage = "paged"
			}
		}
		resp.Trace = service.NewTraceJSON(tr.Spans(), tr.Dropped())
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("join: -trace-out: %w", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		werr := enc.Encode(obs.ChromeTraceFromSpans(tr.Spans(), os.Getpid()))
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("join: -trace-out: %w", werr)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (load in chrome://tracing or Perfetto)\n", *traceOut)
	}

	fmt.Fprintf(os.Stderr, "CIJ(%s ⋈ %s) via %s-CIJ: %d pairs\n", *pPath, *qPath, *algo, count)
	fmt.Fprintf(os.Stderr, "I/O: %d page accesses (MAT %d + JOIN %d), LB %d; CPU %v\n",
		res.Stats.PageAccesses(), res.Stats.Mat.PageAccesses(), res.Stats.Join.PageAccesses(),
		lowerBound, elapsed.Round(time.Millisecond))
	if tr != nil {
		fmt.Fprintln(os.Stderr, "trace:")
		for _, sp := range tr.Spans() {
			name := sp.Phase
			if sp.Tag != "" {
				name += "/" + sp.Tag
			}
			fmt.Fprintf(os.Stderr, "  %-14s %10v  reads=%d writes=%d logical=%d cand=%d hits=%d\n",
				name, sp.Wall.Round(time.Microsecond),
				sp.PagesRead, sp.PagesWritten, sp.LogicalReads, sp.Candidates, sp.TrueHits)
		}
		if d := tr.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "  (%d spans folded into per-phase overflow rows)\n", d)
		}
	}
	return nil
}

// runDelta applies one mutation batch to pointset P and reports the join
// churn the delta engine computes — which (p, q) pairs appear and
// disappear — without recomputing the join. -verify re-runs two full NM
// joins and asserts the incremental answer matches their diff exactly.
func runDelta(args []string) error {
	fs := flag.NewFlagSet("delta", flag.ExitOnError)
	pPath := fs.String("p", "", "CSV of pointset P (the mutated side)")
	qPath := fs.String("q", "", "CSV of pointset Q")
	insert := fs.String("insert", "", `points to insert: "x,y;x,y;..." (normalized domain coordinates)`)
	deletes := fs.String("delete", "", `point IDs to delete: "0,5,17" (CSV line numbers of -p, 0-based)`)
	update := fs.String("update", "", `points to move: "id:x,y;id:x,y;..."`)
	verify := fs.Bool("verify", false, "also run full joins before and after and assert the churn matches their diff")
	asJSON := fs.Bool("json", false, "emit the churn as JSON on stdout")
	buffer := fs.Float64("buffer", exp.DefaultBufferPct, "LRU buffer, % of data size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pPath == "" || *qPath == "" {
		return fmt.Errorf("delta: -p and -q are required")
	}
	p, err := loadCSV(*pPath)
	if err != nil {
		return err
	}
	q, err := loadCSV(*qPath)
	if err != nil {
		return err
	}
	spec := service.MutationSpec{}
	if spec.Insert, err = parsePointList(*insert); err != nil {
		return fmt.Errorf("delta: -insert: %w", err)
	}
	if spec.Delete, err = parseIDList(*deletes); err != nil {
		return fmt.Errorf("delta: -delete: %w", err)
	}
	if spec.Update, err = parseMoveList(*update); err != nil {
		return fmt.Errorf("delta: -update: %w", err)
	}

	// The registry owns the mutation semantics (tombstoned IDs, COW
	// snapshot of the old version), so the CLI reports exactly what the
	// server would.
	reg := service.NewRegistry(*buffer)
	if _, err := reg.Put("p", p); err != nil {
		return err
	}
	qd, err := reg.Put("q", q)
	if err != nil {
		return err
	}
	start := time.Now()
	old, cur, changes, err := reg.Mutate("p", spec)
	if err != nil {
		return fmt.Errorf("delta: %w", err)
	}
	oldT, newT, otherT := old.View(), cur.View(), qd.View()
	res := delta.PairChurn(oldT, newT, otherT, changes, true, dataset.Domain)
	elapsed := time.Since(start)
	io := oldT.Buffer().Stats().Add(newT.Buffer().Stats()).Add(otherT.Buffer().Stats())

	if *asJSON {
		out := struct {
			Added         []core.Pair `json:"added"`
			Removed       []core.Pair `json:"removed"`
			AffectedSites int         `json:"affected_sites"`
			Probes        int         `json:"probes"`
			PageAccesses  int64       `json:"page_accesses"`
		}{res.Added, res.Removed, res.Affected, res.Probes, io.PageAccesses()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		for _, pr := range res.Removed {
			fmt.Printf("-pair\t%d\t%d\n", pr.P, pr.Q)
		}
		for _, pr := range res.Added {
			fmt.Printf("+pair\t%d\t%d\n", pr.P, pr.Q)
		}
	}
	fmt.Fprintf(os.Stderr, "delta(%s ⋈ %s): %d changes, +%d/-%d pairs, %d sites recomputed, %d probes\n",
		*pPath, *qPath, len(changes), len(res.Added), len(res.Removed), res.Affected, res.Probes)
	fmt.Fprintf(os.Stderr, "I/O: %d page accesses; CPU %v\n", io.PageAccesses(), elapsed.Round(time.Millisecond))

	if *verify {
		opts := core.DefaultOptions()
		opts.CollectPairs = true
		before := pairKeySet(core.NMCIJ(old.View(), qd.View(), exp.Domain, opts).Pairs)
		after := pairKeySet(core.NMCIJ(cur.View(), qd.View(), exp.Domain, opts).Pairs)
		bad := 0
		for _, pr := range res.Added {
			if before[pr] || !after[pr] {
				fmt.Fprintf(os.Stderr, "verify: spurious +pair %d,%d\n", pr.P, pr.Q)
				bad++
			}
		}
		for _, pr := range res.Removed {
			if !before[pr] || after[pr] {
				fmt.Fprintf(os.Stderr, "verify: spurious -pair %d,%d\n", pr.P, pr.Q)
				bad++
			}
		}
		churn := 0
		for pr := range after {
			if !before[pr] {
				churn++
			}
		}
		for pr := range before {
			if !after[pr] {
				churn++
			}
		}
		if got := len(res.Added) + len(res.Removed); bad > 0 || got != churn {
			return fmt.Errorf("verify: incremental churn (%d events, %d wrong) != full-recompute diff (%d events)", got, bad, churn)
		}
		fmt.Fprintln(os.Stderr, "verify: incremental churn matches the full-recompute diff exactly")
	}
	return nil
}

func pairKeySet(pairs []core.Pair) map[core.Pair]bool {
	set := make(map[core.Pair]bool, len(pairs))
	for _, pr := range pairs {
		set[pr] = true
	}
	return set
}

func parsePointList(s string) ([]geom.Point, error) {
	if s == "" {
		return nil, nil
	}
	var out []geom.Point
	for _, item := range strings.Split(s, ";") {
		var x, y float64
		if _, err := fmt.Sscanf(strings.TrimSpace(item), "%f,%f", &x, &y); err != nil {
			return nil, fmt.Errorf("bad point %q (want x,y)", item)
		}
		out = append(out, geom.Pt(x, y))
	}
	return out, nil
}

func parseIDList(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, item := range strings.Split(s, ",") {
		id, err := strconv.ParseInt(strings.TrimSpace(item), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad id %q", item)
		}
		out = append(out, id)
	}
	return out, nil
}

func parseMoveList(s string) ([]service.PointMove, error) {
	if s == "" {
		return nil, nil
	}
	var out []service.PointMove
	for _, item := range strings.Split(s, ";") {
		var id int64
		var x, y float64
		if _, err := fmt.Sscanf(strings.TrimSpace(item), "%d:%f,%f", &id, &x, &y); err != nil {
			return nil, fmt.Errorf("bad move %q (want id:x,y)", item)
		}
		out = append(out, service.PointMove{ID: id, Pt: geom.Pt(x, y)})
	}
	return out, nil
}

func runVor(args []string) error {
	fs := flag.NewFlagSet("vor", flag.ExitOnError)
	pPath := fs.String("p", "", "CSV of the pointset")
	site := fs.Int64("site", 0, "index of the point whose cell to compute")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pPath == "" {
		return fmt.Errorf("vor: -p is required")
	}
	p, err := loadCSV(*pPath)
	if err != nil {
		return err
	}
	if *site < 0 || int(*site) >= len(p) {
		return fmt.Errorf("vor: site %d out of range [0,%d)", *site, len(p))
	}
	env := exp.BuildEnv(p, p[:1], exp.DefaultPageSize, exp.DefaultBufferPct)
	cell := voronoi.BFVor(env.RP, voronoi.Site{ID: *site, Pt: p[*site]}, exp.Domain)
	fmt.Printf("site %d at %v\ncell area %.4g, %d vertices:\n", *site, p[*site], cell.Area(), len(cell.V))
	for _, v := range cell.V {
		fmt.Printf("  %.4f, %.4f\n", v.X, v.Y)
	}
	return nil
}
