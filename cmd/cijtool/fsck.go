package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cij/internal/service"
	"cij/internal/storage"
)

// runFsck verifies a cijserver data directory offline: manifest,
// snapshot checksums, deep tree rebuild of every dataset, and WAL
// replayability. Exit status 1 means the directory would not recover
// cleanly.
func runFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	dataDir := fs.String("data-dir", "", "data directory to verify (as given to cijserver)")
	asJSON := fs.Bool("json", false, "emit the full report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("fsck: -data-dir is required")
	}
	rep, err := service.Fsck(storage.OSFS{}, *dataDir)
	if err != nil {
		return fmt.Errorf("fsck: %v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		printFsckReport(rep)
	}
	if !rep.OK() {
		return fmt.Errorf("fsck: %d problem(s) found", len(rep.Problems))
	}
	return nil
}

func printFsckReport(rep *service.FsckReport) {
	switch {
	case rep.Fresh:
		fmt.Println("fresh directory: no manifest, nothing to verify")
		return
	case rep.CleanShutdown:
		fmt.Println("clean shutdown marker present")
	default:
		fmt.Println("unclean shutdown: recovery will replay the WAL tail")
	}
	for _, d := range rep.Datasets {
		fmt.Printf("dataset %-16s v%-3d %6d points  %6d pages x %dB  (%s)\n",
			d.Name, d.Version, d.Points, d.Pages, d.PageSize, d.File)
	}
	fmt.Printf("WAL: %d record(s): %d replayable, %d stale", rep.WALRecords, rep.WALReplayable, rep.WALStale)
	if rep.WALCorrupt > 0 {
		fmt.Printf(", %d corrupt", rep.WALCorrupt)
	}
	if rep.WALTornTail {
		fmt.Printf(", torn tail")
	}
	fmt.Println()
	for _, o := range rep.Orphans {
		fmt.Printf("orphan snapshot (ignored by recovery): %s\n", o)
	}
	if rep.OK() {
		fmt.Println("ok")
		return
	}
	for _, p := range rep.Problems {
		fmt.Printf("PROBLEM: %s\n", p)
	}
}
