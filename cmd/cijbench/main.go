// Command cijbench regenerates every table and figure of the CIJ paper's
// experimental evaluation (Section V) and prints paper-style tables.
//
// Usage:
//
//	cijbench -exp all                 # everything at paper scale (slow)
//	cijbench -exp fig7 -scale 0.1     # one experiment at 10% cardinality
//	cijbench -list                    # show available experiments
//
// Profiling (inspect with `go tool pprof cijbench <profile>`):
//
//	cijbench -exp fig7 -cpuprofile cpu.out    # CPU profile of the run
//	cijbench -exp fig7 -memprofile mem.out    # heap profile after the run
//
// Scale rescales dataset cardinalities; the qualitative shapes (who wins,
// by what factor, where curves converge) are stable across scales as long
// as the LRU buffer remains a few dozen pages — at very small scales raise
// -buffer accordingly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"cij/internal/exp"
)

type experiment struct {
	name string
	desc string
	run  func(cfg config) error
}

type config struct {
	scale     float64
	seed      int64
	buffer    float64
	workers   []int
	clients   []int
	serveAddr string
	serveDur  time.Duration
	serveJSON string
	gridJSON  string
}

func scaled(n int, cfg config) int {
	v := int(float64(n) * cfg.scale)
	if v < 100 {
		v = 100
	}
	return v
}

func scaledSizes(cfg config) []int {
	base := []int{100_000, 200_000, 400_000, 800_000}
	out := make([]int, len(base))
	for i, n := range base {
		out[i] = scaled(n, cfg)
	}
	return out
}

var experiments = []experiment{
	{"fig5", "BF-VOR vs TP-VOR: node accesses and CPU of single-cell computation", func(cfg config) error {
		res := exp.RunFig5(scaled(100_000, cfg), 100, cfg.seed)
		res.Table().Fprint(os.Stdout)
		return nil
	}},
	{"fig6", "ITER vs BATCH vs LB: full Voronoi diagram computation vs datasize", func(cfg config) error {
		rows := exp.RunFig6(scaledSizes(cfg), cfg.buffer, cfg.seed)
		exp.TableFig6(rows).Fprint(os.Stdout)
		return nil
	}},
	{"table1", "Table I: dataset inventory (real-like stand-ins)", func(cfg config) error {
		rows, err := exp.RunTable2(0.001, cfg.seed) // tiny run just to list datasets
		if err != nil {
			return err
		}
		for i := range rows {
			rows[i].N = int(float64(rows[i].N) * 1000 * cfg.scale) // report full-scale cardinality
		}
		exp.TableT1(rows).Fprint(os.Stdout)
		return nil
	}},
	{"table2", "Table II: BATCH diagram computation on real-like datasets", func(cfg config) error {
		rows, err := exp.RunTable2(cfg.scale, cfg.seed)
		if err != nil {
			return err
		}
		exp.TableT2(rows).Fprint(os.Stdout)
		return nil
	}},
	{"fig7", "Cost breakdown MAT vs JOIN for FM/PM/NM-CIJ", func(cfg config) error {
		rows := exp.RunFig7(scaled(100_000, cfg), cfg.seed)
		exp.TableFig7(rows).Fprint(os.Stdout)
		return nil
	}},
	{"fig8a", "I/O vs buffer size", func(cfg config) error {
		rows := exp.RunFig8a(scaled(100_000, cfg), []float64{0.5, 1, 2, 4, 8, 10}, cfg.seed)
		exp.TableSweep("Fig. 8a — page accesses vs buffer size", "buffer", rows).Fprint(os.Stdout)
		return nil
	}},
	{"fig8b", "I/O vs datasize", func(cfg config) error {
		rows := exp.RunFig8b(scaledSizes(cfg), cfg.seed)
		exp.TableSweep("Fig. 8b — page accesses vs datasize (|P|=|Q|)", "n", rows).Fprint(os.Stdout)
		return nil
	}},
	{"fig9a", "I/O vs cardinality ratio |Q|:|P|", func(cfg config) error {
		rows := exp.RunFig9a(scaled(200_000, cfg), exp.PaperRatios, cfg.seed)
		exp.TableSweep("Fig. 9a — page accesses vs ratio (|Q|+|P| fixed)", "|Q|:|P|", rows).Fprint(os.Stdout)
		return nil
	}},
	{"fig9b", "Progressive output: pairs vs page accesses", func(cfg config) error {
		res := exp.RunFig9b(scaled(100_000, cfg), cfg.seed)
		exp.TableFig9b(res).Fprint(os.Stdout)
		return nil
	}},
	{"fig10", "False hit ratio of the NM-CIJ filter", func(cfg config) error {
		rowsA := exp.RunFig10a(scaledSizes(cfg), cfg.seed)
		exp.TableFig10("Fig. 10a — false hit ratio vs datasize", "n", rowsA).Fprint(os.Stdout)
		rowsB := exp.RunFig10b(scaled(200_000, cfg), exp.PaperRatios, cfg.seed)
		exp.TableFig10("Fig. 10b — false hit ratio vs ratio", "|Q|:|P|", rowsB).Fprint(os.Stdout)
		return nil
	}},
	{"fig11", "Voronoi cell reuse in NM-CIJ (REUSE vs NO-REUSE)", func(cfg config) error {
		rowsA := exp.RunFig11a(scaledSizes(cfg), cfg.seed)
		exp.TableFig11("Fig. 11a — exact P-cells computed vs datasize", "n", rowsA).Fprint(os.Stdout)
		rowsB := exp.RunFig11b(scaled(200_000, cfg), exp.PaperRatios, cfg.seed)
		exp.TableFig11("Fig. 11b — exact P-cells computed vs ratio", "|Q|:|P|", rowsB).Fprint(os.Stdout)
		return nil
	}},
	{"grid", "Grid in-memory backend vs NM-CIJ: wall-clock crossover by distribution", func(cfg config) error {
		sizes := make([]int, len(exp.DefaultGridSizes))
		for i, n := range exp.DefaultGridSizes {
			sizes[i] = scaled(n, cfg)
		}
		rows := exp.RunGridCrossover(sizes, cfg.buffer, cfg.seed)
		exp.TableGrid(rows).Fprint(os.Stdout)
		if cfg.gridJSON != "" {
			f, err := os.Create(cfg.gridJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := exp.WriteGridJSON(f, rows, cfg.scale); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", cfg.gridJSON)
		}
		return nil
	}},
	{"scal", "Parallel NM-CIJ: wall-clock speedup vs worker count", func(cfg config) error {
		rows := exp.RunScalability(scaled(100_000, cfg), cfg.workers, cfg.seed)
		exp.TableScal(rows).Fprint(os.Stdout)
		return nil
	}},
	{"serve", "Query service load: sustained req/s vs concurrent join clients", func(cfg config) error {
		rows, err := exp.RunServeLoad(exp.ServeLoadOptions{
			Addr:     cfg.serveAddr,
			Clients:  cfg.clients,
			Duration: cfg.serveDur,
			N:        scaled(100_000, cfg),
			Seed:     cfg.seed,
		})
		if err != nil {
			return err
		}
		exp.TableServe(rows).Fprint(os.Stdout)
		if cfg.serveJSON != "" {
			f, err := os.Create(cfg.serveJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := exp.WriteServeJSON(f, rows, cfg.scale); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", cfg.serveJSON)
		}
		return nil
	}},
	{"table3", "Table III: CIJ on real-like dataset pairs", func(cfg config) error {
		rows, err := exp.RunTable3(cfg.scale)
		if err != nil {
			return err
		}
		exp.TableT3(rows).Fprint(os.Stdout)
		return nil
	}},
}

// parseWorkers parses the -workers list ("1,2,4,8") into worker counts.
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("want positive integers, got %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty worker list")
	}
	return out, nil
}

func main() {
	var (
		expName    = flag.String("exp", "", "experiment to run (see -list); 'all' runs everything")
		scale      = flag.Float64("scale", 1.0, "cardinality scale factor (1 = paper scale)")
		seed       = flag.Int64("seed", 2008, "random seed")
		buffer     = flag.Float64("buffer", exp.DefaultBufferPct, "LRU buffer size, % of data size")
		workers    = flag.String("workers", "1,2,4,8", "worker counts for the scal experiment (comma-separated)")
		clients    = flag.String("clients", "1,4,16", "client counts for the serve experiment (comma-separated)")
		serveAddr  = flag.String("serveaddr", "", "serve experiment: target a running cijserver instead of an in-process one")
		serveDur   = flag.Duration("serveduration", 2*time.Second, "serve experiment: duration per concurrency level")
		serveJSON  = flag.String("servejson", "", "serve experiment: also write rows as JSON to `file` (BENCH_service.json)")
		gridJSON   = flag.String("gridjson", "BENCH_grid.json", "grid experiment: write crossover rows as JSON to `file` (empty disables)")
		list       = flag.Bool("list", false, "list experiments and exit")
		hostInfo   = flag.Bool("hostinfo", false, "print the host-metadata JSON block (cpus, gomaxprocs, cpu model) and exit; scripts/bench_json.sh embeds it so every BENCH_*.json describes its machine identically")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to `file` (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the run to `file` (go tool pprof)")
	)
	flag.Parse()

	workerCounts, err := parseWorkers(*workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cijbench: -workers: %v\n", err)
		os.Exit(2)
	}
	clientCounts, err := parseWorkers(*clients)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cijbench: -clients: %v\n", err)
		os.Exit(2)
	}

	if *hostInfo {
		if err := json.NewEncoder(os.Stdout).Encode(exp.Host()); err != nil {
			fmt.Fprintf(os.Stderr, "cijbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *expName == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-8s %s\n", e.name, e.desc)
		}
		fmt.Println("  all      run every experiment")
		if *expName == "" && !*list {
			os.Exit(2)
		}
		return
	}

	// Profiling hooks, so paper-scale runs can be inspected directly with
	// `go tool pprof` instead of reconstructing the workload in a test.
	// runExperiments exits through a return code — never os.Exit — so the
	// profiles are finalized (StopCPUProfile, heap write) even when an
	// experiment fails; a truncated profile is useless.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cijbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cijbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := config{
		scale: *scale, seed: *seed, buffer: *buffer, workers: workerCounts,
		clients: clientCounts, serveAddr: *serveAddr, serveDur: *serveDur, serveJSON: *serveJSON,
		gridJSON: *gridJSON,
	}
	code := runExperiments(*expName, cfg)

	if *memprofile != "" {
		if err := writeHeapProfile(*memprofile); err != nil {
			fmt.Fprintf(os.Stderr, "cijbench: -memprofile: %v\n", err)
			if code == 0 {
				code = 2
			}
		}
	}
	if code != 0 {
		pprof.StopCPUProfile() // idempotent; flush before the exit below skips defers
		os.Exit(code)
	}
}

// runExperiments resolves expName and runs each selected experiment,
// returning a process exit code instead of exiting so main can finalize
// profiles.
func runExperiments(expName string, cfg config) int {
	names := strings.Split(expName, ",")
	if expName == "all" {
		names = names[:0]
		for _, e := range experiments {
			names = append(names, e.name)
		}
	}
	sort.Strings(names)

	for _, name := range names {
		found := false
		for _, e := range experiments {
			if e.name == name {
				found = true
				start := time.Now()
				fmt.Printf("\n### %s — %s (scale %g)\n", e.name, e.desc, cfg.scale)
				if err := e.run(cfg); err != nil {
					fmt.Fprintf(os.Stderr, "cijbench: %s: %v\n", name, err)
					return 1
				}
				fmt.Printf("[%s completed in %v]\n", e.name, time.Since(start).Round(time.Millisecond))
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "cijbench: unknown experiment %q (use -list)\n", name)
			return 2
		}
	}
	return 0
}

// writeHeapProfile snapshots the heap into path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation stats
	return pprof.WriteHeapProfile(f)
}
