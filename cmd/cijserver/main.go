// Command cijserver serves common-influence joins over HTTP: named
// versioned datasets, planned execution (serial NM/PM/FM or the
// partitioned parallel engine), a versioned LRU result cache, progressive
// NDJSON streaming and an observability surface (Prometheus-style
// /metrics, structured JSON logs, per-query phase traces, optional pprof).
// See internal/service for the architecture and the README "Serving CIJ"
// and "Observability" sections for curl examples.
//
// Usage:
//
//	cijserver -addr :8080
//	cijserver -addr :8080 -preload "a=uniform:20000,b=clustered:20000"
//	cijserver -addr :8080 -slow 250ms -log-level debug -debug
//	cijserver -addr :8080 -journal queries.jsonl -history-interval 5s
//	cijserver -addr :8080 -data-dir /var/lib/cij
//
// Preload specs are name=kind:n pairs (kind uniform or clustered, or a
// Table I code with no :n), loaded before the listener starts; names
// already restored from -data-dir are skipped.
//
// With -data-dir the server is durable: every ingest and mutation is
// snapshotted or write-ahead logged (and fsync'd) before it is
// acknowledged, and a restart — graceful or kill -9 — recovers the exact
// last-acknowledged state. See the README's "Durability" section.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cij/internal/dataset"
	"cij/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		admit    = flag.Int("admit", 0, "max concurrent join executions (0 = GOMAXPROCS)")
		cache    = flag.Int("cache", 0, "result cache entries (0 = default 64, -1 = disabled)")
		buffer   = flag.Float64("buffer", 0, "per-dataset LRU buffer, % of data pages (0 = paper's 2%)")
		storage  = flag.String("storage", "auto", "default storage for tree joins: auto (planner picks flat), paged, or flat")
		preload  = flag.String("preload", "", "datasets to load at startup: name=kind:n[,name=kind:n...]")
		slow     = flag.Duration("slow", 0, "slow-query threshold; joins slower than this log their full phase trace (0 = off)")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
		debug    = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")

		journal        = flag.String("journal", "", "append every query observation as a JSON line to this file (the planner-training corpus)")
		journalEntries = flag.Int("journal-entries", 0, "query-journal ring capacity (0 = default 512, -1 = journal disabled)")
		historyEvery   = flag.Duration("history-interval", 5*time.Second, "metrics-history sampling interval for /stats/history (0 = off)")

		dataDir       = flag.String("data-dir", "", "durable data directory: datasets and mutations survive restarts (empty = in-memory only)")
		checkpointWAL = flag.Int64("checkpoint-wal-bytes", 0, "fold the WAL into snapshots once it exceeds this many bytes (0 = default 4 MiB)")
	)
	flag.Parse()

	switch *storage {
	case "auto", "paged", "flat":
	default:
		fmt.Fprintf(os.Stderr, "cijserver: unknown -storage %q (want auto, paged or flat)\n", *storage)
		os.Exit(2)
	}

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cijserver: %v\n", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	cfg := service.Config{
		BufferPct:          *buffer,
		CacheEntries:       *cache,
		MaxConcurrent:      *admit,
		DefaultStorage:     *storage,
		Logger:             logger,
		SlowQuery:          *slow,
		JournalEntries:     *journalEntries,
		DataDir:            *dataDir,
		CheckpointWALBytes: *checkpointWAL,
	}
	if *journal != "" {
		if *journalEntries < 0 {
			fmt.Fprintf(os.Stderr, "cijserver: -journal needs the journal enabled (-journal-entries >= 0)\n")
			os.Exit(2)
		}
		sink, err := os.OpenFile(*journal, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cijserver: -journal: %v\n", err)
			os.Exit(2)
		}
		defer sink.Close()
		cfg.JournalSink = sink
		logger.Info("query journal sink enabled", "path", *journal)
	}

	svc, err := service.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cijserver: %v\n", err)
		os.Exit(1)
	}
	if err := preloadDatasets(svc, logger, *preload); err != nil {
		fmt.Fprintf(os.Stderr, "cijserver: %v\n", err)
		os.Exit(2)
	}
	if *historyEvery > 0 {
		stop := svc.History().Start(*historyEvery)
		defer stop()
		logger.Info("metrics history sampling", "interval", historyEvery.String())
	}

	handler := svc.Handler()
	if *debug {
		handler = withPprof(handler)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cijserver: %v\n", err)
		os.Exit(1)
	}
	logger.Info("cijserver listening", "addr", ln.Addr().String())

	srv := &http.Server{Handler: handler}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "cijserver: %v\n", err)
			os.Exit(1)
		}
	case s := <-sig:
		// Graceful shutdown: stop subscriber streams first (they are
		// long-lived and would hold Shutdown open), then drain in-flight
		// joins, then flush the durable tier — final checkpoint and
		// clean-shutdown marker — so the next boot recovers clean.
		logger.Info("cijserver shutting down", "signal", s.String())
		if n := svc.DrainSubscribers(); n > 0 {
			logger.Info("subscriber streams closed", "count", n)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("http drain incomplete", "err", err)
		}
	}
	if err := svc.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "cijserver: closing durable store: %v\n", err)
		os.Exit(1)
	}
	logger.Info("cijserver stopped")
}

// parseLevel maps the -log-level flag onto a slog level.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", s)
	}
}

// withPprof mounts the net/http/pprof handlers next to the service mux.
// Registration is explicit (not the package's init side effect on
// http.DefaultServeMux) so profiling stays opt-in via -debug.
func withPprof(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", next)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// preloadDatasets parses and loads -preload specs ("name=uniform:20000").
func preloadDatasets(svc *service.Service, logger *slog.Logger, specs string) error {
	if specs == "" {
		return nil
	}
	for i, part := range strings.Split(specs, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, genSpec, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("-preload entry %d: want name=kind:n, got %q", i, part)
		}
		if d, ok := svc.Registry().Get(name); ok {
			// Restored from the data directory; re-ingesting would burn a
			// version (and a snapshot write) on every restart.
			logger.Info("preload skipped, dataset restored", "name", name, "version", d.Version, "points", d.Live)
			continue
		}
		kind, nStr, hasN := strings.Cut(genSpec, ":")
		spec := dataset.Spec{Kind: kind, Seed: int64(9000 + i)}
		if hasN {
			n, err := strconv.Atoi(nStr)
			if err != nil {
				return fmt.Errorf("-preload %s: bad cardinality %q: %v", name, nStr, err)
			}
			spec.N = n
		}
		pts, err := spec.Generate()
		if err != nil {
			return fmt.Errorf("-preload %s: %v", name, err)
		}
		d, err := svc.Ingest(name, pts)
		if err != nil {
			return fmt.Errorf("-preload %s: %v", name, err)
		}
		logger.Info("preloaded dataset", "name", d.Name, "points", len(d.Points), "pages", d.Pages)
	}
	return nil
}
