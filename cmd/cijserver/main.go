// Command cijserver serves common-influence joins over HTTP: named
// versioned datasets, planned execution (serial NM/PM/FM or the
// partitioned parallel engine), a versioned LRU result cache and
// progressive NDJSON streaming. See internal/service for the architecture
// and the README "Serving CIJ" section for curl examples.
//
// Usage:
//
//	cijserver -addr :8080
//	cijserver -addr :8080 -preload "a=uniform:20000,b=clustered:20000"
//
// Preload specs are name=kind:n pairs (kind uniform or clustered, or a
// Table I code with no :n), loaded before the listener starts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cij/internal/dataset"
	"cij/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		admit   = flag.Int("admit", 0, "max concurrent join executions (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", 0, "result cache entries (0 = default 64, -1 = disabled)")
		buffer  = flag.Float64("buffer", 0, "per-dataset LRU buffer, % of data pages (0 = paper's 2%)")
		preload = flag.String("preload", "", "datasets to load at startup: name=kind:n[,name=kind:n...]")
	)
	flag.Parse()

	svc := service.New(service.Config{
		BufferPct:     *buffer,
		CacheEntries:  *cache,
		MaxConcurrent: *admit,
	})
	if err := preloadDatasets(svc, *preload); err != nil {
		fmt.Fprintf(os.Stderr, "cijserver: %v\n", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cijserver: %v\n", err)
		os.Exit(1)
	}
	log.Printf("cijserver listening on %s", ln.Addr())

	srv := &http.Server{Handler: logRequests(svc.Handler())}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "cijserver: %v\n", err)
			os.Exit(1)
		}
	case <-sig:
		log.Printf("cijserver shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
}

// preloadDatasets parses and loads -preload specs ("name=uniform:20000").
func preloadDatasets(svc *service.Service, specs string) error {
	if specs == "" {
		return nil
	}
	for i, part := range strings.Split(specs, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, genSpec, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("-preload entry %d: want name=kind:n, got %q", i, part)
		}
		kind, nStr, hasN := strings.Cut(genSpec, ":")
		spec := dataset.Spec{Kind: kind, Seed: int64(9000 + i)}
		if hasN {
			n, err := strconv.Atoi(nStr)
			if err != nil {
				return fmt.Errorf("-preload %s: bad cardinality %q: %v", name, nStr, err)
			}
			spec.N = n
		}
		pts, err := spec.Generate()
		if err != nil {
			return fmt.Errorf("-preload %s: %v", name, err)
		}
		d, err := svc.Ingest(name, pts)
		if err != nil {
			return fmt.Errorf("-preload %s: %v", name, err)
		}
		log.Printf("preloaded dataset %s: %d points, %d pages", d.Name, len(d.Points), d.Pages)
	}
	return nil
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %v", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
