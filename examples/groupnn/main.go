// Grouped nearest neighbors (Section I, third application): the set L of
// houses is much larger than the sets P (hospitals) and Q (parks). A
// GROUP-BY analyst wants, for each hospital-park pair, the number of
// houses whose nearest hospital and nearest park are exactly that pair.
//
// Doing this with two All-NN joins of L against P and Q costs two
// traversals of the big dataset plus a grouping pass. The CIJ route is
// cheaper: CIJ(P,Q) yields exactly the pairs that CAN have a nonempty
// group (a house in R(p,q) has p and q as its nearest), so we only
// allocate houses to CIJ regions. This program runs both routes and checks
// they agree.
//
//	go run ./examples/groupnn
package main

import (
	"fmt"
	"sort"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/exp"
	"cij/internal/geom"
	"cij/internal/joins"
	"cij/internal/rtree"
	"cij/internal/storage"
	"cij/internal/voronoi"
)

func main() {
	houses := dataset.Clustered(20000, 25, 81) // large L
	hospitals := dataset.Uniform(60, 82)       // small P
	parks := dataset.Uniform(40, 83)           // small Q

	env := exp.BuildEnv(hospitals, parks, exp.DefaultPageSize, exp.DefaultBufferPct)
	res := core.NMCIJ(env.RP, env.RQ, exp.Domain, core.DefaultOptions())
	fmt.Printf("CIJ(hospitals, parks): %d of %d possible pairs can own houses\n",
		len(res.Pairs), len(hospitals)*len(parks))

	// Route 1 (CIJ): compute each pair's region and count houses inside.
	// An R-tree over houses answers each region with one range query.
	hBuf := storage.NewBuffer(storage.NewDisk(exp.DefaultPageSize), 1<<20)
	hTree := rtree.BulkLoadPoints(hBuf, houses, exp.Domain, 1)

	countCIJ := map[core.Pair]int{}
	for _, pr := range res.Pairs {
		cellP := voronoi.BFVor(env.RP, voronoi.Site{ID: pr.P, Pt: hospitals[pr.P]}, exp.Domain)
		cellQ := voronoi.BFVor(env.RQ, voronoi.Site{ID: pr.Q, Pt: parks[pr.Q]}, exp.Domain)
		region := cellP.Intersection(cellQ)
		if region.IsEmpty() {
			continue
		}
		for _, e := range hTree.RangeSearch(region.Bounds()) {
			if region.Contains(e.Pt) {
				countCIJ[pr]++
			}
		}
	}

	// Route 2 (baseline): two All-NN joins of houses against hospitals and
	// parks, then a grouping pass.
	nnHosp := joins.AllNN(hTree, env.RP)
	nnPark := joins.AllNN(hTree, env.RQ)
	countNN := map[core.Pair]int{}
	for i := range houses {
		countNN[core.Pair{P: nnHosp[i].Q, Q: nnPark[i].Q}]++
	}

	// The two routes must agree (up to houses exactly on region borders).
	diff := 0
	total := 0
	for pr, c := range countNN {
		total += c
		if countCIJ[pr] != c {
			diff += abs(countCIJ[pr] - c)
		}
	}
	fmt.Printf("houses allocated: %d; CIJ-vs-AllNN disagreement: %d (boundary effects)\n", total, diff)

	// Report the densest hospital-park service areas.
	type grp struct {
		pair  core.Pair
		count int
	}
	var groups []grp
	for pr, c := range countCIJ {
		groups = append(groups, grp{pr, c})
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].count != groups[j].count {
			return groups[i].count > groups[j].count
		}
		return groups[i].pair.P*1000+groups[i].pair.Q < groups[j].pair.P*1000+groups[j].pair.Q
	})
	fmt.Println("\nbusiest hospital-park pairs (houses served):")
	for _, g := range groups[:5] {
		fmt.Printf("  hospital %2d at %v + park %2d at %v: %5d houses\n",
			g.pair.P, fmtPt(hospitals[g.pair.P]), g.pair.Q, fmtPt(parks[g.pair.Q]), g.count)
	}
}

func fmtPt(p geom.Point) string { return fmt.Sprintf("(%.0f,%.0f)", p.X, p.Y) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
