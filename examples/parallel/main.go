// Parallel quickstart: run the same common influence join serially and
// with the partitioned multi-worker engine, stream pairs as they are
// produced, and print the measured speedup.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"runtime"
	"time"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/exp"
	"cij/internal/parallel"
)

func main() {
	// Two pointsets on the normalized [0,10000]² domain, indexed with the
	// paper's defaults (1 KB pages, LRU buffer = 2% of data size).
	p := dataset.Uniform(20_000, 42)
	q := dataset.Uniform(20_000, 43)
	env := exp.BuildEnv(p, q, exp.DefaultPageSize, exp.DefaultBufferPct)

	// Serial NM-CIJ baseline, count-only so both engines do the same
	// work per pair (collecting the full slice would bias the baseline).
	var serialPairs int64
	sOpts := core.Options{Reuse: true, OnPair: func(core.Pair) { serialPairs++ }}
	start := time.Now()
	serial := core.NMCIJ(env.RP, env.RQ, exp.Domain, sOpts)
	serialWall := time.Since(start)
	fmt.Printf("serial NM-CIJ:   %7d pairs in %v\n", serialPairs, serialWall.Round(time.Millisecond))

	// Cold-start the cache again so the parallel run's I/O is measured
	// from the same state the serial run saw.
	env.Reset()

	// Parallel engine: one worker per core, pairs streamed through OnPair
	// while the workers are still joining (the non-blocking property of
	// Fig. 9b, preserved across the merge). The first pairs arrive long
	// before the join finishes.
	workers := runtime.GOMAXPROCS(0)
	var streamed int64
	var firstPair time.Duration
	opts := parallel.DefaultOptions()
	opts.Workers = workers
	opts.CollectPairs = false
	start = time.Now()
	opts.OnPair = func(core.Pair) {
		if streamed == 0 {
			firstPair = time.Since(start)
		}
		streamed++
	}
	res := parallel.Join(env.RP, env.RQ, exp.Domain, opts)
	parWall := time.Since(start)

	fmt.Printf("%d-worker join:  %7d pairs in %v (first pair after %v)\n",
		workers, streamed, parWall.Round(time.Millisecond), firstPair.Round(time.Millisecond))
	fmt.Printf("speedup: %.2fx on %d CPUs\n", float64(serialWall)/float64(parWall), runtime.NumCPU())

	// Exact result equivalence is the engine's contract: same pair set,
	// same filter-quality counters, only the emission order differs.
	fmt.Printf("\nfilter counters  serial: candidates=%d true-hits=%d\n",
		serial.Stats.Candidates, serial.Stats.TrueHits)
	fmt.Printf("filter counters  parallel: candidates=%d true-hits=%d\n",
		res.Stats.Candidates, res.Stats.TrueHits)
	fmt.Printf("physical I/O: serial %d vs parallel %d page accesses (per-worker caches)\n",
		serial.Stats.PageAccesses(), res.Stats.PageAccesses())
}
