// Customized multi-objective search (Section I, fourth application): a
// tenant looks for housing only in common influence regions R(p,q) where
// hospital p has a coronary intensive care unit and park q has a pool.
// CIJ(P,Q) enumerates the candidate regions; attribute predicates filter
// them; the qualifying regions are reported with their areas and bounding
// boxes so a housing search can be restricted to them.
//
//	go run ./examples/multiobjective
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/exp"
	"cij/internal/voronoi"
)

func main() {
	hospitals := dataset.Clustered(80, 8, 91)
	parks := dataset.Clustered(60, 8, 92)

	// Synthetic facility attributes.
	rng := rand.New(rand.NewSource(17))
	hasCoronaryUnit := make([]bool, len(hospitals))
	for i := range hasCoronaryUnit {
		hasCoronaryUnit[i] = rng.Float64() < 0.3
	}
	hasPool := make([]bool, len(parks))
	for i := range hasPool {
		hasPool[i] = rng.Float64() < 0.4
	}

	env := exp.BuildEnv(hospitals, parks, exp.DefaultPageSize, exp.DefaultBufferPct)

	// NM-CIJ streams pairs; the predicate filter is applied on the fly —
	// the non-blocking property means the first qualifying regions are
	// available almost immediately.
	type region struct {
		pair core.Pair
		area float64
		bbox string
	}
	var qualifying []region
	totalPairs := 0
	opts := core.Options{Reuse: true, OnPair: func(pr core.Pair) {
		totalPairs++
		if !hasCoronaryUnit[pr.P] || !hasPool[pr.Q] {
			return
		}
		cellP := voronoi.BFVor(env.RP, voronoi.Site{ID: pr.P, Pt: hospitals[pr.P]}, exp.Domain)
		cellQ := voronoi.BFVor(env.RQ, voronoi.Site{ID: pr.Q, Pt: parks[pr.Q]}, exp.Domain)
		r := cellP.Intersection(cellQ)
		if r.IsEmpty() {
			return
		}
		b := r.Bounds()
		qualifying = append(qualifying, region{
			pair: pr,
			area: r.Area(),
			bbox: fmt.Sprintf("[%.0f,%.0f]x[%.0f,%.0f]", b.MinX, b.MaxX, b.MinY, b.MaxY),
		})
	}}
	_ = core.NMCIJ(env.RP, env.RQ, exp.Domain, opts)

	fmt.Printf("CIJ produced %d hospital-park pairs; %d satisfy (coronary unit ∧ pool)\n",
		totalPairs, len(qualifying))

	sort.Slice(qualifying, func(i, j int) bool { return qualifying[i].area > qualifying[j].area })
	fmt.Println("\nlargest qualifying housing-search regions:")
	limit := 8
	if len(qualifying) < limit {
		limit = len(qualifying)
	}
	for _, r := range qualifying[:limit] {
		fmt.Printf("  hospital %2d + park %2d: area %8.0f  bbox %s\n", r.pair.P, r.pair.Q, r.area, r.bbox)
	}

	// Coverage summary: how much of the city qualifies.
	var totalArea float64
	for _, r := range qualifying {
		totalArea += r.area
	}
	fmt.Printf("\nqualifying regions cover %.1f%% of the city\n", 100*totalArea/exp.Domain.Area())
}
