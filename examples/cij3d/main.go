// 3D common influence join — the paper's first future-work item
// ("we will extend our solutions for 3D points, with the intuition that
// the convex polygon Vc(pi) in 2D space is analogous to a convex
// polyhedron in 3D space", Section VI).
//
// Scenario: wireless access points of two providers in an office tower
// (x, y, floor-height). A pair of APs shares a common influence volume if
// some location in the building is simultaneously nearest to both — the
// 3D version of the bandwidth-sharing application from the introduction.
//
//	go run ./examples/cij3d
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"cij/internal/cij3"
	"cij/internal/geom3"
)

func main() {
	domain := geom3.NewBox3(geom3.V3(0, 0, 0), geom3.V3(10000, 10000, 10000))
	rng := rand.New(rand.NewSource(2008))

	providerA := make([]geom3.Vec3, 40)
	providerB := make([]geom3.Vec3, 35)
	for i := range providerA {
		providerA[i] = geom3.V3(rng.Float64()*10000, rng.Float64()*10000, rng.Float64()*10000)
	}
	for i := range providerB {
		providerB[i] = geom3.V3(rng.Float64()*10000, rng.Float64()*10000, rng.Float64()*10000)
	}

	ta := cij3.BuildKDTree(cij3.MakeSites3(providerA))
	tb := cij3.BuildKDTree(cij3.MakeSites3(providerB))

	pairs := cij3.CIJ3(ta, tb, domain)
	fmt.Printf("3D CIJ between %d + %d access points: %d pairs share influence volume\n",
		len(providerA), len(providerB), len(pairs))
	fmt.Printf("(out of %d possible combinations)\n", len(providerA)*len(providerB))

	// Rank shared volumes: the biggest common influence volumes are where
	// a bandwidth-sharing agreement pays off most.
	type shared struct {
		pair cij3.Pair3
		vol  float64
	}
	var top []shared
	for _, pr := range pairs {
		cellA := cij3.BFVor3(ta, cij3.Site3{ID: pr.P, Pt: providerA[pr.P]}, domain)
		cellB := cij3.BFVor3(tb, cij3.Site3{ID: pr.Q, Pt: providerB[pr.Q]}, domain)
		top = append(top, shared{pr, geom3.IntersectionVolume(cellA, cellB)})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].vol > top[j].vol })

	fmt.Println("\nlargest shared influence volumes (provider A AP + provider B AP):")
	for _, s := range top[:5] {
		fmt.Printf("  A%-3d + B%-3d  volume %.3g (%.2f%% of the building)\n",
			s.pair.P, s.pair.Q, s.vol, 100*s.vol/domain.Volume())
	}

	// Sanity: total shared volume must equal the building volume (the
	// pairwise intersections tile 3-space).
	var total float64
	for _, s := range top {
		total += s.vol
	}
	fmt.Printf("\nall shared volumes sum to %.4g = %.2f%% of the building (tiling check)\n",
		total, 100*total/domain.Volume())
}
