// Quickstart: compute a common influence join between two small pointsets
// and inspect a common-influence region.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/exp"
	"cij/internal/voronoi"
)

func main() {
	// Two pointsets on the normalized [0,10000]² domain.
	p := dataset.Uniform(500, 42) // e.g. restaurants
	q := dataset.Uniform(400, 43) // e.g. cinemas

	// Index both on a simulated disk with the paper's defaults (1 KB
	// pages, LRU buffer = 2% of data size).
	env := exp.BuildEnv(p, q, exp.DefaultPageSize, exp.DefaultBufferPct)

	// NM-CIJ: the paper's non-blocking, near-I/O-optimal algorithm.
	res := core.NMCIJ(env.RP, env.RQ, exp.Domain, core.DefaultOptions())

	fmt.Printf("CIJ(P,Q) with |P|=%d, |Q|=%d: %d pairs\n", len(p), len(q), len(res.Pairs))
	fmt.Printf("I/O: %d page accesses (lower bound %d), filter false-hit ratio %.3f\n",
		res.Stats.PageAccesses(), env.LowerBound(), res.Stats.FalseHitRatio())

	// Every pair (p,q) has a common influence region R(p,q): the set of
	// locations closer to p than any other P-point AND closer to q than
	// any other Q-point. Reconstruct it for the first pair.
	pr := res.Pairs[0]
	cellP := voronoi.BFVor(env.RP, voronoi.Site{ID: pr.P, Pt: p[pr.P]}, exp.Domain)
	cellQ := voronoi.BFVor(env.RQ, voronoi.Site{ID: pr.Q, Pt: q[pr.Q]}, exp.Domain)
	region := cellP.Intersection(cellQ)
	fmt.Printf("\nfirst pair: P[%d]=%v  Q[%d]=%v\n", pr.P, p[pr.P], pr.Q, q[pr.Q])
	fmt.Printf("common influence region: area %.1f, centroid %v, %d vertices\n",
		region.Area(), region.Centroid(), len(region.V))

	// The join is parameter-free: no ε, no k. Contrast the pair distances.
	minD, maxD := -1.0, 0.0
	for _, pr := range res.Pairs {
		d := p[pr.P].Dist(q[pr.Q])
		if minD < 0 || d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	fmt.Printf("\npair distances span %.1f .. %.1f — no distance threshold reproduces this result\n", minD, maxD)
}
