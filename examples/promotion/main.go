// Collaborative promotion (Section I, first application): restaurants P
// and cinemas Q compute CIJ(P,Q); each result pair (p,q) shares a common
// influence region R(p,q) — the residents there have p as their nearest
// restaurant AND q as their nearest cinema, making them the exact audience
// for a joint "dinner + movie" promotion. The demo ranks pairs by region
// area (audience size proxy) and applies a marketing focus per region
// using venue attributes, as in the paper's gourmet-food/classic-movies
// example.
//
//	go run ./examples/promotion
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/exp"
	"cij/internal/voronoi"
)

type venue struct {
	id     int64
	stars  int     // 1..5 rating
	avgAge float64 // average customer age (drives the marketing focus)
}

func main() {
	// 300 restaurants clustered around town centers; 120 cinemas.
	restaurants := dataset.Clustered(300, 12, 71)
	cinemas := dataset.Clustered(120, 12, 72)

	rng := rand.New(rand.NewSource(99))
	rAttr := make([]venue, len(restaurants))
	for i := range rAttr {
		rAttr[i] = venue{id: int64(i), stars: 1 + rng.Intn(5), avgAge: 25 + rng.Float64()*40}
	}
	cAttr := make([]venue, len(cinemas))
	for i := range cAttr {
		cAttr[i] = venue{id: int64(i), stars: 1 + rng.Intn(5), avgAge: 25 + rng.Float64()*40}
	}

	env := exp.BuildEnv(restaurants, cinemas, exp.DefaultPageSize, exp.DefaultBufferPct)
	res := core.NMCIJ(env.RP, env.RQ, exp.Domain, core.DefaultOptions())
	fmt.Printf("%d restaurant-cinema pairs share a common influence region\n", len(res.Pairs))

	// Rank pairs by the area of their common influence region.
	type campaign struct {
		pair core.Pair
		area float64
		age  float64
	}
	var campaigns []campaign
	for _, pr := range res.Pairs {
		cellP := voronoi.BFVor(env.RP, voronoi.Site{ID: pr.P, Pt: restaurants[pr.P]}, exp.Domain)
		cellQ := voronoi.BFVor(env.RQ, voronoi.Site{ID: pr.Q, Pt: cinemas[pr.Q]}, exp.Domain)
		region := cellP.Intersection(cellQ)
		campaigns = append(campaigns, campaign{
			pair: pr,
			area: region.Area(),
			age:  (rAttr[pr.P].avgAge + cAttr[pr.Q].avgAge) / 2,
		})
	}
	sort.Slice(campaigns, func(i, j int) bool { return campaigns[i].area > campaigns[j].area })

	fmt.Println("\ntop 5 joint campaigns by region area:")
	fmt.Println("restaurant  cinema  region-area  focus")
	for _, c := range campaigns[:5] {
		focus := "family combo: pizza night + blockbuster"
		if c.age > 45 {
			focus = "gourmet dinner + classic movie retrospective"
		}
		fmt.Printf("R%-10d C%-6d %-12.0f %s\n", c.pair.P, c.pair.Q, c.area, focus)
	}

	// Customized filtering (the paper's tourist-office scenario): only
	// promote pairs where both venues are rated above three stars.
	premium := 0
	for _, pr := range res.Pairs {
		if rAttr[pr.P].stars > 3 && cAttr[pr.Q].stars > 3 {
			premium++
		}
	}
	fmt.Printf("\npremium pairs (both venues >3 stars): %d of %d\n", premium, len(res.Pairs))
}
