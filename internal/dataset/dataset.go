// Package dataset generates and loads the pointsets of the paper's
// evaluation (Section V): uniform synthetic data, and clustered synthetic
// stand-ins for the five real US geonames datasets of Table I.
//
// The real datasets (downloaded by the authors from geonames.usgs.gov)
// are not redistributable here and the build is offline, so RealLike
// substitutes deterministic Gaussian-mixture datasets with the SAME
// cardinalities, normalized to the same [0,10000]² domain. What the
// paper's real-data experiments exercise is spatial skew — clustered
// points yield adjacent Voronoi cells with large area deviation, which
// drives the extra I/O observed in Table II — and the mixture generator
// reproduces exactly that property. See DESIGN.md for the substitution
// rationale.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"cij/internal/geom"
)

// Domain is the normalized coordinate domain of every dataset in the
// paper: attribute values are scaled to [0, 10000].
var Domain = geom.NewRect(0, 0, 10000, 10000)

// Uniform returns n points distributed uniformly over the domain,
// deterministically derived from seed.
func Uniform(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*Domain.MaxX, rng.Float64()*Domain.MaxY)
	}
	return pts
}

// Clustered returns n points drawn from a Gaussian mixture with the given
// number of clusters. Cluster weights are heavy-tailed (Zipf-like) and
// spreads vary per cluster, producing the skewed density of geographic
// feature data.
func Clustered(n, clusters int, seed int64) []geom.Point {
	if clusters < 1 {
		clusters = 1
	}
	rng := rand.New(rand.NewSource(seed))
	type cluster struct {
		center geom.Point
		spread float64
		weight float64
	}
	cs := make([]cluster, clusters)
	totalW := 0.0
	for i := range cs {
		cs[i] = cluster{
			center: geom.Pt(rng.Float64()*Domain.MaxX, rng.Float64()*Domain.MaxY),
			spread: 80 + rng.Float64()*700,
			// Zipf-like weight 1/(rank+1).
			weight: 1 / float64(i+1),
		}
		totalW += cs[i].weight
	}
	// Cumulative weights for sampling.
	cum := make([]float64, clusters)
	acc := 0.0
	for i := range cs {
		acc += cs[i].weight / totalW
		cum[i] = acc
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		r := rng.Float64()
		k := sort.SearchFloat64s(cum, r)
		if k >= clusters {
			k = clusters - 1
		}
		c := cs[k]
		pts[i] = geom.Pt(
			geom.Clamp(c.center.X+rng.NormFloat64()*c.spread, 0, Domain.MaxX),
			geom.Clamp(c.center.Y+rng.NormFloat64()*c.spread, 0, Domain.MaxY),
		)
	}
	return pts
}

// RealDataset names one of the five geonames datasets of Table I.
type RealDataset struct {
	Name        string // paper's two-letter code
	Description string // "Contents" column of Table I
	Cardinality int    // "Data cardinality" column of Table I
	Clusters    int    // mixture size of the synthetic stand-in
	Seed        int64
}

// RealDatasets reproduces Table I: the five datasets with their paper
// cardinalities. Cluster counts are chosen to mimic the geographic
// clustering level of each feature type (populated places and schools
// follow settlements tightly; parks are fewer and more dispersed).
var RealDatasets = []RealDataset{
	{Name: "PP", Description: "Populated Places", Cardinality: 177983, Clusters: 900, Seed: 9001},
	{Name: "SC", Description: "Schools", Cardinality: 172188, Clusters: 700, Seed: 9002},
	{Name: "CE", Description: "Cemeteries", Cardinality: 124336, Clusters: 800, Seed: 9003},
	{Name: "LO", Description: "Locales", Cardinality: 128476, Clusters: 600, Seed: 9004},
	{Name: "PA", Description: "Parks", Cardinality: 58312, Clusters: 400, Seed: 9005},
}

// RealLike generates the synthetic stand-in for the named Table I dataset
// at full paper cardinality. scale ∈ (0,1] shrinks the cardinality
// proportionally (benches use scaled-down instances). Unknown names
// return an error.
func RealLike(name string, scale float64) ([]geom.Point, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	for _, d := range RealDatasets {
		if d.Name == name {
			n := int(float64(d.Cardinality) * scale)
			if n < 1 {
				n = 1
			}
			return Clustered(n, d.Clusters, d.Seed), nil
		}
	}
	return nil, fmt.Errorf("dataset: unknown real dataset %q (want PP, SC, CE, LO or PA)", name)
}

// Spec is a named generator specification: the declarative form of "which
// pointset" shared by the query service's registry loaders, cijtool gen
// and the serve load generator, so every entry point builds datasets
// through the same door.
type Spec struct {
	// Kind is "uniform", "clustered", or a Table I code (PP/SC/CE/LO/PA).
	Kind string
	// N is the cardinality for uniform/clustered kinds.
	N int
	// Clusters is the mixture size for the clustered kind (default 20).
	Clusters int
	// Seed derives the points deterministically.
	Seed int64
	// Scale shrinks Table I cardinalities; 0 or 1 means full scale.
	Scale float64
}

// Generate materializes the spec into points on the normalized domain.
func (s Spec) Generate() ([]geom.Point, error) {
	switch s.Kind {
	case "uniform":
		if s.N <= 0 {
			return nil, fmt.Errorf("dataset: spec %q needs n > 0, got %d", s.Kind, s.N)
		}
		return Uniform(s.N, s.Seed), nil
	case "clustered":
		if s.N <= 0 {
			return nil, fmt.Errorf("dataset: spec %q needs n > 0, got %d", s.Kind, s.N)
		}
		clusters := s.Clusters
		if clusters <= 0 {
			clusters = 20
		}
		return Clustered(s.N, clusters, s.Seed), nil
	case "":
		return nil, fmt.Errorf("dataset: spec has no kind (want uniform, clustered, or PP/SC/CE/LO/PA)")
	default:
		scale := s.Scale
		if scale <= 0 {
			scale = 1
		}
		return RealLike(s.Kind, scale)
	}
}

// WriteCSV writes points as "x,y" lines.
func WriteCSV(w io.Writer, pts []geom.Point) error {
	bw := bufio.NewWriter(w)
	for _, p := range pts {
		if _, err := fmt.Fprintf(bw, "%g,%g\n", p.X, p.Y); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses "x,y" lines (blank lines and #-comments skipped) and
// normalizes nothing: callers normalize if needed.
func ReadCSV(r io.Reader) ([]geom.Point, error) {
	var pts []geom.Point
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		parts := strings.Split(txt, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("dataset: line %d: want \"x,y\", got %q", line, txt)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %v", line, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %v", line, err)
		}
		pts = append(pts, geom.Pt(x, y))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pts, nil
}

// Normalize rescales points so their bounding box maps onto the domain,
// as the paper does with all datasets ("attribute values of all datasets
// are normalized to the interval [0,10000]").
func Normalize(pts []geom.Point) []geom.Point {
	if len(pts) == 0 {
		return pts
	}
	bounds := geom.EmptyRect()
	for _, p := range pts {
		bounds = bounds.UnionPoint(p)
	}
	w, h := bounds.Width(), bounds.Height()
	if w == 0 {
		w = 1
	}
	if h == 0 {
		h = 1
	}
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = geom.Pt(
			(p.X-bounds.MinX)/w*Domain.MaxX,
			(p.Y-bounds.MinY)/h*Domain.MaxY,
		)
	}
	return out
}
