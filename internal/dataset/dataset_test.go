package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cij/internal/geom"
)

func TestUniformDeterministicAndInDomain(t *testing.T) {
	a := Uniform(1000, 7)
	b := Uniform(1000, 7)
	c := Uniform(1000, 8)
	if len(a) != 1000 {
		t.Fatalf("len = %d", len(a))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
		if !Domain.Contains(a[i]) {
			t.Fatalf("point %v outside domain", a[i])
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestClusteredSkew(t *testing.T) {
	pts := Clustered(20000, 10, 42)
	if len(pts) != 20000 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if !Domain.Contains(p) {
			t.Fatalf("point %v outside domain", p)
		}
	}
	// Skew check: a 10x10 grid histogram must be far from uniform —
	// the max cell count should exceed several times the mean.
	var hist [10][10]int
	for _, p := range pts {
		i := int(p.X / 1000.01)
		j := int(p.Y / 1000.01)
		hist[i][j]++
	}
	maxCount := 0
	for i := range hist {
		for j := range hist[i] {
			if hist[i][j] > maxCount {
				maxCount = hist[i][j]
			}
		}
	}
	mean := 20000.0 / 100
	if float64(maxCount) < 3*mean {
		t.Errorf("clustered data not skewed enough: max cell %d, mean %v", maxCount, mean)
	}
}

func TestClusteredDegenerateArgs(t *testing.T) {
	pts := Clustered(10, 0, 1) // clusters < 1 clamps to 1
	if len(pts) != 10 {
		t.Fatalf("len = %d", len(pts))
	}
}

func TestRealLikeCardinalitiesMatchTable1(t *testing.T) {
	want := map[string]int{"PP": 177983, "SC": 172188, "CE": 124336, "LO": 128476, "PA": 58312}
	for name, n := range want {
		pts, err := RealLike(name, 0.01) // 1% scale for test speed
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, wantScaled := len(pts), int(float64(n)*0.01); got != wantScaled {
			t.Errorf("%s at 1%%: %d points, want %d", name, got, wantScaled)
		}
	}
	if _, err := RealLike("XX", 1); err == nil {
		t.Error("unknown dataset should error")
	}
	// Full-scale sanity for the smallest dataset only (PA).
	pa, err := RealLike("PA", 1)
	if err != nil || len(pa) != 58312 {
		t.Fatalf("PA full scale: %d points, err=%v", len(pa), err)
	}
}

func TestRealLikeDeterministic(t *testing.T) {
	a, _ := RealLike("CE", 0.005)
	b, _ := RealLike("CE", 0.005)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RealLike is not deterministic")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := Uniform(500, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("round trip lost points: %d vs %d", len(got), len(pts))
	}
	for i := range pts {
		if math.Abs(got[i].X-pts[i].X) > 1e-9 || math.Abs(got[i].Y-pts[i].Y) > 1e-9 {
			t.Fatalf("point %d mismatch: %v vs %v", i, got[i], pts[i])
		}
	}
}

func TestReadCSVCommentsAndErrors(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("# header\n\n1.5, 2.5\n3,4\n"))
	if err != nil || len(got) != 2 {
		t.Fatalf("got %v err %v", got, err)
	}
	if _, err := ReadCSV(strings.NewReader("1,2,3\n")); err == nil {
		t.Error("3 fields should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n")); err == nil {
		t.Error("non-numeric should error")
	}
}

func TestNormalize(t *testing.T) {
	in := []geom.Point{geom.Pt(-100, 50), geom.Pt(300, 250), geom.Pt(100, 150)}
	out := Normalize(in)
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	// Extremes map to domain extremes.
	if math.Abs(out[0].X-0) > 1e-9 || math.Abs(out[1].X-10000) > 1e-9 {
		t.Errorf("x normalization wrong: %v, %v", out[0].X, out[1].X)
	}
	if math.Abs(out[0].Y-0) > 1e-9 || math.Abs(out[1].Y-10000) > 1e-9 {
		t.Errorf("y normalization wrong: %v, %v", out[0].Y, out[1].Y)
	}
	// Midpoint stays a midpoint.
	if math.Abs(out[2].X-5000) > 1e-9 || math.Abs(out[2].Y-5000) > 1e-9 {
		t.Errorf("midpoint maps to %v", out[2])
	}
	// Degenerate: all same coordinate (zero extent) must not divide by 0.
	same := Normalize([]geom.Point{geom.Pt(5, 5), geom.Pt(5, 5)})
	for _, p := range same {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Error("degenerate normalize produced NaN")
		}
	}
	if got := Normalize(nil); len(got) != 0 {
		t.Error("empty input should stay empty")
	}
}

// TestReadCSVMalformedRows pins the parser's error paths: short rows, long
// rows, unparsable coordinates — each rejected with the offending line
// number — while blank lines and comments stay skippable.
func TestReadCSVMalformedRows(t *testing.T) {
	for _, tc := range []struct {
		name, in, wantInErr string
	}{
		{"short row", "1,2\n5\n", "line 2"},
		{"missing y", "1,\n", "line 1"},
		{"missing x", ",2\n", "line 1"},
		{"too many fields", "1,2\n3,4,5\n", "line 2"},
		{"bad x", "# ok\nx,2\n", "line 2"},
		{"bad y", "1,2\n\n3,yy\n", "line 3"},
	} {
		pts, err := ReadCSV(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: ReadCSV(%q) = %v, want error", tc.name, tc.in, pts)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantInErr) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.wantInErr)
		}
	}
}

// TestReadCSVEmptyInputs: nothing to parse is not an error, it is an empty
// pointset (callers decide whether that is acceptable).
func TestReadCSVEmptyInputs(t *testing.T) {
	for _, in := range []string{"", "\n\n", "# only comments\n"} {
		pts, err := ReadCSV(strings.NewReader(in))
		if err != nil || len(pts) != 0 {
			t.Errorf("ReadCSV(%q) = %v, %v; want empty, nil", in, pts, err)
		}
	}
}

// TestSpecGenerate: the named loader produces the same points as the
// direct generator calls and rejects unusable specs.
func TestSpecGenerate(t *testing.T) {
	got, err := (Spec{Kind: "uniform", N: 100, Seed: 5}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if want := Uniform(100, 5); len(got) != len(want) || got[17] != want[17] {
		t.Fatal("uniform spec disagrees with Uniform")
	}

	got, err = (Spec{Kind: "clustered", N: 100, Clusters: 7, Seed: 5}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if want := Clustered(100, 7, 5); len(got) != len(want) || got[17] != want[17] {
		t.Fatal("clustered spec disagrees with Clustered")
	}
	// Default cluster count applies when unset.
	defaulted, err := (Spec{Kind: "clustered", N: 50, Seed: 2}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if want := Clustered(50, 20, 2); defaulted[3] != want[3] {
		t.Fatal("clustered spec default mixture size is not 20")
	}

	got, err = (Spec{Kind: "PA", Scale: 0.01}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := RealLike("PA", 0.01); len(got) != len(want) {
		t.Fatalf("PA spec cardinality %d, want %d", len(got), len(want))
	}

	for _, bad := range []Spec{
		{},                            // no kind
		{Kind: "uniform"},             // no n
		{Kind: "clustered", N: -3},    // bad n
		{Kind: "dodecahedral", N: 10}, // unknown kind
	} {
		if _, err := bad.Generate(); err == nil {
			t.Errorf("Spec %+v generated without error", bad)
		}
	}
}
