package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cij/internal/geom"
)

func TestUniformDeterministicAndInDomain(t *testing.T) {
	a := Uniform(1000, 7)
	b := Uniform(1000, 7)
	c := Uniform(1000, 8)
	if len(a) != 1000 {
		t.Fatalf("len = %d", len(a))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
		if !Domain.Contains(a[i]) {
			t.Fatalf("point %v outside domain", a[i])
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestClusteredSkew(t *testing.T) {
	pts := Clustered(20000, 10, 42)
	if len(pts) != 20000 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if !Domain.Contains(p) {
			t.Fatalf("point %v outside domain", p)
		}
	}
	// Skew check: a 10x10 grid histogram must be far from uniform —
	// the max cell count should exceed several times the mean.
	var hist [10][10]int
	for _, p := range pts {
		i := int(p.X / 1000.01)
		j := int(p.Y / 1000.01)
		hist[i][j]++
	}
	maxCount := 0
	for i := range hist {
		for j := range hist[i] {
			if hist[i][j] > maxCount {
				maxCount = hist[i][j]
			}
		}
	}
	mean := 20000.0 / 100
	if float64(maxCount) < 3*mean {
		t.Errorf("clustered data not skewed enough: max cell %d, mean %v", maxCount, mean)
	}
}

func TestClusteredDegenerateArgs(t *testing.T) {
	pts := Clustered(10, 0, 1) // clusters < 1 clamps to 1
	if len(pts) != 10 {
		t.Fatalf("len = %d", len(pts))
	}
}

func TestRealLikeCardinalitiesMatchTable1(t *testing.T) {
	want := map[string]int{"PP": 177983, "SC": 172188, "CE": 124336, "LO": 128476, "PA": 58312}
	for name, n := range want {
		pts, err := RealLike(name, 0.01) // 1% scale for test speed
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, wantScaled := len(pts), int(float64(n)*0.01); got != wantScaled {
			t.Errorf("%s at 1%%: %d points, want %d", name, got, wantScaled)
		}
	}
	if _, err := RealLike("XX", 1); err == nil {
		t.Error("unknown dataset should error")
	}
	// Full-scale sanity for the smallest dataset only (PA).
	pa, err := RealLike("PA", 1)
	if err != nil || len(pa) != 58312 {
		t.Fatalf("PA full scale: %d points, err=%v", len(pa), err)
	}
}

func TestRealLikeDeterministic(t *testing.T) {
	a, _ := RealLike("CE", 0.005)
	b, _ := RealLike("CE", 0.005)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RealLike is not deterministic")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := Uniform(500, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("round trip lost points: %d vs %d", len(got), len(pts))
	}
	for i := range pts {
		if math.Abs(got[i].X-pts[i].X) > 1e-9 || math.Abs(got[i].Y-pts[i].Y) > 1e-9 {
			t.Fatalf("point %d mismatch: %v vs %v", i, got[i], pts[i])
		}
	}
}

func TestReadCSVCommentsAndErrors(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("# header\n\n1.5, 2.5\n3,4\n"))
	if err != nil || len(got) != 2 {
		t.Fatalf("got %v err %v", got, err)
	}
	if _, err := ReadCSV(strings.NewReader("1,2,3\n")); err == nil {
		t.Error("3 fields should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n")); err == nil {
		t.Error("non-numeric should error")
	}
}

func TestNormalize(t *testing.T) {
	in := []geom.Point{geom.Pt(-100, 50), geom.Pt(300, 250), geom.Pt(100, 150)}
	out := Normalize(in)
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	// Extremes map to domain extremes.
	if math.Abs(out[0].X-0) > 1e-9 || math.Abs(out[1].X-10000) > 1e-9 {
		t.Errorf("x normalization wrong: %v, %v", out[0].X, out[1].X)
	}
	if math.Abs(out[0].Y-0) > 1e-9 || math.Abs(out[1].Y-10000) > 1e-9 {
		t.Errorf("y normalization wrong: %v, %v", out[0].Y, out[1].Y)
	}
	// Midpoint stays a midpoint.
	if math.Abs(out[2].X-5000) > 1e-9 || math.Abs(out[2].Y-5000) > 1e-9 {
		t.Errorf("midpoint maps to %v", out[2])
	}
	// Degenerate: all same coordinate (zero extent) must not divide by 0.
	same := Normalize([]geom.Point{geom.Pt(5, 5), geom.Pt(5, 5)})
	for _, p := range same {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Error("degenerate normalize produced NaN")
		}
	}
	if got := Normalize(nil); len(got) != 0 {
		t.Error("empty input should stay empty")
	}
}
