// Package check is the randomized correctness harness of the repository:
// a seeded generator of adversarial pointsets and a metamorphic oracle
// asserting that every CIJ backend — NM, PM, FM, the parallel partitioned
// engine, the in-memory grid backend and the brute-force definition —
// computes the identical pair set, plus result invariants (operand
// symmetry, translation and scale equivariance, grid-resolution
// independence) that hold for the join by definition and therefore must
// hold for every implementation of it.
//
// With five algorithms answering the same query through three different
// architectures (best-first R-tree traversal, materialized Voronoi
// R-trees, uniform-grid partitioning), hand-picked fixtures cannot cover
// the interaction space; the harness instead derives ~50 deterministic
// scenarios from fixed seeds (see check_test.go), each mixing the
// geometric degeneracies that historically break computational-geometry
// code: exact duplicate points (within and across the two sets),
// collinear runs, axis-aligned lattices, dense clusters over sparse
// backgrounds, points on the domain boundary and corners, and degenerate
// 1–3 point sets. Failures reproduce exactly from the seed printed in the
// test name.
package check

import (
	"math/rand"

	"cij/internal/dataset"
	"cij/internal/geom"
)

// maxSide caps per-set cardinality: the oracle is the O(n²)-diagram,
// O(|P|·|Q|)-pair brute force, so sets stay small enough that 50 seeds of
// six backends run in seconds.
const maxSide = 120

// Pointsets is one generated scenario.
type Pointsets struct {
	P, Q []geom.Point
}

// Generate derives an adversarial scenario deterministically from seed.
func Generate(seed int64) Pointsets {
	rng := rand.New(rand.NewSource(seed))
	ps := Pointsets{P: genSet(rng), Q: genSet(rng)}
	// Cross-set duplicates: with positive probability the two sets share
	// exact points, so equal cells (and degenerate bisectors between P and
	// Q sites) occur across operands too.
	if len(ps.P) > 0 && rng.Intn(2) == 0 {
		for i := 0; i < 1+rng.Intn(3); i++ {
			ps.Q = append(ps.Q, ps.P[rng.Intn(len(ps.P))])
		}
	}
	return ps
}

// genSet builds one pointset by mixing feature generators.
func genSet(rng *rand.Rand) []geom.Point {
	// Degenerate tiny sets are a scenario of their own: 1–3 points make
	// cells cover the whole domain and exercise every empty-structure
	// path (single-leaf trees, single-tile grids, trivial partitions).
	if rng.Intn(8) == 0 {
		return uniquePoints(rng, 1+rng.Intn(3))
	}
	n := 10 + rng.Intn(maxSide-10)
	var pts []geom.Point
	for len(pts) < n {
		switch rng.Intn(5) {
		case 0: // uniform background
			pts = append(pts, randPoint(rng))
		case 1: // dense Gaussian cluster
			c := randPoint(rng)
			spread := 20 + rng.Float64()*300
			for i := 0; i < 5+rng.Intn(20) && len(pts) < n; i++ {
				pts = append(pts, clampPoint(geom.Pt(
					c.X+rng.NormFloat64()*spread,
					c.Y+rng.NormFloat64()*spread)))
			}
		case 2: // collinear run (horizontal, vertical, or sloped)
			a, b := randPoint(rng), randPoint(rng)
			switch rng.Intn(3) {
			case 0:
				b.Y = a.Y
			case 1:
				b.X = a.X
			}
			k := 3 + rng.Intn(12)
			for i := 0; i <= k && len(pts) < n; i++ {
				t := float64(i) / float64(k)
				pts = append(pts, geom.Pt(a.X+t*(b.X-a.X), a.Y+t*(b.Y-a.Y)))
			}
		case 3: // axis-aligned lattice patch (equidistant ties everywhere)
			o := randPoint(rng)
			step := 50 + rng.Float64()*400
			w := 2 + rng.Intn(4)
			for i := 0; i < w*w && len(pts) < n; i++ {
				pts = append(pts, clampPoint(geom.Pt(
					o.X+float64(i%w)*step,
					o.Y+float64(i/w)*step)))
			}
		case 4: // domain boundary and corners
			switch rng.Intn(3) {
			case 0:
				pts = append(pts, geom.Pt(edgeCoord(rng), dataset.Domain.MinY))
			case 1:
				pts = append(pts, geom.Pt(dataset.Domain.MaxX, edgeCoord(rng)))
			default:
				c := dataset.Domain.Corners()
				pts = append(pts, c[rng.Intn(4)])
			}
		}
		// Exact in-set duplicates, sprinkled as the set grows.
		if len(pts) > 0 && rng.Intn(6) == 0 {
			pts = append(pts, pts[rng.Intn(len(pts))])
		}
	}
	return pts[:n]
}

// uniquePoints draws n distinct uniform points (degenerate-set scenario).
func uniquePoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = randPoint(rng)
	}
	return pts
}

func randPoint(rng *rand.Rand) geom.Point {
	return geom.Pt(
		dataset.Domain.MinX+rng.Float64()*dataset.Domain.Width(),
		dataset.Domain.MinY+rng.Float64()*dataset.Domain.Height(),
	)
}

func edgeCoord(rng *rand.Rand) float64 {
	return dataset.Domain.MinX + rng.Float64()*dataset.Domain.Width()
}

func clampPoint(p geom.Point) geom.Point {
	return geom.Pt(
		geom.Clamp(p.X, dataset.Domain.MinX, dataset.Domain.MaxX),
		geom.Clamp(p.Y, dataset.Domain.MinY, dataset.Domain.MaxY),
	)
}
