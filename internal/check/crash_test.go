package check

import (
	"fmt"
	"testing"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/geom"
	"cij/internal/service"
	"cij/internal/storage"
)

// The crash matrix: run a fixed ingest+mutation workload over FaultFS,
// crash it at EVERY filesystem fault point under each crash mode, and
// hold recovery to three properties:
//
//  1. Open always succeeds — no crash position may leave an
//     unrecoverable directory.
//  2. Every recovered dataset sits at an exactly-installed version: its
//     live points match, point for point, the reference state the
//     workload produced at that same version. Never a half-applied
//     batch.
//  3. Acknowledged writes survive: a version the workload saw committed
//     is a floor for the recovered version.
//
// And on every recovered state, the NM join over the restored trees must
// equal the brute-force oracle on the recovered live points.

// crashAck is what one workload step acknowledged: the dataset it wrote
// and the version the service confirmed installed.
type crashAck struct {
	name    string
	version int
}

type crashStep struct {
	label string
	apply func(s *service.Service) (crashAck, error)
}

func ingestStep(name string, n int, seed int64) crashStep {
	return crashStep{
		label: fmt.Sprintf("ingest %s", name),
		apply: func(s *service.Service) (crashAck, error) {
			d, err := s.Ingest(name, dataset.Uniform(n, seed))
			if err != nil {
				return crashAck{}, err
			}
			return crashAck{name, d.Version}, nil
		},
	}
}

func mutateStep(name string, req service.MutationRequest) crashStep {
	return crashStep{
		label: fmt.Sprintf("mutate %s", name),
		apply: func(s *service.Service) (crashAck, error) {
			resp, err := s.MutatePoints(name, req)
			if err != nil {
				return crashAck{}, err
			}
			return crashAck{name, resp.Version}, nil
		},
	}
}

// crashWorkload is the deterministic operation sequence every matrix
// cell replays: two ingests, then batches covering insert, delete,
// update and a mixed batch (the delete targets stay distinct so each
// prefix of the sequence is applicable regardless of crash position).
func crashWorkload() []crashStep {
	return []crashStep{
		ingestStep("p", 60, 21),
		ingestStep("q", 40, 22),
		mutateStep("p", service.MutationRequest{Insert: []service.PointJSON{{X: 101, Y: 202}, {X: 303, Y: 404}}}),
		mutateStep("p", service.MutationRequest{Delete: []int64{3, 17}}),
		mutateStep("q", service.MutationRequest{Update: []service.MovePointJSON{{ID: 5, X: 5000, Y: 5000}}}),
		mutateStep("p", service.MutationRequest{
			Insert: []service.PointJSON{{X: 7000, Y: 7000}},
			Delete: []int64{30},
		}),
	}
}

// livePoints projects a dataset to its observable point table.
func livePoints(d *service.Dataset) map[int64]geom.Point {
	m := make(map[int64]geom.Point, d.Live)
	for i, pt := range d.Points {
		if d.Alive == nil || d.Alive[i] {
			m[int64(i)] = pt
		}
	}
	return m
}

// referenceStates runs the workload on a plain in-memory service and
// captures, for every (dataset, version) the sequence produces, the
// exact live-point table a correct recovery of that version must serve.
func referenceStates(t *testing.T) map[string]map[int64]geom.Point {
	t.Helper()
	s := service.New(service.Config{JournalEntries: -1})
	ref := make(map[string]map[int64]geom.Point)
	for _, step := range crashWorkload() {
		ack, err := step.apply(s)
		if err != nil {
			t.Fatalf("reference %s: %v", step.label, err)
		}
		d, ok := s.Registry().Get(ack.name)
		if !ok {
			t.Fatalf("reference %s: dataset missing after ack", step.label)
		}
		ref[fmt.Sprintf("%s@%d", ack.name, ack.version)] = livePoints(d)
	}
	return ref
}

func durableCrashConfig(fs storage.FS) service.Config {
	return service.Config{DataDir: "data", FS: fs, JournalEntries: -1}
}

// runWorkload drives the steps until one fails (the injected crash) and
// returns the highest acknowledged version per dataset. When every step
// survives, it also drives Close so checkpoint/shutdown writes sit in
// the crash matrix too.
func runWorkload(fs *storage.FaultFS) map[string]int {
	acked := make(map[string]int)
	s, err := service.Open(durableCrashConfig(fs))
	if err != nil {
		return acked
	}
	for _, step := range crashWorkload() {
		ack, err := step.apply(s)
		if err != nil {
			return acked
		}
		acked[ack.name] = ack.version
	}
	s.Close()
	return acked
}

// verifyRecovered holds one recovered service to the matrix properties.
func verifyRecovered(t *testing.T, cell string, s *service.Service, acked map[string]int, ref map[string]map[int64]geom.Point) {
	t.Helper()
	reg := s.Registry()
	for _, name := range []string{"p", "q"} {
		d, ok := reg.Get(name)
		if !ok {
			if acked[name] > 0 {
				t.Fatalf("%s: dataset %s was acknowledged at v%d but is gone", cell, name, acked[name])
			}
			continue
		}
		if floor := acked[name]; d.Version < floor {
			t.Fatalf("%s: dataset %s recovered at v%d, acknowledged v%d", cell, name, d.Version, floor)
		}
		want, ok := ref[fmt.Sprintf("%s@%d", name, d.Version)]
		if !ok {
			t.Fatalf("%s: dataset %s recovered at v%d, a version the workload never installed", cell, name, d.Version)
		}
		got := livePoints(d)
		if len(got) != len(want) {
			t.Fatalf("%s: dataset %s@%d has %d live points, want %d", cell, name, d.Version, len(got), len(want))
		}
		for id, pt := range want {
			if gp, ok := got[id]; !ok || !gp.Eq(pt) {
				t.Fatalf("%s: dataset %s@%d point %d = %v, want %v — a half-applied batch", cell, name, d.Version, id, got[id], pt)
			}
		}
	}

	// Recovered joins must equal the brute-force oracle.
	p, okP := reg.Get("p")
	q, okQ := reg.Get("q")
	if !okP || !okQ {
		return
	}
	pp, pids := p.JoinPoints()
	qq, qids := q.JoinPoints()
	oracle := core.BruteCIJ(pp, qq, dataset.Domain)
	for i, pr := range oracle {
		if pids != nil {
			pr.P = pids[pr.P]
		}
		if qids != nil {
			pr.Q = qids[pr.Q]
		}
		oracle[i] = pr
	}
	got := core.NMCIJ(p.Tree, q.Tree, dataset.Domain, core.DefaultOptions()).Pairs
	if !core.SamePairs(got, oracle) {
		t.Fatalf("%s: recovered join has %d pairs, oracle %d", cell, len(got), len(oracle))
	}
}

func TestCrashMatrix(t *testing.T) {
	ref := referenceStates(t)

	// Dry run to count the workload's fault points.
	dry := storage.NewFaultFS()
	runWorkload(dry)
	total := dry.Ops()
	if total < 20 {
		t.Fatalf("workload exercises only %d fault points; the durable path is not being driven", total)
	}

	modes := []storage.CrashMode{
		storage.CrashLoseUnsynced,
		storage.CrashKeepUnsynced,
		storage.CrashTornWrite,
	}
	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	for _, mode := range modes {
		for k := int64(1); k <= total; k += stride {
			fs := storage.NewFaultFS()
			fs.SetPlan(&storage.FaultPlan{CrashAfter: k, Mode: mode})
			acked := runWorkload(fs)
			if !fs.Crashed() {
				// The workload finished under this k (it can only happen at
				// the very tail); crash post-hoc to exercise "lost cache"
				// recovery of a fully shut-down directory.
				fs.Crash(mode)
			}
			fs.Restart()

			cell := fmt.Sprintf("crash after %d ops, mode %s", k, mode)
			s, err := service.Open(durableCrashConfig(fs))
			if err != nil {
				t.Fatalf("%s: recovery failed: %v", cell, err)
			}
			verifyRecovered(t, cell, s, acked, ref)
			s.Close()
		}
	}
}
