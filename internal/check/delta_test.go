package check

import (
	"fmt"
	"math/rand"
	"testing"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/delta"
	"cij/internal/geom"
	"cij/internal/rtree"
	"cij/internal/storage"
)

// liveSet is the evolving state of a mutable dataset in the delta oracle:
// every position ever assigned (index = ID), a tombstone map, and the
// current tree version over its own copy-on-write disk lineage — the same
// shape the service registry maintains.
type liveSet struct {
	pts   []geom.Point
	alive []bool
	tree  *rtree.Tree
}

func buildLive(pts []geom.Point) *liveSet {
	buf := storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), 1<<30)
	alive := make([]bool, len(pts))
	for i := range alive {
		alive[i] = true
	}
	return &liveSet{
		pts:   append([]geom.Point(nil), pts...),
		alive: alive,
		tree:  rtree.BulkLoadPoints(buf, pts, dataset.Domain, 1),
	}
}

// apply produces the next version: a COW disk clone, the batch replayed
// through dynamic insert/delete, the previous version left untouched.
func (ls *liveSet) apply(changes []delta.Change) *liveSet {
	mt := ls.tree.CloneMut(storage.NewBuffer(ls.tree.Buffer().Disk().Clone(), 1<<30))
	next := &liveSet{
		pts:   append([]geom.Point(nil), ls.pts...),
		alive: append([]bool(nil), ls.alive...),
		tree:  mt,
	}
	for _, c := range changes {
		switch c.Op {
		case delta.OpInsert:
			if c.ID != int64(len(next.pts)) {
				panic("oracle: insert IDs must be dense")
			}
			next.pts = append(next.pts, c.New)
			next.alive = append(next.alive, true)
			mt.InsertPoint(c.ID, c.New)
		case delta.OpDelete:
			if !mt.DeletePoint(c.ID, c.Old) {
				panic("oracle: delete of missing point")
			}
			next.alive[c.ID] = false
		case delta.OpUpdate:
			if !mt.DeletePoint(c.ID, c.Old) {
				panic("oracle: update of missing point")
			}
			mt.InsertPoint(c.ID, c.New)
			next.pts[c.ID] = c.New
		}
	}
	return next
}

func (ls *liveSet) livePoints() (pts []geom.Point, ids []int64) {
	for i, p := range ls.pts {
		if ls.alive[i] {
			pts = append(pts, p)
			ids = append(ids, int64(i))
		}
	}
	return pts, ids
}

// brutePairs is the full-recompute oracle with original IDs restored on
// the mutated side. mutatedLeft selects the operand order.
func (ls *liveSet) brutePairs(other []geom.Point, mutatedLeft bool) []core.Pair {
	pts, ids := ls.livePoints()
	var raw []core.Pair
	if mutatedLeft {
		raw = core.BruteCIJ(pts, other, dataset.Domain)
		for i := range raw {
			raw[i].P = ids[raw[i].P]
		}
	} else {
		raw = core.BruteCIJ(other, pts, dataset.Domain)
		for i := range raw {
			raw[i].Q = ids[raw[i].Q]
		}
	}
	return raw
}

// diffPairs splits old→new into (added, removed).
func diffPairs(old, new []core.Pair) (added, removed []core.Pair) {
	oldSet := make(map[core.Pair]bool, len(old))
	for _, p := range old {
		oldSet[p] = true
	}
	newSet := make(map[core.Pair]bool, len(new))
	for _, p := range new {
		newSet[p] = true
	}
	for p := range newSet {
		if !oldSet[p] {
			added = append(added, p)
		}
	}
	for p := range oldSet {
		if !newSet[p] {
			removed = append(removed, p)
		}
	}
	core.SortPairs(added)
	core.SortPairs(removed)
	return added, removed
}

// mutationBatch derives one deterministic batch from the current state:
// inserts that deliberately duplicate live points or opposite-set points
// (the degeneracies the generator targets), deletes, and moves — mixed in
// one batch when the state allows it.
func mutationBatch(rng *rand.Rand, ls *liveSet, other []geom.Point, round int) []delta.Change {
	liveIDs := make([]int64, 0, len(ls.pts))
	for i := range ls.pts {
		if ls.alive[i] {
			liveIDs = append(liveIDs, int64(i))
		}
	}
	randPt := func() geom.Point {
		switch rng.Intn(5) {
		case 0: // exact duplicate of a live point
			return ls.pts[liveIDs[rng.Intn(len(liveIDs))]]
		case 1: // exact duplicate of an opposite-set point
			return other[rng.Intn(len(other))]
		case 2: // near-duplicate: degenerate sliver cells
			base := ls.pts[liveIDs[rng.Intn(len(liveIDs))]]
			return geom.Pt(geom.Clamp(base.X+rng.Float64()*2-1, 0, dataset.Domain.MaxX),
				geom.Clamp(base.Y+rng.Float64()*2-1, 0, dataset.Domain.MaxY))
		case 3: // inside the generator's populated window
			return geom.Pt(rng.Float64()*150, rng.Float64()*150)
		default: // far away in the empty part of the domain
			return geom.Pt(rng.Float64()*dataset.Domain.MaxX, rng.Float64()*dataset.Domain.MaxY)
		}
	}
	// Per-batch op mix: round 0 inserts, round 1 deletes+updates, round 2
	// all three. Deletes/updates draw distinct live IDs; when too few live
	// points remain the op degrades to an insert so the set never empties.
	used := map[int64]bool{}
	takeLive := func() (int64, bool) {
		for tries := 0; tries < 10; tries++ {
			id := liveIDs[rng.Intn(len(liveIDs))]
			if !used[id] {
				used[id] = true
				return id, true
			}
		}
		return 0, false
	}
	var ops []delta.Op
	switch round % 3 {
	case 0:
		ops = []delta.Op{delta.OpInsert, delta.OpInsert}
	case 1:
		ops = []delta.Op{delta.OpDelete, delta.OpUpdate}
	default:
		ops = []delta.Op{delta.OpInsert, delta.OpDelete, delta.OpUpdate}
	}
	var changes []delta.Change
	nextID := int64(len(ls.pts))
	deletes := 0
	for _, op := range ops {
		switch op {
		case delta.OpDelete, delta.OpUpdate:
			// Keep at least one live point; count updates as neutral.
			id, ok := takeLive()
			if !ok || (op == delta.OpDelete && len(liveIDs)-deletes <= 1) {
				op = delta.OpInsert
				break
			}
			if op == delta.OpDelete {
				deletes++
				changes = append(changes, delta.Change{Op: delta.OpDelete, ID: id, Old: ls.pts[id]})
			} else {
				changes = append(changes, delta.Change{Op: delta.OpUpdate, ID: id, Old: ls.pts[id], New: randPt()})
			}
			continue
		}
		changes = append(changes, delta.Change{Op: delta.OpInsert, ID: nextID, New: randPt()})
		nextID++
	}
	return changes
}

// TestDeltaSeeds is the delta-vs-full-recompute oracle: across the full
// adversarial seed matrix, a sequence of insert/delete/update batches is
// applied through the COW mutation path, and the incremental engine's
// churn must reproduce the brute-force diff exactly — in both operand
// orientations — while the pre-mutation versions stay byte-identical for
// readers (snapshot isolation).
func TestDeltaSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed matrix runs in the full suite and `make prop`; -short (the CI test job) skips the duplicate")
	}
	for seed := int64(1); seed <= NumSeeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			checkDeltaSeed(t, seed)
		})
	}
}

func checkDeltaSeed(t *testing.T, seed int64) {
	ps := Generate(seed)
	rng := rand.New(rand.NewSource(seed * 7919))

	qBuf := storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), 1<<30)
	qTree := rtree.BulkLoadPoints(qBuf, ps.Q, dataset.Domain, 1)

	v0 := buildLive(ps.P)
	v0Left := v0.brutePairs(ps.Q, true)
	v0Right := v0.brutePairs(ps.Q, false)

	cur := v0
	curLeft, curRight := v0Left, v0Right
	for round := 0; round < 3; round++ {
		batch := mutationBatch(rng, cur, ps.Q, round)
		next := cur.apply(batch)
		if err := next.tree.CheckInvariants(); err != nil {
			t.Fatalf("round %d: mutated tree invariants: %v", round, err)
		}

		nextLeft := next.brutePairs(ps.Q, true)
		nextRight := next.brutePairs(ps.Q, false)

		wantAdd, wantRem := diffPairs(curLeft, nextLeft)
		got := delta.PairChurn(cur.tree, next.tree, qTree, batch, true, dataset.Domain)
		if !core.SamePairs(got.Added, wantAdd) || !core.SamePairs(got.Removed, wantRem) {
			t.Fatalf("round %d left: delta +%d/-%d != brute +%d/-%d\nbatch: %+v\nmissing added: %v\nspurious added: %v\nmissing removed: %v\nspurious removed: %v",
				round, len(got.Added), len(got.Removed), len(wantAdd), len(wantRem), batch,
				core.DiffPairs(wantAdd, got.Added), core.DiffPairs(got.Added, wantAdd),
				core.DiffPairs(wantRem, got.Removed), core.DiffPairs(got.Removed, wantRem))
		}

		wantAddR, wantRemR := diffPairs(curRight, nextRight)
		gotR := delta.PairChurn(cur.tree, next.tree, qTree, batch, false, dataset.Domain)
		if !core.SamePairs(gotR.Added, wantAddR) || !core.SamePairs(gotR.Removed, wantRemR) {
			t.Fatalf("round %d right: delta +%d/-%d != brute +%d/-%d (batch %+v)",
				round, len(gotR.Added), len(gotR.Removed), len(wantAddR), len(wantRemR), batch)
		}

		cur, curLeft, curRight = next, nextLeft, nextRight
	}

	// Snapshot isolation: after every mutation, a tree-based join over the
	// ORIGINAL version still reproduces the original pair set exactly.
	rp := v0.tree.WithBuffer(v0.tree.Buffer().Fork(64))
	rq := qTree.WithBuffer(qTree.Buffer().Fork(64))
	frozen := core.NMCIJ(rp, rq, dataset.Domain, core.DefaultOptions())
	if !core.SamePairs(frozen.Pairs, v0Left) {
		t.Fatalf("snapshot isolation violated: v0 join changed after mutations (%d pairs, want %d)",
			len(frozen.Pairs), len(v0Left))
	}
	if err := v0.tree.CheckInvariants(); err != nil {
		t.Fatalf("v0 invariants after mutations: %v", err)
	}
}
