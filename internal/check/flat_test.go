package check

import (
	"fmt"
	"testing"

	"cij/internal/core"
	"cij/internal/exp"
	"cij/internal/parallel"
)

// TestFlatPagedEquivalence pins the flat storage mode to the paged one at
// full strictness on a slice of the seed matrix: the emitted pair
// SEQUENCE (order included, stronger than the multiset equality of the
// oracle suite) must be byte-identical, the flat run must be free of page
// I/O and decode misses, and its logical reads — the node-access metric —
// must equal the paged run's exactly. A divergence in the sequence means
// the arena renumbering leaked into traversal order; a logical-read drift
// means the ledger miscounts node accesses.
func TestFlatPagedEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ps := Generate(seed)
			env := exp.BuildEnv(ps.P, ps.Q, exp.DefaultPageSize, exp.DefaultBufferPct)
			frp, frq := env.Flat() // freeze first; Flat resets to cold

			paged := core.NMCIJ(env.RP, env.RQ, exp.Domain, core.DefaultOptions())
			pagedIO := env.Buf.Stats()

			env.Reset()
			flat := core.NMCIJ(frp, frq, exp.Domain, core.DefaultOptions())
			flatIO := frp.Buffer().Stats()

			if len(flat.Pairs) != len(paged.Pairs) {
				t.Fatalf("flat emitted %d pairs, paged %d", len(flat.Pairs), len(paged.Pairs))
			}
			for i := range flat.Pairs {
				if flat.Pairs[i] != paged.Pairs[i] {
					t.Fatalf("pair %d: flat %v != paged %v (emission order diverged)",
						i, flat.Pairs[i], paged.Pairs[i])
				}
			}
			if flatIO.PageAccesses() != 0 {
				t.Errorf("flat run performed %d page accesses, want 0", flatIO.PageAccesses())
			}
			if flatIO.DecodeMisses != 0 {
				t.Errorf("flat run counted %d decode misses, want 0", flatIO.DecodeMisses)
			}
			if flatIO.DecodeHits != flatIO.LogicalReads {
				t.Errorf("flat DecodeHits %d != LogicalReads %d (every flat read is decode-free)",
					flatIO.DecodeHits, flatIO.LogicalReads)
			}
			if flatIO.LogicalReads != pagedIO.LogicalReads {
				t.Errorf("flat LogicalReads %d != paged %d — the storage mode moved the node-access metric",
					flatIO.LogicalReads, pagedIO.LogicalReads)
			}
		})
	}
}

// TestFlatStatsEquivalenceParallel is the same pinning for the parallel
// engine: summed worker-fork stats of a flat run carry zero page I/O and
// the paged run's pair multiset.
func TestFlatStatsEquivalenceParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by `make prop`")
	}
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ps := Generate(seed)
			env := exp.BuildEnv(ps.P, ps.Q, exp.DefaultPageSize, exp.DefaultBufferPct)
			frp, frq := env.Flat()

			popts := parallel.DefaultOptions()
			popts.Workers = 3
			paged := parallel.Join(env.RP, env.RQ, exp.Domain, popts)
			env.Reset()
			flat := parallel.Join(frp, frq, exp.Domain, popts)

			if !core.SamePairs(flat.Pairs, paged.Pairs) {
				t.Fatalf("flat parallel pair multiset diverged: got %d pairs, want %d",
					len(flat.Pairs), len(paged.Pairs))
			}
			flatIO := flat.Stats.Mat.Add(flat.Stats.Join)
			if flatIO.PageAccesses() != 0 || flatIO.DecodeMisses != 0 {
				t.Errorf("flat parallel run moved page counters: %+v", flatIO)
			}
		})
	}
}
