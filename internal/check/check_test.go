package check

import (
	"fmt"
	"testing"

	"cij/internal/dataset"
	"cij/internal/geom"
)

// TestEquivalenceSeeds is the acceptance criterion of the harness: every
// backend matches the brute oracle on the full fixed seed matrix. A
// failing seed names itself in the subtest, so `go test -run
// 'TestEquivalenceSeeds/seed=17' ./internal/check` reproduces it alone.
func TestEquivalenceSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed matrix runs in the full suite and `make prop`; -short (the CI test job) skips the duplicate")
	}
	for seed := int64(1); seed <= NumSeeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			if err := CheckEquivalence(seed); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInvariantSeeds runs the metamorphic properties (symmetry,
// translation/scale equivariance, grid-resolution independence) over the
// same seed matrix.
func TestInvariantSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed matrix runs in the full suite and `make prop`; -short (the CI test job) skips the duplicate")
	}
	for seed := int64(1); seed <= NumSeeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			if err := CheckInvariants(seed); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGeneratorShape sanity-checks the generator contract the harness
// relies on: determinism per seed, bounded cardinalities, in-domain
// coordinates and at least occasional degenerate scenarios.
func TestGeneratorShape(t *testing.T) {
	sawTiny, sawDup := false, false
	for seed := int64(1); seed <= 200; seed++ {
		a, b := Generate(seed), Generate(seed)
		if len(a.P) != len(b.P) || len(a.Q) != len(b.Q) {
			t.Fatalf("seed %d not deterministic", seed)
		}
		for i := range a.P {
			if a.P[i] != b.P[i] {
				t.Fatalf("seed %d not deterministic at P[%d]", seed, i)
			}
		}
		if len(a.P) < 1 || len(a.Q) < 1 {
			t.Fatalf("seed %d: empty side (|P|=%d |Q|=%d)", seed, len(a.P), len(a.Q))
		}
		if len(a.P) <= 3 || len(a.Q) <= 3 {
			sawTiny = true
		}
		seen := make(map[geom.Point]bool)
		for _, p := range a.P {
			if !dataset.Domain.Contains(p) {
				t.Fatalf("seed %d: point %v outside domain", seed, p)
			}
			if seen[p] {
				sawDup = true
			}
			seen[p] = true
		}
		for _, p := range a.Q {
			if !dataset.Domain.Contains(p) {
				t.Fatalf("seed %d: point %v outside domain", seed, p)
			}
			if seen[p] {
				sawDup = true
			}
			seen[p] = true
		}
	}
	if !sawTiny {
		t.Error("200 seeds produced no degenerate 1-3 point set")
	}
	if !sawDup {
		t.Error("200 seeds produced no duplicate point")
	}
}
