package check

import (
	"fmt"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/exp"
	"cij/internal/geom"
	"cij/internal/grid"
	"cij/internal/parallel"
)

// NumSeeds is the fixed seed matrix of the equivalence suite: seeds
// 1..NumSeeds run on every `go test` and in the CI check job. The
// acceptance bar for this harness is ≥ 50.
const NumSeeds = 60

// Backend is one CIJ implementation under test, as a closure from a
// scenario to its pair set.
type Backend struct {
	Name string
	Run  func(ps Pointsets) []core.Pair
}

// Backends returns every implementation the harness holds to the brute
// oracle. Each tree-based backend builds a fresh disk environment: PM/FM
// write Voronoi R-trees to their buffer, and a shared environment would
// let one backend's pages perturb another's (the service isolates them
// the same way).
func Backends() []Backend {
	tree := func(run func(ps Pointsets, env *exp.Env) core.Result) func(ps Pointsets) []core.Pair {
		return func(ps Pointsets) []core.Pair {
			env := exp.BuildEnv(ps.P, ps.Q, exp.DefaultPageSize, exp.DefaultBufferPct)
			return run(ps, env).Pairs
		}
	}
	return []Backend{
		{"nm", tree(func(ps Pointsets, env *exp.Env) core.Result {
			return core.NMCIJ(env.RP, env.RQ, exp.Domain, core.DefaultOptions())
		})},
		{"pm", tree(func(ps Pointsets, env *exp.Env) core.Result {
			return core.PMCIJ(env.RP, env.RQ, exp.Domain, core.DefaultOptions())
		})},
		{"fm", tree(func(ps Pointsets, env *exp.Env) core.Result {
			return core.FMCIJ(env.RP, env.RQ, exp.Domain, core.DefaultOptions())
		})},
		{"parallel", tree(func(ps Pointsets, env *exp.Env) core.Result {
			opts := parallel.DefaultOptions()
			opts.Workers = 3 // force real partitioning even on 1-core runners
			return parallel.Join(env.RP, env.RQ, exp.Domain, opts)
		})},
		{"flat", tree(func(ps Pointsets, env *exp.Env) core.Result {
			rp, rq := env.Flat()
			return core.NMCIJ(rp, rq, exp.Domain, core.DefaultOptions())
		})},
		{"flat-parallel", tree(func(ps Pointsets, env *exp.Env) core.Result {
			rp, rq := env.Flat()
			opts := parallel.DefaultOptions()
			opts.Workers = 3 // worker forks of the flat ledger, under -race
			return parallel.Join(rp, rq, exp.Domain, opts)
		})},
		{"grid", func(ps Pointsets) []core.Pair {
			return grid.Join(ps.P, ps.Q, dataset.Domain, grid.DefaultOptions()).Pairs
		}},
	}
}

// CheckEquivalence generates the scenario of one seed and fails unless
// every backend reproduces the brute-force pair multiset exactly.
func CheckEquivalence(seed int64) error {
	ps := Generate(seed)
	want := core.BruteCIJ(ps.P, ps.Q, dataset.Domain)
	for _, b := range Backends() {
		got := b.Run(ps)
		if !core.SamePairs(got, want) {
			return mismatch(seed, b.Name, ps, got, want)
		}
	}
	return nil
}

// CheckInvariants verifies the metamorphic properties of the join on one
// seed's scenario. The properties hold for the mathematical operator, so
// any violation is an implementation bug:
//
//   - Symmetry: CIJ(Q, P) is the transpose of CIJ(P, Q) — cell
//     intersection does not care about operand order.
//   - Translation equivariance: translating both pointsets AND the domain
//     by the same offset leaves the pair set unchanged.
//   - Scale equivariance: scaling pointsets and domain by a power of two
//     (exact in floating point) leaves the pair set unchanged.
//   - Resolution independence: the grid backend's pair set does not
//     depend on its tile size (replication + dedup hide partitioning).
//
// The grid backend evaluates the transformed instances (it accepts an
// arbitrary domain rectangle and needs no index build); the reference set
// is the brute-force result on the original instance.
func CheckInvariants(seed int64) error {
	ps := Generate(seed)
	want := core.BruteCIJ(ps.P, ps.Q, dataset.Domain)
	opts := grid.DefaultOptions()

	swapped := grid.Join(ps.Q, ps.P, dataset.Domain, opts).Pairs
	transposed := make([]core.Pair, len(swapped))
	for i, pr := range swapped {
		transposed[i] = core.Pair{P: pr.Q, Q: pr.P}
	}
	if !core.SamePairs(transposed, want) {
		return mismatch(seed, "symmetry(Q,P)", ps, transposed, want)
	}

	const dx, dy = 512.0, -256.0
	moved := Pointsets{P: translate(ps.P, dx, dy), Q: translate(ps.Q, dx, dy)}
	movedDomain := geom.Rect{
		MinX: dataset.Domain.MinX + dx, MinY: dataset.Domain.MinY + dy,
		MaxX: dataset.Domain.MaxX + dx, MaxY: dataset.Domain.MaxY + dy,
	}
	if got := grid.Join(moved.P, moved.Q, movedDomain, opts).Pairs; !core.SamePairs(got, want) {
		return mismatch(seed, "translation", ps, got, want)
	}

	const s = 0.5 // power of two: scaling commutes with fp rounding
	shrunk := Pointsets{P: scale(ps.P, s), Q: scale(ps.Q, s)}
	shrunkDomain := geom.Rect{
		MinX: dataset.Domain.MinX * s, MinY: dataset.Domain.MinY * s,
		MaxX: dataset.Domain.MaxX * s, MaxY: dataset.Domain.MaxY * s,
	}
	if got := grid.Join(shrunk.P, shrunk.Q, shrunkDomain, opts).Pairs; !core.SamePairs(got, want) {
		return mismatch(seed, "scale", ps, got, want)
	}

	for _, target := range []int{1, 200} {
		res := grid.Join(ps.P, ps.Q, dataset.Domain, grid.Options{TargetPerCell: target, CollectPairs: true})
		if !core.SamePairs(res.Pairs, want) {
			return mismatch(seed, fmt.Sprintf("resolution(target=%d)", target), ps, res.Pairs, want)
		}
	}
	return nil
}

// mismatch renders a reproducible failure report.
func mismatch(seed int64, name string, ps Pointsets, got, want []core.Pair) error {
	return fmt.Errorf(
		"seed %d (|P|=%d |Q|=%d): %s disagrees with brute oracle: got %d pairs, want %d\nmissing: %v\nextra: %v",
		seed, len(ps.P), len(ps.Q), name, len(got), len(want),
		core.DiffPairs(want, got), core.DiffPairs(got, want))
}

func translate(pts []geom.Point, dx, dy float64) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = geom.Pt(p.X+dx, p.Y+dy)
	}
	return out
}

func scale(pts []geom.Point, s float64) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = geom.Pt(p.X*s, p.Y*s)
	}
	return out
}
