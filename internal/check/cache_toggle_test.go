package check

import (
	"fmt"
	"testing"

	"cij/internal/storage"
)

// TestEquivalenceDecodeCacheOff re-runs a slice of the seed matrix with
// decoded-node caching switched off for every buffer the backends build.
// The cache is a pure CPU optimization — the pair sets (and, by
// construction, the I/O counters) must be identical in both modes; a
// divergence here means a caller mutated or retained a shared decoded
// node. The full matrix already runs with caching ON in
// TestEquivalenceSeeds, so a reduced slice suffices to pin the OFF mode.
func TestEquivalenceDecodeCacheOff(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the full suite and `make prop`")
	}
	prev := storage.SetDecodeCacheDefault(false)
	defer storage.SetDecodeCacheDefault(prev)
	for seed := int64(1); seed <= 12; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			if err := CheckEquivalence(seed); err != nil {
				t.Fatal(err)
			}
		})
	}
}
