package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// exportSpans is the fixture: a serial phase, two worker lanes, and a
// zero-wall span (the export must still emit its dur field).
func exportSpans() []Span {
	return []Span{
		{Phase: "admission", Tag: "", Wall: 50 * time.Microsecond},
		{Phase: "partition", Tag: "", Wall: 2 * time.Millisecond,
			Counters: Counters{LogicalReads: 7, PagesRead: 3}},
		{Phase: "join", Tag: "w0", Wall: 5 * time.Millisecond,
			Counters: Counters{LogicalReads: 40, Candidates: 9, TrueHits: 4}},
		{Phase: "join", Tag: "w1", Wall: 4 * time.Millisecond,
			Counters: Counters{LogicalReads: 38}},
		{Phase: "merge", Tag: "", Wall: 0},
	}
}

// TestChromeTraceRequiredFields: every exported event carries the Trace
// Event Format's required keys — ph, ts, dur, pid, tid — in its marshaled
// form, including events with zero duration (dur must not be omitempty).
func TestChromeTraceRequiredFields(t *testing.T) {
	tr := ChromeTraceFromSpans(exportSpans(), 42)
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents     []map[string]json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string                       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", decoded.DisplayTimeUnit)
	}
	if len(decoded.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
	for i, ev := range decoded.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d lacks required field %q: %v", i, key, ev)
			}
		}
		var pid int
		json.Unmarshal(ev["pid"], &pid)
		if pid != 42 {
			t.Fatalf("event %d pid = %d, want 42", i, pid)
		}
	}
}

// TestChromeTraceLayout: one thread row per distinct tag, sequential
// timelines per row, metadata naming each row, and complete-event
// durations preserving the spans' wall clock exactly.
func TestChromeTraceLayout(t *testing.T) {
	spans := exportSpans()
	tr := ChromeTraceFromSpans(spans, 1)

	threadNames := make(map[int]string)
	var complete []ChromeTraceEvent
	sawProcessName := false
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				sawProcessName = true
			case "thread_name":
				threadNames[ev.Tid] = ev.Args["name"].(string)
			}
		case "X":
			complete = append(complete, ev)
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if !sawProcessName {
		t.Fatal("no process_name metadata event")
	}
	if len(complete) != len(spans) {
		t.Fatalf("%d complete events for %d spans", len(complete), len(spans))
	}
	// Tags "" (→ "main"), "w0", "w1" become three rows.
	if len(threadNames) != 3 {
		t.Fatalf("thread rows = %v, want 3 rows", threadNames)
	}
	if threadNames[0] != "main" {
		t.Fatalf("untagged row named %q, want main", threadNames[0])
	}

	// Per-row, events must tile the timeline: each starts where the
	// previous ended, each dur equals the span's wall in µs.
	cursor := make(map[int]float64)
	for i, ev := range complete {
		if ev.Ts != cursor[ev.Tid] {
			t.Fatalf("event %d (%s) ts = %g, want cursor %g", i, ev.Name, ev.Ts, cursor[ev.Tid])
		}
		wantDur := float64(spans[i].Wall) / float64(time.Microsecond)
		if ev.Dur != wantDur {
			t.Fatalf("event %d (%s) dur = %g, want %g", i, ev.Name, ev.Dur, wantDur)
		}
		cursor[ev.Tid] += ev.Dur
	}

	// Counter deltas ride in args; zero counters are dropped.
	if complete[1].Args["logical_reads"].(int64) != 7 {
		t.Fatalf("partition args = %v, want logical_reads 7", complete[1].Args)
	}
	if _, ok := complete[1].Args["candidates"]; ok {
		t.Fatalf("zero counter exported: %v", complete[1].Args)
	}
	if complete[4].Args != nil {
		t.Fatalf("all-zero span exported args %v, want none", complete[4].Args)
	}
}

// TestRuntimeCollector: the runtime families land in the registry with
// sane values, and repeated collection keeps the cumulative counters
// monotone.
func TestRuntimeCollector(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg, time.Time{})
	c.Collect()
	snap := reg.Snapshot()
	if snap.Values["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %g, want >= 1", snap.Values["go_goroutines"])
	}
	if snap.Values["go_heap_inuse_bytes"] <= 0 {
		t.Fatalf("go_heap_inuse_bytes = %g, want > 0", snap.Values["go_heap_inuse_bytes"])
	}
	if snap.Values["go_alloc_bytes_total"] <= 0 {
		t.Fatalf("go_alloc_bytes_total = %g, want > 0", snap.Values["go_alloc_bytes_total"])
	}
	if snap.Values["process_uptime_seconds"] <= 0 {
		t.Fatalf("process_uptime_seconds = %g, want > 0", snap.Values["process_uptime_seconds"])
	}
	if _, ok := snap.Hists["go_gc_pause_seconds"]; !ok {
		t.Fatal("go_gc_pause_seconds histogram not in snapshot")
	}

	first := snap.Values["go_alloc_bytes_total"]
	_ = make([]byte, 1<<20)
	c.Collect()
	snap = reg.Snapshot()
	if snap.Values["go_alloc_bytes_total"] < first {
		t.Fatalf("go_alloc_bytes_total went backwards: %g -> %g", first, snap.Values["go_alloc_bytes_total"])
	}
}
