package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics core: named families of counters, gauges and fixed-bucket
// histograms, optionally labeled, rendered in the Prometheus text
// exposition format (version 0.0.4). Everything is stdlib-only and
// lock-light: metric mutation is atomic, family/series creation takes a
// short lock once per new series, and scrapes read consistent-enough
// snapshots without blocking writers.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// DefLatencyBuckets is the default latency histogram layout, in seconds:
// exponential-ish from 0.5 ms to 10 s, matching the range between a
// cache-hit response and a paper-scale materializing join.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry is a set of metric families. The zero value is not usable;
// create with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one named metric family: fixed type, help text and label
// schema, with one series per distinct label-value combination.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64      // histogram families only
	fn      func() float64 // func-backed families (single, unlabeled)

	mu     sync.Mutex
	series map[string]*series
}

// series is one (family, label values) time series.
type series struct {
	labelVals []string
	c         *Counter
	g         *Gauge
	h         *Histogram
}

// register returns the named family, creating it on first use. A second
// registration with a different type or label schema panics: metric
// identity is a programming contract, not runtime input.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64, fn func() float64) *family {
	if !metricNameRe.MatchString(name) {
		panic("obs: invalid metric name " + name)
	}
	for _, l := range labels {
		if !labelNameRe.MatchString(l) {
			panic("obs: invalid label name " + l + " on metric " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic("obs: conflicting re-registration of metric " + name)
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: labels, buckets: buckets, fn: fn,
		series: make(map[string]*series),
	}
	r.byName[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seriesFor returns the family's series for the given label values,
// creating it on first use.
func (f *family) seriesFor(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelVals: append([]string(nil), values...)}
	switch f.typ {
	case typeCounter:
		s.c = &Counter{}
	case typeGauge:
		s.g = &Gauge{}
	case typeHistogram:
		s.h = newHistogram(f.buckets)
	}
	f.series[key] = s
	return s
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, typeCounter, nil, nil, nil).seriesFor(nil).c
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, typeCounter, labels, nil, nil)}
}

// Gauge registers (or returns) an unlabeled settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, typeGauge, nil, nil, nil).seriesFor(nil).g
}

// GaugeVec registers (or returns) a labeled gauge family — the shape of
// info-style metrics (cij_build_info) whose value is constant 1 and whose
// payload is the labels.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, typeGauge, labels, nil, nil)}
}

// GaugeFunc registers a gauge whose value is fn(), evaluated at scrape
// time — the idiom for "current depth" values that already live somewhere
// (queue lengths, cache entry counts).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, typeGauge, nil, nil, fn)
}

// CounterFunc registers a counter whose cumulative value is fn(),
// evaluated at scrape time — for monotone counts kept by existing
// structures (result-cache hit totals). fn must be monotone.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, typeCounter, nil, nil, fn)
}

// Histogram registers (or returns) an unlabeled fixed-bucket histogram.
// buckets are ascending upper bounds (the +Inf bucket is implicit); nil
// selects DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, typeHistogram, nil, normBuckets(buckets), nil).seriesFor(nil).h
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, typeHistogram, labels, normBuckets(buckets), nil)}
}

// FindCounter returns the counter series for the given label values, or
// nil when the family or series does not exist. Test/bench accessor.
func (r *Registry) FindCounter(name string, labelValues ...string) *Counter {
	if s := r.find(name, typeCounter, labelValues); s != nil {
		return s.c
	}
	return nil
}

// FindHistogram returns the histogram series for the given label values,
// or nil when absent. Test/bench accessor (histogram quantiles for
// BENCH_service.json come through here).
func (r *Registry) FindHistogram(name string, labelValues ...string) *Histogram {
	if s := r.find(name, typeHistogram, labelValues); s != nil {
		return s.h
	}
	return nil
}

func (r *Registry) find(name, typ string, labelValues []string) *series {
	r.mu.RLock()
	f, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok || f.typ != typ || f.fn != nil || len(labelValues) != len(f.labels) {
		return nil
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	s := f.series[key]
	f.mu.Unlock()
	return s
}

// Counter is a monotone cumulative count. Concurrency-safe.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d; negative deltas are ignored (counters are monotone).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value. Concurrency-safe.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// CounterVec is a labeled counter family.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values (in registration
// order), creating the series on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.fam.seriesFor(labelValues).c
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.fam.seriesFor(labelValues).g
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.fam.seriesFor(labelValues).h
}

// Histogram is a fixed-bucket cumulative histogram. Observations count
// into the first bucket whose upper bound is >= the value (Prometheus
// `le` semantics); the sum is kept as CAS-updated float bits so Observe
// stays lock-free.
type Histogram struct {
	bounds  []float64 // ascending finite upper bounds
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

func normBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	out := append([]float64(nil), buckets...)
	sort.Float64s(out)
	// Drop a trailing +Inf: the overflow bucket is implicit.
	for len(out) > 0 && math.IsInf(out[len(out)-1], 1) {
		out = out[:len(out)-1]
	}
	if len(out) == 0 {
		panic("obs: histogram needs at least one finite bucket bound")
	}
	return out
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram's state. Counts has
// one entry per finite bound plus the overflow (+Inf) bucket; entries are
// per-bucket counts, not cumulative.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// Snapshot copies the histogram's current state. Individual bucket reads
// are atomic; the collection is not a strict point-in-time cut, which is
// the usual (and sufficient) scrape guarantee.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Add returns the bucket-wise sum s + o. The bounds must describe the
// same layout (series of one family always do); mismatched layouts fold
// what they can, which is the usual scrape-side tolerance.
func (s HistSnapshot) Add(o HistSnapshot) HistSnapshot {
	if s.Bounds == nil {
		s.Bounds, s.Counts = o.Bounds, make([]int64, len(o.Counts))
	}
	d := HistSnapshot{Bounds: s.Bounds, Counts: make([]int64, len(s.Counts)), Sum: s.Sum + o.Sum, Count: s.Count + o.Count}
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i]
		if i < len(o.Counts) {
			d.Counts[i] += o.Counts[i]
		}
	}
	return d
}

// Sub returns the bucket-wise difference s - o of two snapshots of the
// same histogram — the per-interval view (one bench level, one scrape
// window).
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	d := HistSnapshot{Bounds: s.Bounds, Counts: make([]int64, len(s.Counts)), Sum: s.Sum - o.Sum, Count: s.Count - o.Count}
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i]
		if i < len(o.Counts) {
			d.Counts[i] -= o.Counts[i]
		}
	}
	return d
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket holding the target rank, the standard
// histogram_quantile estimator. Values in the overflow bucket clamp to
// the largest finite bound; an empty snapshot returns 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) { // overflow bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// ScrapeSnapshot is a structured point-in-time capture of a registry —
// the raw material of the self-scraping metrics history (obs/history).
// Keys are flattened series identities: the bare family name for
// unlabeled series, `name{k="v",...}` for labeled ones — the same
// identity a text-exposition sample line leads with.
type ScrapeSnapshot struct {
	// Values holds every counter and gauge sample, func-backed families
	// included (their fn is evaluated at snapshot time).
	Values map[string]float64
	// Hists holds every histogram series, keyed without the `le` label.
	Hists map[string]HistSnapshot
}

// Snapshot captures every family's current samples. Individual reads are
// atomic; the collection is the usual consistent-enough scrape cut.
func (r *Registry) Snapshot() ScrapeSnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.byName))
	for _, f := range r.byName {
		fams = append(fams, f)
	}
	r.mu.RUnlock()

	snap := ScrapeSnapshot{
		Values: make(map[string]float64),
		Hists:  make(map[string]HistSnapshot),
	}
	for _, f := range fams {
		if f.fn != nil {
			snap.Values[f.name] = f.fn()
			continue
		}
		f.mu.Lock()
		sers := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			sers = append(sers, s)
		}
		f.mu.Unlock()
		for _, s := range sers {
			key := f.name + labelString(f.labels, s.labelVals, "", "")
			switch f.typ {
			case typeCounter:
				snap.Values[key] = float64(s.c.Value())
			case typeGauge:
				snap.Values[key] = float64(s.g.Value())
			case typeHistogram:
				snap.Hists[key] = s.h.Snapshot()
			}
		}
	}
	return snap
}

// WriteTo renders every family in the text exposition format, families
// sorted by name and series by label values, so scrapes are
// deterministic and diffable.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.RLock()
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.byName[name]
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Handler returns the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}

func (f *family) write(b *strings.Builder) {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	if f.fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(f.fn()))
		return
	}
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sers := make([]*series, len(keys))
	for i, k := range keys {
		sers[i] = f.series[k]
	}
	f.mu.Unlock()

	for _, s := range sers {
		switch f.typ {
		case typeCounter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, s.labelVals, "", ""), s.c.Value())
		case typeGauge:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, s.labelVals, "", ""), s.g.Value())
		case typeHistogram:
			snap := s.h.Snapshot()
			var cum int64
			for i, bound := range snap.Bounds {
				cum += snap.Counts[i]
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, s.labelVals, "le", formatFloat(bound)), cum)
			}
			cum += snap.Counts[len(snap.Bounds)]
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labelVals, "le", "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, s.labelVals, "", ""), formatFloat(snap.Sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, s.labelVals, "", ""), snap.Count)
		}
	}
}

// labelString renders {k="v",...}, appending the extra pair (the
// histogram `le` label) when extraKey is non-empty; no labels at all
// renders as the empty string.
func labelString(names, values []string, extraKey, extraVal string) string {
	if len(names) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
