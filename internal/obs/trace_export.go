package obs

import "time"

// Chrome trace-event export: convert a Trace's aggregated spans into the
// Trace Event Format consumed by chrome://tracing and Perfetto. Spans are
// phase aggregates, not timestamped events, so the export reconstructs a
// plausible timeline: spans sharing a tag (one worker, one tile, the
// serial path) lay out sequentially on one thread row, distinct tags get
// their own rows — which renders a parallel run as the familiar
// one-lane-per-worker flame chart, with each lane's span widths equal to
// the phases' measured wall-clock.

// ChromeTraceEvent is one event in the Trace Event Format. Complete
// events (Ph "X") carry Ts and Dur in microseconds; metadata events
// (Ph "M") name processes and threads.
type ChromeTraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object form of the Trace Event Format (the
// array form is also legal, but the object form admits metadata).
type ChromeTrace struct {
	TraceEvents     []ChromeTraceEvent `json:"traceEvents"`
	DisplayTimeUnit string             `json:"displayTimeUnit"`
}

// ChromeTraceFromSpans lays the spans out as complete events, one thread
// row per distinct tag (first-appearance order; the untagged serial row
// is named "main"), plus process/thread-name metadata. pid labels the
// process row (a query ID renders each journal export distinctly in a
// merged view). Counter deltas ride along in each event's args.
func ChromeTraceFromSpans(spans []Span, pid int) ChromeTrace {
	tids := make(map[string]int)
	cursor := make(map[int]float64) // per-thread timeline position, µs
	events := []ChromeTraceEvent{{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]any{"name": "cij query"},
	}}
	for _, sp := range spans {
		tid, ok := tids[sp.Tag]
		if !ok {
			tid = len(tids)
			tids[sp.Tag] = tid
			threadName := sp.Tag
			if threadName == "" {
				threadName = "main"
			}
			events = append(events, ChromeTraceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": threadName},
			})
		}
		durUS := float64(sp.Wall) / float64(time.Microsecond)
		events = append(events, ChromeTraceEvent{
			Name: sp.Phase,
			Cat:  "cij",
			Ph:   "X",
			Ts:   cursor[tid],
			Dur:  durUS,
			Pid:  pid,
			Tid:  tid,
			Args: spanArgs(sp),
		})
		cursor[tid] += durUS
	}
	return ChromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}
}

// spanArgs projects a span's non-zero counters into event args, so the
// Perfetto side panel shows the phase's I/O profile.
func spanArgs(sp Span) map[string]any {
	args := make(map[string]any)
	add := func(k string, v int64) {
		if v != 0 {
			args[k] = v
		}
	}
	add("logical_reads", sp.LogicalReads)
	add("pages_read", sp.PagesRead)
	add("pages_written", sp.PagesWritten)
	add("decode_hits", sp.DecodeHits)
	add("decode_misses", sp.DecodeMisses)
	add("candidates", sp.Candidates)
	add("true_hits", sp.TrueHits)
	add("p_cells", sp.PCells)
	add("items", sp.Items)
	if len(args) == 0 {
		return nil
	}
	return args
}
