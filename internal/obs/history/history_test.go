package history

import (
	"testing"
	"time"

	"cij/internal/obs"
)

// TestRingWraparound: the ring keeps the newest capacity samples in
// chronological order and counts everything it ever took.
func TestRingWraparound(t *testing.T) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("test_total", "t")
	r := New(reg, 4, nil)
	for i := 0; i < 6; i++ {
		ctr.Inc()
		r.Sample()
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (capacity)", r.Len())
	}
	if r.Total() != 6 {
		t.Fatalf("Total = %d, want 6", r.Total())
	}
	w := r.Window(0)
	if len(w.Samples) != 4 {
		t.Fatalf("window holds %d samples, want 4", len(w.Samples))
	}
	// Oldest surviving sample is the 3rd taken (counter at 3), newest the
	// 6th (counter at 6) — and they must come out oldest first.
	if got := w.Samples[0].Sum("test_total"); got != 3 {
		t.Fatalf("oldest sample counter = %g, want 3", got)
	}
	if got := w.Samples[3].Sum("test_total"); got != 6 {
		t.Fatalf("newest sample counter = %g, want 6", got)
	}
	for i := 1; i < len(w.Samples); i++ {
		if w.Samples[i].T.Before(w.Samples[i-1].T) {
			t.Fatalf("samples out of order at %d", i)
		}
	}
}

// TestWindowCut: ?window-style cuts keep only samples within the duration
// of the newest one.
func TestWindowCut(t *testing.T) {
	reg := obs.NewRegistry()
	r := New(reg, 16, nil)
	r.Sample()
	time.Sleep(30 * time.Millisecond)
	r.Sample()
	time.Sleep(5 * time.Millisecond)
	r.Sample()
	if got := len(r.Window(0).Samples); got != 3 {
		t.Fatalf("full window = %d samples, want 3", got)
	}
	// 15ms window: the first sample is ~35ms before the newest, out.
	if got := len(r.Window(15 * time.Millisecond).Samples); got != 2 {
		t.Fatalf("15ms window = %d samples, want 2", got)
	}
}

// TestWindowMath: deltas, rates, ratios and quantiles computed from the
// window's endpoint snapshots.
func TestWindowMath(t *testing.T) {
	reg := obs.NewRegistry()
	hits := reg.Counter("hits_total", "t")
	misses := reg.Counter("misses_total", "t")
	labeled := reg.CounterVec("labeled_total", "t", "k")
	hist := reg.Histogram("lat_seconds", "t", []float64{0.1, 1, 10})
	r := New(reg, 8, nil)

	hist.Observe(0.05) // before the window: must not count
	r.Sample()
	time.Sleep(2 * time.Millisecond)
	for i := 0; i < 3; i++ {
		hits.Inc()
	}
	misses.Inc()
	labeled.With("a").Inc()
	labeled.With("b").Inc()
	for i := 0; i < 10; i++ {
		hist.Observe(0.5)
	}
	r.Sample()

	w := r.Window(0)
	if got := w.Delta("hits_total"); got != 3 {
		t.Fatalf("Delta(hits) = %g, want 3", got)
	}
	// Labeled families sum across their series.
	if got := w.Delta("labeled_total"); got != 2 {
		t.Fatalf("Delta(labeled) = %g, want 2", got)
	}
	// Prefix matching must not leak into distinct families ("hits_total"
	// vs a hypothetical "hits_total_other").
	if got := w.Delta("hits"); got != 0 {
		t.Fatalf("Delta(prefix) = %g, want 0", got)
	}
	if got := w.Rate("hits_total"); got <= 0 {
		t.Fatalf("Rate(hits) = %g, want > 0", got)
	}
	if got := w.Ratio("hits_total", "misses_total"); got != 0.75 {
		t.Fatalf("Ratio = %g, want 0.75", got)
	}
	// All 10 windowed observations sit in the (0.1, 1] bucket; the
	// pre-window 0.05 must be subtracted out, so every quantile
	// interpolates within that bucket.
	for _, q := range []float64{0.5, 0.99} {
		got := w.Quantile("lat_seconds", q)
		if got <= 0.1 || got > 1 {
			t.Fatalf("Quantile(%g) = %g, want in (0.1, 1]", q, got)
		}
	}
}

// TestWindowDegenerate: zero or one sample yields zeros, not panics.
func TestWindowDegenerate(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c_total", "t").Inc()
	r := New(reg, 8, nil)
	w := r.Window(0)
	if w.Delta("c_total") != 0 || w.Rate("c_total") != 0 || w.Span() != 0 {
		t.Fatal("empty window must report zeros")
	}
	r.Sample()
	w = r.Window(0)
	if w.Delta("c_total") != 0 || w.Rate("c_total") != 0 {
		t.Fatal("single-sample window has no interval; wants zeros")
	}
	if got := w.Last("c_total"); got != 1 {
		t.Fatalf("Last = %g, want 1", got)
	}
	if got := w.Quantile("lat_seconds", 0.5); got != 0 {
		t.Fatalf("Quantile of absent family = %g, want 0", got)
	}
}

// TestStartStop: Start samples immediately, keeps sampling on the
// interval, and stop halts the loop (double-stop is safe).
func TestStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	collected := 0
	r := New(reg, 64, func() { collected++ })
	stop := r.Start(5 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for r.Total() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	n := r.Total()
	if n < 3 {
		t.Fatalf("Total = %d after Start, want >= 3", n)
	}
	if collected == 0 {
		t.Fatal("collect hook never ran")
	}
	if r.Interval() != 5*time.Millisecond {
		t.Fatalf("Interval = %v, want 5ms", r.Interval())
	}
	time.Sleep(25 * time.Millisecond)
	if r.Total() > n+1 { // one tick may already have been in flight
		t.Fatalf("sampling continued after stop: %d -> %d", n, r.Total())
	}
}
