// Package history is the self-scraping metrics history: a capped ring of
// timestamped registry snapshots plus the window math — rates of counter
// families, quantiles of histogram families over the window's bucket
// deltas — that turns point-in-time /metrics scrapes into queryable
// trends (req/s, p99, cache hit-ratio, pages/s) without an external
// Prometheus.
//
// The ring is generic over the registry: it records obs.ScrapeSnapshot
// values keyed by flattened series identity and matches families by name
// prefix, so new metric families become historizable the moment they are
// registered. The service exposes the ring as GET /stats/history.
package history

import (
	"strings"
	"sync"
	"time"

	"cij/internal/obs"
)

// DefaultCapacity bounds the ring when the caller does not: 720 samples
// is one hour at the server's default 5 s interval.
const DefaultCapacity = 720

// Sample is one timestamped registry capture.
type Sample struct {
	T    time.Time
	Snap obs.ScrapeSnapshot
}

// Sum returns this sample's value of the family, summed over its series
// (for gauges: the value at capture time; for counters: the cumulative
// count).
func (s Sample) Sum(family string) float64 { return familySum(s.Snap, family) }

// Ring is the capped sample ring. All methods are safe for concurrent
// use; sampling never blocks metric writers (obs snapshots are atomic
// reads).
type Ring struct {
	reg     *obs.Registry
	collect func() // pre-sample hook (runtime collector); may be nil

	mu       sync.Mutex
	samples  []Sample // ring storage, len == cap once full
	next     int      // index the next sample lands in
	count    int      // live samples, <= cap(samples)
	total    int64    // samples ever taken
	interval time.Duration
}

// New creates a ring over reg holding at most capacity samples
// (capacity <= 0 selects DefaultCapacity). collect, when non-nil, runs
// before every sample — the hook that lets push-style collectors
// (obs.RuntimeCollector.Collect) refresh their families first.
func New(reg *obs.Registry, capacity int, collect func()) *Ring {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Ring{reg: reg, collect: collect, samples: make([]Sample, capacity)}
}

// Sample takes one snapshot now and appends it to the ring.
func (r *Ring) Sample() {
	if r.collect != nil {
		r.collect()
	}
	s := Sample{T: time.Now(), Snap: r.reg.Snapshot()}
	r.mu.Lock()
	r.samples[r.next] = s
	r.next = (r.next + 1) % len(r.samples)
	if r.count < len(r.samples) {
		r.count++
	}
	r.total++
	r.mu.Unlock()
}

// Start samples immediately and then on every interval tick until the
// returned stop function is called. interval <= 0 only takes the initial
// sample.
func (r *Ring) Start(interval time.Duration) (stop func()) {
	r.mu.Lock()
	r.interval = interval
	r.mu.Unlock()
	r.Sample()
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Sample()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Len reports the live sample count; Total the samples ever taken (the
// difference is what the ring has forgotten). Interval reports the
// sampling interval Start was last called with (0 before Start).
func (r *Ring) Len() int                { r.mu.Lock(); defer r.mu.Unlock(); return r.count }
func (r *Ring) Total() int64            { r.mu.Lock(); defer r.mu.Unlock(); return r.total }
func (r *Ring) Interval() time.Duration { r.mu.Lock(); defer r.mu.Unlock(); return r.interval }

// Window returns the live samples taken within d of the newest one,
// oldest first (d <= 0 returns everything). The slice headers are copies;
// the snapshots are shared read-only.
func (r *Ring) Window(d time.Duration) Window {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, r.count)
	start := r.next - r.count
	for i := 0; i < r.count; i++ {
		out = append(out, r.samples[((start+i)%len(r.samples)+len(r.samples))%len(r.samples)])
	}
	if d > 0 && len(out) > 0 {
		cutoff := out[len(out)-1].T.Add(-d)
		lo := 0
		for lo < len(out) && out[lo].T.Before(cutoff) {
			lo++
		}
		out = out[lo:]
	}
	return Window{Samples: out}
}

// Window is a chronologically ordered slice of samples with the rate and
// quantile math over its endpoints.
type Window struct {
	Samples []Sample
}

// Span is the wall-clock distance between the window's endpoints.
func (w Window) Span() time.Duration {
	if len(w.Samples) < 2 {
		return 0
	}
	return w.Samples[len(w.Samples)-1].T.Sub(w.Samples[0].T)
}

// matches reports whether a flattened series key belongs to the family:
// the bare name, or name{...} for labeled series.
func matches(key, family string) bool {
	return key == family || (strings.HasPrefix(key, family) && len(key) > len(family) && key[len(family)] == '{')
}

// familySum sums every series of the family in one snapshot.
func familySum(snap obs.ScrapeSnapshot, family string) float64 {
	var sum float64
	for k, v := range snap.Values {
		if matches(k, family) {
			sum += v
		}
	}
	return sum
}

// Delta returns the window's increase of the counter family, summed over
// its series. Fewer than two samples — no interval — yields 0.
func (w Window) Delta(family string) float64 {
	if len(w.Samples) < 2 {
		return 0
	}
	return familySum(w.Samples[len(w.Samples)-1].Snap, family) - familySum(w.Samples[0].Snap, family)
}

// Rate returns Delta per second of window span.
func (w Window) Rate(family string) float64 {
	span := w.Span().Seconds()
	if span <= 0 {
		return 0
	}
	return w.Delta(family) / span
}

// Last returns the newest sample's sum of the family (gauges: the current
// value), or 0 on an empty window.
func (w Window) Last(family string) float64 {
	if len(w.Samples) == 0 {
		return 0
	}
	return familySum(w.Samples[len(w.Samples)-1].Snap, family)
}

// histSum folds every series of a histogram family in one snapshot.
func histSum(snap obs.ScrapeSnapshot, family string) obs.HistSnapshot {
	var sum obs.HistSnapshot
	for k, h := range snap.Hists {
		if matches(k, family) {
			sum = sum.Add(h)
		}
	}
	return sum
}

// HistDelta returns the histogram family's bucket increments over the
// window, summed across its series — the per-window distribution that
// Quantile estimates from.
func (w Window) HistDelta(family string) obs.HistSnapshot {
	if len(w.Samples) < 2 {
		return obs.HistSnapshot{}
	}
	return histSum(w.Samples[len(w.Samples)-1].Snap, family).Sub(histSum(w.Samples[0].Snap, family))
}

// Quantile estimates the q-quantile of the histogram family's
// observations within the window (0 when the window saw none).
func (w Window) Quantile(family string, q float64) float64 {
	return w.HistDelta(family).Quantile(q)
}

// Ratio returns the windowed delta of the num family over the sum of the
// num and den deltas — the hit-ratio shape (hits / (hits + misses)) —
// or 0 when the window moved neither.
func (w Window) Ratio(num, den string) float64 {
	n, d := w.Delta(num), w.Delta(den)
	if n+d <= 0 {
		return 0
	}
	return n / (n + d)
}
