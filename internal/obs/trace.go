package obs

import (
	"sync"
	"time"
)

// Counters is the flat counter delta a span carries: the storage.Stats
// vocabulary (kept field-for-field so per-phase deltas sum to a run's
// aggregate I/O stats), the NM-CIJ filter-quality counters, and a generic
// Items count (batches, tiles, units — whatever the phase iterates over).
// The zero value is an empty delta.
type Counters struct {
	LogicalReads int64 `json:"logical_reads,omitempty"`
	PagesRead    int64 `json:"pages_read,omitempty"`
	PagesWritten int64 `json:"pages_written,omitempty"`
	DecodeHits   int64 `json:"decode_hits,omitempty"`
	DecodeMisses int64 `json:"decode_misses,omitempty"`
	Candidates   int64 `json:"candidates,omitempty"`
	TrueHits     int64 `json:"true_hits,omitempty"`
	PCells       int64 `json:"p_cells,omitempty"`
	Items        int64 `json:"items,omitempty"`
}

// Add returns the field-wise sum c + o.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		LogicalReads: c.LogicalReads + o.LogicalReads,
		PagesRead:    c.PagesRead + o.PagesRead,
		PagesWritten: c.PagesWritten + o.PagesWritten,
		DecodeHits:   c.DecodeHits + o.DecodeHits,
		DecodeMisses: c.DecodeMisses + o.DecodeMisses,
		Candidates:   c.Candidates + o.Candidates,
		TrueHits:     c.TrueHits + o.TrueHits,
		PCells:       c.PCells + o.PCells,
		Items:        c.Items + o.Items,
	}
}

// Span is one aggregated phase of a traced query: everything recorded
// under the same (Phase, Tag) pair folded together. Wall is the summed
// wall-clock of the phase's recordings; the counters are their summed
// deltas. JSON tags make spans loggable as-is through slog's JSONHandler.
type Span struct {
	Phase string        `json:"phase"`
	Tag   string        `json:"tag,omitempty"`
	Wall  time.Duration `json:"wall_ns"`
	Counters
}

// DefaultMaxSpans bounds the distinct (phase, tag) pairs a Trace keeps
// before folding new pairs into a per-phase overflow span — generous for
// phase-per-worker traces, a guard against per-tile explosion.
const DefaultMaxSpans = 128

// OverflowTag is the tag of the per-phase span that absorbs recordings
// arriving after the distinct-span cap is reached.
const OverflowTag = "other"

// Trace accumulates the phase spans of one query. Add is safe for
// concurrent use (parallel workers record into one trace); a nil *Trace
// is the disabled tracer — every method no-ops — so call sites guard
// their measurement work with Enabled and pass the trace down untouched.
type Trace struct {
	mu      sync.Mutex
	start   time.Time
	keys    map[spanKey]int // (phase, tag) -> index into spans
	spans   []Span
	max     int
	dropped int64
}

type spanKey struct{ phase, tag string }

// NewTrace starts a trace clocked from now.
func NewTrace() *Trace {
	return &Trace{
		start: time.Now(),
		keys:  make(map[spanKey]int),
		max:   DefaultMaxSpans,
	}
}

// SetMaxSpans bounds the number of distinct (phase, tag) spans kept;
// n <= 0 restores the default. Call before recording.
func (t *Trace) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxSpans
	}
	t.mu.Lock()
	t.max = n
	t.mu.Unlock()
}

// Enabled reports whether the trace records anything: the idiom is
// tr.Enabled() guarding the caller's clock reads and stat snapshots.
func (t *Trace) Enabled() bool { return t != nil }

// Add folds one recording into the span keyed (phase, tag). Past the
// distinct-span cap, new pairs collapse into (phase, OverflowTag) and the
// dropped count grows. Nil-safe no-op.
func (t *Trace) Add(phase, tag string, wall time.Duration, c Counters) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := spanKey{phase, tag}
	i, ok := t.keys[key]
	if !ok {
		if len(t.spans) >= t.max {
			t.dropped++
			key = spanKey{phase, OverflowTag}
			if i, ok = t.keys[key]; !ok {
				// One overflow span per phase may exceed the cap; the
				// phase set itself is small and bounded by the callers.
				i = t.addLocked(key)
			}
		} else {
			i = t.addLocked(key)
		}
	}
	sp := &t.spans[i]
	sp.Wall += wall
	sp.Counters = sp.Counters.Add(c)
}

func (t *Trace) addLocked(key spanKey) int {
	t.keys[key] = len(t.spans)
	t.spans = append(t.spans, Span{Phase: key.phase, Tag: key.tag})
	return len(t.spans) - 1
}

// Spans returns a copy of the aggregated spans in first-recorded order.
// Nil-safe (returns nil).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Total returns the field-wise sum of every span's counters — the
// aggregate the per-phase deltas must reconcile with. Nil-safe.
func (t *Trace) Total() Counters {
	if t == nil {
		return Counters{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var total Counters
	for i := range t.spans {
		total = total.Add(t.spans[i].Counters)
	}
	return total
}

// Wall returns the elapsed time since the trace started. Nil-safe (zero).
func (t *Trace) Wall() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Dropped returns how many recordings were folded into overflow spans
// because the distinct-span cap was hit. Nil-safe (zero).
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
