package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// A nil *Trace is the disabled tracer: every method no-ops safely.
func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	tr.Add("filter", "", time.Second, Counters{PagesRead: 1})
	tr.SetMaxSpans(4)
	if tr.Spans() != nil || tr.Total() != (Counters{}) || tr.Wall() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil trace leaked state")
	}
}

func TestTraceAggregatesByPhaseTag(t *testing.T) {
	tr := NewTrace()
	tr.Add("filter", "", 2*time.Millisecond, Counters{PagesRead: 3, Candidates: 10})
	tr.Add("filter", "", 3*time.Millisecond, Counters{PagesRead: 1, Candidates: 5})
	tr.Add("refine", "", time.Millisecond, Counters{PCells: 7})
	tr.Add("join", "w1", time.Millisecond, Counters{TrueHits: 2})

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3: %+v", len(spans), spans)
	}
	if spans[0].Phase != "filter" || spans[0].Wall != 5*time.Millisecond ||
		spans[0].PagesRead != 4 || spans[0].Candidates != 15 {
		t.Fatalf("filter span = %+v", spans[0])
	}
	total := tr.Total()
	if total.PagesRead != 4 || total.Candidates != 15 || total.PCells != 7 || total.TrueHits != 2 {
		t.Fatalf("total = %+v", total)
	}
	if tr.Wall() <= 0 {
		t.Fatal("wall clock did not advance")
	}
}

func TestTraceOverflowFoldsIntoOther(t *testing.T) {
	tr := NewTrace()
	tr.SetMaxSpans(2)
	tr.Add("tile", "0,0", time.Millisecond, Counters{TrueHits: 1})
	tr.Add("tile", "0,1", time.Millisecond, Counters{TrueHits: 1})
	tr.Add("tile", "0,2", time.Millisecond, Counters{TrueHits: 1}) // overflows
	tr.Add("tile", "0,3", time.Millisecond, Counters{TrueHits: 1}) // folds into same overflow span
	tr.Add("tile", "0,0", time.Millisecond, Counters{TrueHits: 1}) // existing key, not dropped

	if got := tr.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	spans := tr.Spans()
	var other *Span
	for i := range spans {
		if spans[i].Tag == OverflowTag {
			other = &spans[i]
		}
	}
	if other == nil || other.TrueHits != 2 {
		t.Fatalf("overflow span = %+v (spans %+v)", other, spans)
	}
	// Counters are conserved across the fold.
	if total := tr.Total(); total.TrueHits != 5 {
		t.Fatalf("total hits = %d, want 5", total.TrueHits)
	}
}

// Parallel workers record into one trace; run under -race in CI.
func TestTraceConcurrentAdd(t *testing.T) {
	tr := NewTrace()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tag := fmt.Sprintf("w%d", id)
			for i := 0; i < per; i++ {
				tr.Add("filter", tag, time.Microsecond, Counters{Candidates: 1})
				tr.Add("join", tag, time.Microsecond, Counters{TrueHits: 1})
			}
		}(w)
	}
	wg.Wait()
	total := tr.Total()
	if total.Candidates != workers*per || total.TrueHits != workers*per {
		t.Fatalf("total = %+v", total)
	}
	if got := len(tr.Spans()); got != 2*workers {
		t.Fatalf("spans = %d, want %d", got, 2*workers)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{LogicalReads: 1, PagesRead: 2, PagesWritten: 3, DecodeHits: 4, DecodeMisses: 5, Candidates: 6, TrueHits: 7, PCells: 8, Items: 9}
	b := a.Add(a)
	if b.LogicalReads != 2 || b.PagesRead != 4 || b.PagesWritten != 6 || b.DecodeHits != 8 ||
		b.DecodeMisses != 10 || b.Candidates != 12 || b.TrueHits != 14 || b.PCells != 16 || b.Items != 18 {
		t.Fatalf("sum = %+v", b)
	}
}
