package obs

import (
	"runtime"
	"sync"
	"time"
)

// GCPauseBuckets is the default layout for the GC pause histogram:
// exponential from 1 µs to 1 s, two orders of magnitude finer than the
// request-latency buckets (a healthy Go GC pauses well under a
// millisecond).
var GCPauseBuckets = []float64{
	1e-6, 1e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 0.1, 1,
}

// RuntimeCollector feeds Go runtime and process metrics into a registry:
// goroutine count, heap in-use, cumulative allocation (whose windowed
// rate is the allocation rate), a GC pause histogram and GC cycle count,
// plus a func-backed process uptime gauge. The registry core stays
// dependency-free: nothing in metrics.go knows about the runtime — this
// collector is the one (stdlib-only) bridge, and it only runs when
// Collect is called, so registries that never ask pay nothing.
//
// Collect is cheap enough to run per scrape (runtime.ReadMemStats is
// microseconds at service heap sizes) and is invoked by the /metrics
// handler and the metrics-history sampler.
type RuntimeCollector struct {
	goroutines *Gauge
	heapInuse  *Gauge
	heapAlloc  *Gauge
	allocTotal *Counter
	gcPauses   *Histogram
	gcCycles   *Counter

	mu             sync.Mutex
	lastNumGC      uint32
	lastTotalAlloc uint64
}

// NewRuntimeCollector registers the runtime families on reg and returns
// the collector that updates them. start anchors process_uptime_seconds;
// the zero value selects time.Now().
func NewRuntimeCollector(reg *Registry, start time.Time) *RuntimeCollector {
	if start.IsZero() {
		start = time.Now()
	}
	c := &RuntimeCollector{
		goroutines: reg.Gauge("go_goroutines",
			"Goroutines currently live."),
		heapInuse: reg.Gauge("go_heap_inuse_bytes",
			"Heap bytes in in-use spans."),
		heapAlloc: reg.Gauge("go_heap_alloc_bytes",
			"Heap bytes currently allocated and reachable or not yet swept."),
		allocTotal: reg.Counter("go_alloc_bytes_total",
			"Cumulative heap bytes allocated; the windowed rate is the allocation rate."),
		gcPauses: reg.Histogram("go_gc_pause_seconds",
			"Stop-the-world GC pause durations.", GCPauseBuckets),
		gcCycles: reg.Counter("go_gc_cycles_total",
			"Completed GC cycles."),
	}
	reg.GaugeFunc("process_uptime_seconds",
		"Seconds since the process (or service) started.", func() float64 {
			return time.Since(start).Seconds()
		})
	return c
}

// Collect reads the runtime's current state into the registered
// families. Safe for concurrent use; pause feeding is serialized so each
// GC cycle's pause is observed exactly once.
func (c *RuntimeCollector) Collect() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.goroutines.Set(int64(runtime.NumGoroutine()))
	c.heapInuse.Set(int64(ms.HeapInuse))
	c.heapAlloc.Set(int64(ms.HeapAlloc))

	c.mu.Lock()
	defer c.mu.Unlock()
	c.allocTotal.Add(int64(ms.TotalAlloc - c.lastTotalAlloc))
	c.lastTotalAlloc = ms.TotalAlloc
	// PauseNs is a circular buffer of the last 256 pause durations; feed
	// the cycles completed since the previous Collect (cap 256: older
	// pauses have been overwritten and are unobservable).
	newCycles := ms.NumGC - c.lastNumGC
	if newCycles > uint32(len(ms.PauseNs)) {
		newCycles = uint32(len(ms.PauseNs))
	}
	for i := uint32(0); i < newCycles; i++ {
		idx := (ms.NumGC - i + 255) % 256
		c.gcPauses.Observe(float64(ms.PauseNs[idx]) / 1e9)
	}
	c.gcCycles.Add(int64(ms.NumGC - c.lastNumGC))
	c.lastNumGC = ms.NumGC
}
