// Package obs is the repo's dependency-free observability substrate: a
// metrics core with Prometheus text exposition and a per-query phase
// tracer. It exists because the paper's whole argument is cost accounting
// — NM-CIJ wins on page accesses — and a production serving tier needs
// that accounting per query and per phase, not as one aggregate dump.
//
// # Metrics
//
// A Registry holds named metric families — counters, gauges and
// fixed-bucket histograms, optionally labeled — and renders them in the
// Prometheus text exposition format (version 0.0.4) via WriteTo or the
// http.Handler returned by Handler. All mutation paths are atomic and
// safe for concurrent use; scrapes never block writers.
//
//	reg := obs.NewRegistry()
//	joins := reg.CounterVec("cij_joins_total", "Completed joins.", "algo")
//	lat := reg.Histogram("cij_join_seconds", "Join latency.", obs.DefLatencyBuckets)
//	joins.With("nm").Inc()
//	lat.Observe(0.042)
//
// Histograms expose Snapshot (a consistent-enough copy of bucket counts)
// with Quantile estimation by linear interpolation inside the bucket, the
// mechanism behind the p50/p95/p99 columns of BENCH_service.json.
//
// # Tracing
//
// A Trace accumulates phase-aggregated spans for one query: each
// Add(phase, tag, wall, counters) call folds into the span keyed
// (phase, tag), so a thousand-batch NM-CIJ run yields a handful of spans
// (traverse, voronoi, filter, refine, join), and a parallel run yields
// the same set once per worker tag. Counters carry the storage.Stats
// vocabulary (logical reads, pages read/written, decode hits/misses)
// plus the filter-quality counters, so the per-phase deltas of a traced
// join sum exactly to the run's aggregate Stats — the accounting
// invariance the service tests pin.
//
// A nil *Trace is the disabled tracer: every method is a nil-safe no-op,
// and callers guard their time.Now/snapshot work behind Enabled, so the
// hot join loops pay zero allocations and zero clock reads when tracing
// is off (see the alloc-guard tests in internal/core).
package obs
