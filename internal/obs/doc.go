// Package obs is the repo's dependency-free observability substrate: a
// metrics core with Prometheus text exposition and a per-query phase
// tracer. It exists because the paper's whole argument is cost accounting
// — NM-CIJ wins on page accesses — and a production serving tier needs
// that accounting per query and per phase, not as one aggregate dump.
//
// # Metrics
//
// A Registry holds named metric families — counters, gauges and
// fixed-bucket histograms, optionally labeled — and renders them in the
// Prometheus text exposition format (version 0.0.4) via WriteTo or the
// http.Handler returned by Handler. All mutation paths are atomic and
// safe for concurrent use; scrapes never block writers.
//
//	reg := obs.NewRegistry()
//	joins := reg.CounterVec("cij_joins_total", "Completed joins.", "algo")
//	lat := reg.Histogram("cij_join_seconds", "Join latency.", obs.DefLatencyBuckets)
//	joins.With("nm").Inc()
//	lat.Observe(0.042)
//
// Histograms expose Snapshot (a consistent-enough copy of bucket counts)
// with Quantile estimation by linear interpolation inside the bucket, the
// mechanism behind the p50/p95/p99 columns of BENCH_service.json.
//
// # Tracing
//
// A Trace accumulates phase-aggregated spans for one query: each
// Add(phase, tag, wall, counters) call folds into the span keyed
// (phase, tag), so a thousand-batch NM-CIJ run yields a handful of spans
// (traverse, voronoi, filter, refine, join), and a parallel run yields
// the same set once per worker tag. Counters carry the storage.Stats
// vocabulary (logical reads, pages read/written, decode hits/misses)
// plus the filter-quality counters, so the per-phase deltas of a traced
// join sum exactly to the run's aggregate Stats — the accounting
// invariance the service tests pin.
//
// A nil *Trace is the disabled tracer: every method is a nil-safe no-op,
// and callers guard their time.Now/snapshot work behind Enabled, so the
// hot join loops pay zero allocations and zero clock reads when tracing
// is off (see the alloc-guard tests in internal/core).
//
// ChromeTraceFromSpans (trace_export.go) renders a trace's spans in the
// Chrome Trace Event Format — one thread row per span tag, sequential
// complete events whose widths are the measured wall clock, counter
// deltas in the event args — loadable as-is in chrome://tracing or
// Perfetto. The service serves it at GET /debug/queries/{id}/trace.json
// and cijtool writes it with join -trace-out.
//
// # Snapshots, history and runtime metrics
//
// Registry.Snapshot captures every family as plain values keyed by
// flattened series identity (name{labels}), histograms as HistSnapshot.
// The obs/history subpackage rings those snapshots up on a fixed
// interval and computes windowed deltas, rates, hit-ratios and quantiles
// between any two of them — self-scraped Prometheus-style trend queries
// (GET /stats/history) with no external scraper.
//
// RuntimeCollector (runtime.go) is the one stdlib bridge from the Go
// runtime into a registry: goroutine count, heap gauges, cumulative
// allocation, a GC pause histogram and process uptime, refreshed only
// when Collect is called (per /metrics scrape and per history sample).
package obs
