package obs

import (
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// expositionLineRe matches one sample line of the text exposition format:
// metric name, optional label set, and a float/int value.
var expositionLineRe = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$`)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := reg.Counter("c_total", "a counter"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}

	g := reg.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestCounterVecSeriesIdentity(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("req_total", "requests", "route", "code")
	v.With("/join", "200").Add(3)
	v.With("/join", "400").Inc()
	if got := v.With("/join", "200").Value(); got != 3 {
		t.Fatalf("series = %d, want 3", got)
	}
	if got := reg.FindCounter("req_total", "/join", "400"); got == nil || got.Value() != 1 {
		t.Fatalf("FindCounter = %v", got)
	}
	if reg.FindCounter("req_total", "/nope", "200") != nil {
		t.Fatal("unknown series should be nil")
	}
	if reg.FindCounter("absent") != nil {
		t.Fatal("absent family should be nil")
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x")
	assertPanics(t, func() { reg.Gauge("x_total", "x") })
	assertPanics(t, func() { reg.CounterVec("x_total", "x", "label") })
	assertPanics(t, func() { reg.Counter("bad name", "x") })
	assertPanics(t, func() { reg.CounterVec("y_total", "y", "bad-label") })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

// Bucket boundaries are inclusive upper bounds (Prometheus `le`): a value
// exactly on a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", "h", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 5, 6} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 1, 1} // le=1: {0.5, 1}; le=2: {1.0000001, 2}; le=5: {5}; +Inf: {6}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-15.5000001) > 1e-9 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestHistogramBucketsNormalized(t *testing.T) {
	reg := NewRegistry()
	// Unsorted with an explicit +Inf: sorted, +Inf dropped (implicit).
	h := reg.Histogram("n_seconds", "n", []float64{5, 1, math.Inf(1), 2})
	if got := h.Snapshot().Bounds; len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Fatalf("bounds = %v", got)
	}
	// nil buckets select the default latency layout.
	d := reg.Histogram("d_seconds", "d", nil)
	if got := d.Snapshot().Bounds; len(got) != len(DefLatencyBuckets) {
		t.Fatalf("default bounds = %v", got)
	}
	assertPanics(t, func() { reg.Histogram("inf_only", "i", []float64{math.Inf(1)}) })
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_seconds", "q", []float64{0.1, 0.2, 0.4, 0.8})
	// 100 observations uniform in (0, 0.1]: everything in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(0.001 * float64(i))
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); math.Abs(p50-0.05) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.05", p50)
	}
	if p100 := s.Quantile(1); math.Abs(p100-0.1) > 1e-9 {
		t.Fatalf("p100 = %v, want 0.1", p100)
	}

	h2 := reg.Histogram("q2_seconds", "q", []float64{1, 2})
	h2.Observe(10) // overflow bucket clamps to the largest finite bound
	if got := h2.Snapshot().Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %v, want 2", got)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramSnapshotSub(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("s_seconds", "s", []float64{1})
	h.Observe(0.5)
	before := h.Snapshot()
	h.Observe(0.5)
	h.Observe(3)
	d := h.Snapshot().Sub(before)
	if d.Count != 2 || d.Counts[0] != 1 || d.Counts[1] != 1 {
		t.Fatalf("diff = %+v", d)
	}
	if math.Abs(d.Sum-3.5) > 1e-9 {
		t.Fatalf("diff sum = %v", d.Sum)
	}
}

// Concurrent increments across counters, gauges, histogram observations
// and scrapes — run under -race in CI.
func TestConcurrentMutationAndScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("cc_total", "c")
	v := reg.CounterVec("cv_total", "v", "w")
	h := reg.HistogramVec("ch_seconds", "h", []float64{0.01, 0.1, 1}, "algo")
	reg.GaugeFunc("cg", "g", func() float64 { return 42 })

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lbl := string(rune('a' + id%4))
			for i := 0; i < per; i++ {
				c.Inc()
				v.With(lbl).Inc()
				h.With(lbl).Observe(0.05)
				if i%100 == 0 {
					var sb strings.Builder
					reg.WriteTo(&sb)
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	var total int64
	for _, lbl := range []string{"a", "b", "c", "d"} {
		total += v.With(lbl).Value()
		if s := h.With(lbl).Snapshot(); s.Count != workers/4*per || s.Counts[1] != s.Count {
			t.Fatalf("histogram %q snapshot = %+v", lbl, s)
		}
	}
	if total != workers*per {
		t.Fatalf("vec total = %d, want %d", total, workers*per)
	}
}

func TestExpositionFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("plain_total", "a plain counter").Add(3)
	reg.CounterVec("lbl_total", "labeled", "route").With(`a"b\c`).Inc()
	reg.Histogram("lat_seconds", "latency", []float64{0.5, 1}).Observe(0.7)
	reg.GaugeFunc("fn_gauge", "func gauge", func() float64 { return 2.5 })

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP plain_total a plain counter\n# TYPE plain_total counter\nplain_total 3\n",
		"# TYPE fn_gauge gauge\nfn_gauge 2.5\n",
		`lbl_total{route="a\"b\\c"} 1` + "\n",
		`lat_seconds_bucket{le="0.5"} 0` + "\n",
		`lat_seconds_bucket{le="1"} 1` + "\n",
		`lat_seconds_bucket{le="+Inf"} 1` + "\n",
		"lat_seconds_sum 0.7\n",
		"lat_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families are sorted by name for deterministic scrapes.
	if strings.Index(out, "# TYPE fn_gauge") > strings.Index(out, "# TYPE lat_seconds") {
		t.Fatalf("families not sorted:\n%s", out)
	}
	// Every non-comment line must parse as `name{labels} value`.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLineRe.MatchString(line) {
			t.Fatalf("unparseable exposition line %q", line)
		}
	}
}

func TestCounterFuncAndHandler(t *testing.T) {
	reg := NewRegistry()
	var hits int64 = 9
	reg.CounterFunc("hits_total", "cache hits", func() float64 { return float64(hits) })
	var sb strings.Builder
	reg.WriteTo(&sb)
	if !strings.Contains(sb.String(), "hits_total 9\n") {
		t.Fatalf("func counter missing:\n%s", sb.String())
	}
	if reg.Handler() == nil {
		t.Fatal("nil handler")
	}
}
