package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"cij/internal/geom"
	"cij/internal/storage"
)

var testDomain = geom.NewRect(0, 0, 10000, 10000)

func newBuf(t testing.TB, capacity int) *storage.Buffer {
	t.Helper()
	return storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), capacity)
}

func randPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
	}
	return pts
}

func TestCapacities(t *testing.T) {
	// 1 KB pages: 25 internal entries, 42 point entries — in the ballpark
	// of the paper's setting.
	if got := MaxInternalEntries(1024); got != 25 {
		t.Errorf("internal fan-out = %d, want 25", got)
	}
	if got := MaxPointEntries(1024); got != 42 {
		t.Errorf("leaf capacity = %d, want 42", got)
	}
}

func TestNodeEncodeDecodePoints(t *testing.T) {
	n := &Node{Leaf: true, Entries: []Entry{
		{MBR: geom.RectFromPoint(geom.Pt(1, 2)), ID: 7, Pt: geom.Pt(1, 2)},
		{MBR: geom.RectFromPoint(geom.Pt(-3.5, 4.25)), ID: 9, Pt: geom.Pt(-3.5, 4.25)},
	}}
	got := decodeNode(encodeNode(n, KindPoints, 1024), KindPoints)
	if !got.Leaf || len(got.Entries) != 2 {
		t.Fatalf("round trip lost structure: %+v", got)
	}
	for i := range n.Entries {
		if got.Entries[i].ID != n.Entries[i].ID || !got.Entries[i].Pt.Eq(n.Entries[i].Pt) {
			t.Errorf("entry %d mismatch: %+v vs %+v", i, got.Entries[i], n.Entries[i])
		}
	}
}

func TestNodeEncodeDecodePolygons(t *testing.T) {
	tri := geom.Polygon{V: []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(0, 5)}}
	quad := geom.NewRect(10, 10, 20, 30).Polygon()
	n := &Node{Leaf: true, Entries: []Entry{
		{MBR: tri.Bounds(), ID: 3, Poly: tri},
		{MBR: quad.Bounds(), ID: 4, Poly: quad},
	}}
	got := decodeNode(encodeNode(n, KindPolygons, 1024), KindPolygons)
	if len(got.Entries) != 2 {
		t.Fatalf("lost entries")
	}
	for i := range n.Entries {
		if len(got.Entries[i].Poly.V) != len(n.Entries[i].Poly.V) {
			t.Fatalf("entry %d vertex count mismatch", i)
		}
		for j, v := range n.Entries[i].Poly.V {
			if !got.Entries[i].Poly.V[j].Eq(v) {
				t.Errorf("entry %d vertex %d mismatch", i, j)
			}
		}
	}
}

func TestNodeEncodeDecodeInternal(t *testing.T) {
	n := &Node{Leaf: false, Entries: []Entry{
		{MBR: geom.NewRect(0, 0, 5, 5), Child: 12},
		{MBR: geom.NewRect(3, 3, 9, 9), Child: 99},
	}}
	got := decodeNode(encodeNode(n, KindPoints, 1024), KindPoints)
	if got.Leaf {
		t.Fatal("leaf flag corrupted")
	}
	for i := range n.Entries {
		if got.Entries[i].Child != n.Entries[i].Child {
			t.Errorf("child %d mismatch", i)
		}
		if got.Entries[i].MBR != n.Entries[i].MBR {
			t.Errorf("MBR %d mismatch", i)
		}
	}
}

func TestBulkLoadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 41, 42, 43, 500, 3000} {
		pts := randPoints(rng, n)
		tr := BulkLoadPoints(newBuf(t, 64), pts, testDomain, 1)
		if tr.Size() != n {
			t.Fatalf("n=%d: size = %d", n, tr.Size())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := len(tr.AllEntries()); got != n {
			t.Fatalf("n=%d: AllEntries = %d", n, got)
		}
	}
}

func TestBulkLoadSTRInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := randPoints(rng, 2500)
	tr := BulkLoadPointsSTR(newBuf(t, 64), pts, 1)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 2500 {
		t.Fatalf("size = %d", tr.Size())
	}
}

func TestBulkLoadFillFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pts := randPoints(rng, 2000)
	full := BulkLoadPoints(newBuf(t, 64), pts, testDomain, 1.0)
	loose := BulkLoadPoints(newBuf(t, 64), pts, testDomain, 0.5)
	if loose.NumPages() <= full.NumPages() {
		t.Errorf("half-full tree should use more pages: full=%d loose=%d",
			full.NumPages(), loose.NumPages())
	}
	if err := loose.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertInvariantsAndQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	buf := newBuf(t, 64)
	tr := New(buf, KindPoints)
	pts := randPoints(rng, 1200)
	for i, p := range pts {
		tr.InsertPoint(int64(i), p)
	}
	if tr.Size() != len(pts) {
		t.Fatalf("size = %d", tr.Size())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Inserted tree must answer range queries identically to brute force.
	for trial := 0; trial < 20; trial++ {
		q := geom.NewRect(rng.Float64()*9000, rng.Float64()*9000,
			rng.Float64()*10000, rng.Float64()*10000)
		got := idsOf(tr.RangeSearch(q))
		want := bruteRange(pts, q)
		if !equalIDs(got, want) {
			t.Fatalf("range mismatch: got %d ids, want %d", len(got), len(want))
		}
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	pts := randPoints(rng, 3000)
	tr := BulkLoadPoints(newBuf(t, 128), pts, testDomain, 1)
	for trial := 0; trial < 50; trial++ {
		cx, cy := rng.Float64()*10000, rng.Float64()*10000
		w := rng.Float64() * 2000
		q := geom.NewRect(cx-w, cy-w, cx+w, cy+w)
		got := idsOf(tr.RangeSearch(q))
		want := bruteRange(pts, q)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: got %v want %v", trial, len(got), len(want))
		}
	}
	// Empty tree returns nothing.
	empty := New(newBuf(t, 4), KindPoints)
	if got := empty.RangeSearch(geom.NewRect(0, 0, 1, 1)); len(got) != 0 {
		t.Fatal("empty tree should return no results")
	}
}

func TestNNIteratorOrderAndCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	pts := randPoints(rng, 2000)
	tr := BulkLoadPoints(newBuf(t, 128), pts, testDomain, 1)
	anchor := geom.Pt(5000, 5000)
	it := tr.NewNNIterator(anchor)
	var dists []float64
	seen := map[int64]bool{}
	for {
		e, d, ok := it.Next()
		if !ok {
			break
		}
		if seen[e.ID] {
			t.Fatalf("object %d returned twice", e.ID)
		}
		seen[e.ID] = true
		dists = append(dists, d)
	}
	if len(dists) != len(pts) {
		t.Fatalf("iterator returned %d of %d objects", len(dists), len(pts))
	}
	if !sort.Float64sAreSorted(dists) {
		t.Fatal("NN iterator distances are not ascending")
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	pts := randPoints(rng, 1500)
	tr := BulkLoadPoints(newBuf(t, 128), pts, testDomain, 1)
	for trial := 0; trial < 20; trial++ {
		anchor := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		k := 1 + rng.Intn(20)
		got := tr.KNN(anchor, k, nil)
		// Brute force.
		idx := make([]int, len(pts))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return pts[idx[a]].Dist2(anchor) < pts[idx[b]].Dist2(anchor)
		})
		if len(got) != k {
			t.Fatalf("KNN returned %d, want %d", len(got), k)
		}
		for i := 0; i < k; i++ {
			if got[i].Pt.Dist(anchor) != pts[idx[i]].Dist(anchor) {
				// Ties can permute ids; compare distances.
				d1, d2 := got[i].Pt.Dist(anchor), pts[idx[i]].Dist(anchor)
				if d1 != d2 {
					t.Fatalf("trial %d: kth dist %v != %v", trial, d1, d2)
				}
			}
		}
	}
}

func TestKNNFilter(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(3, 3), geom.Pt(4, 4)}
	tr := BulkLoadPoints(newBuf(t, 16), pts, testDomain, 1)
	got := tr.KNN(geom.Pt(0, 0), 2, func(e Entry) bool { return e.ID != 0 })
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("filtered KNN = %+v", got)
	}
}

func TestVisitLeavesHilbertCoversAllOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	pts := randPoints(rng, 2000)
	tr := BulkLoadPoints(newBuf(t, 128), pts, testDomain, 1)
	seen := map[int64]int{}
	leaves := 0
	tr.VisitLeavesHilbert(testDomain, func(leaf *Node) {
		leaves++
		for _, e := range leaf.Entries {
			seen[e.ID]++
		}
	})
	if len(seen) != len(pts) {
		t.Fatalf("visited %d of %d objects", len(seen), len(pts))
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("object %d visited %d times", id, c)
		}
	}
	if leaves == 0 {
		t.Fatal("no leaves visited")
	}
}

func TestVisitLeavesHilbertLocality(t *testing.T) {
	// Successive leaves in Hilbert order should be closer together on
	// average than in plain stored order on an STR tree (which alternates
	// slabs). Weak statistical check on centers.
	rng := rand.New(rand.NewSource(50))
	pts := randPoints(rng, 4000)
	tr := BulkLoadPoints(newBuf(t, 256), pts, testDomain, 1)
	dist := func(visit func(func(*Node))) float64 {
		var prev geom.Point
		first := true
		total := 0.0
		visit(func(leaf *Node) {
			c := leaf.MBR().Center()
			if !first {
				total += prev.Dist(c)
			}
			prev, first = c, false
		})
		return total
	}
	hil := dist(func(f func(*Node)) { tr.VisitLeavesHilbert(testDomain, f) })
	if hil <= 0 {
		t.Fatal("no traversal happened")
	}
	// The Hilbert-packed tree visited in Hilbert order should walk less
	// total distance than 2x the domain diagonal per sqrt(n) rows — loose
	// sanity bound: average hop below 1/4 of the domain side.
	leaves := 0
	tr.VisitLeaves(func(*Node) { leaves++ })
	if avg := hil / float64(leaves-1); avg > 2500 {
		t.Errorf("average Hilbert hop too large: %v", avg)
	}
}

func TestSTJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	// Polygon trees joined on MBR intersection.
	mk := func(n int, seed int64) (*Tree, []geom.Polygon) {
		r := rand.New(rand.NewSource(seed))
		items := make([]PolygonItem, n)
		polys := make([]geom.Polygon, n)
		for i := 0; i < n; i++ {
			cx, cy := r.Float64()*10000, r.Float64()*10000
			w, h := r.Float64()*300+1, r.Float64()*300+1
			poly := geom.NewRect(cx-w, cy-h, cx+w, cy+h).Polygon()
			items[i] = PolygonItem{ID: int64(i), Poly: poly}
			polys[i] = poly
		}
		sort.Slice(items, func(a, b int) bool {
			return geom.HilbertValue(items[a].Poly.Centroid(), testDomain) <
				geom.HilbertValue(items[b].Poly.Centroid(), testDomain)
		})
		return PackPolygons(newBuf(t, 256), items), polys
	}
	ta, pa := mk(400, 52)
	tb, pb := mk(300, 53)
	_ = rng
	got := map[[2]int64]bool{}
	STJoin(ta, tb, func(ea, eb Entry) {
		got[[2]int64{ea.ID, eb.ID}] = true
	})
	want := map[[2]int64]bool{}
	for i, g1 := range pa {
		for j, g2 := range pb {
			if g1.Bounds().Intersects(g2.Bounds()) {
				want[[2]int64{int64(i), int64(j)}] = true
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("ST join pairs = %d, brute force = %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing pair %v", k)
		}
	}
}

func TestSTJoinDifferentHeights(t *testing.T) {
	// Join a large tree with a tiny one to exercise the height-alignment
	// path.
	rng := rand.New(rand.NewSource(54))
	big := make([]PolygonItem, 2000)
	for i := range big {
		cx, cy := rng.Float64()*10000, rng.Float64()*10000
		big[i] = PolygonItem{ID: int64(i), Poly: geom.NewRect(cx, cy, cx+50, cy+50).Polygon()}
	}
	small := []PolygonItem{
		{ID: 0, Poly: geom.NewRect(0, 0, 5000, 5000).Polygon()},
		{ID: 1, Poly: geom.NewRect(5000, 5000, 10000, 10000).Polygon()},
		{ID: 2, Poly: geom.NewRect(9000, 0, 10050, 1000).Polygon()},
	}
	ta := PackPolygons(newBuf(t, 256), big)
	tb := PackPolygons(newBuf(t, 16), small)
	if ta.Height() <= tb.Height() {
		t.Skipf("height setup failed: %d vs %d", ta.Height(), tb.Height())
	}
	count := 0
	STJoin(ta, tb, func(ea, eb Entry) { count++ })
	want := 0
	for _, b := range big {
		for _, s := range small {
			if b.Poly.Bounds().Intersects(s.Poly.Bounds()) {
				want++
			}
		}
	}
	if count != want {
		t.Fatalf("pairs = %d, want %d", count, want)
	}
	// Join in the opposite order too.
	count2 := 0
	STJoin(tb, ta, func(ea, eb Entry) { count2++ })
	if count2 != want {
		t.Fatalf("reversed pairs = %d, want %d", count2, want)
	}
}

func TestPolygonPackerInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	pk := NewPolygonPacker(newBuf(t, 64))
	const n = 1000
	for i := 0; i < n; i++ {
		cx, cy := rng.Float64()*10000, rng.Float64()*10000
		// Vary vertex counts 3..10 to exercise byte packing.
		k := 3 + rng.Intn(8)
		g := regularPolygon(geom.Pt(cx, cy), 40, k)
		pk.Add(int64(i), g)
	}
	tr := pk.Finish()
	if tr.Size() != n {
		t.Fatalf("size = %d", tr.Size())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.AllEntries()); got != n {
		t.Fatalf("AllEntries = %d", got)
	}
}

func TestInsertPolygonDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	tr := New(newBuf(t, 64), KindPolygons)
	const n = 400
	for i := 0; i < n; i++ {
		cx, cy := rng.Float64()*10000, rng.Float64()*10000
		tr.InsertPolygon(int64(i), regularPolygon(geom.Pt(cx, cy), 30, 3+rng.Intn(6)))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != n {
		t.Fatalf("size = %d", tr.Size())
	}
}

func TestInsertWrongKindPanics(t *testing.T) {
	tr := New(newBuf(t, 4), KindPoints)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.InsertPolygon(0, geom.NewRect(0, 0, 1, 1).Polygon())
}

func TestNumPagesMatchesDiskForSingleTree(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	buf := newBuf(t, 64)
	pts := randPoints(rng, 1000)
	tr := BulkLoadPoints(buf, pts, testDomain, 1)
	if got, want := tr.NumPages(), buf.Disk().NumPages(); got != want {
		t.Fatalf("NumPages = %d, disk has %d", got, want)
	}
}

func TestIOAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	buf := newBuf(t, 0) // no cache: logical == physical
	pts := randPoints(rng, 1000)
	tr := BulkLoadPoints(buf, pts, testDomain, 1)
	if w := buf.Stats().PageWrites; w != int64(tr.NumPages()) {
		t.Fatalf("bulk load writes = %d, pages = %d", w, tr.NumPages())
	}
	buf.ResetStats()
	tr.RangeSearch(geom.NewRect(0, 0, 100, 100))
	s := buf.Stats()
	if s.LogicalReads == 0 || s.LogicalReads != s.PageReads {
		t.Fatalf("uncached reads should be all physical: %+v", s)
	}
	// CheckInvariants and NumPages must not move the counters.
	buf.ResetStats()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	tr.NumPages()
	if s := buf.Stats(); s != (storage.Stats{}) {
		t.Fatalf("bookkeeping perturbed stats: %+v", s)
	}
}

// --- helpers ---

func idsOf(es []Entry) []int64 {
	ids := make([]int64, len(es))
	for i, e := range es {
		ids[i] = e.ID
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func bruteRange(pts []geom.Point, q geom.Rect) []int64 {
	var ids []int64
	for i, p := range pts {
		if q.Contains(p) {
			ids = append(ids, int64(i))
		}
	}
	return ids
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func regularPolygon(c geom.Point, radius float64, k int) geom.Polygon {
	vs := make([]geom.Point, k)
	for i := 0; i < k; i++ {
		ang := 2 * math.Pi * float64(i) / float64(k)
		vs[i] = geom.Pt(c.X+radius*math.Cos(ang), c.Y+radius*math.Sin(ang))
	}
	return geom.Polygon{V: vs}
}
