package rtree

import (
	"fmt"

	"cij/internal/geom"
	"cij/internal/storage"
)

// Tree is a disk-resident R-tree. All node accesses go through the
// storage.Buffer handed to the constructor, so I/O accounting is exact.
//
// Node reads come in three forms with one shared rule — nodes returned by
// the read methods are SHARED and READ-ONLY unless stated otherwise:
//
//   - ReadNode: the hot-path read. Served from the buffer's decoded-node
//     cache when the page is resident; on a capacity-0 (buffer-less)
//     buffer it decodes into a per-handle scratch node, so the result is
//     only valid until the next read through the same handle.
//   - ReadNodeStable: like ReadNode but never scratch-backed — the result
//     stays valid indefinitely. For callers that hold a node across
//     further reads (synchronous-traversal joins, DFS walks).
//   - ReadNodeMut: a private, freshly decoded copy the caller may mutate.
//     Mutation paths (insert/delete) use it; the shared cache never sees
//     nodes that anyone writes to.
//
// Decoded-node caching is what makes repeat accesses to buffer-resident
// pages decode-free; coherence is the buffer's job (eviction and Write
// drop a page's decoded slot), so a cached node can never be stale.
type Tree struct {
	buf    *storage.Buffer
	kind   Kind
	root   storage.PageID
	height int // 1 = root is a leaf
	size   int // number of indexed objects

	maxInternal int
	maxPoints   int
	minFill     int

	// scratch is the reused decode target of capacity-0 reads; one per
	// handle (WithBuffer views get their own), so handles never clobber
	// each other's in-flight node.
	scratch *Node

	// flat, when non-nil, marks an arena-resident tree (see flat.go):
	// node ids are slab indexes, reads are array lookups counted on the
	// buffer ledger, and mutation paths panic.
	flat *flatStore
}

// New creates an empty tree of the given kind on buf. The first Insert
// creates the root.
func New(buf *storage.Buffer, kind Kind) *Tree {
	pageSize := buf.Disk().PageSize()
	t := &Tree{
		buf:         buf,
		kind:        kind,
		root:        storage.InvalidPage,
		maxInternal: MaxInternalEntries(pageSize),
		maxPoints:   MaxPointEntries(pageSize),
		scratch:     &Node{},
	}
	if t.maxInternal < 2 || t.maxPoints < 2 {
		panic(fmt.Sprintf("rtree: page size %d too small", pageSize))
	}
	// Guttman's recommended minimum fill is 40% of capacity.
	t.minFill = t.maxInternal * 2 / 5
	if t.minFill < 1 {
		t.minFill = 1
	}
	return t
}

// Buffer returns the buffer the tree performs I/O through.
func (t *Tree) Buffer() *storage.Buffer { return t.buf }

// WithBuffer returns a read-only view of the tree that performs all its
// I/O through buf, which must be backed by the same disk as the tree's own
// buffer. Views are how concurrent traversals isolate their caching and
// I/O accounting: each goroutine forks a private buffer
// (storage.Buffer.Fork) and reads through its own view, so no LRU state or
// counter is shared. Mutating a view (Insert/Delete) would desynchronize
// the handles; views are for searches and traversals only.
func (t *Tree) WithBuffer(buf *storage.Buffer) *Tree {
	if buf.Disk() != t.buf.Disk() {
		panic("rtree: WithBuffer requires a buffer over the tree's own disk")
	}
	if t.flat != nil && buf.Backend() != storage.BackendFlat {
		panic("rtree: a flat tree's view needs a flat ledger (fork the tree's own buffer)")
	}
	view := *t
	view.buf = buf
	// Each view decodes into its own scratch and caches into its own
	// buffer's decoded slots: views share immutable pages, never decode
	// state.
	view.scratch = &Node{}
	return &view
}

// Kind returns what the leaves store.
func (t *Tree) Kind() Kind { return t.kind }

// Root returns the root page id, or storage.InvalidPage for an empty tree.
func (t *Tree) Root() storage.PageID { return t.root }

// Height returns the number of levels (1 = the root is a leaf; 0 = empty).
func (t *Tree) Height() int { return t.height }

// Size returns the number of indexed objects.
func (t *Tree) Size() int { return t.size }

// NumPages returns the number of nodes (= pages) of the tree. It is
// computed by traversal and used to size LRU buffers and the LB cost.
func (t *Tree) NumPages() int {
	if t.root == storage.InvalidPage {
		return 0
	}
	if t.flat != nil {
		return len(t.flat.nodes)
	}
	return t.countPages(t.root, t.height)
}

func (t *Tree) countPages(id storage.PageID, level int) int {
	if level <= 1 {
		return 1
	}
	n := t.readNodeQuiet(id)
	total := 1
	for i := range n.Entries {
		total += t.countPages(n.Entries[i].Child, level-1)
	}
	return total
}

// ReadNode fetches the node stored at id, counting one node access in the
// buffer statistics exactly like a plain page read. When the page is
// buffer-resident and carries a decoded node, that node is returned
// without re-parsing (a decode hit). A resident page read without a
// decoded node (second touch) is decoded once into a fresh node that is
// attached to the page for subsequent reads. A physical miss — and every
// read on a capacity-0, buffer-less tree — decodes into the handle's
// reused scratch node: pages that are never re-read while resident never
// pay a heap decode, which keeps the paper's tiny-buffer experiments
// allocation-lean without inflating their accounting.
//
// The returned node is shared and read-only, and — because of the
// scratch — guaranteed valid only until the next read through the same
// handle. Callers that retain a node across further reads must use
// ReadNodeStable; callers that mutate must use ReadNodeMut.
func (t *Tree) ReadNode(id storage.PageID) *Node {
	// Flat trees serve reads straight from the node arena: an index plus
	// two ledger increments, nothing decoded, nothing cached. Arena nodes
	// are immutable, so the result is stable despite coming from the hot
	// read path.
	if f := t.flat; f != nil {
		t.buf.NoteFlatRead()
		return &f.nodes[id]
	}
	data, dec, resident := t.buf.ReadDecoded(id)
	if dec != nil {
		return dec.(*Node)
	}
	if !resident || t.buf.Capacity() == 0 {
		return decodeNodeInto(t.scratch, data, t.kind)
	}
	n := decodeNode(data, t.kind)
	t.buf.SetDecoded(id, n)
	return n
}

// ReadNodeStable is ReadNode without the scratch reuse: the returned node
// is shared and read-only but remains valid indefinitely (a decoded node
// is immutable; mutations replace, never modify, cached nodes).
// Traversals that hold a parent node while reading its children read
// through this method. It installs the decode on first touch — stable
// callers (DFS walks, synchronous joins) revisit upper levels reliably.
func (t *Tree) ReadNodeStable(id storage.PageID) *Node {
	if f := t.flat; f != nil {
		t.buf.NoteFlatRead()
		return &f.nodes[id]
	}
	data, dec, _ := t.buf.ReadDecoded(id)
	if dec != nil {
		return dec.(*Node)
	}
	n := decodeNode(data, t.kind)
	t.buf.SetDecoded(id, n)
	return n
}

// ReadNodeMut fetches a private, freshly decoded copy of the node that
// the caller may mutate. It bypasses the decoded-node cache in both
// directions: it never returns a shared node and never installs one, so
// insert/delete/split can edit entry slices freely. Coherence with
// readers is re-established by the writeNode that follows every mutation
// (Buffer.Write clears the page's decoded slot).
func (t *Tree) ReadNodeMut(id storage.PageID) *Node {
	if t.flat != nil {
		panic("rtree: flat trees are immutable")
	}
	return decodeNode(t.buf.Read(id), t.kind)
}

// readNodeQuiet reads a (shared, read-only) node without disturbing the
// I/O counters; it is used by structural bookkeeping (page counting,
// invariant checks) that is not part of any measured algorithm.
func (t *Tree) readNodeQuiet(id storage.PageID) *Node {
	snapshot := t.buf.Stats()
	n := t.ReadNodeStable(id)
	t.buf.RestoreStats(snapshot)
	return n
}

// readNodeQuietMut is readNodeQuiet for mutation paths: a private,
// counter-silent copy.
func (t *Tree) readNodeQuietMut(id storage.PageID) *Node {
	snapshot := t.buf.Stats()
	n := t.ReadNodeMut(id)
	t.buf.RestoreStats(snapshot)
	return n
}

// writeNode encodes and stores n at id.
func (t *Tree) writeNode(id storage.PageID, n *Node) {
	if t.flat != nil {
		panic("rtree: flat trees are immutable")
	}
	t.buf.Write(id, encodeNode(n, t.kind, t.buf.Disk().PageSize()))
}

// allocNode allocates a page and stores n there.
func (t *Tree) allocNode(n *Node) storage.PageID {
	if t.flat != nil {
		panic("rtree: flat trees are immutable")
	}
	id := t.buf.Alloc()
	t.writeNode(id, n)
	return id
}

// maxLeafEntries returns the fixed leaf capacity for point trees. Polygon
// leaves are byte-packed and have no fixed entry capacity.
func (t *Tree) maxLeafEntries() int {
	if t.kind == KindPoints {
		return t.maxPoints
	}
	// For polygon trees used with Insert (tests only), derive a
	// conservative capacity from the minimum polygon size (triangle).
	return (t.buf.Disk().PageSize() - headerSize) / (polyEntryFixed + 3*vertexSize)
}

// leafFits reports whether the entries (plus optionally extra) fit into a
// leaf page, accounting for variable-size polygon entries.
func (t *Tree) leafFits(entries []Entry, extra *Entry) bool {
	if t.kind == KindPoints {
		n := len(entries)
		if extra != nil {
			n++
		}
		return n <= t.maxPoints
	}
	sz := headerSize
	for i := range entries {
		sz += polyEntrySize(entries[i].Poly)
	}
	if extra != nil {
		sz += polyEntrySize(extra.Poly)
	}
	return sz <= t.buf.Disk().PageSize()
}

// CheckInvariants validates the structural invariants of the tree: every
// internal entry's MBR equals the MBR of its child node, all leaves are at
// the same depth, and node occupancy respects capacities. It is exported
// for tests and returns a descriptive error.
func (t *Tree) CheckInvariants() error {
	if t.root == storage.InvalidPage {
		if t.size != 0 {
			return fmt.Errorf("empty root but size %d", t.size)
		}
		return nil
	}
	count, err := t.checkNode(t.root, t.height)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("leaf objects %d != size %d", count, t.size)
	}
	return nil
}

func (t *Tree) checkNode(id storage.PageID, level int) (int, error) {
	n := t.readNodeQuiet(id)
	if level == 1 != n.Leaf {
		return 0, fmt.Errorf("page %d: leaf flag %v at level %d (height %d)", id, n.Leaf, level, t.height)
	}
	if len(n.Entries) == 0 {
		return 0, fmt.Errorf("page %d: empty node", id)
	}
	if n.Leaf {
		if t.kind == KindPoints && len(n.Entries) > t.maxPoints {
			return 0, fmt.Errorf("page %d: leaf overflow %d > %d", id, len(n.Entries), t.maxPoints)
		}
		if !t.leafFits(n.Entries, nil) {
			return 0, fmt.Errorf("page %d: leaf byte overflow", id)
		}
		return len(n.Entries), nil
	}
	if len(n.Entries) > t.maxInternal {
		return 0, fmt.Errorf("page %d: internal overflow %d > %d", id, len(n.Entries), t.maxInternal)
	}
	total := 0
	for i := range n.Entries {
		e := &n.Entries[i]
		child := t.readNodeQuiet(e.Child)
		cm := child.MBR()
		if !rectAlmostEqual(cm, e.MBR) {
			return 0, fmt.Errorf("page %d entry %d: MBR %v != child MBR %v", id, i, e.MBR, cm)
		}
		c, err := t.checkNode(e.Child, level-1)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

func rectAlmostEqual(a, b geom.Rect) bool {
	const tol = 1e-6
	return abs(a.MinX-b.MinX) < tol && abs(a.MinY-b.MinY) < tol &&
		abs(a.MaxX-b.MaxX) < tol && abs(a.MaxY-b.MaxY) < tol
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
