package rtree

import (
	"math/rand"
	"sync"
	"testing"

	"cij/internal/geom"
	"cij/internal/storage"
)

// collectPages returns every page id of the tree (root to leaves).
func collectPages(t *Tree) []storage.PageID {
	var pages []storage.PageID
	var walk func(id storage.PageID, level int)
	walk = func(id storage.PageID, level int) {
		pages = append(pages, id)
		if level <= 1 {
			return
		}
		n := t.readNodeQuiet(id)
		for i := range n.Entries {
			walk(n.Entries[i].Child, level-1)
		}
	}
	if t.Root() != storage.InvalidPage {
		walk(t.Root(), t.Height())
	}
	return pages
}

// nodesEqual compares two decoded nodes field by field.
func nodesEqual(a, b *Node) bool {
	if a.Leaf != b.Leaf || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		ea, eb := &a.Entries[i], &b.Entries[i]
		if ea.MBR != eb.MBR {
			return false
		}
		if a.Leaf {
			if ea.ID != eb.ID || ea.Pt != eb.Pt || len(ea.Poly.V) != len(eb.Poly.V) {
				return false
			}
			for j := range ea.Poly.V {
				if ea.Poly.V[j] != eb.Poly.V[j] {
					return false
				}
			}
		} else if ea.Child != eb.Child {
			return false
		}
	}
	return true
}

// TestReadNodeCachedZeroAlloc is the decode-cache alloc guard: once a
// page's decoded node is installed (second touch of a resident page),
// further ReadNode calls return it without allocating — the steady-state
// hot path of every traversal over a warm buffer is decode-free AND
// allocation-free.
func TestReadNodeCachedZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := BulkLoadPoints(newBuf(t, 1<<20), randPoints(rng, 2000), testDomain, 1)
	pages := collectPages(tr)

	// Warm: first touch decodes to scratch, second installs the node.
	for i := 0; i < 3; i++ {
		for _, id := range pages {
			tr.ReadNode(id)
		}
	}
	before := tr.Buffer().Stats()
	allocs := testing.AllocsPerRun(50, func() {
		for _, id := range pages {
			tr.ReadNode(id)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm cached ReadNode allocates %.2f objects per sweep, want 0", allocs)
	}
	after := tr.Buffer().Stats()
	if hits := after.DecodeHits - before.DecodeHits; hits == 0 {
		t.Fatal("warm sweep recorded no decode hits")
	}
}

// TestReadNodeScratchZeroAllocCapacity0 pins the buffer-less fallback: a
// capacity-0 tree decodes every read into the handle's reused scratch
// node, so even with zero caching the point-tree read path is
// allocation-free once the scratch has grown.
func TestReadNodeScratchZeroAllocCapacity0(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	big := newBuf(t, 1<<20)
	tr := BulkLoadPoints(big, randPoints(rng, 2000), testDomain, 1)
	view := tr.WithBuffer(big.Fork(0)) // buffer-less view, as in Fig. 5
	pages := collectPages(tr)

	for _, id := range pages { // grow the scratch
		view.ReadNode(id)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, id := range pages {
			view.ReadNode(id)
		}
	})
	if allocs != 0 {
		t.Fatalf("capacity-0 scratch ReadNode allocates %.2f objects per sweep, want 0", allocs)
	}
	if hits := view.Buffer().Stats().DecodeHits; hits != 0 {
		t.Fatalf("capacity-0 buffer recorded %d decode hits, want 0 (nothing can be cached)", hits)
	}
}

// TestDecodedCacheCoherenceMutations is the staleness guard: after warm
// reads populate the decoded cache, every mutation path — insert, delete,
// bulkload writes on a shared buffer — must invalidate the touched pages
// so no read ever serves a node that disagrees with the page bytes.
func TestDecodedCacheCoherenceMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	buf := newBuf(t, 1<<20)
	tr := New(buf, KindPoints)
	pts := randPoints(rng, 800)
	for i, p := range pts {
		tr.InsertPoint(int64(i), p)
	}

	verify := func(stage string) {
		t.Helper()
		for _, id := range collectPages(tr) {
			cached := tr.ReadNodeStable(id)
			fresh := tr.ReadNodeMut(id) // always decoded from page bytes
			if !nodesEqual(cached, fresh) {
				t.Fatalf("%s: page %d: cached node differs from page bytes", stage, id)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
	}

	// Warm every page into the decoded cache, then mutate repeatedly.
	for i := 0; i < 2; i++ {
		for _, id := range collectPages(tr) {
			tr.ReadNode(id)
		}
	}
	verify("after warm")

	for i := 0; i < 300; i++ {
		tr.InsertPoint(int64(len(pts)+i), geom.Pt(rng.Float64()*10000, rng.Float64()*10000))
	}
	verify("after inserts")

	for i := 0; i < 400; i++ {
		if !tr.DeletePoint(int64(i), pts[i]) {
			t.Fatalf("delete %d failed", i)
		}
	}
	verify("after deletes")

	// Bulkload a second tree on the same buffer: its writes must never
	// poison the first tree's cached nodes (page ids are disjoint, and
	// Write clears only its own page's slot).
	tr2 := BulkLoadPoints(buf, randPoints(rng, 500), testDomain, 1)
	verify("after sibling bulkload")
	for _, id := range collectPages(tr2) {
		cached := tr2.ReadNodeStable(id)
		fresh := tr2.ReadNodeMut(id)
		if !nodesEqual(cached, fresh) {
			t.Fatalf("bulkloaded tree: page %d stale", id)
		}
	}
}

// TestForkDecodedCachesIndependent runs concurrent traversals over
// per-goroutine buffer forks with the race detector watching: decoded
// caches are per-buffer state, so parallel workers must never share (or
// contend on) a decoded node map.
func TestForkDecodedCachesIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pts := randPoints(rng, 3000)
	base := newBuf(t, 1<<20)
	tr := BulkLoadPoints(base, pts, testDomain, 1)

	const workers = 8
	var wg sync.WaitGroup
	results := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			view := tr.WithBuffer(base.Fork(64))
			query := geom.NewRect(float64(w)*1000, 0, float64(w)*1000+2500, 10000)
			for i := 0; i < 20; i++ {
				results[w] = len(view.RangeSearch(query))
			}
			if view.Buffer().Stats().LogicalReads == 0 {
				t.Error("fork performed no reads")
			}
		}(w)
	}
	wg.Wait()

	// Every fork must have seen the same tree.
	for w := 0; w < workers; w++ {
		query := geom.NewRect(float64(w)*1000, 0, float64(w)*1000+2500, 10000)
		if want := len(tr.RangeSearch(query)); results[w] != want {
			t.Fatalf("worker %d saw %d results, want %d", w, results[w], want)
		}
	}
}

// TestDecodeCachingOffMatchesOn runs the same traversals with decode
// caching disabled and asserts identical results and identical I/O
// accounting — the cache is invisible to everything but the decode-hit
// counters.
func TestDecodeCachingOffMatchesOn(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pts := randPoints(rng, 2000)

	run := func(caching bool) (int, storage.Stats) {
		buf := newBuf(t, 256)
		buf.SetDecodeCaching(caching)
		tr := BulkLoadPoints(buf, pts, testDomain, 1)
		buf.ResetStats()
		n := 0
		for i := 0; i < 5; i++ {
			n = len(tr.RangeSearch(geom.NewRect(2000, 2000, 7000, 7000)))
		}
		s := buf.Stats()
		s.DecodeHits, s.DecodeMisses = 0, 0 // the only counters allowed to differ
		return n, s
	}
	nOn, sOn := run(true)
	nOff, sOff := run(false)
	if nOn != nOff {
		t.Fatalf("results differ: %d with caching, %d without", nOn, nOff)
	}
	if sOn != sOff {
		t.Fatalf("I/O accounting differs: %+v with caching, %+v without", sOn, sOff)
	}
}
