// Package rtree implements the disk-resident R-tree substrate of the CIJ
// paper: Guttman insertion with quadratic split, bottom-up bulk loading in
// Hilbert order (the optimized Voronoi R-tree construction of Section
// III-C), range search, best-first incremental nearest-neighbor browsing
// (Hjaltason & Samet), depth-first traversal in Hilbert order, and the
// Synchronous Traversal intersection join (Brinkhoff et al.).
//
// Every node occupies exactly one page of the storage substrate, so the
// buffer statistics of storage.Buffer are precisely the paper's node/page
// access counts.
//
// A tree stores either points (the join inputs P and Q) or convex polygons
// (materialized Voronoi diagrams R'P, R'Q). Point entries have fixed size;
// polygon entries are variable-sized and leaves are byte-packed, mirroring
// the paper's observation that "each cell has at least three vertices and
// not all cells have the same number of vertices".
package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"cij/internal/geom"
	"cij/internal/storage"
)

// Kind discriminates what the tree's leaf entries carry.
type Kind uint8

const (
	// KindPoints marks a tree over point data.
	KindPoints Kind = iota
	// KindPolygons marks a tree over convex polygons (Voronoi cells).
	KindPolygons
)

// Entry is a single slot of a node: a child pointer in internal nodes, a
// point or polygon object in leaves.
type Entry struct {
	MBR   geom.Rect      // bounding rectangle of the child/object
	Child storage.PageID // internal nodes: page of the child node
	ID    int64          // leaves: object identifier (dataset index)
	Pt    geom.Point     // leaves of point trees
	Poly  geom.Polygon   // leaves of polygon trees
}

// Node is the in-memory decoding of one page.
type Node struct {
	Leaf    bool
	Entries []Entry
}

// MBR returns the bounding rectangle of all entries of the node.
func (n *Node) MBR() geom.Rect {
	r := geom.EmptyRect()
	for i := range n.Entries {
		r = r.Union(n.Entries[i].MBR)
	}
	return r
}

// Page layout:
//
//	header: [0] kind, [1] leaf flag, [2:4] entry count, [4:8] reserved
//	internal entry: 4×float64 MBR, int64 child          (40 bytes)
//	point leaf entry: int64 id, 2×float64 coordinates    (24 bytes)
//	polygon leaf entry: int64 id, uint16 nv, nv×16 bytes (10+16nv bytes)
const (
	headerSize        = 8
	internalEntrySize = 4*8 + 8
	pointEntrySize    = 8 + 2*8
	polyEntryFixed    = 8 + 2
	vertexSize        = 2 * 8
)

// MaxInternalEntries returns the fan-out of internal nodes for a page size.
func MaxInternalEntries(pageSize int) int {
	return (pageSize - headerSize) / internalEntrySize
}

// MaxPointEntries returns the capacity of point leaves for a page size.
func MaxPointEntries(pageSize int) int {
	return (pageSize - headerSize) / pointEntrySize
}

// polyEntrySize returns the on-page size of one polygon entry.
func polyEntrySize(g geom.Polygon) int {
	return polyEntryFixed + len(g.V)*vertexSize
}

// encodeNode serializes n into a page-sized buffer.
func encodeNode(n *Node, kind Kind, pageSize int) []byte {
	buf := make([]byte, pageSize)
	buf[0] = byte(kind)
	if n.Leaf {
		buf[1] = 1
	}
	binary.LittleEndian.PutUint16(buf[2:4], uint16(len(n.Entries)))
	off := headerSize
	for i := range n.Entries {
		e := &n.Entries[i]
		switch {
		case !n.Leaf:
			off = putRect(buf, off, e.MBR)
			binary.LittleEndian.PutUint64(buf[off:], uint64(e.Child))
			off += 8
		case kind == KindPoints:
			binary.LittleEndian.PutUint64(buf[off:], uint64(e.ID))
			off += 8
			off = putFloat(buf, off, e.Pt.X)
			off = putFloat(buf, off, e.Pt.Y)
		default: // polygon leaf
			binary.LittleEndian.PutUint64(buf[off:], uint64(e.ID))
			off += 8
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(e.Poly.V)))
			off += 2
			for _, v := range e.Poly.V {
				off = putFloat(buf, off, v.X)
				off = putFloat(buf, off, v.Y)
			}
		}
	}
	if off > pageSize {
		panic(fmt.Sprintf("rtree: node overflow, %d bytes > page %d", off, pageSize))
	}
	return buf
}

// decodeNode parses a page into a freshly allocated Node.
func decodeNode(buf []byte, kind Kind) *Node {
	n := &Node{}
	decodeNodeInto(n, buf, kind)
	return n
}

// decodeNodeInto parses a page into n, reusing n's entry slice (and, for
// polygon leaves, the per-slot vertex slices) when their capacity
// suffices. It is the scratch-decode path of buffer-less trees: a Tree
// reading through a capacity-0 buffer decodes every access into one
// reused node, so the Fig. 5 experiments stay allocation-lean without any
// caching. Entries beyond the new count keep their backing arrays but are
// zeroed-by-overwrite on the next reuse only as far as the then-current
// count, which is fine because Node consumers never look past
// len(Entries).
func decodeNodeInto(n *Node, buf []byte, kind Kind) *Node {
	n.Leaf = buf[1] == 1
	count := int(binary.LittleEndian.Uint16(buf[2:4]))
	if cap(n.Entries) >= count {
		n.Entries = n.Entries[:count]
	} else {
		n.Entries = make([]Entry, count)
	}
	off := headerSize
	// One specialized loop per node shape: the discriminator is per-node,
	// not per-entry, and hoisting it lets each loop run branch-free over
	// the fixed-size records. Fields the shape does not use are left
	// unspecified when the entry slice is reused — every consumer reads
	// only shape-appropriate fields (leaf flags gate ID/Pt/Poly vs Child),
	// and fresh nodes come from a zeroed allocation.
	switch {
	case !n.Leaf:
		for i := 0; i < count; i++ {
			e := &n.Entries[i]
			e.MBR, off = getRect(buf, off)
			e.Child = storage.PageID(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	case kind == KindPoints:
		for i := 0; i < count; i++ {
			e := &n.Entries[i]
			e.ID = int64(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
			var x, y float64
			x, off = getFloat(buf, off)
			y, off = getFloat(buf, off)
			e.Pt = geom.Pt(x, y)
			e.MBR = geom.RectFromPoint(e.Pt)
		}
	default:
		for i := 0; i < count; i++ {
			e := &n.Entries[i]
			e.ID = int64(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
			nv := int(binary.LittleEndian.Uint16(buf[off:]))
			off += 2
			vs := e.Poly.V
			if cap(vs) >= nv {
				vs = vs[:nv]
			} else {
				vs = make([]geom.Point, nv)
			}
			for j := 0; j < nv; j++ {
				var x, y float64
				x, off = getFloat(buf, off)
				y, off = getFloat(buf, off)
				vs[j] = geom.Pt(x, y)
			}
			e.Poly = geom.Polygon{V: vs}
			e.MBR = e.Poly.Bounds()
		}
	}
	return n
}

func putRect(buf []byte, off int, r geom.Rect) int {
	off = putFloat(buf, off, r.MinX)
	off = putFloat(buf, off, r.MinY)
	off = putFloat(buf, off, r.MaxX)
	off = putFloat(buf, off, r.MaxY)
	return off
}

func getRect(buf []byte, off int) (geom.Rect, int) {
	var r geom.Rect
	r.MinX, off = getFloat(buf, off)
	r.MinY, off = getFloat(buf, off)
	r.MaxX, off = getFloat(buf, off)
	r.MaxY, off = getFloat(buf, off)
	return r, off
}

func putFloat(buf []byte, off int, f float64) int {
	binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(f))
	return off + 8
}

func getFloat(buf []byte, off int) (float64, int) {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])), off + 8
}
