package rtree

import (
	"sort"

	"cij/internal/geom"
	"cij/internal/storage"
)

// STJoin computes the intersection join of two R-trees with the
// Synchronous Traversal algorithm of Brinkhoff, Kriegel & Seeger: both
// trees are descended concurrently, following only entry pairs whose MBRs
// intersect. emit is called once for every pair of leaf objects whose MBRs
// intersect; callers apply exact-geometry refinement (FM-CIJ tests the
// Voronoi polygons themselves).
//
// Two classic optimizations are included: a local plane sweep restricting
// the entry pairs considered inside a node pair, and recursion in sweep
// order, which gives the spatial locality the LRU buffer exploits. Trees
// of different heights are aligned by descending the taller tree first.
func STJoin(a, b *Tree, emit func(ea, eb Entry)) {
	if a.root == storage.InvalidPage || b.root == storage.InvalidPage {
		return
	}
	na := a.ReadNodeStable(a.root)
	nb := b.ReadNodeStable(b.root)
	joinLoaded(a, b, na, nb, a.height, b.height, emit)
}

// joinLoaded joins two already-loaded nodes at remaining heights la, lb.
func joinLoaded(a, b *Tree, na, nb *Node, la, lb int, emit func(ea, eb Entry)) {
	switch {
	case na.Leaf && nb.Leaf:
		sweepPairs(na.Entries, nb.Entries, emit)
	case !na.Leaf && (nb.Leaf || la > lb):
		// Descend only a (taller, or b already at leaf level).
		bound := nb.MBR()
		for i := range na.Entries {
			e := &na.Entries[i]
			if e.MBR.Intersects(bound) {
				child := a.ReadNodeStable(e.Child)
				joinLoaded(a, b, child, nb, la-1, lb, emit)
			}
		}
	case !nb.Leaf && (na.Leaf || lb > la):
		bound := na.MBR()
		for i := range nb.Entries {
			e := &nb.Entries[i]
			if e.MBR.Intersects(bound) {
				child := b.ReadNodeStable(e.Child)
				joinLoaded(a, b, na, child, la, lb-1, emit)
			}
		}
	default:
		// Both internal at the same level: recurse on intersecting entry
		// pairs found by the plane sweep.
		var pairs [][2]int
		sweepIndexPairs(na.Entries, nb.Entries, func(i, j int) {
			pairs = append(pairs, [2]int{i, j})
		})
		for _, pr := range pairs {
			ca := a.ReadNodeStable(na.Entries[pr[0]].Child)
			cb := b.ReadNodeStable(nb.Entries[pr[1]].Child)
			joinLoaded(a, b, ca, cb, la-1, lb-1, emit)
		}
	}
}

// sweepPairs emits all intersecting entry pairs between two entry lists
// using a plane sweep on the x-axis.
func sweepPairs(ea, eb []Entry, emit func(a, b Entry)) {
	sweepIndexPairs(ea, eb, func(i, j int) { emit(ea[i], eb[j]) })
}

func sweepIndexPairs(ea, eb []Entry, emit func(i, j int)) {
	ia := sortedByMinX(ea)
	ib := sortedByMinX(eb)
	i, j := 0, 0
	for i < len(ia) && j < len(ib) {
		if ea[ia[i]].MBR.MinX <= eb[ib[j]].MBR.MinX {
			r := ea[ia[i]].MBR
			for k := j; k < len(ib); k++ {
				s := eb[ib[k]].MBR
				if s.MinX > r.MaxX+geom.Eps {
					break
				}
				if r.Intersects(s) {
					emit(ia[i], ib[k])
				}
			}
			i++
		} else {
			r := eb[ib[j]].MBR
			for k := i; k < len(ia); k++ {
				s := ea[ia[k]].MBR
				if s.MinX > r.MaxX+geom.Eps {
					break
				}
				if r.Intersects(s) {
					emit(ia[k], ib[j])
				}
			}
			j++
		}
	}
}

func sortedByMinX(es []Entry) []int {
	idx := make([]int, len(es))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return es[idx[a]].MBR.MinX < es[idx[b]].MBR.MinX })
	return idx
}
