package rtree

import (
	"fmt"

	"cij/internal/storage"
)

// Meta is the handful of header fields a Tree needs beyond its pages: the
// durable tier persists it in the manifest next to each page file, and
// Open rebuilds the identical handle from the two. Everything else (entry
// capacities, minimum fill) is derived from the page size exactly as New
// derives it, so a reopened tree behaves — and paginates — identically.
type Meta struct {
	Kind   Kind           `json:"kind"`
	Root   storage.PageID `json:"root"`
	Height int            `json:"height"`
	Size   int            `json:"size"`
}

// Meta returns the tree's header for persistence.
func (t *Tree) Meta() Meta {
	return Meta{Kind: t.kind, Root: t.root, Height: t.height, Size: t.size}
}

// Open attaches a Tree handle to an existing disk image: buf's disk holds
// the tree's pages (typically restored via storage.OpenDiskFile) and meta
// carries the header persisted alongside them. The returned tree is fully
// equivalent to the one the pages were written by — same capacities, same
// page layout, mutable via CloneMut like any other.
func Open(buf *storage.Buffer, meta Meta) (*Tree, error) {
	t := New(buf, meta.Kind)
	if meta.Root != storage.InvalidPage {
		if meta.Root < 0 || int(meta.Root) >= buf.Disk().NumPages() {
			return nil, fmt.Errorf("rtree: meta root %d outside disk of %d pages", meta.Root, buf.Disk().NumPages())
		}
		if meta.Height < 1 || meta.Size < 0 {
			return nil, fmt.Errorf("rtree: implausible meta (height %d, size %d)", meta.Height, meta.Size)
		}
	} else if meta.Height != 0 || meta.Size != 0 {
		return nil, fmt.Errorf("rtree: empty root with height %d, size %d", meta.Height, meta.Size)
	}
	t.root = meta.Root
	t.height = meta.Height
	t.size = meta.Size
	return t, nil
}
