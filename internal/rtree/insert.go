package rtree

import (
	"cij/internal/geom"
	"cij/internal/storage"
)

// InsertPoint adds a point to a point tree (Guttman's dynamic insertion
// with quadratic split). The experiments bulk-load their trees; dynamic
// insertion exists because the paper's premise is that spatial access
// methods — unlike materialized Voronoi diagrams — are cheap to update
// (footnote 1), and because tests exercise it against the same queries.
func (t *Tree) InsertPoint(id int64, p geom.Point) {
	if t.kind != KindPoints {
		panic("rtree: InsertPoint on a polygon tree")
	}
	t.insert(Entry{MBR: geom.RectFromPoint(p), ID: id, Pt: p})
}

// InsertPolygon adds a polygon to a polygon tree dynamically.
func (t *Tree) InsertPolygon(id int64, g geom.Polygon) {
	if t.kind != KindPolygons {
		panic("rtree: InsertPolygon on a point tree")
	}
	if g.IsEmpty() {
		panic("rtree: inserting empty polygon")
	}
	t.insert(Entry{MBR: g.Bounds(), ID: id, Poly: g})
}

func (t *Tree) insert(e Entry) {
	if t.root == storage.InvalidPage {
		t.root = t.allocNode(&Node{Leaf: true, Entries: []Entry{e}})
		t.height = 1
		t.size = 1
		return
	}
	splitEntry := t.insertAt(t.root, e, t.height)
	if splitEntry != nil {
		// Root split: grow the tree by one level.
		oldRoot := t.readNodeQuiet(t.root)
		newRoot := &Node{Leaf: false, Entries: []Entry{
			{MBR: oldRoot.MBR(), Child: t.root},
			*splitEntry,
		}}
		t.root = t.allocNode(newRoot)
		t.height++
	}
	t.size++
}

// insertAt descends to the appropriate leaf, inserts, and propagates
// splits upward. It returns the entry for a new sibling of node id when
// the node split, or nil.
func (t *Tree) insertAt(id storage.PageID, e Entry, level int) *Entry {
	// Mutating read: insertAt appends to and rewrites the entry slice, so
	// it must own its copy rather than edit a cached shared node.
	n := t.readNodeQuietMut(id)
	if level == 1 {
		if t.leafFits(n.Entries, &e) {
			n.Entries = append(n.Entries, e)
			t.writeNode(id, n)
			return nil
		}
		return t.splitNode(id, n, e)
	}
	// ChooseLeaf: minimal enlargement, ties by smallest area.
	best := 0
	bestEnl := n.Entries[0].MBR.Enlargement(e.MBR)
	bestArea := n.Entries[0].MBR.Area()
	for i := 1; i < len(n.Entries); i++ {
		enl := n.Entries[i].MBR.Enlargement(e.MBR)
		area := n.Entries[i].MBR.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	split := t.insertAt(n.Entries[best].Child, e, level-1)
	// Refresh the child MBR.
	child := t.readNodeQuiet(n.Entries[best].Child)
	n.Entries[best].MBR = child.MBR()
	if split != nil {
		if len(n.Entries) < t.maxInternal {
			n.Entries = append(n.Entries, *split)
			t.writeNode(id, n)
			return nil
		}
		return t.splitNode(id, n, *split)
	}
	t.writeNode(id, n)
	return nil
}

// splitNode performs Guttman's quadratic split of n plus the overflowing
// entry e. The original page keeps one group; the other group goes to a
// fresh page whose parent entry is returned.
func (t *Tree) splitNode(id storage.PageID, n *Node, e Entry) *Entry {
	all := append(append([]Entry(nil), n.Entries...), e)

	// PickSeeds: the pair wasting the most area together.
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			d := all[i].MBR.Union(all[j].MBR).Area() - all[i].MBR.Area() - all[j].MBR.Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	g1 := []Entry{all[s1]}
	g2 := []Entry{all[s2]}
	r1, r2 := all[s1].MBR, all[s2].MBR
	rest := make([]Entry, 0, len(all)-2)
	for i := range all {
		if i != s1 && i != s2 {
			rest = append(rest, all[i])
		}
	}
	minPer := t.minFill
	for len(rest) > 0 {
		// If one group must take everything to reach minimum fill, do so.
		if len(g1)+len(rest) <= minPer {
			g1 = append(g1, rest...)
			for _, x := range rest {
				r1 = r1.Union(x.MBR)
			}
			break
		}
		if len(g2)+len(rest) <= minPer {
			g2 = append(g2, rest...)
			for _, x := range rest {
				r2 = r2.Union(x.MBR)
			}
			break
		}
		// PickNext: entry with maximal preference for one group.
		bestIdx, bestDiff := 0, -1.0
		for i := range rest {
			d1 := r1.Enlargement(rest[i].MBR)
			d2 := r2.Enlargement(rest[i].MBR)
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx = diff, i
			}
		}
		pick := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		d1 := r1.Enlargement(pick.MBR)
		d2 := r2.Enlargement(pick.MBR)
		if d1 < d2 || (d1 == d2 && len(g1) < len(g2)) {
			g1 = append(g1, pick)
			r1 = r1.Union(pick.MBR)
		} else {
			g2 = append(g2, pick)
			r2 = r2.Union(pick.MBR)
		}
	}

	// Variable-sized polygon leaves: the area-driven grouping above may
	// overflow a page in bytes; rebalance by moving entries to the lighter
	// group.
	if n.Leaf && t.kind == KindPolygons {
		g1, g2 = t.rebalanceLeafBytes(g1, g2)
	}

	n.Entries = g1
	t.writeNode(id, n)
	sibling := &Node{Leaf: n.Leaf, Entries: g2}
	sid := t.allocNode(sibling)
	return &Entry{MBR: sibling.MBR(), Child: sid}
}

func (t *Tree) rebalanceLeafBytes(g1, g2 []Entry) ([]Entry, []Entry) {
	for !t.leafFits(g1, nil) && len(g1) > 1 {
		g2 = append(g2, g1[len(g1)-1])
		g1 = g1[:len(g1)-1]
	}
	for !t.leafFits(g2, nil) && len(g2) > 1 {
		g1 = append(g1, g2[len(g2)-1])
		g2 = g2[:len(g2)-1]
	}
	if !t.leafFits(g1, nil) || !t.leafFits(g2, nil) {
		panic("rtree: polygon too large for page during split")
	}
	return g1, g2
}
