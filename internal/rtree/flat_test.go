package rtree

import (
	"math/rand"
	"testing"

	"cij/internal/geom"
	"cij/internal/storage"
)

func flatTestPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
	}
	return pts
}

var flatTestDomain = geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}

// sameStructure walks two trees in lockstep and fails on the first
// structural difference: node shape, entry order or entry content. Child
// page ids are deliberately NOT compared — Freeze renumbers them — only
// the subtrees they denote.
func sameStructure(t *testing.T, a, b *Tree) {
	t.Helper()
	if a.Height() != b.Height() {
		t.Fatalf("height %d != %d", a.Height(), b.Height())
	}
	if a.Size() != b.Size() {
		t.Fatalf("size %d != %d", a.Size(), b.Size())
	}
	if a.NumPages() != b.NumPages() {
		t.Fatalf("pages %d != %d", a.NumPages(), b.NumPages())
	}
	if a.Root() == storage.InvalidPage || b.Root() == storage.InvalidPage {
		if a.Root() != b.Root() {
			t.Fatalf("one tree empty, the other not")
		}
		return
	}
	var walk func(ida, idb storage.PageID, level int)
	walk = func(ida, idb storage.PageID, level int) {
		na, nb := a.readNodeQuiet(ida), b.readNodeQuiet(idb)
		if na.Leaf != nb.Leaf {
			t.Fatalf("level %d: leaf %v != %v", level, na.Leaf, nb.Leaf)
		}
		if len(na.Entries) != len(nb.Entries) {
			t.Fatalf("level %d: %d entries != %d", level, len(na.Entries), len(nb.Entries))
		}
		for i := range na.Entries {
			ea, eb := &na.Entries[i], &nb.Entries[i]
			if ea.MBR != eb.MBR {
				t.Fatalf("level %d entry %d: MBR %v != %v", level, i, ea.MBR, eb.MBR)
			}
			if na.Leaf {
				if ea.ID != eb.ID || ea.Pt != eb.Pt {
					t.Fatalf("level %d entry %d: object (%d,%v) != (%d,%v)",
						level, i, ea.ID, ea.Pt, eb.ID, eb.Pt)
				}
				if len(ea.Poly.V) != len(eb.Poly.V) {
					t.Fatalf("level %d entry %d: %d vertices != %d", level, i, len(ea.Poly.V), len(eb.Poly.V))
				}
				for j := range ea.Poly.V {
					if ea.Poly.V[j] != eb.Poly.V[j] {
						t.Fatalf("level %d entry %d vertex %d: %v != %v", level, i, j, ea.Poly.V[j], eb.Poly.V[j])
					}
				}
			}
		}
		if level > 1 {
			for i := range na.Entries {
				walk(na.Entries[i].Child, nb.Entries[i].Child, level-1)
			}
		}
	}
	walk(a.Root(), b.Root(), a.Height())
}

// TestFreezeStructuralEquality: Freeze is structure-preserving — the flat
// tree is node-for-node, entry-for-entry the paged tree under a
// renumbering of page ids, and its own invariants hold.
func TestFreezeStructuralEquality(t *testing.T) {
	pts := flatTestPoints(10_000, 1)
	buf := storage.NewBuffer(storage.NewDisk(1024), 1<<20)
	paged := BulkLoadPoints(buf, pts, flatTestDomain, 1)
	flat := paged.Freeze()
	if !flat.Flat() {
		t.Fatal("Freeze returned a non-flat tree")
	}
	if flat.Buffer().Backend() != storage.BackendFlat {
		t.Fatal("frozen tree's buffer is not a flat ledger")
	}
	sameStructure(t, paged, flat)
	if err := flat.CheckInvariants(); err != nil {
		t.Fatalf("flat invariants: %v", err)
	}
	// The source tree must be untouched and still paged.
	if paged.Flat() {
		t.Fatal("Freeze mutated the source tree")
	}
	if err := paged.CheckInvariants(); err != nil {
		t.Fatalf("source invariants after Freeze: %v", err)
	}
}

// TestFlatBulkLoadMatchesFreeze: the direct flat bulk loader and the
// paged-then-frozen path produce structurally identical trees.
func TestFlatBulkLoadMatchesFreeze(t *testing.T) {
	for _, n := range []int{0, 1, 41, 2000, 10_000} {
		pts := flatTestPoints(n, int64(n)+7)
		buf := storage.NewBuffer(storage.NewDisk(1024), 1<<20)
		frozen := BulkLoadPoints(buf, pts, flatTestDomain, 1).Freeze()
		direct := FlatBulkLoadPoints(pts, flatTestDomain, 1024, 1)
		if !direct.Flat() {
			t.Fatalf("n=%d: FlatBulkLoadPoints returned a non-flat tree", n)
		}
		sameStructure(t, frozen, direct)
		if n > 0 {
			if err := direct.CheckInvariants(); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
	}
}

// TestFreezePolygonTree: the vertex arena deep-copies polygon leaves.
func TestFreezePolygonTree(t *testing.T) {
	buf := storage.NewBuffer(storage.NewDisk(1024), 1<<20)
	var items []PolygonItem
	for i := 0; i < 200; i++ {
		x, y := float64(i%20)*500, float64(i/20)*500
		items = append(items, PolygonItem{ID: int64(i), Poly: geom.Polygon{V: []geom.Point{
			geom.Pt(x, y), geom.Pt(x+100, y), geom.Pt(x+50, y+100),
		}}})
	}
	paged := PackPolygons(buf, items)
	flat := paged.Freeze()
	sameStructure(t, paged, flat)
	if err := flat.CheckInvariants(); err != nil {
		t.Fatalf("flat polygon invariants: %v", err)
	}
}

// TestFlatImmutable: every mutation entry point panics on a flat tree.
func TestFlatImmutable(t *testing.T) {
	flat := FlatBulkLoadPoints(flatTestPoints(500, 3), flatTestDomain, 1024, 1)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a flat tree did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("InsertPoint", func() { flat.InsertPoint(999, geom.Pt(1, 1)) })
	mustPanic("DeletePoint", func() { flat.DeletePoint(0, geom.Pt(1, 1)) })
	mustPanic("ReadNodeMut", func() { flat.ReadNodeMut(flat.Root()) })
}

// TestFlatLedgerStats: flat reads count logical reads and decode hits on
// the ledger and never touch a page counter.
func TestFlatLedgerStats(t *testing.T) {
	flat := FlatBulkLoadPoints(flatTestPoints(5000, 5), flatTestDomain, 1024, 1)
	flat.Buffer().ResetStats()
	var total int64
	var walk func(id storage.PageID, level int)
	walk = func(id storage.PageID, level int) {
		n := flat.ReadNode(id)
		total++
		if level > 1 {
			for i := range n.Entries {
				walk(n.Entries[i].Child, level-1)
			}
		}
	}
	walk(flat.Root(), flat.Height())
	st := flat.Buffer().Stats()
	if st.LogicalReads != total {
		t.Errorf("LogicalReads = %d, want %d", st.LogicalReads, total)
	}
	if st.DecodeHits != total {
		t.Errorf("DecodeHits = %d, want %d (flat invariant DecodeHits == LogicalReads)", st.DecodeHits, total)
	}
	if st.PageAccesses() != 0 || st.DecodeMisses != 0 {
		t.Errorf("flat reads moved page counters: %+v", st)
	}
}

// TestFlatReadNodeAllocs: the steady-state flat read path is
// allocation-free (the alloc-guard of the flat hot path).
func TestFlatReadNodeAllocs(t *testing.T) {
	flat := FlatBulkLoadPoints(flatTestPoints(5000, 9), flatTestDomain, 1024, 1)
	root := flat.Root()
	child := flat.ReadNode(root).Entries[0].Child
	allocs := testing.AllocsPerRun(1000, func() {
		n := flat.ReadNode(child)
		_ = flat.ReadNodeStable(root)
		_ = n.Entries[0]
	})
	if allocs != 0 {
		t.Errorf("flat ReadNode allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkFlatBuild prices flat tree construction: one-shot conversion of
// a bulk-loaded paged tree (Freeze) vs the direct arena bulk load.
func BenchmarkFlatBuild(b *testing.B) {
	pts := flatTestPoints(50_000, 11)
	b.Run("Freeze", func(b *testing.B) {
		buf := storage.NewBuffer(storage.NewDisk(1024), 1<<20)
		paged := BulkLoadPoints(buf, pts, flatTestDomain, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			paged.Freeze()
		}
	})
	b.Run("Direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FlatBulkLoadPoints(pts, flatTestDomain, 1024, 1)
		}
	})
}
