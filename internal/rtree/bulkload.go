package rtree

import (
	"math"
	"sort"

	"cij/internal/geom"
	"cij/internal/storage"
)

// BulkLoadPoints builds a packed R-tree over pts, assigning object IDs
// 0..len(pts)-1 (the dataset index). Points are sorted by the Hilbert
// value of their location inside domain and packed bottom-up, producing
// fully utilized, spatially clustered leaves (Kamel & Faloutsos' Hilbert
// packing). fillFactor ∈ (0,1] scales node occupancy; the paper's trees
// are fully packed (fillFactor 1).
func BulkLoadPoints(buf *storage.Buffer, pts []geom.Point, domain geom.Rect, fillFactor float64) *Tree {
	t := New(buf, KindPoints)
	if len(pts) == 0 {
		return t
	}
	type keyed struct {
		id  int64
		pt  geom.Point
		key uint64
	}
	items := make([]keyed, len(pts))
	for i, p := range pts {
		items[i] = keyed{id: int64(i), pt: p, key: geom.HilbertValue(p, domain)}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].key < items[j].key })

	leafCap := scaleCap(t.maxPoints, fillFactor)
	var level []Entry // entries for the next level up
	for start := 0; start < len(items); start += leafCap {
		end := start + leafCap
		if end > len(items) {
			end = len(items)
		}
		n := &Node{Leaf: true, Entries: make([]Entry, 0, end-start)}
		for _, it := range items[start:end] {
			n.Entries = append(n.Entries, Entry{
				MBR: geom.RectFromPoint(it.pt), ID: it.id, Pt: it.pt,
			})
		}
		id := t.allocNode(n)
		level = append(level, Entry{MBR: n.MBR(), Child: id})
	}
	t.size = len(pts)
	t.finishUpperLevels(level, fillFactor)
	return t
}

// BulkLoadPointsSTR builds a packed tree using Sort-Tile-Recursive
// ordering instead of Hilbert ordering. Kept as an ablation alternative:
// both produce fully packed trees, differing only in leaf clustering.
func BulkLoadPointsSTR(buf *storage.Buffer, pts []geom.Point, fillFactor float64) *Tree {
	t := New(buf, KindPoints)
	if len(pts) == 0 {
		return t
	}
	leafCap := scaleCap(t.maxPoints, fillFactor)
	idx := make([]int64, len(pts))
	for i := range idx {
		idx[i] = int64(i)
	}
	// STR: sort by x, cut into vertical slabs of S leaves, sort each slab
	// by y.
	sort.Slice(idx, func(a, b int) bool { return pts[idx[a]].X < pts[idx[b]].X })
	nLeaves := (len(pts) + leafCap - 1) / leafCap
	slabCount := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	slabSize := slabCount * leafCap
	var level []Entry
	for s := 0; s < len(idx); s += slabSize {
		e := s + slabSize
		if e > len(idx) {
			e = len(idx)
		}
		slab := idx[s:e]
		sort.Slice(slab, func(a, b int) bool { return pts[slab[a]].Y < pts[slab[b]].Y })
		for ls := 0; ls < len(slab); ls += leafCap {
			le := ls + leafCap
			if le > len(slab) {
				le = len(slab)
			}
			n := &Node{Leaf: true}
			for _, id := range slab[ls:le] {
				n.Entries = append(n.Entries, Entry{
					MBR: geom.RectFromPoint(pts[id]), ID: id, Pt: pts[id],
				})
			}
			pid := t.allocNode(n)
			level = append(level, Entry{MBR: n.MBR(), Child: pid})
		}
	}
	t.size = len(pts)
	t.finishUpperLevels(level, fillFactor)
	return t
}

// PolygonItem is one object for PackPolygons.
type PolygonItem struct {
	ID   int64
	Poly geom.Polygon
}

// PolygonPacker incrementally bulk-loads a polygon R-tree from a stream of
// cells that arrive in spatial (Hilbert) order, exactly as FM-CIJ/PM-CIJ
// construct R'P: cells are "sequentially packed into leaf nodes ... so as
// to bulk-load the tree in a bottom-up fashion" (Section III-C). Expensive
// node splits never happen; construction I/O is exactly the page writes.
type PolygonPacker struct {
	tree    *Tree
	pending []Entry // entries of the leaf currently being filled
	level   []Entry // parent entries of finished leaves
	count   int
}

// NewPolygonPacker starts packing a polygon tree on buf.
func NewPolygonPacker(buf *storage.Buffer) *PolygonPacker {
	return &PolygonPacker{tree: New(buf, KindPolygons)}
}

// Add appends one polygon to the current leaf, flushing the leaf when the
// page is full.
func (pk *PolygonPacker) Add(id int64, poly geom.Polygon) {
	e := Entry{MBR: poly.Bounds(), ID: id, Poly: poly}
	if !pk.tree.leafFits(pk.pending, &e) {
		pk.flushLeaf()
	}
	pk.pending = append(pk.pending, e)
	pk.count++
}

func (pk *PolygonPacker) flushLeaf() {
	if len(pk.pending) == 0 {
		return
	}
	n := &Node{Leaf: true, Entries: pk.pending}
	id := pk.tree.allocNode(n)
	pk.level = append(pk.level, Entry{MBR: n.MBR(), Child: id})
	pk.pending = nil
}

// Finish flushes the last leaf, builds the upper levels, and returns the
// completed tree. The packer must not be used afterwards.
func (pk *PolygonPacker) Finish() *Tree {
	pk.flushLeaf()
	pk.tree.size = pk.count
	pk.tree.finishUpperLevels(pk.level, 1)
	return pk.tree
}

// PackPolygons bulk-loads a polygon tree from items given in the caller's
// order (callers order by Hilbert value of cell centroids).
func PackPolygons(buf *storage.Buffer, items []PolygonItem) *Tree {
	pk := NewPolygonPacker(buf)
	for _, it := range items {
		pk.Add(it.ID, it.Poly)
	}
	return pk.Finish()
}

// finishUpperLevels packs parent levels bottom-up until a single root
// remains, then records root and height.
func (t *Tree) finishUpperLevels(level []Entry, fillFactor float64) {
	if len(level) == 0 {
		t.root = storage.InvalidPage
		t.height = 0
		return
	}
	fanout := scaleCap(t.maxInternal, fillFactor)
	height := 1
	for len(level) > 1 {
		var next []Entry
		for start := 0; start < len(level); start += fanout {
			end := start + fanout
			if end > len(level) {
				end = len(level)
			}
			n := &Node{Leaf: false, Entries: append([]Entry(nil), level[start:end]...)}
			id := t.allocNode(n)
			next = append(next, Entry{MBR: n.MBR(), Child: id})
		}
		level = next
		height++
	}
	t.root = level[0].Child
	t.height = height
}

func scaleCap(max int, fillFactor float64) int {
	if fillFactor <= 0 || fillFactor > 1 {
		fillFactor = 1
	}
	c := int(float64(max) * fillFactor)
	if c < 2 {
		c = 2
	}
	if c > max {
		c = max
	}
	return c
}
