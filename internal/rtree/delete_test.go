package rtree

import (
	"math/rand"
	"testing"

	"cij/internal/geom"
)

func TestDeleteMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	pts := randPoints(rng, 1000)
	tr := BulkLoadPoints(newBuf(t, 64), pts, testDomain, 1)

	alive := make(map[int64]bool, len(pts))
	for i := range pts {
		alive[int64(i)] = true
	}
	// Delete 600 random points, re-validating queries periodically.
	perm := rng.Perm(len(pts))
	for k, idx := range perm[:600] {
		id := int64(idx)
		if !tr.DeletePoint(id, pts[idx]) {
			t.Fatalf("delete %d failed", id)
		}
		delete(alive, id)
		if k%100 == 99 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", k+1, err)
			}
			q := geom.NewRect(rng.Float64()*5e3, rng.Float64()*5e3,
				rng.Float64()*1e4, rng.Float64()*1e4)
			got := map[int64]bool{}
			for _, e := range tr.RangeSearch(q) {
				got[e.ID] = true
			}
			for i, p := range pts {
				want := alive[int64(i)] && q.Contains(p)
				if got[int64(i)] != want {
					t.Fatalf("after %d deletes: object %d presence %v, want %v",
						k+1, i, got[int64(i)], want)
				}
			}
		}
	}
	if tr.Size() != 400 {
		t.Fatalf("size = %d, want 400", tr.Size())
	}
}

func TestDeleteNonexistent(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pts := randPoints(rng, 100)
	tr := BulkLoadPoints(newBuf(t, 64), pts, testDomain, 1)
	if tr.DeletePoint(9999, geom.Pt(1, 1)) {
		t.Fatal("deleting a nonexistent id should fail")
	}
	if tr.Size() != 100 {
		t.Fatal("failed delete must not change size")
	}
	empty := New(newBuf(t, 8), KindPoints)
	if empty.DeletePoint(0, geom.Pt(0, 0)) {
		t.Fatal("delete from empty tree should fail")
	}
}

func TestDeleteEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	pts := randPoints(rng, 300)
	tr := BulkLoadPoints(newBuf(t, 64), pts, testDomain, 1)
	for i := range pts {
		if !tr.DeletePoint(int64(i), pts[i]) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Size() != 0 {
		t.Fatalf("size = %d after deleting everything", tr.Size())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The tree is reusable afterwards.
	tr.InsertPoint(0, geom.Pt(5, 5))
	if got := tr.RangeSearch(testDomain); len(got) != 1 {
		t.Fatalf("reinsert after drain: %d results", len(got))
	}
}

func TestDeleteThenReinsertCycle(t *testing.T) {
	// Churn: repeated delete/insert cycles keep the structure valid —
	// the "frequently updated database" setting of footnote 1.
	rng := rand.New(rand.NewSource(73))
	pts := randPoints(rng, 400)
	tr := BulkLoadPoints(newBuf(t, 64), pts, testDomain, 1)
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 100; i++ {
			idx := rng.Intn(len(pts))
			if tr.DeletePoint(int64(idx), pts[idx]) {
				pts[idx] = geom.Pt(rng.Float64()*1e4, rng.Float64()*1e4)
				tr.InsertPoint(int64(idx), pts[idx])
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	if tr.Size() != len(pts) {
		t.Fatalf("size drifted: %d", tr.Size())
	}
	q := geom.NewRect(2000, 2000, 8000, 8000)
	if !equalIDs(idsOf(tr.RangeSearch(q)), bruteRange(pts, q)) {
		t.Fatal("range query wrong after churn")
	}
}

func TestDeleteWrongKindPanics(t *testing.T) {
	tr := New(newBuf(t, 8), KindPolygons)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.DeletePoint(0, geom.Pt(0, 0))
}
