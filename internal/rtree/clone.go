package rtree

import "cij/internal/storage"

// CloneMut returns a private MUTABLE copy of the tree whose I/O goes
// through buf, which must be backed by a copy-on-write clone
// (storage.Disk.Clone) of the tree's own disk. This is the mutation
// counterpart of WithBuffer: where views share the original's immutable
// pages and therefore must never write, a mutable clone owns a snapshot
// that detaches shared pages on first write, so InsertPoint/DeletePoint
// on the clone leave the original tree — and every view forked off it,
// including mid-traversal ones — byte-for-byte intact.
//
// The live-dataset path uses it to build version N+1 next to a serving
// version N: clone the disk, mutate the clone, then atomically install
// the new handle; in-flight joins keep reading version N's pages, which
// the copy-on-write contract guarantees are never touched.
func (t *Tree) CloneMut(buf *storage.Buffer) *Tree {
	if t.flat != nil {
		panic("rtree: flat trees are immutable (CloneMut needs the paged original)")
	}
	if buf.Disk() == t.buf.Disk() {
		panic("rtree: CloneMut over the tree's own disk would mutate shared pages; clone the disk first")
	}
	if buf.Disk().Origin() != t.buf.Disk() {
		panic("rtree: CloneMut requires a buffer over a clone of the tree's own disk")
	}
	clone := *t
	clone.buf = buf
	clone.scratch = &Node{}
	return &clone
}
