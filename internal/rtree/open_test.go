package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"cij/internal/geom"
	"cij/internal/storage"
)

func collectIDs(entries []Entry) []int64 {
	ids := make([]int64, len(entries))
	for i, e := range entries {
		ids[i] = e.ID
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// TestOpenFromSnapshot persists a built tree's pages through the page-file
// format and reattaches with Open: the reopened tree must be structurally
// identical and answer searches exactly like the original.
func TestOpenFromSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	buf := newBuf(t, 0)
	tr := New(buf, KindPoints)
	pts := randPoints(rng, 500)
	for i, p := range pts {
		tr.InsertPoint(int64(i), p)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	fs := storage.NewFaultFS()
	if err := storage.SaveDiskFile(fs, "tree.pages", buf.Disk()); err != nil {
		t.Fatalf("SaveDiskFile: %v", err)
	}
	disk, err := storage.OpenDiskFile(fs, "tree.pages")
	if err != nil {
		t.Fatalf("OpenDiskFile: %v", err)
	}
	got, err := Open(storage.NewBuffer(disk, 0), tr.Meta())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatalf("reopened tree invariants: %v", err)
	}
	if got.Size() != tr.Size() || got.Height() != tr.Height() || got.Root() != tr.Root() {
		t.Fatalf("reopened header (%d,%d,%d) != original (%d,%d,%d)",
			got.Size(), got.Height(), got.Root(), tr.Size(), tr.Height(), tr.Root())
	}
	for trial := 0; trial < 20; trial++ {
		q := geom.NewRect(rng.Float64()*9000, rng.Float64()*9000, 800, 800)
		a := collectIDs(tr.RangeSearch(q))
		b := collectIDs(got.RangeSearch(q))
		if len(a) != len(b) {
			t.Fatalf("query %v: %d vs %d results after reopen", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %v: result %d differs (%d vs %d)", q, i, a[i], b[i])
			}
		}
	}

	// The reopened tree stays mutable: a COW clone accepts inserts.
	mbuf := storage.NewBuffer(got.Buffer().Disk().Clone(), 0)
	mut := got.CloneMut(mbuf)
	mut.InsertPoint(10_000, geom.Pt(1, 1))
	if mut.Size() != tr.Size()+1 {
		t.Fatalf("mutable clone of reopened tree: size %d", mut.Size())
	}
	if err := mut.CheckInvariants(); err != nil {
		t.Fatalf("mutated clone invariants: %v", err)
	}
}

func TestOpenEmptyTree(t *testing.T) {
	tr, err := Open(newBuf(t, 0), Meta{Kind: KindPoints, Root: storage.InvalidPage})
	if err != nil {
		t.Fatalf("Open empty: %v", err)
	}
	if tr.Size() != 0 || tr.Height() != 0 {
		t.Fatalf("empty open: size %d height %d", tr.Size(), tr.Height())
	}
}

func TestOpenRejectsBadMeta(t *testing.T) {
	cases := []Meta{
		{Kind: KindPoints, Root: 99, Height: 1, Size: 1},                  // root beyond disk
		{Kind: KindPoints, Root: storage.InvalidPage, Height: 2, Size: 5}, // empty root, nonzero shape
		{Kind: KindPoints, Root: -7, Height: 1, Size: 1},                  // negative root
	}
	for i, m := range cases {
		if _, err := Open(newBuf(t, 0), m); err == nil {
			t.Errorf("case %d: Open accepted bad meta %+v", i, m)
		}
	}
}
