package rtree

import (
	"container/heap"
	"sort"

	"cij/internal/geom"
	"cij/internal/storage"
)

// RangeSearch returns all leaf entries whose MBR intersects query. For
// polygon trees this is the filter step: callers refine with exact
// geometry. PM-CIJ issues one such search per batch of Q-cells, with query
// enclosing the whole batch.
func (t *Tree) RangeSearch(query geom.Rect) []Entry {
	var out []Entry
	if t.root == storage.InvalidPage {
		return out
	}
	var walk func(id storage.PageID, level int)
	walk = func(id storage.PageID, level int) {
		n := t.ReadNodeStable(id)
		for i := range n.Entries {
			e := &n.Entries[i]
			if !e.MBR.Intersects(query) {
				continue
			}
			if n.Leaf {
				out = append(out, *e)
			} else {
				walk(e.Child, level-1)
			}
		}
	}
	walk(t.root, t.height)
	return out
}

// heapItem is a prioritized R-tree entry for best-first traversals.
type heapItem struct {
	key   float64
	entry Entry
	leaf  bool // whether entry is an object (from a leaf) or a child ref
}

// entryHeap is a min-heap over heapItem.
type entryHeap []heapItem

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NNIterator browses leaf objects in ascending distance from an anchor
// point — the incremental best-first algorithm of Hjaltason & Samet that
// Algorithm 1 and the ConditionalFilter build on. It reads through
// ReadNodeStable: heap items retain entry values (including polygon
// vertex slices on polygon trees), which must not alias a scratch node.
type NNIterator struct {
	t      *Tree
	anchor geom.Point
	h      entryHeap
}

// NewNNIterator starts an incremental NN browse around anchor.
func (t *Tree) NewNNIterator(anchor geom.Point) *NNIterator {
	it := &NNIterator{t: t, anchor: anchor}
	if t.root != storage.InvalidPage {
		root := t.ReadNodeStable(t.root)
		it.pushNode(root)
	}
	heap.Init(&it.h)
	return it
}

func (it *NNIterator) pushNode(n *Node) {
	for i := range n.Entries {
		e := n.Entries[i]
		heap.Push(&it.h, heapItem{
			key:   e.MBR.MinDist(it.anchor),
			entry: e,
			leaf:  n.Leaf,
		})
	}
}

// Next returns the next closest object entry and its distance, or ok=false
// when the tree is exhausted.
func (it *NNIterator) Next() (Entry, float64, bool) {
	for it.h.Len() > 0 {
		top := heap.Pop(&it.h).(heapItem)
		if top.leaf {
			return top.entry, top.key, true
		}
		it.pushNode(it.t.ReadNodeStable(top.entry.Child))
	}
	return Entry{}, 0, false
}

// KNN returns the k nearest leaf objects to anchor for which accept
// returns true (accept == nil accepts everything).
func (t *Tree) KNN(anchor geom.Point, k int, accept func(Entry) bool) []Entry {
	it := t.NewNNIterator(anchor)
	var out []Entry
	for len(out) < k {
		e, _, ok := it.Next()
		if !ok {
			break
		}
		if accept == nil || accept(e) {
			out = append(out, e)
		}
	}
	return out
}

// VisitLeavesHilbert performs a depth-first traversal visiting each leaf
// node once, with the entries of every internal node visited in ascending
// Hilbert value of their MBR centers. This is the "tuned" DFS of Section
// III-C that makes successively visited leaves close in space, so that
// batch-computed Voronoi cells arrive in good packing order and buffer
// locality is high.
//
// The leaf handed to visit is shared and read-only (it may be the
// buffer's cached decoded node); callbacks copy what they keep, as
// voronoi.AppendSites does.
func (t *Tree) VisitLeavesHilbert(domain geom.Rect, visit func(leaf *Node)) {
	if t.root == storage.InvalidPage {
		return
	}
	var walk func(id storage.PageID, level int)
	walk = func(id storage.PageID, level int) {
		n := t.ReadNodeStable(id)
		if n.Leaf {
			visit(n)
			return
		}
		order := make([]int, len(n.Entries))
		keys := make([]uint64, len(n.Entries))
		for i := range n.Entries {
			order[i] = i
			keys[i] = geom.HilbertValue(n.Entries[i].MBR.Center(), domain)
		}
		sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
		for _, i := range order {
			walk(n.Entries[i].Child, level-1)
		}
	}
	walk(t.root, t.height)
}

// VisitLeaves performs a plain depth-first traversal in stored entry
// order. Kept as the non-tuned ablation counterpart of
// VisitLeavesHilbert.
func (t *Tree) VisitLeaves(visit func(leaf *Node)) {
	if t.root == storage.InvalidPage {
		return
	}
	var walk func(id storage.PageID, level int)
	walk = func(id storage.PageID, level int) {
		n := t.ReadNodeStable(id)
		if n.Leaf {
			visit(n)
			return
		}
		for i := range n.Entries {
			walk(n.Entries[i].Child, level-1)
		}
	}
	walk(t.root, t.height)
}

// AllEntries returns every leaf object entry of the tree (test helper and
// export path; one full traversal).
func (t *Tree) AllEntries() []Entry {
	var out []Entry
	t.VisitLeaves(func(leaf *Node) {
		out = append(out, leaf.Entries...)
	})
	return out
}
