package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cij/internal/geom"
	"cij/internal/storage"
)

// Second-round tests: serialization fuzz, empty-tree behavior, polygon
// range queries, mixed dynamic/bulk workloads.

func TestNodeSerializationFuzz(t *testing.T) {
	f := func(seed int64, leaf bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := &Node{Leaf: leaf}
		count := rng.Intn(20) + 1
		for i := 0; i < count; i++ {
			if leaf {
				p := geom.Pt(rng.Float64()*1e4, rng.Float64()*1e4)
				n.Entries = append(n.Entries, Entry{
					MBR: geom.RectFromPoint(p), ID: rng.Int63(), Pt: p,
				})
			} else {
				r := geom.NewRect(rng.Float64()*1e4, rng.Float64()*1e4,
					rng.Float64()*1e4, rng.Float64()*1e4)
				n.Entries = append(n.Entries, Entry{MBR: r, Child: storage.PageID(rng.Int63n(1 << 40))})
			}
		}
		got := decodeNode(encodeNode(n, KindPoints, 1024), KindPoints)
		if got.Leaf != n.Leaf || len(got.Entries) != len(n.Entries) {
			return false
		}
		for i := range n.Entries {
			a, b := n.Entries[i], got.Entries[i]
			if leaf {
				if a.ID != b.ID || a.Pt != b.Pt {
					return false
				}
			} else {
				if a.Child != b.Child || a.MBR != b.MBR {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	tr := New(newBuf(t, 8), KindPoints)
	if got := tr.RangeSearch(geom.NewRect(0, 0, 1e4, 1e4)); len(got) != 0 {
		t.Error("empty tree range search should be empty")
	}
	if got := tr.KNN(geom.Pt(5, 5), 3, nil); len(got) != 0 {
		t.Error("empty tree KNN should be empty")
	}
	it := tr.NewNNIterator(geom.Pt(0, 0))
	if _, _, ok := it.Next(); ok {
		t.Error("empty tree iterator should be exhausted")
	}
	visited := false
	tr.VisitLeaves(func(*Node) { visited = true })
	tr.VisitLeavesHilbert(testDomain, func(*Node) { visited = true })
	if visited {
		t.Error("empty tree has no leaves to visit")
	}
	if tr.NumPages() != 0 {
		t.Error("empty tree has no pages")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("empty tree invariants: %v", err)
	}
}

func TestPolygonTreeRangeSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	var items []PolygonItem
	var polys []geom.Polygon
	for i := 0; i < 500; i++ {
		cx, cy := rng.Float64()*9000, rng.Float64()*9000
		poly := geom.NewRect(cx, cy, cx+rng.Float64()*400, cy+rng.Float64()*400).Polygon()
		items = append(items, PolygonItem{ID: int64(i), Poly: poly})
		polys = append(polys, poly)
	}
	tr := PackPolygons(newBuf(t, 128), items)
	for trial := 0; trial < 30; trial++ {
		q := geom.NewRect(rng.Float64()*9000, rng.Float64()*9000,
			rng.Float64()*10000, rng.Float64()*10000)
		got := map[int64]bool{}
		for _, e := range tr.RangeSearch(q) {
			got[e.ID] = true
		}
		for i, poly := range polys {
			want := poly.Bounds().Intersects(q)
			if got[int64(i)] != want {
				t.Fatalf("trial %d: polygon %d presence = %v, want %v", trial, i, got[int64(i)], want)
			}
		}
	}
}

func TestInterleavedInsertAndSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	tr := New(newBuf(t, 64), KindPoints)
	var pts []geom.Point
	for round := 0; round < 10; round++ {
		for i := 0; i < 100; i++ {
			p := geom.Pt(rng.Float64()*1e4, rng.Float64()*1e4)
			tr.InsertPoint(int64(len(pts)), p)
			pts = append(pts, p)
		}
		q := geom.NewRect(rng.Float64()*5e3, rng.Float64()*5e3,
			rng.Float64()*1e4, rng.Float64()*1e4)
		got := idsOf(tr.RangeSearch(q))
		want := bruteRange(pts, q)
		if !equalIDs(got, want) {
			t.Fatalf("round %d: %d vs %d results", round, len(got), len(want))
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkThenInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	pts := randPoints(rng, 800)
	buf := newBuf(t, 64)
	tr := BulkLoadPoints(buf, pts, testDomain, 1)
	// Dynamic growth on top of a packed tree.
	for i := 0; i < 300; i++ {
		p := geom.Pt(rng.Float64()*1e4, rng.Float64()*1e4)
		tr.InsertPoint(int64(len(pts)), p)
		pts = append(pts, p)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != len(pts) {
		t.Fatalf("size = %d, want %d", tr.Size(), len(pts))
	}
	q := geom.NewRect(2000, 2000, 7000, 7000)
	if !equalIDs(idsOf(tr.RangeSearch(q)), bruteRange(pts, q)) {
		t.Fatal("range search wrong after mixed bulk+insert")
	}
}

func TestSTJoinEmptyTrees(t *testing.T) {
	empty := New(newBuf(t, 8), KindPolygons)
	full := PackPolygons(newBuf(t, 8), []PolygonItem{
		{ID: 0, Poly: geom.NewRect(0, 0, 10, 10).Polygon()},
	})
	called := false
	STJoin(empty, full, func(a, b Entry) { called = true })
	STJoin(full, empty, func(a, b Entry) { called = true })
	STJoin(empty, empty, func(a, b Entry) { called = true })
	if called {
		t.Error("joins with empty trees should emit nothing")
	}
}

func TestSTJoinPointTrees(t *testing.T) {
	// ST join also works over point trees (MBR = point): it degenerates
	// to an equality-on-location join.
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(3, 3)}
	ta := BulkLoadPoints(newBuf(t, 8), pts, testDomain, 1)
	tb := BulkLoadPoints(newBuf(t, 8), []geom.Point{geom.Pt(2, 2), geom.Pt(9, 9)}, testDomain, 1)
	var got [][2]int64
	STJoin(ta, tb, func(a, b Entry) { got = append(got, [2]int64{a.ID, b.ID}) })
	if len(got) != 1 || got[0] != [2]int64{1, 0} {
		t.Fatalf("point ST join = %v", got)
	}
}

func TestNNIteratorTieBreaking(t *testing.T) {
	// Four points equidistant from the anchor must all be returned.
	pts := []geom.Point{geom.Pt(4, 5), geom.Pt(6, 5), geom.Pt(5, 4), geom.Pt(5, 6)}
	tr := BulkLoadPoints(newBuf(t, 8), pts, testDomain, 1)
	it := tr.NewNNIterator(geom.Pt(5, 5))
	seen := 0
	for {
		_, d, ok := it.Next()
		if !ok {
			break
		}
		if d != 1 {
			t.Fatalf("distance %v, want 1", d)
		}
		seen++
	}
	if seen != 4 {
		t.Fatalf("returned %d of 4 tied points", seen)
	}
}

func TestLargePolygonSplitRebalance(t *testing.T) {
	// Insert polygons with many vertices so quadratic split must
	// rebalance by bytes.
	rng := rand.New(rand.NewSource(63))
	tr := New(newBuf(t, 32), KindPolygons)
	for i := 0; i < 120; i++ {
		c := geom.Pt(rng.Float64()*9000+500, rng.Float64()*9000+500)
		tr.InsertPolygon(int64(i), regularPolygon(c, 200, 3+rng.Intn(25)))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 120 {
		t.Fatalf("size = %d", tr.Size())
	}
}

func TestHilbertVsSTRBothCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	pts := randPoints(rng, 2000)
	hil := BulkLoadPoints(newBuf(t, 128), pts, testDomain, 1)
	str := BulkLoadPointsSTR(newBuf(t, 128), pts, 1)
	for trial := 0; trial < 15; trial++ {
		q := geom.NewRect(rng.Float64()*8e3, rng.Float64()*8e3,
			rng.Float64()*1e4, rng.Float64()*1e4)
		a := idsOf(hil.RangeSearch(q))
		b := idsOf(str.RangeSearch(q))
		if !equalIDs(a, b) {
			t.Fatalf("Hilbert and STR trees disagree on range results")
		}
	}
}
