package rtree

import (
	"cij/internal/geom"
	"cij/internal/storage"
)

// DeletePoint removes the point with the given id at location p from a
// point tree, using Guttman's Delete with CondenseTree: leaves that
// underflow are dissolved and their remaining entries reinserted. Returns
// false if no such object exists.
//
// The paper's premise for indexing the INPUTS rather than the Voronoi
// diagrams is that "spatial access methods can be updated much more
// efficiently compared to Voronoi diagrams" (footnote 1): a point
// insertion or deletion touches O(height) pages here, while maintaining a
// materialized Vor(P) would recompute every neighboring cell.
func (t *Tree) DeletePoint(id int64, p geom.Point) bool {
	if t.kind != KindPoints {
		panic("rtree: DeletePoint on a polygon tree")
	}
	if t.root == storage.InvalidPage {
		return false
	}
	var orphans []Entry
	removed := t.deleteAt(t.root, t.height, id, geom.RectFromPoint(p), &orphans)
	if !removed {
		return false
	}
	t.size--

	// Shrink the root while it is an internal node with a single child; an
	// internal root emptied by condensation resets the tree (its contents
	// are all in orphans).
	for t.height > 1 {
		root := t.readNodeQuiet(t.root)
		if root.Leaf {
			break
		}
		if len(root.Entries) == 0 {
			t.root = storage.InvalidPage
			t.height = 0
			break
		}
		if len(root.Entries) != 1 {
			break
		}
		t.root = root.Entries[0].Child
		t.height--
	}
	if t.size == 0 {
		t.root = storage.InvalidPage
		t.height = 0
	}

	// Reinsert entries orphaned by condensed nodes.
	for _, e := range orphans {
		if t.root == storage.InvalidPage {
			t.root = t.allocNode(&Node{Leaf: true, Entries: []Entry{e}})
			t.height = 1
			continue
		}
		if split := t.insertAt(t.root, e, t.height); split != nil {
			oldRoot := t.readNodeQuiet(t.root)
			t.root = t.allocNode(&Node{Leaf: false, Entries: []Entry{
				{MBR: oldRoot.MBR(), Child: t.root},
				*split,
			}})
			t.height++
		}
	}
	return true
}

// deleteAt removes the object from the subtree rooted at pid; underfull
// children are dissolved into orphans. Returns whether the object was
// found.
func (t *Tree) deleteAt(pid storage.PageID, level int, id int64, mbr geom.Rect, orphans *[]Entry) bool {
	// Mutating read: deleteAt splices entries out of the node in place.
	n := t.readNodeQuietMut(pid)
	if level == 1 {
		for i := range n.Entries {
			if n.Entries[i].ID == id {
				n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
				t.writeNode(pid, n)
				return true
			}
		}
		return false
	}
	for i := range n.Entries {
		e := &n.Entries[i]
		if !e.MBR.Intersects(mbr) {
			continue
		}
		if !t.deleteAt(e.Child, level-1, id, mbr, orphans) {
			continue
		}
		child := t.readNodeQuiet(e.Child)
		if len(child.Entries) < t.minFill {
			// Condense: dissolve the child, orphan its entries (points
			// from leaves re-enter at the leaf level; deeper orphaning is
			// avoided by reinserting leaf entries only — internal
			// children are dissolved recursively).
			t.collectLeafEntries(e.Child, level-1, orphans)
			n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
		} else {
			e.MBR = child.MBR()
		}
		t.writeNode(pid, n)
		return true
	}
	return false
}

// collectLeafEntries gathers every object entry under pid.
func (t *Tree) collectLeafEntries(pid storage.PageID, level int, out *[]Entry) {
	n := t.readNodeQuiet(pid)
	if level == 1 {
		*out = append(*out, n.Entries...)
		return
	}
	for i := range n.Entries {
		t.collectLeafEntries(n.Entries[i].Child, level-1, out)
	}
}
