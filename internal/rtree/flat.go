package rtree

import (
	"sort"

	"cij/internal/geom"
	"cij/internal/storage"
)

// Flat storage mode: the tree's nodes live in one contiguous arena
// ([]Node slab plus shared Entry and vertex arenas) instead of encoded
// pages behind an LRU buffer. A node's PageID is its slab index, so
// ReadNode/ReadNodeStable degenerate to an array index — no page fetch,
// no decode, no cache bookkeeping — while the read contract (shared,
// read-only nodes) and every traversal built on it are unchanged. I/O
// accounting moves to a storage.Backend-flat ledger (storage.NewFlatLedger):
// each read counts one LogicalRead and one DecodeHit, and PageAccesses()
// and DecodeMisses are structurally zero.
//
// Flat trees are immutable: Insert/Delete (and any other mutation path)
// panic. They are produced either by one-shot conversion of a bulk-loaded
// paged tree (Freeze/FreezeWith, structure-preserving) or directly by the
// bulk loader (FlatBulkLoadPoints, no paged intermediate).

// flatStore is the arena of a flat tree. nodes is the slab indexed by
// PageID; every node's Entries is a subslice of the shared entries arena,
// and every polygon's vertices a subslice of verts. The arenas are sized
// exactly up front, so subslices never alias reallocated backing arrays.
type flatStore struct {
	nodes   []Node
	entries []Entry
	verts   []geom.Point
}

// Flat reports whether the tree is arena-resident (frozen or flat-built).
func (t *Tree) Flat() bool { return t.flat != nil }

// Freeze returns a flat, read-only copy of the tree on a fresh stats
// ledger over the tree's own disk. The conversion is structure-preserving:
// node shapes, entry contents and orders are copied verbatim (only the
// page numbering changes, to slab indexes), so every traversal — and
// therefore every emitted pair sequence — is byte-identical to the paged
// tree's. The source tree is left untouched and remains fully usable.
func (t *Tree) Freeze() *Tree {
	return t.FreezeWith(storage.NewFlatLedger(t.buf.Disk()))
}

// FreezeWith is Freeze onto a caller-provided ledger, so several trees
// (the two join inputs of an experiment environment) can share one ledger
// exactly like paged trees sharing one buffer — collectors that meter a
// single buffer then see the combined node accesses of both trees.
func (t *Tree) FreezeWith(ledger *storage.Buffer) *Tree {
	if ledger.Backend() != storage.BackendFlat {
		panic("rtree: FreezeWith requires a flat ledger (storage.NewFlatLedger)")
	}
	if ledger.Disk() != t.buf.Disk() {
		panic("rtree: FreezeWith requires a ledger over the tree's own disk")
	}
	view := *t
	view.buf = ledger
	view.scratch = &Node{}
	f := &flatStore{}
	view.flat = f
	if t.root == storage.InvalidPage {
		return &view
	}
	// Exact-count pre-pass: the arenas must never grow while node Entries
	// subslices alias them.
	var nNodes, nEntries, nVerts int
	t.walkQuiet(t.root, t.height, func(n *Node) {
		nNodes++
		nEntries += len(n.Entries)
		for i := range n.Entries {
			nVerts += len(n.Entries[i].Poly.V)
		}
	})
	f.nodes = make([]Node, 0, nNodes)
	f.entries = make([]Entry, 0, nEntries)
	f.verts = make([]geom.Point, 0, nVerts)
	view.root = f.copyFrom(t, t.root, t.height)
	return &view
}

// walkQuiet visits every node of the subtree without disturbing the I/O
// counters (construction bookkeeping, like countPages).
func (t *Tree) walkQuiet(id storage.PageID, level int, visit func(*Node)) {
	n := t.readNodeQuiet(id)
	visit(n)
	if level > 1 {
		for i := range n.Entries {
			t.walkQuiet(n.Entries[i].Child, level-1, visit)
		}
	}
}

// copyFrom copies the subtree rooted at id into the arena (pre-order:
// parent slot allocated before children) and returns the node's slab
// index. Entry contents are copied verbatim except Child, which is
// renumbered to the child's slab index, and polygon vertex slices, which
// are deep-copied into the vertex arena so the flat tree shares no
// backing memory with the source's decode caches.
func (f *flatStore) copyFrom(t *Tree, id storage.PageID, level int) storage.PageID {
	src := t.readNodeQuiet(id)
	slot := len(f.nodes)
	f.nodes = append(f.nodes, Node{})
	estart := len(f.entries)
	f.entries = append(f.entries, src.Entries...)
	ents := f.entries[estart:len(f.entries):len(f.entries)]
	for i := range ents {
		if nv := len(ents[i].Poly.V); nv > 0 {
			vstart := len(f.verts)
			f.verts = append(f.verts, ents[i].Poly.V...)
			ents[i].Poly.V = f.verts[vstart : vstart+nv : vstart+nv]
		}
	}
	f.nodes[slot] = Node{Leaf: src.Leaf, Entries: ents}
	if level > 1 {
		// src may be scratch/cache-backed and invalidated by the recursive
		// reads below; the copied arena entries are the stable source of
		// child ids to renumber.
		for i := range ents {
			ents[i].Child = f.copyFrom(t, ents[i].Child, level-1)
		}
	}
	return storage.PageID(slot)
}

// alloc appends one node to the arena and returns its slab index. ents is
// copied into the entries arena.
func (f *flatStore) alloc(leaf bool, ents []Entry) storage.PageID {
	slot := len(f.nodes)
	estart := len(f.entries)
	f.entries = append(f.entries, ents...)
	f.nodes = append(f.nodes, Node{Leaf: leaf, Entries: f.entries[estart:len(f.entries):len(f.entries)]})
	return storage.PageID(slot)
}

// FlatBulkLoadPoints builds a flat point tree directly — Hilbert-sorted,
// fully packed, bottom-up, mirroring BulkLoadPoints exactly (same leaf
// partitioning, same fan-out, same entry order) but into the arena with
// no paged intermediate: no page is encoded, written or ever decoded.
// pageSize only determines node capacities, so flat and paged trees built
// from the same inputs are structurally identical (Freeze(BulkLoadPoints)
// and FlatBulkLoadPoints produce the same shape, entry for entry).
func FlatBulkLoadPoints(pts []geom.Point, domain geom.Rect, pageSize int, fillFactor float64) *Tree {
	ledger := storage.NewFlatLedger(storage.NewDisk(pageSize))
	t := New(ledger, KindPoints)
	f := &flatStore{}
	t.flat = f
	if len(pts) == 0 {
		return t
	}
	leafCap := scaleCap(t.maxPoints, fillFactor)
	fanout := scaleCap(t.maxInternal, fillFactor)

	// Exact-count pre-pass over the level structure.
	nLeaves := (len(pts) + leafCap - 1) / leafCap
	total, width := nLeaves, nLeaves
	for width > 1 {
		width = (width + fanout - 1) / fanout
		total += width
	}
	f.nodes = make([]Node, 0, total)
	f.entries = make([]Entry, 0, len(pts)+total-1)

	type keyed struct {
		id  int64
		pt  geom.Point
		key uint64
	}
	items := make([]keyed, len(pts))
	for i, p := range pts {
		items[i] = keyed{id: int64(i), pt: p, key: geom.HilbertValue(p, domain)}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].key < items[j].key })

	var level []Entry
	ents := make([]Entry, 0, leafCap)
	for start := 0; start < len(items); start += leafCap {
		end := start + leafCap
		if end > len(items) {
			end = len(items)
		}
		ents = ents[:0]
		for _, it := range items[start:end] {
			ents = append(ents, Entry{MBR: geom.RectFromPoint(it.pt), ID: it.id, Pt: it.pt})
		}
		id := f.alloc(true, ents)
		level = append(level, Entry{MBR: f.nodes[id].MBR(), Child: id})
	}
	t.size = len(pts)

	height := 1
	for len(level) > 1 {
		var next []Entry
		for start := 0; start < len(level); start += fanout {
			end := start + fanout
			if end > len(level) {
				end = len(level)
			}
			id := f.alloc(false, level[start:end])
			next = append(next, Entry{MBR: f.nodes[id].MBR(), Child: id})
		}
		level = next
		height++
	}
	t.root = level[0].Child
	t.height = height
	return t
}
