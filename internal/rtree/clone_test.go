package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"cij/internal/geom"
	"cij/internal/storage"
)

// rangeIDs collects the sorted object IDs a tree reports for query.
func rangeIDs(t *Tree, query geom.Rect) []int64 {
	var ids []int64
	for _, e := range t.RangeSearch(query) {
		ids = append(ids, e.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestCloneMutIsolatesOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randPoints(rng, 400)
	buf := newBuf(t, 1<<20)
	orig := BulkLoadPoints(buf, pts, testDomain, 1)
	wantIDs := rangeIDs(orig, testDomain)

	mbuf := storage.NewBuffer(buf.Disk().Clone(), 1<<20)
	mut := orig.CloneMut(mbuf)

	// Mutate heavily: delete a third of the points, move a third, insert
	// new ones — enough to force splits, condensation and root changes.
	for id := 0; id < 400; id += 3 {
		if !mut.DeletePoint(int64(id), pts[id]) {
			t.Fatalf("delete %d failed", id)
		}
	}
	for id := 1; id < 400; id += 3 {
		if !mut.DeletePoint(int64(id), pts[id]) {
			t.Fatalf("delete-for-move %d failed", id)
		}
		mut.InsertPoint(int64(id), geom.Pt(rng.Float64()*10000, rng.Float64()*10000))
	}
	for id := 400; id < 500; id++ {
		mut.InsertPoint(int64(id), geom.Pt(rng.Float64()*10000, rng.Float64()*10000))
	}

	if err := mut.CheckInvariants(); err != nil {
		t.Fatalf("mutated clone invariants: %v", err)
	}
	if err := orig.CheckInvariants(); err != nil {
		t.Fatalf("original invariants after clone mutation: %v", err)
	}
	if got := rangeIDs(orig, testDomain); len(got) != len(wantIDs) {
		t.Fatalf("original changed: %d objects, want %d", len(got), len(wantIDs))
	} else {
		for i := range got {
			if got[i] != wantIDs[i] {
				t.Fatalf("original id set changed at %d: %d != %d", i, got[i], wantIDs[i])
			}
		}
	}
	wantSize := 400 - 400/3 - 1 + 100 // deletions in the id%0 class, moves keep count
	if mut.Size() != wantSize {
		t.Fatalf("clone size %d, want %d", mut.Size(), wantSize)
	}
	if orig.Size() != 400 {
		t.Fatalf("original size %d, want 400", orig.Size())
	}
}

func TestCloneMutRejectsWrongBuffers(t *testing.T) {
	buf := newBuf(t, 64)
	tr := BulkLoadPoints(buf, randPoints(rand.New(rand.NewSource(1)), 50), testDomain, 1)

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("same disk", func() { tr.CloneMut(buf.Fork(8)) })
	mustPanic("unrelated disk", func() {
		tr.CloneMut(storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), 8))
	})
	mustPanic("flat tree", func() {
		tr.Freeze().CloneMut(storage.NewBuffer(buf.Disk().Clone(), 8))
	})
}

// TestCloneMutFreeze covers the version-bump path the service registry
// uses: a mutated clone re-freezes into a flat tree over its own (cloned)
// disk, and the frozen copy reports the clone's contents, not the
// original's.
func TestCloneMutFreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randPoints(rng, 200)
	buf := newBuf(t, 1<<20)
	orig := BulkLoadPoints(buf, pts, testDomain, 1)

	mut := orig.CloneMut(storage.NewBuffer(buf.Disk().Clone(), 1<<20))
	mut.InsertPoint(200, geom.Pt(1234, 5678))
	flat := mut.Freeze()

	probe := geom.NewRect(1233, 5677, 1235, 5679)
	found := false
	for _, e := range flat.RangeSearch(probe) {
		if e.ID == 200 {
			found = true
		}
	}
	if !found {
		t.Fatal("frozen clone missing inserted point")
	}
	for _, e := range orig.Freeze().RangeSearch(probe) {
		if e.ID == 200 {
			t.Fatal("original's frozen copy sees the clone's insert")
		}
	}
}
