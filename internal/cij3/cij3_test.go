package cij3

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"cij/internal/geom3"
)

var domain3 = geom3.NewBox3(geom3.V3(0, 0, 0), geom3.V3(10000, 10000, 10000))

func randPoints3(rng *rand.Rand, n int) []geom3.Vec3 {
	pts := make([]geom3.Vec3, n)
	for i := range pts {
		pts[i] = geom3.V3(rng.Float64()*10000, rng.Float64()*10000, rng.Float64()*10000)
	}
	return pts
}

func cellsEquivalent(a, b *geom3.Polyhedron) bool {
	va, vb := a.Volume(), b.Volume()
	scale := math.Max(va, vb)
	if scale < 1 {
		scale = 1
	}
	if math.Abs(va-vb) > 1e-5*scale {
		return false
	}
	inter := geom3.IntersectionVolume(a, b)
	return math.Abs(inter-va) <= 1e-5*scale
}

func TestKDTreeBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	pts := randPoints3(rng, 500)
	tree := BuildKDTree(MakeSites3(pts))
	if tree.Size() != 500 {
		t.Fatalf("size = %d", tree.Size())
	}
	seen := map[int64]bool{}
	eachSite(tree, func(s Site3) { seen[s.ID] = true })
	if len(seen) != 500 {
		t.Fatalf("traversal saw %d sites", len(seen))
	}
	empty := BuildKDTree(nil)
	if empty.Size() != 0 {
		t.Fatal("empty tree size")
	}
}

func TestBFVor3MatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	pts := randPoints3(rng, 120)
	sites := MakeSites3(pts)
	tree := BuildKDTree(sites)
	for trial := 0; trial < 15; trial++ {
		i := rng.Intn(len(pts))
		got := BFVor3(tree, sites[i], domain3)
		want := BruteCell3(sites, i, domain3)
		if !cellsEquivalent(got, want) {
			t.Fatalf("site %d: BFVor3 volume %v, brute %v", i, got.Volume(), want.Volume())
		}
		if !got.Contains(pts[i]) {
			t.Fatalf("site %d: cell does not contain site", i)
		}
	}
}

func TestDiagram3TilesDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	pts := randPoints3(rng, 40)
	sites := MakeSites3(pts)
	tree := BuildKDTree(sites)
	var total float64
	for i := range sites {
		total += BFVor3(tree, sites[i], domain3).Volume()
	}
	if math.Abs(total-domain3.Volume()) > 1e-3*domain3.Volume() {
		t.Fatalf("cells sum to %v, want %v", total, domain3.Volume())
	}
}

func TestCIJ3MatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	p := randPoints3(rng, 30)
	q := randPoints3(rng, 25)
	want := BruteCIJ3(p, q, domain3)
	got := CIJ3(BuildKDTree(MakeSites3(p)), BuildKDTree(MakeSites3(q)), domain3)
	if !samePairs3(got, want) {
		t.Fatalf("CIJ3: %d pairs, want %d", len(got), len(want))
	}
	if len(want) == 0 {
		t.Fatal("setup: empty 3D join")
	}
}

func TestCIJ3EveryPointParticipates(t *testing.T) {
	rng := rand.New(rand.NewSource(604))
	p := randPoints3(rng, 25)
	q := randPoints3(rng, 20)
	pairs := CIJ3(BuildKDTree(MakeSites3(p)), BuildKDTree(MakeSites3(q)), domain3)
	seenP, seenQ := map[int64]bool{}, map[int64]bool{}
	for _, pr := range pairs {
		seenP[pr.P] = true
		seenQ[pr.Q] = true
	}
	if len(seenP) != len(p) || len(seenQ) != len(q) {
		t.Fatalf("participation: %d/%d P, %d/%d Q", len(seenP), len(p), len(seenQ), len(q))
	}
}

func TestCIJ3Symmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(605))
	p := randPoints3(rng, 20)
	q := randPoints3(rng, 20)
	tp, tq := BuildKDTree(MakeSites3(p)), BuildKDTree(MakeSites3(q))
	ab := CIJ3(tp, tq, domain3)
	ba := CIJ3(tq, tp, domain3)
	flipped := make([]Pair3, len(ba))
	for i, pr := range ba {
		flipped[i] = Pair3{P: pr.Q, Q: pr.P}
	}
	if !samePairs3(ab, flipped) {
		t.Fatalf("CIJ3 not symmetric: %d vs %d", len(ab), len(flipped))
	}
}

func TestCIJ3TwoSites(t *testing.T) {
	p := []geom3.Vec3{geom3.V3(2500, 5000, 5000), geom3.V3(7500, 5000, 5000)}
	q := []geom3.Vec3{geom3.V3(5000, 2500, 5000), geom3.V3(5000, 7500, 5000)}
	got := CIJ3(BuildKDTree(MakeSites3(p)), BuildKDTree(MakeSites3(q)), domain3)
	// Each P half-space cell overlaps both Q half-space cells.
	if len(got) != 4 {
		t.Fatalf("2×2 half-domains: %d pairs, want 4", len(got))
	}
}

func samePairs3(a, b []Pair3) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(p Pair3) int64 { return p.P*1_000_000 + p.Q }
	ka := make([]int64, len(a))
	kb := make([]int64, len(b))
	for i := range a {
		ka[i], kb[i] = key(a[i]), key(b[i])
	}
	sort.Slice(ka, func(i, j int) bool { return ka[i] < ka[j] })
	sort.Slice(kb, func(i, j int) bool { return kb[i] < kb[j] })
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
