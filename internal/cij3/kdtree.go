// Package cij3 implements the paper's 3D future-work extension: exact
// Voronoi cell computation for 3D pointsets with the single-traversal
// best-first algorithm (Lemmas 1 and 2 carry over verbatim, with the
// convex polygon replaced by a convex polyhedron and the MBR side L
// replaced by a box face), and the common influence join built on it.
//
// The spatial index here is an in-memory kd-tree rather than a paged
// R-tree: the 3D extension is an algorithmic demonstration (matching the
// scope the paper sketches in its conclusions), not a re-run of the I/O
// study, so the substrate favors simplicity. The pruning interfaces —
// mindist to a bounding box, Φ(face, p) membership — are exactly those
// the disk-based 2D implementation uses.
package cij3

import (
	"sort"

	"cij/internal/geom3"
)

// Site3 is an indexed 3D point.
type Site3 struct {
	ID int64
	Pt geom3.Vec3
}

// KDTree is a static, balanced kd-tree over 3D sites with bounding boxes
// on every node, supporting the best-first traversals of the Voronoi and
// CIJ algorithms.
type KDTree struct {
	nodes []kdNode
	root  int
}

type kdNode struct {
	box         geom3.Box3
	site        Site3 // leaf payload (leaf ⟺ left == -1)
	left, right int
	count       int // sites in subtree
}

// BuildKDTree constructs a balanced tree (median split on the widest
// axis). The input slice is not retained.
func BuildKDTree(sites []Site3) *KDTree {
	t := &KDTree{root: -1}
	if len(sites) == 0 {
		return t
	}
	buf := append([]Site3(nil), sites...)
	t.root = t.build(buf)
	return t
}

func (t *KDTree) build(sites []Site3) int {
	box := geom3.EmptyBox3()
	for _, s := range sites {
		box = box.UnionPoint(s.Pt)
	}
	idx := len(t.nodes)
	t.nodes = append(t.nodes, kdNode{box: box, left: -1, right: -1, count: len(sites)})
	if len(sites) == 1 {
		t.nodes[idx].site = sites[0]
		return idx
	}
	// Split on the widest axis at the median.
	dx := box.Max.X - box.Min.X
	dy := box.Max.Y - box.Min.Y
	dz := box.Max.Z - box.Min.Z
	axis := 0
	if dy > dx && dy >= dz {
		axis = 1
	} else if dz > dx && dz > dy {
		axis = 2
	}
	sort.Slice(sites, func(i, j int) bool { return coord(sites[i].Pt, axis) < coord(sites[j].Pt, axis) })
	mid := len(sites) / 2
	left := t.build(sites[:mid])
	right := t.build(sites[mid:])
	t.nodes[idx].left = left
	t.nodes[idx].right = right
	return idx
}

func coord(v geom3.Vec3, axis int) float64 {
	switch axis {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

// Size returns the number of indexed sites.
func (t *KDTree) Size() int {
	if t.root < 0 {
		return 0
	}
	return t.nodes[t.root].count
}

// kdHeap is a min-heap of tree nodes keyed by squared mindist.
type kdHeap struct {
	keys  []float64
	items []int
}

func (h *kdHeap) push(key float64, item int) {
	h.keys = append(h.keys, key)
	h.items = append(h.items, item)
	i := len(h.keys) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[parent] <= h.keys[i] {
			break
		}
		h.keys[parent], h.keys[i] = h.keys[i], h.keys[parent]
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *kdHeap) pop() (float64, int) {
	key, item := h.keys[0], h.items[0]
	last := len(h.keys) - 1
	h.keys[0], h.items[0] = h.keys[last], h.items[last]
	h.keys, h.items = h.keys[:last], h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.keys) && h.keys[l] < h.keys[small] {
			small = l
		}
		if r < len(h.keys) && h.keys[r] < h.keys[small] {
			small = r
		}
		if small == i {
			break
		}
		h.keys[i], h.keys[small] = h.keys[small], h.keys[i]
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return key, item
}

func (h *kdHeap) empty() bool { return len(h.keys) == 0 }
