package cij3

import "cij/internal/geom3"

// BFVor3 computes the exact 3D Voronoi cell V(pi, P) with a single
// best-first traversal of the kd-tree — Algorithm 1 lifted to 3D. The
// pruning rule is Lemma 2 with box mindist: a subtree can refine the
// current cell only if some cell vertex γ satisfies
// mindist(box, γ) < dist(γ, pi).
func BFVor3(t *KDTree, pi Site3, domain geom3.Box3) *geom3.Polyhedron {
	cell := geom3.BoxPolyhedron(domain)
	if t.root < 0 {
		return cell
	}
	var h kdHeap
	h.push(t.nodes[t.root].box.MinDist2(pi.Pt), t.root)
	for !h.empty() {
		_, idx := h.pop()
		n := &t.nodes[idx]
		if n.left < 0 { // leaf: a single site
			if n.site.ID == pi.ID || n.site.Pt.Eq(pi.Pt) {
				continue
			}
			if canRefine3(cell.Vertices(), pi.Pt, func(g geom3.Vec3) float64 {
				return n.site.Pt.Dist2(g)
			}) {
				cell.Clip(geom3.Bisector3(pi.Pt, n.site.Pt))
			}
			continue
		}
		if !canRefine3(cell.Vertices(), pi.Pt, func(g geom3.Vec3) float64 {
			return n.box.MinDist2(g)
		}) {
			continue
		}
		h.push(t.nodes[n.left].box.MinDist2(pi.Pt), n.left)
		h.push(t.nodes[n.right].box.MinDist2(pi.Pt), n.right)
	}
	return cell
}

// canRefine3 is the 3D Lemma 1/2 test: refinement is possible iff some
// vertex is closer to the contender than to the site.
func canRefine3(vertices []geom3.Vec3, pi geom3.Vec3, dist2To func(geom3.Vec3) float64) bool {
	for _, g := range vertices {
		if dist2To(g) < pi.Dist2(g) {
			return true
		}
	}
	return false
}

// BruteCell3 computes the 3D cell by clipping the domain box with every
// bisector — the Eq. 2 definition, used as the test oracle.
func BruteCell3(sites []Site3, i int, domain geom3.Box3) *geom3.Polyhedron {
	cell := geom3.BoxPolyhedron(domain)
	pi := sites[i].Pt
	for j, s := range sites {
		if j == i || s.Pt.Eq(pi) {
			continue
		}
		cell.Clip(geom3.Bisector3(pi, s.Pt))
		if cell.IsEmpty() {
			break
		}
	}
	return cell
}

// MakeSites3 wraps points into sites with slice-index IDs.
func MakeSites3(pts []geom3.Vec3) []Site3 {
	sites := make([]Site3, len(pts))
	for i, p := range pts {
		sites[i] = Site3{ID: int64(i), Pt: p}
	}
	return sites
}
