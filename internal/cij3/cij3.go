package cij3

import "cij/internal/geom3"

// joinVolumeEps is the minimum intersection volume for two 3D cells to
// join — the 3D analogue of the 2D area threshold, making the predicate
// deterministic across evaluation orders.
const joinVolumeEps = 1e-6

// Pair3 is one 3D CIJ result.
type Pair3 struct {
	P, Q int64
}

// CIJ3 computes the 3D common influence join of two pointsets indexed by
// kd-trees: all pairs whose 3D Voronoi cells share a region of positive
// volume. Evaluation follows the NM-CIJ structure: for every q ∈ Q its
// cell is computed on demand (BFVor3), a conditional filter walks P's
// tree collecting candidates — with subtree pruning by the face
// generalization of the Φ(L,p) test — and candidates are refined with
// exact cells cached across queries (the reuse heuristic of Section
// IV-B).
func CIJ3(tp, tq *KDTree, domain geom3.Box3) []Pair3 {
	var out []Pair3
	cacheP := map[int64]*geom3.Polyhedron{}
	eachSite(tq, func(q Site3) {
		cellQ := BFVor3(tq, q, domain)
		for _, cand := range conditionalFilter3(tp, cellQ, domain) {
			cellP, ok := cacheP[cand.ID]
			if !ok {
				cellP = BFVor3(tp, cand, domain)
				cacheP[cand.ID] = cellP
			}
			if !cellP.Bounds().Intersects(cellQ.Bounds()) {
				continue
			}
			if geom3.IntersectionVolume(cellP, cellQ) > joinVolumeEps {
				out = append(out, Pair3{P: cand.ID, Q: q.ID})
			}
		}
	})
	return out
}

func eachSite(t *KDTree, fn func(Site3)) {
	if t.root < 0 {
		return
	}
	var walk func(int)
	walk = func(idx int) {
		n := &t.nodes[idx]
		if n.left < 0 {
			fn(n.site)
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
}

// conditionalFilter3 returns the candidate sites of tp whose cells may
// intersect the polyhedron T — Algorithm 5 in 3D. Points are tested with
// the approximate cell V(p, CP); subtrees are pruned when T falls in
// Φ(F, p) for all six faces F of the subtree box, for some candidate p
// (the Lemma 3 argument carries over: a segment from T to any point
// inside the box crosses a face).
func conditionalFilter3(tp *KDTree, T *geom3.Polyhedron, domain geom3.Box3) []Site3 {
	if tp.root < 0 {
		return nil
	}
	anchor := T.Centroid()
	tBounds := T.Bounds()
	tVerts := T.Vertices()

	var cp []Site3
	var h kdHeap
	h.push(tp.nodes[tp.root].box.MinDist2(anchor), tp.root)
	for !h.empty() {
		_, idx := h.pop()
		n := &tp.nodes[idx]
		if n.left < 0 {
			if approxCellIntersects3(n.site, cp, T, tBounds, domain) {
				cp = append(cp, n.site)
			}
			continue
		}
		if canPruneBox3(n.box, cp, tVerts, tBounds) {
			continue
		}
		h.push(tp.nodes[n.left].box.MinDist2(anchor), n.left)
		h.push(tp.nodes[n.right].box.MinDist2(anchor), n.right)
	}
	return cp
}

// approxCellIntersects3 clips the domain by the bisectors of p against
// the current candidate set and tests the (superset) cell against T.
func approxCellIntersects3(p Site3, cp []Site3, T *geom3.Polyhedron, tBounds geom3.Box3, domain geom3.Box3) bool {
	cell := geom3.BoxPolyhedron(domain)
	for _, c := range cp {
		if c.Pt.Eq(p.Pt) {
			continue
		}
		cell.Clip(geom3.Bisector3(p.Pt, c.Pt))
		if cell.IsEmpty() {
			return false
		}
	}
	if !cell.Bounds().Intersects(tBounds) {
		return false
	}
	return cell.Intersects(T)
}

// canPruneBox3 prunes a subtree box when no part of T touches it and some
// candidate dominates it: every vertex of T lies in Φ(F, p) for all six
// faces F.
func canPruneBox3(box geom3.Box3, cp []Site3, tVerts []geom3.Vec3, tBounds geom3.Box3) bool {
	if len(cp) == 0 || box.Intersects(tBounds) {
		return false
	}
	faces := box.Faces()
	for _, p := range cp {
		ok := true
		for _, f := range faces {
			for _, t := range tVerts {
				if !f.InPhi(p.Pt, t) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// BruteCIJ3 evaluates the 3D join by definition: both diagrams brute-
// forced, every cell pair tested on intersection volume. Test oracle.
func BruteCIJ3(p, q []geom3.Vec3, domain geom3.Box3) []Pair3 {
	sp := MakeSites3(p)
	sq := MakeSites3(q)
	cellsP := make([]*geom3.Polyhedron, len(sp))
	for i := range sp {
		cellsP[i] = BruteCell3(sp, i, domain)
	}
	cellsQ := make([]*geom3.Polyhedron, len(sq))
	for i := range sq {
		cellsQ[i] = BruteCell3(sq, i, domain)
	}
	var out []Pair3
	for i, cp := range cellsP {
		for j, cq := range cellsQ {
			if !cp.Bounds().Intersects(cq.Bounds()) {
				continue
			}
			if geom3.IntersectionVolume(cp, cq) > joinVolumeEps {
				out = append(out, Pair3{P: int64(i), Q: int64(j)})
			}
		}
	}
	return out
}
