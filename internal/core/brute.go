package core

import (
	"sort"

	"cij/internal/geom"
	"cij/internal/voronoi"
)

// BruteCIJ computes the common influence join by definition: both Voronoi
// diagrams via O(n²) halfplane clipping, then all |P|×|Q| cell pairs
// tested with the join predicate. It is the oracle the test suite checks
// every tree-based algorithm against; do not use it beyond a few thousand
// points.
func BruteCIJ(p, q []geom.Point, domain geom.Rect) []Pair {
	cellsP := voronoi.BruteDiagram(voronoi.MakeSites(p), domain)
	cellsQ := voronoi.BruteDiagram(voronoi.MakeSites(q), domain)
	var pairs []Pair
	var cl geom.Clipper
	for _, cp := range cellsP {
		bp := cp.Poly.Bounds()
		for _, cq := range cellsQ {
			if !bp.Intersects(cq.Poly.Bounds()) {
				continue
			}
			if CellsJoinWith(&cl, cp.Poly, cq.Poly) {
				pairs = append(pairs, Pair{P: cp.Site.ID, Q: cq.Site.ID})
			}
		}
	}
	return pairs
}

// SortPairs orders pairs lexicographically, for set comparison.
func SortPairs(pairs []Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].P != pairs[j].P {
			return pairs[i].P < pairs[j].P
		}
		return pairs[i].Q < pairs[j].Q
	})
}

// SamePairs reports whether two pair multisets are equal (order
// insensitive).
func SamePairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	ac := append([]Pair(nil), a...)
	bc := append([]Pair(nil), b...)
	SortPairs(ac)
	SortPairs(bc)
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	return true
}

// DiffPairs returns pairs present in a but not in b (set difference), for
// diagnostic output in tests.
func DiffPairs(a, b []Pair) []Pair {
	set := make(map[Pair]bool, len(b))
	for _, p := range b {
		set[p] = true
	}
	var out []Pair
	for _, p := range a {
		if !set[p] {
			out = append(out, p)
		}
	}
	return out
}
