package core

import (
	"time"

	"cij/internal/geom"
	"cij/internal/obs"
	"cij/internal/rtree"
	"cij/internal/voronoi"
)

// PMCIJ evaluates the common influence join with the Partial
// Materialization algorithm (Algorithm 4): only Vor(P) is computed and
// bulk-loaded into a packed R-tree R'P. The tree of Q is then traversed
// leaf by leaf (in Hilbert order, for probe locality); the Voronoi cells
// of each leaf's points are computed in batch and probed against R'P with
// a single range query whose window encloses the whole batch — a block
// index nested loops join. Cheaper than FM-CIJ by one materialized tree,
// but still blocking: no result appears before R'P is complete.
func PMCIJ(rp, rq *rtree.Tree, domain geom.Rect, opts Options) Result {
	buf := rp.Buffer()
	col := newCollector(opts, buf)

	// --- MAT phase: build R'P only ---
	matStart := buf.Stats()
	cpuStart := time.Now()
	packP := rtree.NewPolygonPacker(buf)
	voronoi.ComputeDiagramBatch(rp, domain, func(c voronoi.Cell) {
		packP.Add(c.Site.ID, c.Poly)
	})
	vorP := packP.Finish()
	matIO := buf.Stats().Sub(matStart)
	matCPU := time.Since(cpuStart)
	col.sample()
	tr := opts.Trace
	tr.Add("mat", "", matCPU, IOCounters(matIO))

	// --- JOIN phase: batched probes of Q cells into R'P ---
	joinStart := buf.Stats()
	cpuStart = time.Now()
	var (
		ws       voronoi.Workspace // probe-side scratch, reused across batches
		sites    []voronoi.Site
		cells    []voronoi.Cell
		qCells   []cellRecord
		joinClip geom.Clipper
	)
	// Boundary points chain across the traversal callback (as in NMCIJ),
	// so leaf-read I/O lands in traverse spans and every page of the join
	// phase is attributed to exactly one span.
	var tp phasePoint
	if tr.Enabled() {
		tp = markPhase(rp, rq)
	}
	rq.VisitLeavesHilbert(domain, func(leaf *rtree.Node) {
		if tr.Enabled() {
			tp = endPhase(tr, "", tp, rp, rq, "traverse", obs.Counters{Items: 1})
		}
		sites = voronoi.AppendSites(sites[:0], leaf)
		cells = ws.BatchVoronoi(rq, sites, domain, cells[:0])
		qCells = appendRecords(qCells[:0], cells)
		if tr.Enabled() {
			tp = endPhase(tr, "", tp, rp, rq, "voronoi", obs.Counters{})
		}

		// One range query window enclosing all cells of the batch.
		window := geom.EmptyRect()
		for i := range qCells {
			window = window.Union(qCells[i].bounds)
		}
		candidates := vorP.RangeSearch(window)
		for _, cand := range candidates {
			for i := range qCells {
				qc := &qCells[i]
				if !cand.MBR.Intersects(qc.bounds) {
					continue
				}
				if CellsJoinWith(&joinClip, cand.Poly, qc.poly) {
					col.emit(Pair{P: cand.ID, Q: qc.site.ID})
				}
			}
		}
		col.sample()
		if tr.Enabled() {
			tp = endPhase(tr, "", tp, rp, rq, "probe", obs.Counters{})
		}
	})
	if tr.Enabled() {
		endPhase(tr, "", tp, rp, rq, "traverse", obs.Counters{})
	}
	joinIO := buf.Stats().Sub(joinStart)
	joinCPU := time.Since(cpuStart)

	return Result{
		Pairs: col.pairs,
		Stats: Stats{
			Mat: matIO, Join: joinIO,
			MatCPU: matCPU, JoinCPU: joinCPU,
			Progress: col.prog,
		},
	}
}
