package core

import (
	"cij/internal/geom"
	"cij/internal/rtree"
	"cij/internal/voronoi"
)

// BatchPipeline is the per-batch machinery of NM-CIJ (Algorithms 5/6)
// packaged as a reusable unit: given one Q-leaf batch it computes the
// batch's Voronoi cells, runs the conditional filter against the R-tree of
// P, refines the candidates with on-demand exact cells (served from the
// reuse buffer of Section IV-B when possible) and emits the joining pairs.
//
// A pipeline owns sequential state — the reuse buffer and the
// filter-quality counters — and performs all I/O through the tree handles
// it was built with. It is therefore confined to one goroutine at a time.
// Serial NM-CIJ drives a single pipeline over all batches; the partitioned
// engine of internal/parallel gives every worker its own pipeline over
// private tree views (rtree.Tree.WithBuffer), which keeps the hot path
// lock-free: batches are independent except for the reuse buffer, and the
// reuse buffer is a pure cache of exact cells, so partitioning never
// changes the emitted pair set.
type BatchPipeline struct {
	rp, rq  *rtree.Tree
	domain  geom.Rect
	reuseOn bool
	// Reuse buffer B: exact P-cells computed for the previous batch.
	reuse map[int64]geom.Polygon
	stats Stats
}

// NewBatchPipeline prepares a pipeline joining batches of rq's leaves
// against rp over the given domain. reuse enables the Voronoi-cell reuse
// buffer of Section IV-B.
func NewBatchPipeline(rp, rq *rtree.Tree, domain geom.Rect, reuse bool) *BatchPipeline {
	return &BatchPipeline{
		rp:      rp,
		rq:      rq,
		domain:  domain,
		reuseOn: reuse,
		reuse:   make(map[int64]geom.Polygon),
	}
}

// ProcessBatch runs one batch (the sites of one Q-leaf) through the
// filter + refinement + join pipeline, calling emit for every result pair.
func (bp *BatchPipeline) ProcessBatch(group []voronoi.Site, emit func(Pair)) {
	qCells := toRecords(voronoi.BatchVoronoi(bp.rq, group, bp.domain))

	// Filter phase: candidates from P whose cells may reach the batch.
	candidates := batchConditionalFilter(bp.rp, qCells, bp.domain)
	bp.stats.Candidates += int64(len(candidates))

	// Refinement phase: exact cells for all candidates, reusing the
	// previous batch's computations when enabled.
	var fresh []voronoi.Site
	pCells := make([]cellRecord, 0, len(candidates))
	for _, cand := range candidates {
		if bp.reuseOn {
			if poly, ok := bp.reuse[cand.ID]; ok {
				pCells = append(pCells, cellRecord{site: cand, poly: poly, bounds: poly.Bounds()})
				continue
			}
		}
		fresh = append(fresh, cand)
	}
	if len(fresh) > 0 {
		bp.stats.PCellsComputed += int64(len(fresh))
		for _, c := range voronoi.BatchVoronoi(bp.rp, fresh, bp.domain) {
			pCells = append(pCells, cellRecord{site: c.Site, poly: c.Poly, bounds: c.Poly.Bounds()})
		}
	}
	// B is replaced by the cells of the current candidate set.
	next := make(map[int64]geom.Polygon, len(pCells))
	for i := range pCells {
		next[pCells[i].site.ID] = pCells[i].poly
	}
	bp.reuse = next

	// Join the batch.
	for i := range pCells {
		pc := &pCells[i]
		hit := false
		for j := range qCells {
			qc := &qCells[j]
			if !pc.bounds.Intersects(qc.bounds) {
				continue
			}
			if CellsJoin(pc.poly, qc.poly) {
				emit(Pair{P: pc.site.ID, Q: qc.site.ID})
				hit = true
			}
		}
		if hit {
			bp.stats.TrueHits++
		}
	}
}

// FilterStats returns the filter-quality counters accumulated so far:
// Candidates, TrueHits and PCellsComputed. I/O and CPU fields are zero —
// the driver attributes those from its own buffer snapshots and clocks.
func (bp *BatchPipeline) FilterStats() Stats { return bp.stats }
