package core

import (
	"cij/internal/geom"
	"cij/internal/obs"
	"cij/internal/rtree"
	"cij/internal/voronoi"
)

// BatchPipeline is the per-batch machinery of NM-CIJ (Algorithms 5/6)
// packaged as a reusable unit: given one Q-leaf batch it computes the
// batch's Voronoi cells, runs the conditional filter against the R-tree of
// P, refines the candidates with on-demand exact cells (served from the
// reuse buffer of Section IV-B when possible) and emits the joining pairs.
//
// A pipeline owns sequential state — the reuse buffer, the filter-quality
// counters and all per-batch scratch (Voronoi workspaces, the filter's
// best-first queue, cell-record slices, the polygon arenas) — and performs
// all I/O through the tree handles it was built with. It is therefore
// confined to one goroutine at a time. Serial NM-CIJ drives a single
// pipeline over all batches; the partitioned engine of internal/parallel
// gives every worker its own pipeline over private tree views
// (rtree.Tree.WithBuffer), which keeps the hot path lock-free: batches are
// independent except for the reuse buffer, and the reuse buffer is a pure
// cache of exact cells, so partitioning never changes the emitted pair
// set. Because the scratch is pipeline-owned, the steady-state batch loop
// allocates almost nothing (see TestProcessBatchAllocBudget): every
// per-batch buffer is reused, the reuse buffer swaps between two maps
// instead of reallocating, and cell polygons live in two arenas that
// alternate between consecutive batches.
type BatchPipeline struct {
	rp, rq  *rtree.Tree
	domain  geom.Rect
	reuseOn bool
	// Reuse buffer B: exact P-cells computed for the previous batch.
	// reuse is the live map; spare is the emptied map the next batch
	// fills, so no map is ever reallocated.
	reuse, spare map[int64]geom.Polygon
	stats        Stats

	// tr, when non-nil, receives one span per pipeline phase per batch
	// (folded by phase, so a run yields four spans: voronoi, filter,
	// refine, join). traceTag distinguishes pipelines sharing a trace —
	// the parallel engine tags each worker's pipeline.
	tr       *obs.Trace
	traceTag string

	// Per-batch scratch, reused across ProcessBatch calls.
	wsQ, wsP       voronoi.Workspace // separate: P refinement must not clobber the batch's Q cells
	fs             filterScratch
	qScratch       []voronoi.Cell
	pScratch       []voronoi.Cell
	qCells, pCells []cellRecord
	fresh          []voronoi.Site
	// Cell-polygon arenas. All P-cells of a batch (fresh and reused) are
	// copied into the current arena; the reuse map therefore only ever
	// points into that arena, and the other one — holding the previous
	// batch's cells — can be recycled one batch later.
	arenas   [2]polyArena
	curArena int
	joinClip geom.Clipper
}

// polyArena is a bump allocator for cell vertex rings: polygons placed
// into it share one backing slice that is reset (not freed) between uses.
type polyArena struct {
	buf []geom.Point
}

func (a *polyArena) reset() { a.buf = a.buf[:0] }

// place copies ring vs into the arena and returns the arena-owned copy
// (full-slice-expression capped, so later placements cannot overwrite it).
func (a *polyArena) place(vs []geom.Point) []geom.Point {
	n := len(a.buf)
	a.buf = append(a.buf, vs...)
	return a.buf[n:len(a.buf):len(a.buf)]
}

// NewBatchPipeline prepares a pipeline joining batches of rq's leaves
// against rp over the given domain. reuse enables the Voronoi-cell reuse
// buffer of Section IV-B.
func NewBatchPipeline(rp, rq *rtree.Tree, domain geom.Rect, reuse bool) *BatchPipeline {
	return &BatchPipeline{
		rp:      rp,
		rq:      rq,
		domain:  domain,
		reuseOn: reuse,
		reuse:   make(map[int64]geom.Polygon),
		spare:   make(map[int64]geom.Polygon),
	}
}

// SetTrace attaches a phase tracer to the pipeline: every subsequent
// ProcessBatch records voronoi/filter/refine/join spans (wall clock plus
// I/O and filter-counter deltas) under the given tag. A nil trace — the
// default — keeps the batch loop entirely clock- and allocation-free.
func (bp *BatchPipeline) SetTrace(tr *obs.Trace, tag string) {
	bp.tr = tr
	bp.traceTag = tag
}

// ProcessBatch runs one batch (the sites of one Q-leaf) through the
// filter + refinement + join pipeline, calling emit for every result pair.
// The group slice is not retained.
func (bp *BatchPipeline) ProcessBatch(group []voronoi.Site, emit func(Pair)) {
	traced := bp.tr.Enabled()
	var pc phasePoint
	if traced {
		pc = markPhase(bp.rp, bp.rq)
	}

	bp.qScratch = bp.wsQ.BatchVoronoi(bp.rq, group, bp.domain, bp.qScratch[:0])
	bp.qCells = appendRecords(bp.qCells[:0], bp.qScratch)
	if traced {
		pc = endPhase(bp.tr, bp.traceTag, pc, bp.rp, bp.rq, "voronoi", obs.Counters{Items: 1})
	}

	// Filter phase: candidates from P whose cells may reach the batch.
	candidates := bp.fs.run(bp.rp, bp.qCells, bp.domain)
	bp.stats.Candidates += int64(len(candidates))
	if traced {
		pc = endPhase(bp.tr, bp.traceTag, pc, bp.rp, bp.rq, "filter", obs.Counters{Candidates: int64(len(candidates))})
	}

	// Refinement phase: exact cells for all candidates, reusing the
	// previous batch's computations when enabled. Every cell — reused or
	// fresh — is placed into the current arena, whose polygons stay valid
	// through the next batch (the reuse buffer may serve them there).
	// With reuse off the cells are only read by this batch's join, so the
	// workspace-aliased polygons are used directly and the arena copy is
	// skipped.
	arena := &bp.arenas[bp.curArena]
	bp.curArena = 1 - bp.curArena
	arena.reset()
	bp.fresh = bp.fresh[:0]
	bp.pCells = bp.pCells[:0]
	for _, cand := range candidates {
		if bp.reuseOn {
			if poly, ok := bp.reuse[cand.ID]; ok {
				placed := geom.Polygon{V: arena.place(poly.V)}
				bp.pCells = append(bp.pCells, cellRecord{site: cand, poly: placed, bounds: placed.Bounds()})
				continue
			}
		}
		bp.fresh = append(bp.fresh, cand)
	}
	if len(bp.fresh) > 0 {
		bp.stats.PCellsComputed += int64(len(bp.fresh))
		bp.pScratch = bp.wsP.BatchVoronoi(bp.rp, bp.fresh, bp.domain, bp.pScratch[:0])
		for _, c := range bp.pScratch {
			poly := c.Poly
			if bp.reuseOn {
				poly = geom.Polygon{V: arena.place(c.Poly.V)}
			}
			bp.pCells = append(bp.pCells, cellRecord{site: c.Site, poly: poly, bounds: poly.Bounds()})
		}
	}
	// B is replaced by the cells of the current candidate set: the maps
	// swap roles instead of being reallocated per batch.
	if bp.reuseOn {
		next := bp.spare
		clear(next)
		for i := range bp.pCells {
			next[bp.pCells[i].site.ID] = bp.pCells[i].poly
		}
		bp.spare = bp.reuse
		bp.reuse = next
	}
	if traced {
		pc = endPhase(bp.tr, bp.traceTag, pc, bp.rp, bp.rq, "refine", obs.Counters{PCells: int64(len(bp.fresh))})
	}

	// Join the batch.
	hitsBefore := bp.stats.TrueHits
	for i := range bp.pCells {
		pc := &bp.pCells[i]
		hit := false
		for j := range bp.qCells {
			qc := &bp.qCells[j]
			if !pc.bounds.Intersects(qc.bounds) {
				continue
			}
			if CellsJoinWith(&bp.joinClip, pc.poly, qc.poly) {
				emit(Pair{P: pc.site.ID, Q: qc.site.ID})
				hit = true
			}
		}
		if hit {
			bp.stats.TrueHits++
		}
	}
	if traced {
		endPhase(bp.tr, bp.traceTag, pc, bp.rp, bp.rq, "join", obs.Counters{TrueHits: bp.stats.TrueHits - hitsBefore})
	}
}

// FilterStats returns the filter-quality counters accumulated so far:
// Candidates, TrueHits and PCellsComputed. I/O and CPU fields are zero —
// the driver attributes those from its own buffer snapshots and clocks.
func (bp *BatchPipeline) FilterStats() Stats { return bp.stats }
