package core

import (
	"math/rand"
	"testing"

	"cij/internal/rtree"
	"cij/internal/voronoi"
)

// TestProcessBatchAllocBudget guards the allocation budget of the NM-CIJ
// hot path. A warm BatchPipeline reuses all its scratch (typed best-first
// queues, clippers, arenas, swap maps), so the remaining allocations per
// batch are only the R-tree node decodes of the traversals — a small,
// bounded number. The budget below is ~4x the measured steady state;
// reintroducing a per-entry or per-clip allocation (heap boxing, closure
// capture, make-per-refinement) blows it by orders of magnitude and fails
// the suite instead of silently eroding the perf win.
func TestProcessBatchAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := randPoints(rng, 3000)
	q := randPoints(rng, 3000)
	rp, rq, _ := buildPair(t, p, q, 0)

	var batches [][]voronoi.Site
	rq.VisitLeavesHilbert(testDomain, func(leaf *rtree.Node) {
		batches = append(batches, voronoi.SitesOfLeaf(leaf))
	})
	if len(batches) < 10 {
		t.Fatalf("too few batches to measure: %d", len(batches))
	}

	pipe := NewBatchPipeline(rp, rq, testDomain, true)
	emit := func(Pair) {}
	// Warm pass: grow every scratch buffer to its high-water mark.
	for _, b := range batches {
		pipe.ProcessBatch(b, emit)
	}

	// Measured pass over the same batches on the warm pipeline.
	allocs := testing.AllocsPerRun(1, func() {
		for _, b := range batches {
			pipe.ProcessBatch(b, emit)
		}
	})
	perBatch := allocs / float64(len(batches))
	t.Logf("warm ProcessBatch: %.1f allocs/batch over %d batches", perBatch, len(batches))

	// Node decodes dominate: tree traversals read a few dozen nodes per
	// batch, each decode being two allocations (Node + entry slice).
	// Measured steady state is ~70 allocs/batch; any per-entry or per-clip
	// regression is three orders of magnitude above the budget.
	const budget = 300
	if perBatch > budget {
		t.Fatalf("warm ProcessBatch allocates %.1f objects per batch, budget %d", perBatch, budget)
	}
}
