package core

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"cij/internal/geom"
	"cij/internal/rtree"
	"cij/internal/storage"
)

func buildTrees(t testing.TB, sets [][]geom.Point) []*rtree.Tree {
	t.Helper()
	buf := storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), 1<<20)
	trees := make([]*rtree.Tree, len(sets))
	for i, pts := range sets {
		trees[i] = rtree.BulkLoadPoints(buf, pts, testDomain, 1)
	}
	return trees
}

func tupleKey(ids []int64) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(rune('A'+i)) + ":" + itoa64(id)
	}
	return strings.Join(parts, ",")
}

func itoa64(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func sortedKeys(tuples []MultiTuple) []string {
	keys := make([]string, len(tuples))
	for i, tp := range tuples {
		keys[i] = tupleKey(tp.IDs)
	}
	sort.Strings(keys)
	return keys
}

func TestMultiwayMatchesBruteForce3Way(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	sets := [][]geom.Point{
		randPoints(rng, 25),
		randPoints(rng, 20),
		randPoints(rng, 15),
	}
	want := BruteMultiwayCIJ(sets, testDomain)
	got, err := MultiwayCIJ(buildTrees(t, sets), testDomain)
	if err != nil {
		t.Fatal(err)
	}
	wk, gk := sortedKeys(want), sortedKeys(got)
	if len(wk) != len(gk) {
		t.Fatalf("3-way: got %d tuples, want %d", len(gk), len(wk))
	}
	for i := range wk {
		if wk[i] != gk[i] {
			t.Fatalf("3-way tuple mismatch at %d: got %s want %s", i, gk[i], wk[i])
		}
	}
}

func TestMultiwayTwoWayEqualsPairwiseCIJ(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	p := randPoints(rng, 80)
	q := randPoints(rng, 60)
	rp, rq, _ := buildPair(t, p, q, 1<<20)
	pairRes := NMCIJ(rp, rq, testDomain, DefaultOptions())

	tuples, err := MultiwayCIJ([]*rtree.Tree{rp, rq}, testDomain)
	if err != nil {
		t.Fatal(err)
	}
	asPairs := make([]Pair, len(tuples))
	for i, tp := range tuples {
		asPairs[i] = Pair{P: tp.IDs[0], Q: tp.IDs[1]}
	}
	if !SamePairs(asPairs, pairRes.Pairs) {
		t.Fatalf("2-way multiway (%d) != CIJ (%d)", len(asPairs), len(pairRes.Pairs))
	}
}

func TestMultiwayRegionsPartitionDomain(t *testing.T) {
	// The tuple regions of a multiway CIJ tile the domain: every location
	// belongs to exactly one (p1,…,pm) tuple (its nearest point of each
	// set), so areas sum to the domain area.
	rng := rand.New(rand.NewSource(402))
	sets := [][]geom.Point{
		randPoints(rng, 30),
		randPoints(rng, 25),
		randPoints(rng, 20),
	}
	got, err := MultiwayCIJ(buildTrees(t, sets), testDomain)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, tp := range got {
		total += tp.Region.Area()
	}
	if d := total - testDomain.Area(); d > 1e-3*testDomain.Area() || d < -1e-3*testDomain.Area() {
		t.Errorf("tuple regions sum to %v, want %v", total, testDomain.Area())
	}
	// Spot check: random locations map to the tuple of their per-set NNs.
	for trial := 0; trial < 100; trial++ {
		loc := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		wantIDs := make([]int64, len(sets))
		for s, pts := range sets {
			best, bestD := int64(-1), -1.0
			for i, p := range pts {
				if d := p.Dist2(loc); bestD < 0 || d < bestD {
					best, bestD = int64(i), d
				}
			}
			wantIDs[s] = best
		}
		found := false
		for _, tp := range got {
			if tupleKey(tp.IDs) == tupleKey(wantIDs) {
				if tp.Region.Contains(loc) {
					found = true
				}
				break
			}
		}
		if !found {
			// Tolerate boundary locations.
			continue
		}
	}
}

func TestMultiwayErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	p := randPoints(rng, 10)
	trees := buildTrees(t, [][]geom.Point{p})
	if _, err := MultiwayCIJ(trees, testDomain); err == nil {
		t.Error("m=1 should error")
	}
	empty := rtree.New(storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), 8), rtree.KindPoints)
	if _, err := MultiwayCIJ([]*rtree.Tree{trees[0], empty}, testDomain); err == nil {
		t.Error("empty input should error")
	}
	polyTree := rtree.New(storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), 8), rtree.KindPolygons)
	polyTree.InsertPolygon(0, geom.NewRect(0, 0, 1, 1).Polygon())
	if _, err := MultiwayCIJ([]*rtree.Tree{trees[0], polyTree}, testDomain); err == nil {
		t.Error("polygon tree input should error")
	}
}

func TestMultiwayFourWay(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	sets := [][]geom.Point{
		randPoints(rng, 12),
		randPoints(rng, 10),
		randPoints(rng, 8),
		randPoints(rng, 6),
	}
	want := BruteMultiwayCIJ(sets, testDomain)
	got, err := MultiwayCIJ(buildTrees(t, sets), testDomain)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("4-way: got %d tuples, want %d", len(got), len(want))
	}
}
