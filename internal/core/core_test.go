package core

import (
	"math/rand"
	"testing"

	"cij/internal/geom"
	"cij/internal/rtree"
	"cij/internal/storage"
)

var testDomain = geom.NewRect(0, 0, 10000, 10000)

// buildPair creates two point trees sharing one disk and buffer, like the
// experimental setting of the paper.
func buildPair(t testing.TB, p, q []geom.Point, bufPages int) (*rtree.Tree, *rtree.Tree, *storage.Buffer) {
	t.Helper()
	buf := storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), bufPages)
	rp := rtree.BulkLoadPoints(buf, p, testDomain, 1)
	rq := rtree.BulkLoadPoints(buf, q, testDomain, 1)
	buf.ResetStats()
	return rp, rq, buf
}

func randPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
	}
	return pts
}

func clusteredPoints(rng *rand.Rand, n, clusters int) []geom.Point {
	centers := randPoints(rng, clusters)
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[rng.Intn(clusters)]
		pts[i] = geom.Pt(
			clampDomain(c.X+rng.NormFloat64()*400),
			clampDomain(c.Y+rng.NormFloat64()*400),
		)
	}
	return pts
}

func clampDomain(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 10000 {
		return 10000
	}
	return v
}

func TestAllAlgorithmsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for _, sz := range []struct{ np, nq int }{
		{60, 60}, {150, 90}, {40, 200},
	} {
		p := randPoints(rng, sz.np)
		q := randPoints(rng, sz.nq)
		want := BruteCIJ(p, q, testDomain)

		rp, rq, _ := buildPair(t, p, q, 1<<20)
		for _, alg := range []struct {
			name string
			run  func() Result
		}{
			{"FM", func() Result { return FMCIJ(rp, rq, testDomain, DefaultOptions()) }},
			{"PM", func() Result { return PMCIJ(rp, rq, testDomain, DefaultOptions()) }},
			{"NM", func() Result { return NMCIJ(rp, rq, testDomain, DefaultOptions()) }},
		} {
			got := alg.run()
			if !SamePairs(got.Pairs, want) {
				missing := DiffPairs(want, got.Pairs)
				extra := DiffPairs(got.Pairs, want)
				t.Fatalf("%s-CIJ (%d×%d): %d pairs, want %d; missing=%v extra=%v",
					alg.name, sz.np, sz.nq, len(got.Pairs), len(want), missing, extra)
			}
		}
	}
}

func TestAlgorithmsMatchOnClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	p := clusteredPoints(rng, 180, 5)
	q := clusteredPoints(rng, 140, 4)
	want := BruteCIJ(p, q, testDomain)
	rp, rq, _ := buildPair(t, p, q, 1<<20)
	for name, res := range map[string]Result{
		"FM": FMCIJ(rp, rq, testDomain, DefaultOptions()),
		"PM": PMCIJ(rp, rq, testDomain, DefaultOptions()),
		"NM": NMCIJ(rp, rq, testDomain, DefaultOptions()),
	} {
		if !SamePairs(res.Pairs, want) {
			t.Fatalf("%s-CIJ on clustered data: %d pairs, want %d", name, len(res.Pairs), len(want))
		}
	}
}

func TestEveryPointParticipates(t *testing.T) {
	// Footnote 3 of the paper: every point of P and of Q participates in
	// at least one CIJ pair, because each p is contained in some cell of
	// Vor(Q) and vice versa.
	rng := rand.New(rand.NewSource(202))
	p := randPoints(rng, 120)
	q := randPoints(rng, 80)
	rp, rq, _ := buildPair(t, p, q, 1<<20)
	res := NMCIJ(rp, rq, testDomain, DefaultOptions())
	seenP := make(map[int64]bool)
	seenQ := make(map[int64]bool)
	for _, pr := range res.Pairs {
		seenP[pr.P] = true
		seenQ[pr.Q] = true
	}
	if len(seenP) != len(p) {
		t.Errorf("only %d of %d P-points participate", len(seenP), len(p))
	}
	if len(seenQ) != len(q) {
		t.Errorf("only %d of %d Q-points participate", len(seenQ), len(q))
	}
}

func TestCIJSymmetry(t *testing.T) {
	// CIJ(P,Q) must equal the transpose of CIJ(Q,P).
	rng := rand.New(rand.NewSource(203))
	p := randPoints(rng, 100)
	q := randPoints(rng, 130)
	rp, rq, _ := buildPair(t, p, q, 1<<20)
	ab := NMCIJ(rp, rq, testDomain, DefaultOptions())
	ba := NMCIJ(rq, rp, testDomain, DefaultOptions())
	transposed := make([]Pair, len(ba.Pairs))
	for i, pr := range ba.Pairs {
		transposed[i] = Pair{P: pr.Q, Q: pr.P}
	}
	if !SamePairs(ab.Pairs, transposed) {
		t.Fatalf("CIJ(P,Q) [%d pairs] != CIJ(Q,P)ᵀ [%d pairs]", len(ab.Pairs), len(transposed))
	}
}

func TestDistantPairExample(t *testing.T) {
	// Figure 1b: a CIJ pair can be a distant pair of points. p0 sits in
	// front of a cluster {p1, p2} so its cell stretches right across the
	// domain; symmetrically q0's cell stretches left; the two cells meet
	// in the middle although p0 and q0 are far apart.
	p := []geom.Point{geom.Pt(2000, 5000), geom.Pt(1000, 4000), geom.Pt(1000, 6000)}
	q := []geom.Point{geom.Pt(8000, 5000), geom.Pt(9000, 4000), geom.Pt(9000, 6000)}
	want := BruteCIJ(p, q, testDomain)
	rp, rq, _ := buildPair(t, p, q, 1<<20)
	got := NMCIJ(rp, rq, testDomain, DefaultOptions())
	if !SamePairs(got.Pairs, want) {
		t.Fatalf("corner case: got %v want %v", got.Pairs, want)
	}
	// The distant pair (p0, q0) must be present even though p0 and q0 are
	// the two farthest points of the instance.
	found := false
	for _, pr := range got.Pairs {
		if pr.P == 0 && pr.Q == 0 {
			found = true
		}
	}
	if !found {
		t.Error("distant pair (p0,q0) missing: CIJ is not distance-bounded")
	}
}

func TestNMProgressiveOutput(t *testing.T) {
	// Fig. 9b: NM-CIJ must produce pairs long before its total I/O is
	// spent; FM-CIJ produces nothing until materialization is done.
	rng := rand.New(rand.NewSource(204))
	p := randPoints(rng, 800)
	q := randPoints(rng, 800)
	rp, rq, buf := buildPair(t, p, q, 64)

	nm := NMCIJ(rp, rq, testDomain, DefaultOptions())
	if len(nm.Stats.Progress) < 4 {
		t.Fatalf("NM progress curve too sparse: %d samples", len(nm.Stats.Progress))
	}
	mid := nm.Stats.Progress[len(nm.Stats.Progress)/2]
	if mid.Pairs == 0 {
		t.Error("NM-CIJ should have produced pairs by half of its batches")
	}

	buf.DropAll()
	buf.ResetStats()
	fm := FMCIJ(rp, rq, testDomain, DefaultOptions())
	first := fm.Stats.Progress[0]
	if first.Pairs != 0 {
		t.Error("FM-CIJ should be blocking: no pairs before materialization completes")
	}
	if first.PageAccesses == 0 {
		t.Error("FM-CIJ materialization should cost I/O before the first pair")
	}
}

func TestNMFalseHitRatioLow(t *testing.T) {
	// Fig. 10: the filter's false hit ratio stays below ~0.1 on uniform
	// data. Allow slack for the small test size.
	rng := rand.New(rand.NewSource(205))
	p := randPoints(rng, 1500)
	q := randPoints(rng, 1500)
	rp, rq, _ := buildPair(t, p, q, 1<<20)
	res := NMCIJ(rp, rq, testDomain, DefaultOptions())
	if res.Stats.TrueHits == 0 {
		t.Fatal("no true hits recorded")
	}
	if fhr := res.Stats.FalseHitRatio(); fhr > 0.6 {
		t.Errorf("false hit ratio %v unexpectedly high", fhr)
	}
}

func TestReuseReducesCellComputations(t *testing.T) {
	// Fig. 11: REUSE cuts redundant exact-cell computations vs NO-REUSE,
	// and both are at least |P| (every point's cell is needed at least
	// once somewhere).
	rng := rand.New(rand.NewSource(206))
	p := randPoints(rng, 1200)
	q := randPoints(rng, 1200)
	rp, rq, buf := buildPair(t, p, q, 128)

	withReuse := NMCIJ(rp, rq, testDomain, DefaultOptions())
	buf.DropAll()
	buf.ResetStats()
	opts := DefaultOptions()
	opts.Reuse = false
	withoutReuse := NMCIJ(rp, rq, testDomain, opts)

	if !SamePairs(withReuse.Pairs, withoutReuse.Pairs) {
		t.Fatal("reuse changed the result set")
	}
	if withReuse.Stats.PCellsComputed >= withoutReuse.Stats.PCellsComputed {
		t.Errorf("reuse did not reduce cell computations: %d vs %d",
			withReuse.Stats.PCellsComputed, withoutReuse.Stats.PCellsComputed)
	}
}

func TestNMCheaperIOThanPMCheaperThanFM(t *testing.T) {
	// The paper's central cost ordering (Fig. 7/8, Table III):
	// NM-CIJ < PM-CIJ < FM-CIJ in page accesses, under a small LRU buffer.
	rng := rand.New(rand.NewSource(207))
	p := randPoints(rng, 2000)
	q := randPoints(rng, 2000)

	run := func(alg func(*rtree.Tree, *rtree.Tree, geom.Rect, Options) Result) int64 {
		rp, rq, buf := buildPair(t, p, q, 8) // tiny buffer: 8 pages
		_ = buf
		res := alg(rp, rq, testDomain, Options{Reuse: true})
		return res.Stats.PageAccesses()
	}
	fm := run(FMCIJ)
	pm := run(PMCIJ)
	nm := run(NMCIJ)
	if !(nm < pm && pm < fm) {
		t.Errorf("expected NM < PM < FM in I/O, got NM=%d PM=%d FM=%d", nm, pm, fm)
	}
}

func TestFMStatsPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(208))
	p := randPoints(rng, 500)
	q := randPoints(rng, 500)
	rp, rq, _ := buildPair(t, p, q, 64)
	res := FMCIJ(rp, rq, testDomain, DefaultOptions())
	if res.Stats.Mat.PageWrites == 0 {
		t.Error("FM-CIJ must write materialized trees")
	}
	if res.Stats.Join.PageAccesses() == 0 {
		t.Error("FM-CIJ join phase must read")
	}
	// NM has no materialization I/O at all.
	nm := NMCIJ(rp, rq, testDomain, DefaultOptions())
	if nm.Stats.Mat.PageAccesses() != 0 {
		t.Error("NM-CIJ must not materialize")
	}
	if nm.Stats.Join.PageWrites != 0 {
		t.Error("NM-CIJ must not write pages")
	}
}

func TestOnPairStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(209))
	p := randPoints(rng, 200)
	q := randPoints(rng, 200)
	rp, rq, _ := buildPair(t, p, q, 1<<20)
	var streamed []Pair
	opts := Options{Reuse: true, CollectPairs: true, OnPair: func(pr Pair) { streamed = append(streamed, pr) }}
	res := NMCIJ(rp, rq, testDomain, opts)
	if !SamePairs(streamed, res.Pairs) {
		t.Fatal("OnPair stream diverges from collected pairs")
	}
	// CollectPairs=false keeps Pairs empty but still streams.
	streamed = nil
	opts.CollectPairs = false
	res = NMCIJ(rp, rq, testDomain, opts)
	if len(res.Pairs) != 0 {
		t.Error("CollectPairs=false should not populate Pairs")
	}
	if len(streamed) == 0 {
		t.Error("OnPair should still stream")
	}
}

func TestSmallAndDegenerateInputs(t *testing.T) {
	// 1×1 input: the two whole-domain cells intersect — exactly one pair.
	p := []geom.Point{geom.Pt(2000, 2000)}
	q := []geom.Point{geom.Pt(8000, 8000)}
	rp, rq, _ := buildPair(t, p, q, 1<<20)
	for name, res := range map[string]Result{
		"FM": FMCIJ(rp, rq, testDomain, DefaultOptions()),
		"PM": PMCIJ(rp, rq, testDomain, DefaultOptions()),
		"NM": NMCIJ(rp, rq, testDomain, DefaultOptions()),
	} {
		if len(res.Pairs) != 1 || res.Pairs[0] != (Pair{0, 0}) {
			t.Errorf("%s on 1×1: %v", name, res.Pairs)
		}
	}
}

func TestCollinearDatasets(t *testing.T) {
	// Degenerate geometry: both datasets collinear on the same line.
	var p, q []geom.Point
	for i := 0; i < 12; i++ {
		p = append(p, geom.Pt(float64(i)*800+200, 5000))
		q = append(q, geom.Pt(float64(i)*800+600, 5000))
	}
	want := BruteCIJ(p, q, testDomain)
	rp, rq, _ := buildPair(t, p, q, 1<<20)
	got := NMCIJ(rp, rq, testDomain, DefaultOptions())
	if !SamePairs(got.Pairs, want) {
		t.Fatalf("collinear: got %d pairs, want %d", len(got.Pairs), len(want))
	}
	// Each slab cell overlaps its neighbors' slabs: interior points join 2
	// cells of the other set.
	if len(want) == 0 {
		t.Fatal("expected nonempty join")
	}
}

func TestFigure1aExample(t *testing.T) {
	// Qualitative reproduction of Fig. 1a: 4 P-points and 4 Q-points,
	// every point participates, and the join is not the cross product.
	rng := rand.New(rand.NewSource(210))
	p := randPoints(rng, 4)
	q := randPoints(rng, 4)
	want := BruteCIJ(p, q, testDomain)
	rp, rq, _ := buildPair(t, p, q, 1<<20)
	got := NMCIJ(rp, rq, testDomain, DefaultOptions())
	if !SamePairs(got.Pairs, want) {
		t.Fatalf("got %v want %v", got.Pairs, want)
	}
	if len(want) == 16 {
		t.Skip("degenerate draw: full cross product")
	}
}
