package core

import (
	"fmt"

	"cij/internal/geom"
	"cij/internal/rtree"
	"cij/internal/voronoi"
)

// MultiTuple is one result of a multiway common influence join: one point
// id per input set, plus the (non-degenerate) common influence region
// shared by all their Voronoi cells.
type MultiTuple struct {
	IDs    []int64
	Region geom.Polygon
}

// MultiwayCIJ generalizes the common influence join to m ≥ 2 pointsets —
// the extension sketched in the paper's conclusions ("we plan to
// generalize CIJ computation for multiple pointsets and develop multiway
// CIJ algorithms"). It returns every tuple (p₁, …, pₘ), pᵢ ∈ Pᵢ, such that
// the intersection of all their Voronoi cells V(pᵢ, Pᵢ) has positive
// area.
//
// Evaluation cascades the NM-CIJ machinery: the diagram of the first set
// is enumerated batch-by-batch (non-blocking, like Algorithm 6); each
// partial tuple carries its running intersection region, and each further
// set is probed with a conditional filter on that region, with exact
// cells computed on demand and cached per set. The tuple count is bounded
// by the number of faces in the overlay of the m diagrams (expected
// O(Σ|Pᵢ|) for well-distributed data), so intermediate results stay
// output-sized.
func MultiwayCIJ(trees []*rtree.Tree, domain geom.Rect) ([]MultiTuple, error) {
	if len(trees) < 2 {
		return nil, fmt.Errorf("core: multiway CIJ needs at least 2 pointsets, got %d", len(trees))
	}
	for i, t := range trees {
		if t.Kind() != rtree.KindPoints {
			return nil, fmt.Errorf("core: input %d is not a point tree", i)
		}
		if t.Size() == 0 {
			return nil, fmt.Errorf("core: input %d is empty", i)
		}
	}

	// Per-set cache of exact Voronoi cells, filled on demand.
	caches := make([]map[int64]geom.Polygon, len(trees))
	for i := range caches {
		caches[i] = make(map[int64]geom.Polygon)
	}
	cellOf := func(set int, s voronoi.Site) geom.Polygon {
		if poly, ok := caches[set][s.ID]; ok {
			return poly
		}
		poly := voronoi.BFVor(trees[set], s, domain)
		caches[set][s.ID] = poly
		return poly
	}

	var out []MultiTuple
	// Enumerate the first diagram in spatial batches.
	trees[0].VisitLeavesHilbert(domain, func(leaf *rtree.Node) {
		group := voronoi.SitesOfLeaf(leaf)
		for _, c := range voronoi.BatchVoronoi(trees[0], group, domain) {
			caches[0][c.Site.ID] = c.Poly
			tuples := extend(trees, caches, cellOf, domain,
				MultiTuple{IDs: []int64{c.Site.ID}, Region: c.Poly}, 1)
			out = append(out, tuples...)
		}
	})
	return out, nil
}

// extend grows a partial tuple by joining its running region against set
// `next`, recursing until all sets are consumed.
func extend(trees []*rtree.Tree, caches []map[int64]geom.Polygon,
	cellOf func(int, voronoi.Site) geom.Polygon, domain geom.Rect,
	partial MultiTuple, next int) []MultiTuple {

	if partial.Region.IsEmpty() {
		return nil
	}
	if next == len(trees) {
		return []MultiTuple{partial}
	}
	record := cellRecord{poly: partial.Region, bounds: partial.Region.Bounds()}
	candidates := batchConditionalFilter(trees[next], []cellRecord{record}, domain)

	var out []MultiTuple
	for _, cand := range candidates {
		cell := cellOf(next, cand)
		if !cell.Bounds().Intersects(record.bounds) {
			continue
		}
		region := partial.Region.Intersection(cell)
		if region.Area() <= joinAreaEps {
			continue
		}
		ids := make([]int64, len(partial.IDs)+1)
		copy(ids, partial.IDs)
		ids[len(partial.IDs)] = cand.ID
		out = append(out, extend(trees, caches, cellOf, domain,
			MultiTuple{IDs: ids, Region: region}, next+1)...)
	}
	return out
}

// BruteMultiwayCIJ evaluates the multiway join by definition (all
// diagrams brute-forced, all tuple combinations intersected) — the test
// oracle. Exponential in m; keep inputs tiny.
func BruteMultiwayCIJ(sets [][]geom.Point, domain geom.Rect) []MultiTuple {
	diagrams := make([][]voronoi.Cell, len(sets))
	for i, pts := range sets {
		diagrams[i] = voronoi.BruteDiagram(voronoi.MakeSites(pts), domain)
	}
	var out []MultiTuple
	var rec func(ids []int64, region geom.Polygon, next int)
	rec = func(ids []int64, region geom.Polygon, next int) {
		if region.IsEmpty() {
			return
		}
		if next == len(sets) {
			out = append(out, MultiTuple{IDs: append([]int64(nil), ids...), Region: region})
			return
		}
		for _, c := range diagrams[next] {
			r := region.Intersection(c.Poly)
			if r.Area() <= joinAreaEps {
				continue
			}
			rec(append(ids, c.Site.ID), r, next+1)
		}
	}
	rec(nil, domain.Polygon(), 0)
	return out
}
