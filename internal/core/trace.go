package core

import (
	"time"

	"cij/internal/obs"
	"cij/internal/rtree"
	"cij/internal/storage"
)

// IOCounters converts a storage.Stats delta into the span-counter
// vocabulary of internal/obs. It lives here (not in obs) so obs stays
// dependency-free and importable from storage itself.
func IOCounters(d storage.Stats) obs.Counters {
	return obs.Counters{
		LogicalReads: d.LogicalReads,
		PagesRead:    d.PageReads,
		PagesWritten: d.PageWrites,
		DecodeHits:   d.DecodeHits,
		DecodeMisses: d.DecodeMisses,
	}
}

// combinedIO snapshots the total I/O counters visible through two trees,
// counting a shared buffer once (the paper's single-disk setting shares
// one buffer between rp and rq; the service's per-dataset views do not).
func combinedIO(rp, rq *rtree.Tree) storage.Stats {
	s := rp.Buffer().Stats()
	if rq.Buffer() != rp.Buffer() {
		s = s.Add(rq.Buffer().Stats())
	}
	return s
}

// phasePoint marks a phase boundary: the I/O counters and the clock at
// that instant. Phase spans are deltas between consecutive points, so the
// points chain and every interval of a traced run is attributed to
// exactly one span — the per-phase deltas sum to the run's aggregate.
type phasePoint struct {
	io storage.Stats
	t  time.Time
}

// markPhase snapshots a phase boundary. Only called when tracing is
// enabled; the nil-trace hot path never reads the clock.
func markPhase(rp, rq *rtree.Tree) phasePoint {
	return phasePoint{io: combinedIO(rp, rq), t: time.Now()}
}

// endPhase closes the phase started at pc: it records one span holding
// the wall-clock and I/O deltas since pc plus the caller's extra
// counters, and returns the new boundary for the next phase.
func endPhase(tr *obs.Trace, tag string, pc phasePoint, rp, rq *rtree.Tree, phase string, extra obs.Counters) phasePoint {
	now := markPhase(rp, rq)
	tr.Add(phase, tag, now.t.Sub(pc.t), IOCounters(now.io.Sub(pc.io)).Add(extra))
	return now
}
