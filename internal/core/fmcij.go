package core

import (
	"time"

	"cij/internal/geom"
	"cij/internal/rtree"
	"cij/internal/voronoi"
)

// FMCIJ evaluates the common influence join with the Full Materialization
// algorithm (Algorithm 3): compute Vor(P) and Vor(Q) with batch Voronoi
// computation, bulk-load each into a packed polygon R-tree (R'P, R'Q),
// then run the Synchronous Traversal intersection join between the two
// Voronoi R-trees. The method is blocking — no pair is produced until both
// diagrams are materialized — and pays the construction and storage of two
// extra trees, which is exactly the MAT bar of Fig. 7.
//
// rp and rq must share the same storage buffer (their I/O is accounted
// together, as in the paper's single-disk setting).
func FMCIJ(rp, rq *rtree.Tree, domain geom.Rect, opts Options) Result {
	buf := rp.Buffer()
	col := newCollector(opts, buf)

	// --- MAT phase: build R'P and R'Q ---
	matStart := buf.Stats()
	cpuStart := time.Now()

	packP := rtree.NewPolygonPacker(buf)
	voronoi.ComputeDiagramBatch(rp, domain, func(c voronoi.Cell) {
		packP.Add(c.Site.ID, c.Poly)
	})
	vorP := packP.Finish()

	packQ := rtree.NewPolygonPacker(buf)
	voronoi.ComputeDiagramBatch(rq, domain, func(c voronoi.Cell) {
		packQ.Add(c.Site.ID, c.Poly)
	})
	vorQ := packQ.Finish()

	matIO := buf.Stats().Sub(matStart)
	matCPU := time.Since(cpuStart)
	col.sample() // blocking: zero pairs until here (Fig. 9b)
	opts.Trace.Add("mat", "", matCPU, IOCounters(matIO))

	// --- JOIN phase: ST intersection join over the Voronoi R-trees ---
	joinStart := buf.Stats()
	cpuStart = time.Now()
	emitted := 0
	var joinClip geom.Clipper
	rtree.STJoin(vorP, vorQ, func(ep, eq rtree.Entry) {
		// MBR filter already passed; refine on the exact cells.
		if CellsJoinWith(&joinClip, ep.Poly, eq.Poly) {
			col.emit(Pair{P: ep.ID, Q: eq.ID})
			emitted++
			if emitted%4096 == 0 {
				col.sample()
			}
		}
	})
	joinIO := buf.Stats().Sub(joinStart)
	joinCPU := time.Since(cpuStart)
	col.sample()
	opts.Trace.Add("join", "", joinCPU, IOCounters(joinIO))

	return Result{
		Pairs: col.pairs,
		Stats: Stats{
			Mat: matIO, Join: joinIO,
			MatCPU: matCPU, JoinCPU: joinCPU,
			Progress: col.prog,
		},
	}
}
