package core

import (
	"math/rand"
	"testing"

	"cij/internal/geom"
)

// Second-round tests: determinism, seed sweeps, skewed and degenerate
// inputs, options interplay.

func TestAlgorithmsAgreeAcrossSeeds(t *testing.T) {
	// Table-driven seed sweep: the three algorithms must agree on every
	// instance (brute force only on the smaller ones, to keep runtime
	// sane).
	for _, seed := range []int64{1, 7, 42, 1234, 99999} {
		rng := rand.New(rand.NewSource(seed))
		p := randPoints(rng, 400)
		q := randPoints(rng, 300)
		rp, rq, _ := buildPair(t, p, q, 1<<20)
		fm := FMCIJ(rp, rq, testDomain, DefaultOptions())
		pm := PMCIJ(rp, rq, testDomain, DefaultOptions())
		nm := NMCIJ(rp, rq, testDomain, DefaultOptions())
		if !SamePairs(fm.Pairs, pm.Pairs) || !SamePairs(pm.Pairs, nm.Pairs) {
			t.Fatalf("seed %d: algorithms disagree (FM %d, PM %d, NM %d pairs)",
				seed, len(fm.Pairs), len(pm.Pairs), len(nm.Pairs))
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	p := randPoints(rng, 300)
	q := randPoints(rng, 300)
	rp, rq, buf := buildPair(t, p, q, 128)
	a := NMCIJ(rp, rq, testDomain, DefaultOptions())
	buf.DropAll()
	buf.ResetStats()
	b := NMCIJ(rp, rq, testDomain, DefaultOptions())
	if !SamePairs(a.Pairs, b.Pairs) {
		t.Fatal("NM-CIJ is not deterministic")
	}
	if a.Stats.Candidates != b.Stats.Candidates || a.Stats.PCellsComputed != b.Stats.PCellsComputed {
		t.Fatal("NM-CIJ statistics are not deterministic")
	}
}

func TestHighlySkewedInputs(t *testing.T) {
	// One tight cluster joined with a uniform set: the cluster's cells
	// are tiny, the far cells huge — exercises very asymmetric windows.
	rng := rand.New(rand.NewSource(501))
	var p []geom.Point
	for i := 0; i < 150; i++ {
		p = append(p, geom.Pt(5000+rng.NormFloat64()*50, 5000+rng.NormFloat64()*50))
	}
	q := randPoints(rng, 150)
	want := BruteCIJ(p, q, testDomain)
	rp, rq, _ := buildPair(t, p, q, 1<<20)
	for name, got := range map[string][]Pair{
		"FM": FMCIJ(rp, rq, testDomain, DefaultOptions()).Pairs,
		"PM": PMCIJ(rp, rq, testDomain, DefaultOptions()).Pairs,
		"NM": NMCIJ(rp, rq, testDomain, DefaultOptions()).Pairs,
	} {
		if !SamePairs(got, want) {
			t.Fatalf("%s on skewed data: %d pairs, want %d", name, len(got), len(want))
		}
	}
}

func TestGridOnGrid(t *testing.T) {
	// Degenerate: both inputs are regular grids offset by half a step —
	// maximal cocircularity in both diagrams.
	var p, q []geom.Point
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			p = append(p, geom.Pt(float64(x)*1200+500, float64(y)*1200+500))
			q = append(q, geom.Pt(float64(x)*1200+1100, float64(y)*1200+1100))
		}
	}
	want := BruteCIJ(p, q, testDomain)
	rp, rq, _ := buildPair(t, p, q, 1<<20)
	got := NMCIJ(rp, rq, testDomain, DefaultOptions())
	if !SamePairs(got.Pairs, want) {
		t.Fatalf("grid-on-grid: %d pairs, want %d", len(got.Pairs), len(want))
	}
}

func TestIdenticalDatasets(t *testing.T) {
	// P == Q: each point joins itself (identical cells) plus its Voronoi
	// neighbors.
	rng := rand.New(rand.NewSource(502))
	p := randPoints(rng, 200)
	rp, rq, _ := buildPair(t, p, p, 1<<20)
	res := NMCIJ(rp, rq, testDomain, DefaultOptions())
	selfPairs := 0
	for _, pr := range res.Pairs {
		if pr.P == pr.Q {
			selfPairs++
		}
	}
	if selfPairs != len(p) {
		t.Errorf("expected every point to join itself: %d of %d", selfPairs, len(p))
	}
	want := BruteCIJ(p, p, testDomain)
	if !SamePairs(res.Pairs, want) {
		t.Fatalf("identical datasets: %d pairs, want %d", len(res.Pairs), len(want))
	}
}

func TestDuplicatePointsAcrossSets(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	p := randPoints(rng, 80)
	// Q contains duplicates of P points plus extras.
	q := append(append([]geom.Point{}, p[:40]...), randPoints(rng, 40)...)
	want := BruteCIJ(p, q, testDomain)
	rp, rq, _ := buildPair(t, p, q, 1<<20)
	got := NMCIJ(rp, rq, testDomain, DefaultOptions())
	if !SamePairs(got.Pairs, want) {
		t.Fatalf("duplicates across sets: %d pairs, want %d", len(got.Pairs), len(want))
	}
}

func TestPlainVisitOrderSameResult(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	p := randPoints(rng, 400)
	q := randPoints(rng, 400)
	rp, rq, buf := buildPair(t, p, q, 64)
	hil := NMCIJ(rp, rq, testDomain, DefaultOptions())
	buf.DropAll()
	buf.ResetStats()
	opts := DefaultOptions()
	opts.PlainVisitOrder = true
	plain := NMCIJ(rp, rq, testDomain, opts)
	if !SamePairs(hil.Pairs, plain.Pairs) {
		t.Fatal("visit order changed the result set")
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	p := randPoints(rng, 300)
	q := randPoints(rng, 300)
	rp, rq, _ := buildPair(t, p, q, 1<<20)
	res := NMCIJ(rp, rq, testDomain, DefaultOptions())
	s := res.Stats
	if s.Candidates < s.TrueHits {
		t.Errorf("candidates (%d) below true hits (%d)", s.Candidates, s.TrueHits)
	}
	if s.FalseHitRatio() < 0 {
		t.Errorf("negative FHR")
	}
	if s.PCellsComputed < int64(len(p)) {
		t.Errorf("computed %d P-cells, below |P|=%d", s.PCellsComputed, len(p))
	}
	if s.CPU() <= 0 {
		t.Errorf("no CPU time recorded")
	}
	// Progress is monotone in both coordinates.
	for i := 1; i < len(s.Progress); i++ {
		if s.Progress[i].PageAccesses < s.Progress[i-1].PageAccesses ||
			s.Progress[i].Pairs < s.Progress[i-1].Pairs {
			t.Fatalf("progress not monotone at %d: %+v -> %+v", i, s.Progress[i-1], s.Progress[i])
		}
	}
}

func TestCellsJoinPredicate(t *testing.T) {
	a := geom.NewRect(0, 0, 10, 10).Polygon()
	b := geom.NewRect(5, 5, 15, 15).Polygon()
	if !CellsJoin(a, b) {
		t.Error("overlapping squares must join")
	}
	c := geom.NewRect(10, 0, 20, 10).Polygon() // shares only an edge
	if CellsJoin(a, c) {
		t.Error("edge-touching squares have zero-area intersection: no join")
	}
	d := geom.NewRect(30, 30, 40, 40).Polygon()
	if CellsJoin(a, d) {
		t.Error("disjoint squares must not join")
	}
	if CellsJoin(a, geom.Polygon{}) || CellsJoin(geom.Polygon{}, a) {
		t.Error("empty cell joins nothing")
	}
}

func TestPairHelpers(t *testing.T) {
	a := []Pair{{2, 1}, {1, 2}, {1, 1}}
	b := []Pair{{1, 1}, {1, 2}, {2, 1}}
	if !SamePairs(a, b) {
		t.Error("SamePairs should be order-insensitive")
	}
	if SamePairs(a, b[:2]) {
		t.Error("different lengths are not the same")
	}
	diff := DiffPairs([]Pair{{1, 1}, {3, 3}}, b)
	if len(diff) != 1 || diff[0] != (Pair{3, 3}) {
		t.Errorf("DiffPairs = %v", diff)
	}
	SortPairs(a)
	if a[0] != (Pair{1, 1}) || a[2] != (Pair{2, 1}) {
		t.Errorf("SortPairs order: %v", a)
	}
}
