package core

import (
	"math/rand"
	"testing"

	"cij/internal/obs"
	"cij/internal/storage"
)

// ioTotals projects a Stats aggregate onto the obs.Counters I/O fields,
// the common vocabulary the invariance assertions compare in.
func ioTotals(s storage.Stats) obs.Counters { return IOCounters(s) }

// assertTraceMatchesIO pins the accounting invariance the observability
// layer promises: the per-phase I/O deltas of a traced run sum exactly to
// the run's aggregate Stats.
func assertTraceMatchesIO(t *testing.T, name string, tr *obs.Trace, agg storage.Stats) {
	t.Helper()
	total := tr.Total()
	want := ioTotals(agg)
	if total.LogicalReads != want.LogicalReads ||
		total.PagesRead != want.PagesRead ||
		total.PagesWritten != want.PagesWritten ||
		total.DecodeHits != want.DecodeHits ||
		total.DecodeMisses != want.DecodeMisses {
		t.Fatalf("%s: trace totals %+v do not reconcile with aggregate %+v", name, total, want)
	}
}

// TestTraceSumsToAggregateStats runs every serial algorithm twice over the
// paper's shared-buffer setting — once untraced, once traced — and checks
// that (a) tracing changes no result and no I/O counter, and (b) the trace
// spans sum to the aggregate Stats, I/O field for I/O field.
func TestTraceSumsToAggregateStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randPoints(rng, 1500)
	q := randPoints(rng, 1500)

	type algo struct {
		name string
		run  func(opts Options) Result
	}
	// A fresh environment per run: the shared buffer's counters and cache
	// state must start identical for the traced/untraced comparison.
	algos := []algo{
		{"nm", func(opts Options) Result {
			rp, rq, _ := buildPair(t, p, q, 32)
			return NMCIJ(rp, rq, testDomain, opts)
		}},
		{"pm", func(opts Options) Result {
			rp, rq, _ := buildPair(t, p, q, 32)
			return PMCIJ(rp, rq, testDomain, opts)
		}},
		{"fm", func(opts Options) Result {
			rp, rq, _ := buildPair(t, p, q, 32)
			return FMCIJ(rp, rq, testDomain, opts)
		}},
	}

	for _, a := range algos {
		plain := a.run(DefaultOptions())

		opts := DefaultOptions()
		opts.Trace = obs.NewTrace()
		traced := a.run(opts)

		if len(traced.Pairs) != len(plain.Pairs) {
			t.Fatalf("%s: tracing changed the result: %d pairs vs %d", a.name, len(traced.Pairs), len(plain.Pairs))
		}
		for i := range plain.Pairs {
			if plain.Pairs[i] != traced.Pairs[i] {
				t.Fatalf("%s: tracing perturbed pair %d: %v vs %v", a.name, i, plain.Pairs[i], traced.Pairs[i])
			}
		}
		pAgg := plain.Stats.Mat.Add(plain.Stats.Join)
		tAgg := traced.Stats.Mat.Add(traced.Stats.Join)
		if pAgg != tAgg {
			t.Fatalf("%s: tracing perturbed I/O accounting: %+v vs %+v", a.name, tAgg, pAgg)
		}

		assertTraceMatchesIO(t, a.name, opts.Trace, tAgg)
		total := opts.Trace.Total()
		if total.Candidates != traced.Stats.Candidates {
			t.Fatalf("%s: trace candidates %d != stats %d", a.name, total.Candidates, traced.Stats.Candidates)
		}
		if total.TrueHits != traced.Stats.TrueHits {
			t.Fatalf("%s: trace true hits %d != stats %d", a.name, total.TrueHits, traced.Stats.TrueHits)
		}
		if total.PCells != traced.Stats.PCellsComputed {
			t.Fatalf("%s: trace p-cells %d != stats %d", a.name, total.PCells, traced.Stats.PCellsComputed)
		}
		if len(opts.Trace.Spans()) == 0 {
			t.Fatalf("%s: traced run recorded no spans", a.name)
		}
	}
}

// TestTraceNMPhases pins the span set of a traced serial NM-CIJ run: the
// four pipeline phases plus the driver's traversal spans, each with
// plausible per-phase content.
func TestTraceNMPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randPoints(rng, 1200)
	q := randPoints(rng, 1200)
	rp, rq, _ := buildPair(t, p, q, 16)

	opts := DefaultOptions()
	opts.Trace = obs.NewTrace()
	res := NMCIJ(rp, rq, testDomain, opts)
	if len(res.Pairs) == 0 {
		t.Fatal("no pairs")
	}

	byPhase := map[string]obs.Span{}
	for _, sp := range opts.Trace.Spans() {
		byPhase[sp.Phase] = sp
	}
	for _, phase := range []string{"traverse", "voronoi", "filter", "refine", "join"} {
		if _, ok := byPhase[phase]; !ok {
			t.Fatalf("missing phase %q; got %v", phase, byPhase)
		}
	}
	// Batch count rides the voronoi spans; traversal sees one item per leaf.
	if byPhase["voronoi"].Items == 0 || byPhase["voronoi"].Items != byPhase["traverse"].Items {
		t.Fatalf("batch/leaf counts disagree: voronoi %d, traverse %d",
			byPhase["voronoi"].Items, byPhase["traverse"].Items)
	}
	if byPhase["filter"].Candidates != res.Stats.Candidates {
		t.Fatalf("filter span candidates %d != stats %d", byPhase["filter"].Candidates, res.Stats.Candidates)
	}
	if byPhase["refine"].PCells != res.Stats.PCellsComputed {
		t.Fatalf("refine span p-cells %d != stats %d", byPhase["refine"].PCells, res.Stats.PCellsComputed)
	}
	if byPhase["join"].TrueHits != res.Stats.TrueHits {
		t.Fatalf("join span hits %d != stats %d", byPhase["join"].TrueHits, res.Stats.TrueHits)
	}
}
