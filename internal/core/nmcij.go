package core

import (
	"math"
	"time"

	"cij/internal/geom"
	"cij/internal/obs"
	"cij/internal/pq"
	"cij/internal/rtree"
	"cij/internal/storage"
	"cij/internal/voronoi"
)

// NMCIJ evaluates the common influence join with the No Materialization
// algorithm (Algorithm 6), the paper's best method. The tree of Q is
// traversed leaf by leaf in Hilbert order; for each leaf:
//
//  1. the Voronoi cells of its points are computed in batch (Algorithm 2);
//  2. a conditional filter (Algorithm 5) traverses the ORIGINAL tree of P
//     and collects the candidate set CP of points whose cells may
//     intersect any cell of the batch, pruning subtrees with the Φ(L,p)
//     geometric test (Lemma 3);
//  3. the exact cells of the candidates are computed on demand — reusing
//     cells cached from the previous batch (Section IV-B) — and tested
//     against the batch's cells.
//
// Nothing is materialized, no Voronoi R-tree is built, and pairs stream
// out from the very first batch: the algorithm is non-blocking (Fig. 9b)
// and its I/O converges to the lower bound of one traversal per tree
// (Fig. 8).
func NMCIJ(rp, rq *rtree.Tree, domain geom.Rect, opts Options) Result {
	buf := rp.Buffer()
	col := newCollector(opts, buf)
	cpuStart := time.Now()

	pipeline := NewBatchPipeline(rp, rq, domain, opts.Reuse)
	tr := opts.Trace
	pipeline.SetTrace(tr, "")
	visit := func(fn func(*rtree.Node)) { rq.VisitLeavesHilbert(domain, fn) }
	if opts.PlainVisitOrder {
		visit = rq.VisitLeaves
	}
	// Traverse spans cover the gaps between batches — the leaf traversal's
	// own page reads happen between ProcessBatch calls, so chaining a
	// boundary point across the callback keeps every page of the run
	// attributed to exactly one span.
	var tp phasePoint
	if tr.Enabled() {
		tp = markPhase(rp, rq)
	}
	var sites []voronoi.Site // reused across leaves; ProcessBatch does not retain it
	visit(func(leaf *rtree.Node) {
		if tr.Enabled() {
			tp = endPhase(tr, "", tp, rp, rq, "traverse", obs.Counters{Items: 1})
		}
		sites = voronoi.AppendSites(sites[:0], leaf)
		pipeline.ProcessBatch(sites, col.emit)
		col.sample()
		if tr.Enabled() {
			tp = markPhase(rp, rq)
		}
	})
	if tr.Enabled() {
		endPhase(tr, "", tp, rp, rq, "traverse", obs.Counters{})
	}

	stats := pipeline.FilterStats()
	stats.Join = buf.Stats().Sub(col.base)
	stats.JoinCPU = time.Since(cpuStart)
	stats.Progress = col.prog
	return Result{Pairs: col.pairs, Stats: stats}
}

// batchConditionalFilter implements Algorithm 5 generalized to a group of
// convex polygons (the "Batch conditional filter" of Section IV-A) with
// throwaway scratch. Sequential hot loops should call filterScratch.run
// on a reused scratch instead; recursive callers (the multiway join) need
// this form, because an outer run's candidate slice must survive while
// inner filters execute.
func batchConditionalFilter(rp *rtree.Tree, group []cellRecord, domain geom.Rect) []voronoi.Site {
	var fs filterScratch
	return fs.run(rp, group, domain)
}

// run traverses the R-tree of P best-first from the group's centroid and
// returns the candidate points whose Voronoi cells may intersect any
// polygon of the group. The returned slice is the scratch's candidate
// buffer, valid until the next run on the same scratch.
func (fs *filterScratch) run(rp *rtree.Tree, group []cellRecord, domain geom.Rect) []voronoi.Site {
	fs.cp = fs.cp[:0]
	fs.cpx = fs.cpx[:0]
	fs.cpy = fs.cpy[:0]
	if len(group) == 0 || rp.Root() == storage.InvalidPage {
		return fs.cp
	}
	// Anchor: centroid of the group's cell centroids; window: the MBR of
	// the whole group (used for cheap early tests).
	fs.cents = fs.cents[:0]
	window := geom.EmptyRect()
	for i := range group {
		fs.cents = append(fs.cents, group[i].poly.Centroid())
		window = window.Union(group[i].bounds)
	}
	anchor := geom.Centroid(fs.cents)
	fs.winCorners = window.Corners()

	fs.pruneHint = -1
	for i := range fs.killers {
		fs.killers[i] = -1
	}

	q := &fs.q
	q.Reset()
	q.PushNode(rp.ReadNode(rp.Root()), anchor)
	for q.Len() > 0 {
		e := q.Pop()
		if e.Leaf {
			p := voronoi.Site{ID: e.Ref, Pt: e.Pt()}
			if fs.approxCellIntersectsGroup(p, fs.cp, group, window, domain) {
				fs.cp = append(fs.cp, p)
				fs.cpx = append(fs.cpx, p.Pt.X)
				fs.cpy = append(fs.cpy, p.Pt.Y)
			}
			continue
		}
		if fs.canPruneSubtree(e.MBR, fs.cp, group, window) {
			continue
		}
		q.PushNode(rp.ReadNode(e.Child()), anchor)
	}
	return fs.cp
}

// filterScratch holds the reusable state of the conditional filter: the
// best-first queue, the candidate set and the buffers of the per-point
// approximate-cell test, the innermost loop of the filter.
type filterScratch struct {
	q          pq.Queue
	cp         []voronoi.Site
	cents      []geom.Point
	winCorners [4]geom.Point
	clip       geom.Clipper
	ord        []float64 // squared distance of each candidate to the probe
	cpx, cpy   []float64 // candidate coordinates, parallel to cp (scan locality)

	// pruneHint is the index into cp of the candidate that most recently
	// certified a subtree prune. Consecutive queue pops are spatially
	// adjacent, so the same candidate tends to keep pruning; trying it
	// first turns the existential scan of canPruneSubtree into a
	// single-candidate test most of the time. Reset per run (cp indexes
	// are only stable within one run).
	pruneHint int
	// killers are the indexes into cp of the candidates whose bisectors
	// most recently rejected probe points, most recent first; see the
	// separating-bisector fast path of approxCellIntersectsGroup. Reset
	// per run. A small ring instead of one slot: probes near a window
	// corner alternate between a few separators.
	killers [8]int
}

// pushKiller records idx as the most recent separating candidate, moving
// it to the front if already present so the ring holds distinct
// candidates (duplicates would silently shrink its effective size).
func (fs *filterScratch) pushKiller(idx int) {
	pos := len(fs.killers) - 1
	for k, v := range fs.killers {
		if v == idx {
			pos = k
			break
		}
	}
	copy(fs.killers[1:pos+1], fs.killers[:pos])
	fs.killers[0] = idx
}

// candDist is one slot of the nearest-candidate selection.
type candDist struct {
	d   float64
	idx int
}

// killerMargin is the geometric separation (in domain units) the
// separating-bisector fast path demands between the group window and a
// candidate's bisector halfplane before rejecting a probe point without
// building its cell. It sits three orders of magnitude above geom.Eps
// (the clipping and SAT tolerance), so the short-cut verdict can never
// disagree with the clip-and-test verdict it replaces, and eight orders
// below the domain width, so it fires for essentially every genuinely
// separated probe.
const killerMargin = 1e-4

// approxCellIntersectsGroup computes the approximate Voronoi cell
// V(p, CP) — the cell of p with respect to the current candidate set only,
// a superset of the true V(p, P) — and reports whether it intersects any
// polygon of the group. Candidates are applied nearest-first so the cell
// shrinks quickly, with a periodic early exit as soon as it leaves the
// group window.
//
// Fast path: the cell of p is contained in the bisector halfplane of
// (p, c) for EVERY candidate c, so if one candidate's bisector strictly
// separates p from the whole group window, the cell cannot reach any
// group polygon and the answer is false before any clipping. The
// candidate that last rejected a probe this way (fs.killer) is tried
// first — consecutive probes are spatially adjacent, so one "killer"
// candidate typically rejects long runs of them.
func (fs *filterScratch) approxCellIntersectsGroup(p voronoi.Site, cp []voronoi.Site, group []cellRecord, window geom.Rect, domain geom.Rect) bool {
	for k := 0; k < len(fs.killers); k++ {
		idx := fs.killers[k]
		if idx < 0 || idx >= len(cp) {
			continue
		}
		if fs.bisectorSeparatesWindow(p.Pt, cp[idx].Pt) {
			if k != 0 {
				copy(fs.killers[1:k+1], fs.killers[:k])
				fs.killers[0] = idx
			}
			return false
		}
	}
	cell := fs.clip.Seed(domain)
	if len(cp) > 0 {
		// One pass over the candidate set: cache every squared distance
		// (the tail scan below needs them) and keep the nearestK closest
		// candidates in a small insertion-sorted array. The nearest
		// candidates do all the shrinking; once the cell is tight the
		// remaining clips are no-ops, so their order is irrelevant.
		const nearestK = 12
		if cap(fs.ord) < len(cp) {
			fs.ord = make([]float64, len(cp))
		}
		fs.ord = fs.ord[:len(cp)]
		var sel [nearestK]candDist
		nsel := 0
		px, py := p.Pt.X, p.Pt.Y
		cpx, cpy := fs.cpx[:len(cp)], fs.cpy[:len(cp)]
		for i := range cpx {
			dx, dy := cpx[i]-px, cpy[i]-py
			d := dx*dx + dy*dy
			fs.ord[i] = d
			if nsel < nearestK {
				j := nsel
				for j > 0 && sel[j-1].d > d {
					sel[j] = sel[j-1]
					j--
				}
				sel[j] = candDist{d: d, idx: i}
				nsel++
			} else if d < sel[nearestK-1].d {
				j := nearestK - 1
				for j > 0 && sel[j-1].d > d {
					sel[j] = sel[j-1]
					j--
				}
				sel[j] = candDist{d: d, idx: i}
			}
		}
		// rad2 is the squared circumradius of the current cell around p: a
		// candidate at distance ≥ 2·radius cannot cut the cell (triangle
		// inequality on Lemma 1), so after the nearest candidates have
		// tightened the cell, the — mostly distant — rest of the set is
		// dismissed with one comparison each.
		// Before clipping, give the nearest candidates a chance to reject p
		// outright: each bisector is a proven upper bound on the cell, so a
		// separating one ends the test in O(1). Whichever candidate fires
		// becomes the killer hint for the following probes.
		for s := 0; s < nsel && s < 4; s++ {
			if idx := sel[s].idx; fs.bisectorSeparatesWindow(p.Pt, cp[idx].Pt) {
				fs.pushKiller(idx)
				return false
			}
		}
		rad2 := geom.MaxDist2(cell.V, p.Pt)
		clips := 0
		for s := 0; s < nsel; s++ {
			idx := sel[s].idx
			fs.ord[idx] = math.Inf(1) // consumed; the tail scan skips it
			if sel[s].d >= 4*rad2 {
				continue
			}
			c := cp[idx]
			if c.Pt.Eq(p.Pt) {
				continue
			}
			// CanRefinePoint is the clip's own vertex prescan without the
			// bisector construction: candidates that cannot cut skip the
			// halfplane and its sqrt entirely. A within-tolerance pass
			// re-emits the identical ring, so everything downstream stays
			// bit-equal.
			if !voronoi.CanRefinePoint(cell.V, p.Pt, c.Pt, rad2) {
				continue
			}
			cell = fs.clip.Clip(cell, geom.Bisector(p.Pt, c.Pt))
			if cell.IsEmpty() {
				fs.pushKiller(idx)
				return false
			}
			rad2 = geom.MaxDist2(cell.V, p.Pt)
			clips++
			if clips%4 == 0 && !cell.Bounds().Intersects(window) {
				fs.pushKiller(idx)
				return false
			}
		}
		for i, d := range fs.ord {
			if d >= 4*rad2 {
				continue
			}
			c := cp[i]
			if c.Pt.Eq(p.Pt) {
				continue
			}
			if !voronoi.CanRefinePoint(cell.V, p.Pt, c.Pt, rad2) {
				continue
			}
			cell = fs.clip.Clip(cell, geom.Bisector(p.Pt, c.Pt))
			if cell.IsEmpty() {
				fs.pushKiller(i)
				return false
			}
			rad2 = geom.MaxDist2(cell.V, p.Pt)
			clips++
			if clips%4 == 0 && !cell.Bounds().Intersects(window) {
				fs.pushKiller(i)
				return false
			}
		}
	}
	cellBounds := cell.Bounds()
	if !cellBounds.Intersects(window) {
		return false
	}
	for i := range group {
		if cellBounds.Intersects(group[i].bounds) && cell.IntersectsSAT(group[i].poly) {
			return true
		}
	}
	return false
}

// bisectorSeparatesWindow reports whether the bisector halfplane of
// (p, c) — which contains every cell of p no matter what else clips it —
// leaves the whole group window at least killerMargin away on c's side.
// When it does, no cell of p can touch any group polygon (they all lie in
// the window), so the probe is rejected without any clipping. The margin
// keeps the verdict strictly inside what the clip-and-SAT path would also
// reject: the clipped cell respects the halfplane within geom.Eps, three
// orders of magnitude tighter than the demanded separation.
func (fs *filterScratch) bisectorSeparatesWindow(p, c geom.Point) bool {
	if c.Eq(p) {
		return false
	}
	// Inlined Bisector without the normal-length sqrt: the margin compare
	// Side > killerMargin·max(1,|N|) is evaluated on squares instead.
	nx, ny := 2*(c.X-p.X), 2*(c.Y-p.Y)
	cc := c.X*c.X + c.Y*c.Y - p.X*p.X - p.Y*p.Y
	n2 := nx*nx + ny*ny
	m2 := killerMargin * killerMargin
	if n2 > 1 {
		m2 *= n2
	}
	for _, w := range fs.winCorners {
		// side > 0 means w is closer to c than to p; the window is convex,
		// so corner sidedness bounds every window point.
		side := nx*w.X + ny*w.Y - cc
		if side <= 0 || side*side <= m2 {
			return false
		}
	}
	return true
}

// canPruneSubtree applies the geometric pruning of Section IV-A: a
// non-leaf entry with MBR r can be pruned iff no polygon of the group
// intersects r and there is a candidate p such that every group polygon T
// falls inside Φ(L, p) for every side L of r — then the Voronoi cell of
// any point inside r cannot reach any T (Lemma 3).
func (fs *filterScratch) canPruneSubtree(r geom.Rect, cp []voronoi.Site, group []cellRecord, window geom.Rect) bool {
	if len(cp) == 0 {
		return false
	}
	// An entry intersecting some group polygon may contain points inside
	// it — those join for sure; never prune. Every group polygon lies in
	// the window, so an entry clear of the window skips the per-polygon
	// scan.
	if r.Intersects(window) {
		for i := range group {
			if group[i].bounds.Intersects(r) && group[i].poly.IntersectsRect(r) {
				return false
			}
		}
	}
	sides := r.Sides()
	// Fast path: test the group's bounding window (4 vertices) instead of
	// every polygon. W ⊇ every T, so W ⊆ Φ(L,p) implies T ⊆ Φ(L,p).
	//
	// W ⊆ Φ(L,p) for all four sides L unrolls to: for every window corner
	// t and every side L, dist²(p,t) ≤ dist²(L,t) + Eps (Segment.InPhi
	// over the window's vertices). The right-hand sides depend only on the
	// entry, so their per-corner minima are computed once and the whole
	// existential test collapses, per candidate, to four squared-distance
	// comparisons — algebraically identical to running Segment.PolygonInPhi
	// on every side, at a tenth of the arithmetic. The candidate that
	// pruned the previous entry goes first: consecutive pops are spatial
	// neighbors, so one candidate tends to prune runs of them.
	var minSide2 [4]float64
	for c, t := range fs.winCorners {
		m := sides[0].Dist2Point(t)
		for l := 1; l < 4; l++ {
			if d := sides[l].Dist2Point(t); d < m {
				m = d
			}
		}
		minSide2[c] = m + geom.Eps
	}
	windowInPhi := func(p geom.Point) bool {
		return p.Dist2(fs.winCorners[0]) <= minSide2[0] &&
			p.Dist2(fs.winCorners[1]) <= minSide2[1] &&
			p.Dist2(fs.winCorners[2]) <= minSide2[2] &&
			p.Dist2(fs.winCorners[3]) <= minSide2[3]
	}
	if h := fs.pruneHint; h >= 0 && h < len(cp) && windowInPhi(cp[h].Pt) {
		return true
	}
	for i := range cp {
		if i == fs.pruneHint {
			continue
		}
		if windowInPhi(cp[i].Pt) {
			fs.pruneHint = i
			return true
		}
	}
	// Exact path: per-polygon test, early-failing on the first vertex
	// outside Φ. Before paying the segment tests, each candidate runs a
	// sampled-vertex screen: Φ-containment of every group polygon demands
	// in particular dist²(p,v) ≤ min_L dist²(L,v)+Eps for each sampled
	// vertex v, so the screen (a necessary condition with the identical
	// tolerance) can only skip candidates the full test would reject.
	const screenSamples = 8
	var sv [screenSamples]geom.Point
	var sm [screenSamples]float64
	ns := 0
	for k := 0; k < screenSamples && k*len(group)/screenSamples < len(group); k++ {
		g := &group[k*len(group)/screenSamples]
		if len(g.poly.V) == 0 {
			continue
		}
		v := g.poly.V[0]
		m := sides[0].Dist2Point(v)
		for l := 1; l < 4; l++ {
			if d := sides[l].Dist2Point(v); d < m {
				m = d
			}
		}
		sv[ns], sm[ns] = v, m+geom.Eps
		ns++
	}
	for _, p := range cp {
		screened := false
		for k := 0; k < ns; k++ {
			if p.Pt.Dist2(sv[k]) > sm[k] {
				screened = true
				break
			}
		}
		if screened {
			continue
		}
		ok := true
		for _, l := range sides {
			for i := range group {
				if !l.PolygonInPhi(p.Pt, group[i].poly) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
