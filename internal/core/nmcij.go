package core

import (
	"math"
	"time"

	"cij/internal/geom"
	"cij/internal/pq"
	"cij/internal/rtree"
	"cij/internal/storage"
	"cij/internal/voronoi"
)

// NMCIJ evaluates the common influence join with the No Materialization
// algorithm (Algorithm 6), the paper's best method. The tree of Q is
// traversed leaf by leaf in Hilbert order; for each leaf:
//
//  1. the Voronoi cells of its points are computed in batch (Algorithm 2);
//  2. a conditional filter (Algorithm 5) traverses the ORIGINAL tree of P
//     and collects the candidate set CP of points whose cells may
//     intersect any cell of the batch, pruning subtrees with the Φ(L,p)
//     geometric test (Lemma 3);
//  3. the exact cells of the candidates are computed on demand — reusing
//     cells cached from the previous batch (Section IV-B) — and tested
//     against the batch's cells.
//
// Nothing is materialized, no Voronoi R-tree is built, and pairs stream
// out from the very first batch: the algorithm is non-blocking (Fig. 9b)
// and its I/O converges to the lower bound of one traversal per tree
// (Fig. 8).
func NMCIJ(rp, rq *rtree.Tree, domain geom.Rect, opts Options) Result {
	buf := rp.Buffer()
	col := newCollector(opts, buf)
	cpuStart := time.Now()

	pipeline := NewBatchPipeline(rp, rq, domain, opts.Reuse)
	visit := func(fn func(*rtree.Node)) { rq.VisitLeavesHilbert(domain, fn) }
	if opts.PlainVisitOrder {
		visit = rq.VisitLeaves
	}
	var sites []voronoi.Site // reused across leaves; ProcessBatch does not retain it
	visit(func(leaf *rtree.Node) {
		sites = voronoi.AppendSites(sites[:0], leaf)
		pipeline.ProcessBatch(sites, col.emit)
		col.sample()
	})

	stats := pipeline.FilterStats()
	stats.Join = buf.Stats().Sub(col.base)
	stats.JoinCPU = time.Since(cpuStart)
	stats.Progress = col.prog
	return Result{Pairs: col.pairs, Stats: stats}
}

// batchConditionalFilter implements Algorithm 5 generalized to a group of
// convex polygons (the "Batch conditional filter" of Section IV-A) with
// throwaway scratch. Sequential hot loops should call filterScratch.run
// on a reused scratch instead; recursive callers (the multiway join) need
// this form, because an outer run's candidate slice must survive while
// inner filters execute.
func batchConditionalFilter(rp *rtree.Tree, group []cellRecord, domain geom.Rect) []voronoi.Site {
	var fs filterScratch
	return fs.run(rp, group, domain)
}

// run traverses the R-tree of P best-first from the group's centroid and
// returns the candidate points whose Voronoi cells may intersect any
// polygon of the group. The returned slice is the scratch's candidate
// buffer, valid until the next run on the same scratch.
func (fs *filterScratch) run(rp *rtree.Tree, group []cellRecord, domain geom.Rect) []voronoi.Site {
	fs.cp = fs.cp[:0]
	if len(group) == 0 || rp.Root() == storage.InvalidPage {
		return fs.cp
	}
	// Anchor: centroid of the group's cell centroids; window: the MBR of
	// the whole group (used for cheap early tests).
	fs.cents = fs.cents[:0]
	window := geom.EmptyRect()
	for i := range group {
		fs.cents = append(fs.cents, group[i].poly.Centroid())
		window = window.Union(group[i].bounds)
	}
	anchor := geom.Centroid(fs.cents)
	fs.winCorners = window.Corners()
	windowPoly := geom.Polygon{V: fs.winCorners[:]}

	q := &fs.q
	q.Reset()
	q.PushNode(rp.ReadNode(rp.Root()), anchor)
	for q.Len() > 0 {
		e := q.Pop()
		if e.Leaf {
			p := voronoi.Site{ID: e.ID, Pt: e.Pt}
			if fs.approxCellIntersectsGroup(p, fs.cp, group, window, domain) {
				fs.cp = append(fs.cp, p)
			}
			continue
		}
		if canPruneSubtree(e.MBR, fs.cp, group, windowPoly) {
			continue
		}
		q.PushNode(rp.ReadNode(e.Child), anchor)
	}
	return fs.cp
}

// filterScratch holds the reusable state of the conditional filter: the
// best-first queue, the candidate set and the buffers of the per-point
// approximate-cell test, the innermost loop of the filter.
type filterScratch struct {
	q          pq.Queue
	cp         []voronoi.Site
	cents      []geom.Point
	winCorners [4]geom.Point
	clip       geom.Clipper
	ord        []float64 // squared distance of each candidate to the probe
}

// candDist is one slot of the nearest-candidate selection.
type candDist struct {
	d   float64
	idx int
}

// approxCellIntersectsGroup computes the approximate Voronoi cell
// V(p, CP) — the cell of p with respect to the current candidate set only,
// a superset of the true V(p, P) — and reports whether it intersects any
// polygon of the group. Candidates are applied nearest-first so the cell
// shrinks quickly, with a periodic early exit as soon as it leaves the
// group window.
func (fs *filterScratch) approxCellIntersectsGroup(p voronoi.Site, cp []voronoi.Site, group []cellRecord, window geom.Rect, domain geom.Rect) bool {
	cell := fs.clip.Seed(domain)
	if len(cp) > 0 {
		// One pass over the candidate set: cache every squared distance
		// (the tail scan below needs them) and keep the nearestK closest
		// candidates in a small insertion-sorted array. The nearest
		// candidates do all the shrinking; once the cell is tight the
		// remaining clips are no-ops, so their order is irrelevant.
		const nearestK = 12
		fs.ord = fs.ord[:0]
		var sel [nearestK]candDist
		nsel := 0
		for i := range cp {
			d := cp[i].Pt.Dist2(p.Pt)
			fs.ord = append(fs.ord, d)
			if nsel < nearestK {
				j := nsel
				for j > 0 && sel[j-1].d > d {
					sel[j] = sel[j-1]
					j--
				}
				sel[j] = candDist{d: d, idx: i}
				nsel++
			} else if d < sel[nearestK-1].d {
				j := nearestK - 1
				for j > 0 && sel[j-1].d > d {
					sel[j] = sel[j-1]
					j--
				}
				sel[j] = candDist{d: d, idx: i}
			}
		}
		// rad2 is the squared circumradius of the current cell around p: a
		// candidate at distance ≥ 2·radius cannot cut the cell (triangle
		// inequality on Lemma 1), so after the nearest candidates have
		// tightened the cell, the — mostly distant — rest of the set is
		// dismissed with one comparison each.
		rad2 := geom.MaxDist2(cell.V, p.Pt)
		clips := 0
		for s := 0; s < nsel; s++ {
			idx := sel[s].idx
			fs.ord[idx] = math.Inf(1) // consumed; the tail scan skips it
			if sel[s].d >= 4*rad2 {
				continue
			}
			c := cp[idx]
			if c.Pt.Eq(p.Pt) {
				continue
			}
			cell = fs.clip.Clip(cell, geom.Bisector(p.Pt, c.Pt))
			if cell.IsEmpty() {
				return false
			}
			rad2 = geom.MaxDist2(cell.V, p.Pt)
			clips++
			if clips%4 == 0 && !cell.Bounds().Intersects(window) {
				return false
			}
		}
		for i, d := range fs.ord {
			if d >= 4*rad2 {
				continue
			}
			c := cp[i]
			if c.Pt.Eq(p.Pt) {
				continue
			}
			cell = fs.clip.Clip(cell, geom.Bisector(p.Pt, c.Pt))
			if cell.IsEmpty() {
				return false
			}
			rad2 = geom.MaxDist2(cell.V, p.Pt)
			clips++
			if clips%4 == 0 && !cell.Bounds().Intersects(window) {
				return false
			}
		}
	}
	cellBounds := cell.Bounds()
	if !cellBounds.Intersects(window) {
		return false
	}
	for i := range group {
		if cellBounds.Intersects(group[i].bounds) && cell.IntersectsSAT(group[i].poly) {
			return true
		}
	}
	return false
}

// canPruneSubtree applies the geometric pruning of Section IV-A: a
// non-leaf entry with MBR r can be pruned iff no polygon of the group
// intersects r and there is a candidate p such that every group polygon T
// falls inside Φ(L, p) for every side L of r — then the Voronoi cell of
// any point inside r cannot reach any T (Lemma 3).
func canPruneSubtree(r geom.Rect, cp []voronoi.Site, group []cellRecord, windowPoly geom.Polygon) bool {
	if len(cp) == 0 {
		return false
	}
	// An entry intersecting some group polygon may contain points inside
	// it — those join for sure; never prune.
	for i := range group {
		if group[i].bounds.Intersects(r) && group[i].poly.IntersectsRect(r) {
			return false
		}
	}
	sides := r.Sides()
	// Fast path: test the group's bounding window (4 vertices) instead of
	// every polygon. W ⊇ every T, so W ⊆ Φ(L,p) implies T ⊆ Φ(L,p).
	for _, p := range cp {
		ok := true
		for _, l := range sides {
			if !l.PolygonInPhi(p.Pt, windowPoly) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	// Exact path: per-polygon test, early-failing on the first vertex
	// outside Φ.
	for _, p := range cp {
		ok := true
		for _, l := range sides {
			for i := range group {
				if !l.PolygonInPhi(p.Pt, group[i].poly) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
