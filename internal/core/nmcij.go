package core

import (
	"container/heap"
	"time"

	"cij/internal/geom"
	"cij/internal/rtree"
	"cij/internal/storage"
	"cij/internal/voronoi"
)

// NMCIJ evaluates the common influence join with the No Materialization
// algorithm (Algorithm 6), the paper's best method. The tree of Q is
// traversed leaf by leaf in Hilbert order; for each leaf:
//
//  1. the Voronoi cells of its points are computed in batch (Algorithm 2);
//  2. a conditional filter (Algorithm 5) traverses the ORIGINAL tree of P
//     and collects the candidate set CP of points whose cells may
//     intersect any cell of the batch, pruning subtrees with the Φ(L,p)
//     geometric test (Lemma 3);
//  3. the exact cells of the candidates are computed on demand — reusing
//     cells cached from the previous batch (Section IV-B) — and tested
//     against the batch's cells.
//
// Nothing is materialized, no Voronoi R-tree is built, and pairs stream
// out from the very first batch: the algorithm is non-blocking (Fig. 9b)
// and its I/O converges to the lower bound of one traversal per tree
// (Fig. 8).
func NMCIJ(rp, rq *rtree.Tree, domain geom.Rect, opts Options) Result {
	buf := rp.Buffer()
	col := newCollector(opts, buf)
	cpuStart := time.Now()

	pipeline := NewBatchPipeline(rp, rq, domain, opts.Reuse)
	visit := func(fn func(*rtree.Node)) { rq.VisitLeavesHilbert(domain, fn) }
	if opts.PlainVisitOrder {
		visit = rq.VisitLeaves
	}
	visit(func(leaf *rtree.Node) {
		pipeline.ProcessBatch(voronoi.SitesOfLeaf(leaf), col.emit)
		col.sample()
	})

	stats := pipeline.FilterStats()
	stats.Join = buf.Stats().Sub(col.base)
	stats.JoinCPU = time.Since(cpuStart)
	stats.Progress = col.prog
	return Result{Pairs: col.pairs, Stats: stats}
}

// batchConditionalFilter implements Algorithm 5 generalized to a group of
// convex polygons (the "Batch conditional filter" of Section IV-A): it
// traverses the R-tree of P best-first from the group's centroid and
// returns the candidate points whose Voronoi cells may intersect any
// polygon of the group.
func batchConditionalFilter(rp *rtree.Tree, group []cellRecord, domain geom.Rect) []voronoi.Site {
	if len(group) == 0 || rp.Root() == storage.InvalidPage {
		return nil
	}
	// Anchor: centroid of the group's cell centroids; window: the MBR of
	// the whole group (used for cheap early tests).
	cents := make([]geom.Point, len(group))
	window := geom.EmptyRect()
	for i := range group {
		cents[i] = group[i].poly.Centroid()
		window = window.Union(group[i].bounds)
	}
	anchor := geom.Centroid(cents)
	windowPoly := window.Polygon()

	var cp []voronoi.Site
	var scratch filterScratch

	h := &filterHeap{}
	pushFilterEntries(h, rp.ReadNode(rp.Root()), anchor)
	for h.Len() > 0 {
		top := heap.Pop(h).(filterItem)
		e := top.entry
		if top.leaf {
			p := voronoi.Site{ID: e.ID, Pt: e.Pt}
			if scratch.approxCellIntersectsGroup(p, cp, group, window, domain) {
				cp = append(cp, p)
			}
			continue
		}
		if canPruneSubtree(e.MBR, cp, group, windowPoly) {
			continue
		}
		pushFilterEntries(h, rp.ReadNode(e.Child), anchor)
	}
	return cp
}

// filterScratch holds reusable buffers for the per-point approximate-cell
// test, the innermost loop of the conditional filter.
type filterScratch struct {
	clip geom.Clipper
	ord  []candDist
}

type candDist struct {
	d   float64
	idx int
}

// approxCellIntersectsGroup computes the approximate Voronoi cell
// V(p, CP) — the cell of p with respect to the current candidate set only,
// a superset of the true V(p, P) — and reports whether it intersects any
// polygon of the group. Candidates are applied nearest-first so the cell
// shrinks quickly, with a periodic early exit as soon as it leaves the
// group window.
func (fs *filterScratch) approxCellIntersectsGroup(p voronoi.Site, cp []voronoi.Site, group []cellRecord, window geom.Rect, domain geom.Rect) bool {
	cell := domain.Polygon()
	if len(cp) > 0 {
		fs.ord = fs.ord[:0]
		for i := range cp {
			fs.ord = append(fs.ord, candDist{d: cp[i].Pt.Dist2(p.Pt), idx: i})
		}
		// Partial selection instead of a full sort: the nearest candidates
		// do all the shrinking; once the cell is tight the remaining clips
		// are no-ops, so their order is irrelevant.
		const nearestK = 12
		limit := nearestK
		if limit > len(fs.ord) {
			limit = len(fs.ord)
		}
		for sel := 0; sel < limit; sel++ {
			m := sel
			for j := sel + 1; j < len(fs.ord); j++ {
				if fs.ord[j].d < fs.ord[m].d {
					m = j
				}
			}
			fs.ord[sel], fs.ord[m] = fs.ord[m], fs.ord[sel]
		}
		for k := range fs.ord {
			c := cp[fs.ord[k].idx]
			if c.Pt.Eq(p.Pt) {
				continue
			}
			cell = fs.clip.Clip(cell, geom.Bisector(p.Pt, c.Pt))
			if cell.IsEmpty() {
				return false
			}
			if (k+1)%4 == 0 && !cell.Bounds().Intersects(window) {
				return false
			}
		}
	}
	if !cell.Bounds().Intersects(window) {
		return false
	}
	for i := range group {
		if cell.Intersects(group[i].poly) {
			return true
		}
	}
	return false
}

// canPruneSubtree applies the geometric pruning of Section IV-A: a
// non-leaf entry with MBR r can be pruned iff no polygon of the group
// intersects r and there is a candidate p such that every group polygon T
// falls inside Φ(L, p) for every side L of r — then the Voronoi cell of
// any point inside r cannot reach any T (Lemma 3).
func canPruneSubtree(r geom.Rect, cp []voronoi.Site, group []cellRecord, windowPoly geom.Polygon) bool {
	if len(cp) == 0 {
		return false
	}
	// An entry intersecting some group polygon may contain points inside
	// it — those join for sure; never prune.
	for i := range group {
		if group[i].bounds.Intersects(r) && group[i].poly.IntersectsRect(r) {
			return false
		}
	}
	sides := r.Sides()
	// Fast path: test the group's bounding window (4 vertices) instead of
	// every polygon. W ⊇ every T, so W ⊆ Φ(L,p) implies T ⊆ Φ(L,p).
	for _, p := range cp {
		ok := true
		for _, l := range sides {
			if !l.PolygonInPhi(p.Pt, windowPoly) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	// Exact path: per-polygon test, early-failing on the first vertex
	// outside Φ.
	for _, p := range cp {
		ok := true
		for _, l := range sides {
			for i := range group {
				if !l.PolygonInPhi(p.Pt, group[i].poly) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// filterItem / filterHeap: best-first queue for the conditional filter.
type filterItem struct {
	key   float64
	entry rtree.Entry
	leaf  bool
}

type filterHeap []filterItem

func (h filterHeap) Len() int            { return len(h) }
func (h filterHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h filterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *filterHeap) Push(x interface{}) { *h = append(*h, x.(filterItem)) }
func (h *filterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func pushFilterEntries(h *filterHeap, n *rtree.Node, anchor geom.Point) {
	for i := range n.Entries {
		e := n.Entries[i]
		heap.Push(h, filterItem{key: e.MBR.MinDist2(anchor), entry: e, leaf: n.Leaf})
	}
}
