// Package core implements the Common Influence Join, the primary
// contribution of Yiu, Mamoulis & Karras (ICDE 2008): given pointsets P
// and Q indexed by R-trees, compute all pairs (p, q) whose Voronoi cells
// V(p,P) and V(q,Q) intersect — i.e. some location is simultaneously in
// the influence region of p within P and of q within Q.
//
// Three evaluation algorithms are provided, in increasing sophistication:
//
//   - FMCIJ (Algorithm 3): materialize both Voronoi diagrams into packed
//     R-trees and intersection-join them (blocking, highest I/O).
//   - PMCIJ (Algorithm 4): materialize only Vor(P); probe batches of
//     Q-cells against it like a block index nested loops join.
//   - NMCIJ (Algorithm 6): materialize nothing; for each batch of Q-cells
//     run a conditional filter directly on the R-tree of P (Algorithm 5)
//     and refine candidates with on-demand cell computations. Non-blocking
//     and nearly I/O-optimal (the paper's headline result).
//
// All three return identical pair sets; they differ in cost profile.
//
// The per-batch machinery of NM-CIJ (conditional filter, on-demand
// refinement with the reuse buffer, join) is factored into BatchPipeline
// so that execution strategy and algorithm are independent: NMCIJ drives
// one pipeline over all batches in Hilbert order, while the partitioned
// engine of internal/parallel gives every worker its own pipeline over
// private tree views and merges the streams. Prefer that engine when
// wall-clock latency matters and multiple cores are available; the serial
// driver remains the reference for the paper's single-buffer I/O
// experiments and for deterministic emission order.
package core

import (
	"time"

	"cij/internal/geom"
	"cij/internal/obs"
	"cij/internal/storage"
	"cij/internal/voronoi"
)

// Pair is one CIJ result: indexes into the P and Q datasets.
type Pair struct {
	P, Q int64
}

// joinAreaEps is the minimum intersection area for two Voronoi cells to
// count as a CIJ pair. A strictly positive threshold makes the predicate
// deterministic across algorithms that compute the same cell through
// different clipping orders; real common-influence regions on the paper's
// [0,10000]² domain are many orders of magnitude larger.
const joinAreaEps = 1e-6

// CellsJoin is the CIJ join predicate: the two influence regions share a
// location (with joinAreaEps tolerance). Exported so that examples and the
// brute-force oracle use the byte-for-byte same rule as the algorithms.
func CellsJoin(a, b geom.Polygon) bool {
	if !a.Bounds().Intersects(b.Bounds()) {
		return false
	}
	var cl geom.Clipper
	return CellsJoinWith(&cl, a, b)
}

// CellsJoinWith is CellsJoin with caller-provided clipping scratch, for
// hot join loops that evaluate the predicate millions of times: the
// intersection is computed through cl's reusable buffers (geom.Clipper),
// so the call allocates nothing once the buffers have grown. It applies
// the same halfplane sequence as Polygon.Intersection, so the verdict is
// bit-identical to CellsJoin. Callers are expected to have pre-filtered on
// MBR overlap (the bounds test is skipped here); a and b must not alias
// cl's buffers.
func CellsJoinWith(cl *geom.Clipper, a, b geom.Polygon) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return false
	}
	return cl.Intersect(a, b).Area() > joinAreaEps
}

// ProgressPoint is one sample of the progressive-output curve of Fig. 9b:
// how many result pairs had been emitted after a given number of physical
// page accesses.
type ProgressPoint struct {
	PageAccesses int64
	Pairs        int64
}

// Stats describes the cost profile of one CIJ run, split into the
// materialization (MAT) and join (JOIN) phases of Fig. 7.
type Stats struct {
	Mat  storage.Stats // I/O of building Voronoi R-trees (zero for NM-CIJ)
	Join storage.Stats // I/O of the join phase

	MatCPU  time.Duration
	JoinCPU time.Duration

	// Filter-quality counters of NM-CIJ (zero elsewhere).
	Candidates int64 // Σ sᵢ  — candidate points across all batches
	TrueHits   int64 // Σ s′ᵢ — candidates that join ≥1 cell of their batch
	// PCellsComputed counts exact Voronoi cell computations for points of
	// P (Fig. 11); with the reuse buffer enabled, repeats are avoided.
	PCellsComputed int64

	Progress []ProgressPoint
}

// PageAccesses returns total physical I/O across both phases.
func (s Stats) PageAccesses() int64 {
	return s.Mat.PageAccesses() + s.Join.PageAccesses()
}

// CPU returns total CPU time across both phases.
func (s Stats) CPU() time.Duration { return s.MatCPU + s.JoinCPU }

// FalseHitRatio returns (Σsᵢ − Σs′ᵢ)/Σs′ᵢ, the filter quality metric of
// Fig. 10. It is zero when no true hits were recorded.
func (s Stats) FalseHitRatio() float64 {
	if s.TrueHits == 0 {
		return 0
	}
	return float64(s.Candidates-s.TrueHits) / float64(s.TrueHits)
}

// Result is the output of a CIJ algorithm.
type Result struct {
	Pairs []Pair
	Stats Stats
}

// Options tunes a CIJ run.
type Options struct {
	// Reuse enables NM-CIJ's Voronoi-cell reuse buffer (Section IV-B);
	// the Fig. 11 ablation switches it off. Ignored by FM/PM.
	Reuse bool
	// OnPair, when non-nil, streams every result pair as it is produced
	// (NM-CIJ produces pairs from the very first batches — the
	// non-blocking property of Fig. 9b).
	OnPair func(Pair)
	// CollectPairs controls whether Result.Pairs is populated; large
	// experiments disable it and count through OnPair instead.
	CollectPairs bool
	// PlainVisitOrder disables the Hilbert-ordered depth-first traversal
	// of Section III-C and visits leaves in stored entry order instead.
	// Ablation knob: the Hilbert order is what gives consecutive batches
	// spatial locality, and with it buffer hits.
	PlainVisitOrder bool
	// Trace, when non-nil, receives per-phase spans (wall clock + I/O and
	// filter-counter deltas) for the run. The nil default is free: no
	// clock reads, no snapshots, no allocations on the batch hot path.
	Trace *obs.Trace
}

// DefaultOptions returns the configuration used by the paper's
// experiments: reuse on, pairs collected.
func DefaultOptions() Options {
	return Options{Reuse: true, CollectPairs: true}
}

// collector accumulates pairs, progress samples and phase statistics.
type collector struct {
	opts  Options
	buf   *storage.Buffer
	base  storage.Stats // counter snapshot at run start
	pairs []Pair
	count int64
	prog  []ProgressPoint
}

func newCollector(opts Options, buf *storage.Buffer) *collector {
	return &collector{opts: opts, buf: buf, base: buf.Stats()}
}

func (c *collector) emit(p Pair) {
	c.count++
	if c.opts.CollectPairs {
		c.pairs = append(c.pairs, p)
	}
	if c.opts.OnPair != nil {
		c.opts.OnPair(p)
	}
}

// sample records a progress point (called at batch boundaries).
func (c *collector) sample() {
	io := c.buf.Stats().Sub(c.base).PageAccesses()
	c.prog = append(c.prog, ProgressPoint{PageAccesses: io, Pairs: c.count})
}

// cellRecord pairs a site with its exact cell and that cell's MBR, the
// unit that flows through probing and refinement.
type cellRecord struct {
	site   voronoi.Site
	poly   geom.Polygon
	bounds geom.Rect
}

// appendRecords converts cells to records, appending into a reusable dst.
func appendRecords(dst []cellRecord, cells []voronoi.Cell) []cellRecord {
	for _, c := range cells {
		dst = append(dst, cellRecord{site: c.Site, poly: c.Poly, bounds: c.Poly.Bounds()})
	}
	return dst
}
