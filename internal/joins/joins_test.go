package joins

import (
	"math/rand"
	"sort"
	"testing"

	"cij/internal/core"
	"cij/internal/geom"
	"cij/internal/rtree"
	"cij/internal/storage"
)

var testDomain = geom.NewRect(0, 0, 10000, 10000)

func build(t testing.TB, pts []geom.Point) *rtree.Tree {
	t.Helper()
	buf := storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), 1<<20)
	return rtree.BulkLoadPoints(buf, pts, testDomain, 1)
}

func randPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
	}
	return pts
}

func TestDistanceJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	p := randPoints(rng, 500)
	q := randPoints(rng, 400)
	rp, rq := build(t, p), build(t, q)
	for _, eps := range []float64{50, 200, 800} {
		got := map[[2]int64]bool{}
		DistanceJoin(rp, rq, eps, func(pr PointPair) {
			got[[2]int64{pr.P, pr.Q}] = true
		})
		want := 0
		for i, pp := range p {
			for j, qq := range q {
				if pp.Dist(qq) <= eps {
					want++
					if !got[[2]int64{int64(i), int64(j)}] {
						t.Fatalf("eps=%v: missing pair (%d,%d)", eps, i, j)
					}
				}
			}
		}
		if len(got) != want {
			t.Fatalf("eps=%v: %d pairs, want %d", eps, len(got), want)
		}
	}
}

func TestDistanceJoinEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	rp := build(t, randPoints(rng, 50))
	empty := rtree.New(storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), 8), rtree.KindPoints)
	called := false
	DistanceJoin(rp, empty, 1000, func(PointPair) { called = true })
	if called {
		t.Fatal("join with empty tree should emit nothing")
	}
}

func TestClosestPairsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	p := randPoints(rng, 300)
	q := randPoints(rng, 250)
	rp, rq := build(t, p), build(t, q)
	for _, k := range []int{1, 5, 25} {
		got := ClosestPairs(rp, rq, k)
		if len(got) != k {
			t.Fatalf("k=%d: returned %d pairs", k, len(got))
		}
		// Distances must be ascending.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist-1e-12 {
				t.Fatalf("k=%d: results not sorted at %d", k, i)
			}
		}
		// Brute-force kth distance.
		var all []float64
		for _, pp := range p {
			for _, qq := range q {
				all = append(all, pp.Dist(qq))
			}
		}
		sort.Float64s(all)
		for i := 0; i < k; i++ {
			if diff := got[i].Dist - all[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("k=%d: dist[%d] = %v, want %v", k, i, got[i].Dist, all[i])
			}
		}
	}
}

func TestClosestPairsDegenerate(t *testing.T) {
	if got := ClosestPairs(build(t, randPoints(rand.New(rand.NewSource(1)), 10)), build(t, nil), 5); got != nil {
		t.Fatal("empty side should yield nil")
	}
	rp := build(t, []geom.Point{geom.Pt(1, 1)})
	rq := build(t, []geom.Point{geom.Pt(2, 2)})
	got := ClosestPairs(rp, rq, 10)
	if len(got) != 1 {
		t.Fatalf("1×1 inputs have exactly 1 pair, got %d", len(got))
	}
}

func TestAllNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	p := randPoints(rng, 200)
	q := randPoints(rng, 150)
	rp, rq := build(t, p), build(t, q)
	got := AllNN(rp, rq)
	if len(got) != len(p) {
		t.Fatalf("AllNN returned %d entries", len(got))
	}
	for i, pp := range p {
		bestD := -1.0
		for _, qq := range q {
			d := pp.Dist(qq)
			if bestD < 0 || d < bestD {
				bestD = d
			}
		}
		if diff := got[i].Dist - bestD; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("point %d: NN dist %v, want %v", i, got[i].Dist, bestD)
		}
	}
}

func TestEpsilonDoesNotReproduceCIJ(t *testing.T) {
	// The paper's motivation: no ε recovers the CIJ semantics, because
	// CIJ membership is not monotone in distance. On a random instance,
	// take the largest distance D among CIJ pairs: the smallest ε-join
	// containing all CIJ pairs (ε = D) must contain strictly more pairs.
	rng := rand.New(rand.NewSource(304))
	p := randPoints(rng, 40)
	q := randPoints(rng, 40)
	cij := core.BruteCIJ(p, q, testDomain)
	if len(cij) == 0 {
		t.Fatal("setup: empty CIJ")
	}
	dmax := 0.0
	for _, pr := range cij {
		if d := p[pr.P].Dist(q[pr.Q]); d > dmax {
			dmax = d
		}
	}
	rp, rq := build(t, p), build(t, q)
	count := 0
	DistanceJoin(rp, rq, dmax, func(PointPair) { count++ })
	if count <= len(cij) {
		t.Fatalf("ε=D join has %d pairs vs CIJ %d: expected strictly more (no ε reproduces CIJ)",
			count, len(cij))
	}
}
