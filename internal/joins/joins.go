// Package joins implements the traditional pointset join operators the
// CIJ paper contrasts its operator with (Section I and II-A): the
// ε-distance join, the k-closest-pairs join, and the all-nearest-neighbor
// join used by the Grouped Nearest Neighbors application. All operate on
// R-tree indexed pointsets with the synchronous-traversal / best-first
// machinery of the literature they cite.
//
// These operators exist both as baselines (they demonstrate that no ε or
// k reproduces the CIJ result) and as supporting operators for the
// examples.
package joins

import (
	"cij/internal/pq"
	"cij/internal/rtree"
	"cij/internal/storage"
)

// PointPair is a result of a distance-based join, with the two dataset
// indexes and their distance.
type PointPair struct {
	P, Q int64
	Dist float64
}

// DistanceJoin returns all pairs (p, q) with dist(p, q) ≤ eps, via
// synchronous traversal following entry pairs with mindist ≤ eps
// (the ε-distance join of Böhm et al., adapted to R-trees as described in
// Section II-A).
func DistanceJoin(rp, rq *rtree.Tree, eps float64, emit func(PointPair)) {
	if rp.Root() == storage.InvalidPage || rq.Root() == storage.InvalidPage {
		return
	}
	np := rp.ReadNodeStable(rp.Root())
	nq := rq.ReadNodeStable(rq.Root())
	distJoinNodes(rp, rq, np, nq, rp.Height(), rq.Height(), eps, emit)
}

func distJoinNodes(rp, rq *rtree.Tree, np, nq *rtree.Node, lp, lq int, eps float64, emit func(PointPair)) {
	switch {
	case np.Leaf && nq.Leaf:
		for i := range np.Entries {
			for j := range nq.Entries {
				d := np.Entries[i].Pt.Dist(nq.Entries[j].Pt)
				if d <= eps {
					emit(PointPair{P: np.Entries[i].ID, Q: nq.Entries[j].ID, Dist: d})
				}
			}
		}
	case !np.Leaf && (nq.Leaf || lp > lq):
		bound := nq.MBR()
		for i := range np.Entries {
			if np.Entries[i].MBR.MinDistRect(bound) <= eps {
				child := rp.ReadNodeStable(np.Entries[i].Child)
				distJoinNodes(rp, rq, child, nq, lp-1, lq, eps, emit)
			}
		}
	case !nq.Leaf && (np.Leaf || lq > lp):
		bound := np.MBR()
		for j := range nq.Entries {
			if nq.Entries[j].MBR.MinDistRect(bound) <= eps {
				child := rq.ReadNodeStable(nq.Entries[j].Child)
				distJoinNodes(rp, rq, np, child, lp, lq-1, eps, emit)
			}
		}
	default:
		for i := range np.Entries {
			for j := range nq.Entries {
				if np.Entries[i].MBR.MinDistRect(nq.Entries[j].MBR) <= eps {
					cp := rp.ReadNodeStable(np.Entries[i].Child)
					cq := rq.ReadNodeStable(nq.Entries[j].Child)
					distJoinNodes(rp, rq, cp, cq, lp-1, lq-1, eps, emit)
				}
			}
		}
	}
}

// pairItem is a prioritized pair of subtrees / objects for the best-first
// k-closest-pairs search; the priority (mindist of the two MBRs) lives in
// the pq.Min key.
type pairItem struct {
	ep, eq   rtree.Entry
	lp, lq   int  // remaining heights (0 = object)
	leafPair bool // both entries are objects
}

// ClosestPairs returns the k closest pairs between the two indexed
// pointsets in ascending distance (Hjaltason & Samet / Corral et al.,
// combining incremental NN ideas with synchronous traversal). The frontier
// lives in a typed pq.Min heap — the same no-boxing treatment the core
// traversals got — so expansion allocates only when the frontier grows past
// its high-water mark.
func ClosestPairs(rp, rq *rtree.Tree, k int) []PointPair {
	if k <= 0 || rp.Root() == storage.InvalidPage || rq.Root() == storage.InvalidPage {
		return nil
	}
	var h pq.Min[pairItem]
	push := func(ep, eq rtree.Entry, lp, lq int, leafPair bool) {
		h.Push(ep.MBR.MinDistRect(eq.MBR), pairItem{
			ep: ep, eq: eq, lp: lp, lq: lq, leafPair: leafPair,
		})
	}
	np := rp.ReadNodeStable(rp.Root())
	nq := rq.ReadNodeStable(rq.Root())
	crossPush(np, nq, rp.Height(), rq.Height(), push)

	var out []PointPair
	for h.Len() > 0 && len(out) < k {
		key, top := h.Pop()
		if top.leafPair {
			out = append(out, PointPair{P: top.ep.ID, Q: top.eq.ID, Dist: key})
			continue
		}
		if top.lp >= top.lq && top.lp > 0 {
			// Expand the P side (the taller remaining subtree).
			n := rp.ReadNodeStable(top.ep.Child)
			for i := range n.Entries {
				push(n.Entries[i], top.eq, top.lp-1, top.lq, top.lp-1 == 0 && top.lq == 0)
			}
		} else {
			n := rq.ReadNodeStable(top.eq.Child)
			for i := range n.Entries {
				push(top.ep, n.Entries[i], top.lp, top.lq-1, top.lp == 0 && top.lq-1 == 0)
			}
		}
	}
	return out
}

// crossPush seeds the pair heap with the children of both roots.
func crossPush(np, nq *rtree.Node, lp, lq int, push func(ep, eq rtree.Entry, lp, lq int, leafPair bool)) {
	for i := range np.Entries {
		for j := range nq.Entries {
			ep, eq := np.Entries[i], nq.Entries[j]
			elp, elq := lp-1, lq-1
			if np.Leaf {
				elp = 0
			}
			if nq.Leaf {
				elq = 0
			}
			push(ep, eq, elp, elq, np.Leaf && nq.Leaf)
		}
	}
}

// AllNN computes, for every point of rp, its nearest neighbor in rq. It
// returns a slice indexed by the P object id. This is the AllNN join the
// Grouped-NN application would otherwise need two of (Section I); simple
// per-point best-first queries suffice for the example workloads.
func AllNN(rp, rq *rtree.Tree) []PointPair {
	out := make([]PointPair, rp.Size())
	rp.VisitLeaves(func(leaf *rtree.Node) {
		for _, e := range leaf.Entries {
			nn := rq.KNN(e.Pt, 1, nil)
			if len(nn) == 1 {
				out[e.ID] = PointPair{P: e.ID, Q: nn[0].ID, Dist: e.Pt.Dist(nn[0].Pt)}
			}
		}
	})
	return out
}
