package joins

import (
	"math/rand"
	"testing"

	"cij/internal/geom"
)

func TestDistanceJoinZeroEpsilon(t *testing.T) {
	// ε = 0 joins only coincident points.
	p := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(3, 3)}
	q := []geom.Point{geom.Pt(2, 2), geom.Pt(4, 4)}
	rp, rq := build(t, p), build(t, q)
	var got []PointPair
	DistanceJoin(rp, rq, 0, func(pr PointPair) { got = append(got, pr) })
	if len(got) != 1 || got[0].P != 1 || got[0].Q != 0 {
		t.Fatalf("eps=0 join = %+v", got)
	}
}

func TestDistanceJoinSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(310))
	p := randPoints(rng, 200)
	q := randPoints(rng, 150)
	rp, rq := build(t, p), build(t, q)
	const eps = 400
	ab := map[[2]int64]bool{}
	DistanceJoin(rp, rq, eps, func(pr PointPair) { ab[[2]int64{pr.P, pr.Q}] = true })
	ba := map[[2]int64]bool{}
	DistanceJoin(rq, rp, eps, func(pr PointPair) { ba[[2]int64{pr.Q, pr.P}] = true })
	if len(ab) != len(ba) {
		t.Fatalf("asymmetric: %d vs %d", len(ab), len(ba))
	}
	for k := range ab {
		if !ba[k] {
			t.Fatalf("pair %v missing in reversed join", k)
		}
	}
}

func TestClosestPairsKLargerThanCross(t *testing.T) {
	p := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2)}
	q := []geom.Point{geom.Pt(3, 3)}
	rp, rq := build(t, p), build(t, q)
	got := ClosestPairs(rp, rq, 100)
	if len(got) != 2 {
		t.Fatalf("k beyond cross-product size: %d pairs, want 2", len(got))
	}
}

func TestClosestPairsDistancesNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	p := randPoints(rng, 100)
	rp, rq := build(t, p), build(t, p) // identical sets: min distance 0
	got := ClosestPairs(rp, rq, 5)
	if got[0].Dist != 0 {
		t.Fatalf("identical sets should have a zero-distance pair, got %v", got[0].Dist)
	}
}

func TestAllNNSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(312))
	p := randPoints(rng, 120)
	rp := build(t, p)
	got := AllNN(rp, rp)
	for i, pr := range got {
		if pr.Dist != 0 || pr.Q != int64(i) {
			t.Fatalf("self AllNN of %d: %+v", i, pr)
		}
	}
}
