package parallel

import (
	"runtime"
	"sync"
	"time"

	"cij/internal/core"
	"cij/internal/geom"
	"cij/internal/obs"
	"cij/internal/rtree"
)

// defaultUnitsPerWorker is the work-queue granularity: more units than
// workers lets the pool rebalance dynamically (a worker that drew a cheap
// unit pulls another), while units stay large enough that each preserves
// reuse-buffer locality across its batches.
const defaultUnitsPerWorker = 4

// Options tunes a partition-parallel CIJ run.
type Options struct {
	// Workers is the pool size; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Balanced switches the partitioner to cost-balanced units sized by
	// leaf entry counts instead of leaf counts — worthwhile on clustered
	// data, a wash on uniform data.
	Balanced bool
	// UnitsPerWorker is the queue granularity (units ≈ Workers ×
	// UnitsPerWorker); <= 0 selects defaultUnitsPerWorker.
	UnitsPerWorker int
	// Reuse enables each worker's Voronoi-cell reuse buffer
	// (Section IV-B), exactly as in the serial algorithm.
	Reuse bool
	// OnPair, when non-nil, streams every result pair as it is produced.
	// It is called on Join's calling goroutine while workers are still
	// running — the parallel preservation of the non-blocking property of
	// Fig. 9b — so it needs no internal locking, but it should return
	// quickly: a slow OnPair backpressures the workers.
	OnPair func(core.Pair)
	// OnProgress, when non-nil, streams each progress sample (cumulative
	// physical I/O across all workers vs pairs emitted so far) as the merge
	// records it — the live form of Stats.Progress. Like OnPair it runs on
	// Join's calling goroutine, interleaved with the pair stream, so a
	// consumer can relay a progressive Fig. 9b curve (the query service's
	// NDJSON stream does exactly this) without waiting for Join to return.
	OnProgress func(core.ProgressPoint)
	// CollectPairs controls whether Result.Pairs is populated. Pair order
	// interleaves worker streams and is not deterministic across runs;
	// the pair SET is always identical to serial NM-CIJ's.
	CollectPairs bool
	// Trace, when non-nil, receives per-phase spans: one "partition" span
	// for the unit split, each worker's pipeline phases tagged "w<id>"
	// (workers record concurrently; obs.Trace.Add is thread-safe), and one
	// "merge" span for the event fan-in. Nil costs nothing.
	Trace *obs.Trace
}

// DefaultOptions mirrors core.DefaultOptions for the parallel engine:
// reuse on, pairs collected, pool sized to the machine.
func DefaultOptions() Options {
	return Options{Reuse: true, CollectPairs: true}
}

// Join evaluates CIJ(P, Q) with the partitioned multi-worker engine and
// returns a result equivalent (as a pair set) to core.NMCIJ on the same
// trees. The Q-leaf sequence is partitioned into contiguous Hilbert units,
// joined by a worker pool against the shared read-only trees, and merged
// into one stream; see the package comment for the stage breakdown.
//
// Accounting: Stats.Join is the summed physical I/O of the partition
// traversal and every worker's private buffer — with each tree's own
// serial buffer capacity split evenly across workers, so a W-worker run
// spends about the same total cache memory as the serial run (a
// capacity-0, buffer-less tree stays buffer-less in every fork). Stats.JoinCPU is the
// WALL-CLOCK time of the whole join (that is the quantity a speedup curve
// compares); per-core work is that times the busy worker count.
func Join(rp, rq *rtree.Tree, domain geom.Rect, opts Options) core.Result {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	unitsPer := opts.UnitsPerWorker
	if unitsPer <= 0 {
		unitsPer = defaultUnitsPerWorker
	}
	start := time.Now()

	qBase := rq.Buffer().Stats()
	units := PartitionLeaves(rq, domain, workers*unitsPer, opts.Balanced)
	partitionIO := rq.Buffer().Stats().Sub(qBase)
	tr := opts.Trace
	tr.Add("partition", "", time.Since(start), core.IOCounters(partitionIO).Add(obs.Counters{Items: int64(len(units))}))
	if len(units) < workers {
		workers = len(units)
	}
	if workers == 0 { // empty Q tree: nothing to join
		return core.Result{Stats: core.Stats{Join: partitionIO, JoinCPU: time.Since(start)}}
	}

	capP := perWorkerCapacity(rp.Buffer().Capacity(), workers)
	capQ := perWorkerCapacity(rq.Buffer().Capacity(), workers)

	unitCh := make(chan Unit)
	events := make(chan event, workers*2)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		w := newWorker(i, rp, rq, domain, capP, capQ, opts.Reuse, tr)
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(unitCh, events)
		}()
	}
	go func() {
		for _, u := range units {
			unitCh <- u
		}
		close(unitCh)
	}()
	go func() {
		wg.Wait()
		close(events)
	}()

	mergeStart := time.Now()
	pairs, stats := merge(events, workers, partitionIO, opts)
	// The merge drains events concurrently with the workers, so its wall
	// span overlaps theirs — it measures fan-in latency, not extra work,
	// and carries no I/O (the merge only folds counters).
	tr.Add("merge", "", time.Since(mergeStart), obs.Counters{Items: int64(workers)})
	stats.JoinCPU = time.Since(start)
	return core.Result{Pairs: pairs, Stats: stats}
}

// perWorkerCapacity splits one serial buffer capacity across workers,
// keeping a zero capacity at zero (buffer-less stays buffer-less) and
// granting every worker at least one page otherwise.
func perWorkerCapacity(capacity, workers int) int {
	c := capacity / workers
	if capacity > 0 && c < 1 {
		c = 1
	}
	return c
}
