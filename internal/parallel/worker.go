package parallel

import (
	"fmt"

	"cij/internal/core"
	"cij/internal/geom"
	"cij/internal/obs"
	"cij/internal/rtree"
	"cij/internal/storage"
)

// event is one message on the worker → merge stream: the pairs of one
// processed batch plus the sending worker's cumulative I/O snapshot, and —
// exactly once per worker, as its last message — the final filter-quality
// counters.
type event struct {
	worker int
	pairs  []core.Pair
	io     storage.Stats // cumulative I/O of this worker's buffers
	final  *core.Stats   // non-nil on the worker's last event
}

// worker owns one NM-CIJ pipeline over private tree views: its buffer
// forks cache independently and count only its own I/O, so the batch loop
// runs without any synchronization. Workers pull units from a shared
// queue, which load-balances dynamically — a worker that drew a cheap
// unit simply draws the next one.
//
// The pipeline also carries all per-batch scratch (the typed best-first
// queues, Voronoi workspaces, clipping buffers and polygon arenas of
// core.BatchPipeline), so each worker's hot path is allocation-free in
// steady state: no GC pressure is shared between workers beyond the
// per-batch pair slices handed to the merge.
type worker struct {
	id   int
	pipe *core.BatchPipeline
	bufs []*storage.Buffer
}

// newWorker forks private buffers over the trees' disks — capP pages for
// the P side, capQ for the Q side, each derived from that tree's own
// serial buffer — and builds the worker's pipeline. The fork structure
// mirrors the serial one buffer-for-buffer: when both trees read through
// one shared buffer (the paper's setup) a single fork serves both views
// (capP and capQ coincide there); trees with distinct buffers get
// distinct forks even on a shared disk, keeping each side's cache memory
// and I/O accounting aligned with its serial counterpart.
func newWorker(id int, rp, rq *rtree.Tree, domain geom.Rect, capP, capQ int, reuse bool, tr *obs.Trace) *worker {
	bufP := rp.Buffer().Fork(capP)
	bufs := []*storage.Buffer{bufP}
	bufQ := bufP
	if rq.Buffer() != rp.Buffer() {
		bufQ = rq.Buffer().Fork(capQ)
		bufs = append(bufs, bufQ)
	}
	pipe := core.NewBatchPipeline(rp.WithBuffer(bufP), rq.WithBuffer(bufQ), domain, reuse)
	if tr.Enabled() {
		// Workers share one trace; the tag separates their spans and
		// Trace.Add serializes the concurrent recordings. All worker I/O
		// happens inside ProcessBatch (units carry pre-extracted batches),
		// so the pipeline spans cover the forks' counters exactly.
		pipe.SetTrace(tr, fmt.Sprintf("w%d", id))
	}
	return &worker{
		id:   id,
		pipe: pipe,
		bufs: bufs,
	}
}

// run drains the unit queue, streaming one event per processed batch so
// pairs reach the merge (and the caller's OnPair) while the join is still
// in flight, then reports its filter counters and returns.
func (w *worker) run(units <-chan Unit, out chan<- event) {
	for u := range units {
		for _, group := range u.Batches {
			var pairs []core.Pair
			w.pipe.ProcessBatch(group, func(p core.Pair) { pairs = append(pairs, p) })
			out <- event{worker: w.id, pairs: pairs, io: w.ioStats()}
		}
	}
	final := w.pipe.FilterStats()
	out <- event{worker: w.id, io: w.ioStats(), final: &final}
}

func (w *worker) ioStats() storage.Stats {
	var s storage.Stats
	for _, b := range w.bufs {
		s = s.Add(b.Stats())
	}
	return s
}
