package parallel

import (
	"cij/internal/core"
	"cij/internal/storage"
)

// merge drains the workers' event stream on the caller's goroutine,
// fanning all pair streams into the single OnPair output and folding the
// per-worker counters into one core.Stats. Because it runs on the calling
// goroutine, OnPair needs no synchronization on the caller's side: pairs
// arrive serially, they just interleave across batches of different
// workers instead of following the serial emission order.
//
// Progress is sampled after every batch event the way the serial
// collector samples after every leaf: total I/O is the partition
// traversal plus the latest cumulative snapshot of every worker, so the
// resulting curve is the parallel run's analogue of Fig. 9b and stays
// monotone in both coordinates.
func merge(events <-chan event, workers int, partitionIO storage.Stats, opts Options) ([]core.Pair, core.Stats) {
	perWorker := make([]storage.Stats, workers)
	var stats core.Stats
	var pairs []core.Pair
	var count int64
	for ev := range events {
		for _, p := range ev.pairs {
			count++
			if opts.CollectPairs {
				pairs = append(pairs, p)
			}
			if opts.OnPair != nil {
				opts.OnPair(p)
			}
		}
		perWorker[ev.worker] = ev.io
		if ev.final != nil {
			stats.Candidates += ev.final.Candidates
			stats.TrueHits += ev.final.TrueHits
			stats.PCellsComputed += ev.final.PCellsComputed
		}
		total := partitionIO
		for _, s := range perWorker {
			total = total.Add(s)
		}
		point := core.ProgressPoint{
			PageAccesses: total.PageAccesses(),
			Pairs:        count,
		}
		stats.Progress = append(stats.Progress, point)
		if opts.OnProgress != nil {
			opts.OnProgress(point)
		}
	}
	stats.Join = partitionIO
	for _, s := range perWorker {
		stats.Join = stats.Join.Add(s)
	}
	return pairs, stats
}
