package parallel_test

import (
	"strings"
	"testing"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/obs"
	"cij/internal/parallel"
)

// TestTraceSumsToAggregateStats pins the accounting invariance for the
// parallel engine: the partition span plus every worker's pipeline spans
// sum exactly to Stats.Join (partition traversal + all private forks),
// and the filter-quality counters reconcile too. Workers record into one
// shared trace concurrently, so running this under -race also guards
// obs.Trace.Add's thread-safety in its real usage.
func TestTraceSumsToAggregateStats(t *testing.T) {
	p := dataset.Clustered(900, 8, 31)
	q := dataset.Uniform(800, 32)
	rp, rq := buildTrees(t, p, q, 32)

	opts := parallel.DefaultOptions()
	opts.Workers = 4
	opts.Trace = obs.NewTrace()
	res := parallel.Join(rp, rq, dataset.Domain, opts)
	if len(res.Pairs) == 0 {
		t.Fatal("no pairs")
	}

	total := opts.Trace.Total()
	agg := core.IOCounters(res.Stats.Join)
	if total.LogicalReads != agg.LogicalReads ||
		total.PagesRead != agg.PagesRead ||
		total.PagesWritten != agg.PagesWritten ||
		total.DecodeHits != agg.DecodeHits ||
		total.DecodeMisses != agg.DecodeMisses {
		t.Fatalf("trace totals %+v do not reconcile with Stats.Join %+v", total, agg)
	}
	if total.Candidates != res.Stats.Candidates || total.TrueHits != res.Stats.TrueHits ||
		total.PCells != res.Stats.PCellsComputed {
		t.Fatalf("trace filter counters %+v != stats %+v", total, res.Stats)
	}

	// The span set holds the partition and merge stages plus per-worker
	// tagged pipeline phases.
	phases := map[string]bool{}
	workerTags := map[string]bool{}
	for _, sp := range opts.Trace.Spans() {
		phases[sp.Phase] = true
		if strings.HasPrefix(sp.Tag, "w") {
			workerTags[sp.Tag] = true
		}
	}
	for _, want := range []string{"partition", "merge", "voronoi", "filter", "refine", "join"} {
		if !phases[want] {
			t.Fatalf("missing phase %q in %v", want, phases)
		}
	}
	if len(workerTags) == 0 {
		t.Fatalf("no worker-tagged spans recorded")
	}
}

// TestTraceDoesNotPerturbResult: tracing must not change the pair set or
// the I/O accounting of a parallel run.
func TestTraceDoesNotPerturbResult(t *testing.T) {
	p := dataset.Uniform(600, 41)
	q := dataset.Uniform(600, 42)

	run := func(tr *obs.Trace, workers int) core.Result {
		rp, rq := buildTrees(t, p, q, 32)
		opts := parallel.DefaultOptions()
		opts.Workers = workers
		opts.Trace = tr
		return parallel.Join(rp, rq, dataset.Domain, opts)
	}
	plain := run(nil, 3)
	traced := run(obs.NewTrace(), 3)
	if !core.SamePairs(plain.Pairs, traced.Pairs) {
		t.Fatal("tracing changed the parallel pair set")
	}
	// I/O is only run-to-run deterministic with a single worker: with more,
	// dynamic unit assignment changes each fork's locality between runs
	// (traced or not), so the multi-worker comparison stops at the pair set.
	plain1 := run(nil, 1)
	traced1 := run(obs.NewTrace(), 1)
	if plain1.Stats.Join != traced1.Stats.Join {
		t.Fatalf("tracing perturbed I/O: %+v vs %+v", traced1.Stats.Join, plain1.Stats.Join)
	}
}
