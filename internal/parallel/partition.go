package parallel

import (
	"cij/internal/geom"
	"cij/internal/rtree"
	"cij/internal/voronoi"
)

// Unit is one work unit of the partitioned join: a contiguous run of
// Hilbert-ordered Q-leaf batches. Contiguity matters twice over — the
// leaves of distinct units index disjoint points of Q (no pair can be
// emitted by two units), and consecutive batches are close in space, so
// the worker that processes a unit keeps hitting its Voronoi-cell reuse
// buffer just like the serial algorithm does.
type Unit struct {
	Index   int              // position in the Hilbert order of units
	Batches [][]voronoi.Site // one entry per Q-leaf, in Hilbert order
	Points  int              // total sites across the unit's batches
}

// PartitionLeaves collects the leaves of rq in Hilbert order (one tree
// traversal, charged to rq's own buffer) and splits them into at most
// maxUnits contiguous units. With balanced set, unit boundaries are chosen
// so that each unit carries a near-equal share of the leaf ENTRY count
// rather than the leaf count — leaf occupancy varies little on uniform
// data but a lot under clustering, where equal-leaf-count units would load
// workers unevenly.
func PartitionLeaves(rq *rtree.Tree, domain geom.Rect, maxUnits int, balanced bool) []Unit {
	var batches [][]voronoi.Site
	rq.VisitLeavesHilbert(domain, func(leaf *rtree.Node) {
		batches = append(batches, voronoi.SitesOfLeaf(leaf))
	})
	if maxUnits < 1 {
		maxUnits = 1
	}
	if balanced {
		return splitBalanced(batches, maxUnits)
	}
	return splitEven(batches, maxUnits)
}

// splitEven cuts the batch sequence into min(maxUnits, len(batches))
// near-equal runs by batch count.
func splitEven(batches [][]voronoi.Site, maxUnits int) []Unit {
	n := len(batches)
	if n == 0 {
		return nil
	}
	k := maxUnits
	if k > n {
		k = n
	}
	units := make([]Unit, 0, k)
	for u := 0; u < k; u++ {
		lo, hi := u*n/k, (u+1)*n/k
		units = append(units, makeUnit(u, batches[lo:hi]))
	}
	return units
}

// splitBalanced cuts the batch sequence into at most maxUnits runs of
// near-equal total entry count: each cut greedily fills one unit up to the
// average of the points still unassigned, always leaving at least one
// batch for every unit still to come.
func splitBalanced(batches [][]voronoi.Site, maxUnits int) []Unit {
	n := len(batches)
	if n == 0 {
		return nil
	}
	k := maxUnits
	if k > n {
		k = n
	}
	remaining := 0
	for _, b := range batches {
		remaining += len(b)
	}
	units := make([]Unit, 0, k)
	start := 0
	for u := 0; u < k && start < n; u++ {
		unitsLeft := k - u
		if unitsLeft == 1 {
			units = append(units, makeUnit(u, batches[start:]))
			break
		}
		target := float64(remaining) / float64(unitsLeft)
		points, end := 0, start
		for end < n {
			// Take at least one batch, then stop at the target — or when
			// the batches left are exactly enough for the units left.
			if points > 0 && (float64(points) >= target || n-end <= unitsLeft-1) {
				break
			}
			points += len(batches[end])
			end++
		}
		units = append(units, makeUnit(u, batches[start:end]))
		remaining -= points
		start = end
	}
	return units
}

func makeUnit(index int, batches [][]voronoi.Site) Unit {
	points := 0
	for _, b := range batches {
		points += len(b)
	}
	return Unit{Index: index, Batches: batches, Points: points}
}
