package parallel_test

import (
	"runtime"
	"testing"
	"time"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/geom"
	"cij/internal/parallel"
	"cij/internal/rtree"
	"cij/internal/storage"
)

// buildTrees indexes p and q on one simulated disk behind a shared LRU
// buffer, the setup of the paper's experiments (exp.BuildEnv without the
// import cycle through internal/exp).
func buildTrees(t testing.TB, p, q []geom.Point, bufferPages int) (*rtree.Tree, *rtree.Tree) {
	t.Helper()
	buf := storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), 1<<30)
	rp := rtree.BulkLoadPoints(buf, p, dataset.Domain, 1)
	rq := rtree.BulkLoadPoints(buf, q, dataset.Domain, 1)
	buf.SetCapacity(bufferPages)
	buf.DropAll()
	buf.ResetStats()
	return rp, rq
}

// distributions returns the dataset shapes the equivalence property is
// checked on: uniform, clustered (skewed leaf occupancy — the case
// balanced partitioning exists for), and an asymmetric-cardinality pair.
func distributions() []struct {
	name string
	p, q []geom.Point
} {
	return []struct {
		name string
		p, q []geom.Point
	}{
		{"uniform", dataset.Uniform(700, 11), dataset.Uniform(600, 12)},
		{"clustered", dataset.Clustered(700, 9, 13), dataset.Clustered(600, 7, 14)},
		{"ratio_4_1", dataset.Uniform(900, 15), dataset.Uniform(220, 16)},
		{"tiny", dataset.Uniform(40, 17), dataset.Uniform(30, 18)},
	}
}

// TestEquivalence is the core correctness property of the engine: for
// every worker count and partitioning mode, the parallel pair set is
// identical to serial NM-CIJ and to the brute-force oracle.
func TestEquivalence(t *testing.T) {
	for _, dist := range distributions() {
		dist := dist
		t.Run(dist.name, func(t *testing.T) {
			t.Parallel()
			oracle := core.BruteCIJ(dist.p, dist.q, dataset.Domain)

			rp, rq := buildTrees(t, dist.p, dist.q, 32)
			serial := core.NMCIJ(rp, rq, dataset.Domain, core.DefaultOptions())
			if !core.SamePairs(serial.Pairs, oracle) {
				t.Fatalf("serial NM-CIJ disagrees with oracle: +%v -%v",
					core.DiffPairs(serial.Pairs, oracle), core.DiffPairs(oracle, serial.Pairs))
			}

			for _, workers := range []int{1, 2, 4, 8} {
				for _, balanced := range []bool{false, true} {
					opts := parallel.DefaultOptions()
					opts.Workers = workers
					opts.Balanced = balanced
					res := parallel.Join(rp, rq, dataset.Domain, opts)
					if !core.SamePairs(res.Pairs, serial.Pairs) {
						t.Errorf("workers=%d balanced=%v: pair set differs from serial: extra=%v missing=%v",
							workers, balanced,
							core.DiffPairs(res.Pairs, serial.Pairs),
							core.DiffPairs(serial.Pairs, res.Pairs))
					}
				}
			}
		})
	}
}

// TestEquivalenceNoReuse pins down that per-worker reuse buffers are a
// pure cache: disabling them changes nothing about the pair set either.
func TestEquivalenceNoReuse(t *testing.T) {
	p := dataset.Clustered(500, 6, 21)
	q := dataset.Clustered(450, 5, 22)
	rp, rq := buildTrees(t, p, q, 16)
	serial := core.NMCIJ(rp, rq, dataset.Domain, core.DefaultOptions())

	opts := parallel.DefaultOptions()
	opts.Workers = 4
	opts.Reuse = false
	res := parallel.Join(rp, rq, dataset.Domain, opts)
	if !core.SamePairs(res.Pairs, serial.Pairs) {
		t.Fatalf("no-reuse parallel join differs from serial")
	}
	if res.Stats.PCellsComputed < serial.Stats.PCellsComputed {
		t.Errorf("no-reuse run computed fewer P-cells (%d) than serial with reuse (%d)",
			res.Stats.PCellsComputed, serial.Stats.PCellsComputed)
	}
}

// TestStreaming checks the OnPair path: every pair is streamed exactly
// once, streaming agrees with collection, and CollectPairs=false leaves
// Result.Pairs empty while still streaming the full set.
func TestStreaming(t *testing.T) {
	p := dataset.Uniform(600, 31)
	q := dataset.Uniform(500, 32)
	rp, rq := buildTrees(t, p, q, 16)
	serial := core.NMCIJ(rp, rq, dataset.Domain, core.DefaultOptions())

	var streamed []core.Pair
	opts := parallel.DefaultOptions()
	opts.Workers = 4
	opts.CollectPairs = false
	opts.OnPair = func(pr core.Pair) { streamed = append(streamed, pr) }
	res := parallel.Join(rp, rq, dataset.Domain, opts)
	if len(res.Pairs) != 0 {
		t.Errorf("CollectPairs=false but Result.Pairs has %d entries", len(res.Pairs))
	}
	if !core.SamePairs(streamed, serial.Pairs) {
		t.Errorf("streamed pair set differs from serial (streamed %d, serial %d)",
			len(streamed), len(serial.Pairs))
	}
}

// TestStatsMerge checks the merged accounting: filter counters equal the
// serial run's exactly (they are partition-invariant), total I/O is
// positive, and the progress curve is monotone in both coordinates and
// ends at the final totals — the Fig. 9b progressive-output property.
func TestStatsMerge(t *testing.T) {
	p := dataset.Uniform(600, 41)
	q := dataset.Uniform(500, 42)
	rp, rq := buildTrees(t, p, q, 16)
	serial := core.NMCIJ(rp, rq, dataset.Domain, core.DefaultOptions())

	opts := parallel.DefaultOptions()
	opts.Workers = 4
	res := parallel.Join(rp, rq, dataset.Domain, opts)

	if res.Stats.Candidates != serial.Stats.Candidates {
		t.Errorf("merged Candidates = %d, serial = %d", res.Stats.Candidates, serial.Stats.Candidates)
	}
	if res.Stats.TrueHits != serial.Stats.TrueHits {
		t.Errorf("merged TrueHits = %d, serial = %d", res.Stats.TrueHits, serial.Stats.TrueHits)
	}
	if res.Stats.Join.PageAccesses() <= 0 {
		t.Errorf("merged join I/O not positive: %v", res.Stats.Join)
	}
	prog := res.Stats.Progress
	if len(prog) == 0 {
		t.Fatal("no progress samples")
	}
	for i := 1; i < len(prog); i++ {
		if prog[i].PageAccesses < prog[i-1].PageAccesses || prog[i].Pairs < prog[i-1].Pairs {
			t.Fatalf("progress not monotone at %d: %+v -> %+v", i, prog[i-1], prog[i])
		}
	}
	last := prog[len(prog)-1]
	if last.Pairs != int64(len(res.Pairs)) {
		t.Errorf("final progress pairs %d != emitted pairs %d", last.Pairs, len(res.Pairs))
	}
	if last.PageAccesses != res.Stats.Join.PageAccesses() {
		t.Errorf("final progress I/O %d != join I/O %d", last.PageAccesses, res.Stats.Join.PageAccesses())
	}
	if first := prog[0]; first.Pairs > 0 && first.PageAccesses >= last.PageAccesses {
		t.Errorf("no progressive output: first sample already at final I/O")
	}
}

// TestSeparateDisks covers the two-disk configuration: P and Q indexed on
// different disks with asymmetric buffer capacities, including a
// buffer-less Q (capacity 0) — each side's forks must follow its own
// tree's capacity, and a capacity-0 tree must stay buffer-less so page
// counts remain comparable with a serial run.
func TestSeparateDisks(t *testing.T) {
	p := dataset.Uniform(500, 81)
	q := dataset.Uniform(400, 82)
	bufP := storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), 1<<30)
	bufQ := storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), 1<<30)
	rp := rtree.BulkLoadPoints(bufP, p, dataset.Domain, 1)
	rq := rtree.BulkLoadPoints(bufQ, q, dataset.Domain, 1)
	bufP.SetCapacity(40)
	bufQ.SetCapacity(0) // buffer-less Q: every access physical
	for _, b := range []*storage.Buffer{bufP, bufQ} {
		b.DropAll()
		b.ResetStats()
	}

	serial := core.NMCIJ(rp, rq, dataset.Domain, core.DefaultOptions())
	opts := parallel.DefaultOptions()
	opts.Workers = 4
	res := parallel.Join(rp, rq, dataset.Domain, opts)
	if !core.SamePairs(res.Pairs, serial.Pairs) {
		t.Fatalf("two-disk parallel join differs from serial: got %d pairs, want %d",
			len(res.Pairs), len(serial.Pairs))
	}
	if res.Stats.Candidates != serial.Stats.Candidates {
		t.Errorf("merged Candidates = %d, serial = %d", res.Stats.Candidates, serial.Stats.Candidates)
	}
}

// TestSharedDiskDistinctBuffers covers the remaining buffer topology: one
// disk, but each tree reading through its own buffer with asymmetric
// capacities. Workers must fork per BUFFER, not per disk, so the
// buffer-less P side stays buffer-less while Q keeps its cache.
func TestSharedDiskDistinctBuffers(t *testing.T) {
	p := dataset.Uniform(400, 83)
	q := dataset.Uniform(350, 84)
	disk := storage.NewDisk(storage.DefaultPageSize)
	bufP := storage.NewBuffer(disk, 1<<30)
	bufQ := storage.NewBuffer(disk, 1<<30)
	rp := rtree.BulkLoadPoints(bufP, p, dataset.Domain, 1)
	rq := rtree.BulkLoadPoints(bufQ, q, dataset.Domain, 1)
	bufP.SetCapacity(0)
	bufQ.SetCapacity(40)
	for _, b := range []*storage.Buffer{bufP, bufQ} {
		b.DropAll()
		b.ResetStats()
	}

	serial := core.NMCIJ(rp, rq, dataset.Domain, core.DefaultOptions())
	opts := parallel.DefaultOptions()
	opts.Workers = 4
	res := parallel.Join(rp, rq, dataset.Domain, opts)
	if !core.SamePairs(res.Pairs, serial.Pairs) {
		t.Fatalf("shared-disk/distinct-buffer join differs from serial: got %d pairs, want %d",
			len(res.Pairs), len(serial.Pairs))
	}
	if res.Stats.TrueHits != serial.Stats.TrueHits {
		t.Errorf("merged TrueHits = %d, serial = %d", res.Stats.TrueHits, serial.Stats.TrueHits)
	}
}

// TestEmptyInputs: joins against empty trees terminate and return nothing.
func TestEmptyInputs(t *testing.T) {
	p := dataset.Uniform(100, 51)
	for _, tc := range []struct {
		name string
		p, q []geom.Point
	}{
		{"empty_q", p, nil},
		{"empty_p", nil, p},
		{"both_empty", nil, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rp, rq := buildTrees(t, tc.p, tc.q, 8)
			opts := parallel.DefaultOptions()
			opts.Workers = 4
			res := parallel.Join(rp, rq, dataset.Domain, opts)
			serial := core.NMCIJ(rp, rq, dataset.Domain, core.DefaultOptions())
			if !core.SamePairs(res.Pairs, serial.Pairs) {
				t.Errorf("got %d pairs, serial %d", len(res.Pairs), len(serial.Pairs))
			}
		})
	}
}

// TestSpeedup demonstrates the >1.5× wall-clock speedup of 4 workers over
// serial NM-CIJ on the uniform paper-style workload at reduced scale. It
// needs real cores to mean anything, so it skips on small machines (and
// in -short runs): the speedup-curve benchmark in bench_test.go and the
// `scal` experiment of cmd/cijbench report the same quantity anywhere.
func TestSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs to demonstrate parallel speedup, have %d", runtime.NumCPU())
	}
	p := dataset.Uniform(4000, 61)
	q := dataset.Uniform(4000, 62)
	rp, rq := buildTrees(t, p, q, 64)

	measure := func(run func()) time.Duration {
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			start := time.Now()
			run()
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}

	serialOpts := core.Options{Reuse: true}
	serialWall := measure(func() { core.NMCIJ(rp, rq, dataset.Domain, serialOpts) })

	popts := parallel.DefaultOptions()
	popts.Workers = 4
	popts.CollectPairs = false
	parWall := measure(func() { parallel.Join(rp, rq, dataset.Domain, popts) })

	speedup := float64(serialWall) / float64(parWall)
	t.Logf("serial %v, 4 workers %v, speedup %.2fx", serialWall, parWall, speedup)
	if speedup < 1.5 {
		t.Errorf("4-worker speedup %.2fx < 1.5x (serial %v, parallel %v)", speedup, serialWall, parWall)
	}
}
