package parallel_test

import (
	"testing"

	"cij/internal/dataset"
	"cij/internal/parallel"
	"cij/internal/rtree"
	"cij/internal/voronoi"
)

// leafSequence is the reference: the Q-leaf batches in Hilbert order.
func leafSequence(rq *rtree.Tree) [][]voronoi.Site {
	var batches [][]voronoi.Site
	rq.VisitLeavesHilbert(dataset.Domain, func(leaf *rtree.Node) {
		batches = append(batches, voronoi.SitesOfLeaf(leaf))
	})
	return batches
}

// checkCover verifies the partition invariants: units concatenate back to
// the exact Hilbert leaf sequence (contiguous, disjoint, complete, in
// order), unit count respects the cap, and Points totals are consistent.
func checkCover(t *testing.T, units []parallel.Unit, want [][]voronoi.Site, maxUnits int) {
	t.Helper()
	if len(units) > maxUnits {
		t.Fatalf("%d units exceeds cap %d", len(units), maxUnits)
	}
	var got [][]voronoi.Site
	for i, u := range units {
		if u.Index != i {
			t.Errorf("unit %d has Index %d", i, u.Index)
		}
		if len(u.Batches) == 0 {
			t.Errorf("unit %d is empty", i)
		}
		points := 0
		for _, b := range u.Batches {
			points += len(b)
		}
		if points != u.Points {
			t.Errorf("unit %d: Points=%d but batches hold %d", i, u.Points, points)
		}
		got = append(got, u.Batches...)
	}
	if len(got) != len(want) {
		t.Fatalf("units cover %d batches, tree has %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("batch %d has %d sites, want %d (order broken?)", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j].ID != want[i][j].ID {
				t.Fatalf("batch %d site %d: ID %d, want %d", i, j, got[i][j].ID, want[i][j].ID)
			}
		}
	}
}

func TestPartitionCoversLeaves(t *testing.T) {
	for _, balanced := range []bool{false, true} {
		for _, maxUnits := range []int{1, 2, 3, 7, 16, 1000} {
			_, rq := buildTrees(t, dataset.Uniform(50, 71), dataset.Clustered(800, 6, 72), 16)
			want := leafSequence(rq)
			units := parallel.PartitionLeaves(rq, dataset.Domain, maxUnits, balanced)
			checkCover(t, units, want, maxUnits)
		}
	}
}

func TestPartitionEmptyTree(t *testing.T) {
	_, rq := buildTrees(t, dataset.Uniform(50, 73), nil, 8)
	if units := parallel.PartitionLeaves(rq, dataset.Domain, 4, true); len(units) != 0 {
		t.Fatalf("empty tree produced %d units", len(units))
	}
}

// TestPartitionBalanced: on clustered data, cost-balanced units must
// spread the points more evenly than a pathological split — no unit may
// exceed twice the ideal share (the greedy fill overshoots by at most one
// leaf, and a leaf holds far fewer points than a unit's share here).
func TestPartitionBalanced(t *testing.T) {
	_, rq := buildTrees(t, dataset.Uniform(50, 74), dataset.Clustered(2000, 5, 75), 16)
	const maxUnits = 8
	units := parallel.PartitionLeaves(rq, dataset.Domain, maxUnits, true)
	total := 0
	for _, u := range units {
		total += u.Points
	}
	ideal := float64(total) / float64(len(units))
	for _, u := range units {
		if float64(u.Points) > 2*ideal && len(u.Batches) > 1 {
			t.Errorf("unit %d carries %d points, over 2x the ideal share %.0f", u.Index, u.Points, ideal)
		}
	}
}
