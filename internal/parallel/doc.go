// Package parallel is the partition-parallel execution engine for the
// common influence join: it runs NM-CIJ (Algorithm 6) across a pool of
// workers while producing exactly the pair set of the serial algorithm.
//
// NM-CIJ's batch structure makes it embarrassingly parallel: each Q-leaf
// batch is filtered and refined against the R-tree of P independently of
// every other batch, and distinct leaves index disjoint points of Q, so
// no two batches can emit the same pair — partitioned execution needs no
// deduplication. The only cross-batch state of the serial algorithm, the
// Voronoi-cell reuse buffer of Section IV-B, is a pure cache of exact
// cells; keeping one per worker changes how many cells are recomputed,
// never which pairs are found.
//
// The engine has three stages:
//
//   - A partitioner (PartitionLeaves) traverses the Q-tree once and
//     splits its Hilbert-ordered leaf sequence into contiguous work
//     units. Contiguity preserves the spatial locality that feeds each
//     worker's reuse buffer; the optional cost-balanced mode sizes units
//     by leaf entry counts instead of leaf counts, which evens out
//     skewed (clustered) datasets.
//   - A worker pool where each worker pulls units from a shared queue and
//     runs the NM-CIJ conditional-filter + refinement pipeline
//     (core.BatchPipeline) against the shared read-only trees. Workers
//     read through private storage.Buffer forks via rtree tree views, so
//     the hot path takes no locks; per-worker Stats account I/O exactly.
//   - A streaming merge that fans the workers' pair streams into a single
//     OnPair output on the caller's goroutine and folds per-worker I/O
//     and filter counters into one core.Stats. Pairs flow out while
//     workers are still joining, preserving the non-blocking
//     progressive-output property of Fig. 9b.
//
// Prefer Join over core.NMCIJ when wall-clock latency matters and more
// than one core is available; stay with the serial algorithm for the
// paper's I/O experiments (it reproduces the exact single-buffer page
// counts) or when the caller needs pairs in the serial emission order.
package parallel
