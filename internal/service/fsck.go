package service

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"

	"cij/internal/storage"
)

// FsckDataset is one dataset's verification summary.
type FsckDataset struct {
	Name     string `json:"name"`
	Version  int    `json:"version"`
	File     string `json:"file"`
	Pages    int    `json:"pages"`
	PageSize int    `json:"page_size"`
	Points   int    `json:"points"`
}

// FsckReport is the offline consistency check of a data directory:
// everything it found, with Problems collecting whatever is wrong (empty
// means the directory would recover cleanly).
type FsckReport struct {
	Fresh         bool          `json:"fresh"`
	CleanShutdown bool          `json:"clean_shutdown"`
	Datasets      []FsckDataset `json:"datasets"`
	WALRecords    int           `json:"wal_records"`
	WALReplayable int           `json:"wal_replayable"`
	WALStale      int           `json:"wal_stale"`
	WALCorrupt    int           `json:"wal_corrupt"`
	WALTornTail   bool          `json:"wal_torn_tail"`
	Orphans       []string      `json:"orphans,omitempty"`
	Problems      []string      `json:"problems,omitempty"`
}

// OK reports whether the directory is consistent.
func (r *FsckReport) OK() bool { return len(r.Problems) == 0 }

func (r *FsckReport) problemf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Fsck verifies a data directory offline, without opening it for
// writing: the manifest decodes, every referenced snapshot passes its
// page checksums and rebuilds a structurally valid tree, and the WAL
// scans into records that replay contiguously onto the snapshot
// versions. cijtool's `fsck` subcommand prints the report.
func Fsck(fsys storage.FS, dir string) (*FsckReport, error) {
	r := &FsckReport{}
	data, err := storage.ReadFileAll(fsys, filepath.Join(dir, manifestName))
	if storage.IsNotExist(err) {
		r.Fresh = true
		r.CleanShutdown = true
		return r, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: reading manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		r.problemf("manifest does not decode: %v", err)
		return r, nil
	}
	if man.Format != manifestFormat {
		r.problemf("manifest format %d, this build reads %d", man.Format, manifestFormat)
		return r, nil
	}
	r.CleanShutdown = man.CleanShutdown

	versions := make(map[string]int, len(man.Datasets))
	referenced := make(map[string]bool, len(man.Datasets))
	for _, md := range man.Datasets {
		referenced[md.File] = true
		fd := FsckDataset{Name: md.Name, Version: md.Version, File: md.File}
		path := filepath.Join(dir, md.File)
		pages, pageSize, err := storage.VerifyDiskFile(fsys, path)
		if err != nil {
			r.problemf("%s: %v", md.Name, err)
			r.Datasets = append(r.Datasets, fd)
			continue
		}
		fd.Pages, fd.PageSize = pages, pageSize
		// The deep check: the snapshot must rebuild into a serving
		// dataset, exactly as recovery would.
		d, err := restoreDataset(fsys, path, md, 0)
		if err != nil {
			r.problemf("%s: %v", md.Name, err)
			r.Datasets = append(r.Datasets, fd)
			continue
		}
		fd.Points = d.Live
		versions[md.Name] = md.Version
		r.Datasets = append(r.Datasets, fd)
	}

	scan, err := storage.ScanWAL(fsys, filepath.Join(dir, walName))
	if err != nil {
		r.problemf("WAL: %v", err)
		return r, nil
	}
	r.WALRecords = len(scan.Records)
	r.WALCorrupt = scan.CorruptRecords
	r.WALTornTail = scan.TornTail
	for i, raw := range scan.Records {
		var rec walRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			r.problemf("WAL record %d does not decode: %v", i, err)
			break
		}
		v, known := versions[rec.Name]
		switch {
		case !known, rec.Result <= v:
			r.WALStale++
		case rec.Base == v:
			versions[rec.Name] = rec.Result
			r.WALReplayable++
		default:
			r.problemf("WAL record %d: %q jumps from version %d to %d (snapshot holds %d)",
				i, rec.Name, rec.Base, rec.Result, v)
		}
	}

	// Unreferenced page files are expected flotsam of a crash between a
	// snapshot write and its manifest (or a failed cleanup) — reported,
	// not a problem.
	names, err := fsys.List(dir)
	if err == nil {
		for _, n := range names {
			if strings.HasSuffix(n, ".pages") && !referenced[n] {
				r.Orphans = append(r.Orphans, n)
			}
		}
	}
	return r, nil
}
