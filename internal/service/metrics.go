package service

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"cij/internal/obs"
	"cij/internal/storage"
)

// serviceMetrics is the service's metric bundle: every family registered
// once at construction, mutated from the hot paths through atomic
// counters only. Cache and registry figures are func-backed — scraped
// from the structures that already maintain them rather than counted
// twice.
type serviceMetrics struct {
	reg *obs.Registry

	httpRequests *obs.CounterVec   // cij_http_requests_total{route,code}
	httpLatency  *obs.HistogramVec // cij_http_request_seconds{route}

	joins          *obs.CounterVec   // cij_joins_total{algo,source}
	joinLatency    *obs.HistogramVec // cij_join_seconds{algo}
	planner        *obs.CounterVec   // cij_planner_decisions_total{algo}
	plannerStorage *obs.CounterVec   // cij_planner_storage_total{storage}
	slowQueries    *obs.Counter
	logicalReads   *obs.Counter
	pagesRead      *obs.Counter
	pagesWritten   *obs.Counter
	decodeHits     *obs.Counter
	decodeMisses   *obs.Counter
	flatReads      *obs.Counter // cij_flat_reads_total
	evictions      *obs.Counter

	admissionWait    *obs.Histogram // cij_admission_wait_seconds
	admissionWaiting *obs.Gauge     // requests currently queued for a slot

	cacheHits   *obs.Counter // cij_cache_hits_total (monotone, cache-fed)
	cacheMisses *obs.Counter // cij_cache_misses_total

	panics       *obs.Counter    // cij_panics_total
	mutations    *obs.CounterVec // cij_mutations_total{op}
	deltaRuns    *obs.Counter    // cij_delta_runs_total
	deltaLatency *obs.Histogram  // cij_delta_seconds
	churnEvents  *obs.CounterVec // cij_pair_churn_total{kind}
	subLagged    *obs.Counter    // cij_subscribers_lagged_total

	walAppends       *obs.Counter   // cij_wal_appends_total
	walFsync         *obs.Histogram // cij_wal_fsync_seconds
	walCorrupt       *obs.Counter   // cij_wal_corrupt_records_total
	checkpoints      *obs.Counter   // cij_checkpoints_total
	recoveryClean    *obs.Gauge     // cij_recovery_clean_shutdown
	recoveryReplayed *obs.Counter   // cij_recovery_records_replayed_total
	recoveryStale    *obs.Counter   // cij_recovery_records_stale_total
}

// newServiceMetrics registers the service's metric families on a fresh
// obs registry and wires the func-backed families to s's live state.
func newServiceMetrics(s *Service) *serviceMetrics {
	reg := obs.NewRegistry()
	m := &serviceMetrics{
		reg: reg,
		httpRequests: reg.CounterVec("cij_http_requests_total",
			"HTTP requests by route and status code.", "route", "code"),
		httpLatency: reg.HistogramVec("cij_http_request_seconds",
			"HTTP request latency by route.", nil, "route"),
		joins: reg.CounterVec("cij_joins_total",
			"Joins served, by executed algorithm and source (computed or cached).", "algo", "source"),
		joinLatency: reg.HistogramVec("cij_join_seconds",
			"Join computation latency by algorithm (computed joins only).", nil, "algo"),
		planner: reg.CounterVec("cij_planner_decisions_total",
			"Planner outcomes by chosen algorithm.", "algo"),
		plannerStorage: reg.CounterVec("cij_planner_storage_total",
			"Planner outcomes by chosen storage mode (flat, paged; none for the storage-less grid backend).", "storage"),
		slowQueries: reg.Counter("cij_slow_queries_total",
			"Joins slower than the configured slow-query threshold."),
		logicalReads: reg.Counter("cij_logical_reads_total",
			"Node accesses (buffer hits included) summed over computed joins."),
		pagesRead: reg.Counter("cij_pages_read_total",
			"Physical page reads summed over computed joins."),
		pagesWritten: reg.Counter("cij_pages_written_total",
			"Physical page writes summed over computed joins."),
		decodeHits: reg.Counter("cij_decode_hits_total",
			"Decoded-node cache hits summed over computed joins."),
		decodeMisses: reg.Counter("cij_decode_misses_total",
			"Decoded-node cache misses summed over computed joins."),
		flatReads: reg.Counter("cij_flat_reads_total",
			"Arena node accesses of flat-storage joins (decode-free reads; never counted as page I/O)."),
		evictions: reg.Counter("cij_buffer_evictions_total",
			"Pages evicted from per-request LRU buffer views (worker forks included)."),
		admissionWait: reg.Histogram("cij_admission_wait_seconds",
			"Time joins spent queued for an admission slot.", nil),
		admissionWaiting: reg.Gauge("cij_admission_waiting",
			"Joins currently queued for an admission slot."),
		panics: reg.Counter("cij_panics_total",
			"Handler panics recovered by the HTTP middleware (each also answers 500)."),
		mutations: reg.CounterVec("cij_mutations_total",
			"Point-level dataset changes applied, by operation.", "op"),
		deltaRuns: reg.Counter("cij_delta_runs_total",
			"Incremental join maintenance runs (one per live subscription pair per mutation)."),
		deltaLatency: reg.Histogram("cij_delta_seconds",
			"Incremental maintenance latency per delta run.", nil),
		churnEvents: reg.CounterVec("cij_pair_churn_total",
			"Join pairs appearing (add) and disappearing (remove) across delta runs.", "kind"),
		subLagged: reg.Counter("cij_subscribers_lagged_total",
			"Subscriptions dropped because the client fell behind the event stream."),
		walAppends: reg.Counter("cij_wal_appends_total",
			"Mutation batches appended (and fsync'd) to the write-ahead log."),
		walFsync: reg.Histogram("cij_wal_fsync_seconds",
			"WAL fsync latency per committed mutation batch.", nil),
		walCorrupt: reg.Counter("cij_wal_corrupt_records_total",
			"WAL records dropped at recovery for checksum or framing corruption."),
		checkpoints: reg.Counter("cij_checkpoints_total",
			"Checkpoints that folded the WAL into dataset snapshots."),
		recoveryClean: reg.Gauge("cij_recovery_clean_shutdown",
			"Whether the previous shutdown was clean (1) or recovery replayed a crash (0); unset without a data dir."),
		recoveryReplayed: reg.Counter("cij_recovery_records_replayed_total",
			"WAL records applied during cold-start recovery."),
		recoveryStale: reg.Counter("cij_recovery_records_stale_total",
			"WAL records skipped as stale during cold-start recovery (already folded into a snapshot)."),
	}

	// Hits and misses are real monotone counters (not func-backed views):
	// the history ring computes hit-ratio over arbitrary windows from
	// counter deltas, which requires the series to exist as stored,
	// atomically ticking samples.
	m.cacheHits = reg.Counter("cij_cache_hits_total",
		"Result-cache hits.")
	m.cacheMisses = reg.Counter("cij_cache_misses_total",
		"Result-cache misses.")
	s.cache.setCounters(m.cacheHits, m.cacheMisses)

	reg.GaugeVec("cij_build_info",
		"Build attribution of this binary; constant 1, the payload is the labels.",
		"go_version", "module_version", "vcs_revision").
		With(buildInfo().GoVersion, buildInfo().ModuleVersion, buildInfo().Revision).Set(1)

	reg.CounterFunc("cij_result_cache_evictions_total",
		"Results evicted from the cache.", func() float64 {
			_, _, evicted, _ := s.cache.counters()
			return float64(evicted)
		})
	reg.GaugeFunc("cij_result_cache_entries",
		"Results currently cached.", func() float64 {
			_, _, _, entries := s.cache.counters()
			return float64(entries)
		})
	reg.CounterFunc("cij_ingests_total",
		"Dataset ingests.", func() float64 { return float64(s.ingests.Load()) })
	reg.GaugeFunc("cij_datasets",
		"Datasets currently registered.", func() float64 { return float64(len(s.reg.List())) })
	reg.GaugeFunc("cij_joins_in_flight",
		"Joins currently holding an admission slot.", func() float64 { return float64(s.InFlight()) })
	reg.GaugeFunc("cij_subscribers",
		"Open /join/subscribe event streams.", func() float64 { return float64(s.hub.count()) })
	reg.GaugeFunc("cij_wal_bytes",
		"Byte length of the write-ahead log (0 without a data dir).", func() float64 {
			if st := s.store.Load(); st != nil {
				return float64(st.wal.Size())
			}
			return 0
		})
	return m
}

// recordJoinIO folds one computed join's I/O aggregate into the exported
// counters — the same storage.Stats the response reports, so the /metrics
// deltas reconcile with per-query stats exactly. A flat-storage run's
// node accesses additionally feed cij_flat_reads_total; its page and
// decode-miss counters are structurally zero, so the shared families stay
// truthful in both modes.
func (m *serviceMetrics) recordJoinIO(io storage.Stats, storageMode string) {
	m.logicalReads.Add(io.LogicalReads)
	m.pagesRead.Add(io.PageReads)
	m.pagesWritten.Add(io.PageWrites)
	m.decodeHits.Add(io.DecodeHits)
	m.decodeMisses.Add(io.DecodeMisses)
	if storageMode == "flat" {
		m.flatReads.Add(io.LogicalReads)
	}
}

// onEvict is the buffer eviction hook installed on per-request views and
// scratch environments. Worker forks inherit it (storage.Buffer.Fork), so
// it runs concurrently; obs.Counter is atomic.
func (m *serviceMetrics) onEvict(storage.PageID, any) { m.evictions.Inc() }

// statusWriter captures the response status for request metrics/logs. It
// forwards Flush so the NDJSON stream handler's progressive writes keep
// working through the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps one route with panic recovery, request counting,
// latency observation and structured request logging. Routes are labeled
// explicitly (not from the request path) so the label space stays
// bounded.
//
// Recovery runs innermost so a panicking handler still produces a
// response, a request log line and correctly-labeled metrics instead of
// tearing down the connection with nothing on the books. If the handler
// had not committed a status yet the client gets a JSON 500; mid-stream
// panics can only truncate the (already committed) body, which is the
// NDJSON failure contract anyway. http.ErrAbortHandler passes through —
// it is net/http's sanctioned way to abort and suppressing it would turn
// deliberate aborts into 500s.
func (s *Service) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		func() {
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.metrics.panics.Inc()
				s.logger.Error("handler panic",
					"route", route,
					"path", r.URL.Path,
					"panic", fmt.Sprint(rec),
					"stack", string(debug.Stack()),
				)
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, "internal error (panic recovered: %v)", rec)
				}
			}()
			h(sw, r)
		}()
		elapsed := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.metrics.httpRequests.With(route, strconv.Itoa(sw.status)).Inc()
		s.metrics.httpLatency.With(route).Observe(elapsed.Seconds())
		s.logger.Info("request",
			"route", route,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_ms", float64(elapsed)/float64(time.Millisecond),
		)
	}
}
