package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cij/internal/dataset"
	"cij/internal/obs"
	"cij/internal/service"
)

// scrapeMetrics GETs /metrics, checks the exposition content type, and
// parses every sample line into name{labels} -> value.
func scrapeMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET /metrics content type %q lacks exposition version", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[idx+1:], "%g", &v); err != nil {
			t.Fatalf("unparseable value in metrics line %q: %v", line, err)
		}
		out[line[:idx]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// sumTrace folds a response trace block's spans into one counter total.
func sumTrace(tr *service.TraceJSON) obs.Counters {
	var total obs.Counters
	for _, sp := range tr.Spans {
		total = total.Add(sp.Counters)
	}
	return total
}

// TestTraceSumsToResponseStats is the acceptance criterion end to end: for
// every algorithm, the per-phase I/O deltas in the response's trace block
// sum exactly to the aggregate Stats of the same response.
func TestTraceSumsToResponseStats(t *testing.T) {
	p, q := dataset.Uniform(800, 101), dataset.Clustered(800, 8, 102)
	_, ts := newTestServer(t, service.Config{CacheEntries: -1}, p, q)

	for _, algo := range []string{"nm", "pm", "fm", "parallel", "grid"} {
		// Pin the tree algorithms to paged storage: this test asserts the
		// paper's page-I/O accounting, which flat (auto's pick) zeroes out.
		storage := "paged"
		if algo == "grid" {
			storage = ""
		}
		jr := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: algo, Storage: storage, Workers: 2, Trace: true, TopK: 1})
		if jr.Trace == nil || len(jr.Trace.Spans) == 0 {
			t.Fatalf("%s: trace requested but response has no trace block", algo)
		}
		total := sumTrace(jr.Trace)
		if total.PagesRead != jr.Stats.PagesRead ||
			total.PagesWritten != jr.Stats.PagesWritten ||
			total.LogicalReads != jr.Stats.LogicalReads ||
			total.DecodeHits != jr.Stats.DecodeHits ||
			total.DecodeMisses != jr.Stats.DecodeMisses {
			t.Fatalf("%s: trace totals %+v do not reconcile with response stats %+v", algo, total, jr.Stats)
		}
		if algo == "grid" && jr.Stats.PageAccesses != 0 {
			t.Fatalf("grid reported %d page accesses", jr.Stats.PageAccesses)
		}
		if algo != "grid" && jr.Stats.PageAccesses == 0 {
			t.Fatalf("%s reported zero page accesses", algo)
		}
	}
}

// TestTraceSumsToResponseStatsFlat is the flat-storage companion: the
// trace spans still partition the run's aggregate exactly, but the run is
// decode-free — zero page accesses, zero decode misses, every node access
// a decode hit.
func TestTraceSumsToResponseStatsFlat(t *testing.T) {
	p, q := dataset.Uniform(800, 101), dataset.Clustered(800, 8, 102)
	_, ts := newTestServer(t, service.Config{CacheEntries: -1}, p, q)

	for _, algo := range []string{"nm", "parallel"} {
		jr := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: algo, Storage: "flat", Workers: 2, Trace: true, TopK: 1})
		if jr.Storage != "flat" {
			t.Fatalf("%s: response storage %q, want flat", algo, jr.Storage)
		}
		if jr.Trace == nil || len(jr.Trace.Spans) == 0 {
			t.Fatalf("%s: trace requested but response has no trace block", algo)
		}
		total := sumTrace(jr.Trace)
		if total.LogicalReads != jr.Stats.LogicalReads || total.DecodeHits != jr.Stats.DecodeHits {
			t.Fatalf("%s: trace totals %+v do not reconcile with response stats %+v", algo, total, jr.Stats)
		}
		if jr.Stats.PageAccesses != 0 || jr.Stats.DecodeMisses != 0 {
			t.Fatalf("%s flat run reported page I/O: %+v", algo, jr.Stats)
		}
		if jr.Stats.LogicalReads == 0 || jr.Stats.DecodeHits != jr.Stats.LogicalReads {
			t.Fatalf("%s flat run's reads are not all decode-free hits: %+v", algo, jr.Stats)
		}
	}
}

// TestTraceOnlyWhenRequested: an untraced request gets no trace block,
// even though the computation may have been traced for the slow-query log.
func TestTraceOnlyWhenRequested(t *testing.T) {
	p, q := dataset.Uniform(300, 111), dataset.Uniform(300, 112)
	_, ts := newTestServer(t, service.Config{SlowQuery: time.Hour}, p, q)
	jr := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"})
	if jr.Trace != nil {
		t.Fatal("untraced request returned a trace block")
	}
}

// TestTraceCachedReplay: a cache hit replays the original traced run's
// spans (and still reports zero I/O in the aggregate stats).
func TestTraceCachedReplay(t *testing.T) {
	p, q := dataset.Uniform(300, 121), dataset.Uniform(300, 122)
	_, ts := newTestServer(t, service.Config{}, p, q)
	first := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm", Trace: true})
	second := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm", Trace: true})
	if !second.Cached {
		t.Fatal("second identical join not cached")
	}
	if second.Trace == nil || len(second.Trace.Spans) != len(first.Trace.Spans) {
		t.Fatalf("cached replay trace %+v does not match original %+v", second.Trace, first.Trace)
	}
	if second.Stats.PageAccesses != 0 || second.Stats.PagesRead != 0 {
		t.Fatalf("cached join reported I/O: %+v", second.Stats)
	}
}

// TestStreamTraceLine: &trace=1 emits one {"type":"trace"} NDJSON line
// before the summary, whose spans reconcile with the summary stats.
func TestStreamTraceLine(t *testing.T) {
	p, q := dataset.Uniform(400, 131), dataset.Uniform(400, 132)
	_, ts := newTestServer(t, service.Config{CacheEntries: -1}, p, q)

	resp, err := http.Get(ts.URL + "/join/stream?left=p&right=q&algo=nm&trace=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var trace *service.StreamTrace
	var summary *service.StreamSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch probe.Type {
		case "trace":
			if summary != nil {
				t.Fatal("trace line after summary")
			}
			trace = new(service.StreamTrace)
			if err := json.Unmarshal(sc.Bytes(), trace); err != nil {
				t.Fatal(err)
			}
		case "summary":
			summary = new(service.StreamSummary)
			if err := json.Unmarshal(sc.Bytes(), summary); err != nil {
				t.Fatal(err)
			}
		}
	}
	if trace == nil || summary == nil {
		t.Fatalf("stream missing trace (%v) or summary (%v) line", trace != nil, summary != nil)
	}
	total := sumTrace(&trace.TraceJSON)
	if total.PagesRead != summary.Stats.PagesRead || total.DecodeHits != summary.Stats.DecodeHits {
		t.Fatalf("stream trace totals %+v do not reconcile with summary stats %+v", total, summary.Stats)
	}
}

// TestMetricsMatchJoinStats is the metric-correctness criterion: the
// /metrics deltas moved by one computed join equal the same join's
// response stats exactly, the latency histograms and request counters
// tick, and the eviction counter reflects buffer pressure.
func TestMetricsMatchJoinStats(t *testing.T) {
	p, q := dataset.Uniform(2000, 141), dataset.Uniform(2000, 142)
	_, ts := newTestServer(t, service.Config{}, p, q)

	// Paged storage, explicitly: the eviction assertion below needs the
	// LRU buffer path that flat storage bypasses.
	before := scrapeMetrics(t, ts.URL)
	jr := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm", Storage: "paged", TopK: 1})
	after := scrapeMetrics(t, ts.URL)
	delta := func(key string) int64 { return int64(after[key] - before[key]) }

	if got := delta(`cij_pages_read_total`); got != jr.Stats.PagesRead {
		t.Fatalf("cij_pages_read_total moved %d, response says %d", got, jr.Stats.PagesRead)
	}
	if got := delta(`cij_logical_reads_total`); got != jr.Stats.LogicalReads {
		t.Fatalf("cij_logical_reads_total moved %d, response says %d", got, jr.Stats.LogicalReads)
	}
	if got := delta(`cij_decode_hits_total`); got != jr.Stats.DecodeHits {
		t.Fatalf("cij_decode_hits_total moved %d, response says %d", got, jr.Stats.DecodeHits)
	}
	if got := delta(`cij_decode_misses_total`); got != jr.Stats.DecodeMisses {
		t.Fatalf("cij_decode_misses_total moved %d, response says %d", got, jr.Stats.DecodeMisses)
	}
	if got := delta(`cij_joins_total{algo="nm",source="computed"}`); got != 1 {
		t.Fatalf("computed-join counter moved %d, want 1", got)
	}
	if got := delta(`cij_join_seconds_count{algo="nm"}`); got != 1 {
		t.Fatalf("join latency histogram count moved %d, want 1", got)
	}
	if got := delta(`cij_http_requests_total{route="join",code="200"}`); got != 1 {
		t.Fatalf("http request counter moved %d, want 1", got)
	}
	if got := delta(`cij_http_request_seconds_count{route="join"}`); got != 1 {
		t.Fatalf("http latency histogram count moved %d, want 1", got)
	}
	// 2000-point trees behind a 2% buffer cannot stay resident: the view
	// buffers must have evicted.
	if got := delta(`cij_buffer_evictions_total`); got <= 0 {
		t.Fatalf("eviction counter moved %d, want > 0", got)
	}

	// A cache hit counts as served-from-cache and moves no I/O counter.
	mid := after
	second := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm", Storage: "paged", TopK: 1})
	if !second.Cached {
		t.Fatal("second identical join not cached")
	}
	final := scrapeMetrics(t, ts.URL)
	if got := final[`cij_joins_total{algo="nm",source="cached"}`] - mid[`cij_joins_total{algo="nm",source="cached"}`]; got != 1 {
		t.Fatalf("cached-join counter moved %g, want 1", got)
	}
	if got := final[`cij_pages_read_total`] - mid[`cij_pages_read_total`]; got != 0 {
		t.Fatalf("cache hit moved cij_pages_read_total by %g", got)
	}
}

// TestMetricsMatchFlatJoin: a flat-storage join moves the flat-read and
// planner-storage families, keeps every page family still, and its
// /metrics deltas reconcile with the response stats just like paged runs.
func TestMetricsMatchFlatJoin(t *testing.T) {
	p, q := dataset.Uniform(2000, 141), dataset.Uniform(2000, 142)
	svc, ts := newTestServer(t, service.Config{}, p, q)

	before := scrapeMetrics(t, ts.URL)
	jr := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm", TopK: 1}) // auto storage -> flat
	after := scrapeMetrics(t, ts.URL)
	delta := func(key string) int64 { return int64(after[key] - before[key]) }

	if jr.Storage != "flat" {
		t.Fatalf("auto storage picked %q, want flat", jr.Storage)
	}
	if jr.Stats.PageAccesses != 0 || jr.Stats.DecodeMisses != 0 {
		t.Fatalf("flat join reported page I/O: %+v", jr.Stats)
	}
	if got := delta(`cij_flat_reads_total`); got != jr.Stats.LogicalReads || got == 0 {
		t.Fatalf("cij_flat_reads_total moved %d, response says %d logical reads", got, jr.Stats.LogicalReads)
	}
	if got := delta(`cij_logical_reads_total`); got != jr.Stats.LogicalReads {
		t.Fatalf("cij_logical_reads_total moved %d, response says %d", got, jr.Stats.LogicalReads)
	}
	if got := delta(`cij_decode_hits_total`); got != jr.Stats.LogicalReads {
		t.Fatalf("cij_decode_hits_total moved %d, want every flat read a hit (%d)", got, jr.Stats.LogicalReads)
	}
	for _, family := range []string{`cij_pages_read_total`, `cij_pages_written_total`, `cij_decode_misses_total`, `cij_buffer_evictions_total`} {
		if got := delta(family); got != 0 {
			t.Fatalf("flat join moved %s by %d, want 0", family, got)
		}
	}
	if got := delta(`cij_planner_storage_total{storage="flat"}`); got != 1 {
		t.Fatalf(`cij_planner_storage_total{storage="flat"} moved %d, want 1`, got)
	}
	if got := svc.StatsSnapshot().JoinsFlat; got != 1 {
		t.Fatalf("/stats joins_flat = %d, want 1", got)
	}
}

// TestMetricsFuncFamilies: the func-backed cache/registry families scrape
// the live structures.
func TestMetricsFuncFamilies(t *testing.T) {
	p, q := dataset.Uniform(300, 151), dataset.Uniform(300, 152)
	_, ts := newTestServer(t, service.Config{}, p, q)
	postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"})
	postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"})
	m := scrapeMetrics(t, ts.URL)
	if m[`cij_datasets`] != 2 {
		t.Fatalf("cij_datasets = %g, want 2", m[`cij_datasets`])
	}
	if m[`cij_ingests_total`] != 2 {
		t.Fatalf("cij_ingests_total = %g, want 2", m[`cij_ingests_total`])
	}
	if m[`cij_cache_hits_total`] != 1 {
		t.Fatalf("cij_cache_hits_total = %g, want 1", m[`cij_cache_hits_total`])
	}
	if m[`cij_cache_misses_total`] != 1 {
		t.Fatalf("cij_cache_misses_total = %g, want 1", m[`cij_cache_misses_total`])
	}
	if m[`cij_result_cache_entries`] != 1 {
		t.Fatalf("cij_result_cache_entries = %g, want 1", m[`cij_result_cache_entries`])
	}
	if m[`cij_planner_decisions_total{algo="nm"}`] != 2 {
		t.Fatalf("planner decision counter = %g, want 2", m[`cij_planner_decisions_total{algo="nm"}`])
	}
}

// TestExplainDoesNotExecute: POST /join?explain=1 returns the plan, a
// reason and the decision inputs without computing anything.
func TestExplainDoesNotExecute(t *testing.T) {
	p, q := dataset.Uniform(200, 161), dataset.Uniform(200, 162)
	svc, ts := newTestServer(t, service.Config{}, p, q)

	post := func(req service.JoinRequest) service.Explanation {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/join?explain=1", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("explain: status %d", resp.StatusCode)
		}
		var ex service.Explanation
		if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil {
			t.Fatal(err)
		}
		return ex
	}

	ex := post(service.JoinRequest{Left: "p", Right: "q"})
	if ex.Plan.Algo != "grid" {
		t.Fatalf("explain auto plan = %q, want grid (small uniform join)", ex.Plan.Algo)
	}
	if ex.Reason == "" {
		t.Fatal("explain returned no reason")
	}
	if ex.Inputs.TotalPoints != 400 || ex.Inputs.GridSkewMax == 0 {
		t.Fatalf("explain inputs = %+v", ex.Inputs)
	}

	ex = post(service.JoinRequest{Left: "p", Right: "q", Workers: 2})
	if ex.Plan.Algo != "parallel" {
		t.Fatalf("explain with workers=2 = %q, want parallel", ex.Plan.Algo)
	}

	if got := svc.StatsSnapshot().JoinsComputed; got != 0 {
		t.Fatalf("explain executed %d joins", got)
	}

	// Unknown datasets and unknown algorithms are still the client's fault.
	for _, bad := range []service.JoinRequest{
		{Left: "p", Right: "ghost"},
		{Left: "p", Right: "q", Algo: "quantum"},
	} {
		body, _ := json.Marshal(bad)
		resp, err := http.Post(ts.URL+"/join?explain=1", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("explain %+v: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// syncBuffer makes a bytes.Buffer safe to read while the server's handler
// goroutines may still be logging into it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowQueryLog: with the threshold armed at 1ns every computed join is
// slow; the structured log must carry a "slow query" record with the full
// phase trace, and the slow-query counter must move.
func TestSlowQueryLog(t *testing.T) {
	p, q := dataset.Uniform(300, 171), dataset.Uniform(300, 172)
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, service.Config{Logger: logger, SlowQuery: time.Nanosecond}, p, q)

	postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"})

	out := buf.String()
	var slow map[string]any
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, `"slow query"`) {
			continue
		}
		if err := json.Unmarshal([]byte(line), &slow); err != nil {
			t.Fatalf("unparseable slow-query log line %q: %v", line, err)
		}
	}
	if slow == nil {
		t.Fatalf("no slow-query record in log output:\n%s", out)
	}
	trace, ok := slow["trace"].([]any)
	if !ok || len(trace) == 0 {
		t.Fatalf("slow-query record carries no phase trace: %v", slow)
	}
	m := scrapeMetrics(t, ts.URL)
	if m[`cij_slow_queries_total`] != 1 {
		t.Fatalf("cij_slow_queries_total = %g, want 1", m[`cij_slow_queries_total`])
	}
}

// TestRequestLog: every instrumented route writes a structured request
// record with its fixed route label.
func TestRequestLog(t *testing.T) {
	p, q := dataset.Uniform(200, 181), dataset.Uniform(200, 182)
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, service.Config{Logger: logger}, p, q)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(buf.String(), `"route":"stats"`) {
		// The request log is written after the handler returns, so the
		// client can observe the response first; poll briefly.
		if time.Now().After(deadline) {
			t.Fatalf("no request record for /stats in log output:\n%s", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
