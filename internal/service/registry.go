package service

import (
	"errors"
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"

	"cij/internal/dataset"
	"cij/internal/delta"
	"cij/internal/geom"
	"cij/internal/grid"
	"cij/internal/rtree"
	"cij/internal/storage"
)

// Point aliases geom.Point so service callers (cmd/cijserver, the load
// generator) can ingest without importing internal/geom themselves.
type Point = geom.Point

// nameRe restricts dataset names to a safe token: they are embedded in
// cache keys and URLs.
var nameRe = regexp.MustCompile(`^[A-Za-z0-9_.-]{1,64}$`)

// Dataset is one registered pointset: the points, the R-tree built over
// them at ingest time, and the private disk+buffer the tree lives on. A
// Dataset is immutable after construction — replacing a name installs a
// new Dataset value (re-ingest) or a copy-on-write successor (Mutate) —
// so any number of queries may hold and read one concurrently through
// forked buffer views, even while the next version is being built.
type Dataset struct {
	Name    string
	Version int
	// Points maps point IDs (the IDs join pairs carry) to positions. The
	// slice is append-only across versions: deleting a point tombstones
	// its slot (Alive) rather than renumbering, so IDs stay stable for
	// subscribers diffing pair churn across versions.
	Points []geom.Point
	// Alive, when non-nil, flags which Points entries are live; nil means
	// every entry is (a dataset that has never seen a delete).
	Alive []bool
	// Live is the number of live points (== len(Points) when Alive is
	// nil). Planner cardinality gates and wire point counts read it.
	Live int
	Tree *rtree.Tree
	// FlatTree is the arena-resident (flat) copy of Tree, frozen once at
	// ingest: structurally identical, decode-free to read, zero page I/O.
	// Plans with Storage "flat" read it through FlatView.
	FlatTree *rtree.Tree
	// Pages is the tree's page count on its private disk.
	Pages int
	// BufferPages is the LRU capacity each query view forks with.
	BufferPages int
	// Skew is the dataset's spatial-skew statistic (grid.SkewEstimate,
	// ~1 for uniform data), computed once at ingest; the planner's auto
	// mode reads it to decide whether a serial join is grid-friendly.
	Skew float64
}

// View returns a read-only handle on the dataset's tree whose I/O goes
// through a fresh private buffer: per-request state, never shared, so
// concurrent queries neither race on LRU bookkeeping nor pollute each
// other's cache locality. The view's counters start at zero, which is what
// lets the executor attribute physical I/O to one request exactly.
func (d *Dataset) View() *rtree.Tree {
	return d.Tree.WithBuffer(d.Tree.Buffer().Fork(d.BufferPages))
}

// FlatView is View for the flat copy: a read handle over the shared node
// arena whose accesses are counted on a fresh private ledger fork, so
// per-request I/O attribution works identically in both storage modes.
// (The ledger caches nothing, so capacity 0 is exact, not a limitation.)
func (d *Dataset) FlatView() *rtree.Tree {
	return d.FlatTree.WithBuffer(d.FlatTree.Buffer().Fork(0))
}

// StorageView dispatches on a plan's storage choice: "flat" reads the
// arena, anything else the paged tree.
func (d *Dataset) StorageView(storage string) *rtree.Tree {
	if storage == "flat" {
		return d.FlatView()
	}
	return d.View()
}

// JoinPoints returns the live points in ID order and, when the dataset
// carries tombstones, the original ID of each returned point. ids is nil
// for never-deleted datasets, whose positions already are their IDs —
// the common case, which the point-array algorithms (grid, PM, FM) then
// consume with zero copying or remapping.
func (d *Dataset) JoinPoints() (pts []geom.Point, ids []int64) {
	if d.Alive == nil {
		return d.Points, nil
	}
	pts = make([]geom.Point, 0, d.Live)
	ids = make([]int64, 0, d.Live)
	for i, p := range d.Points {
		if d.Alive[i] {
			pts = append(pts, p)
			ids = append(ids, int64(i))
		}
	}
	return pts, ids
}

// alive reports whether id names a live point.
func (d *Dataset) alive(id int64) bool {
	if id < 0 || id >= int64(len(d.Points)) {
		return false
	}
	return d.Alive == nil || d.Alive[id]
}

// Registry is the concurrent name -> Dataset map. Versions are scoped to
// the registry, not the Dataset value: replacing a name always moves its
// version strictly forward, which is what makes version-qualified cache
// keys sound.
type Registry struct {
	bufferPct float64

	mu       sync.RWMutex
	byName   map[string]*Dataset
	versions map[string]int
}

// NewRegistry creates an empty registry whose datasets size their query
// buffers to bufferPct% of their data pages (the paper's experiments use
// 2%).
func NewRegistry(bufferPct float64) *Registry {
	if bufferPct <= 0 {
		bufferPct = 2
	}
	return &Registry{
		bufferPct: bufferPct,
		byName:    make(map[string]*Dataset),
		versions:  make(map[string]int),
	}
}

// Put indexes pts under name, replacing any previous version. The build
// happens outside the registry lock (bulk-loading a large pointset is the
// expensive part); only the install is serialized.
func (r *Registry) Put(name string, pts []geom.Point) (*Dataset, error) {
	d, err := r.PrepareIngest(name, pts)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.versions[name]++
	d.Version = r.versions[name]
	r.byName[name] = d
	r.mu.Unlock()
	return d, nil
}

// PrepareIngest validates and builds a dataset without installing it —
// the first half of Put, split out so the durable tier can snapshot the
// build to disk before any reader can see it. The returned dataset has no
// version yet; InstallIngest assigns one.
func (r *Registry) PrepareIngest(name string, pts []geom.Point) (*Dataset, error) {
	if !nameRe.MatchString(name) {
		return nil, fmt.Errorf("service: invalid dataset name %q (want %s)", name, nameRe)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("service: dataset %q has no points", name)
	}
	return buildDataset(name, pts, r.bufferPct), nil
}

// NextVersion returns the version the next install under name will
// assign. The prediction is exact only while the caller serializes
// writers (the service's mutMu does); the durable tier uses it to name
// snapshot files and WAL records before installing.
func (r *Registry) NextVersion(name string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.versions[name] + 1
}

// InstallIngest installs a prepared dataset at the given version, which
// must be the name's next one — a mismatch means another writer slipped
// in between prepare and install, and the caller's durable state (named
// by the predicted version) would not describe what got installed.
func (r *Registry) InstallIngest(d *Dataset, version int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.versions[d.Name]+1 != version {
		return fmt.Errorf("service: %w (%q: prepared as version %d, next is %d)",
			ErrMutationConflict, d.Name, version, r.versions[d.Name]+1)
	}
	r.versions[d.Name] = version
	d.Version = version
	r.byName[d.Name] = d
	return nil
}

// InstallRestored registers a dataset recovered from the durable store at
// its recorded version. Restore happens at boot into an empty (or
// strictly older) registry; a version moving backwards means the manifest
// and the registry disagree, which is corruption, not a race.
func (r *Registry) InstallRestored(d *Dataset) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d.Version <= r.versions[d.Name] {
		return fmt.Errorf("service: restored %q at version %d, but the registry is already at %d",
			d.Name, d.Version, r.versions[d.Name])
	}
	r.versions[d.Name] = d.Version
	r.byName[d.Name] = d
	return nil
}

// Get returns the current version of the named dataset.
func (r *Registry) Get(name string) (*Dataset, bool) {
	r.mu.RLock()
	d, ok := r.byName[name]
	r.mu.RUnlock()
	return d, ok
}

// List returns the current datasets sorted by name.
func (r *Registry) List() []*Dataset {
	r.mu.RLock()
	out := make([]*Dataset, 0, len(r.byName))
	for _, d := range r.byName {
		out = append(out, d)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Mutation sentinel errors; the HTTP layer maps them to statuses
// (404 unknown, 409 immutable/conflict, 400 everything else).
var (
	ErrUnknownDataset    = errors.New("unknown dataset")
	ErrDatasetImmutable  = errors.New("dataset is immutable")
	ErrMutationConflict  = errors.New("dataset replaced concurrently; retry the mutation")
	errEmptyMutation     = errors.New("empty mutation batch")
	errMutationTooLarge  = errors.New("mutation batch too large")
	errMutationEmptiesIt = errors.New("mutation would leave the dataset empty")
)

// maxMutationBatch bounds one atomic mutation; larger edits should
// re-ingest, which rebuilds by bulk load instead of per-point updates.
const maxMutationBatch = 10000

// PointMove relocates one live point to a new position.
type PointMove struct {
	ID int64
	Pt geom.Point
}

// MutationSpec is one atomic batch of point-level changes: inserts (IDs
// assigned densely past the current high-water mark), moves and deletes.
// Each existing ID may appear at most once per batch.
type MutationSpec struct {
	Insert []geom.Point
	Update []PointMove
	Delete []int64
}

func (m MutationSpec) size() int { return len(m.Insert) + len(m.Update) + len(m.Delete) }

// Mutate applies spec to the named dataset and installs the result as
// its next version. The heavy work — cloning the disk copy-on-write,
// replaying the batch through dynamic insert/delete, re-freezing the
// flat copy — happens outside the registry lock, against a snapshot no
// reader shares; only the final install is serialized, and it fails with
// ErrMutationConflict if another writer replaced the dataset meanwhile
// (the server layer serializes mutations, so that arm guards re-ingest
// races, not mutate/mutate ones).
//
// On success it returns the displaced version, the installed version,
// and the batch in delta.Change form — exactly what the incremental
// join maintenance engine consumes.
func (r *Registry) Mutate(name string, spec MutationSpec) (old, cur *Dataset, changes []delta.Change, err error) {
	p, err := r.PrepareMutation(name, spec)
	if err != nil {
		return nil, nil, nil, err
	}
	return r.Install(p)
}

// PreparedMutation is a validated mutation whose next version is fully
// built but not yet visible — the seam the write-ahead log needs: the
// durable tier logs and fsyncs the batch between PrepareMutation and
// Install, so a crash on either side of the log record leaves either no
// trace or a replayable record, never a half-applied batch.
type PreparedMutation struct {
	name    string
	old     *Dataset
	cur     *Dataset
	spec    MutationSpec
	changes []delta.Change
}

// Base is the version the mutation was prepared against.
func (p *PreparedMutation) Base() int { return p.old.Version }

// Result is the version Install will assign. Exact while writers are
// serialized (installs bump by exactly one, and nothing can slip between
// prepare and install under the service's writer lock).
func (p *PreparedMutation) Result() int { return p.old.Version + 1 }

// Spec returns the batch, for WAL encoding.
func (p *PreparedMutation) Spec() MutationSpec { return p.spec }

// PrepareMutation validates spec against the current version of name and
// builds the next version beside it — everything Mutate does short of
// installing.
func (r *Registry) PrepareMutation(name string, spec MutationSpec) (*PreparedMutation, error) {
	d, ok := r.Get(name)
	if !ok {
		return nil, fmt.Errorf("service: %w %q", ErrUnknownDataset, name)
	}
	if d.Tree.Flat() {
		return nil, fmt.Errorf("service: %w: %q is served from flat storage; re-ingest to mutate", ErrDatasetImmutable, name)
	}
	if spec.size() == 0 {
		return nil, fmt.Errorf("service: %w for %q", errEmptyMutation, name)
	}
	if spec.size() > maxMutationBatch {
		return nil, fmt.Errorf("service: %w: %d changes (max %d); re-ingest instead", errMutationTooLarge, spec.size(), maxMutationBatch)
	}
	touched := make(map[int64]bool, len(spec.Update)+len(spec.Delete))
	for _, id := range spec.Delete {
		if !d.alive(id) {
			return nil, fmt.Errorf("service: delete of unknown point %d in %q", id, name)
		}
		if touched[id] {
			return nil, fmt.Errorf("service: point %d named twice in one batch for %q", id, name)
		}
		touched[id] = true
	}
	for _, mv := range spec.Update {
		if !d.alive(mv.ID) {
			return nil, fmt.Errorf("service: update of unknown point %d in %q", mv.ID, name)
		}
		if touched[mv.ID] {
			return nil, fmt.Errorf("service: point %d named twice in one batch for %q", mv.ID, name)
		}
		touched[mv.ID] = true
		if !dataset.Domain.Contains(mv.Pt) {
			return nil, fmt.Errorf("service: update of point %d in %q to (%v, %v) outside the domain", mv.ID, name, mv.Pt.X, mv.Pt.Y)
		}
	}
	for _, p := range spec.Insert {
		if !dataset.Domain.Contains(p) {
			return nil, fmt.Errorf("service: insert at (%v, %v) outside the domain of %q", p.X, p.Y, name)
		}
	}
	if d.Live+len(spec.Insert)-len(spec.Delete) < 1 {
		return nil, fmt.Errorf("service: %w: %q has %d live points, batch deletes %d and inserts %d",
			errMutationEmptiesIt, name, d.Live, len(spec.Delete), len(spec.Insert))
	}

	// Build version N+1 beside the serving version: COW-clone the disk,
	// fork a mutable tree over the clone, replay the batch. Deletes and
	// updates keep their original IDs; inserts extend the ID space.
	mbuf := storage.NewBuffer(d.Tree.Buffer().Disk().Clone(), 1<<30)
	mt := d.Tree.CloneMut(mbuf)
	pts := append([]geom.Point(nil), d.Points...)
	var alive []bool
	if d.Alive != nil {
		alive = append([]bool(nil), d.Alive...)
	} else if len(spec.Delete) > 0 {
		alive = make([]bool, len(pts))
		for i := range alive {
			alive[i] = true
		}
	}
	changes := make([]delta.Change, 0, spec.size())
	for _, id := range spec.Delete {
		mt.DeletePoint(id, pts[id])
		alive[id] = false
		changes = append(changes, delta.Change{Op: delta.OpDelete, ID: id, Old: pts[id]})
	}
	for _, mv := range spec.Update {
		mt.DeletePoint(mv.ID, pts[mv.ID])
		mt.InsertPoint(mv.ID, mv.Pt)
		changes = append(changes, delta.Change{Op: delta.OpUpdate, ID: mv.ID, Old: pts[mv.ID], New: mv.Pt})
		pts[mv.ID] = mv.Pt
	}
	for _, p := range spec.Insert {
		id := int64(len(pts))
		pts = append(pts, p)
		if alive != nil {
			alive = append(alive, true)
		}
		mt.InsertPoint(id, p)
		changes = append(changes, delta.Change{Op: delta.OpInsert, ID: id, New: p})
	}

	// Re-derive the serving-shape parameters for the new page population,
	// then start its buffer cold, exactly like an ingest-time build.
	pages := mt.NumPages()
	capPages := int(math.Ceil(float64(pages) * r.bufferPct / 100))
	if capPages < 1 {
		capPages = 1
	}
	mbuf.SetCapacity(capPages)
	mbuf.DropAll()
	mbuf.ResetStats()
	cur := &Dataset{
		Name:        name,
		Points:      pts,
		Alive:       alive,
		Live:        d.Live + len(spec.Insert) - len(spec.Delete),
		Tree:        mt,
		FlatTree:    mt.Freeze(),
		Pages:       pages,
		BufferPages: capPages,
	}
	livePts, _ := cur.JoinPoints()
	cur.Skew = grid.SkewEstimate(livePts, dataset.Domain)
	return &PreparedMutation{name: name, old: d, cur: cur, spec: spec, changes: changes}, nil
}

// Install makes a prepared mutation the serving version. It fails with
// ErrMutationConflict if the dataset was replaced since PrepareMutation —
// impossible while the service's writer lock is held across both halves,
// so a WAL record logged in between always names the version that
// installs.
func (r *Registry) Install(p *PreparedMutation) (old, cur *Dataset, changes []delta.Change, err error) {
	r.mu.Lock()
	if r.byName[p.name] != p.old {
		r.mu.Unlock()
		return nil, nil, nil, fmt.Errorf("service: %w (%q)", ErrMutationConflict, p.name)
	}
	r.versions[p.name]++
	p.cur.Version = r.versions[p.name]
	r.byName[p.name] = p.cur
	r.mu.Unlock()
	return p.old, p.cur, p.changes, nil
}

// buildDataset bulk-loads pts into an R-tree on a fresh private disk and
// records the page-derived buffer capacity queries will fork with.
func buildDataset(name string, pts []geom.Point, bufferPct float64) *Dataset {
	tree := loadTrees(bufferPct, pts)[0]
	return &Dataset{
		Name:        name,
		Points:      pts,
		Live:        len(pts),
		Tree:        tree,
		FlatTree:    tree.Freeze(),
		Pages:       tree.NumPages(),
		BufferPages: tree.Buffer().Capacity(),
		Skew:        grid.SkewEstimate(pts, dataset.Domain),
	}
}

// loadTrees bulk-loads each pointset into an R-tree on one fresh private
// disk. The build runs through an effectively unbounded buffer
// (construction I/O is not what the service meters); afterwards the
// shared buffer is sized to bufferPct% of the total data pages (at least
// one) and cleared, so measurement starts cold. Both the registry
// (buildDataset, one set) and the materializing algorithms' scratch
// environment (buildScratchEnv, two sets) size through this one formula.
func loadTrees(bufferPct float64, sets ...[]geom.Point) []*rtree.Tree {
	disk := storage.NewDisk(storage.DefaultPageSize)
	buf := storage.NewBuffer(disk, 1<<30)
	trees := make([]*rtree.Tree, len(sets))
	pages := 0
	for i, pts := range sets {
		trees[i] = rtree.BulkLoadPoints(buf, pts, dataset.Domain, 1)
		pages += trees[i].NumPages()
	}
	capPages := int(math.Ceil(float64(pages) * bufferPct / 100))
	if capPages < 1 {
		capPages = 1
	}
	buf.SetCapacity(capPages)
	buf.DropAll()
	buf.ResetStats()
	return trees
}
