package service

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"

	"cij/internal/dataset"
	"cij/internal/geom"
	"cij/internal/grid"
	"cij/internal/rtree"
	"cij/internal/storage"
)

// Point aliases geom.Point so service callers (cmd/cijserver, the load
// generator) can ingest without importing internal/geom themselves.
type Point = geom.Point

// nameRe restricts dataset names to a safe token: they are embedded in
// cache keys and URLs.
var nameRe = regexp.MustCompile(`^[A-Za-z0-9_.-]{1,64}$`)

// Dataset is one registered pointset: the points, the R-tree built over
// them at ingest time, and the private disk+buffer the tree lives on. A
// Dataset is immutable after construction — replacing a name installs a
// new Dataset value — so any number of queries may hold and read one
// concurrently through forked buffer views.
type Dataset struct {
	Name    string
	Version int
	Points  []geom.Point
	Tree    *rtree.Tree
	// FlatTree is the arena-resident (flat) copy of Tree, frozen once at
	// ingest: structurally identical, decode-free to read, zero page I/O.
	// Plans with Storage "flat" read it through FlatView.
	FlatTree *rtree.Tree
	// Pages is the tree's page count on its private disk.
	Pages int
	// BufferPages is the LRU capacity each query view forks with.
	BufferPages int
	// Skew is the dataset's spatial-skew statistic (grid.SkewEstimate,
	// ~1 for uniform data), computed once at ingest; the planner's auto
	// mode reads it to decide whether a serial join is grid-friendly.
	Skew float64
}

// View returns a read-only handle on the dataset's tree whose I/O goes
// through a fresh private buffer: per-request state, never shared, so
// concurrent queries neither race on LRU bookkeeping nor pollute each
// other's cache locality. The view's counters start at zero, which is what
// lets the executor attribute physical I/O to one request exactly.
func (d *Dataset) View() *rtree.Tree {
	return d.Tree.WithBuffer(d.Tree.Buffer().Fork(d.BufferPages))
}

// FlatView is View for the flat copy: a read handle over the shared node
// arena whose accesses are counted on a fresh private ledger fork, so
// per-request I/O attribution works identically in both storage modes.
// (The ledger caches nothing, so capacity 0 is exact, not a limitation.)
func (d *Dataset) FlatView() *rtree.Tree {
	return d.FlatTree.WithBuffer(d.FlatTree.Buffer().Fork(0))
}

// StorageView dispatches on a plan's storage choice: "flat" reads the
// arena, anything else the paged tree.
func (d *Dataset) StorageView(storage string) *rtree.Tree {
	if storage == "flat" {
		return d.FlatView()
	}
	return d.View()
}

// Registry is the concurrent name -> Dataset map. Versions are scoped to
// the registry, not the Dataset value: replacing a name always moves its
// version strictly forward, which is what makes version-qualified cache
// keys sound.
type Registry struct {
	bufferPct float64

	mu       sync.RWMutex
	byName   map[string]*Dataset
	versions map[string]int
}

// NewRegistry creates an empty registry whose datasets size their query
// buffers to bufferPct% of their data pages (the paper's experiments use
// 2%).
func NewRegistry(bufferPct float64) *Registry {
	if bufferPct <= 0 {
		bufferPct = 2
	}
	return &Registry{
		bufferPct: bufferPct,
		byName:    make(map[string]*Dataset),
		versions:  make(map[string]int),
	}
}

// Put indexes pts under name, replacing any previous version. The build
// happens outside the registry lock (bulk-loading a large pointset is the
// expensive part); only the install is serialized.
func (r *Registry) Put(name string, pts []geom.Point) (*Dataset, error) {
	if !nameRe.MatchString(name) {
		return nil, fmt.Errorf("service: invalid dataset name %q (want %s)", name, nameRe)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("service: dataset %q has no points", name)
	}
	d := buildDataset(name, pts, r.bufferPct)

	r.mu.Lock()
	r.versions[name]++
	d.Version = r.versions[name]
	r.byName[name] = d
	r.mu.Unlock()
	return d, nil
}

// Get returns the current version of the named dataset.
func (r *Registry) Get(name string) (*Dataset, bool) {
	r.mu.RLock()
	d, ok := r.byName[name]
	r.mu.RUnlock()
	return d, ok
}

// List returns the current datasets sorted by name.
func (r *Registry) List() []*Dataset {
	r.mu.RLock()
	out := make([]*Dataset, 0, len(r.byName))
	for _, d := range r.byName {
		out = append(out, d)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// buildDataset bulk-loads pts into an R-tree on a fresh private disk and
// records the page-derived buffer capacity queries will fork with.
func buildDataset(name string, pts []geom.Point, bufferPct float64) *Dataset {
	tree := loadTrees(bufferPct, pts)[0]
	return &Dataset{
		Name:        name,
		Points:      pts,
		Tree:        tree,
		FlatTree:    tree.Freeze(),
		Pages:       tree.NumPages(),
		BufferPages: tree.Buffer().Capacity(),
		Skew:        grid.SkewEstimate(pts, dataset.Domain),
	}
}

// loadTrees bulk-loads each pointset into an R-tree on one fresh private
// disk. The build runs through an effectively unbounded buffer
// (construction I/O is not what the service meters); afterwards the
// shared buffer is sized to bufferPct% of the total data pages (at least
// one) and cleared, so measurement starts cold. Both the registry
// (buildDataset, one set) and the materializing algorithms' scratch
// environment (buildScratchEnv, two sets) size through this one formula.
func loadTrees(bufferPct float64, sets ...[]geom.Point) []*rtree.Tree {
	disk := storage.NewDisk(storage.DefaultPageSize)
	buf := storage.NewBuffer(disk, 1<<30)
	trees := make([]*rtree.Tree, len(sets))
	pages := 0
	for i, pts := range sets {
		trees[i] = rtree.BulkLoadPoints(buf, pts, dataset.Domain, 1)
		pages += trees[i].NumPages()
	}
	capPages := int(math.Ceil(float64(pages) * bufferPct / 100))
	if capPages < 1 {
		capPages = 1
	}
	buf.SetCapacity(capPages)
	buf.DropAll()
	buf.ResetStats()
	return trees
}
