package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/geom"
	"cij/internal/service"
)

// mutate issues POST /datasets/{name}/points and returns the decoded
// response with the HTTP status.
func mutate(t *testing.T, ts *httptest.Server, name string, req service.MutationRequest) (service.MutationResponse, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/datasets/"+name+"/points", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr service.MutationResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
	}
	return mr, resp.StatusCode
}

// mirror tracks a mutable dataset's point/tombstone state exactly like
// the registry does (append-only IDs, tombstoned deletes), so tests can
// brute-force the expected pair set of any version.
type mirror struct {
	pts   []geom.Point
	alive []bool
}

func newMirror(pts []geom.Point) *mirror {
	m := &mirror{pts: append([]geom.Point(nil), pts...), alive: make([]bool, len(pts))}
	for i := range m.alive {
		m.alive[i] = true
	}
	return m
}

func (m *mirror) clone() *mirror {
	return &mirror{pts: append([]geom.Point(nil), m.pts...), alive: append([]bool(nil), m.alive...)}
}

func (m *mirror) apply(req service.MutationRequest) {
	for _, id := range req.Delete {
		m.alive[id] = false
	}
	for _, mv := range req.Update {
		m.pts[mv.ID] = geom.Pt(mv.X, mv.Y)
	}
	for _, p := range req.Points {
		m.pts = append(m.pts, geom.Pt(p.X, p.Y))
		m.alive = append(m.alive, true)
	}
	for _, p := range req.Insert {
		m.pts = append(m.pts, geom.Pt(p.X, p.Y))
		m.alive = append(m.alive, true)
	}
}

// brute computes the mirror's expected pair set against q, with the
// mutated side's pair indexes remapped back to original IDs.
func (m *mirror) brute(q []geom.Point) map[core.Pair]bool {
	var live []geom.Point
	var ids []int64
	for i, p := range m.pts {
		if m.alive[i] {
			live = append(live, p)
			ids = append(ids, int64(i))
		}
	}
	raw := core.BruteCIJ(live, q, dataset.Domain)
	set := make(map[core.Pair]bool, len(raw))
	for _, pr := range raw {
		set[core.Pair{P: ids[pr.P], Q: pr.Q}] = true
	}
	return set
}

// TestMutateAlgosAgreeAfterMutation: after an insert+update+delete batch,
// every algorithm — tree-based and point-array-based alike — reproduces
// the brute-force pair set with ORIGINAL point IDs. This pins the
// tombstone compaction and pair remapping of the grid/PM/FM paths and
// the in-place tree mutation of the NM/parallel paths to one oracle.
func TestMutateAlgosAgreeAfterMutation(t *testing.T) {
	p, q := dataset.Uniform(250, 101), dataset.Uniform(250, 102)
	svc, ts := newTestServer(t, service.Config{CacheEntries: -1}, p, q)

	m := newMirror(p)
	req := service.MutationRequest{
		Insert: []service.PointJSON{{X: 123, Y: 456}, {X: 5000, Y: 5000}, {X: 9999, Y: 1}},
		Update: []service.MovePointJSON{{ID: 10, X: 4321, Y: 1234}, {ID: 77, X: 1, Y: 1}},
		Delete: []int64{0, 5, 9, 200},
	}
	mr, code := mutate(t, ts, "p", req)
	if code != http.StatusOK {
		t.Fatalf("mutation status %d", code)
	}
	m.apply(req)
	if mr.Version != 2 {
		t.Fatalf("version after mutation = %d, want 2", mr.Version)
	}
	if mr.Points != 250-4+3 {
		t.Fatalf("live points = %d, want %d", mr.Points, 250-4+3)
	}
	if want := []int64{250, 251, 252}; len(mr.InsertedIDs) != 3 || mr.InsertedIDs[0] != want[0] || mr.InsertedIDs[2] != want[2] {
		t.Fatalf("inserted IDs = %v, want %v", mr.InsertedIDs, want)
	}

	want := m.brute(q)
	for _, algo := range []string{"nm", "pm", "fm", "parallel", "grid"} {
		jr := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: algo, Workers: 2})
		sameSet(t, "post-mutation "+algo, pairSet(jr.Pairs), want)
		if jr.LeftVersion != 2 {
			t.Fatalf("%s: left version %d, want 2", algo, jr.LeftVersion)
		}
	}
	// Streamed pairs remap identically (the OnPair hook path).
	got, _, _ := streamJoin(t, ts, "left=p&right=q&algo=grid")
	sameSet(t, "post-mutation grid stream", got, want)

	// The registry info reflects live counts and tombstones.
	var infos []service.DatasetInfo
	resp, err := http.Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&infos)
	resp.Body.Close()
	for _, info := range infos {
		if info.Name == "p" {
			if info.Points != 249 || info.Tombstones != 4 {
				t.Fatalf("dataset info = %+v, want 249 live / 4 tombstones", info)
			}
		}
	}
	if stats := svc.StatsSnapshot(); stats.Mutations != 1 {
		t.Fatalf("stats mutations = %d, want 1", stats.Mutations)
	}
}

// TestMutateSnapshotIsolationRace runs joins concurrently with a
// sequence of mutations: every join must report a pair set exactly equal
// to the brute-force result of the VERSION it executed against — never a
// torn mix of two versions. Expected sets are computed before each
// mutation is issued, so whichever version a concurrent join resolves,
// its oracle already exists.
func TestMutateSnapshotIsolationRace(t *testing.T) {
	p, q := dataset.Uniform(200, 111), dataset.Uniform(200, 112)
	_, ts := newTestServer(t, service.Config{CacheEntries: -1}, p, q)

	var expected sync.Map // version -> map[core.Pair]bool
	m := newMirror(p)
	expected.Store(1, m.brute(q))

	const rounds = 5
	// Pre-store every version's oracle, then run mutations against
	// readers. Readers check the version their response reports.
	done := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			algos := []string{"nm", "grid", "parallel"}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				jr := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: algos[(g+i)%len(algos)], Workers: 2})
				wantAny, ok := expected.Load(jr.LeftVersion)
				if !ok {
					errCh <- fmt.Errorf("join reported unknown version %d", jr.LeftVersion)
					continue
				}
				want := wantAny.(map[core.Pair]bool)
				got := pairSet(jr.Pairs)
				if len(got) != len(want) {
					errCh <- fmt.Errorf("version %d (%s): %d pairs, want %d", jr.LeftVersion, jr.Algo, len(got), len(want))
					continue
				}
				for pr := range want {
					if !got[pr] {
						errCh <- fmt.Errorf("version %d (%s): missing pair %+v", jr.LeftVersion, jr.Algo, pr)
						break
					}
				}
			}
		}(g)
	}

	for r := 0; r < rounds; r++ {
		req := service.MutationRequest{
			Insert: []service.PointJSON{{X: float64(500 + 700*r), Y: float64(300 + 500*r)}},
			Update: []service.MovePointJSON{{ID: int64(3*r + 1), X: float64(9000 - 800*r), Y: float64(200 + 900*r)}},
			Delete: []int64{int64(3 * r)},
		}
		next := m.clone()
		next.apply(req)
		expected.Store(r+2, next.brute(q)) // oracle first, then install
		if _, code := mutate(t, ts, "p", req); code != http.StatusOK {
			t.Fatalf("round %d: mutation status %d", r, code)
		}
		m = next
	}
	close(done)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestSubscribeChurn is the end-to-end reconciliation of the
// subscription stream: baseline pair set at the subscribed versions,
// plus every +pair, minus every -pair, must equal a fresh full join
// after the mutations — and the stream's delta summaries must reconcile
// with the mutation responses and /stats.
func TestSubscribeChurn(t *testing.T) {
	p, q := dataset.Uniform(200, 121), dataset.Uniform(200, 122)
	svc, ts := newTestServer(t, service.Config{CacheEntries: -1}, p, q)

	resp, err := http.Get(ts.URL + "/join/subscribe?left=p&right=q")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("no subscribed line")
	}
	var sub service.StreamSubscribed
	if err := json.Unmarshal(sc.Bytes(), &sub); err != nil || sub.Type != "subscribed" {
		t.Fatalf("bad subscribed line %q: %v", sc.Text(), err)
	}
	if sub.LeftVersion != 1 || sub.RightVersion != 1 {
		t.Fatalf("subscribed at versions %d/%d, want 1/1", sub.LeftVersion, sub.RightVersion)
	}
	if got := svc.StatsSnapshot().Subscribers; got != 1 {
		t.Fatalf("subscribers gauge = %d, want 1", got)
	}

	// Baseline at the subscribed versions.
	baseline := pairSet(postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"}).Pairs)

	// Mutate the LEFT operand, then the RIGHT one — the stream must carry
	// churn for both sides of the subscription.
	mut1 := service.MutationRequest{
		Insert: []service.PointJSON{{X: 4500, Y: 4500}},
		Delete: []int64{17},
	}
	mr1, code := mutate(t, ts, "p", mut1)
	if code != http.StatusOK {
		t.Fatalf("left mutation status %d", code)
	}
	mut2 := service.MutationRequest{
		Update: []service.MovePointJSON{{ID: 3, X: 8000, Y: 1000}},
	}
	mr2, code := mutate(t, ts, "q", mut2)
	if code != http.StatusOK {
		t.Fatalf("right mutation status %d", code)
	}
	if len(mr1.Deltas) != 1 || len(mr2.Deltas) != 1 {
		t.Fatalf("delta summaries per mutation = %d/%d, want 1/1", len(mr1.Deltas), len(mr2.Deltas))
	}

	// Drain the stream: churn lines and delta summaries for both
	// mutations, in version order.
	current := make(map[core.Pair]bool, len(baseline))
	for pr := range baseline {
		current[pr] = true
	}
	var deltas []service.StreamDelta
	added, removed := 0, 0
	for len(deltas) < 2 && sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch probe.Type {
		case "+pair", "-pair":
			var ev service.StreamChurn
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatal(err)
			}
			pr := core.Pair{P: ev.P, Q: ev.Q}
			if probe.Type == "+pair" {
				if current[pr] {
					t.Fatalf("+pair %+v already present", pr)
				}
				current[pr] = true
				added++
			} else {
				if !current[pr] {
					t.Fatalf("-pair %+v not present", pr)
				}
				delete(current, pr)
				removed++
			}
		case "delta":
			var d service.StreamDelta
			if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
				t.Fatal(err)
			}
			deltas = append(deltas, d)
		default:
			t.Fatalf("unexpected stream line type %q", probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d delta lines, want 2", len(deltas))
	}
	if deltas[0].Mutated != "left" || deltas[1].Mutated != "right" {
		t.Fatalf("delta mutated sides = %q/%q, want left/right", deltas[0].Mutated, deltas[1].Mutated)
	}
	if added == 0 {
		// An inserted point always owns a positive-area Voronoi cell, and
		// the opposite cells tile the domain, so an insert churns >= 1 pair.
		t.Fatal("insert produced no +pair event")
	}
	if deltas[0].Added+deltas[1].Added != added || deltas[0].Removed+deltas[1].Removed != removed {
		t.Fatalf("delta summaries (+%d/-%d, +%d/-%d) do not reconcile with events (+%d/-%d)",
			deltas[0].Added, deltas[0].Removed, deltas[1].Added, deltas[1].Removed, added, removed)
	}

	// Reconciliation: baseline + churn == fresh full join.
	final := pairSet(postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"}).Pairs)
	sameSet(t, "baseline+churn vs full recompute", current, final)

	// The observability surfaces agree with the stream.
	stats := svc.StatsSnapshot()
	if stats.DeltaRuns != 2 {
		t.Fatalf("stats delta runs = %d, want 2", stats.DeltaRuns)
	}
	if stats.PairsChurned != int64(added+removed) {
		t.Fatalf("stats pairs churned = %d, want %d", stats.PairsChurned, added+removed)
	}
	if stats.Mutations != 2 {
		t.Fatalf("stats mutations = %d, want 2", stats.Mutations)
	}
	// Delta runs are journaled like any join, under algo "delta".
	recs, _ := svc.Journal().Recent(service.JournalFilter{Algo: "delta"})
	if len(recs) != 2 {
		t.Fatalf("journal has %d delta records, want 2", len(recs))
	}
	for _, rec := range recs {
		if rec.ID != deltas[0].QueryID && rec.ID != deltas[1].QueryID {
			t.Fatalf("journal delta record ID %d matches no stream summary", rec.ID)
		}
	}
}

// TestMutateValidation pins the mutation error contract: 404 for unknown
// datasets, 400 for malformed batches, and name validation at ingest
// (the adversarial-name regression — separator characters must be
// rejected before they ever reach cache keys or URLs).
func TestMutateValidation(t *testing.T) {
	p, q := dataset.Uniform(50, 131), dataset.Uniform(50, 132)
	_, ts := newTestServer(t, service.Config{}, p, q)

	cases := []struct {
		name string
		ds   string
		req  service.MutationRequest
		want int
	}{
		{"unknown dataset", "ghost", service.MutationRequest{Points: []service.PointJSON{{X: 1, Y: 1}}}, http.StatusNotFound},
		{"empty batch", "p", service.MutationRequest{}, http.StatusBadRequest},
		{"delete unknown id", "p", service.MutationRequest{Delete: []int64{999}}, http.StatusBadRequest},
		{"negative id", "p", service.MutationRequest{Delete: []int64{-1}}, http.StatusBadRequest},
		{"update unknown id", "p", service.MutationRequest{Update: []service.MovePointJSON{{ID: 999, X: 1, Y: 1}}}, http.StatusBadRequest},
		{"id twice in batch", "p", service.MutationRequest{Delete: []int64{4}, Update: []service.MovePointJSON{{ID: 4, X: 1, Y: 1}}}, http.StatusBadRequest},
		{"insert outside domain", "p", service.MutationRequest{Points: []service.PointJSON{{X: -5000, Y: 1}}}, http.StatusBadRequest},
		{"update outside domain", "p", service.MutationRequest{Update: []service.MovePointJSON{{ID: 1, X: 1e9, Y: 1}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if _, code := mutate(t, ts, tc.ds, tc.req); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}

	// Deleting every live point must be refused (datasets cannot empty).
	all := make([]int64, 50)
	for i := range all {
		all[i] = int64(i)
	}
	if _, code := mutate(t, ts, "p", service.MutationRequest{Delete: all}); code != http.StatusBadRequest {
		t.Errorf("delete-to-empty: status %d, want 400", code)
	}

	// A batch over the size cap is refused.
	big := service.MutationRequest{Points: make([]service.PointJSON, 10001)}
	for i := range big.Points {
		big.Points[i] = service.PointJSON{X: 1, Y: 1}
	}
	if _, code := mutate(t, ts, "p", big); code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", code)
	}

	// DELETE endpoint: bad id is 400, valid id drops one live point.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/datasets/p/points/zap", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("DELETE with bad id: status %d, want 400", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/datasets/p/points/7", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var mr service.MutationResponse
	json.NewDecoder(resp.Body).Decode(&mr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || mr.Points != 49 || mr.Deleted != 1 {
		t.Errorf("DELETE /datasets/p/points/7: status %d resp %+v", resp.StatusCode, mr)
	}

	// Adversarial names never make it into the registry (and therefore
	// never into cache keys): separator characters are an ingest-time 400.
	for _, name := range []string{"a@b", "a|b", "a@1|b"} {
		resp, err := http.Post(ts.URL+"/datasets/"+name, "text/csv", strings.NewReader("1,2\n"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("ingest of adversarial name %q: status %d, want 400", name, resp.StatusCode)
		}
	}

	// Subscribe validation: self-join and unknown datasets are refused.
	for _, params := range []string{"left=p&right=p", "left=p&right=ghost", "left=&right="} {
		resp, err := http.Get(ts.URL + "/join/subscribe?" + params)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("subscribe?%s: status %d, want 400", params, resp.StatusCode)
		}
	}
}
