package service

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Build attribution: journal artifacts are planner training data, so
// every observation corpus must be traceable to the binary that produced
// it — GET /stats carries the block, and /metrics exposes the same facts
// as the cij_build_info gauge's labels.

// BuildInfoJSON identifies the running binary in GET /stats.
type BuildInfoJSON struct {
	GoVersion     string `json:"go_version"`
	Module        string `json:"module,omitempty"`
	ModuleVersion string `json:"module_version,omitempty"`
	// Revision is the VCS commit the binary was built from (when the
	// build had VCS metadata; test binaries usually do not).
	Revision string `json:"vcs_revision,omitempty"`
	Modified bool   `json:"vcs_modified,omitempty"`
}

var (
	buildInfoOnce sync.Once
	buildInfoVal  BuildInfoJSON
)

// buildInfo reads the binary's build metadata once (runtime/debug walks
// the embedded build info each call, so cache it).
func buildInfo() BuildInfoJSON {
	buildInfoOnce.Do(func() {
		buildInfoVal = BuildInfoJSON{GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfoVal.Module = bi.Main.Path
		buildInfoVal.ModuleVersion = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfoVal.Revision = s.Value
			case "vcs.modified":
				buildInfoVal.Modified = s.Value == "true"
			}
		}
	})
	return buildInfoVal
}
