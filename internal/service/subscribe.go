package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"cij/internal/dataset"
	"cij/internal/delta"
)

// subChanCap bounds the per-subscriber event queue (in chunks, one chunk
// per mutation). A subscriber that falls further behind than this is
// dropped with a lagged line rather than allowed to block or bloat the
// mutation path.
const subChanCap = 64

// subscriber is one open /join/subscribe connection: the join it
// watches and the queue its pre-encoded NDJSON chunks arrive on. The
// channel is closed by the hub — either on remove (the handler's own
// exit) or on overflow (lag) — never by the handler directly.
type subscriber struct {
	id          int64
	left, right string
	ch          chan []byte
	// draining marks a channel the hub closed for shutdown rather than
	// lag. Written under the hub lock strictly before close(ch) and read
	// only after the receive of the close, so the channel itself orders
	// the access.
	draining bool
}

// subHub fans mutation-churn chunks out to subscribers. Publishing
// happens under the service's mutMu (one publisher at a time); the hub's
// own lock only guards membership against concurrent subscribe and
// unsubscribe. Channels are only ever closed under the lock by whoever
// also removes the entry, so publish can never send on a closed channel.
type subHub struct {
	mu     sync.Mutex
	nextID int64
	subs   map[int64]*subscriber
}

func newSubHub() *subHub {
	return &subHub{subs: make(map[int64]*subscriber)}
}

// add registers a subscription on the (left, right) join.
func (h *subHub) add(left, right string) *subscriber {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextID++
	sub := &subscriber{id: h.nextID, left: left, right: right, ch: make(chan []byte, subChanCap)}
	h.subs[sub.id] = sub
	return sub
}

// remove deregisters sub. Safe to call after an overflow drop (the hub
// already removed and closed it; removing twice is a no-op).
func (h *subHub) remove(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[sub.id]; ok {
		delete(h.subs, sub.id)
		close(sub.ch)
	}
}

// drain closes every subscription for shutdown: each handler wakes with
// a terminal "closed" line (not "lagged" — the client should reconnect
// to the next process, not assume it fell behind). Returns how many
// subscribers were drained.
func (h *subHub) drain() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.subs)
	for id, sub := range h.subs {
		sub.draining = true
		delete(h.subs, id)
		close(sub.ch)
	}
	return n
}

// count reports the open subscriptions (the cij_subscribers gauge).
func (h *subHub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// pairsInvolving returns the distinct (left, right) joins subscribed to
// that have name as either operand — the joins a mutation of name must
// maintain. One delta run serves every subscriber of the same pair.
func (h *subHub) pairsInvolving(name string) [][2]string {
	h.mu.Lock()
	defer h.mu.Unlock()
	seen := make(map[[2]string]bool)
	var out [][2]string
	for _, sub := range h.subs {
		if sub.left != name && sub.right != name {
			continue
		}
		pr := [2]string{sub.left, sub.right}
		if !seen[pr] {
			seen[pr] = true
			out = append(out, pr)
		}
	}
	return out
}

// publish enqueues one chunk to every subscriber of (left, right). A
// subscriber whose queue is full is dropped on the spot — removed and
// closed, which its handler observes as the lagged terminal — so a stuck
// client can not apply backpressure to the mutation path. Returns how
// many subscribers were dropped.
func (h *subHub) publish(left, right string, chunk []byte) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	dropped := 0
	for id, sub := range h.subs {
		if sub.left != left || sub.right != right {
			continue
		}
		select {
		case sub.ch <- chunk:
		default:
			delete(h.subs, id)
			close(sub.ch)
			dropped++
		}
	}
	return dropped
}

// handleJoinSubscribe is GET /join/subscribe?left=A&right=B: a
// long-lived NDJSON stream of the named join's pair churn. One
// "subscribed" line reports the base versions (the client baselines with
// a full join against them); afterwards every mutation of either operand
// produces its "+pair"/"-pair" lines followed by one "delta" summary. A
// client that falls behind gets a terminal "lagged" line and must
// resubscribe.
func (s *Service) handleJoinSubscribe(w http.ResponseWriter, r *http.Request) {
	params := r.URL.Query()
	leftName, rightName := params.Get("left"), params.Get("right")
	if leftName == rightName {
		writeError(w, http.StatusBadRequest,
			"subscribe requires two distinct datasets (self-join churn is not maintained incrementally)")
		return
	}
	if _, ok := s.reg.Get(leftName); !ok {
		writeError(w, http.StatusBadRequest, "unknown dataset %q", leftName)
		return
	}
	if _, ok := s.reg.Get(rightName); !ok {
		writeError(w, http.StatusBadRequest, "unknown dataset %q", rightName)
		return
	}

	// Register BEFORE reading the base versions: a mutation landing in
	// between is then delivered as events (harmlessly at-or-below the
	// reported base, which the client ignores), never silently lost.
	sub := s.hub.add(leftName, rightName)
	defer s.hub.remove(sub)
	left, ok := s.reg.Get(leftName)
	right, ok2 := s.reg.Get(rightName)
	if !ok || !ok2 {
		writeError(w, http.StatusBadRequest, "dataset disappeared during subscribe")
		return
	}

	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.Encode(StreamSubscribed{
		Type: "subscribed", Left: leftName, Right: rightName,
		LeftVersion: left.Version, RightVersion: right.Version,
	})
	flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case chunk, ok := <-sub.ch:
			if !ok {
				if sub.draining {
					// Server shutdown: a clean goodbye, not a lag drop.
					enc.Encode(StreamClosed{Type: "closed", Reason: "server shutting down"})
					flush()
					return
				}
				// The hub dropped us for lagging. Tell the client before
				// closing so it knows to resubscribe and re-baseline.
				enc.Encode(StreamLagged{Type: "lagged", Error: "event queue overflowed; resubscribe and re-baseline"})
				flush()
				return
			}
			if _, err := w.Write(chunk); err != nil {
				return
			}
			flush()
		}
	}
}

// propagateMutation runs incremental join maintenance for every
// subscribed join involving the mutated dataset. Called under mutMu, so
// the published event order is the version order.
func (s *Service) propagateMutation(old, cur *Dataset, changes []delta.Change) []DeltaSummaryJSON {
	pairs := s.hub.pairsInvolving(cur.Name)
	if len(pairs) == 0 {
		return nil
	}
	var out []DeltaSummaryJSON
	for _, pr := range pairs {
		if sum := s.computeDelta(pr[0], pr[1], old, cur, changes); sum != nil {
			out = append(out, *sum)
		}
	}
	return out
}

// computeDelta maintains one subscribed join across a mutation: it runs
// the delta engine (a localized computation bounded by the paper's
// Lemma 1/2 influence argument, not a recompute), publishes the churn to
// the pair's subscribers, and books the run on every observability
// surface a full join would hit — query ID, journal record (algo
// "delta"), latency histogram, I/O counters, structured log.
func (s *Service) computeDelta(leftName, rightName string, old, cur *Dataset, changes []delta.Change) *DeltaSummaryJSON {
	mutatedLeft := leftName == cur.Name
	otherName := rightName
	if !mutatedLeft {
		otherName = leftName
	}
	other, ok := s.reg.Get(otherName)
	if !ok {
		return nil // the opposite dataset vanished; nothing to maintain
	}

	qid := s.queryID.Add(1)
	start := time.Now()
	oldT, newT, otherT := old.View(), cur.View(), other.View()
	res := delta.PairChurn(oldT, newT, otherT, changes, mutatedLeft, dataset.Domain)
	wall := time.Since(start)
	io := oldT.Buffer().Stats().Add(newT.Buffer().Stats()).Add(otherT.Buffer().Stats())
	churn := len(res.Added) + len(res.Removed)

	s.deltaRuns.Add(1)
	s.pairsChurned.Add(int64(churn))
	s.pageAccesses.Add(io.PageAccesses())
	s.decodeHits.Add(io.DecodeHits)
	s.metrics.deltaRuns.Inc()
	s.metrics.deltaLatency.Observe(wall.Seconds())
	if n := len(res.Added); n > 0 {
		s.metrics.churnEvents.With("add").Add(int64(n))
	}
	if n := len(res.Removed); n > 0 {
		s.metrics.churnEvents.With("remove").Add(int64(n))
	}
	s.metrics.recordJoinIO(io, "paged")

	lv, rv := cur.Version, other.Version
	ld, rd := cur, other
	if !mutatedLeft {
		lv, rv = other.Version, cur.Version
		ld, rd = other, cur
	}
	sum := DeltaSummaryJSON{
		QueryID:       qid,
		Left:          leftName,
		LeftVersion:   lv,
		Right:         rightName,
		RightVersion:  rv,
		Mutated:       map[bool]string{true: "left", false: "right"}[mutatedLeft],
		Added:         len(res.Added),
		Removed:       len(res.Removed),
		AffectedSites: res.Affected,
		Probes:        res.Probes,
		Stats:         statsFromIO(io, wall),
	}

	if s.journal.Enabled() {
		s.journal.Add(JournalRecord{
			ID:           qid,
			Time:         time.Now(),
			Left:         leftName,
			LeftVersion:  lv,
			Right:        rightName,
			RightVersion: rv,
			Algo:         "delta",
			Storage:      "paged",
			Pairs:        int64(churn),
			Stats:        sum.Stats,
			Reason: fmt.Sprintf("incremental maintenance after mutation of %q: %d changes touched %d sites, churning +%d/-%d pairs",
				cur.Name, len(changes), res.Affected, len(res.Added), len(res.Removed)),
			Inputs: PlanInputs{
				LeftPoints:  ld.Live,
				RightPoints: rd.Live,
				TotalPoints: ld.Live + rd.Live,
				LeftSkew:    ld.Skew,
				RightSkew:   rd.Skew,
			},
		}, nil, 0)
	}
	s.logger.Info("delta computed",
		"query_id", qid,
		"left", leftName, "right", rightName,
		"mutated", sum.Mutated,
		"added", len(res.Added), "removed", len(res.Removed),
		"affected_sites", res.Affected, "probes", res.Probes,
		"pages", io.PageAccesses(),
		"wall_ms", float64(wall)/float64(time.Millisecond),
	)

	// One pre-encoded chunk per mutation: churn lines, then the summary.
	var bb bytes.Buffer
	cenc := json.NewEncoder(&bb)
	for _, p := range res.Removed {
		cenc.Encode(StreamChurn{Type: "-pair", P: p.P, Q: p.Q, QueryID: qid, LeftVersion: lv, RightVersion: rv})
	}
	for _, p := range res.Added {
		cenc.Encode(StreamChurn{Type: "+pair", P: p.P, Q: p.Q, QueryID: qid, LeftVersion: lv, RightVersion: rv})
	}
	cenc.Encode(StreamDelta{Type: "delta", DeltaSummaryJSON: sum})
	if dropped := s.hub.publish(leftName, rightName, bb.Bytes()); dropped > 0 {
		s.metrics.subLagged.Add(int64(dropped))
		s.logger.Warn("subscribers dropped for lag", "left", leftName, "right", rightName, "dropped", dropped)
	}
	return &sum
}
