package service

import (
	"net/http"
	"os"
	"strconv"
	"time"

	"cij/internal/obs"
)

// Introspection endpoints: the query journal (GET /debug/queries,
// /debug/queries/{id}, /debug/queries/{id}/trace.json) and the metrics
// history (GET /stats/history). Everything here reads recorded
// observations — nothing executes a join.

// QueriesResponse is the body of GET /debug/queries: matching journal
// records newest first, plus the ring's bookkeeping.
type QueriesResponse struct {
	// Total counts observations ever journaled; Returned the records in
	// this response (after filtering and the limit).
	Total    int64 `json:"total"`
	Returned int   `json:"returned"`
	// RetainedTraces lists the query IDs whose phase traces are held in
	// memory (slowest first); each is servable at /debug/queries/{id} and
	// /debug/queries/{id}/trace.json.
	RetainedTraces []int64         `json:"retained_traces,omitempty"`
	Queries        []JournalRecord `json:"queries"`
}

// handleDebugQueries lists recent observations. Query parameters:
// dataset (left or right name), algo, min_ms (wall-clock floor), limit.
func (s *Service) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if !s.journal.Enabled() {
		writeError(w, http.StatusNotFound, "query journal disabled (-journal-entries < 0)")
		return
	}
	params := r.URL.Query()
	f := JournalFilter{
		Dataset: params.Get("dataset"),
		Algo:    params.Get("algo"),
	}
	var err error
	if f.Limit, err = intParam(params.Get("limit"), 0); err != nil {
		writeError(w, http.StatusBadRequest, "bad limit: %v", err)
		return
	}
	if v := params.Get("min_ms"); v != "" {
		if f.MinWallMS, err = strconv.ParseFloat(v, 64); err != nil {
			writeError(w, http.StatusBadRequest, "bad min_ms: %v", err)
			return
		}
	}
	recs, total := s.journal.Recent(f)
	if recs == nil {
		recs = []JournalRecord{} // an empty journal is [], not null
	}
	writeJSON(w, http.StatusOK, QueriesResponse{
		Total:          total,
		Returned:       len(recs),
		RetainedTraces: s.journal.RetainedTraces(),
		Queries:        recs,
	})
}

// queryID parses the {id} path segment of a /debug/queries route.
func queryID(r *http.Request) (int64, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	return id, err == nil && id > 0
}

// handleDebugQuery returns one observation record; when the query's
// phase trace is among the retained slowest-K it is attached inline.
func (s *Service) handleDebugQuery(w http.ResponseWriter, r *http.Request) {
	if !s.journal.Enabled() {
		writeError(w, http.StatusNotFound, "query journal disabled (-journal-entries < 0)")
		return
	}
	id, ok := queryID(r)
	if !ok {
		writeError(w, http.StatusBadRequest, "bad query id %q", r.PathValue("id"))
		return
	}
	rec, ok := s.journal.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "query %d not journaled (expired from the ring, or never served)", id)
		return
	}
	if spans, dropped, ok := s.journal.TraceFor(id); ok {
		rec.Trace = NewTraceJSON(spans, dropped)
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleDebugQueryTrace serves a retained trace in Chrome trace-event
// JSON — loadable as-is in chrome://tracing or Perfetto. Only the
// slowest-K computed joins keep their spans, so most IDs 404 here even
// while their ring record is still listable.
func (s *Service) handleDebugQueryTrace(w http.ResponseWriter, r *http.Request) {
	if !s.journal.Enabled() {
		writeError(w, http.StatusNotFound, "query journal disabled (-journal-entries < 0)")
		return
	}
	id, ok := queryID(r)
	if !ok {
		writeError(w, http.StatusBadRequest, "bad query id %q", r.PathValue("id"))
		return
	}
	spans, _, ok := s.journal.TraceFor(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no retained trace for query %d (only the slowest %d computed joins keep spans)", id, DefaultJournalSlowest)
		return
	}
	writeJSON(w, http.StatusOK, obs.ChromeTraceFromSpans(spans, os.Getpid()))
}

// HistoryQuantilesJSON is one latency family's windowed distribution, in
// milliseconds, estimated from the window's histogram bucket deltas.
type HistoryQuantilesJSON struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
}

// HistoryPointJSON is one raw sample of the per-sample series: the
// cumulative counters at that instant (clients diff neighbors for
// per-interval deltas) plus the live gauges.
type HistoryPointJSON struct {
	Time         time.Time `json:"time"`
	Requests     float64   `json:"requests_total"`
	Joins        float64   `json:"joins_total"`
	PagesRead    float64   `json:"pages_read_total"`
	LogicalReads float64   `json:"logical_reads_total"`
	CacheHits    float64   `json:"cache_hits_total"`
	CacheMisses  float64   `json:"cache_misses_total"`
	Goroutines   float64   `json:"goroutines"`
	HeapInuse    float64   `json:"heap_inuse_bytes"`
}

// HistoryResponse is the body of GET /stats/history: windowed rates and
// quantiles over the self-scraped metrics ring.
type HistoryResponse struct {
	// WindowMS echoes the requested window; SpanMS is the wall-clock
	// distance the returned samples actually cover (shorter when the ring
	// has not been up that long).
	WindowMS   float64 `json:"window_ms"`
	SpanMS     float64 `json:"span_ms"`
	Samples    int     `json:"samples"`
	TotalTaken int64   `json:"samples_total"`
	IntervalMS float64 `json:"interval_ms,omitempty"`

	// Per-second rates of the windowed counter deltas.
	RequestsPerSec     float64 `json:"requests_per_sec"`
	JoinsPerSec        float64 `json:"joins_per_sec"`
	PagesReadPerSec    float64 `json:"pages_read_per_sec"`
	LogicalReadsPerSec float64 `json:"logical_reads_per_sec"`

	// Latency distributions of the window's observations.
	HTTPLatency HistoryQuantilesJSON `json:"http_latency"`
	JoinLatency HistoryQuantilesJSON `json:"join_latency"`

	// Result-cache traffic within the window.
	CacheHits     float64 `json:"cache_hits"`
	CacheMisses   float64 `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`

	Series []HistoryPointJSON `json:"series"`
}

// handleStatsHistory reports windowed rate/quantile series from the
// metrics history ring. ?window= takes a Go duration (default: the whole
// ring). The ring samples itself on the server's -history-interval; a
// request arriving before two samples exist gets zeros for every rate.
func (s *Service) handleStatsHistory(w http.ResponseWriter, r *http.Request) {
	var window time.Duration
	if v := r.URL.Query().Get("window"); v != "" {
		var err error
		if window, err = time.ParseDuration(v); err != nil {
			writeError(w, http.StatusBadRequest, "bad window: %v", err)
			return
		}
	}
	win := s.history.Window(window)
	quantiles := func(family string) HistoryQuantilesJSON {
		return HistoryQuantilesJSON{
			P50: win.Quantile(family, 0.50) * 1000,
			P95: win.Quantile(family, 0.95) * 1000,
			P99: win.Quantile(family, 0.99) * 1000,
		}
	}
	resp := HistoryResponse{
		WindowMS:   float64(window) / float64(time.Millisecond),
		SpanMS:     float64(win.Span()) / float64(time.Millisecond),
		Samples:    len(win.Samples),
		TotalTaken: s.history.Total(),
		IntervalMS: float64(s.history.Interval()) / float64(time.Millisecond),

		RequestsPerSec:     win.Rate("cij_http_requests_total"),
		JoinsPerSec:        win.Rate("cij_joins_total"),
		PagesReadPerSec:    win.Rate("cij_pages_read_total"),
		LogicalReadsPerSec: win.Rate("cij_logical_reads_total"),

		HTTPLatency: quantiles("cij_http_request_seconds"),
		JoinLatency: quantiles("cij_join_seconds"),

		CacheHits:     win.Delta("cij_cache_hits_total"),
		CacheMisses:   win.Delta("cij_cache_misses_total"),
		CacheHitRatio: win.Ratio("cij_cache_hits_total", "cij_cache_misses_total"),

		Series: make([]HistoryPointJSON, 0, len(win.Samples)),
	}
	for _, sm := range win.Samples {
		resp.Series = append(resp.Series, HistoryPointJSON{
			Time:         sm.T,
			Requests:     sm.Sum("cij_http_requests_total"),
			Joins:        sm.Sum("cij_joins_total"),
			PagesRead:    sm.Sum("cij_pages_read_total"),
			LogicalReads: sm.Sum("cij_logical_reads_total"),
			CacheHits:    sm.Sum("cij_cache_hits_total"),
			CacheMisses:  sm.Sum("cij_cache_misses_total"),
			Goroutines:   sm.Sum("go_goroutines"),
			HeapInuse:    sm.Sum("go_heap_inuse_bytes"),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
