package service

import (
	"time"

	"cij/internal/core"
	"cij/internal/obs"
	"cij/internal/storage"
)

// This file is the single JSON vocabulary of the service. cmd/cijtool's
// `join -json` emits the same JoinResponse, so the CLI and the server
// cannot drift apart in their machine-readable output.

// PairJSON is one result pair: indexes into the left and right datasets.
type PairJSON struct {
	P int64 `json:"p"`
	Q int64 `json:"q"`
}

// JoinStatsJSON is the cost profile of one join computation.
type JoinStatsJSON struct {
	// PageAccesses is the physical I/O of the run (0 when served from
	// cache).
	PageAccesses int64 `json:"page_accesses"`
	// The I/O breakdown behind PageAccesses: physical reads and writes,
	// node accesses (buffer hits included), and the decoded-node cache's
	// hit/miss split. Omitted when zero (grid runs, cache hits).
	PagesRead    int64 `json:"pages_read,omitempty"`
	PagesWritten int64 `json:"pages_written,omitempty"`
	LogicalReads int64 `json:"logical_reads,omitempty"`
	DecodeHits   int64 `json:"decode_hits,omitempty"`
	DecodeMisses int64 `json:"decode_misses,omitempty"`
	// WallMS is the wall-clock time of the computation in milliseconds
	// (the original run's when served from cache).
	WallMS float64 `json:"wall_ms"`
}

// statsFromIO projects one run's I/O aggregate onto the wire form.
func statsFromIO(io storage.Stats, wall time.Duration) JoinStatsJSON {
	return JoinStatsJSON{
		PageAccesses: io.PageAccesses(),
		PagesRead:    io.PageReads,
		PagesWritten: io.PageWrites,
		LogicalReads: io.LogicalReads,
		DecodeHits:   io.DecodeHits,
		DecodeMisses: io.DecodeMisses,
		WallMS:       float64(wall) / float64(time.Millisecond),
	}
}

// TraceSpanJSON is one phase span of a traced join: phase name, optional
// tag (worker id, tile coordinate), wall-clock share and the counters the
// phase moved.
type TraceSpanJSON struct {
	Phase string `json:"phase"`
	Tag   string `json:"tag,omitempty"`
	// WallMS is the span's wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	obs.Counters
}

// TraceJSON is the per-phase trace block of a traced join response. Span
// I/O counters partition the run's aggregate Stats exactly (the obs
// accounting invariance), so summing the spans reproduces the totals.
type TraceJSON struct {
	Spans []TraceSpanJSON `json:"spans"`
	// Dropped counts spans folded into the per-phase "other" overflow rows
	// when a run exceeded the span cap; 0 in ordinary runs.
	Dropped int64 `json:"dropped,omitempty"`
}

// NewTraceJSON converts recorded spans to the wire form; nil when the run
// was not traced. Exported for cmd/cijtool's `join -json -trace`.
func NewTraceJSON(spans []obs.Span, dropped int64) *TraceJSON {
	if spans == nil {
		return nil
	}
	out := make([]TraceSpanJSON, len(spans))
	for i, sp := range spans {
		out[i] = TraceSpanJSON{
			Phase:    sp.Phase,
			Tag:      sp.Tag,
			WallMS:   float64(sp.Wall) / float64(time.Millisecond),
			Counters: sp.Counters,
		}
	}
	return &TraceJSON{Spans: out, Dropped: dropped}
}

// JoinRequest is the body of POST /join.
type JoinRequest struct {
	Left  string `json:"left"`
	Right string `json:"right"`
	Algo  string `json:"algo,omitempty"`
	// Storage selects the node representation for tree algorithms:
	// "flat", "paged", or "auto"/empty (planner's choice).
	Storage string `json:"storage,omitempty"`
	Workers int    `json:"workers,omitempty"`
	TopK    int    `json:"topk,omitempty"`
	// Trace requests the per-phase trace block in the response.
	Trace bool `json:"trace,omitempty"`
}

// JoinResponse is the buffered join result — the shared response encoding
// of POST /join and `cijtool join -json`.
type JoinResponse struct {
	// QueryID is the service-assigned observation identity: the same ID
	// keys this join's journal record (GET /debug/queries/{id}), its slog
	// lines and the slow-query dump. 0 from contexts that assign no IDs
	// (cijtool).
	QueryID      int64  `json:"query_id,omitempty"`
	Left         string `json:"left"`
	LeftVersion  int    `json:"left_version,omitempty"`
	Right        string `json:"right"`
	RightVersion int    `json:"right_version,omitempty"`
	Algo         string `json:"algo"`
	// Storage is the node representation the join executed on ("flat",
	// "paged"; empty for the storage-less grid backend).
	Storage string        `json:"storage,omitempty"`
	Workers int           `json:"workers,omitempty"`
	Cached  bool          `json:"cached"`
	Count   int64         `json:"count"`
	Pairs   []PairJSON    `json:"pairs,omitempty"`
	Stats   JoinStatsJSON `json:"stats"`
	// Trace is the per-phase trace block, present only when the request
	// asked for one (JoinRequest.Trace / &trace=1). A cache hit replays the
	// original run's spans.
	Trace *TraceJSON `json:"trace,omitempty"`
}

// NewJoinResponse assembles the shared encoding from raw join output;
// topK == 0 keeps all pairs, topK > 0 caps them, topK < 0 omits the pair
// list entirely (Count still reports the full cardinality). It is
// exported for cmd/cijtool.
func NewJoinResponse(left, right, algo string, workers int, pairs []core.Pair, io storage.Stats, wall time.Duration, topK int) JoinResponse {
	return JoinResponse{
		Left:    left,
		Right:   right,
		Algo:    algo,
		Workers: workers,
		Count:   int64(len(pairs)),
		Pairs:   encodePairs(pairs, topK),
		Stats:   statsFromIO(io, wall),
	}
}

// statsJSON projects the outcome's cost onto the wire form — the single
// source of the response's and the journal record's Stats, which is what
// makes the two byte-equal by construction.
func (o *Outcome) statsJSON() JoinStatsJSON {
	st := statsFromIO(o.Result.IO, o.Result.CPU)
	if o.Cached {
		st = JoinStatsJSON{WallMS: st.WallMS} // a hit performs no I/O
	}
	return st
}

// response builds the JoinResponse for one dispatcher outcome. withTrace
// attaches the recorded phase spans (when the run was traced; requests
// that did not opt in leave the block off even if the slow-query log
// forced a trace).
func (o *Outcome) response(topK int, withTrace bool) JoinResponse {
	resp := NewJoinResponse(o.Left.Name, o.Right.Name, o.Plan.Algo, o.Plan.Workers,
		o.Result.Pairs, o.Result.IO, o.Result.CPU, topK)
	resp.QueryID = o.QueryID
	resp.Storage = o.Plan.Storage
	resp.LeftVersion = o.Left.Version
	resp.RightVersion = o.Right.Version
	resp.Cached = o.Cached
	resp.Stats = o.statsJSON()
	if withTrace {
		resp.Trace = NewTraceJSON(o.Result.Trace, o.Result.TraceDropped)
	}
	return resp
}

// encodePairs converts pairs (capped at topK when topK > 0, omitted when
// topK < 0) to the wire form.
func encodePairs(pairs []core.Pair, topK int) []PairJSON {
	if topK < 0 {
		return nil
	}
	if topK > 0 && topK < len(pairs) {
		pairs = pairs[:topK]
	}
	out := make([]PairJSON, len(pairs))
	for i, p := range pairs {
		out[i] = PairJSON{P: p.P, Q: p.Q}
	}
	return out
}

// Stream line types of GET /join/stream (NDJSON): pair lines as produced,
// progress lines from the parallel engine's OnProgress hook, one summary
// line last.

// StreamPair is one streamed pair line ({"type":"pair",...}).
type StreamPair struct {
	Type string `json:"type"`
	P    int64  `json:"p"`
	Q    int64  `json:"q"`
}

// StreamProgress is one streamed progress sample: the live Fig. 9b curve.
type StreamProgress struct {
	Type         string `json:"type"`
	PageAccesses int64  `json:"page_accesses"`
	Pairs        int64  `json:"pairs"`
}

// StreamTrace is the streamed trace line ({"type":"trace",...}), emitted
// just before the summary when the request asked for &trace=1.
type StreamTrace struct {
	Type string `json:"type"`
	TraceJSON
}

// StreamSummary is the terminal stream line: the JoinResponse without the
// pair list (the pairs already went over the wire).
type StreamSummary struct {
	Type string `json:"type"`
	JoinResponse
}

// Stream line types of GET /join/subscribe (NDJSON): one subscribed
// handshake line, then per mutation of either operand a burst of churn
// lines (+pair/-pair) closed by one delta summary line. A lagged line
// replaces further events when the client fell too far behind.

// StreamSubscribed is the handshake line: the subscription's operands
// and the versions the client should base-line with a full join. Every
// later churn event names the versions it transitions TO, so the client
// reconciles by ignoring events at or below the base versions.
type StreamSubscribed struct {
	Type         string `json:"type"` // "subscribed"
	Left         string `json:"left"`
	Right        string `json:"right"`
	LeftVersion  int    `json:"left_version"`
	RightVersion int    `json:"right_version"`
}

// StreamChurn is one pair appearing (+pair) or disappearing (-pair)
// from the subscribed join as of the named versions.
type StreamChurn struct {
	Type         string `json:"type"` // "+pair" | "-pair"
	P            int64  `json:"p"`
	Q            int64  `json:"q"`
	QueryID      int64  `json:"query_id"`
	LeftVersion  int    `json:"left_version"`
	RightVersion int    `json:"right_version"`
}

// DeltaSummaryJSON describes one incremental maintenance run: which
// subscription pair, which side mutated, the churn cardinalities, the
// engine's work metric, and the run's cost in the same Stats vocabulary
// as a full join (so /metrics and the journal reconcile with it).
type DeltaSummaryJSON struct {
	QueryID      int64  `json:"query_id"`
	Left         string `json:"left"`
	LeftVersion  int    `json:"left_version"`
	Right        string `json:"right"`
	RightVersion int    `json:"right_version"`
	// Mutated names which operand changed: "left" or "right".
	Mutated string `json:"mutated"`
	Added   int    `json:"added"`
	Removed int    `json:"removed"`
	// AffectedSites counts mutated-side Voronoi cells recomputed; Probes
	// counts exact join-predicate evaluations — the work that replaced a
	// full |P|·|Q| recompute.
	AffectedSites int           `json:"affected_sites"`
	Probes        int           `json:"probes"`
	Stats         JoinStatsJSON `json:"stats"`
}

// StreamDelta is the terminal line of one mutation's event burst.
type StreamDelta struct {
	Type string `json:"type"` // "delta"
	DeltaSummaryJSON
}

// StreamLagged is the terminal line of an overrun subscription: the
// server dropped events rather than block the mutation path, so the
// client must resubscribe and re-baseline.
type StreamLagged struct {
	Type  string `json:"type"` // "lagged"
	Error string `json:"error"`
}

// StreamClosed is the terminal line of a subscription ended by server
// shutdown: the stream is complete (nothing was dropped) and the client
// should resubscribe once the server is back.
type StreamClosed struct {
	Type   string `json:"type"` // "closed"
	Reason string `json:"reason"`
}

// MutationRequest is the body of POST /datasets/{name}/points: point
// inserts ("points" is shorthand for "insert"), moves and deletes,
// applied as one atomic batch producing one new dataset version.
type MutationRequest struct {
	Points []PointJSON     `json:"points,omitempty"`
	Insert []PointJSON     `json:"insert,omitempty"`
	Update []MovePointJSON `json:"update,omitempty"`
	Delete []int64         `json:"delete,omitempty"`
}

// PointJSON is one point position on the wire.
type PointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// MovePointJSON relocates one live point.
type MovePointJSON struct {
	ID int64   `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// MutationResponse reports one applied mutation batch: the new version,
// the IDs assigned to inserts, and one delta summary per subscription
// pair the batch maintained (empty when nobody subscribes to the
// dataset).
type MutationResponse struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	// Points is the live cardinality after the batch.
	Points      int     `json:"points"`
	InsertedIDs []int64 `json:"inserted_ids,omitempty"`
	Updated     int     `json:"updated,omitempty"`
	Deleted     int     `json:"deleted,omitempty"`
	Pages       int     `json:"pages"`
	Skew        float64 `json:"skew"`
	// Deltas summarizes the incremental join maintenance this mutation
	// triggered, in subscription order.
	Deltas []DeltaSummaryJSON `json:"deltas,omitempty"`
}

// DatasetInfo describes one registry entry in /datasets and /stats. Skew
// is the ingest-time density statistic the auto planner routes on, so a
// client can predict (and debug) algorithm selection.
type DatasetInfo struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	// Points is the LIVE cardinality — what joins operate on.
	Points int `json:"points"`
	// Tombstones counts deleted-point slots still occupying ID space
	// (mutable datasets never renumber); 0 for never-deleted datasets.
	Tombstones int     `json:"tombstones,omitempty"`
	Pages      int     `json:"pages"`
	Skew       float64 `json:"skew"`
	// Storage lists the node representations this dataset can serve
	// (every ingest builds both the paged tree and its flat copy).
	Storage []string `json:"storage"`
}

// datasetInfo converts a registry entry to its wire form.
func datasetInfo(d *Dataset) DatasetInfo {
	storage := []string{"paged"}
	if d.FlatTree != nil {
		storage = append(storage, "flat")
	}
	return DatasetInfo{
		Name:       d.Name,
		Version:    d.Version,
		Points:     d.Live,
		Tombstones: len(d.Points) - d.Live,
		Pages:      d.Pages,
		Skew:       d.Skew,
		Storage:    storage,
	}
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	UptimeMS      float64       `json:"uptime_ms"`
	Build         BuildInfoJSON `json:"build"`
	Datasets      []DatasetInfo `json:"datasets"`
	Ingests       int64         `json:"ingests"`
	JoinsServed   int64         `json:"joins_served"`
	JoinsComputed int64         `json:"joins_computed"`
	// JoinsFlat counts computed joins that read flat (arena) storage —
	// decode-free runs whose page I/O is structurally zero.
	JoinsFlat    int64 `json:"joins_flat"`
	PageAccesses int64 `json:"page_accesses"`
	// DecodeHits sums the decoded-node cache hits of computed joins: node
	// accesses that skipped page re-parsing (CPU saved, I/O untouched).
	DecodeHits   int64 `json:"decode_hits"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`
	CacheEvicted int64 `json:"cache_evicted"`
	// Mutations counts accepted point-mutation batches; DeltaRuns the
	// incremental maintenance computations they triggered (one per live
	// subscription pair); PairsChurned the +pair/-pair events those runs
	// emitted. The three reconcile with cij_mutations_total,
	// cij_delta_runs_total and cij_pair_churn_total on /metrics.
	Mutations    int64 `json:"mutations"`
	DeltaRuns    int64 `json:"delta_runs"`
	PairsChurned int64 `json:"pairs_churned"`
	// Subscribers is the current number of open /join/subscribe streams.
	Subscribers   int `json:"subscribers"`
	InFlight      int `json:"in_flight"`
	MaxConcurrent int `json:"max_concurrent"`
}

// StatsSnapshot assembles the current counters.
func (s *Service) StatsSnapshot() StatsResponse {
	hits, misses, evicted, entries := s.cache.counters()
	datasets := s.reg.List()
	infos := make([]DatasetInfo, len(datasets))
	for i, d := range datasets {
		infos[i] = datasetInfo(d)
	}
	return StatsResponse{
		UptimeMS:      float64(time.Since(s.start)) / float64(time.Millisecond),
		Build:         buildInfo(),
		Datasets:      infos,
		Ingests:       s.ingests.Load(),
		JoinsServed:   s.joinsServed.Load(),
		JoinsComputed: s.joinsComputed.Load(),
		JoinsFlat:     s.joinsFlat.Load(),
		PageAccesses:  s.pageAccesses.Load(),
		DecodeHits:    s.decodeHits.Load(),
		CacheHits:     hits,
		CacheMisses:   misses,
		CacheEntries:  entries,
		CacheEvicted:  evicted,
		Mutations:     s.mutations.Load(),
		DeltaRuns:     s.deltaRuns.Load(),
		PairsChurned:  s.pairsChurned.Load(),
		Subscribers:   s.hub.count(),
		InFlight:      s.InFlight(),
		MaxConcurrent: s.cfg.MaxConcurrent,
	}
}
