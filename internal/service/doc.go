// Package service is the CIJ query service: the layer that turns the
// repository's join algorithms into something that can be *served* —
// named datasets, concurrent queries, result reuse — rather than run once
// from a test harness or CLI. cmd/cijserver exposes it over HTTP.
//
// # Architecture
//
// The service is three cooperating parts behind a small HTTP surface:
//
//   - Registry (registry.go): named, versioned pointsets. Each Dataset
//     owns a private simulated disk, an LRU storage.Buffer sized as a
//     percentage of its data pages, and an rtree.Tree bulk-loaded over
//     that buffer at ingest time — so serving a join never pays index
//     construction for the no-materialization algorithms. Ingesting a
//     name again replaces the whole Dataset value and bumps a
//     registry-scoped version counter; in-flight queries keep reading the
//     old dataset's disk (immutable after build), new queries see the new
//     version. Queries never touch a dataset's base buffer: each request
//     forks a private buffer view (storage.Buffer.Fork +
//     rtree.Tree.WithBuffer), which keeps concurrent joins lock-free on
//     the hot path, exactly as the parallel engine's workers do.
//
//   - Live mutation path (registry.go Mutate, mutate.go, subscribe.go):
//     point-level inserts, moves and deletes applied as one atomic batch
//     producing one new dataset version. The old version's pages stay
//     readable through a copy-on-write disk snapshot (storage.Disk.Clone
//     with rtree.Tree.CloneMut), so in-flight joins keep the exact
//     version they resolved — snapshot isolation, no locks on the join path;
//     a service-level mutex serializes mutators only. Deleted points
//     tombstone (IDs never renumber, so pair identities stay stable
//     across versions); the point-array algorithms (grid/PM/FM) compact
//     live points per query and remap their pairs back to original IDs.
//     Each mutation of a subscribed dataset triggers a delta run
//     (internal/delta): the paper's Lemma 1/2 influence bound localizes
//     which Voronoi cells a change can affect, so the engine computes
//     exactly which pairs appear/disappear without recomputing the join,
//     and /join/subscribe streams that churn as NDJSON events.
//
//   - Planner/dispatcher (planner.go): maps a Query {left, right, algo,
//     workers, topk} onto an execution plan. An explicit algo ("nm", "pm",
//     "fm", "parallel", "grid") is honored; "auto" (or empty) routes on
//     cardinality and density: the parallel partitioned engine when the
//     joint cardinality is large enough to amortize its fan-out (sizing
//     the worker pool from dataset cardinalities when the query does not
//     fix it), otherwise the in-memory grid backend (internal/grid, zero
//     I/O) when both datasets' ingest-time skew statistics say the
//     uniform tiling will hold up, and serial NM-CIJ for skewed serial
//     joins. The materializing algorithms (PM/FM) write Voronoi R-trees,
//     so they run in a per-request scratch environment (their own disk)
//     instead of the registry's read-only disks. A bounded admission
//     semaphore caps the number of joins executing at once: excess
//     requests queue (FIFO on a channel) instead of thrashing the
//     machine, and /stats reports the in-flight count.
//
//   - Result cache (cache.go): a versioned LRU keyed by
//     (left@ver, right@ver, algo, workers). Because dataset versions are
//     part of the key, re-ingesting a dataset invalidates all its cached
//     results implicitly — stale entries can never be hit and age out of
//     the LRU; ingest also sweeps them eagerly to release memory. A
//     repeated join on unchanged datasets is served entirely from memory:
//     zero page accesses, zero admission slots. TopK is applied when
//     building the response, not in the key, so one cached result serves
//     every prefix of itself.
//
// # HTTP surface
//
//	POST /datasets/{name}   ingest CSV body or ?gen= generator spec
//	GET  /datasets          list name/version/cardinality/pages
//	POST /datasets/{name}/points        mutate: one atomic batch of
//	                        {insert, update, delete} -> new version,
//	                        MutationResponse with per-subscription deltas
//	DELETE /datasets/{name}/points/{id} single-point delete shorthand
//	POST /join              buffered JSON join (JoinRequest -> JoinResponse)
//	GET  /join/stream       progressive NDJSON: pair lines as the join
//	                        produces them (Fig. 9b's non-blocking property,
//	                        preserved through parallel.Options.OnPair),
//	                        progress lines from the parallel engine's
//	                        OnProgress hook, then one summary line
//	GET  /join/subscribe    long-lived NDJSON churn stream for one join:
//	                        a "subscribed" line with base versions, then
//	                        per-mutation "+pair"/"-pair" events and one
//	                        "delta" summary; a lagging client gets a
//	                        terminal "lagged" line and must resubscribe
//	GET  /stats             counters: datasets, joins, cache, page accesses
//	GET  /stats/history     windowed rates/quantiles from the self-scraped
//	                        metrics ring (?window=30s)
//	GET  /metrics           Prometheus text exposition of every family
//	GET  /debug/queries     the query journal: recent observation records,
//	                        filterable by ?dataset= ?algo= ?min_ms= ?limit=
//	GET  /debug/queries/{id}            one record, retained trace inline
//	GET  /debug/queries/{id}/trace.json the retained trace as Chrome
//	                        trace-event JSON (chrome://tracing, Perfetto)
//
// The buffered and streaming paths share one executor and one encoding
// (encode.go); cmd/cijtool's -json flag emits the same JoinResponse, so
// CLI and server outputs cannot drift.
//
// # Observability
//
// metrics.go registers the service's metric families on an internal/obs
// registry: per-route request counters and latency histograms, per-algo
// join counters and latency histograms, planner decisions, the I/O
// counter families (pages read/written, logical reads, decode hits and
// misses, buffer evictions via storage.Buffer.SetOnEvict on per-request
// views), admission-queue wait/depth, and func-backed cache/registry
// gauges. The I/O families are fed from the same storage.Stats aggregate
// the response reports, so /metrics deltas reconcile with per-query stats
// exactly. POST /join?explain=1 returns the planner's decision (plan,
// reason, inputs) without executing; JoinRequest.Trace / &trace=1 attach
// the per-phase obs.Trace spans to the response (or as a "trace" NDJSON
// line); Config.SlowQuery arms a slow-query log that dumps the full phase
// trace of any join over the threshold through Config.Logger (log/slog).
//
// # Query journal: the observation record as a training contract
//
// journal.go records every served join as one JournalRecord — the
// observation corpus the ROADMAP's learned planner (a fitted cost model
// replacing the hand-tuned gates) trains from. Each record is
// deliberately self-contained: it pairs the full decision context with
// the measured outcome, so a single JSONL line is one supervised example
// with no joins against other logs required.
//
//   - Identity: ID (the query ID threaded through JoinResponse.QueryID,
//     the NDJSON summary line and every slog record), Time, and the
//     dataset names *with versions* — observations survive re-ingests
//     without silently mixing distributions.
//   - Decision: the executed Plan (algo, storage, workers), Cached, the
//     planner's narrated Reason, and PlanInputs (cardinalities, skew
//     statistics, the gate constants in force) — the feature vector.
//   - Outcome: Pairs and Stats, where Stats is built by the same
//     projection as the JoinResponse's (Outcome.statsJSON), making the
//     journal byte-equal to the response and, because the metric
//     families are fed from the same storage.Stats, reconciled with
//     /metrics counter deltas — the label vector, already consistent
//     with every other surface.
//
// The in-memory ring keeps the newest records plus the phase traces of
// the slowest-K computed joins; cijserver's -journal flag appends every
// record (traces included) to a JSONL file, and ReadJournal replays it.
// Explain attaches Journal.Observed — the aggregate over matching past
// observations — next to the model's reasoning, so the modeled-vs-
// observed gap is visible per plan before any learning exists.
// Config.JournalEntries < 0 disables the subsystem entirely (a nil
// *Journal no-ops), restoring the untraced hot path.
//
// # Durability
//
// Open with Config.DataDir attaches the durable tier (persist.go): the
// in-memory registry stays the working representation, and durability is
// a redo log beside it. The directory holds a MANIFEST.json (the atomic
// root: dataset -> snapshot-file/version map plus the clean-shutdown
// marker), one checksummed page file per dataset version (the exact
// bytes of its simulated disk, so restore reproduces pages/op
// identically), and a write-ahead log of mutation batches.
//
// The ordering invariants, all serialized under the mutation mutex:
//
//   - Ingest: snapshot file and manifest are written (and fsync'd)
//     BEFORE the registry install. A crash in between leaves an
//     unacknowledged-but-complete dataset — never a partial one.
//   - Mutation: the batch's WAL record is appended and fsync'd BEFORE
//     the prepared version installs (PrepareMutation/Install split in
//     registry.go), so an acknowledged batch always replays whole.
//   - Checkpoint: once the WAL exceeds Config.CheckpointWALBytes,
//     changed datasets are re-snapshotted, the manifest rewritten, and
//     only then the WAL trimmed. Replay is idempotent by version
//     arithmetic — a record whose Result version is already on disk is
//     skipped as stale — so a crash between manifest and trim is safe.
//
// Recovery (Open) replays manifest -> snapshots -> WAL tail to the exact
// last-installed state, reports itself via RecoveryInfo and the
// cij_recovery_* /metrics families, and Close writes the final
// checkpoint plus the clean-shutdown marker. Fsck (fsck.go) is the same
// pipeline read-only, surfaced as `cijtool fsck`; the crash matrix in
// internal/check proves every fault point recovers to an
// exactly-installed version.
package service
