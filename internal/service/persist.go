package service

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"path/filepath"
	"time"

	"cij/internal/dataset"
	"cij/internal/geom"
	"cij/internal/grid"
	"cij/internal/rtree"
	"cij/internal/storage"
)

// The durable store. One directory holds the whole registry:
//
//	MANIFEST.json        the root: per-dataset version + snapshot file +
//	                     tree header, plus the clean-shutdown marker.
//	                     Replaced atomically (write tmp, fsync, rename,
//	                     fsync dir); after any crash it is either the old
//	                     or the new manifest, complete.
//	<name>.v<N>.pages    version N of one dataset's disk, in the
//	                     checksummed page-file format (storage.SaveDiskFile)
//	                     — the same 1 KB pages the in-memory simulation
//	                     serves, byte for byte.
//	wal.log              the write-ahead log: one CRC-framed record per
//	                     atomic mutation batch, fsync'd BEFORE the batch
//	                     installs, so an acknowledged mutation is always
//	                     recoverable.
//
// Recovery replays manifest -> snapshots -> WAL tail: each snapshot
// restores its dataset at the manifest's version, then WAL records apply
// in order wherever record.Result == version+1 and are skipped as stale
// wherever record.Result <= version (the checkpoint-then-crash-before-trim
// case — replay is idempotent by version arithmetic, no record ever
// applies twice). Checkpoints fold the log into fresh snapshots and trim
// it; the manifest moves first, so a crash between the two only creates
// stale records.
const (
	manifestName   = "MANIFEST.json"
	walName        = "wal.log"
	manifestFormat = 1
	// DefaultCheckpointWALBytes is the WAL size that triggers a
	// checkpoint after a mutation installs.
	DefaultCheckpointWALBytes = 4 << 20
)

// manifestDataset is one dataset's durable root: which snapshot file
// holds its pages and the tree header to reattach with.
type manifestDataset struct {
	Name    string     `json:"name"`
	Version int        `json:"version"`
	File    string     `json:"file"`
	Meta    rtree.Meta `json:"meta"`
}

type manifest struct {
	Format        int               `json:"format"`
	CleanShutdown bool              `json:"clean_shutdown"`
	Datasets      []manifestDataset `json:"datasets"`
}

func (m *manifest) find(name string) *manifestDataset {
	for i := range m.Datasets {
		if m.Datasets[i].Name == name {
			return &m.Datasets[i]
		}
	}
	return nil
}

func (m *manifest) set(md manifestDataset) {
	if cur := m.find(md.Name); cur != nil {
		*cur = md
		return
	}
	m.Datasets = append(m.Datasets, md)
}

// walRecord is one logged mutation batch. Base and Result pin it to a
// version transition, which is what makes replay idempotent: a record
// applies only onto exactly Base, and is stale everywhere at or past
// Result.
type walRecord struct {
	Name   string       `json:"name"`
	Base   int          `json:"base"`
	Result int          `json:"result"`
	Spec   MutationSpec `json:"spec"`
}

// RecoveryInfo is what a cold start found — logged at boot and exported
// through the cij_recovery_* metric families.
type RecoveryInfo struct {
	// Fresh means no manifest existed: a brand-new data directory.
	Fresh bool
	// CleanShutdown is the marker the previous process left; false means
	// it crashed (or was killed) and the WAL tail did the recovering.
	CleanShutdown bool
	// Datasets restored from snapshots.
	Datasets int
	// Replayed counts WAL records applied on top of the snapshots.
	Replayed int
	// Stale counts WAL records skipped because their version was already
	// in a snapshot (checkpoint ran, crash hit before the trim).
	Stale int
	// CorruptRecords and TornTail report what the WAL scan dropped.
	CorruptRecords int
	TornTail       bool
}

// Store is a Service's durable tier: the manifest, the snapshot page
// files and the WAL under one directory, reached through a storage.FS so
// the crash tests can run it on storage.FaultFS. All mutating methods are
// called with the service's mutMu held — the store itself is
// single-writer.
type Store struct {
	fs  storage.FS
	dir string
	wal *storage.WAL
	man manifest
	// checkpointBytes is the WAL size that triggers a checkpoint after an
	// install folds in.
	checkpointBytes int64
	metrics         *serviceMetrics // nil in store-only tests
	logger          *slog.Logger
}

func (st *Store) path(name string) string { return filepath.Join(st.dir, name) }

func snapshotFile(name string, version int) string {
	return fmt.Sprintf("%s.v%d.pages", name, version)
}

// openStore opens (or initializes) the durable directory, restores every
// manifest dataset into reg, replays the WAL tail, and marks the manifest
// dirty so the next boot can tell whether this process shut down cleanly.
func openStore(fsys storage.FS, dir string, reg *Registry, metrics *serviceMetrics, logger *slog.Logger) (*Store, *RecoveryInfo, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("service: creating data dir: %w", err)
	}
	st := &Store{
		fs:              fsys,
		dir:             dir,
		checkpointBytes: DefaultCheckpointWALBytes,
		metrics:         metrics,
		logger:          logger,
	}
	info := &RecoveryInfo{}

	data, err := storage.ReadFileAll(fsys, st.path(manifestName))
	switch {
	case storage.IsNotExist(err):
		info.Fresh = true
		info.CleanShutdown = true
		st.man = manifest{Format: manifestFormat, CleanShutdown: true}
	case err != nil:
		return nil, nil, fmt.Errorf("service: reading manifest: %w", err)
	default:
		if err := json.Unmarshal(data, &st.man); err != nil {
			return nil, nil, fmt.Errorf("service: decoding manifest: %w", err)
		}
		if st.man.Format != manifestFormat {
			return nil, nil, fmt.Errorf("service: manifest format %d, this build reads %d", st.man.Format, manifestFormat)
		}
		info.CleanShutdown = st.man.CleanShutdown
	}

	for _, md := range st.man.Datasets {
		d, err := restoreDataset(fsys, st.path(md.File), md, reg.bufferPct)
		if err != nil {
			return nil, nil, fmt.Errorf("service: restoring %q v%d: %w", md.Name, md.Version, err)
		}
		if err := reg.InstallRestored(d); err != nil {
			return nil, nil, err
		}
		info.Datasets++
	}

	wal, scan, err := storage.OpenWAL(fsys, st.path(walName))
	if err != nil {
		return nil, nil, fmt.Errorf("service: opening WAL: %w", err)
	}
	st.wal = wal
	info.CorruptRecords = scan.CorruptRecords
	info.TornTail = scan.TornTail
	if scan.DroppedBytes > 0 {
		logger.Warn("WAL tail dropped",
			"bytes", scan.DroppedBytes,
			"torn_tail", scan.TornTail,
			"corrupt_records", scan.CorruptRecords)
	}

	for i, raw := range scan.Records {
		var rec walRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			// The frame CRC held but the payload does not decode: framing
			// from a different build, or corruption the CRC cannot see.
			// Stop replay here, like a mid-log CRC failure.
			info.CorruptRecords++
			logger.Warn("stopping WAL replay at undecodable record", "index", i, "err", err)
			break
		}
		cur, ok := reg.Get(rec.Name)
		if !ok {
			// A record for a dataset the manifest does not know: the
			// ingest protocol writes the manifest before any WAL record
			// can name the dataset, so this is stale state from before a
			// (crashed) re-initialization. Skip.
			info.Stale++
			continue
		}
		if rec.Result <= cur.Version {
			info.Stale++
			continue
		}
		if rec.Base != cur.Version {
			info.CorruptRecords++
			logger.Warn("stopping WAL replay at version gap",
				"index", i, "dataset", rec.Name, "record_base", rec.Base, "have", cur.Version)
			break
		}
		if _, _, _, err := reg.Mutate(rec.Name, rec.Spec); err != nil {
			// The batch validated before it was logged; failing now means
			// the recovered base state does not match what the record was
			// built against — corruption, not a tolerable skip.
			return nil, nil, fmt.Errorf("service: replaying WAL record %d for %q: %w", i, rec.Name, err)
		}
		info.Replayed++
	}

	// From here the process is live: mark the manifest dirty so the next
	// boot knows whether Close ran.
	st.man.CleanShutdown = false
	st.man.Format = manifestFormat
	if err := st.writeManifest(); err != nil {
		return nil, nil, fmt.Errorf("service: marking manifest dirty: %w", err)
	}
	return st, info, nil
}

func (st *Store) writeManifest() error {
	data, err := json.MarshalIndent(&st.man, "", "  ")
	if err != nil {
		return err
	}
	return storage.WriteFileAtomic(st.fs, st.path(manifestName), data)
}

// logMutation appends the batch as one WAL record and fsyncs it — the
// commit point. Called between PrepareMutation and Install, under mutMu.
func (st *Store) logMutation(p *PreparedMutation) error {
	rec := walRecord{Name: p.name, Base: p.Base(), Result: p.Result(), Spec: p.Spec()}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := st.wal.Append(data); err != nil {
		return err
	}
	start := time.Now()
	if err := st.wal.Sync(); err != nil {
		return err
	}
	if st.metrics != nil {
		st.metrics.walAppends.Inc()
		st.metrics.walFsync.Observe(time.Since(start).Seconds())
	}
	return nil
}

// logIngest makes a prepared ingest durable before it installs: the new
// version's snapshot page file, then the manifest pointing at it. A crash
// in between leaves an orphan snapshot file the next successful ingest
// cleanup collects; a crash after the manifest write recovers the ingest
// (unacknowledged but complete — never partial).
func (st *Store) logIngest(d *Dataset, version int) error {
	file := snapshotFile(d.Name, version)
	if err := storage.SaveDiskFile(st.fs, st.path(file), d.Tree.Buffer().Disk()); err != nil {
		return err
	}
	prev := st.man.find(d.Name)
	var prevFile string
	if prev != nil {
		prevFile = prev.File
	}
	st.man.set(manifestDataset{Name: d.Name, Version: version, File: file, Meta: d.Tree.Meta()})
	if err := st.writeManifest(); err != nil {
		return err
	}
	st.removeSuperseded(prevFile)
	return nil
}

// maybeCheckpoint folds the WAL into snapshots once it has outgrown the
// threshold. Failures are logged, not returned: the WAL still holds every
// committed batch, so a failed checkpoint costs replay time, not data.
func (st *Store) maybeCheckpoint(reg *Registry) {
	if st.wal.Size() < st.checkpointBytes {
		return
	}
	if err := st.checkpoint(reg); err != nil {
		st.logger.Warn("checkpoint failed; WAL keeps the batches", "err", err)
	}
}

// checkpoint snapshots every dataset whose serving version is newer than
// its manifest entry, moves the manifest, and only then trims the WAL.
// Called under mutMu.
func (st *Store) checkpoint(reg *Registry) error {
	var superseded []string
	changed := false
	for _, d := range reg.List() {
		md := st.man.find(d.Name)
		if md != nil && md.Version == d.Version {
			continue
		}
		file := snapshotFile(d.Name, d.Version)
		if err := storage.SaveDiskFile(st.fs, st.path(file), d.Tree.Buffer().Disk()); err != nil {
			return fmt.Errorf("snapshotting %q v%d: %w", d.Name, d.Version, err)
		}
		if md != nil {
			superseded = append(superseded, md.File)
		}
		st.man.set(manifestDataset{Name: d.Name, Version: d.Version, File: file, Meta: d.Tree.Meta()})
		changed = true
	}
	if changed {
		if err := st.writeManifest(); err != nil {
			return fmt.Errorf("writing manifest: %w", err)
		}
	}
	// The manifest is durable; the log's records are all stale now.
	if err := st.wal.Trim(); err != nil {
		return fmt.Errorf("trimming WAL: %w", err)
	}
	if st.metrics != nil {
		st.metrics.checkpoints.Inc()
	}
	st.removeSuperseded(superseded...)
	return nil
}

// removeSuperseded deletes snapshot files no manifest entry references
// anymore. Best-effort: a leftover file wastes disk, nothing else.
func (st *Store) removeSuperseded(files ...string) {
	removed := false
	for _, f := range files {
		if f == "" {
			continue
		}
		if cur := st.man.find(datasetOfSnapshot(f)); cur != nil && cur.File == f {
			continue // still referenced (version did not move)
		}
		if err := st.fs.Remove(st.path(f)); err != nil && !storage.IsNotExist(err) {
			st.logger.Warn("removing superseded snapshot", "file", f, "err", err)
			continue
		}
		removed = true
	}
	if removed {
		if err := st.fs.SyncDir(st.dir); err != nil {
			st.logger.Warn("syncing data dir after snapshot cleanup", "err", err)
		}
	}
}

// datasetOfSnapshot recovers the dataset name from a snapshot file name
// (<name>.v<N>.pages; dataset names cannot contain "/", and the ".v"
// split is anchored at the END so dotted dataset names survive).
func datasetOfSnapshot(file string) string {
	base := file
	if i := len(base) - len(".pages"); i > 0 && base[i:] == ".pages" {
		base = base[:i]
	}
	for i := len(base) - 1; i > 0; i-- {
		if base[i] == 'v' && base[i-1] == '.' {
			return base[:i-1]
		}
	}
	return base
}

// close checkpoints, marks the shutdown clean and releases the WAL.
// Called under mutMu after the HTTP server has drained.
func (st *Store) close(reg *Registry) error {
	if err := st.checkpoint(reg); err != nil {
		return err
	}
	st.man.CleanShutdown = true
	if err := st.writeManifest(); err != nil {
		return err
	}
	return st.wal.Close()
}

// restoreDataset rebuilds one serving Dataset from its snapshot: reopen
// the disk (verifying every page checksum), reattach the tree at the
// manifest's header, and reconstruct the point table from the leaves.
// Point IDs are leaf entry IDs, so live points land back in their exact
// slots; slots the leaves do not name were tombstoned before the
// snapshot and stay dead (their coordinates are gone, but nothing reads
// a dead slot's position).
func restoreDataset(fsys storage.FS, path string, md manifestDataset, bufferPct float64) (*Dataset, error) {
	disk, err := storage.OpenDiskFile(fsys, path)
	if err != nil {
		return nil, err
	}
	// Restore-time traversals run through an unbounded buffer, exactly
	// like an ingest-time build; the serving capacity is applied (and the
	// stats cleared) once the dataset is assembled.
	buf := storage.NewBuffer(disk, 1<<30)
	tree, err := rtree.Open(buf, md.Meta)
	if err != nil {
		return nil, err
	}
	if err := tree.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("restored tree fails invariants: %w", err)
	}

	entries := tree.AllEntries()
	if len(entries) != md.Meta.Size {
		return nil, fmt.Errorf("restored tree has %d entries, header says %d", len(entries), md.Meta.Size)
	}
	maxID := int64(-1)
	for _, e := range entries {
		if e.ID < 0 {
			return nil, fmt.Errorf("restored tree carries negative point id %d", e.ID)
		}
		if e.ID > maxID {
			maxID = e.ID
		}
	}
	pts := make([]geom.Point, maxID+1)
	var alive []bool
	if int64(len(entries)) != maxID+1 {
		alive = make([]bool, maxID+1)
	}
	for _, e := range entries {
		pts[e.ID] = e.Pt
		if alive != nil {
			if alive[e.ID] {
				return nil, fmt.Errorf("restored tree names point %d twice", e.ID)
			}
			alive[e.ID] = true
		}
	}

	pages := tree.NumPages()
	capPages := int(math.Ceil(float64(pages) * bufferPct / 100))
	if capPages < 1 {
		capPages = 1
	}
	d := &Dataset{
		Name:        md.Name,
		Version:     md.Version,
		Points:      pts,
		Alive:       alive,
		Live:        len(entries),
		Tree:        tree,
		FlatTree:    tree.Freeze(),
		Pages:       pages,
		BufferPages: capPages,
	}
	livePts, _ := d.JoinPoints()
	d.Skew = grid.SkewEstimate(livePts, dataset.Domain)
	buf.SetCapacity(capPages)
	buf.DropAll()
	buf.ResetStats()
	return d, nil
}
