package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"cij/internal/delta"
	"cij/internal/geom"
)

// maxMutationBodyBytes caps a mutation request body; even a full
// maxMutationBatch of changes encodes well under a megabyte.
const maxMutationBodyBytes = 8 << 20

// MutatePoints applies one atomic batch of point-level changes to the
// named dataset: a new copy-on-write version is installed, the dataset's
// cached join results are swept, and — for every live subscription
// involving the dataset — the incremental delta engine computes and
// publishes exactly which join pairs appeared and disappeared.
//
// The whole pipeline runs under mutMu, so concurrent mutations serialize
// and subscribers observe every version transition once, in version
// order. Joins never take the lock: a join in flight keeps reading the
// version it resolved, which the COW snapshot keeps byte-stable.
func (s *Service) MutatePoints(name string, req MutationRequest) (*MutationResponse, error) {
	spec := MutationSpec{
		Insert: make([]geom.Point, 0, len(req.Points)+len(req.Insert)),
		Update: make([]PointMove, 0, len(req.Update)),
		Delete: req.Delete,
	}
	for _, p := range req.Points {
		spec.Insert = append(spec.Insert, geom.Pt(p.X, p.Y))
	}
	for _, p := range req.Insert {
		spec.Insert = append(spec.Insert, geom.Pt(p.X, p.Y))
	}
	for _, mv := range req.Update {
		spec.Update = append(spec.Update, PointMove{ID: mv.ID, Pt: geom.Pt(mv.X, mv.Y)})
	}

	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	old, cur, changes, err := s.applyMutation(name, spec)
	if err != nil {
		return nil, err
	}
	// The old version's cached results are version-keyed and therefore
	// already unreachable; the sweep just releases their memory eagerly.
	s.cache.invalidateDataset(name)
	s.mutations.Add(1)
	if n := len(spec.Insert); n > 0 {
		s.metrics.mutations.With("insert").Add(int64(n))
	}
	if n := len(spec.Update); n > 0 {
		s.metrics.mutations.With("update").Add(int64(n))
	}
	if n := len(spec.Delete); n > 0 {
		s.metrics.mutations.With("delete").Add(int64(n))
	}
	s.logger.Info("dataset mutated",
		"name", name,
		"version", cur.Version,
		"inserted", len(spec.Insert),
		"updated", len(spec.Update),
		"deleted", len(spec.Delete),
		"points", cur.Live,
		"pages", cur.Pages,
	)

	deltas := s.propagateMutation(old, cur, changes)

	resp := &MutationResponse{
		Name:    name,
		Version: cur.Version,
		Points:  cur.Live,
		Updated: len(spec.Update),
		Deleted: len(spec.Delete),
		Pages:   cur.Pages,
		Skew:    cur.Skew,
		Deltas:  deltas,
	}
	if n := len(spec.Insert); n > 0 {
		resp.InsertedIDs = make([]int64, n)
		for i := range resp.InsertedIDs {
			resp.InsertedIDs[i] = int64(len(old.Points) + i)
		}
	}
	return resp, nil
}

// applyMutation runs one batch through the registry — and, when the
// service is durable, through the write-ahead log between the prepare and
// install halves: the record is appended and fsync'd BEFORE the new
// version becomes visible, so a crash at any instant leaves either no
// trace of the batch or a record that replays it whole. Callers hold
// mutMu, which is what pins PreparedMutation.Result to the version the
// install actually assigns.
func (s *Service) applyMutation(name string, spec MutationSpec) (old, cur *Dataset, changes []delta.Change, err error) {
	st := s.store.Load()
	if st == nil {
		return s.reg.Mutate(name, spec)
	}
	p, err := s.reg.PrepareMutation(name, spec)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := st.logMutation(p); err != nil {
		return nil, nil, nil, fmt.Errorf("persisting mutation of %q: %w", name, err)
	}
	old, cur, changes, err = s.reg.Install(p)
	if err != nil {
		// Unreachable while every writer holds mutMu; if it ever fires,
		// checkpoint to trim the just-logged record so its version slot
		// cannot collide with a future batch's on replay.
		if cerr := st.checkpoint(s.reg); cerr != nil {
			s.logger.Warn("checkpoint after failed install", "err", cerr)
		}
		return nil, nil, nil, err
	}
	st.maybeCheckpoint(s.reg)
	return old, cur, changes, nil
}

// mutationErrorStatus maps registry mutation errors onto HTTP statuses:
// a missing dataset is 404, immutability and install races are 409
// (retryable conflicts, not malformed requests), anything else — bad
// IDs, out-of-domain positions, oversized or empty batches — is the
// client's 400.
func mutationErrorStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownDataset):
		return http.StatusNotFound
	case errors.Is(err, ErrDatasetImmutable), errors.Is(err, ErrMutationConflict):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// handleMutatePoints is POST /datasets/{name}/points: one atomic batch
// of inserts ("points" or "insert"), moves ("update") and deletes
// ("delete").
func (s *Service) handleMutatePoints(w http.ResponseWriter, r *http.Request) {
	var req MutationRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxMutationBodyBytes)).Decode(&req); err != nil {
		writeError(w, bodyErrorStatus(err), "bad mutation request: %v", err)
		return
	}
	resp, err := s.MutatePoints(r.PathValue("name"), req)
	if err != nil {
		writeError(w, mutationErrorStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDeletePoint is DELETE /datasets/{name}/points/{id}: sugar for a
// single-delete batch.
func (s *Service) handleDeletePoint(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad point id %q: %v", r.PathValue("id"), err)
		return
	}
	resp, err := s.MutatePoints(r.PathValue("name"), MutationRequest{Delete: []int64{id}})
	if err != nil {
		writeError(w, mutationErrorStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
