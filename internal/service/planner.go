package service

import (
	"fmt"
	"runtime"
	"time"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/geom"
	"cij/internal/grid"
	"cij/internal/obs"
	"cij/internal/parallel"
	"cij/internal/rtree"
	"cij/internal/storage"
)

// autoPointsPerWorker is the planner's sizing unit: roughly how many
// joined points one worker is worth. The auto plan goes parallel once the
// joint cardinality covers two workers and sizes the pool as
// cardinality / autoPointsPerWorker (capped at GOMAXPROCS) — small joins
// stay serial because partitioning and merge overhead would dominate them.
const autoPointsPerWorker = 25_000

// autoGridSkewMax is the density gate of the serial-range auto plan: a
// join goes to the in-memory grid backend only when BOTH datasets'
// Poisson-normalized skew estimates (grid.SkewEstimate, ~1 for uniform
// data, computed once at ingest) stay below this bound. Above it the
// uniform tiling degenerates — single tiles hold thousands of points and
// the per-tile loops go quadratic — so extremely skewed serial joins
// route to NM-CIJ, whose R-tree adapts to density. The bound is
// measurement-anchored (cijbench -exp grid, BENCH_grid.json): ordinary
// clustered data (skew 10–20) beats NM on wall clock by 2–17×, while in
// the point-mass series the advantage collapses (skew ≈ 45: only
// 1.2–1.7×) and inverts at the largest size (skew ≈ 103: 0.72×, and
// worsening with n as the hot tiles go quadratic). The gate sits below
// the collapse, conservatively trading a mild win in the 33–45 band for
// never landing in the inverted regime.
const autoGridSkewMax = 32

// Plan is a resolved execution strategy for one join query.
type Plan struct {
	// Algo is the concrete algorithm: "nm", "pm", "fm", "parallel" or
	// "grid".
	Algo string `json:"algo"`
	// Workers is the pool size when Algo is "parallel", 0 otherwise.
	Workers int `json:"workers,omitempty"`
	// Storage is the node representation the tree algorithms read:
	// "flat" (arena-resident, decode-free, zero page I/O) or "paged"
	// (the paper's LRU-buffered disk format). Empty for the grid
	// backend, which indexes nothing.
	Storage string `json:"storage,omitempty"`
}

// plan maps a query onto a concrete algorithm and worker count. Explicit
// choices are honored; "auto" (or empty) consults the dataset
// cardinalities and density statistics: large joins go to the parallel
// partitioned engine, small-to-medium joins go to the in-memory grid
// backend when both inputs are near-uniform, and skewed serial joins fall
// back to NM-CIJ.
func plan(q Query, left, right *Dataset) (Plan, error) {
	stor, explicitStorage, err := normalizeStorage(q.Storage)
	if err != nil {
		return Plan{}, err
	}
	// resolve attaches the storage decision to a chosen algorithm. The
	// tree algorithms read either representation; PM/FM materialize
	// Voronoi R-trees page by page, so they are pinned to paged; the grid
	// backend indexes nothing and carries no storage at all.
	resolve := func(algo string, workers int) (Plan, error) {
		pl := Plan{Algo: algo, Workers: workers}
		switch algo {
		case "grid":
			if explicitStorage {
				return Plan{}, fmt.Errorf("storage %q does not apply to the grid backend (it joins raw pointsets, no tree)", stor)
			}
		case "pm", "fm":
			if stor == "flat" {
				return Plan{}, fmt.Errorf("algo %q materializes Voronoi R-trees page by page and cannot run on flat storage", algo)
			}
			pl.Storage = "paged"
		default: // nm, parallel
			pl.Storage = stor
			if pl.Storage == "auto" {
				// Every registered dataset lives in memory and carries a
				// frozen flat tree, so auto picks the decode-free
				// representation; "paged" remains the knob for measuring
				// the paper's I/O behavior.
				pl.Storage = "flat"
			}
		}
		return pl, nil
	}
	total := left.Live + right.Live
	switch q.Algo {
	case "", "auto":
		// An explicit worker count — including 1, a client bounding its
		// CPU share — fixes the pool; only workers <= 0 leaves the choice
		// to the planner.
		if q.Workers > 0 {
			return resolve("parallel", clampWorkers(q.Workers))
		}
		if w := autoWorkers(total); w > 1 {
			return resolve("parallel", w)
		}
		// An explicit storage choice is a statement about tree nodes, so
		// algo-auto then restricts itself to the tree algorithms.
		if !explicitStorage && left.Skew <= autoGridSkewMax && right.Skew <= autoGridSkewMax {
			return resolve("grid", 0)
		}
		return resolve("nm", 0)
	case "nm", "pm", "fm", "grid":
		return resolve(q.Algo, 0)
	case "parallel":
		w := q.Workers
		if w <= 0 {
			w = autoWorkers(total)
		}
		return resolve("parallel", clampWorkers(w))
	default:
		return Plan{}, fmt.Errorf("unknown algo %q (want nm, pm, fm, parallel, grid or auto)", q.Algo)
	}
}

// normalizeStorage canonicalizes the storage knob: auto (empty included)
// leaves the choice to the planner; paged and flat are explicit requests.
func normalizeStorage(s string) (value string, explicit bool, err error) {
	switch s {
	case "", "auto":
		return "auto", false, nil
	case "paged", "flat":
		return s, true, nil
	default:
		return "", false, fmt.Errorf("unknown storage %q (want paged, flat or auto)", s)
	}
}

// autoWorkers sizes a worker pool from the joint cardinality.
func autoWorkers(totalPoints int) int {
	return clampWorkers(totalPoints / autoPointsPerWorker)
}

// clampWorkers bounds a worker count to [1, GOMAXPROCS]: more workers than
// cores never helps this CPU-bound kernel.
func clampWorkers(w int) int {
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// execHooks are the streaming callbacks and per-request options of one
// join execution. The callbacks run on the executing goroutine (the
// request handler's), mirroring the contract of core.Options.OnPair /
// parallel.Options.OnPair+OnProgress.
type execHooks struct {
	onPair     func(core.Pair)
	onProgress func(core.ProgressPoint)
	// trace requests a per-phase trace of the computation even when the
	// slow-query log (which traces unconditionally) is off.
	trace bool
}

// execute runs the planned join and returns the full result with its cost.
// NM and parallel runs read the registry trees through per-request buffer
// views; the materializing algorithms (PM/FM) write Voronoi R-trees, so
// they get a private scratch environment — the registry's dataset disks
// stay strictly read-only after build, which is what makes concurrent
// queries safe. tr (nil = untraced) is threaded into the engine so its
// spans cover every phase; the eviction metric hook rides the same
// per-request buffers (worker forks inherit it).
func (s *Service) execute(left, right *Dataset, pl Plan, hooks execHooks, tr *obs.Trace) *cachedResult {
	start := time.Now()
	var res core.Result
	var io storage.Stats
	// The point-array backends (grid, PM, FM) consume dense slices whose
	// positions double as IDs, so mutated datasets hand them the live
	// compaction and the emitted pairs are remapped back to original IDs
	// — the tree algorithms need neither (registry trees index live
	// points under their original IDs already). For never-deleted
	// datasets JoinPoints returns nil id tables and the remap is free.
	var leftPts, rightPts []geom.Point
	var leftIDs, rightIDs []int64
	if pointArrayAlgo(pl.Algo) {
		leftPts, leftIDs = left.JoinPoints()
		rightPts, rightIDs = right.JoinPoints()
		hooks.onPair = remapOnPair(hooks.onPair, pl.Algo, leftIDs, rightIDs)
	}
	switch pl.Algo {
	case "grid":
		// The in-memory backend joins the raw pointsets: no tree view, no
		// buffer fork, no pages — its physical I/O is genuinely zero.
		opts := grid.DefaultOptions()
		opts.OnPair = hooks.onPair
		opts.Trace = tr
		res = grid.Join(leftPts, rightPts, dataset.Domain, opts)
		remapPairs(res.Pairs, leftIDs, rightIDs)
	case "nm":
		rp, rq := left.StorageView(pl.Storage), right.StorageView(pl.Storage)
		rp.Buffer().SetOnEvict(s.metrics.onEvict)
		rq.Buffer().SetOnEvict(s.metrics.onEvict)
		opts := core.DefaultOptions()
		opts.OnPair = hooks.onPair
		opts.Trace = tr
		res = core.NMCIJ(rp, rq, dataset.Domain, opts)
		// The serial collector meters rp's buffer only (the single-disk
		// setting of the paper); with per-dataset disks the request's I/O
		// is the sum over both private views — which is also exactly what
		// the trace spans meter, so response and trace reconcile.
		io = rp.Buffer().Stats().Add(rq.Buffer().Stats())
	case "parallel":
		rp, rq := left.StorageView(pl.Storage), right.StorageView(pl.Storage)
		rp.Buffer().SetOnEvict(s.metrics.onEvict)
		rq.Buffer().SetOnEvict(s.metrics.onEvict)
		opts := parallel.DefaultOptions()
		opts.Workers = pl.Workers
		opts.OnPair = hooks.onPair
		opts.OnProgress = hooks.onProgress
		opts.Trace = tr
		res = parallel.Join(rp, rq, dataset.Domain, opts)
		io = res.Stats.Mat.Add(res.Stats.Join) // partition traversal + all worker forks
	case "pm", "fm":
		rp, rq := buildScratchEnv(leftPts, rightPts, s.cfg.BufferPct)
		rp.Buffer().SetOnEvict(s.metrics.onEvict) // one shared scratch buffer
		opts := core.DefaultOptions()
		opts.OnPair = hooks.onPair
		opts.Trace = tr
		if pl.Algo == "pm" {
			res = core.PMCIJ(rp, rq, dataset.Domain, opts)
		} else {
			res = core.FMCIJ(rp, rq, dataset.Domain, opts)
		}
		io = res.Stats.Mat.Add(res.Stats.Join) // MAT + JOIN on the shared scratch buffer
		remapPairs(res.Pairs, leftIDs, rightIDs)
	default:
		panic("service: unplanned algo " + pl.Algo)
	}
	return &cachedResult{
		Pairs:        res.Pairs,
		Count:        int64(len(res.Pairs)),
		IO:           io,
		CPU:          time.Since(start),
		Trace:        tr.Spans(),
		TraceDropped: tr.Dropped(),
	}
}

// pointArrayAlgo reports whether the algorithm consumes raw point
// slices (positions double as IDs) rather than registry trees.
func pointArrayAlgo(algo string) bool {
	return algo == "grid" || algo == "pm" || algo == "fm"
}

// remapOnPair wraps a streaming pair callback so point-array runs over
// compacted live slices emit original point IDs. Tree runs and dense
// datasets pass through untouched.
func remapOnPair(onPair func(core.Pair), algo string, leftIDs, rightIDs []int64) func(core.Pair) {
	if onPair == nil || !pointArrayAlgo(algo) || (leftIDs == nil && rightIDs == nil) {
		return onPair
	}
	return func(p core.Pair) { onPair(remapPair(p, leftIDs, rightIDs)) }
}

// remapPair translates one compacted-index pair back to original IDs.
func remapPair(p core.Pair, leftIDs, rightIDs []int64) core.Pair {
	if leftIDs != nil {
		p.P = leftIDs[p.P]
	}
	if rightIDs != nil {
		p.Q = rightIDs[p.Q]
	}
	return p
}

// remapPairs translates a result's pair list in place; a no-op for dense
// datasets (nil id tables). Pairs stay sorted: the id tables are built
// in ascending ID order, so the remap is strictly monotone in each
// coordinate.
func remapPairs(pairs []core.Pair, leftIDs, rightIDs []int64) {
	if leftIDs == nil && rightIDs == nil {
		return
	}
	for i := range pairs {
		pairs[i] = remapPair(pairs[i], leftIDs, rightIDs)
	}
}

// PlanInputs are the decision inputs the planner consulted — everything a
// client needs to reproduce (or argue with) the routing by hand.
type PlanInputs struct {
	LeftPoints  int     `json:"left_points"`
	RightPoints int     `json:"right_points"`
	TotalPoints int     `json:"total_points"`
	LeftSkew    float64 `json:"left_skew"`
	RightSkew   float64 `json:"right_skew"`
	// GridSkewMax and PointsPerWorker are the planner's gates
	// (autoGridSkewMax, autoPointsPerWorker); MaxWorkers is GOMAXPROCS at
	// planning time.
	GridSkewMax     float64 `json:"grid_skew_max"`
	PointsPerWorker int     `json:"points_per_worker"`
	MaxWorkers      int     `json:"max_workers"`
}

// Explanation is the planner's answer to an explain-only request: the plan
// it would execute, why, and the inputs the decision was made from.
type Explanation struct {
	Plan   Plan       `json:"plan"`
	Reason string     `json:"reason"`
	Inputs PlanInputs `json:"inputs"`
	// Observed is the journal's aggregate over past executions of this
	// exact plan on these exact dataset versions — the "observed" half of
	// modeled-vs-observed. Omitted when the journal is disabled.
	Observed *ObservedJSON `json:"observed,omitempty"`
}

// Explain resolves and plans q without executing anything — the backing of
// POST /join?explain=1.
func (s *Service) Explain(q Query) (Explanation, error) {
	left, ok := s.reg.Get(q.Left)
	if !ok {
		return Explanation{}, fmt.Errorf("unknown dataset %q", q.Left)
	}
	right, ok := s.reg.Get(q.Right)
	if !ok {
		return Explanation{}, fmt.Errorf("unknown dataset %q", q.Right)
	}
	ex, err := explain(s.applyDefaultStorage(q), left, right)
	if err != nil {
		return ex, err
	}
	if s.journal.Enabled() {
		seen := s.journal.Observed(left.Name, left.Version, right.Name, right.Version, ex.Plan)
		ex.Observed = &seen
	}
	return ex, nil
}

// explain runs the planner and narrates which branch fired. The reasons
// mirror plan's decision flow exactly; any drift between the two is a bug
// in this function, which is why the explain test pins them together.
func explain(q Query, left, right *Dataset) (Explanation, error) {
	pl, err := plan(q, left, right)
	if err != nil {
		return Explanation{}, err
	}
	total := left.Live + right.Live
	inputs := PlanInputs{
		LeftPoints:      left.Live,
		RightPoints:     right.Live,
		TotalPoints:     total,
		LeftSkew:        left.Skew,
		RightSkew:       right.Skew,
		GridSkewMax:     autoGridSkewMax,
		PointsPerWorker: autoPointsPerWorker,
		MaxWorkers:      runtime.GOMAXPROCS(0),
	}
	var reason string
	switch {
	case q.Algo != "" && q.Algo != "auto":
		reason = fmt.Sprintf("algorithm %q requested explicitly", q.Algo)
		if pl.Algo == "parallel" && q.Workers <= 0 {
			reason += fmt.Sprintf("; pool auto-sized to %d workers from %d joint points at %d points/worker",
				pl.Workers, total, autoPointsPerWorker)
		}
	case q.Workers > 0:
		reason = fmt.Sprintf("explicit worker count %d selects the parallel engine (clamped to %d)",
			q.Workers, pl.Workers)
	case pl.Algo == "parallel":
		reason = fmt.Sprintf("joint cardinality %d covers %d workers at %d points/worker, so the join parallelizes",
			total, pl.Workers, autoPointsPerWorker)
	case pl.Algo == "grid":
		reason = fmt.Sprintf("serial-range join with near-uniform inputs (skew %.1f and %.1f, both <= %d) routes to the in-memory grid",
			left.Skew, right.Skew, autoGridSkewMax)
	default: // nm
		if q.Storage == "paged" || q.Storage == "flat" {
			reason = fmt.Sprintf("explicit storage %q restricts algo-auto to the tree algorithms; serial range selects NM-CIJ", q.Storage)
		} else {
			reason = fmt.Sprintf("serial-range join too skewed for the grid (skew %.1f and %.1f vs gate %d) falls back to NM-CIJ",
				left.Skew, right.Skew, autoGridSkewMax)
		}
	}
	switch pl.Storage {
	case "flat":
		if q.Storage == "flat" {
			reason += "; flat storage requested explicitly (arena nodes, zero page I/O)"
		} else {
			reason += "; storage auto-selects flat (datasets are in-memory, so joins read arena nodes decode-free)"
		}
	case "paged":
		if q.Storage == "paged" {
			reason += "; paged storage requested explicitly (the paper's LRU-buffered disk format)"
		} else {
			reason += "; paged storage (this algorithm materializes R-trees page by page)"
		}
	}
	return Explanation{Plan: pl, Reason: reason, Inputs: inputs}, nil
}

// buildScratchEnv bulk-loads both pointsets onto one fresh disk behind one
// LRU buffer sized to bufferPct% of the data pages — the single-disk
// environment the materializing algorithms expect, built per request so
// their page writes never touch registry state.
func buildScratchEnv(p, q []geom.Point, bufferPct float64) (rp, rq *rtree.Tree) {
	trees := loadTrees(bufferPct, p, q)
	return trees[0], trees[1]
}
