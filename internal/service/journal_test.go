package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"cij/internal/dataset"
	"cij/internal/obs"
	"cij/internal/service"
)

// mkRec builds a minimal journal record for the ring unit tests.
func mkRec(id int64, left, algo string, wallMS float64) service.JournalRecord {
	return service.JournalRecord{
		ID: id, Left: left, Right: "q", Algo: algo,
		Stats: service.JoinStatsJSON{WallMS: wallMS},
	}
}

// TestJournalRingWraparound: the ring keeps the newest entries-capacity
// records, lists them newest first, and filters by dataset/algo/latency.
func TestJournalRingWraparound(t *testing.T) {
	j := service.NewJournal(4, 2, nil)
	for i := int64(1); i <= 6; i++ {
		algo := "nm"
		if i%2 == 0 {
			algo = "grid"
		}
		j.Add(mkRec(i, fmt.Sprintf("d%d", i), algo, float64(i)), nil, 0)
	}
	if j.Len() != 4 {
		t.Fatalf("Len = %d, want 4", j.Len())
	}
	if j.Total() != 6 {
		t.Fatalf("Total = %d, want 6", j.Total())
	}
	recs, total := j.Recent(service.JournalFilter{})
	if total != 6 {
		t.Fatalf("Recent total = %d, want 6", total)
	}
	wantIDs := []int64{6, 5, 4, 3}
	if len(recs) != len(wantIDs) {
		t.Fatalf("Recent returned %d records, want %d", len(recs), len(wantIDs))
	}
	for i, want := range wantIDs {
		if recs[i].ID != want {
			t.Fatalf("Recent[%d].ID = %d, want %d (newest first)", i, recs[i].ID, want)
		}
	}
	// IDs 1 and 2 fell off the ring.
	if _, ok := j.Get(1); ok {
		t.Fatal("Get(1) found a record the ring should have dropped")
	}
	if rec, ok := j.Get(6); !ok || rec.Left != "d6" {
		t.Fatalf("Get(6) = %+v, %v", rec, ok)
	}

	// Filters: dataset, algo, latency floor, limit.
	if recs, _ := j.Recent(service.JournalFilter{Dataset: "d5"}); len(recs) != 1 || recs[0].ID != 5 {
		t.Fatalf("dataset filter: %+v", recs)
	}
	if recs, _ := j.Recent(service.JournalFilter{Algo: "grid"}); len(recs) != 2 {
		t.Fatalf("algo filter returned %d records, want 2", len(recs))
	}
	if recs, _ := j.Recent(service.JournalFilter{MinWallMS: 5}); len(recs) != 2 {
		t.Fatalf("min-latency filter returned %d records, want 2 (5ms and 6ms)", len(recs))
	}
	if recs, _ := j.Recent(service.JournalFilter{Limit: 1}); len(recs) != 1 || recs[0].ID != 6 {
		t.Fatalf("limit filter: %+v", recs)
	}
}

// TestJournalSlowestRetention: only the slowest-K computed traces stay
// resident, slowest first, and cached observations never compete.
func TestJournalSlowestRetention(t *testing.T) {
	j := service.NewJournal(16, 2, nil)
	spans := func(ms float64) []obs.Span {
		return []obs.Span{{Phase: "join", Wall: time.Duration(ms) * time.Millisecond}}
	}
	j.Add(mkRec(1, "d", "nm", 10), spans(10), 0)
	j.Add(mkRec(2, "d", "nm", 30), spans(30), 0)
	j.Add(mkRec(3, "d", "nm", 20), spans(20), 0)
	cached := mkRec(4, "d", "nm", 99)
	cached.Cached = true
	j.Add(cached, nil, 0) // cache hit: no spans, no retention
	untraced := mkRec(5, "d", "nm", 99)
	j.Add(untraced, nil, 0) // untraced: nothing to retain

	if got := j.RetainedTraces(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("RetainedTraces = %v, want [2 3] (slowest first)", got)
	}
	if _, _, ok := j.TraceFor(1); ok {
		t.Fatal("query 1 evicted from slowest-K but TraceFor still finds it")
	}
	sp, _, ok := j.TraceFor(2)
	if !ok || len(sp) != 1 || sp[0].Wall != 30*time.Millisecond {
		t.Fatalf("TraceFor(2) = %v, %v", sp, ok)
	}
}

// TestJournalStatsReconcile is the accounting acceptance test: one
// computed join's journal record must carry byte-identical stats to its
// JoinResponse, and both must equal the /metrics counter deltas the join
// produced.
func TestJournalStatsReconcile(t *testing.T) {
	p, q := dataset.Clustered(500, 5, 71), dataset.Clustered(500, 5, 72)
	svc, ts := newTestServer(t, service.Config{}, p, q)

	before := scrapeMetrics(t, ts.URL)
	jr := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm", Storage: "paged"})
	after := scrapeMetrics(t, ts.URL)
	if jr.QueryID == 0 {
		t.Fatal("response carries no query_id")
	}
	if jr.Cached {
		t.Fatal("first join reported cached")
	}

	// Journal record vs response: the Stats blocks must marshal to the
	// same bytes.
	rec, ok := svc.Journal().Get(jr.QueryID)
	if !ok {
		t.Fatalf("query %d not journaled", jr.QueryID)
	}
	recStats, _ := json.Marshal(rec.Stats)
	respStats, _ := json.Marshal(jr.Stats)
	if !bytes.Equal(recStats, respStats) {
		t.Fatalf("journal stats %s != response stats %s", recStats, respStats)
	}
	if rec.Pairs != jr.Count {
		t.Fatalf("journal pairs %d != response count %d", rec.Pairs, jr.Count)
	}
	if rec.Reason == "" || rec.Inputs.TotalPoints != 1000 {
		t.Fatalf("journal record lacks planner context: %+v", rec)
	}

	// The same numbers must appear as /metrics deltas.
	delta := func(family string) int64 { return int64(after[family] - before[family]) }
	for family, want := range map[string]int64{
		"cij_pages_read_total":    rec.Stats.PagesRead,
		"cij_pages_written_total": rec.Stats.PagesWritten,
		"cij_logical_reads_total": rec.Stats.LogicalReads,
		"cij_decode_hits_total":   rec.Stats.DecodeHits,
		"cij_decode_misses_total": rec.Stats.DecodeMisses,
		"cij_cache_misses_total":  1,
		"cij_cache_hits_total":    0,
	} {
		if got := delta(family); got != want {
			t.Fatalf("%s moved %d, journal says %d", family, got, want)
		}
	}
	if rec.Stats.LogicalReads == 0 || rec.Stats.PagesRead == 0 {
		t.Fatal("paged nm join reported no I/O; the reconciliation test is vacuous")
	}

	// The HTTP view of the same record agrees.
	var httpRec service.JournalRecord
	getJSON(t, ts.URL+fmt.Sprintf("/debug/queries/%d", jr.QueryID), &httpRec)
	httpStats, _ := json.Marshal(httpRec.Stats)
	if !bytes.Equal(httpStats, respStats) {
		t.Fatalf("GET /debug/queries/%d stats %s != response stats %s", jr.QueryID, httpStats, respStats)
	}

	// A repeat of the same join is a cache hit: journaled as cached, pure
	// wall time (no I/O), and the hit counter moves.
	jr2 := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm", Storage: "paged"})
	if !jr2.Cached || jr2.QueryID == jr.QueryID {
		t.Fatalf("repeat join: cached=%v id=%d", jr2.Cached, jr2.QueryID)
	}
	rec2, ok := svc.Journal().Get(jr2.QueryID)
	if !ok || !rec2.Cached {
		t.Fatalf("cache hit not journaled as cached: %+v", rec2)
	}
	if rec2.Stats.PageAccesses != 0 || rec2.Stats.LogicalReads != 0 {
		t.Fatalf("cached record reports I/O: %+v", rec2.Stats)
	}
	final := scrapeMetrics(t, ts.URL)
	if final["cij_cache_hits_total"]-after["cij_cache_hits_total"] != 1 {
		t.Fatal("cache hit did not tick cij_cache_hits_total")
	}
}

// getJSON fetches url and decodes the body.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestJournalConcurrent: concurrent joins (computed, cached, single-
// flighted) all land in the journal exactly once with distinct IDs. Run
// under -race this doubles as the locking test for ring + slowest-K.
func TestJournalConcurrent(t *testing.T) {
	p, q := dataset.Uniform(300, 81), dataset.Uniform(300, 82)
	svc, ts := newTestServer(t, service.Config{}, p, q)

	const goroutines, perG = 8, 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				algo := []string{"nm", "grid"}[(g+i)%2]
				body, _ := json.Marshal(service.JoinRequest{Left: "p", Right: "q", Algo: algo, TopK: 1})
				resp, err := http.Post(ts.URL+"/join", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()

	j := svc.Journal()
	if j.Total() != goroutines*perG {
		t.Fatalf("journaled %d observations, want %d", j.Total(), goroutines*perG)
	}
	recs, _ := j.Recent(service.JournalFilter{Limit: goroutines * perG})
	seen := make(map[int64]bool)
	for _, rec := range recs {
		if seen[rec.ID] {
			t.Fatalf("duplicate query ID %d", rec.ID)
		}
		seen[rec.ID] = true
	}
	// Every retained trace must reference a journaled computed query.
	for _, id := range j.RetainedTraces() {
		rec, ok := j.Get(id)
		if !ok {
			t.Fatalf("retained trace for %d, which is not in the ring", id)
		}
		if rec.Cached {
			t.Fatalf("retained trace for cached query %d", id)
		}
	}
}

// TestJournalSinkRoundTrip: the JSONL sink replays losslessly through
// ReadJournal, with computed lines carrying their phase traces.
func TestJournalSinkRoundTrip(t *testing.T) {
	var sink bytes.Buffer
	p, q := dataset.Uniform(300, 91), dataset.Uniform(300, 92)
	svc, ts := newTestServer(t, service.Config{JournalSink: &sink}, p, q)

	postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"})
	postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"}) // cache hit
	postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "grid"})

	recs, err := service.ReadJournal(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("sink replayed %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		ring, ok := svc.Journal().Get(rec.ID)
		if !ok {
			t.Fatalf("sink line %d (id %d) not in the ring", i, rec.ID)
		}
		ringStats, _ := json.Marshal(ring.Stats)
		sinkStats, _ := json.Marshal(rec.Stats)
		if !bytes.Equal(ringStats, sinkStats) {
			t.Fatalf("sink line %d stats %s != ring stats %s", i, sinkStats, ringStats)
		}
		if rec.Cached != ring.Cached {
			t.Fatalf("sink line %d cached=%v, ring says %v", i, rec.Cached, ring.Cached)
		}
		// Computed lines keep the phase breakdown (the training corpus);
		// cached lines have no run of their own.
		if !rec.Cached && (rec.Trace == nil || len(rec.Trace.Spans) == 0) {
			t.Fatalf("computed sink line %d lacks its trace", i)
		}
		if rec.Cached && rec.Trace != nil {
			t.Fatalf("cached sink line %d carries a trace", i)
		}
	}
}

// TestDebugQueriesEndpoints: listing, filtering, the single-record view
// and the Chrome trace export over HTTP.
func TestDebugQueriesEndpoints(t *testing.T) {
	p, q := dataset.Uniform(300, 101), dataset.Uniform(300, 102)
	_, ts := newTestServer(t, service.Config{}, p, q)
	jrNM := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"})
	postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "grid"})

	var list service.QueriesResponse
	getJSON(t, ts.URL+"/debug/queries", &list)
	if list.Total != 2 || list.Returned != 2 {
		t.Fatalf("list: total %d returned %d, want 2/2", list.Total, list.Returned)
	}
	if list.Queries[0].ID < list.Queries[1].ID {
		t.Fatal("list not newest first")
	}
	if len(list.RetainedTraces) == 0 {
		t.Fatal("no retained traces listed")
	}

	var filtered service.QueriesResponse
	getJSON(t, ts.URL+"/debug/queries?algo=nm", &filtered)
	if filtered.Returned != 1 || filtered.Queries[0].Algo != "nm" {
		t.Fatalf("algo filter: %+v", filtered)
	}
	getJSON(t, ts.URL+"/debug/queries?min_ms=0&dataset=p&limit=1", &filtered)
	if filtered.Returned != 1 {
		t.Fatalf("combined filter returned %d", filtered.Returned)
	}

	// Single record: the nm join is computed, so its trace is retained and
	// the {id} view embeds it.
	var rec service.JournalRecord
	getJSON(t, ts.URL+fmt.Sprintf("/debug/queries/%d", jrNM.QueryID), &rec)
	if rec.ID != jrNM.QueryID || rec.Trace == nil || len(rec.Trace.Spans) == 0 {
		t.Fatalf("single-record view: %+v", rec)
	}

	// Chrome export: required trace-event fields on every event.
	resp, err := http.Get(ts.URL + fmt.Sprintf("/debug/queries/%d/trace.json", jrNM.QueryID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace.json: status %d", resp.StatusCode)
	}
	var chrome struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("trace.json has no events")
	}
	for i, ev := range chrome.TraceEvents {
		for _, key := range []string{"ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("trace.json event %d lacks %q", i, key)
			}
		}
	}

	// Unknown IDs and bad IDs.
	for path, want := range map[string]int{
		"/debug/queries/999999":            http.StatusNotFound,
		"/debug/queries/999999/trace.json": http.StatusNotFound,
		"/debug/queries/bogus":             http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestJournalDisabled: JournalEntries < 0 turns the subsystem off — the
// endpoints 404, joins still serve, and nothing is recorded.
func TestJournalDisabled(t *testing.T) {
	p, q := dataset.Uniform(200, 111), dataset.Uniform(200, 112)
	svc, ts := newTestServer(t, service.Config{JournalEntries: -1}, p, q)
	jr := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "grid"})
	if jr.Count == 0 {
		t.Fatal("join failed with journal disabled")
	}
	if svc.Journal() != nil {
		t.Fatal("Journal() non-nil with JournalEntries = -1")
	}
	for _, path := range []string{"/debug/queries", "/debug/queries/1", "/debug/queries/1/trace.json"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s with journal disabled: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestStatsHistoryEndpoint: the self-scraped ring serves windowed rates,
// quantiles and the per-sample series over HTTP.
func TestStatsHistoryEndpoint(t *testing.T) {
	p, q := dataset.Uniform(300, 121), dataset.Uniform(300, 122)
	svc, ts := newTestServer(t, service.Config{}, p, q)

	svc.History().Sample()
	time.Sleep(5 * time.Millisecond)
	postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"})
	postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"}) // hit
	svc.History().Sample()

	var hist service.HistoryResponse
	getJSON(t, ts.URL+"/stats/history", &hist)
	if hist.Samples != 2 || hist.TotalTaken != 2 {
		t.Fatalf("samples = %d/%d, want 2/2", hist.Samples, hist.TotalTaken)
	}
	if hist.SpanMS <= 0 {
		t.Fatalf("span = %gms, want > 0", hist.SpanMS)
	}
	if hist.JoinsPerSec <= 0 || hist.RequestsPerSec <= 0 {
		t.Fatalf("rates not computed: joins %g req %g", hist.JoinsPerSec, hist.RequestsPerSec)
	}
	if hist.CacheHits != 1 || hist.CacheMisses != 1 || hist.CacheHitRatio != 0.5 {
		t.Fatalf("cache window: hits %g misses %g ratio %g", hist.CacheHits, hist.CacheMisses, hist.CacheHitRatio)
	}
	if hist.JoinLatency.P99 <= 0 {
		t.Fatalf("join p99 = %g, want > 0", hist.JoinLatency.P99)
	}
	if len(hist.Series) != 2 {
		t.Fatalf("series holds %d points, want 2", len(hist.Series))
	}
	if hist.Series[1].Joins-hist.Series[0].Joins != 2 {
		t.Fatalf("series joins delta = %g, want 2", hist.Series[1].Joins-hist.Series[0].Joins)
	}
	if hist.Series[1].Goroutines <= 0 {
		t.Fatal("series lacks runtime gauges")
	}

	// Explicit window and validation.
	getJSON(t, ts.URL+"/stats/history?window=1h", &hist)
	if hist.Samples != 2 {
		t.Fatalf("1h window dropped samples: %d", hist.Samples)
	}
	resp, err := http.Get(ts.URL + "/stats/history?window=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad window: status %d, want 400", resp.StatusCode)
	}
}

// TestExplainObserved: explain reports the journal's matching history
// next to the model — the modeled-vs-observed loop.
func TestExplainObserved(t *testing.T) {
	p, q := dataset.Uniform(300, 131), dataset.Uniform(300, 132)
	_, ts := newTestServer(t, service.Config{}, p, q)

	explain := func() service.Explanation {
		t.Helper()
		body, _ := json.Marshal(service.JoinRequest{Left: "p", Right: "q", Algo: "nm"})
		resp, err := http.Post(ts.URL+"/join?explain=1", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ex service.Explanation
		if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil {
			t.Fatal(err)
		}
		return ex
	}

	ex := explain()
	if ex.Observed == nil {
		t.Fatal("explain omitted the observed block with the journal enabled")
	}
	if ex.Observed.Matches != 0 {
		t.Fatalf("observed %d matches before any join", ex.Observed.Matches)
	}

	jr := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"})
	ex = explain()
	if ex.Observed.Matches != 1 {
		t.Fatalf("observed %d matches after one computed join, want 1", ex.Observed.Matches)
	}
	if ex.Observed.LastID != jr.QueryID {
		t.Fatalf("observed last_id = %d, want %d", ex.Observed.LastID, jr.QueryID)
	}
	if ex.Observed.MeanWallMS != jr.Stats.WallMS {
		t.Fatalf("observed mean %g != measured %g", ex.Observed.MeanWallMS, jr.Stats.WallMS)
	}

	postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"}) // cache hit
	ex = explain()
	if ex.Observed.Matches != 1 || ex.Observed.CachedMatches != 1 {
		t.Fatalf("after a hit: matches %d cached %d, want 1/1", ex.Observed.Matches, ex.Observed.CachedMatches)
	}
}
