package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"cij/internal/core"
	"cij/internal/dataset"
)

// maxIngestBytes caps a CSV ingest body (~256 MB ≈ 13M "x,y" lines):
// datasets are held in memory, so an unbounded upload is an OOM, not a
// dataset.
const maxIngestBytes = 256 << 20

// maxJoinBodyBytes caps a join request body; a JoinRequest is a few dozen
// bytes.
const maxJoinBodyBytes = 1 << 20

// streamFlushEvery bounds how many pair lines may sit in the response
// buffer before an explicit flush: frequent enough that clients see pairs
// progressively (the point of the NDJSON endpoint), rare enough that the
// syscall cost does not dominate dense result streams.
const streamFlushEvery = 64

// Handler returns the service's HTTP mux. Every route is instrumented
// (request counter, latency histogram, structured request log) under a
// fixed route label; /metrics exposes the metric registry in Prometheus
// text format.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /datasets/{name}", s.instrument("ingest", s.handleIngest))
	mux.HandleFunc("GET /datasets", s.instrument("datasets", s.handleDatasets))
	mux.HandleFunc("POST /datasets/{name}/points", s.instrument("mutate", s.handleMutatePoints))
	mux.HandleFunc("DELETE /datasets/{name}/points/{id}", s.instrument("mutate_delete", s.handleDeletePoint))
	mux.HandleFunc("POST /join", s.instrument("join", s.handleJoin))
	mux.HandleFunc("GET /join/stream", s.instrument("join_stream", s.handleJoinStream))
	mux.HandleFunc("GET /join/subscribe", s.instrument("join_subscribe", s.handleJoinSubscribe))
	mux.HandleFunc("GET /stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("GET /stats/history", s.instrument("stats_history", s.handleStatsHistory))
	mux.HandleFunc("GET /debug/queries", s.instrument("debug_queries", s.handleDebugQueries))
	mux.HandleFunc("GET /debug/queries/{id}", s.instrument("debug_query", s.handleDebugQuery))
	mux.HandleFunc("GET /debug/queries/{id}/trace.json", s.instrument("debug_query_trace", s.handleDebugQueryTrace))
	metricsHandler := s.metrics.reg.Handler()
	mux.Handle("GET /metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Runtime families are push-fed; refresh them so every scrape
		// (and only scrapes) pays the ReadMemStats.
		s.runtime.Collect()
		metricsHandler.ServeHTTP(w, r)
	}))
	return mux
}

// writeJSON encodes v as the response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// bodyErrorStatus maps a request-body read/parse failure onto its HTTP
// status: an http.MaxBytesReader overrun is 413 (the request was too
// large, not malformed), anything else is the client's 400. The limit
// error may arrive wrapped (json.Decoder and the CSV reader both pass
// the underlying read error through), so unwrap with errors.As.
func bodyErrorStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// writeError reports a failure as {"error": ...}.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleIngest loads a dataset from the request: a generator spec when
// ?gen= is present (gen=uniform|clustered|PP|SC|CE|LO|PA with n, clusters,
// seed, scale), otherwise the body as "x,y" CSV, normalized to the
// [0,10000]² domain like every other CSV entry point.
func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var pts []Point
	if kind := r.URL.Query().Get("gen"); kind != "" {
		spec, err := specFromQuery(r, kind)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		pts, err = spec.Generate()
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	} else {
		var err error
		pts, err = dataset.ReadCSV(http.MaxBytesReader(w, r.Body, maxIngestBytes))
		if err != nil {
			writeError(w, bodyErrorStatus(err), "%v", err)
			return
		}
		pts = dataset.Normalize(pts)
	}
	d, err := s.Ingest(name, pts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, datasetInfo(d))
}

// specFromQuery parses the generator parameters of an ingest request.
func specFromQuery(r *http.Request, kind string) (dataset.Spec, error) {
	spec := dataset.Spec{Kind: kind}
	q := r.URL.Query()
	var err error
	if spec.N, err = intParam(q.Get("n"), 0); err != nil {
		return spec, fmt.Errorf("bad n: %v", err)
	}
	if spec.Clusters, err = intParam(q.Get("clusters"), 0); err != nil {
		return spec, fmt.Errorf("bad clusters: %v", err)
	}
	seed, err := intParam(q.Get("seed"), 1)
	if err != nil {
		return spec, fmt.Errorf("bad seed: %v", err)
	}
	spec.Seed = int64(seed)
	if v := q.Get("scale"); v != "" {
		if spec.Scale, err = strconv.ParseFloat(v, 64); err != nil {
			return spec, fmt.Errorf("bad scale: %v", err)
		}
	}
	return spec, nil
}

// intParam parses an optional integer query parameter.
func intParam(v string, def int) (int, error) {
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

func (s *Service) handleDatasets(w http.ResponseWriter, r *http.Request) {
	datasets := s.reg.List()
	infos := make([]DatasetInfo, len(datasets))
	for i, d := range datasets {
		infos[i] = datasetInfo(d)
	}
	writeJSON(w, http.StatusOK, infos)
}

// handleJoin is the buffered join: the full response (pairs capped at
// TopK) in one JSON body. ?explain=1 short-circuits to the planner — the
// response is the Explanation (plan, reason, decision inputs) and nothing
// executes.
func (s *Service) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJoinBodyBytes)).Decode(&req); err != nil {
		writeError(w, bodyErrorStatus(err), "bad join request: %v", err)
		return
	}
	if req.TopK < 0 { // the wire contract is "<= 0 returns all"
		req.TopK = 0
	}
	q := Query{Left: req.Left, Right: req.Right, Algo: req.Algo, Storage: req.Storage, Workers: req.Workers, TopK: req.TopK}
	if boolParam(r.URL.Query().Get("explain")) {
		ex, err := s.Explain(q)
		if err != nil {
			writeError(w, joinErrorStatus(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, ex)
		return
	}
	out, err := s.Join(r.Context(), q, execHooks{trace: req.Trace})
	if err != nil {
		writeError(w, joinErrorStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, out.response(req.TopK, req.Trace))
}

// boolParam interprets a query-parameter toggle: "1" and "true" are on.
func boolParam(v string) bool { return v == "1" || v == "true" }

// handleJoinStream is the progressive join: NDJSON pair lines as the
// algorithm produces them (for cache misses; hits replay from memory),
// progress lines when the parallel engine reports them, an optional trace
// line (&trace=1), and one summary line last. Query parameters: left,
// right, algo, storage, workers, topk, trace.
func (s *Service) handleJoinStream(w http.ResponseWriter, r *http.Request) {
	params := r.URL.Query()
	workers, err := intParam(params.Get("workers"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad workers: %v", err)
		return
	}
	topK, err := intParam(params.Get("topk"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad topk: %v", err)
		return
	}
	if topK < 0 { // the wire contract is "<= 0 returns all"
		topK = 0
	}
	wantTrace := boolParam(params.Get("trace"))
	q := Query{
		Left:    params.Get("left"),
		Right:   params.Get("right"),
		Algo:    params.Get("algo"),
		Storage: params.Get("storage"),
		Workers: workers,
		TopK:    topK,
	}

	// The stream must start only after validation: once a line is written
	// the status is committed. Lines are emitted live through the hooks,
	// so failures after the first pair surface as a truncated stream (no
	// summary line), the standard NDJSON failure contract.
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	started := false
	emitted := int64(0)
	begin := func() {
		if !started {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			started = true
		}
	}
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	hooks := execHooks{
		onPair: func(p core.Pair) {
			if topK > 0 && emitted >= int64(topK) {
				return
			}
			begin()
			enc.Encode(StreamPair{Type: "pair", P: p.P, Q: p.Q})
			emitted++
			if emitted%streamFlushEvery == 0 {
				flush()
			}
		},
		onProgress: func(pt core.ProgressPoint) {
			begin()
			enc.Encode(StreamProgress{Type: "progress", PageAccesses: pt.PageAccesses, Pairs: pt.Pairs})
			flush()
		},
	}
	hooks.trace = wantTrace
	out, err := s.Join(r.Context(), q, hooks)
	if err != nil {
		if started {
			return // stream already committed; truncate
		}
		writeError(w, joinErrorStatus(err), "%v", err)
		return
	}
	if out.Cached { // replay the memoized pairs
		begin()
		for i, p := range out.Result.Pairs {
			if topK > 0 && int64(i) >= int64(topK) {
				break
			}
			enc.Encode(StreamPair{Type: "pair", P: p.P, Q: p.Q})
		}
	}
	begin()
	if wantTrace {
		if tj := NewTraceJSON(out.Result.Trace, out.Result.TraceDropped); tj != nil {
			enc.Encode(StreamTrace{Type: "trace", TraceJSON: *tj})
		}
	}
	// topK -1: the pairs already went over the wire line by line; the
	// summary must not materialize a second encoded copy of them.
	enc.Encode(StreamSummary{Type: "summary", JoinResponse: out.response(-1, false)})
	flush()
}

// joinErrorStatus maps dispatcher errors onto HTTP statuses: unknown
// datasets and bad parameters are the client's fault.
func joinErrorStatus(err error) int {
	if err == nil {
		return http.StatusOK
	}
	return http.StatusBadRequest
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}
