package service

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cij/internal/obs"
	"cij/internal/obs/history"
	"cij/internal/storage"
)

// Config tunes a Service.
type Config struct {
	// BufferPct sizes each dataset's LRU query buffer as a percentage of
	// its data pages; <= 0 selects the paper's 2%.
	BufferPct float64
	// CacheEntries caps the result cache; < 0 disables caching, 0 selects
	// the default (64).
	CacheEntries int
	// MaxConcurrent bounds the number of joins executing at once (the
	// admission semaphore); <= 0 selects GOMAXPROCS.
	MaxConcurrent int
	// Logger receives the service's structured logs (request lines, join
	// completions, slow-query dumps); nil discards them.
	Logger *slog.Logger
	// SlowQuery, when > 0, arms the slow-query log: every computed join is
	// traced, and one slower than the threshold logs its full phase trace
	// at Warn level (and counts in cij_slow_queries_total).
	SlowQuery time.Duration
	// DefaultStorage is the storage mode applied when a query leaves the
	// knob empty: "auto" (empty included; the planner picks flat for the
	// tree algorithms), "flat", or "paged" (pin every tree join to the
	// paper's LRU-buffered disk format).
	DefaultStorage string
	// JournalEntries caps the query-journal ring; < 0 disables journaling
	// entirely, 0 selects the default (DefaultJournalEntries). With the
	// journal on, every computed join is traced so the slowest-K can
	// retain their phase breakdowns.
	JournalEntries int
	// JournalSlowest caps the retained slowest-query traces; <= 0 selects
	// the default (DefaultJournalSlowest).
	JournalSlowest int
	// JournalSink, when non-nil, receives one JSON line per observation —
	// the append-only JSONL persistence of the journal (cijserver's
	// -journal flag opens a file here).
	JournalSink io.Writer
	// HistoryCapacity caps the metrics-history ring; <= 0 selects the
	// default (history.DefaultCapacity). Sampling starts only when the
	// caller runs History().Start (cijserver's -history-interval).
	HistoryCapacity int
	// DataDir, when set, makes the service durable (use Open, not New):
	// the dataset registry persists under this directory (manifest +
	// snapshot page files + WAL) and a cold start restores it, replaying
	// the WAL tail.
	DataDir string
	// FS is the filesystem the durable store runs on; nil selects the
	// real one (storage.OSFS). The crash tests inject storage.FaultFS.
	FS storage.FS
	// CheckpointWALBytes is the WAL size that triggers folding it into
	// fresh snapshots after a mutation; <= 0 selects the default
	// (DefaultCheckpointWALBytes).
	CheckpointWALBytes int64
}

// Service is the CIJ query service: registry + planner + result cache
// behind one dispatcher. See the package comment for the architecture.
type Service struct {
	cfg     Config
	reg     *Registry
	cache   *resultCache
	admit   chan struct{}
	start   time.Time
	logger  *slog.Logger
	metrics *serviceMetrics
	journal *Journal // nil when Config.JournalEntries < 0
	history *history.Ring
	runtime *obs.RuntimeCollector
	queryID atomic.Int64 // last assigned query ID; threads all four surfaces

	// Single-flight table: one entry per join computation in progress,
	// keyed like the cache, so a burst of identical first-time queries
	// executes once instead of once per request.
	flightMu sync.Mutex
	flights  map[string]*flight

	// store is the durable tier (nil without a DataDir); set once by Open
	// before the service serves, read atomically so metric scrapes never
	// race the attachment.
	store    atomic.Pointer[Store]
	recovery *RecoveryInfo

	// hub fans pair-churn events out to /join/subscribe connections.
	hub *subHub
	// mutMu serializes the whole mutate pipeline — registry version bump,
	// cache sweep, delta maintenance, event fan-out — so subscribers
	// observe every version transition exactly once and in order. Joins
	// do NOT take it; they read whatever version is installed when they
	// resolve names, and COW snapshots keep that read stable.
	mutMu sync.Mutex

	joinsServed   atomic.Int64 // all successful joins, cache hits included
	joinsComputed atomic.Int64 // joins that actually executed an algorithm
	joinsFlat     atomic.Int64 // computed joins that read flat (arena) storage
	pageAccesses  atomic.Int64 // physical I/O summed over computed joins
	decodeHits    atomic.Int64 // decoded-node cache hits summed over computed joins
	ingests       atomic.Int64
	mutations     atomic.Int64 // accepted mutation batches
	deltaRuns     atomic.Int64 // incremental maintenance runs (one per live subscription pair per mutation)
	pairsChurned  atomic.Int64 // +pair/-pair events emitted by delta runs
}

// flight is one in-progress join computation; done closes when the leader
// finishes, with res set unless the leader failed before executing.
type flight struct {
	done chan struct{}
	res  *cachedResult
}

// New creates a service with the given configuration.
func New(cfg Config) *Service {
	if cfg.BufferPct <= 0 {
		cfg.BufferPct = 2
	}
	switch {
	case cfg.CacheEntries < 0:
		cfg.CacheEntries = 0
	case cfg.CacheEntries == 0:
		cfg.CacheEntries = 64
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Service{
		cfg:     cfg,
		reg:     NewRegistry(cfg.BufferPct),
		cache:   newResultCache(cfg.CacheEntries),
		admit:   make(chan struct{}, cfg.MaxConcurrent),
		flights: make(map[string]*flight),
		hub:     newSubHub(),
		start:   time.Now(),
		logger:  logger,
	}
	if cfg.JournalEntries >= 0 {
		s.journal = NewJournal(cfg.JournalEntries, cfg.JournalSlowest, cfg.JournalSink)
	}
	s.metrics = newServiceMetrics(s)
	s.runtime = obs.NewRuntimeCollector(s.metrics.reg, s.start)
	s.history = history.New(s.metrics.reg, cfg.HistoryCapacity, s.runtime.Collect)
	return s
}

// Open creates a Service and, when cfg.DataDir is set, attaches the
// durable store: prior state is restored (manifest -> snapshots -> WAL
// tail) before the service accepts work, and every subsequent ingest and
// mutation is made durable before it is acknowledged. With no DataDir it
// is exactly New.
func Open(cfg Config) (*Service, error) {
	s := New(cfg)
	if cfg.DataDir == "" {
		return s, nil
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = storage.OSFS{}
	}
	st, info, err := openStore(fsys, cfg.DataDir, s.reg, s.metrics, s.logger)
	if err != nil {
		return nil, err
	}
	if cfg.CheckpointWALBytes > 0 {
		st.checkpointBytes = cfg.CheckpointWALBytes
	}
	s.store.Store(st)
	s.recovery = info
	if info.CleanShutdown {
		s.metrics.recoveryClean.Set(1)
	} else {
		s.metrics.recoveryClean.Set(0)
	}
	s.metrics.recoveryReplayed.Add(int64(info.Replayed))
	s.metrics.recoveryStale.Add(int64(info.Stale))
	s.metrics.walCorrupt.Add(int64(info.CorruptRecords))
	s.logger.Info("durable store opened",
		"data_dir", cfg.DataDir,
		"fresh", info.Fresh,
		"clean_shutdown", info.CleanShutdown,
		"datasets", info.Datasets,
		"wal_replayed", info.Replayed,
		"wal_stale", info.Stale,
		"wal_corrupt", info.CorruptRecords,
		"wal_torn_tail", info.TornTail,
	)
	return s, nil
}

// Recovery reports what the durable store found at boot (nil without a
// DataDir).
func (s *Service) Recovery() *RecoveryInfo { return s.recovery }

// Close flushes the durable tier: a final checkpoint folds the WAL into
// snapshots and the manifest gets its clean-shutdown marker. Call it
// after the HTTP server has drained; a store-less service closes as a
// no-op.
func (s *Service) Close() error {
	st := s.store.Load()
	if st == nil {
		return nil
	}
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	return st.close(s.reg)
}

// DrainSubscribers ends every /join/subscribe stream with a terminal
// "closed" line, unblocking their handlers so http.Server.Shutdown can
// finish. Call it before Shutdown: the streams are long-lived by design
// and would otherwise hold the drain open until its deadline. Returns
// how many subscribers were drained.
func (s *Service) DrainSubscribers() int { return s.hub.drain() }

// Journal exposes the query journal (nil when disabled) — the backing of
// GET /debug/queries and the tests' observation source.
func (s *Service) Journal() *Journal { return s.journal }

// History exposes the metrics-history ring. Sampling is caller-driven:
// cijserver starts the interval loop, tests call Sample directly.
func (s *Service) History() *history.Ring { return s.history }

// Registry exposes the dataset registry (preloading, tests).
func (s *Service) Registry() *Registry { return s.reg }

// Metrics exposes the service's metric registry — the backing store of
// GET /metrics, and the bench harness's source for server-side latency
// histogram snapshots.
func (s *Service) Metrics() *obs.Registry { return s.metrics.reg }

// Ingest indexes pts under name (replacing any previous version), sweeps
// the named dataset's cached results and returns the new registry entry.
// It serializes with mutations under mutMu — which is also what makes
// the durable protocol sound: the snapshot written before install is
// guaranteed to describe the version that installs.
func (s *Service) Ingest(name string, pts []Point) (*Dataset, error) {
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	var d *Dataset
	if st := s.store.Load(); st != nil {
		var err error
		if d, err = s.reg.PrepareIngest(name, pts); err != nil {
			return nil, err
		}
		version := s.reg.NextVersion(name)
		if err := st.logIngest(d, version); err != nil {
			return nil, fmt.Errorf("persisting dataset %q: %w", name, err)
		}
		if err := s.reg.InstallIngest(d, version); err != nil {
			return nil, err
		}
	} else {
		var err error
		if d, err = s.reg.Put(name, pts); err != nil {
			return nil, err
		}
	}
	s.cache.invalidateDataset(name)
	s.ingests.Add(1)
	return d, nil
}

// Query is one join request against named datasets.
type Query struct {
	Left  string
	Right string
	// Algo selects the algorithm: nm, pm, fm, parallel, or auto/empty.
	Algo string
	// Storage selects the node representation for tree algorithms: flat,
	// paged, or auto/empty (the planner picks; the service's
	// DefaultStorage applies first when the query leaves it empty).
	Storage string
	// Workers fixes the parallel pool size; <= 0 lets the planner size it
	// from the dataset cardinalities.
	Workers int
	// TopK caps the pairs returned in responses; <= 0 returns all. The
	// full result is still computed (and cached), so stats describe the
	// complete join.
	TopK int
}

// applyDefaultStorage fills an empty storage knob from the service
// configuration, so operators can pin a deployment to paged or flat mode
// without touching clients (an explicit per-query choice still wins).
func (s *Service) applyDefaultStorage(q Query) Query {
	if q.Storage == "" {
		q.Storage = s.cfg.DefaultStorage
	}
	return q
}

// storageLabel maps a plan's storage onto a bounded metric label ("none"
// for the storage-less grid backend).
func storageLabel(storage string) string {
	if storage == "" {
		return "none"
	}
	return storage
}

// Outcome is the dispatcher's answer to one query: the (possibly cached)
// full result, the plan that produced it, and the dataset versions it was
// computed against.
type Outcome struct {
	Result      *cachedResult
	Plan        Plan
	Cached      bool
	Left, Right *Dataset
	// QueryID is this request's journal identity, threaded into the
	// response, the stream summary and the slog records.
	QueryID int64
}

// Join resolves, plans and executes one query. On a cache hit — or when
// an identical computation is already in flight — the memoized result is
// returned without executing anything (hooks are NOT invoked; callers
// that stream replay the cached pairs themselves). Otherwise the join
// runs under the admission semaphore with the hooks live, then the full
// result is cached. ctx cancellation is honored while queued for
// admission or waiting on another request's flight.
func (s *Service) Join(ctx context.Context, q Query, hooks execHooks) (*Outcome, error) {
	left, ok := s.reg.Get(q.Left)
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q", q.Left)
	}
	right, ok := s.reg.Get(q.Right)
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q", q.Right)
	}
	q = s.applyDefaultStorage(q)
	pl, err := plan(q, left, right)
	if err != nil {
		return nil, err
	}

	s.metrics.planner.With(pl.Algo).Inc()
	s.metrics.plannerStorage.With(storageLabel(pl.Storage)).Inc()

	// Every served join — cache hits included — is one observation, so
	// every request gets a query ID up front (the slow-query log inside
	// compute needs it before the outcome exists).
	qid := s.queryID.Add(1)

	key := cacheKey(left, right, pl.Algo, pl.Workers, pl.Storage)
	if res, ok := s.cache.get(key); ok {
		s.joinsServed.Add(1)
		s.metrics.joins.With(pl.Algo, "cached").Inc()
		return s.record(q, &Outcome{Result: res, Plan: pl, Cached: true, Left: left, Right: right, QueryID: qid}), nil
	}

	s.flightMu.Lock()
	if f, ok := s.flights[key]; ok {
		// Follower: an identical join is computing right now. Wait for it
		// rather than burning an admission slot on duplicate work.
		s.flightMu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if f.res != nil {
			s.joinsServed.Add(1)
			s.metrics.joins.With(pl.Algo, "cached").Inc()
			return s.record(q, &Outcome{Result: f.res, Plan: pl, Cached: true, Left: left, Right: right, QueryID: qid}), nil
		}
		// The leader bailed before executing (admission cancelled);
		// compute directly — the admission semaphore still bounds a
		// stampede of orphaned followers.
		out, err := s.compute(ctx, qid, key, pl, left, right, hooks)
		if err != nil {
			return nil, err
		}
		return s.record(q, out), nil
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.flightMu.Unlock()
	defer func() {
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		close(f.done)
	}()

	out, err := s.compute(ctx, qid, key, pl, left, right, hooks)
	if err != nil {
		return nil, err
	}
	f.res = out.Result
	return s.record(q, out), nil
}

// record journals one served join: the planner's inputs and narrated
// reason next to the measured outcome, with the computed run's phase
// spans competing for slowest-K retention. The record's Stats is built by
// the same projection the JoinResponse uses, so the two are byte-equal.
func (s *Service) record(q Query, out *Outcome) *Outcome {
	if !s.journal.Enabled() {
		return out
	}
	rec := JournalRecord{
		ID:           out.QueryID,
		Time:         time.Now(),
		Left:         out.Left.Name,
		LeftVersion:  out.Left.Version,
		Right:        out.Right.Name,
		RightVersion: out.Right.Version,
		Algo:         out.Plan.Algo,
		Storage:      out.Plan.Storage,
		Workers:      out.Plan.Workers,
		Cached:       out.Cached,
		Pairs:        out.Result.Count,
		Stats:        out.statsJSON(),
		Slow:         !out.Cached && s.cfg.SlowQuery > 0 && out.Result.CPU >= s.cfg.SlowQuery,
	}
	// The narration re-runs the (deterministic) planner; the journal line
	// must stand alone as a training observation, so it carries the full
	// decision context, not a pointer to it.
	if ex, err := explain(q, out.Left, out.Right); err == nil {
		rec.Reason = ex.Reason
		rec.Inputs = ex.Inputs
	}
	var spans []obs.Span
	var dropped int64
	if !out.Cached {
		spans, dropped = out.Result.Trace, out.Result.TraceDropped
	}
	s.journal.Add(rec, spans, dropped)
	return out
}

// compute runs one planned join under the admission semaphore and records
// it in the cache, the counters and the metric families.
func (s *Service) compute(ctx context.Context, qid int64, key string, pl Plan, left, right *Dataset, hooks execHooks) (*Outcome, error) {
	waitStart := time.Now()
	s.metrics.admissionWaiting.Add(1)
	select {
	case s.admit <- struct{}{}:
		s.metrics.admissionWaiting.Add(-1)
	case <-ctx.Done():
		s.metrics.admissionWaiting.Add(-1)
		return nil, ctx.Err()
	}
	defer func() { <-s.admit }()
	wait := time.Since(waitStart)
	s.metrics.admissionWait.Observe(wait.Seconds())

	// Trace when the request opted in, the slow-query log is armed (a
	// slow join must be able to dump its phases after the fact), or the
	// journal is on (the slowest-K retention needs spans to retain).
	var tr *obs.Trace
	if hooks.trace || s.cfg.SlowQuery > 0 || s.journal.Enabled() {
		tr = obs.NewTrace()
		tr.Add("admission", "", wait, obs.Counters{})
	}

	res := s.execute(left, right, pl, hooks, tr)
	s.cache.put(key, left.Name, right.Name, res)
	s.joinsServed.Add(1)
	s.joinsComputed.Add(1)
	if pl.Storage == "flat" {
		s.joinsFlat.Add(1)
	}
	s.pageAccesses.Add(res.IO.PageAccesses())
	s.decodeHits.Add(res.IO.DecodeHits)
	s.metrics.joins.With(pl.Algo, "computed").Inc()
	s.metrics.joinLatency.With(pl.Algo).Observe(res.CPU.Seconds())
	s.metrics.recordJoinIO(res.IO, pl.Storage)

	logArgs := []any{
		"query_id", qid,
		"left", left.Name, "right", right.Name,
		"algo", pl.Algo, "workers", pl.Workers,
		"storage", pl.Storage,
		"pairs", res.Count,
		"pages", res.IO.PageAccesses(),
		"decode_hits", res.IO.DecodeHits,
		"wall_ms", float64(res.CPU) / float64(time.Millisecond),
	}
	if s.cfg.SlowQuery > 0 && res.CPU >= s.cfg.SlowQuery {
		s.metrics.slowQueries.Inc()
		s.logger.Warn("slow query",
			append(logArgs, "threshold_ms", float64(s.cfg.SlowQuery)/float64(time.Millisecond),
				"trace", res.Trace)...)
	} else {
		s.logger.Info("join computed", logArgs...)
	}
	return &Outcome{Result: res, Plan: pl, Left: left, Right: right, QueryID: qid}, nil
}

// InFlight reports how many joins currently hold an admission slot.
func (s *Service) InFlight() int { return len(s.admit) }
