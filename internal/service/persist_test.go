package service

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"testing"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/geom"
	"cij/internal/storage"
)

// durableConfig is the test configuration for a durable service over an
// injected filesystem.
func durableConfig(fsys storage.FS) Config {
	return Config{DataDir: "data", FS: fsys, JournalEntries: -1}
}

func mustOpen(t *testing.T, fsys storage.FS) *Service {
	t.Helper()
	s, err := Open(durableConfig(fsys))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func mustIngest(t *testing.T, s *Service, name string, pts []geom.Point) *Dataset {
	t.Helper()
	d, err := s.Ingest(name, pts)
	if err != nil {
		t.Fatalf("Ingest(%s): %v", name, err)
	}
	return d
}

func mustMutate(t *testing.T, s *Service, name string, req MutationRequest) *MutationResponse {
	t.Helper()
	resp, err := s.MutatePoints(name, req)
	if err != nil {
		t.Fatalf("MutatePoints(%s): %v", name, err)
	}
	return resp
}

// sortedPairs is a canonical projection of a join result for equality.
func sortedPairs(pairs []core.Pair) []core.Pair {
	out := append([]core.Pair(nil), pairs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P < out[j].P
		}
		return out[i].Q < out[j].Q
	})
	return out
}

// joinNM runs one uncached nm/paged join and returns its pairs and pages.
func joinNM(t *testing.T, s *Service, left, right string) ([]core.Pair, int64) {
	t.Helper()
	out, err := s.Join(context.Background(), Query{Left: left, Right: right, Algo: "nm", Storage: "paged"}, execHooks{})
	if err != nil {
		t.Fatalf("Join(%s,%s): %v", left, right, err)
	}
	if out.Cached {
		t.Fatalf("join unexpectedly served from cache")
	}
	return sortedPairs(out.Result.Pairs), out.Result.IO.PageAccesses()
}

// assertDatasetsEqual compares the observable surface of two datasets:
// identity, point table, tombstones, and the raw page bytes of their
// disks (the durable tier's byte-for-byte contract).
func assertDatasetsEqual(t *testing.T, want, got *Dataset) {
	t.Helper()
	if got.Name != want.Name || got.Version != want.Version {
		t.Fatalf("dataset %s: version %d, want %d", want.Name, got.Version, want.Version)
	}
	if got.Live != want.Live || len(got.Points) != len(want.Points) {
		t.Fatalf("dataset %s: %d/%d points, want %d/%d", want.Name, got.Live, len(got.Points), want.Live, len(want.Points))
	}
	for i := range want.Points {
		wa := want.Alive == nil || want.Alive[i]
		ga := got.Alive == nil || got.Alive[i]
		if wa != ga {
			t.Fatalf("dataset %s: point %d alive=%v, want %v", want.Name, i, ga, wa)
		}
		if wa && !got.Points[i].Eq(want.Points[i]) {
			t.Fatalf("dataset %s: point %d = %v, want %v", want.Name, i, got.Points[i], want.Points[i])
		}
	}
	wd, gd := want.Tree.Buffer().Disk(), got.Tree.Buffer().Disk()
	if gd.NumPages() != wd.NumPages() || gd.PageSize() != wd.PageSize() {
		t.Fatalf("dataset %s: disk %d pages of %d, want %d of %d",
			want.Name, gd.NumPages(), gd.PageSize(), wd.NumPages(), wd.PageSize())
	}
	for i := 0; i < wd.NumPages(); i++ {
		if !bytes.Equal(gd.PageBytes(storage.PageID(i)), wd.PageBytes(storage.PageID(i))) {
			t.Fatalf("dataset %s: page %d not byte-identical after restore", want.Name, i)
		}
	}
}

// TestDurableLifecycle: ingest + mutations + clean shutdown, then a cold
// start — the reopened service serves the identical registry, and its
// joins are byte-equivalent (same pair sets, same pages/op) to the
// pre-shutdown ones.
func TestDurableLifecycle(t *testing.T) {
	fs := storage.NewFaultFS()
	s := mustOpen(t, fs)
	if rec := s.Recovery(); !rec.Fresh || !rec.CleanShutdown {
		t.Fatalf("fresh open recovery = %+v", rec)
	}
	mustIngest(t, s, "p", dataset.Uniform(400, 1))
	mustIngest(t, s, "q", dataset.Uniform(300, 2))
	mustMutate(t, s, "p", MutationRequest{Insert: []PointJSON{{X: 11, Y: 22}, {X: 33, Y: 44}}})
	mustMutate(t, s, "p", MutationRequest{Delete: []int64{0, 7}})
	mustMutate(t, s, "q", MutationRequest{Update: []MovePointJSON{{ID: 3, X: 500, Y: 500}}})

	wantPairs, wantPages := joinNM(t, s, "p", "q")
	wantP, _ := s.reg.Get("p")
	wantQ, _ := s.reg.Get("q")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, fs)
	rec := s2.Recovery()
	if rec.Fresh || !rec.CleanShutdown {
		t.Fatalf("reopen recovery = %+v, want clean", rec)
	}
	if rec.Replayed != 0 {
		t.Fatalf("clean reopen replayed %d WAL records, want 0 (Close checkpoints)", rec.Replayed)
	}
	gotP, ok := s2.reg.Get("p")
	if !ok {
		t.Fatal("dataset p lost across restart")
	}
	gotQ, ok := s2.reg.Get("q")
	if !ok {
		t.Fatal("dataset q lost across restart")
	}
	assertDatasetsEqual(t, wantP, gotP)
	assertDatasetsEqual(t, wantQ, gotQ)

	gotPairs, gotPages := joinNM(t, s2, "p", "q")
	if gotPages != wantPages {
		t.Fatalf("restored join performed %d page accesses, original %d", gotPages, wantPages)
	}
	if len(gotPairs) != len(wantPairs) {
		t.Fatalf("restored join found %d pairs, original %d", len(gotPairs), len(wantPairs))
	}
	for i := range wantPairs {
		if gotPairs[i] != wantPairs[i] {
			t.Fatalf("pair %d = %+v, want %+v", i, gotPairs[i], wantPairs[i])
		}
	}
}

// TestDurableCrashRecoversAcknowledged: kill the filesystem without Close
// (the kill -9 shape) — every acknowledged mutation must be recovered
// from the WAL, the recovery must report the unclean shutdown, and the
// recovered join must equal the brute-force oracle.
func TestDurableCrashRecoversAcknowledged(t *testing.T) {
	fs := storage.NewFaultFS()
	s := mustOpen(t, fs)
	mustIngest(t, s, "p", dataset.Uniform(300, 3))
	mustIngest(t, s, "q", dataset.Uniform(200, 4))
	for i := 0; i < 5; i++ {
		mustMutate(t, s, "p", MutationRequest{
			Insert: []PointJSON{{X: float64(100 + i), Y: float64(200 + i)}},
			Delete: []int64{int64(2 * i)},
		})
	}
	wantP, _ := s.reg.Get("p")
	wantVersion := wantP.Version

	fs.Crash(storage.CrashLoseUnsynced)
	fs.Restart()

	s2 := mustOpen(t, fs)
	rec := s2.Recovery()
	if rec.CleanShutdown {
		t.Fatal("crash recovery reported a clean shutdown")
	}
	if rec.Replayed != 5 {
		t.Fatalf("replayed %d WAL records, want 5", rec.Replayed)
	}
	gotP, ok := s2.reg.Get("p")
	if !ok {
		t.Fatal("dataset p lost in crash")
	}
	if gotP.Version != wantVersion {
		t.Fatalf("recovered p at version %d, acknowledged %d", gotP.Version, wantVersion)
	}
	for i := range wantP.Points {
		wa := wantP.Alive == nil || wantP.Alive[i]
		ga := gotP.Alive == nil || gotP.Alive[i]
		if wa != ga || (wa && !gotP.Points[i].Eq(wantP.Points[i])) {
			t.Fatalf("recovered point %d diverges from acknowledged state", i)
		}
	}

	// The recovered dataset must join exactly like the oracle says.
	pairs, _ := joinNM(t, s2, "p", "q")
	pp, pids := gotP.JoinPoints()
	qq, qids := s2.mustGet(t, "q").JoinPoints()
	oracle := core.BruteCIJ(pp, qq, dataset.Domain)
	remapPairs(oracle, pids, qids)
	oracle = sortedPairs(oracle)
	if len(pairs) != len(oracle) {
		t.Fatalf("recovered join found %d pairs, oracle %d", len(pairs), len(oracle))
	}
	for i := range pairs {
		if pairs[i] != oracle[i] {
			t.Fatalf("recovered pair %d = %+v, oracle %+v", i, pairs[i], oracle[i])
		}
	}
}

// mustGet is a test helper fetching a dataset that must exist.
func (s *Service) mustGet(t *testing.T, name string) *Dataset {
	t.Helper()
	d, ok := s.reg.Get(name)
	if !ok {
		t.Fatalf("dataset %s missing", name)
	}
	return d
}

// TestCheckpointThenCrashBeforeTrim: replay is idempotent. A checkpoint
// whose WAL trim never lands leaves every record stale; recovery must
// skip all of them and change nothing.
func TestCheckpointThenCrashBeforeTrim(t *testing.T) {
	fs := storage.NewFaultFS()
	s := mustOpen(t, fs)
	mustIngest(t, s, "p", dataset.Uniform(200, 5))
	mustMutate(t, s, "p", MutationRequest{Insert: []PointJSON{{X: 1, Y: 2}}})
	mustMutate(t, s, "p", MutationRequest{Delete: []int64{5}})

	// Capture the WAL as it stands with both records committed.
	walBytes, err := storage.ReadFileAll(fs, "data/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(walBytes) == 0 {
		t.Fatal("WAL empty before checkpoint; the mutation path is not logging")
	}
	wantP, _ := s.reg.Get("p")
	if err := s.Close(); err != nil { // checkpoints, trims, marks clean
		t.Fatal(err)
	}

	// Simulate the crash landing between the checkpoint's manifest write
	// and its WAL trim: put the pre-checkpoint records back.
	f, err := fs.Create("data/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(walBytes, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, fs)
	rec := s2.Recovery()
	if rec.Replayed != 0 {
		t.Fatalf("replayed %d stale records; checkpointed batches must not re-apply", rec.Replayed)
	}
	if rec.Stale != 2 {
		t.Fatalf("stale = %d, want 2", rec.Stale)
	}
	gotP := s2.mustGet(t, "p")
	assertDatasetsEqual(t, wantP, gotP)
}

// TestDurableMatchesSimulated: the durable tier must not perturb the
// simulation it persists — a service with a store and one without,
// driven identically, produce byte-identical disks and identical join
// I/O.
func TestDurableMatchesSimulated(t *testing.T) {
	drive := func(s *Service) {
		mustIngest(t, s, "p", dataset.Uniform(350, 6))
		mustIngest(t, s, "q", dataset.Uniform(250, 7))
		mustMutate(t, s, "p", MutationRequest{Insert: []PointJSON{{X: 9, Y: 9}}})
		mustMutate(t, s, "q", MutationRequest{Delete: []int64{1, 2, 3}})
	}
	plain := New(Config{JournalEntries: -1})
	drive(plain)
	fs := storage.NewFaultFS()
	durable := mustOpen(t, fs)
	drive(durable)

	for _, name := range []string{"p", "q"} {
		assertDatasetsEqual(t, plain.mustGet(t, name), durable.mustGet(t, name))
	}
	pPairs, pPages := joinNM(t, plain, "p", "q")
	dPairs, dPages := joinNM(t, durable, "p", "q")
	if pPages != dPages {
		t.Fatalf("durable join: %d page accesses, simulated %d", dPages, pPages)
	}
	if fmt.Sprint(pPairs) != fmt.Sprint(dPairs) {
		t.Fatalf("durable and simulated joins disagree")
	}

	// And the restart of the durable one still matches the simulation.
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := mustOpen(t, fs)
	for _, name := range []string{"p", "q"} {
		assertDatasetsEqual(t, plain.mustGet(t, name), reopened.mustGet(t, name))
	}
	rPairs, rPages := joinNM(t, reopened, "p", "q")
	if rPages != pPages || fmt.Sprint(rPairs) != fmt.Sprint(pPairs) {
		t.Fatalf("reopened join diverged: %d pages vs %d", rPages, pPages)
	}
}

// TestCheckpointTriggersAndTrims: once the WAL outgrows the configured
// threshold, a mutation triggers the fold and the log shrinks to zero,
// with the state surviving a crash on snapshots alone.
func TestCheckpointTriggersAndTrims(t *testing.T) {
	fs := storage.NewFaultFS()
	cfg := durableConfig(fs)
	cfg.CheckpointWALBytes = 1 // every mutation checkpoints
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, s, "p", dataset.Uniform(150, 8))
	mustMutate(t, s, "p", MutationRequest{Insert: []PointJSON{{X: 1, Y: 1}}})
	st := s.store.Load()
	if st.wal.Size() != 0 {
		t.Fatalf("WAL holds %d bytes after checkpoint, want 0", st.wal.Size())
	}
	wantP, _ := s.reg.Get("p")

	// No Close: the snapshots alone must carry the state.
	fs.Crash(storage.CrashLoseUnsynced)
	fs.Restart()
	s2 := mustOpen(t, fs)
	rec := s2.Recovery()
	if rec.Replayed != 0 {
		t.Fatalf("replayed %d records, want 0 (checkpoint already folded them)", rec.Replayed)
	}
	assertDatasetsEqual(t, wantP, s2.mustGet(t, "p"))
}

// TestFsck: a healthy directory reports no problems; corruption in a
// snapshot page is caught and named.
func TestFsck(t *testing.T) {
	fs := storage.NewFaultFS()
	s := mustOpen(t, fs)
	mustIngest(t, s, "p", dataset.Uniform(120, 9))
	mustMutate(t, s, "p", MutationRequest{Insert: []PointJSON{{X: 2, Y: 3}}})

	// Live (unclean) directory: WAL has one replayable record.
	rep, err := Fsck(fs, "data")
	if err != nil {
		t.Fatalf("Fsck: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("healthy dir reported problems: %v", rep.Problems)
	}
	if rep.WALReplayable != 1 || rep.CleanShutdown {
		t.Fatalf("live dir fsck = %+v, want 1 replayable record, unclean", rep)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err = Fsck(fs, "data")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || !rep.CleanShutdown || rep.WALRecords != 0 {
		t.Fatalf("closed dir fsck = %+v (problems %v)", rep, rep.Problems)
	}
	if len(rep.Datasets) != 1 || rep.Datasets[0].Points != 121 {
		t.Fatalf("fsck datasets = %+v", rep.Datasets)
	}

	// Flip a byte inside the snapshot's page area: fsck must object.
	name := rep.Datasets[0].File
	f, err := fs.OpenRW("data/" + name)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], 100); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], 100); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rep, err = Fsck(fs, "data")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("fsck accepted a corrupted snapshot")
	}
}
