package service

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"cij/internal/dataset"
	"cij/internal/geom"
)

// fakeDataset fabricates a registry entry with the given cardinality and
// skew statistic; plan() reads nothing else.
func fakeDataset(n int, skew float64) *Dataset {
	return &Dataset{Points: dataset.Uniform(n, 7), Skew: skew}
}

// TestPlanSelection covers every routing path of the auto planner plus
// the explicit choices, including the new grid branches.
func TestPlanSelection(t *testing.T) {
	uniform := func(n int) *Dataset { return fakeDataset(n, 1.0) }
	skewed := func(n int) *Dataset { return fakeDataset(n, 2*autoGridSkewMax) }

	cases := []struct {
		name        string
		q           Query
		left, right *Dataset
		wantAlgo    string
	}{
		{"auto small uniform -> grid", Query{}, uniform(500), uniform(500), "grid"},
		{"auto small left-skewed -> nm", Query{}, skewed(500), uniform(500), "nm"},
		{"auto small right-skewed -> nm", Query{}, uniform(500), skewed(500), "nm"},
		{"auto borderline skew -> grid", Query{}, fakeDataset(500, autoGridSkewMax), uniform(500), "grid"},
		{"auto explicit workers -> parallel", Query{Workers: 1}, uniform(100), uniform(100), "parallel"},
		{"explicit grid on skewed data honored", Query{Algo: "grid"}, skewed(500), skewed(500), "grid"},
		{"explicit nm honored", Query{Algo: "nm"}, uniform(100), uniform(100), "nm"},
		{"explicit parallel sizes pool", Query{Algo: "parallel"}, uniform(100), uniform(100), "parallel"},
	}
	for _, tc := range cases {
		pl, err := plan(tc.q, tc.left, tc.right)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if pl.Algo != tc.wantAlgo {
			t.Errorf("%s: planned %q, want %q", tc.name, pl.Algo, tc.wantAlgo)
		}
		if pl.Algo == "parallel" && (pl.Workers < 1 || pl.Workers > runtime.GOMAXPROCS(0)) {
			t.Errorf("%s: workers %d out of [1, GOMAXPROCS]", tc.name, pl.Workers)
		}
		if pl.Algo != "parallel" && pl.Workers != 0 {
			t.Errorf("%s: serial plan carries workers %d", tc.name, pl.Workers)
		}
	}

	if _, err := plan(Query{Algo: "pbsm"}, uniform(10), uniform(10)); err == nil {
		t.Fatal("unknown algo accepted")
	}

	// The auto-parallel branch fires only when the pool can exceed one
	// worker, which a single-core runner cannot express.
	if runtime.GOMAXPROCS(0) > 1 {
		big := uniform(2 * autoPointsPerWorker)
		for _, d := range []*Dataset{big, fakeDataset(2*autoPointsPerWorker, 2*autoGridSkewMax)} {
			pl, err := plan(Query{}, d, big)
			if err != nil {
				t.Fatal(err)
			}
			if pl.Algo != "parallel" {
				t.Errorf("auto large join planned %q, want parallel (skew %.1f)", pl.Algo, d.Skew)
			}
		}
	}
}

// TestIngestComputesSkew pins the ingest-time statistic the auto plan
// routes on: near 1 for uniform data, between 1 and the gate for
// ordinary clustered data (which the measurements say grid should still
// take), far above the gate for a near-point-mass dataset.
func TestIngestComputesSkew(t *testing.T) {
	svc := New(Config{})
	u, err := svc.Ingest("u", dataset.Uniform(5000, 91))
	if err != nil {
		t.Fatal(err)
	}
	c, err := svc.Ingest("c", dataset.Clustered(5000, 8, 92))
	if err != nil {
		t.Fatal(err)
	}
	// Every point inside one tiny patch: the whole dataset lands in one
	// histogram tile, the regime where the grid backend goes quadratic.
	mass := make([]geom.Point, 5000)
	for i := range mass {
		mass[i] = geom.Pt(5000+float64(i%50)*0.1, 5000+float64(i/50)*0.1)
	}
	m, err := svc.Ingest("m", mass)
	if err != nil {
		t.Fatal(err)
	}
	if u.Skew <= 0 || u.Skew > 2 {
		t.Fatalf("uniform ingest skew %.2f, want ~1", u.Skew)
	}
	if c.Skew <= 2 || c.Skew > autoGridSkewMax {
		t.Fatalf("clustered ingest skew %.2f, want in (2, %d]", c.Skew, autoGridSkewMax)
	}
	if m.Skew <= autoGridSkewMax {
		t.Fatalf("point-mass ingest skew %.2f, want > %d", m.Skew, autoGridSkewMax)
	}
}

// TestConcurrentAutoAndGridJoins drives the new planner paths (auto->grid
// and explicit grid) from many goroutines against one service while a
// writer re-ingests, so `go test -race` patrols the grid execution path
// and the skew statistic's publication through the registry.
func TestConcurrentAutoAndGridJoins(t *testing.T) {
	svc := New(Config{CacheEntries: -1})
	if _, err := svc.Ingest("p", dataset.Uniform(400, 71)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest("q", dataset.Uniform(400, 72)); err != nil {
		t.Fatal(err)
	}

	queries := []Query{
		{Left: "p", Right: "q"},               // auto -> grid
		{Left: "p", Right: "q", Algo: "grid"}, // explicit grid
		{Left: "p", Right: "q", Algo: "nm"},   // serial baseline
		{Left: "q", Right: "p", Algo: "grid"}, // reversed operands
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		q := queries[i%len(queries)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				out, err := svc.Join(context.Background(), q, execHooks{})
				if err != nil {
					t.Errorf("join %+v: %v", q, err)
					return
				}
				if out.Result.Count == 0 {
					t.Errorf("join %+v: empty result", q)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 5; j++ {
			if _, err := svc.Ingest("p", dataset.Uniform(400, int64(100+j))); err != nil {
				t.Errorf("re-ingest: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
