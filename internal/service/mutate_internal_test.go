package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/storage"
)

// TestCacheInvalidationExactNames is the regression for the old textual
// invalidation sweep: matching must be field-exact, so a dataset whose
// name is a prefix/substring of another's never sweeps its neighbor's
// entries, and every entry involving the named dataset goes regardless
// of which side it sits on.
func TestCacheInvalidationExactNames(t *testing.T) {
	c := newResultCache(16)
	res := &cachedResult{Pairs: []core.Pair{{P: 1, Q: 2}}, Count: 1, IO: storage.Stats{}}
	put := func(left, right string) string {
		key := left + "|" + right // distinct handle per entry; content is irrelevant here
		c.put(key, left, right, res)
		return key
	}
	kPQ := put("p", "q")
	kPPQ := put("pp", "q")  // "p" is a prefix of "pp"
	kAP := put("a", "p")    // "p" on the right side
	kAPP := put("a", "p.q") // "p" a prefix of "p.q"
	kXY := put("x", "y")    // untouched bystander

	c.invalidateDataset("p")

	for _, tc := range []struct {
		key  string
		want bool
	}{
		{kPQ, false}, // left == p: swept
		{kAP, false}, // right == p: swept
		{kPPQ, true}, // pp != p: must survive
		{kAPP, true}, // p.q != p: must survive
		{kXY, true},
	} {
		if _, ok := c.get(tc.key); ok != tc.want {
			t.Errorf("after invalidate(p): entry %q present=%v, want %v", tc.key, ok, tc.want)
		}
	}
}

// TestMutateFlatDatasetConflict pins the immutability guard: a dataset
// whose live tree is flat (arena-frozen, no disk to copy-on-write) must
// refuse mutation with ErrDatasetImmutable, which the HTTP layer maps to
// 409 — before anything reaches the clone path that would panic.
func TestMutateFlatDatasetConflict(t *testing.T) {
	reg := NewRegistry(2)
	d, err := reg.Put("frozen", dataset.Uniform(50, 7))
	if err != nil {
		t.Fatal(err)
	}
	// Registry datasets always carry paged trees; force the guard's
	// condition by making the live tree the flat copy.
	d.Tree = d.FlatTree

	_, _, _, err = reg.Mutate("frozen", MutationSpec{Delete: []int64{0}})
	if !errors.Is(err, ErrDatasetImmutable) {
		t.Fatalf("Mutate on flat dataset: err = %v, want ErrDatasetImmutable", err)
	}
	if got := mutationErrorStatus(err); got != http.StatusConflict {
		t.Fatalf("mutationErrorStatus(ErrDatasetImmutable) = %d, want 409", got)
	}
}

// TestInstrumentPanicRecovery exercises the recovery middleware: a
// panicking handler must produce a JSON 500 (when no status was
// committed), tick cij_panics_total, and still book its request metrics —
// and http.ErrAbortHandler must pass through untouched.
func TestInstrumentPanicRecovery(t *testing.T) {
	s := New(Config{})
	h := s.instrument("boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest(http.MethodGet, "/boom", nil))

	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rr.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("panic response is not JSON: %q", rr.Body.String())
	}
	if !strings.Contains(body["error"], "kaboom") {
		t.Fatalf("panic response %q does not name the panic", body["error"])
	}

	// A second panic after the handler already committed a status must not
	// write a second body on top of the stream.
	h2 := s.instrument("boom2", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial"))
		panic("late")
	})
	rr2 := httptest.NewRecorder()
	h2(rr2, httptest.NewRequest(http.MethodGet, "/boom2", nil))
	if rr2.Code != http.StatusOK || rr2.Body.String() != "partial" {
		t.Fatalf("mid-stream panic rewrote the response: code=%d body=%q", rr2.Code, rr2.Body.String())
	}

	// Both recoveries are on the books.
	mrr := httptest.NewRecorder()
	s.Handler().ServeHTTP(mrr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(mrr.Body.String(), "cij_panics_total 2") {
		t.Fatalf("metrics do not report cij_panics_total 2:\n%s", grepMetric(mrr.Body.String(), "cij_panics_total"))
	}

	// net/http's sanctioned abort is not a recovered panic.
	h3 := s.instrument("abort", func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})
	func() {
		defer func() {
			if recover() != http.ErrAbortHandler {
				t.Error("http.ErrAbortHandler was swallowed by the middleware")
			}
		}()
		h3(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/abort", nil))
	}()
}

// grepMetric extracts the lines of one metric family for error messages.
func grepMetric(body, name string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, name) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
