package service

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"

	"cij/internal/obs"
)

// The query journal: every served join becomes a durable observation
// record — the full planner inputs next to the measured outcome — kept in
// a lock-cheap capped ring, optionally appended to a JSONL sink, and
// queryable over GET /debug/queries. This is the recorded-observation
// corpus the ROADMAP's fitted cost model trains from: each line pairs
// what the planner believed (cardinalities, skew, chosen algo/storage/
// workers, narrated reason) with what actually happened (wall time,
// pages, logical reads, decode hits/misses, pairs emitted).

// DefaultJournalEntries is the ring capacity when the configuration
// leaves it zero; DefaultJournalSlowest the retained-trace count.
const (
	DefaultJournalEntries = 512
	DefaultJournalSlowest = 8
)

// JournalRecord is one observation: identity, plan, and outcome. Stats is
// the same JoinStatsJSON the JoinResponse carried — byte-equal by
// construction, which is what makes the journal reconcile with the
// response and the /metrics deltas exactly.
type JournalRecord struct {
	// ID is the query ID, monotone per service instance; the same ID
	// appears in the JoinResponse, the NDJSON summary line and the slog
	// records, so the four surfaces cross-reference.
	ID   int64     `json:"id"`
	Time time.Time `json:"time"`

	Left         string `json:"left"`
	LeftVersion  int    `json:"left_version"`
	Right        string `json:"right"`
	RightVersion int    `json:"right_version"`

	// The executed plan and the planner's narration of why.
	Algo    string     `json:"algo"`
	Storage string     `json:"storage,omitempty"`
	Workers int        `json:"workers,omitempty"`
	Cached  bool       `json:"cached"`
	Reason  string     `json:"reason,omitempty"`
	Inputs  PlanInputs `json:"inputs"`

	// The measured outcome.
	Pairs int64         `json:"pairs"`
	Stats JoinStatsJSON `json:"stats"`
	Slow  bool          `json:"slow,omitempty"`

	// Trace carries the per-phase spans on JSONL sink lines (the training
	// corpus keeps the phase breakdown) and on GET /debug/queries/{id}
	// responses whose trace was retained; ring-resident records leave it
	// nil — only the slowest-K traces stay in memory.
	Trace *TraceJSON `json:"trace,omitempty"`
}

// retainedTrace is one slowest-K entry: the spans of a computed join kept
// beyond its ring record.
type retainedTrace struct {
	id      int64
	wallMS  float64
	spans   []obs.Span
	dropped int64
}

// Journal is the capped observation ring. A nil *Journal is the disabled
// journal: every method no-ops (Enabled reports false), so call sites
// thread it without guards and the disabled path stays free.
type Journal struct {
	mu      sync.Mutex
	recs    []JournalRecord // ring storage
	next    int             // index the next record lands in
	count   int             // live records
	total   int64           // records ever journaled
	slowK   int
	slowest []retainedTrace // ascending by wallMS, len <= slowK

	sinkMu sync.Mutex
	sink   *bufio.Writer
	sinkW  io.Writer
}

// NewJournal creates a journal ring holding at most entries records
// (0 selects DefaultJournalEntries) and retaining the phase traces of the
// slowest computed joins (0 selects DefaultJournalSlowest). sink, when
// non-nil, receives one JSON line per observation, append-only.
func NewJournal(entries, slowest int, sink io.Writer) *Journal {
	if entries <= 0 {
		entries = DefaultJournalEntries
	}
	if slowest <= 0 {
		slowest = DefaultJournalSlowest
	}
	j := &Journal{recs: make([]JournalRecord, entries), slowK: slowest}
	if sink != nil {
		j.sinkW = sink
		j.sink = bufio.NewWriter(sink)
	}
	return j
}

// Enabled reports whether observations are recorded. Nil-safe.
func (j *Journal) Enabled() bool { return j != nil }

// Add journals one observation. spans (nil when the run was untraced or
// served from cache) compete for slowest-K retention; the sink line is
// written outside the ring lock with the spans attached.
func (j *Journal) Add(rec JournalRecord, spans []obs.Span, dropped int64) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.recs[j.next] = rec
	j.next = (j.next + 1) % len(j.recs)
	if j.count < len(j.recs) {
		j.count++
	}
	j.total++
	if spans != nil && !rec.Cached {
		j.retainLocked(rec.ID, rec.Stats.WallMS, spans, dropped)
	}
	j.mu.Unlock()

	if j.sink != nil {
		if spans != nil {
			rec.Trace = NewTraceJSON(spans, dropped)
		}
		j.sinkMu.Lock()
		if b, err := json.Marshal(rec); err == nil {
			j.sink.Write(b)
			j.sink.WriteByte('\n')
			j.sink.Flush()
		}
		j.sinkMu.Unlock()
	}
}

// retainLocked folds one traced run into the slowest-K set (ascending by
// wall time; the fastest retained entry is evicted first).
func (j *Journal) retainLocked(id int64, wallMS float64, spans []obs.Span, dropped int64) {
	if len(j.slowest) >= j.slowK {
		if wallMS <= j.slowest[0].wallMS {
			return
		}
		j.slowest = j.slowest[1:]
	}
	i := 0
	for i < len(j.slowest) && j.slowest[i].wallMS <= wallMS {
		i++
	}
	j.slowest = append(j.slowest, retainedTrace{})
	copy(j.slowest[i+1:], j.slowest[i:])
	j.slowest[i] = retainedTrace{id: id, wallMS: wallMS, spans: spans, dropped: dropped}
}

// JournalFilter narrows a Recent listing. Zero values match everything.
type JournalFilter struct {
	// Dataset matches records whose left or right dataset has the name.
	Dataset string
	// Algo matches the executed algorithm.
	Algo string
	// MinWallMS keeps only observations at least this slow.
	MinWallMS float64
	// Limit caps the returned records (0 = 100).
	Limit int
}

// Recent returns matching records, newest first, plus the count ever
// journaled. Nil-safe (empty, 0).
func (j *Journal) Recent(f JournalFilter) ([]JournalRecord, int64) {
	if j == nil {
		return nil, 0
	}
	limit := f.Limit
	if limit <= 0 {
		limit = 100
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JournalRecord, 0, min(limit, j.count))
	for i := 1; i <= j.count && len(out) < limit; i++ {
		rec := j.recs[((j.next-i)%len(j.recs)+len(j.recs))%len(j.recs)]
		if f.Dataset != "" && rec.Left != f.Dataset && rec.Right != f.Dataset {
			continue
		}
		if f.Algo != "" && rec.Algo != f.Algo {
			continue
		}
		if rec.Stats.WallMS < f.MinWallMS {
			continue
		}
		out = append(out, rec)
	}
	return out, j.total
}

// Get returns the ring record with the given query ID. Nil-safe.
func (j *Journal) Get(id int64) (JournalRecord, bool) {
	if j == nil {
		return JournalRecord{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := 1; i <= j.count; i++ {
		rec := j.recs[((j.next-i)%len(j.recs)+len(j.recs))%len(j.recs)]
		if rec.ID == id {
			return rec, true
		}
	}
	return JournalRecord{}, false
}

// TraceFor returns the retained phase spans of the given query, if it is
// one of the slowest-K. Nil-safe.
func (j *Journal) TraceFor(id int64) ([]obs.Span, int64, bool) {
	if j == nil {
		return nil, 0, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, rt := range j.slowest {
		if rt.id == id {
			return rt.spans, rt.dropped, true
		}
	}
	return nil, 0, false
}

// RetainedTraces lists the query IDs whose traces are retained, slowest
// first. Nil-safe.
func (j *Journal) RetainedTraces() []int64 {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]int64, 0, len(j.slowest))
	for i := len(j.slowest) - 1; i >= 0; i-- {
		out = append(out, j.slowest[i].id)
	}
	return out
}

// Len reports the live record count, Total the records ever journaled.
// Nil-safe (0).
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.count
}

func (j *Journal) Total() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// ObservedJSON aggregates the journal's observations matching one plan —
// the "observed" half of explain's modeled-vs-observed report, and the
// shape a fitted cost model would regress on.
type ObservedJSON struct {
	// Matches counts computed (non-cached) observations of the same
	// datasets (name and version) under the same plan; CachedMatches the
	// cache hits for the same key.
	Matches       int `json:"matches"`
	CachedMatches int `json:"cached_matches,omitempty"`
	// Wall-clock and I/O aggregates over the computed matches.
	MeanWallMS       float64 `json:"mean_wall_ms,omitempty"`
	MinWallMS        float64 `json:"min_wall_ms,omitempty"`
	MaxWallMS        float64 `json:"max_wall_ms,omitempty"`
	MeanPages        float64 `json:"mean_pages,omitempty"`
	MeanLogicalReads float64 `json:"mean_logical_reads,omitempty"`
	MeanPairs        float64 `json:"mean_pairs,omitempty"`
	// LastID is the newest matching observation (GET /debug/queries/{id}
	// has its full record).
	LastID int64 `json:"last_id,omitempty"`
}

// Observed scans the ring for observations of the given datasets under
// the given plan. Nil-safe (zero value).
func (j *Journal) Observed(left string, leftVer int, right string, rightVer int, pl Plan) ObservedJSON {
	var o ObservedJSON
	if j == nil {
		return o
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := 1; i <= j.count; i++ {
		rec := j.recs[((j.next-i)%len(j.recs)+len(j.recs))%len(j.recs)]
		if rec.Left != left || rec.LeftVersion != leftVer ||
			rec.Right != right || rec.RightVersion != rightVer ||
			rec.Algo != pl.Algo || rec.Storage != pl.Storage || rec.Workers != pl.Workers {
			continue
		}
		if rec.Cached {
			o.CachedMatches++
			continue
		}
		if o.Matches == 0 || rec.Stats.WallMS < o.MinWallMS {
			o.MinWallMS = rec.Stats.WallMS
		}
		if rec.Stats.WallMS > o.MaxWallMS {
			o.MaxWallMS = rec.Stats.WallMS
		}
		o.MeanWallMS += rec.Stats.WallMS
		o.MeanPages += float64(rec.Stats.PageAccesses)
		o.MeanLogicalReads += float64(rec.Stats.LogicalReads)
		o.MeanPairs += float64(rec.Pairs)
		if rec.ID > o.LastID {
			o.LastID = rec.ID
		}
		o.Matches++
	}
	if o.Matches > 0 {
		n := float64(o.Matches)
		o.MeanWallMS /= n
		o.MeanPages /= n
		o.MeanLogicalReads /= n
		o.MeanPairs /= n
	}
	return o
}

// ReadJournal decodes a JSONL sink stream back into records — the replay
// path for planner training and the round-trip tests.
func ReadJournal(r io.Reader) ([]JournalRecord, error) {
	var out []JournalRecord
	dec := json.NewDecoder(r)
	for {
		var rec JournalRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, rec)
	}
}
