package service

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"cij/internal/core"
	"cij/internal/obs"
	"cij/internal/storage"
)

// cacheKey canonicalizes one join computation: dataset names qualified by
// their versions plus every parameter that affects the computed pair set
// or its cost profile. Storage is part of the key because the two modes,
// while pair-identical, have different cost profiles (a flat result
// reports zero page accesses) and the cached Stats must describe the run
// that produced them. TopK is deliberately absent — the cache stores the
// full pair list and responses slice a prefix — so one entry serves every
// TopK of the same join. Names are %q-quoted so no name can forge the
// field separators, and the ingest-time nameRe gate keeps them printable;
// invalidation never parses keys anyway (slots carry the names as
// fields), so the quoting is belt on top of structural braces.
func cacheKey(left, right *Dataset, algo string, workers int, storage string) string {
	return fmt.Sprintf("%q@%d|%q@%d|%s|w%d|s%s", left.Name, left.Version, right.Name, right.Version, algo, workers, storage)
}

// cachedResult is one memoized join: the full pair list and the cost of
// the run that produced it.
type cachedResult struct {
	Pairs []core.Pair
	Count int64
	// IO is the physical and logical I/O aggregate of the run, summed over
	// every buffer the request touched (both per-dataset views, or the
	// shared scratch environment of the materializing algorithms). Its
	// PageAccesses/DecodeHits projections feed the response stats, the
	// /stats counters and the /metrics families, so all three layers
	// reconcile by construction.
	IO  storage.Stats
	CPU time.Duration
	// Trace holds the run's phase spans when the computation was traced
	// (request opt-in or slow-query logging armed); nil otherwise. Cached
	// hits replay the original run's spans.
	Trace        []obs.Span
	TraceDropped int64
}

// resultCache is the versioned LRU of join results. Versioned keys make
// invalidation implicit (a re-ingested dataset changes every key it
// participates in), so the cache only needs classic LRU mechanics plus an
// eager sweep to release the memory of unreachable entries.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used
	byKey   map[string]*list.Element
	hits    int64
	misses  int64
	evicted int64
	// Exported mirrors of hits/misses: real monotone metric counters
	// (cij_cache_hits_total / cij_cache_misses_total) ticked at the
	// lookup, so windowed hit-ratios are computable from scrape deltas.
	// Nil until setCounters (they live on the service's registry).
	hitsC   *obs.Counter
	missesC *obs.Counter
}

// cacheSlot carries the operand names as structured fields next to the
// flat key. Invalidation matches on the fields, never by substring
// against the key — the old textual scan (`strings.Contains(key,
// "|"+name+"@")`) was only sound as long as every byte of every name
// was separator-free, a property enforced far away at ingest; matching
// fields removes the coupling entirely.
type cacheSlot struct {
	key         string
	left, right string
	res         *cachedResult
}

// newResultCache creates a cache holding at most capEntries results;
// capEntries <= 0 disables caching (every lookup misses, nothing stored).
func newResultCache(capEntries int) *resultCache {
	return &resultCache{
		cap:   capEntries,
		lru:   list.New(),
		byKey: make(map[string]*list.Element),
	}
}

// get returns the cached result for key, promoting it to most recently
// used. The returned result is shared: callers must treat Pairs as
// read-only (slicing a TopK prefix is fine).
func (c *resultCache) get(key string) (*cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		if c.hitsC != nil {
			c.hitsC.Inc()
		}
		return el.Value.(*cacheSlot).res, true
	}
	c.misses++
	if c.missesC != nil {
		c.missesC.Inc()
	}
	return nil, false
}

// setCounters installs the metric mirrors of the hit/miss counts; called
// once at service construction, before any lookup.
func (c *resultCache) setCounters(hits, misses *obs.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hitsC, c.missesC = hits, misses
}

// put stores res under key, evicting from the LRU tail on overflow.
// left/right are the operand dataset names, kept for field-exact
// invalidation.
func (c *resultCache) put(key, left, right string, res *cachedResult) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheSlot).res = res
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheSlot{key: key, left: left, right: right, res: res})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.byKey, back.Value.(*cacheSlot).key)
		c.evicted++
	}
}

// invalidateDataset removes every entry involving the named dataset (any
// version), comparing the slot's operand-name fields exactly — a dataset
// whose name happens to be a substring or prefix of another's can no
// longer sweep its neighbor's entries, and no name can dodge its own
// sweep. Correctness does not need the sweep at all — version-qualified
// keys are already unreachable after a re-ingest or mutation — but the
// pair lists can be large and there is no reason to keep feeding dead
// entries through LRU eviction.
func (c *resultCache) invalidateDataset(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		slot := el.Value.(*cacheSlot)
		if slot.left == name || slot.right == name {
			c.lru.Remove(el)
			delete(c.byKey, slot.key)
		}
		el = next
	}
}

// counters returns a snapshot of the hit/miss/eviction counters and the
// current entry count.
func (c *resultCache) counters() (hits, misses, evicted int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicted, c.lru.Len()
}
