package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/exp"
	"cij/internal/geom"
	"cij/internal/service"
)

// newTestServer spins a service (default config unless cfg given) with the
// two named pointsets ingested, behind httptest.
func newTestServer(t *testing.T, cfg service.Config, p, q []geom.Point) (*service.Service, *httptest.Server) {
	t.Helper()
	svc := service.New(cfg)
	if _, err := svc.Ingest("p", p); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest("q", q); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

// postJoin issues POST /join and decodes the response.
func postJoin(t *testing.T, ts *httptest.Server, req service.JoinRequest) service.JoinResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /join %+v: status %d", req, resp.StatusCode)
	}
	var jr service.JoinResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	return jr
}

// streamJoin issues GET /join/stream and parses the NDJSON stream into
// pair set, progress count and the summary line.
func streamJoin(t *testing.T, ts *httptest.Server, params string) (map[core.Pair]bool, int, service.StreamSummary) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/join/stream?" + params)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /join/stream?%s: status %d", params, resp.StatusCode)
	}
	pairs := make(map[core.Pair]bool)
	progress := 0
	var summary service.StreamSummary
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if sawSummary {
			t.Fatalf("line after summary: %s", sc.Text())
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch probe.Type {
		case "pair":
			var p service.StreamPair
			if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
				t.Fatal(err)
			}
			pairs[core.Pair{P: p.P, Q: p.Q}] = true
		case "progress":
			progress++
		case "trace":
			// Parsed by the dedicated trace tests; tolerated here so shared
			// callers keep working with &trace=1.
		case "summary":
			if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
				t.Fatal(err)
			}
			sawSummary = true
		default:
			t.Fatalf("unknown stream line type %q", probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary line")
	}
	return pairs, progress, summary
}

// serialReference computes the reference pair set with serial NM-CIJ on
// the single-disk experiment environment.
func serialReference(t *testing.T, p, q []geom.Point) map[core.Pair]bool {
	t.Helper()
	env := exp.BuildEnv(p, q, exp.DefaultPageSize, exp.DefaultBufferPct)
	res := core.NMCIJ(env.RP, env.RQ, exp.Domain, core.DefaultOptions())
	ref := make(map[core.Pair]bool, len(res.Pairs))
	for _, pr := range res.Pairs {
		ref[pr] = true
	}
	return ref
}

func pairSet(pairs []service.PairJSON) map[core.Pair]bool {
	m := make(map[core.Pair]bool, len(pairs))
	for _, p := range pairs {
		m[core.Pair{P: p.P, Q: p.Q}] = true
	}
	return m
}

func sameSet(t *testing.T, label string, got, want map[core.Pair]bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("%s: missing pair %+v", label, p)
		}
	}
}

// testDistributions is the uniform × clustered grid of the acceptance
// criteria at test-friendly cardinality.
func testDistributions() map[string][2][]geom.Point {
	return map[string][2][]geom.Point{
		"uniform":   {dataset.Uniform(400, 11), dataset.Uniform(400, 12)},
		"clustered": {dataset.Clustered(400, 16, 13), dataset.Clustered(400, 12, 14)},
	}
}

// TestJoinEquivalence is the acceptance criterion: pairs returned via
// POST /join and streamed via GET /join/stream are set-equal to serial
// core results for every algorithm × distribution cell. The streaming
// check runs with the cache disabled, so it exercises the live emission
// path; the buffered check also covers the parallel plan.
func TestJoinEquivalence(t *testing.T) {
	for dist, pq := range testDistributions() {
		p, q := pq[0], pq[1]
		want := serialReference(t, p, q)
		_, buffered := newTestServer(t, service.Config{}, p, q)
		_, streaming := newTestServer(t, service.Config{CacheEntries: -1}, p, q)
		for _, algo := range []string{"nm", "pm", "fm", "parallel", "grid"} {
			jr := postJoin(t, buffered, service.JoinRequest{Left: "p", Right: "q", Algo: algo, Workers: 2})
			if jr.Cached {
				t.Fatalf("%s/%s: first join reported cached", dist, algo)
			}
			sameSet(t, fmt.Sprintf("%s/%s POST /join", dist, algo), pairSet(jr.Pairs), want)
			if jr.Count != int64(len(want)) {
				t.Fatalf("%s/%s: count %d, want %d", dist, algo, jr.Count, len(want))
			}

			got, _, summary := streamJoin(t, streaming, "left=p&right=q&algo="+algo+"&workers=2")
			sameSet(t, fmt.Sprintf("%s/%s GET /join/stream", dist, algo), got, want)
			if summary.Count != int64(len(want)) {
				t.Fatalf("%s/%s stream summary: count %d, want %d", dist, algo, summary.Count, len(want))
			}
		}
	}
}

// TestStreamParallelProgress checks that the parallel plan streams live
// progress lines (the exported OnProgress hook end to end).
func TestStreamParallelProgress(t *testing.T) {
	p, q := dataset.Uniform(500, 21), dataset.Uniform(500, 22)
	_, ts := newTestServer(t, service.Config{CacheEntries: -1}, p, q)
	_, progress, _ := streamJoin(t, ts, "left=p&right=q&algo=parallel&workers=2")
	if progress == 0 {
		t.Fatal("parallel stream produced no progress lines")
	}
}

// TestStreamCachedReplay: a stream after a buffered join of the same plan
// replays the memoized pairs and marks the summary cached.
func TestStreamCachedReplay(t *testing.T) {
	p, q := dataset.Uniform(300, 31), dataset.Uniform(300, 32)
	_, ts := newTestServer(t, service.Config{}, p, q)
	jr := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"})
	got, _, summary := streamJoin(t, ts, "left=p&right=q&algo=nm")
	if !summary.Cached {
		t.Fatal("second identical join not served from cache")
	}
	sameSet(t, "cached replay", got, pairSet(jr.Pairs))
}

// TestCacheHitAndInvalidation is the acceptance criterion: a repeated
// identical join performs zero page accesses and reports a cache hit in
// /stats; ingesting a new dataset version invalidates the entry.
func TestCacheHitAndInvalidation(t *testing.T) {
	p, q := dataset.Uniform(300, 41), dataset.Uniform(300, 42)
	svc, ts := newTestServer(t, service.Config{}, p, q)

	// Paged explicitly: the acceptance assertion below is about page
	// accesses, which auto-selected flat storage makes structurally zero.
	first := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm", Storage: "paged"})
	if first.Cached {
		t.Fatal("first join reported cached")
	}
	statsAfterFirst := svc.StatsSnapshot()
	if statsAfterFirst.PageAccesses == 0 {
		t.Fatal("computed join reported zero page accesses")
	}

	second := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm", Storage: "paged"})
	if !second.Cached {
		t.Fatal("second identical join not cached")
	}
	if second.Stats.PageAccesses != 0 {
		t.Fatalf("cached join reported %d page accesses, want 0", second.Stats.PageAccesses)
	}
	stats := svc.StatsSnapshot()
	if stats.PageAccesses != statsAfterFirst.PageAccesses {
		t.Fatalf("cache hit performed I/O: total %d -> %d", statsAfterFirst.PageAccesses, stats.PageAccesses)
	}
	if stats.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", stats.CacheHits)
	}
	if stats.JoinsComputed != 1 {
		t.Fatalf("joins computed = %d, want 1", stats.JoinsComputed)
	}

	// Re-ingest q (same points, new version): the cached entry must not
	// serve the new version.
	if _, err := svc.Ingest("q", q); err != nil {
		t.Fatal(err)
	}
	third := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm", Storage: "paged"})
	if third.Cached {
		t.Fatal("join after re-ingest served from stale cache")
	}
	if third.RightVersion != 2 {
		t.Fatalf("right version = %d, want 2", third.RightVersion)
	}
	if got := svc.StatsSnapshot().JoinsComputed; got != 2 {
		t.Fatalf("joins computed after invalidation = %d, want 2", got)
	}
}

// TestStatsDecodeHits: a computed join over buffers large enough to keep
// pages resident records decoded-node cache hits in /stats, and a cache
// hit adds none (no execution, no decodes).
func TestStatsDecodeHits(t *testing.T) {
	p, q := dataset.Uniform(2000, 51), dataset.Uniform(2000, 52)
	// A generous buffer keeps both trees resident, so repeat node accesses
	// within the join are decode hits rather than re-parses.
	svc, ts := newTestServer(t, service.Config{BufferPct: 100}, p, q)

	postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"})
	hits := svc.StatsSnapshot().DecodeHits
	if hits == 0 {
		t.Fatal("computed join over resident trees recorded no decode hits")
	}
	postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"})
	if got := svc.StatsSnapshot().DecodeHits; got != hits {
		t.Fatalf("cached join changed decode hits: %d -> %d", hits, got)
	}
}

// TestTopK: the response caps pairs at topk while count and cache keep the
// full result.
func TestTopK(t *testing.T) {
	p, q := dataset.Uniform(300, 51), dataset.Uniform(300, 52)
	_, ts := newTestServer(t, service.Config{}, p, q)
	full := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"})
	capped := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm", TopK: 5})
	if !capped.Cached {
		t.Fatal("topk variant missed the cache (topk must not fragment keys)")
	}
	if len(capped.Pairs) != 5 {
		t.Fatalf("topk=5 returned %d pairs", len(capped.Pairs))
	}
	if capped.Count != full.Count {
		t.Fatalf("topk count %d, want full %d", capped.Count, full.Count)
	}

	got, _, _ := streamJoin(t, ts, "left=p&right=q&algo=nm&topk=5")
	if len(got) != 5 {
		t.Fatalf("stream topk=5 emitted %d pairs", len(got))
	}
}

// TestPlannerSelection checks the auto plan through the response: small
// near-uniform joins go to the in-memory grid backend, an explicit worker
// count goes parallel.
func TestPlannerSelection(t *testing.T) {
	p, q := dataset.Uniform(200, 61), dataset.Uniform(200, 62)
	_, ts := newTestServer(t, service.Config{}, p, q)
	if jr := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q"}); jr.Algo != "grid" {
		t.Fatalf("auto plan on small uniform join = %q, want grid", jr.Algo)
	}
	jr := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Workers: 2})
	if jr.Algo != "parallel" {
		t.Fatalf("auto plan with workers=2 = %q, want parallel", jr.Algo)
	}
	if jr.Workers < 1 || jr.Workers > 2 {
		t.Fatalf("planned workers = %d, want 1..2", jr.Workers)
	}
}

// TestIngestHTTP covers the generator and CSV ingest paths plus their
// error cases.
func TestIngestHTTP(t *testing.T) {
	svc := service.New(service.Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "text/csv", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp, body := post("/datasets/gen1?gen=uniform&n=500&seed=7", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generator ingest: status %d: %s", resp.StatusCode, body)
	}
	var info service.DatasetInfo
	json.Unmarshal(body, &info)
	if info.Points != 500 || info.Version != 1 {
		t.Fatalf("generator ingest info = %+v", info)
	}

	resp, _ = post("/datasets/csv1", "1,2\n3,4\n5,6\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("CSV ingest: status %d", resp.StatusCode)
	}

	for _, bad := range []struct{ path, body string }{
		{"/datasets/bad|name", "1,2\n"},          // invalid name
		{"/datasets/empty", ""},                  // no points
		{"/datasets/malformed", "1,2\nnope\n"},   // bad row
		{"/datasets/badgen?gen=uniform", ""},     // n missing
		{"/datasets/badkind?gen=hexagonal", ""},  // unknown generator
		{"/datasets/badn?gen=uniform&n=zap", ""}, // unparsable n
	} {
		if resp, _ := post(bad.path, bad.body); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s: status %d, want 400", bad.path, resp.StatusCode)
		}
	}

	// Unknown datasets in a join are the client's fault.
	body, _ = json.Marshal(service.JoinRequest{Left: "gen1", Right: "ghost"})
	resp2, err := http.Post(ts.URL+"/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("join on unknown dataset: status %d, want 400", resp2.StatusCode)
	}
}

// TestConcurrentJoins hammers one service from many goroutines across
// plans, datasets and both endpoints — the race-detector workout for the
// registry, cache, admission and per-request buffer forking.
func TestConcurrentJoins(t *testing.T) {
	p, q := dataset.Uniform(300, 71), dataset.Clustered(300, 8, 72)
	svc, ts := newTestServer(t, service.Config{MaxConcurrent: 2}, p, q)
	want := serialReference(t, p, q)

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				switch (g + i) % 3 {
				case 0:
					body, _ := json.Marshal(service.JoinRequest{Left: "p", Right: "q", Algo: "nm"})
					resp, err := http.Post(ts.URL+"/join", "application/json", bytes.NewReader(body))
					if err != nil {
						errCh <- err
						continue
					}
					var jr service.JoinResponse
					json.NewDecoder(resp.Body).Decode(&jr)
					resp.Body.Close()
					if int(jr.Count) != len(want) {
						errCh <- fmt.Errorf("goroutine %d: count %d, want %d", g, jr.Count, len(want))
					}
				case 1:
					resp, err := http.Get(ts.URL + "/join/stream?left=p&right=q&algo=parallel&workers=2")
					if err != nil {
						errCh <- err
						continue
					}
					resp.Body.Close() // early close: the stream must tolerate it
				case 2:
					if _, err := svc.Ingest("scratch", dataset.Uniform(100, int64(100+g))); err != nil {
						errCh <- err
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// The service must still answer coherently after the storm.
	jr := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"})
	sameSet(t, "post-storm join", pairSet(jr.Pairs), want)
	if svc.InFlight() != 0 {
		t.Fatalf("in-flight = %d after all requests done", svc.InFlight())
	}
}

// TestRegistryVersioning: versions move strictly forward per name and
// List is sorted.
func TestRegistryVersioning(t *testing.T) {
	svc := service.New(service.Config{})
	for i := 1; i <= 3; i++ {
		d, err := svc.Ingest("b", dataset.Uniform(50, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if d.Version != i {
			t.Fatalf("version after ingest %d = %d", i, d.Version)
		}
	}
	if _, err := svc.Ingest("a", dataset.Uniform(50, 9)); err != nil {
		t.Fatal(err)
	}
	list := svc.Registry().List()
	if len(list) != 2 || list[0].Name != "a" || list[1].Name != "b" {
		t.Fatalf("List() = %v", list)
	}
}

// TestSingleFlight: a burst of identical first-time queries executes the
// join once; followers share the leader's result and report cached.
func TestSingleFlight(t *testing.T) {
	p, q := dataset.Uniform(400, 81), dataset.Uniform(400, 82)
	svc, ts := newTestServer(t, service.Config{}, p, q)

	const burst = 6
	var wg sync.WaitGroup
	responses := make([]service.JoinResponse, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i] = postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Algo: "nm"})
		}(i)
	}
	wg.Wait()

	if got := svc.StatsSnapshot().JoinsComputed; got != 1 {
		t.Fatalf("burst of %d identical joins computed %d times, want 1", burst, got)
	}
	for i := 1; i < burst; i++ {
		if responses[i].Count != responses[0].Count {
			t.Fatalf("response %d count %d differs from leader's %d", i, responses[i].Count, responses[0].Count)
		}
	}
}

// TestExplicitWorkersOne: auto plan honors workers=1 (a client bounding
// its CPU share must not be upgraded to a full-machine pool).
func TestExplicitWorkersOne(t *testing.T) {
	p, q := dataset.Uniform(200, 91), dataset.Uniform(200, 92)
	_, ts := newTestServer(t, service.Config{}, p, q)
	jr := postJoin(t, ts, service.JoinRequest{Left: "p", Right: "q", Workers: 1})
	if jr.Algo != "parallel" || jr.Workers != 1 {
		t.Fatalf("workers=1 planned %s/w%d, want parallel/w1", jr.Algo, jr.Workers)
	}
}
