package voronoi

import (
	"cij/internal/geom"
	"cij/internal/rtree"
)

// TPVorStats reports the work done by one TP-VOR cell computation.
type TPVorStats struct {
	// Traversals is the number of separate best-first NN queries issued
	// (one per examined cell vertex) — each is a fresh root-to-leaf
	// traversal of the R-tree, which is exactly why TP-VOR is more
	// expensive than BF-VOR in Fig. 5.
	Traversals int
	// Refinements counts bisector clips applied.
	Refinements int
}

// TPVor computes the exact Voronoi cell of pi with the multiple-traversal
// algorithm of Zhang et al. [10] ("Location-based Spatial Queries",
// reproduced from the description in Section II-B of the CIJ paper):
//
// Starting from Vc = the space domain, a time-parameterized NN query is
// issued toward each vertex γ of Vc. If some point p' ≠ pi is strictly
// closer to γ than pi is, γ is not a true Voronoi vertex; Vc is refined by
// the bisector ⊥pi(pi, p') and the (changed) vertex set is re-examined.
// The cell is exact when every vertex's nearest site is pi itself. Each
// vertex query is an independent traversal of the R-tree — the defining
// inefficiency the BF-VOR experiment measures.
//
// maxIters caps the refinement loop defensively; 0 means no cap.
func TPVor(t *rtree.Tree, pi Site, domain geom.Rect, maxIters int) (geom.Polygon, TPVorStats) {
	cell := domain.Polygon()
	var stats TPVorStats

	verified := make(map[geom.Point]bool)
	for iter := 0; ; iter++ {
		if maxIters > 0 && iter >= maxIters {
			break
		}
		// Find an unverified vertex of the current cell.
		var gamma geom.Point
		found := false
		for _, v := range cell.V {
			if !verified[v] {
				gamma, found = v, true
				break
			}
		}
		if !found {
			break // all vertices verified: cell is exact
		}
		// Fresh NN traversal anchored at the vertex (the TPNN probe).
		stats.Traversals++
		nn := t.KNN(gamma, 1, func(e rtree.Entry) bool { return e.ID != pi.ID })
		if len(nn) == 0 {
			verified[gamma] = true
			continue
		}
		pj := nn[0].Pt
		if pj.Dist2(gamma) < pi.Pt.Dist2(gamma)-geom.Eps {
			// γ is closer to pj: refine and re-examine the new vertex set.
			refined := cell.ClipBisector(pi.Pt, pj)
			if refined.IsEmpty() {
				cell = refined
				break
			}
			if samePolygon(refined, cell) || cell.Area()-refined.Area() < 1e-9 {
				// The bisector grazes γ within clipping tolerance: no
				// geometric progress is possible, accept the vertex.
				verified[gamma] = true
				continue
			}
			stats.Refinements++
			cell = refined
		} else {
			verified[gamma] = true
		}
	}
	return cell, stats
}

// samePolygon reports whether two polygons have identical vertex lists.
func samePolygon(a, b geom.Polygon) bool {
	if len(a.V) != len(b.V) {
		return false
	}
	for i := range a.V {
		if a.V[i] != b.V[i] {
			return false
		}
	}
	return true
}
