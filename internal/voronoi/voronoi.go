// Package voronoi implements the Voronoi-cell computation machinery of the
// CIJ paper (Section III): the single-traversal best-first algorithm
// BF-VOR (Algorithm 1, the paper's side contribution), the batch variant
// for groups of nearby points (Algorithm 2), the multiple-traversal
// baseline TP-VOR it is compared against (Fig. 5), full-diagram builders
// ITER and BATCH (Fig. 6, Table II), and a brute-force reference used by
// the test suite.
//
// A Voronoi cell is represented as a convex polygon obtained by clipping
// the rectangular space domain U with bisector halfplanes (Eq. 2).
package voronoi

import (
	"container/heap"

	"cij/internal/geom"
	"cij/internal/rtree"
	"cij/internal/storage"
)

// Site is an indexed point: the dataset index doubles as the R-tree object
// ID, which is how the algorithms recognize the query point itself during
// traversals.
type Site struct {
	ID int64
	Pt geom.Point
}

// Cell is a computed Voronoi cell.
type Cell struct {
	Site Site
	Poly geom.Polygon
}

// canRefine reports whether a point at distance lower bound mindist(e, γ)
// could still refine a cell with vertex set Γc. It is the negation of the
// pruning condition of Lemmas 1 and 2: refinement is possible iff there
// EXISTS a vertex γ with mindist(e, γ) < dist(γ, pi).
func canRefine(vertices []geom.Point, pi geom.Point, dist2To func(geom.Point) float64) bool {
	for _, g := range vertices {
		if dist2To(g) < pi.Dist2(g) {
			return true
		}
	}
	return false
}

// cellHeapItem is a prioritized tree entry for the best-first traversals.
type cellHeapItem struct {
	key   float64 // squared mindist from the anchor
	entry rtree.Entry
	leaf  bool
}

type cellHeap []cellHeapItem

func (h cellHeap) Len() int            { return len(h) }
func (h cellHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h cellHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cellHeap) Push(x interface{}) { *h = append(*h, x.(cellHeapItem)) }
func (h *cellHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// BFVor computes the exact Voronoi cell V(pi, P) of site pi in the pointset
// indexed by t, with a single best-first traversal of the tree
// (Algorithm 1, "SingleVoronoi"). Entries are visited in ascending
// mindist from pi so that nearby points shrink the cell early; an entry is
// pruned as soon as Lemma 2 certifies that no point below it can refine
// the current cell.
func BFVor(t *rtree.Tree, pi Site, domain geom.Rect) geom.Polygon {
	cell := domain.Polygon()
	if t.Root() == storage.InvalidPage {
		return cell
	}
	var h cellHeap
	root := t.ReadNode(t.Root())
	pushNodeEntries(&h, root, pi.Pt)
	for h.Len() > 0 {
		top := heap.Pop(&h).(cellHeapItem)
		e := top.entry
		if top.leaf {
			if e.ID == pi.ID {
				continue
			}
			// Lemma 1: pj refines only if some vertex is closer to pj than
			// to pi.
			if canRefine(cell.V, pi.Pt, func(g geom.Point) float64 { return e.Pt.Dist2(g) }) {
				cell = cell.ClipBisector(pi.Pt, e.Pt)
			}
			continue
		}
		// Lemma 2 pruning for subtrees.
		if !canRefine(cell.V, pi.Pt, func(g geom.Point) float64 { return e.MBR.MinDist2(g) }) {
			continue
		}
		pushNodeEntries(&h, t.ReadNode(e.Child), pi.Pt)
	}
	return cell
}

func pushNodeEntries(h *cellHeap, n *rtree.Node, anchor geom.Point) {
	for i := range n.Entries {
		e := n.Entries[i]
		heap.Push(h, cellHeapItem{
			key:   e.MBR.MinDist2(anchor),
			entry: e,
			leaf:  n.Leaf,
		})
	}
}

// BatchVoronoi computes the exact Voronoi cells of all sites in group
// concurrently with a single traversal (Algorithm 2). The group is
// expected to be spatially compact (typically the contents of one leaf
// node); entries are visited in ascending mindist from the group centroid,
// and an entry survives pruning if it may refine ANY group member's cell.
func BatchVoronoi(t *rtree.Tree, group []Site, domain geom.Rect) []Cell {
	cells := make([]Cell, len(group))
	for i, s := range group {
		cells[i] = Cell{Site: s, Poly: domain.Polygon()}
	}
	if len(group) == 0 || t.Root() == storage.InvalidPage {
		return cells
	}
	pts := make([]geom.Point, len(group))
	for i, s := range group {
		pts[i] = s.Pt
	}
	anchor := geom.Centroid(pts)

	var h cellHeap
	pushNodeEntries(&h, t.ReadNode(t.Root()), anchor)
	for h.Len() > 0 {
		top := heap.Pop(&h).(cellHeapItem)
		e := top.entry
		if top.leaf {
			for i := range cells {
				c := &cells[i]
				if e.ID == c.Site.ID {
					continue
				}
				if canRefine(c.Poly.V, c.Site.Pt, func(g geom.Point) float64 { return e.Pt.Dist2(g) }) {
					c.Poly = c.Poly.ClipBisector(c.Site.Pt, e.Pt)
				}
			}
			continue
		}
		refinesAny := false
		for i := range cells {
			c := &cells[i]
			if canRefine(c.Poly.V, c.Site.Pt, func(g geom.Point) float64 { return e.MBR.MinDist2(g) }) {
				refinesAny = true
				break
			}
		}
		if !refinesAny {
			continue
		}
		pushNodeEntries(&h, t.ReadNode(e.Child), anchor)
	}
	return cells
}

// SitesOfLeaf converts the point entries of a leaf node into sites.
func SitesOfLeaf(leaf *rtree.Node) []Site {
	sites := make([]Site, 0, len(leaf.Entries))
	for _, e := range leaf.Entries {
		sites = append(sites, Site{ID: e.ID, Pt: e.Pt})
	}
	return sites
}
