// Package voronoi implements the Voronoi-cell computation machinery of the
// CIJ paper (Section III): the single-traversal best-first algorithm
// BF-VOR (Algorithm 1, the paper's side contribution), the batch variant
// for groups of nearby points (Algorithm 2), the multiple-traversal
// baseline TP-VOR it is compared against (Fig. 5), full-diagram builders
// ITER and BATCH (Fig. 6, Table II), and a brute-force reference used by
// the test suite.
//
// A Voronoi cell is represented as a convex polygon obtained by clipping
// the rectangular space domain U with bisector halfplanes (Eq. 2).
//
// The traversal algorithms come in two forms: allocation-free methods on a
// reusable Workspace (the hot path — cell polygons alias the workspace and
// are invalidated by its next use), and package-level wrappers (BFVor,
// BatchVoronoi) that return independently owned cells at the cost of one
// allocation per cell.
package voronoi

import (
	"math"

	"cij/internal/geom"
	"cij/internal/pq"
	"cij/internal/rtree"
	"cij/internal/storage"
)

// Site is an indexed point: the dataset index doubles as the R-tree object
// ID, which is how the algorithms recognize the query point itself during
// traversals.
type Site struct {
	ID int64
	Pt geom.Point
}

// Cell is a computed Voronoi cell.
type Cell struct {
	Site Site
	Poly geom.Polygon
}

// CanRefinePoint reports whether point pj could still refine a cell of pi
// with vertex set vertices and squared circumradius rad2 around pi. It is
// the negation of the pruning condition of Lemma 1 — refinement is
// possible iff there EXISTS a vertex γ with dist(pj, γ) < dist(γ, pi) —
// behind an O(1) radius prefilter: by the triangle inequality,
// dist(pj, γ) ≥ dist(pi, pj) − dist(pi, γ), so when dist(pi, pj) ≥ 2·R
// (with R = max dist(pi, γ)) no vertex can be strictly closer to pj and
// the per-vertex scan is skipped entirely.
//
// The predicate is exported because it is the correctness foundation of
// every cell computation in this module: the R-tree traversals here prune
// with it, and the uniform-grid backend (internal/grid) applies the same
// test to grid tiles and their points, so both architectures skip exactly
// the same class of non-refining sites.
func CanRefinePoint(vertices []geom.Point, pi, pj geom.Point, rad2 float64) bool {
	if pi.Dist2(pj) >= 4*rad2 {
		return false
	}
	// dist²(pj,γ) < dist²(pi,γ) unrolls to 2(pj−pi)·γ > |pj|² − |pi|² —
	// one dot product per vertex instead of two squared distances. This is
	// the bisector's own sidedness function, so a sub-tolerance rounding
	// difference against the distance form cannot change what the clipper
	// does with the answer: a vertex this close to the bisector is a no-op
	// clip either way.
	nx, ny := 2*(pj.X-pi.X), 2*(pj.Y-pi.Y)
	c := pj.X*pj.X + pj.Y*pj.Y - pi.X*pi.X - pi.Y*pi.Y
	for _, g := range vertices {
		if nx*g.X+ny*g.Y > c {
			return true
		}
	}
	return false
}

// CanRefineMBR is the rectangle form of the test (Lemma 2): a point inside
// rectangle r — an R-tree entry's MBR, or a grid tile — could refine the
// cell iff some vertex γ has mindist(r, γ) < dist(γ, pi). The same
// triangle-inequality prefilter applies with mindist(r, pi) in place of
// dist(pi, pj).
func CanRefineMBR(vertices []geom.Point, pi geom.Point, r geom.Rect, rad2 float64) bool {
	if r.MinDist2(pi) >= 4*rad2 {
		return false
	}
	for _, g := range vertices {
		if r.MinDist2(g) < pi.Dist2(g) {
			return true
		}
	}
	return false
}

// Workspace holds the reusable state of the best-first cell computations:
// the typed priority queue driving the traversal, per-cell clipping
// buffers for the refinements, and the per-cell circumradii that power the
// O(1) refinement prune (see CanRefinePoint). The zero value is ready for
// use. Reusing one workspace across calls (one per pipeline, one per
// worker) makes the traversals allocation-free after the first few
// batches.
//
// The cell polygons produced by the workspace methods alias its clipping
// buffers: they are invalidated by the next call on the same workspace and
// must be Cloned (or copied into caller-owned storage) to be retained.
// A Workspace is not safe for concurrent use.
type Workspace struct {
	q       pq.Queue
	clips   []geom.Clipper // one per group member, reused across calls
	rad2    []float64      // per-cell squared circumradius around its site
	pts     []geom.Point   // centroid scratch
	anchorD []float64      // per-cell distance anchor→site, fixed per batch
	thresh  []float64      // per-cell retirement key, see BatchVoronoi
	active  []int          // cell indexes not yet retired
}

// ensureClips grows the per-cell clipper pool to at least n entries.
func (ws *Workspace) ensureClips(n int) {
	for len(ws.clips) < n {
		ws.clips = append(ws.clips, geom.Clipper{})
	}
}

// BFVor computes the exact Voronoi cell V(pi, P) of site pi in the
// pointset indexed by t, with a single best-first traversal of the tree
// (Algorithm 1, "SingleVoronoi"). Entries are visited in ascending mindist
// from pi so that nearby points shrink the cell early; an entry is pruned
// as soon as Lemma 2 certifies that no point below it can refine the
// current cell. The returned polygon aliases the workspace.
func (ws *Workspace) BFVor(t *rtree.Tree, pi Site, domain geom.Rect) geom.Polygon {
	ws.ensureClips(1)
	cl := &ws.clips[0]
	cell := cl.Seed(domain)
	if t.Root() == storage.InvalidPage {
		return cell
	}
	rad2 := geom.MaxDist2(cell.V, pi.Pt)
	q := &ws.q
	q.Reset()
	q.PushNode(t.ReadNode(t.Root()), pi.Pt)
	for q.Len() > 0 {
		e := q.Pop()
		// Entries arrive in ascending mindist from pi; once the next key
		// reaches 2·radius, Lemma 1/2's O(1) prefilter rejects this entry
		// and every remaining one, so the tail of the queue is drained
		// wholesale. No entry that could have refined — and no child read —
		// is skipped: pruned internal entries were never expanded anyway.
		if e.Key >= 4*rad2 {
			q.Reset()
			break
		}
		if e.Leaf {
			if e.Ref == pi.ID {
				continue
			}
			// Lemma 1: pj refines only if some vertex is closer to pj than
			// to pi.
			pt := e.Pt()
			// CanRefinePoint's vertex scan is the clip's own prescan, so a
			// pass goes straight to the copying clip (a within-tolerance
			// pass re-emits the identical ring and recomputes the identical
			// radius — bit-equal either way).
			if CanRefinePoint(cell.V, pi.Pt, pt, rad2) {
				cell = cl.Clip(cell, geom.Bisector(pi.Pt, pt))
				rad2 = geom.MaxDist2(cell.V, pi.Pt)
			}
			continue
		}
		// Lemma 2 pruning for subtrees.
		if !CanRefineMBR(cell.V, pi.Pt, e.MBR, rad2) {
			continue
		}
		q.PushNode(t.ReadNode(e.Child()), pi.Pt)
	}
	return cell
}

// BFVor is the owning-result form of Workspace.BFVor for callers outside
// the hot path: the returned polygon is independent of any scratch.
func BFVor(t *rtree.Tree, pi Site, domain geom.Rect) geom.Polygon {
	var ws Workspace
	return ws.BFVor(t, pi, domain).Clone()
}

// BatchVoronoi computes the exact Voronoi cells of all sites in group
// concurrently with a single traversal (Algorithm 2), appending them to
// dst (which may be nil) and returning it. The group is expected to be
// spatially compact (typically the contents of one leaf node); entries are
// visited in ascending mindist from the group centroid, and an entry
// survives pruning if it may refine ANY group member's cell. The cell
// polygons alias the workspace.
func (ws *Workspace) BatchVoronoi(t *rtree.Tree, group []Site, domain geom.Rect, dst []Cell) []Cell {
	ws.ensureClips(len(group))
	for i, s := range group {
		dst = append(dst, Cell{Site: s, Poly: ws.clips[i].Seed(domain)})
	}
	if len(group) == 0 || t.Root() == storage.InvalidPage {
		return dst
	}
	cells := dst[len(dst)-len(group):]
	ws.pts = ws.pts[:0]
	ws.rad2 = ws.rad2[:0]
	for i, s := range group {
		ws.pts = append(ws.pts, s.Pt)
		ws.rad2 = append(ws.rad2, geom.MaxDist2(cells[i].Poly.V, s.Pt))
	}
	anchor := geom.Centroid(ws.pts)
	// Cell retirement. The queue pops entries in ascending mindist from
	// the anchor, and an entry at key k can only refine cell i if
	// k < thresh_i = (dist(anchor, site_i) + 2·rad_i)²: by the triangle
	// inequality, every point of the entry is at least
	// √k − dist(anchor, site_i) ≥ 2·rad_i from site_i, which is exactly
	// the regime Lemma 1/2's O(1) prefilter rejects. Keys only grow and
	// radii only shrink, so once k reaches thresh_i the cell is FINISHED —
	// no later entry can touch it — and it leaves the active list for
	// good. The scan loops then run over the shrinking active set, and an
	// empty set drains the queue outright. Retirement skips only
	// provably-rejected tests: cells, reads and clip sequences are
	// bit-identical to the full scans.
	ws.anchorD = ws.anchorD[:0]
	ws.thresh = ws.thresh[:0]
	ws.active = ws.active[:0]
	for i, s := range group {
		ad := anchor.Dist(s.Pt)
		ws.anchorD = append(ws.anchorD, ad)
		d := ad + 2*math.Sqrt(ws.rad2[i])
		ws.thresh = append(ws.thresh, d*d)
		ws.active = append(ws.active, i)
	}
	sinceRetire := 0

	q := &ws.q
	q.Reset()
	q.PushNode(t.ReadNode(t.Root()), anchor)
	for q.Len() > 0 {
		e := q.Pop()
		// Retire cells whose threshold the current key has reached, every
		// few pops (lingering cells are harmless: their Lemma 1/2
		// prefilter rejects the same entries one comparison later).
		// Swap-removal is fine: each cell clips through its own clipper,
		// so cross-cell scan order is immaterial.
		if sinceRetire++; sinceRetire >= 8 {
			sinceRetire = 0
			for k := 0; k < len(ws.active); {
				if e.Key >= ws.thresh[ws.active[k]] {
					ws.active[k] = ws.active[len(ws.active)-1]
					ws.active = ws.active[:len(ws.active)-1]
				} else {
					k++
				}
			}
			if len(ws.active) == 0 {
				q.Reset()
				break
			}
		}
		if e.Leaf {
			pt := e.Pt()
			for _, i := range ws.active {
				// Same bound as retirement, per entry: a key past the cell's
				// threshold cannot pass the Lemma 1 prefilter.
				if e.Key >= ws.thresh[i] {
					continue
				}
				c := &cells[i]
				if e.Ref == c.Site.ID {
					continue
				}
				if CanRefinePoint(c.Poly.V, c.Site.Pt, pt, ws.rad2[i]) {
					c.Poly = ws.clips[i].Clip(c.Poly, geom.Bisector(c.Site.Pt, pt))
					ws.rad2[i] = geom.MaxDist2(c.Poly.V, c.Site.Pt)
					d := ws.anchorD[i] + 2*math.Sqrt(ws.rad2[i])
					ws.thresh[i] = d * d
				}
			}
			continue
		}
		refinesAny := false
		for _, i := range ws.active {
			if e.Key >= ws.thresh[i] {
				continue
			}
			if CanRefineMBR(cells[i].Poly.V, cells[i].Site.Pt, e.MBR, ws.rad2[i]) {
				refinesAny = true
				break
			}
		}
		if !refinesAny {
			continue
		}
		q.PushNode(t.ReadNode(e.Child()), anchor)
	}
	return dst
}

// BatchVoronoi is the owning-result form of Workspace.BatchVoronoi: the
// returned cells are independent of any scratch.
func BatchVoronoi(t *rtree.Tree, group []Site, domain geom.Rect) []Cell {
	var ws Workspace
	cells := ws.BatchVoronoi(t, group, domain, make([]Cell, 0, len(group)))
	for i := range cells {
		cells[i].Poly = cells[i].Poly.Clone()
	}
	return cells
}

// AppendSites appends the point entries of a leaf node to dst as sites,
// for callers that reuse one sites buffer across leaves.
func AppendSites(dst []Site, leaf *rtree.Node) []Site {
	for _, e := range leaf.Entries {
		dst = append(dst, Site{ID: e.ID, Pt: e.Pt})
	}
	return dst
}

// SitesOfLeaf converts the point entries of a leaf node into sites.
func SitesOfLeaf(leaf *rtree.Node) []Site {
	return AppendSites(make([]Site, 0, len(leaf.Entries)), leaf)
}
