package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"cij/internal/geom"
	"cij/internal/rtree"
	"cij/internal/storage"
)

// Second-round tests: structural Voronoi properties and algorithm
// statistics.

func TestCellContainsItsSiteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	pts := randPoints(rng, 500)
	tr := buildTree(t, pts)
	for trial := 0; trial < 50; trial++ {
		i := rng.Intn(len(pts))
		cell := BFVor(tr, Site{ID: int64(i), Pt: pts[i]}, testDomain)
		if !cell.Contains(pts[i]) {
			t.Fatalf("cell of site %d does not contain the site", i)
		}
		if cell.IsEmpty() {
			t.Fatalf("cell of site %d is empty", i)
		}
	}
}

func TestNeighborCellInteriorsDisjoint(t *testing.T) {
	// Sampled interior points of one cell must not be strictly inside
	// another cell.
	rng := rand.New(rand.NewSource(121))
	pts := randPoints(rng, 150)
	tr := buildTree(t, pts)
	cells := make([]geom.Polygon, len(pts))
	ComputeDiagramBatch(tr, testDomain, func(c Cell) { cells[c.Site.ID] = c.Poly })
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(len(pts))
		// Sample a point strictly inside cell i (mix of centroid and site).
		alpha := rng.Float64() * 0.8
		s := cells[i].Centroid().Scale(alpha).Add(pts[i].Scale(1 - alpha))
		owner := -1
		owners := 0
		for j := range cells {
			if cells[j].Contains(s) {
				owners++
				owner = j
			}
		}
		if owners > 2 {
			t.Fatalf("sample %v inside %d cells", s, owners)
		}
		if owners == 1 && owner != i {
			// Must at least be owned by its nearest site.
			d1 := pts[i].Dist(s)
			d2 := pts[owner].Dist(s)
			if d2 > d1+1e-6 {
				t.Fatalf("sample %v owned by farther site", s)
			}
		}
	}
}

func TestTPVorStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	pts := randPoints(rng, 300)
	tr := buildTree(t, pts)
	for trial := 0; trial < 10; trial++ {
		i := rng.Intn(len(pts))
		_, stats := TPVor(tr, Site{ID: int64(i), Pt: pts[i]}, testDomain, 500)
		// Every vertex of the final cell was verified by a traversal, so
		// traversals ≥ final vertex count; refinements < traversals.
		if stats.Traversals < 3 {
			t.Fatalf("suspiciously few traversals: %d", stats.Traversals)
		}
		if stats.Refinements >= stats.Traversals {
			t.Fatalf("refinements %d should be < traversals %d", stats.Refinements, stats.Traversals)
		}
	}
}

func TestTPVorIterationCap(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	pts := randPoints(rng, 200)
	tr := buildTree(t, pts)
	// With a 1-iteration cap the cell is a (possibly refined once)
	// superset of the true cell.
	cell, stats := TPVor(tr, Site{ID: 0, Pt: pts[0]}, testDomain, 1)
	if stats.Traversals > 1 {
		t.Fatalf("cap ignored: %d traversals", stats.Traversals)
	}
	true1 := BFVor(tr, Site{ID: 0, Pt: pts[0]}, testDomain)
	if cell.Area() < true1.Area()-1e-6 {
		t.Fatal("capped TP-VOR produced a smaller cell than the exact one")
	}
}

func TestBatchVoronoiWholeDatasetAsGroup(t *testing.T) {
	// Degenerate batch: the group is the entire (small) dataset.
	rng := rand.New(rand.NewSource(124))
	pts := randPoints(rng, 60)
	tr := buildTree(t, pts)
	sites := MakeSites(pts)
	cells := BatchVoronoi(tr, sites, testDomain)
	var total float64
	for i, c := range cells {
		want := BruteCell(sites, i, testDomain)
		if !polysEquivalent(c.Poly, want) {
			t.Fatalf("site %d mismatch", i)
		}
		total += c.Poly.Area()
	}
	if math.Abs(total-testDomain.Area()) > 1e-3*testDomain.Area() {
		t.Errorf("areas sum to %v", total)
	}
}

func TestDuplicatePointsShareCell(t *testing.T) {
	// Coincident sites: each gets the full cell of the shared location
	// (bisector refinement skips zero-length bisectors).
	pts := []geom.Point{
		geom.Pt(3000, 3000), geom.Pt(3000, 3000), // duplicates
		geom.Pt(7000, 7000),
	}
	tr := buildTree(t, pts)
	c0 := BFVor(tr, Site{ID: 0, Pt: pts[0]}, testDomain)
	c1 := BFVor(tr, Site{ID: 1, Pt: pts[1]}, testDomain)
	if !polysEquivalent(c0, c1) {
		t.Fatal("duplicate sites should share one cell")
	}
	if !c0.Contains(geom.Pt(1000, 1000)) {
		t.Error("duplicate-site cell should cover the lower-left region")
	}
}

func TestBoundarySitesClippedCells(t *testing.T) {
	// Sites on the domain boundary: cells clipped to the domain, still a
	// partition.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10000, 0), geom.Pt(0, 10000), geom.Pt(10000, 10000),
		geom.Pt(5000, 5000),
	}
	tr := buildTree(t, pts)
	var total float64
	for i := range pts {
		cell := BFVor(tr, Site{ID: int64(i), Pt: pts[i]}, testDomain)
		total += cell.Area()
		for _, v := range cell.V {
			if !testDomain.Contains(v) {
				t.Fatalf("vertex %v outside domain", v)
			}
		}
	}
	if math.Abs(total-testDomain.Area()) > 1 {
		t.Errorf("corner-site cells sum to %v", total)
	}
}

func TestBFVorIOStableAcrossQueries(t *testing.T) {
	// Fig. 5's stability claim, at the statistics level: the max/min node
	// access ratio over many queries stays small for BF-VOR.
	rng := rand.New(rand.NewSource(125))
	pts := randPoints(rng, 5000)
	buf := storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), 0)
	tr := rtree.BulkLoadPoints(buf, pts, testDomain, 1)
	minN, maxN := int64(1<<60), int64(0)
	for trial := 0; trial < 40; trial++ {
		i := rng.Intn(len(pts))
		buf.ResetStats()
		BFVor(tr, Site{ID: int64(i), Pt: pts[i]}, testDomain)
		n := buf.Stats().LogicalReads
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
	}
	if maxN > 15*minN {
		t.Errorf("BF-VOR node accesses unstable: %d..%d", minN, maxN)
	}
}

func TestDiagramEmitsEachSiteOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(126))
	pts := randPoints(rng, 777) // deliberately not a multiple of leaf size
	tr := buildTree(t, pts)
	seen := map[int64]int{}
	ComputeDiagramIter(tr, testDomain, func(c Cell) { seen[c.Site.ID]++ })
	if len(seen) != len(pts) {
		t.Fatalf("ITER emitted %d cells", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("site %d emitted %d times", id, n)
		}
	}
}
