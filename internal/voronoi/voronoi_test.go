package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"cij/internal/geom"
	"cij/internal/rtree"
	"cij/internal/storage"
)

var testDomain = geom.NewRect(0, 0, 10000, 10000)

func buildTree(t testing.TB, pts []geom.Point) *rtree.Tree {
	t.Helper()
	buf := storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), 1<<20)
	return rtree.BulkLoadPoints(buf, pts, testDomain, 1)
}

func randPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
	}
	return pts
}

// polysEquivalent compares two convex polygons by symmetric-difference
// area, robust to vertex ordering/representation differences.
func polysEquivalent(a, b geom.Polygon) bool {
	if a.IsEmpty() != b.IsEmpty() {
		return false
	}
	if a.IsEmpty() {
		return true
	}
	inter := a.Intersection(b).Area()
	symDiff := (a.Area() - inter) + (b.Area() - inter)
	scale := math.Max(a.Area(), b.Area())
	if scale < 1 {
		scale = 1
	}
	return symDiff <= 1e-6*scale+1e-9
}

func TestBFVorGridCell(t *testing.T) {
	// 3x3 grid: the center point's cell is a square.
	var pts []geom.Point
	for _, x := range []float64{2000, 5000, 8000} {
		for _, y := range []float64{2000, 5000, 8000} {
			pts = append(pts, geom.Pt(x, y))
		}
	}
	tr := buildTree(t, pts)
	centerID := int64(4) // (5000,5000) given the loop order
	if !pts[centerID].Eq(geom.Pt(5000, 5000)) {
		t.Fatalf("unexpected center index")
	}
	cell := BFVor(tr, Site{ID: centerID, Pt: pts[centerID]}, testDomain)
	if math.Abs(cell.Area()-3000*3000) > 1 {
		t.Errorf("center cell area = %v, want 9e6", cell.Area())
	}
	if !cell.Contains(geom.Pt(5000, 5000)) {
		t.Error("cell must contain its site")
	}
}

func TestBFVorMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	pts := randPoints(rng, 600)
	sites := MakeSites(pts)
	tr := buildTree(t, pts)
	for trial := 0; trial < 60; trial++ {
		i := rng.Intn(len(pts))
		got := BFVor(tr, sites[i], testDomain)
		want := BruteCell(sites, i, testDomain)
		if !polysEquivalent(got, want) {
			t.Fatalf("site %d: BF-VOR cell differs from brute force\ngot  %v (area %v)\nwant %v (area %v)",
				i, got, got.Area(), want, want.Area())
		}
	}
}

func TestBFVorSingleTraversal(t *testing.T) {
	// Each node must be accessed at most once per BF-VOR call: with a
	// cold, unbounded buffer, logical reads == distinct pages touched.
	rng := rand.New(rand.NewSource(101))
	pts := randPoints(rng, 2000)
	buf := storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), 1<<20)
	tr := rtree.BulkLoadPoints(buf, pts, testDomain, 1)
	for trial := 0; trial < 10; trial++ {
		i := rng.Intn(len(pts))
		buf.DropAll()
		buf.ResetStats()
		BFVor(tr, Site{ID: int64(i), Pt: pts[i]}, testDomain)
		s := buf.Stats()
		if s.LogicalReads != s.PageReads {
			t.Fatalf("node re-accessed: logical=%d physical=%d", s.LogicalReads, s.PageReads)
		}
	}
}

func TestTPVorMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	pts := randPoints(rng, 400)
	sites := MakeSites(pts)
	tr := buildTree(t, pts)
	for trial := 0; trial < 40; trial++ {
		i := rng.Intn(len(pts))
		got, stats := TPVor(tr, sites[i], testDomain, 500)
		want := BruteCell(sites, i, testDomain)
		if !polysEquivalent(got, want) {
			t.Fatalf("site %d: TP-VOR cell differs from brute force (area %v vs %v)",
				i, got.Area(), want.Area())
		}
		if stats.Traversals == 0 {
			t.Fatal("TP-VOR should issue at least one traversal")
		}
	}
}

func TestTPVorCostsMoreThanBFVor(t *testing.T) {
	// The Fig. 5 claim: TP-VOR incurs more node accesses than BF-VOR.
	// Check the aggregate over many queries.
	rng := rand.New(rand.NewSource(103))
	pts := randPoints(rng, 3000)
	buf := storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), 1<<20)
	tr := rtree.BulkLoadPoints(buf, pts, testDomain, 1)
	var bfTotal, tpTotal int64
	for trial := 0; trial < 30; trial++ {
		i := rng.Intn(len(pts))
		site := Site{ID: int64(i), Pt: pts[i]}
		buf.ResetStats()
		BFVor(tr, site, testDomain)
		bfTotal += buf.Stats().LogicalReads
		buf.ResetStats()
		TPVor(tr, site, testDomain, 500)
		tpTotal += buf.Stats().LogicalReads
	}
	if tpTotal <= bfTotal {
		t.Errorf("expected TP-VOR (%d) to cost more node accesses than BF-VOR (%d)", tpTotal, bfTotal)
	}
}

func TestBatchVoronoiMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	pts := randPoints(rng, 800)
	tr := buildTree(t, pts)
	// Batch over a spatially compact group: take points near a random
	// anchor.
	anchor := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
	nn := tr.KNN(anchor, 25, nil)
	group := make([]Site, len(nn))
	for i, e := range nn {
		group[i] = Site{ID: e.ID, Pt: e.Pt}
	}
	batch := BatchVoronoi(tr, group, testDomain)
	for i, c := range batch {
		single := BFVor(tr, group[i], testDomain)
		if !polysEquivalent(c.Poly, single) {
			t.Fatalf("group member %d: batch cell differs from single cell", i)
		}
	}
}

func TestBatchVoronoiEmptyGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	tr := buildTree(t, randPoints(rng, 100))
	if got := BatchVoronoi(tr, nil, testDomain); len(got) != 0 {
		t.Fatalf("empty group should give no cells, got %d", len(got))
	}
}

func TestSingleSiteOwnsWholeDomain(t *testing.T) {
	pts := []geom.Point{geom.Pt(1234, 5678)}
	tr := buildTree(t, pts)
	cell := BFVor(tr, Site{ID: 0, Pt: pts[0]}, testDomain)
	if math.Abs(cell.Area()-testDomain.Area()) > 1e-3 {
		t.Errorf("single site should own the whole domain, area = %v", cell.Area())
	}
	cell2, _ := TPVor(tr, Site{ID: 0, Pt: pts[0]}, testDomain, 100)
	if math.Abs(cell2.Area()-testDomain.Area()) > 1e-3 {
		t.Errorf("TP-VOR single site area = %v", cell2.Area())
	}
}

func TestTwoSitesSplitDomain(t *testing.T) {
	pts := []geom.Point{geom.Pt(2500, 5000), geom.Pt(7500, 5000)}
	tr := buildTree(t, pts)
	left := BFVor(tr, Site{ID: 0, Pt: pts[0]}, testDomain)
	right := BFVor(tr, Site{ID: 1, Pt: pts[1]}, testDomain)
	if math.Abs(left.Area()-5e7) > 1 || math.Abs(right.Area()-5e7) > 1 {
		t.Errorf("two-site split areas: %v, %v", left.Area(), right.Area())
	}
	if left.Contains(geom.Pt(7000, 5000)) {
		t.Error("left cell should not contain right half")
	}
}

func TestDiagramTilesDomain(t *testing.T) {
	// The cells of a Voronoi diagram partition the domain: areas sum to
	// |U| and each random location lies in the cell of its nearest site.
	rng := rand.New(rand.NewSource(106))
	pts := randPoints(rng, 300)
	sites := MakeSites(pts)
	tr := buildTree(t, pts)

	var total float64
	cells := make([]Cell, 0, len(pts))
	ComputeDiagramBatch(tr, testDomain, func(c Cell) {
		cells = append(cells, c)
		total += c.Poly.Area()
	})
	if len(cells) != len(pts) {
		t.Fatalf("diagram has %d cells, want %d", len(cells), len(pts))
	}
	if math.Abs(total-testDomain.Area()) > 1e-3*testDomain.Area() {
		t.Errorf("cell areas sum to %v, want %v", total, testDomain.Area())
	}
	byID := make(map[int64]geom.Polygon, len(cells))
	for _, c := range cells {
		byID[c.Site.ID] = c.Poly
	}
	for trial := 0; trial < 300; trial++ {
		loc := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		// Nearest site by brute force.
		best, bestD := int64(-1), math.Inf(1)
		for _, s := range sites {
			if d := s.Pt.Dist2(loc); d < bestD {
				best, bestD = s.ID, d
			}
		}
		if !byID[best].Contains(loc) {
			// Tolerate locations essentially on a boundary.
			second := math.Inf(1)
			for _, s := range sites {
				if s.ID == best {
					continue
				}
				if d := s.Pt.Dist2(loc); d < second {
					second = d
				}
			}
			if math.Sqrt(second)-math.Sqrt(bestD) > 1e-6 {
				t.Fatalf("location %v not in cell of its NN %d", loc, best)
			}
		}
	}
}

func TestDiagramIterEqualsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	pts := randPoints(rng, 400)
	tr := buildTree(t, pts)
	iterCells := map[int64]geom.Polygon{}
	ComputeDiagramIter(tr, testDomain, func(c Cell) { iterCells[c.Site.ID] = c.Poly })
	count := 0
	ComputeDiagramBatch(tr, testDomain, func(c Cell) {
		count++
		if !polysEquivalent(c.Poly, iterCells[c.Site.ID]) {
			t.Fatalf("site %d: ITER and BATCH disagree", c.Site.ID)
		}
	})
	if count != len(pts) {
		t.Fatalf("BATCH produced %d cells", count)
	}
}

func TestBatchCheaperThanIter(t *testing.T) {
	// Fig. 6 CPU claim is about computation; the I/O claim is that both
	// stay near LB. Check at least that BATCH does not do more node
	// accesses than ITER.
	rng := rand.New(rand.NewSource(108))
	pts := randPoints(rng, 3000)
	buf := storage.NewBuffer(storage.NewDisk(storage.DefaultPageSize), 1<<20)
	tr := rtree.BulkLoadPoints(buf, pts, testDomain, 1)

	buf.ResetStats()
	ComputeDiagramIter(tr, testDomain, func(Cell) {})
	iterReads := buf.Stats().LogicalReads

	buf.ResetStats()
	ComputeDiagramBatch(tr, testDomain, func(Cell) {})
	batchReads := buf.Stats().LogicalReads

	if batchReads > iterReads {
		t.Errorf("BATCH node accesses (%d) exceed ITER (%d)", batchReads, iterReads)
	}
}

func TestBruteDiagramDegenerate(t *testing.T) {
	// Collinear points: cells are vertical slabs.
	pts := []geom.Point{geom.Pt(1000, 5000), geom.Pt(5000, 5000), geom.Pt(9000, 5000)}
	cells := BruteDiagram(MakeSites(pts), testDomain)
	wantAreas := []float64{3000 * 10000, 4000 * 10000, 3000 * 10000}
	for i, c := range cells {
		if math.Abs(c.Poly.Area()-wantAreas[i]) > 1 {
			t.Errorf("slab %d area = %v, want %v", i, c.Poly.Area(), wantAreas[i])
		}
	}
}

func TestBFVorDegenerateGrid(t *testing.T) {
	// Regular grid has cocircular point quadruples — degenerate Voronoi
	// vertices. The tree algorithms must still match brute force.
	var pts []geom.Point
	for x := 0; x < 6; x++ {
		for y := 0; y < 6; y++ {
			pts = append(pts, geom.Pt(float64(x)*1500+1000, float64(y)*1500+1000))
		}
	}
	sites := MakeSites(pts)
	tr := buildTree(t, pts)
	for i := range sites {
		got := BFVor(tr, sites[i], testDomain)
		want := BruteCell(sites, i, testDomain)
		if !polysEquivalent(got, want) {
			t.Fatalf("grid site %d: mismatch (area %v vs %v)", i, got.Area(), want.Area())
		}
	}
}

func TestCellsClippedToDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	pts := randPoints(rng, 200)
	tr := buildTree(t, pts)
	ComputeDiagramBatch(tr, testDomain, func(c Cell) {
		for _, v := range c.Poly.V {
			if !testDomain.Contains(v) {
				t.Fatalf("cell vertex %v escapes the domain", v)
			}
		}
	})
}
