package voronoi

import (
	"math"

	"cij/internal/geom"
	"cij/internal/rtree"
)

// InfluenceSet computes the reverse nearest neighbors of a query location
// q over the pointset indexed by t: the points p whose nearest neighbor
// (among the other indexed points and q) would be q itself. This is the
// "influence set" operator of Stanoi et al. (VLDB 2001) — reference [7]
// of the CIJ paper, and the origin of the "influence region" view of
// Voronoi cells that CIJ builds on.
//
// Implementation follows [7]'s sector pruning: partition the plane around
// q into six 60° sectors; within one sector, of any two points the one
// farther from q is strictly closer to the other point than to q, so only
// the nearest points per sector can be reverse nearest neighbors. One
// incremental NN browse fills the sectors (we keep two candidates per
// sector for robustness against boundary ties); each candidate is then
// verified with a point query: p is a result iff dist(p, q) < dist(p,
// p&apos;s nearest other indexed point).
//
// excludeID ≥ 0 removes one indexed object (use it when q itself is a
// member of the indexed set).
func InfluenceSet(t *rtree.Tree, q geom.Point, excludeID int64) []Site {
	const perSector = 2
	type sectorSlot struct {
		sites []Site
	}
	var sectors [6]sectorSlot
	filled := 0

	it := t.NewNNIterator(q)
	for filled < 6*perSector {
		e, _, ok := it.Next()
		if !ok {
			break
		}
		if e.ID == excludeID || e.Pt.Eq(q) {
			continue
		}
		ang := math.Atan2(e.Pt.Y-q.Y, e.Pt.X-q.X)
		s := int((ang + math.Pi) / (math.Pi / 3))
		if s > 5 {
			s = 5
		}
		if len(sectors[s].sites) < perSector {
			sectors[s].sites = append(sectors[s].sites, Site{ID: e.ID, Pt: e.Pt})
			filled++
		}
		// Sectors that have their quota stop accepting; once every sector
		// is full no farther point can be an RNN.
		full := 0
		for i := range sectors {
			if len(sectors[i].sites) == perSector {
				full++
			}
		}
		if full == 6 {
			break
		}
	}

	var out []Site
	for i := range sectors {
		for _, cand := range sectors[i].sites {
			// Verify: is q closer to cand than cand's nearest other point?
			nn := t.KNN(cand.Pt, 1, func(e rtree.Entry) bool {
				return e.ID != cand.ID && e.ID != excludeID
			})
			dq := cand.Pt.Dist(q)
			if len(nn) == 0 || dq < cand.Pt.Dist(nn[0].Pt) {
				out = append(out, cand)
			}
		}
	}
	return out
}

// BruteInfluenceSet is the O(n²) oracle for InfluenceSet.
func BruteInfluenceSet(sites []Site, q geom.Point, excludeID int64) []Site {
	var out []Site
	for _, p := range sites {
		if p.ID == excludeID || p.Pt.Eq(q) {
			continue
		}
		dq := p.Pt.Dist(q)
		isRNN := true
		for _, o := range sites {
			if o.ID == p.ID || o.ID == excludeID {
				continue
			}
			if p.Pt.Dist(o.Pt) <= dq {
				isRNN = false
				break
			}
		}
		if isRNN {
			out = append(out, p)
		}
	}
	return out
}
