package voronoi

import (
	"cij/internal/geom"
	"cij/internal/rtree"
)

// ComputeDiagramIter computes the full Voronoi diagram of the pointset
// indexed by t: a depth-first traversal visits each leaf and computes the
// cell of every point individually with Algorithm 1. This is the ITER
// method of the Fig. 6 experiment. Cells are delivered in traversal order
// through emit so callers can stream them (e.g. into a PolygonPacker)
// without holding the whole diagram in memory.
func ComputeDiagramIter(t *rtree.Tree, domain geom.Rect, emit func(Cell)) {
	var ws Workspace
	var sites []Site
	t.VisitLeavesHilbert(domain, func(leaf *rtree.Node) {
		sites = AppendSites(sites[:0], leaf)
		for _, s := range sites {
			// Clone: cells handed to emit must outlive the workspace reuse.
			emit(Cell{Site: s, Poly: ws.BFVor(t, s, domain).Clone()})
		}
	})
}

// ComputeDiagramBatch computes the full Voronoi diagram by computing all
// cells of each leaf node concurrently with Algorithm 2 — the BATCH method
// of Fig. 6 and Table II, and the building block of FM-CIJ and PM-CIJ.
// Leaves are visited in Hilbert order of their centers, so consecutive
// batches (and therefore the cells handed to emit) are close in space —
// the property the paper's bottom-up R-tree packing relies on.
func ComputeDiagramBatch(t *rtree.Tree, domain geom.Rect, emit func(Cell)) {
	var ws Workspace
	var sites []Site
	var cells []Cell
	t.VisitLeavesHilbert(domain, func(leaf *rtree.Node) {
		sites = AppendSites(sites[:0], leaf)
		cells = ws.BatchVoronoi(t, sites, domain, cells[:0])
		for _, c := range cells {
			c.Poly = c.Poly.Clone() // emit may retain the cell
			emit(c)
		}
	})
}

// BruteCell computes V(sites[i].Pt, sites) by clipping the domain with the
// bisector of every other site — the O(n) definition of Eq. 2. It is the
// ground truth the test suite compares the tree-based algorithms against.
func BruteCell(sites []Site, i int, domain geom.Rect) geom.Polygon {
	cell := domain.Polygon()
	pi := sites[i].Pt
	for j, s := range sites {
		if j == i || cell.IsEmpty() {
			continue
		}
		if s.Pt.Eq(pi) {
			continue // coincident sites share a degenerate cell
		}
		cell = cell.ClipBisector(pi, s.Pt)
	}
	return cell
}

// BruteDiagram computes all cells by brute force.
func BruteDiagram(sites []Site, domain geom.Rect) []Cell {
	cells := make([]Cell, len(sites))
	for i := range sites {
		cells[i] = Cell{Site: sites[i], Poly: BruteCell(sites, i, domain)}
	}
	return cells
}

// MakeSites wraps a point slice into sites with IDs equal to slice
// indices, matching the ID assignment of rtree.BulkLoadPoints.
func MakeSites(pts []geom.Point) []Site {
	sites := make([]Site, len(pts))
	for i, p := range pts {
		sites[i] = Site{ID: int64(i), Pt: p}
	}
	return sites
}
