package voronoi

import (
	"math/rand"
	"sort"
	"testing"

	"cij/internal/geom"
)

func sameSiteIDs(a, b []Site) bool {
	if len(a) != len(b) {
		return false
	}
	ai := make([]int64, len(a))
	bi := make([]int64, len(b))
	for i := range a {
		ai[i], bi[i] = a[i].ID, b[i].ID
	}
	sort.Slice(ai, func(i, j int) bool { return ai[i] < ai[j] })
	sort.Slice(bi, func(i, j int) bool { return bi[i] < bi[j] })
	for i := range ai {
		if ai[i] != bi[i] {
			return false
		}
	}
	return true
}

func TestInfluenceSetMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	pts := randPoints(rng, 800)
	sites := MakeSites(pts)
	tr := buildTree(t, pts)
	for trial := 0; trial < 60; trial++ {
		q := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		got := InfluenceSet(tr, q, -1)
		want := BruteInfluenceSet(sites, q, -1)
		if !sameSiteIDs(got, want) {
			t.Fatalf("trial %d at %v: got %d RNNs, want %d", trial, q, len(got), len(want))
		}
	}
}

func TestInfluenceSetMemberQuery(t *testing.T) {
	// Query with a point of the set itself (excluded by id): the RNNs of
	// p are the points that have p as their nearest neighbor.
	rng := rand.New(rand.NewSource(701))
	pts := randPoints(rng, 500)
	sites := MakeSites(pts)
	tr := buildTree(t, pts)
	for trial := 0; trial < 30; trial++ {
		i := rng.Intn(len(pts))
		got := InfluenceSet(tr, pts[i], int64(i))
		want := BruteInfluenceSet(sites, pts[i], int64(i))
		if !sameSiteIDs(got, want) {
			t.Fatalf("site %d: got %d RNNs, want %d", i, len(got), len(want))
		}
	}
}

func TestInfluenceSetCardinalityBound(t *testing.T) {
	// In the plane, a monochromatic influence set has at most 6 members.
	rng := rand.New(rand.NewSource(702))
	pts := randPoints(rng, 2000)
	tr := buildTree(t, pts)
	for trial := 0; trial < 50; trial++ {
		q := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		if got := InfluenceSet(tr, q, -1); len(got) > 6 {
			t.Fatalf("influence set of size %d > 6", len(got))
		}
	}
}

func TestInfluenceSetSmallSets(t *testing.T) {
	// Single point: it is always the RNN of any query.
	tr := buildTree(t, []geom.Point{geom.Pt(5000, 5000)})
	got := InfluenceSet(tr, geom.Pt(1, 1), -1)
	if len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("singleton influence set = %+v", got)
	}
	// Two far points, query between but nearer to one.
	tr2 := buildTree(t, []geom.Point{geom.Pt(1000, 5000), geom.Pt(9000, 5000)})
	got = InfluenceSet(tr2, geom.Pt(4000, 5000), -1)
	// Point 0: dist to q 3000 < dist to other 8000 → RNN. Point 1: dist
	// to q 5000 < 8000 → RNN too.
	if len(got) != 2 {
		t.Fatalf("expected both points influenced, got %+v", got)
	}
	got = InfluenceSet(tr2, geom.Pt(1100, 5000), -1)
	// Point 1: dist to q 7900 < 8000 → still RNN.
	if len(got) != 2 {
		t.Fatalf("expected 2 RNNs, got %+v", got)
	}
}

func TestInfluenceSetVoronoiConsistency(t *testing.T) {
	// Cross-check with the Voronoi view: p ∈ InfluenceSet(q) iff p lies in
	// the cell q would get in the diagram of (P \ {p}) ∪ {q} — i.e.
	// inserting q captures p as one of its "residents".
	rng := rand.New(rand.NewSource(703))
	pts := randPoints(rng, 150)
	sites := MakeSites(pts)
	tr := buildTree(t, pts)
	for trial := 0; trial < 10; trial++ {
		q := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		got := InfluenceSet(tr, q, -1)
		inSet := map[int64]bool{}
		for _, s := range got {
			inSet[s.ID] = true
		}
		for _, s := range sites {
			// q's cell against P \ {s}.
			cell := testDomain.Polygon()
			for _, o := range sites {
				if o.ID == s.ID {
					continue
				}
				cell = cell.ClipBisector(q, o.Pt)
				if cell.IsEmpty() {
					break
				}
			}
			want := !cell.IsEmpty() && cell.Contains(s.Pt)
			if want != inSet[s.ID] {
				// Boundary tolerance: skip knife-edge cases.
				dq := s.Pt.Dist(q)
				nnD := 1e18
				for _, o := range sites {
					if o.ID != s.ID {
						if d := s.Pt.Dist(o.Pt); d < nnD {
							nnD = d
						}
					}
				}
				if absf(dq-nnD) > 1e-6 {
					t.Fatalf("site %d: Voronoi view %v, RNN view %v", s.ID, want, inSet[s.ID])
				}
			}
		}
	}
}

func absf(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
