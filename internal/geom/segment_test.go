package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistPointSegment(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(10, 0)}
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 3), 3},   // perpendicular foot inside (partition A2)
		{Pt(-3, 4), 5},  // beyond endpoint A (partition A1)
		{Pt(13, 4), 5},  // beyond endpoint B (partition A3)
		{Pt(7, 0), 0},   // on the segment
		{Pt(0, 0), 0},   // endpoint
		{Pt(10, -2), 2}, // below endpoint B
	}
	for _, c := range cases {
		if got := s.DistPoint(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("DistPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestDistPointDegenerateSegment(t *testing.T) {
	s := Segment{Pt(3, 3), Pt(3, 3)}
	if got := s.DistPoint(Pt(0, -1)); math.Abs(got-5) > 1e-9 {
		t.Errorf("degenerate segment dist = %v, want 5", got)
	}
}

func TestDistPointSegmentLowerBound(t *testing.T) {
	// dist(t, segment) must lower-bound dist(t, x) for every x on the
	// segment.
	f := func(ax, ay, bx, by, tx, ty, u float64) bool {
		s := Segment{
			Pt(clampCoord(ax), clampCoord(ay)),
			Pt(clampCoord(bx), clampCoord(by)),
		}
		tp := Pt(clampCoord(tx), clampCoord(ty))
		uu := math.Mod(math.Abs(clampCoord(u)), 1)
		x := s.A.Add(s.B.Sub(s.A).Scale(uu))
		return s.DistPoint(tp) <= tp.Dist(x)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInPhiSemantics(t *testing.T) {
	// Φ(L, p) = {b : dist(p,b) ≤ mindist(L,b)}. Verify against the
	// definition directly on random instances.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		s := Segment{
			Pt(rng.Float64()*100, rng.Float64()*100),
			Pt(rng.Float64()*100, rng.Float64()*100),
		}
		p := Pt(rng.Float64()*100, rng.Float64()*100)
		b := Pt(rng.Float64()*100, rng.Float64()*100)
		want := p.Dist(b) <= s.DistPoint(b)+1e-9
		if got := s.InPhi(p, b); got != want {
			if math.Abs(p.Dist(b)-s.DistPoint(b)) > 1e-6 {
				t.Fatalf("InPhi mismatch: s=%v p=%v b=%v", s, p, b)
			}
		}
	}
}

func TestPolygonInPhi(t *testing.T) {
	// Side L of a far-away rectangle; p close to the polygon. The whole
	// polygon is nearer to p than to L.
	l := Segment{Pt(100, 0), Pt(100, 10)}
	p := Pt(5, 5)
	g := NewRect(0, 0, 10, 10).Polygon()
	if !l.PolygonInPhi(p, g) {
		t.Error("polygon near p should fall in Φ(L,p) for distant L")
	}
	// L crossing right next to the polygon, p far: not contained.
	l2 := Segment{Pt(11, -100), Pt(11, 100)}
	p2 := Pt(500, 5)
	if l2.PolygonInPhi(p2, g) {
		t.Error("polygon near L should not fall in Φ(L,p) for distant p")
	}
	// Empty polygon is vacuously contained.
	if !l.PolygonInPhi(p, Polygon{}) {
		t.Error("empty polygon is vacuously in Φ")
	}
}

func TestPolygonInPhiLemma3(t *testing.T) {
	// Lemma 3: if every vertex of convex T is in Φ(L,p), then all of T is.
	// Cross-check by sampling interior points of T.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		l := Segment{
			Pt(rng.Float64()*100, rng.Float64()*100),
			Pt(rng.Float64()*100, rng.Float64()*100),
		}
		p := Pt(rng.Float64()*100, rng.Float64()*100)
		g := randConvex(rng) // lives in [0,10]²
		if !l.PolygonInPhi(p, g) {
			continue
		}
		// Sample convex combinations of vertices.
		for k := 0; k < 20; k++ {
			w := make([]float64, len(g.V))
			var sum float64
			for j := range w {
				w[j] = rng.Float64()
				sum += w[j]
			}
			var pt Point
			for j, v := range g.V {
				pt = pt.Add(v.Scale(w[j] / sum))
			}
			if !l.InPhi(p, pt) && p.Dist(pt)-l.DistPoint(pt) > 1e-6 {
				t.Fatalf("Lemma 3 violated at interior point %v", pt)
			}
		}
	}
}

func TestSegmentLen(t *testing.T) {
	if got := (Segment{Pt(0, 0), Pt(3, 4)}).Len(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Len = %v, want 5", got)
	}
}
