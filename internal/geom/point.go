// Package geom provides the planar computational-geometry primitives that
// the CIJ algorithms are built on: points, rectangles, segments, convex
// polygons with halfplane clipping, and a Hilbert space-filling curve.
//
// All coordinates are float64. The CIJ paper normalizes every dataset to
// the domain [0, 10000]²; nothing in this package depends on that, but the
// default tolerance Eps is chosen with coordinates of that magnitude in
// mind.
package geom

import (
	"fmt"
	"math"
)

// Eps is the absolute tolerance used by geometric predicates. With domain
// coordinates up to 1e4 and double precision (~1e-16 relative error),
// 1e-7 absolute keeps predicates stable through the handful of clipping
// operations a Voronoi cell goes through.
const Eps = 1e-7

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is a shorthand constructor for Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred comparison key in hot paths.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Eq reports whether p and q coincide within Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Clamp bounds v to [lo, hi]. It is the shared scalar clamp of the
// module's generators and tests (dataset synthesis, the check harness,
// the grid experiments), so tolerance or NaN-handling changes happen in
// one place.
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Centroid returns the arithmetic mean of pts. It panics on an empty slice:
// every caller in this module groups at least one point.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: centroid of empty point set")
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(pts))
	return Point{sx / n, sy / n}
}
