package geom

import (
	"fmt"
	"math"
	"strings"
)

// Polygon is a convex polygon with vertices in counter-clockwise order.
// The zero value (no vertices) is the empty polygon. Every Voronoi cell in
// this module is a Polygon: it starts as the rectangular space domain and
// is progressively clipped by bisector halfplanes (Eq. 2 of the paper), an
// operation that preserves convexity and orientation.
type Polygon struct {
	V []Point
}

// Halfplane is the closed region {a : N·a ≤ C}. The outward normal N points
// away from the kept side. Scale caches |N| (clamped to ≥1) for sidedness
// tolerances; zero means "compute on demand".
type Halfplane struct {
	N     Point   // normal vector
	C     float64 // offset
	Scale float64 // cached max(1, |N|); 0 = not yet computed
}

// Bisector returns the halfplane ⊥pi(pi, pj) of Eq. 1: the locations at
// least as close to pi as to pj. Its boundary is the perpendicular bisector
// of segment pi pj.
//
// dist(pi,a) ≤ dist(pj,a)  ⟺  2(pj−pi)·a ≤ |pj|² − |pi|².
func Bisector(pi, pj Point) Halfplane {
	n := Point{2 * (pj.X - pi.X), 2 * (pj.Y - pi.Y)}
	c := pj.X*pj.X + pj.Y*pj.Y - pi.X*pi.X - pi.Y*pi.Y
	h := Halfplane{N: n, C: c}
	h.Scale = h.scale()
	return h
}

// Side returns N·a − C: negative inside the halfplane, positive outside.
func (h Halfplane) Side(a Point) float64 { return h.N.Dot(a) - h.C }

// Contains reports whether a lies in the closed halfplane (with tolerance).
func (h Halfplane) Contains(a Point) bool { return h.Side(a) <= Eps*h.scale() }

// scale returns a magnitude used to make the sidedness tolerance relative
// to the normal length, so that Bisector halfplanes of nearby and faraway
// point pairs behave consistently.
func (h Halfplane) scale() float64 {
	if h.Scale > 0 {
		return h.Scale
	}
	// Plain sqrt, not math.Hypot: coordinates are domain-scale (≤1e4), so
	// overflow protection is unnecessary and Hypot is ~3x slower in this
	// per-clip hot path.
	s := math.Sqrt(h.N.X*h.N.X + h.N.Y*h.N.Y)
	if s < 1 {
		return 1
	}
	return s
}

// IsEmpty reports whether the polygon has no interior (fewer than 3
// vertices).
func (g Polygon) IsEmpty() bool { return len(g.V) < 3 }

// Clone returns a deep copy of g.
func (g Polygon) Clone() Polygon {
	return Polygon{V: append([]Point(nil), g.V...)}
}

// Clip intersects g with the halfplane h using Sutherland–Hodgman clipping.
// The result is again convex and counter-clockwise; it may be empty.
func (g Polygon) Clip(h Halfplane) Polygon {
	if g.IsEmpty() {
		return Polygon{}
	}
	out := clipInto(g.V, h, make([]Point, 0, len(g.V)+2))
	if len(out) < 3 {
		return Polygon{}
	}
	return Polygon{V: out}
}

// clipInto clips the CCW vertex ring vs by h, appending into out (which
// must not alias vs) and returning it.
func clipInto(vs []Point, h Halfplane, out []Point) []Point {
	tol := Eps * h.scale()
	n := len(vs)
	prev := vs[n-1]
	prevSide := h.Side(prev)
	for i := 0; i < n; i++ {
		cur := vs[i]
		curSide := h.Side(cur)
		switch {
		case curSide <= tol: // current vertex kept
			if prevSide > tol {
				// Entering the halfplane: add the crossing point first.
				out = appendVertex(out, intersectEdge(prev, cur, prevSide, curSide))
			}
			out = appendVertex(out, cur)
		case prevSide <= tol: // leaving the halfplane
			out = appendVertex(out, intersectEdge(prev, cur, prevSide, curSide))
		}
		prev, prevSide = cur, curSide
	}
	// Dedup wrap-around duplicates.
	for len(out) > 1 && out[0].Eq(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	return out
}

// Clipper performs repeated halfplane clipping through two reusable
// buffers, for hot paths that discard intermediate polygons (the
// approximate-cell tests of the conditional filter and the Voronoi cell
// refinements clip millions of times per join).
//
// Aliasing contract: every polygon returned by Seed, Clip or Intersect
// aliases the clipper's internal storage. Such a result stays valid as the
// input of the immediately following call on the same clipper (the buffers
// ping-pong), but it is overwritten two calls later — Clone it if it must
// survive, or copy its vertices into caller-owned storage. Polygons that
// must be read throughout a chain (the subtrahend o of Intersect) must NOT
// alias the clipper's buffers. A Clipper is not safe for concurrent use.
//
// After the two buffers have grown to a chain's high-water vertex count,
// all three operations allocate nothing (guarded by TestClipperZeroAlloc).
type Clipper struct {
	bufs [2][]Point
	cur  int
}

// Seed loads the four corners of r into the clipper's scratch and returns
// them as a polygon, so a clipping chain can start from the rectangular
// space domain without the allocation of Rect.Polygon. The result follows
// the clipper aliasing contract.
func (cl *Clipper) Seed(r Rect) Polygon {
	buf := append(cl.bufs[cl.cur][:0],
		Point{r.MinX, r.MinY},
		Point{r.MaxX, r.MinY},
		Point{r.MaxX, r.MaxY},
		Point{r.MinX, r.MaxY},
	)
	cl.bufs[cl.cur] = buf
	cl.cur = 1 - cl.cur
	return Polygon{V: buf}
}

// Clip is the buffer-reusing equivalent of Polygon.Clip. The input g may
// be the result of the previous Clip call on the same Clipper.
func (cl *Clipper) Clip(g Polygon, h Halfplane) Polygon {
	if g.IsEmpty() {
		return Polygon{}
	}
	buf := cl.bufs[cl.cur][:0]
	out := clipInto(g.V, h, buf)
	cl.bufs[cl.cur] = out // retain grown capacity
	cl.cur = 1 - cl.cur
	if len(out) < 3 {
		return Polygon{}
	}
	return Polygon{V: out}
}

// ClipCut is Clip with a no-op fast path: when every vertex of g already
// lies inside h (within the clipping tolerance), the clip would emit g
// verbatim, so ClipCut returns g itself — no copy, no buffer rotation —
// and reports cut=false. Hot loops use the report to skip work that only
// a changed polygon invalidates (circumradius recomputation, bounds
// re-tests). When some vertex is outside, the regular clip runs and
// cut=true.
//
// The result is bit-identical to Clip in both cases: a Sutherland–Hodgman
// pass over an all-inside ring reproduces the ring unchanged. Returning g
// on the fast path preserves the clipper aliasing contract — the buffers
// do not rotate, so the "input of the immediately following call" window
// is unchanged.
func (cl *Clipper) ClipCut(g Polygon, h Halfplane) (out Polygon, cut bool) {
	if g.IsEmpty() {
		return Polygon{}, false
	}
	tol := Eps * h.scale()
	for _, v := range g.V {
		if h.Side(v) > tol {
			cut = true
			break
		}
	}
	if !cut {
		return g, false
	}
	return cl.Clip(g, h), true
}

// Intersect is the buffer-reusing form of Polygon.Intersection (which
// delegates here): it clips g successively by the supporting halfplane of
// every edge of o. g may be a previous result of this clipper; o must not
// alias the clipper's buffers (it is read throughout the chain). The
// result follows the clipper aliasing contract.
func (cl *Clipper) Intersect(g, o Polygon) Polygon {
	if g.IsEmpty() || o.IsEmpty() {
		return Polygon{}
	}
	res := g
	n := len(o.V)
	for i := 0; i < n && !res.IsEmpty(); i++ {
		j := i + 1
		if j == n {
			j = 0
		}
		e := o.V[j].Sub(o.V[i])
		// Interior of a CCW polygon is left of the edge: normal (e.Y, -e.X)
		// points outward, keep N·a ≤ N·vi. ClipCut skips the copy for
		// edges that do not cut (bit-identical output either way).
		nrm := Point{e.Y, -e.X}
		res, _ = cl.ClipCut(res, Halfplane{N: nrm, C: nrm.Dot(o.V[i])})
	}
	return res
}

// appendVertex adds v unless it duplicates the previous vertex.
func appendVertex(vs []Point, v Point) []Point {
	if len(vs) > 0 && vs[len(vs)-1].Eq(v) {
		return vs
	}
	return append(vs, v)
}

// intersectEdge returns the point where edge a→b crosses the halfplane
// boundary, given the signed sidedness values of the endpoints.
func intersectEdge(a, b Point, sa, sb float64) Point {
	t := sa / (sa - sb)
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return Point{a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y)}
}

// ClipBisector clips g by the bisector halfplane of (pi, pj), keeping the
// side of pi. This is the Voronoi cell refinement step ("update Vc(pi) by
// ⊥pi(pi,pj)", line 9 of Algorithm 1).
func (g Polygon) ClipBisector(pi, pj Point) Polygon {
	return g.Clip(Bisector(pi, pj))
}

// Area returns the area of g by the shoelace formula (zero when empty).
func (g Polygon) Area() float64 {
	if g.IsEmpty() {
		return 0
	}
	var s float64
	n := len(g.V)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s += g.V[i].Cross(g.V[j])
	}
	return s / 2
}

// Centroid returns the area centroid of g; for (near-)degenerate polygons
// it falls back to the vertex mean. The centroid is used as the best-first
// ordering anchor T̄ of the ConditionalFilter.
func (g Polygon) Centroid() Point {
	if len(g.V) == 0 {
		panic("geom: centroid of empty polygon")
	}
	a := g.Area()
	if a < Eps {
		return Centroid(g.V)
	}
	var cx, cy float64
	n := len(g.V)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		w := g.V[i].Cross(g.V[j])
		cx += (g.V[i].X + g.V[j].X) * w
		cy += (g.V[i].Y + g.V[j].Y) * w
	}
	return Point{cx / (6 * a), cy / (6 * a)}
}

// Bounds returns the MBR of g.
func (g Polygon) Bounds() Rect {
	if len(g.V) == 0 {
		return EmptyRect()
	}
	r := Rect{MinX: g.V[0].X, MinY: g.V[0].Y, MaxX: g.V[0].X, MaxY: g.V[0].Y}
	for _, v := range g.V[1:] {
		if v.X < r.MinX {
			r.MinX = v.X
		}
		if v.X > r.MaxX {
			r.MaxX = v.X
		}
		if v.Y < r.MinY {
			r.MinY = v.Y
		}
		if v.Y > r.MaxY {
			r.MaxY = v.Y
		}
	}
	return r
}

// MaxDist2 returns the largest squared distance from p to any point of vs
// (zero for an empty slice). For a convex cell's vertex ring this is the
// squared circumradius around p, the quantity behind the O(1) refinement
// prune: a site farther than twice this radius from p cannot cut the cell.
func MaxDist2(vs []Point, p Point) float64 {
	var m float64
	for _, v := range vs {
		if d := p.Dist2(v); d > m {
			m = d
		}
	}
	return m
}

// Contains reports whether point p lies in the closed polygon.
func (g Polygon) Contains(p Point) bool {
	if g.IsEmpty() {
		return false
	}
	n := len(g.V)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		e := g.V[j].Sub(g.V[i])
		// CCW orientation: interior is to the left of each edge.
		if e.Cross(p.Sub(g.V[i])) < -Eps*(1+math.Hypot(e.X, e.Y)) {
			return false
		}
	}
	return true
}

// Intersects reports whether two closed convex polygons share at least one
// point, via the separating axis theorem: the polygons are disjoint iff
// some edge of either is a separating line.
func (g Polygon) Intersects(o Polygon) bool {
	if !g.Bounds().Intersects(o.Bounds()) {
		return false
	}
	return g.IntersectsSAT(o)
}

// IntersectsSAT is Intersects without the bounding-box fast path, for hot
// loops that have already compared (cached) bounds: it goes straight to
// the separating-axis test. Polygon.Bounds is O(vertices) and recomputing
// it for every pair of a join loop is measurable.
func (g Polygon) IntersectsSAT(o Polygon) bool {
	if g.IsEmpty() || o.IsEmpty() {
		return false
	}
	return !hasSeparatingEdge(g, o) && !hasSeparatingEdge(o, g)
}

// hasSeparatingEdge reports whether some edge of a has all vertices of b
// strictly on its outer side.
func hasSeparatingEdge(a, b Polygon) bool {
	n := len(a.V)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		e := a.V[j].Sub(a.V[i])
		scale := Eps * (1 + math.Hypot(e.X, e.Y))
		separating := true
		for _, v := range b.V {
			if e.Cross(v.Sub(a.V[i])) >= -scale {
				separating = false
				break
			}
		}
		if separating {
			return true
		}
	}
	return false
}

// IntersectsRect reports whether g intersects the closed rectangle r.
func (g Polygon) IntersectsRect(r Rect) bool {
	if g.IsEmpty() || r.IsEmpty() {
		return false
	}
	if !g.Bounds().Intersects(r) {
		return false
	}
	return g.Intersects(r.Polygon())
}

// Intersection returns the convex intersection polygon g ∩ o (possibly
// empty). It clips g successively by the supporting halfplane of every edge
// of o. The CIJ applications use it to obtain the common influence region
// R(p, q) = V(p,P) ∩ V(q,Q) of a join pair. It delegates to
// Clipper.Intersect, so the owning and pooled forms cannot diverge — the
// join predicate's verdict depends on them applying the identical
// halfplane sequence.
func (g Polygon) Intersection(o Polygon) Polygon {
	var cl Clipper
	return cl.Intersect(g, o).Clone()
}

// IsConvexCCW reports whether the vertex sequence forms a convex polygon in
// counter-clockwise order (allowing collinear runs). Used by tests and
// invariant checks.
func (g Polygon) IsConvexCCW() bool {
	n := len(g.V)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		a, b, c := g.V[i], g.V[(i+1)%n], g.V[(i+2)%n]
		e1, e2 := b.Sub(a), c.Sub(b)
		scale := Eps * (1 + math.Hypot(e1.X, e1.Y)*math.Hypot(e2.X, e2.Y))
		if e1.Cross(e2) < -scale {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (g Polygon) String() string {
	var sb strings.Builder
	sb.WriteString("Polygon[")
	for i, v := range g.V {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%v", v)
	}
	sb.WriteString("]")
	return sb.String()
}
