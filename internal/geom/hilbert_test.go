package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHilbertRoundTrip(t *testing.T) {
	// XY2D and D2XY must be inverse bijections on the grid.
	f := func(xr, yr uint32) bool {
		x := xr % hilbertSide
		y := yr % hilbertSide
		d := HilbertXY2D(HilbertOrder, x, y)
		gx, gy := HilbertD2XY(HilbertOrder, d)
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestHilbertSmallOrderExhaustive(t *testing.T) {
	// Order-3 curve: all 64 cells have distinct d covering 0..63, and
	// consecutive d values are grid neighbors (the locality property the
	// bulk loader relies on).
	const order = 3
	const side = 1 << order
	seen := make(map[uint64][2]uint32)
	for x := uint32(0); x < side; x++ {
		for y := uint32(0); y < side; y++ {
			d := HilbertXY2D(order, x, y)
			if d >= side*side {
				t.Fatalf("d=%d out of range for order %d", d, order)
			}
			if prev, dup := seen[d]; dup {
				t.Fatalf("duplicate d=%d for (%d,%d) and %v", d, x, y, prev)
			}
			seen[d] = [2]uint32{x, y}
		}
	}
	for d := uint64(0); d+1 < side*side; d++ {
		a, b := seen[d], seen[d+1]
		dx := int(a[0]) - int(b[0])
		dy := int(a[1]) - int(b[1])
		if dx*dx+dy*dy != 1 {
			t.Fatalf("curve jump between d=%d %v and d=%d %v", d, a, d+1, b)
		}
	}
}

func TestHilbertValueClamping(t *testing.T) {
	dom := NewRect(0, 0, 10000, 10000)
	inside := HilbertValue(Pt(5000, 5000), dom)
	if inside == 0 {
		t.Error("center of domain should not map to 0")
	}
	// Outside points clamp instead of wrapping.
	if HilbertValue(Pt(-100, -100), dom) != HilbertValue(Pt(0, 0), dom) {
		t.Error("outside point should clamp to corner")
	}
	if HilbertValue(Pt(20000, 20000), dom) != HilbertValue(Pt(10000-1e-9, 10000-1e-9), dom) {
		t.Error("outside point should clamp to far corner")
	}
	// Degenerate domain.
	if HilbertValue(Pt(1, 1), NewRect(5, 5, 5, 5)) != 0 {
		t.Error("degenerate domain maps everything to 0")
	}
}

func TestHilbertLocality(t *testing.T) {
	// Statistical locality check: points close in space should, on
	// average, have much closer Hilbert values than random pairs. This is
	// a sanity property, not a strict guarantee.
	rng := rand.New(rand.NewSource(9))
	dom := NewRect(0, 0, 10000, 10000)
	var nearSum, farSum float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		p := Pt(rng.Float64()*9000+500, rng.Float64()*9000+500)
		q := Pt(p.X+rng.Float64()*10-5, p.Y+rng.Float64()*10-5)
		r := Pt(rng.Float64()*10000, rng.Float64()*10000)
		dp, dq, dr := HilbertValue(p, dom), HilbertValue(q, dom), HilbertValue(r, dom)
		nearSum += absDiffU64(dp, dq)
		farSum += absDiffU64(dp, dr)
	}
	if nearSum >= farSum/10 {
		t.Errorf("poor Hilbert locality: near=%v far=%v", nearSum/trials, farSum/trials)
	}
}

func absDiffU64(a, b uint64) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}
