package geom

import "math"

// Segment is a closed line segment between two endpoints.
type Segment struct {
	A, B Point
}

// Len returns the length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// DistPoint returns the minimum distance between point t and the segment.
//
// This is the mindist(L, b) of Eq. 3 in the paper: the region Φ(L, p) is
// {b : dist(p, b) ≤ mindist(L, b)}, whose boundary is piecewise
// linear/parabolic; membership of a point reduces to this distance
// comparison, so no explicit parabola construction is needed.
func (s Segment) DistPoint(t Point) float64 {
	return math.Sqrt(s.Dist2Point(t))
}

// Dist2Point returns the squared minimum distance between t and the
// segment.
func (s Segment) Dist2Point(t Point) float64 {
	ab := s.B.Sub(s.A)
	at := t.Sub(s.A)
	den := ab.Dot(ab)
	if den <= 0 {
		// Degenerate segment: a single point.
		return at.Dot(at)
	}
	// Projection parameter of t onto the supporting line, clamped to the
	// segment. u < 0 falls in partition A1 of Fig. 4b (closest to endpoint
	// A), u > 1 in A3 (closest to B), and 0 ≤ u ≤ 1 in A2 (perpendicular
	// foot inside the segment).
	u := at.Dot(ab) / den
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	foot := s.A.Add(ab.Scale(u))
	return t.Dist2(foot)
}

// InPhi reports whether point t lies in Φ(L, p) = {b : dist(p,b) ≤
// mindist(L,b)} for this segment L: t is at least as close to p as to any
// location on L.
func (s Segment) InPhi(p, t Point) bool {
	return p.Dist2(t) <= s.Dist2Point(t)+Eps
}

// PolygonInPhi reports whether the whole convex polygon T falls inside
// Φ(L, p). By Lemma 3 of the paper it suffices to test the vertices,
// because both T and Φ(L, p) are convex.
func (s Segment) PolygonInPhi(p Point, t Polygon) bool {
	if t.IsEmpty() {
		return true
	}
	for _, v := range t.V {
		if !s.InPhi(p, v) {
			return false
		}
	}
	return true
}
