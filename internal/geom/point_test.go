package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-2, 0), Pt(2, 0), 4},
		{Pt(0, -3), Pt(0, 3), 6},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.p.Dist2(c.q); math.Abs(got-c.want*c.want) > 1e-9 {
			t.Errorf("Dist2(%v,%v) = %v, want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestPointDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(clampCoord(ax), clampCoord(ay)), Pt(clampCoord(bx), clampCoord(by))
		return math.Abs(a.Dist(b)-b.Dist(a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(clampCoord(ax), clampCoord(ay))
		b := Pt(clampCoord(bx), clampCoord(by))
		c := Pt(clampCoord(cx), clampCoord(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointVectorOps(t *testing.T) {
	a, b := Pt(1, 2), Pt(3, -4)
	if got := a.Add(b); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != -4-6 {
		t.Errorf("Cross = %v", got)
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := Centroid(pts); !got.Eq(Pt(1, 1)) {
		t.Errorf("Centroid = %v, want (1,1)", got)
	}
	if got := Centroid([]Point{Pt(5, 7)}); !got.Eq(Pt(5, 7)) {
		t.Errorf("Centroid single = %v", got)
	}
}

func TestCentroidEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty centroid")
		}
	}()
	Centroid(nil)
}

func TestPointEq(t *testing.T) {
	if !Pt(1, 1).Eq(Pt(1+Eps/2, 1-Eps/2)) {
		t.Error("points within Eps should be equal")
	}
	if Pt(1, 1).Eq(Pt(1.001, 1)) {
		t.Error("points 1e-3 apart should differ")
	}
}

// clampCoord maps an arbitrary quick-generated float into the paper's
// domain scale, avoiding NaN/Inf noise in property tests.
func clampCoord(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return math.Mod(math.Abs(f), 10000)
}
