package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle (a minimum bounding rectangle, MBR).
// A Rect with MinX > MaxX is the canonical empty rectangle, as produced by
// EmptyRect.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect builds the rectangle spanning the two corner points in any order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	return Rect{
		MinX: math.Min(x1, x2), MinY: math.Min(y1, y2),
		MaxX: math.Max(x1, x2), MaxY: math.Max(y1, y2),
	}
}

// EmptyRect returns the identity element for Union: any rectangle union
// EmptyRect is that rectangle.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p Point) Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// IsEmpty reports whether r is the empty rectangle.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the x-extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the y-extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r, zero for degenerate or empty rectangles.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Margin returns half the perimeter of r (the classic R*-tree margin
// metric).
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Width() + r.Height()
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX), MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX), MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// UnionPoint returns the smallest rectangle covering r and p.
func (r Rect) UnionPoint(p Point) Rect { return r.Union(RectFromPoint(p)) }

// Intersects reports whether r and s share any point (closed rectangles,
// touching counts).
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX+Eps && s.MinX <= r.MaxX+Eps &&
		r.MinY <= s.MaxY+Eps && s.MinY <= r.MaxY+Eps
}

// Contains reports whether p lies in the closed rectangle r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX-Eps && p.X <= r.MaxX+Eps &&
		p.Y >= r.MinY-Eps && p.Y <= r.MaxY+Eps
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.MinX >= r.MinX-Eps && s.MaxX <= r.MaxX+Eps &&
		s.MinY >= r.MinY-Eps && s.MaxY <= r.MaxY+Eps
}

// Enlargement returns the area increase needed for r to cover s. It is the
// cost metric of Guttman's ChooseLeaf.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// MinDist returns the minimum Euclidean distance between p and any point of
// r; zero if p is inside r. This is the mindist(e, p) of the paper.
func (r Rect) MinDist(p Point) float64 {
	return math.Sqrt(r.MinDist2(p))
}

// MinDist2 returns the squared minimum distance between p and r.
// (Hand-rolled comparisons: math.Max's NaN handling is measurable overhead
// in the best-first traversals, which call this for every heap entry.)
func (r Rect) MinDist2(p Point) float64 {
	var dx, dy float64
	if p.X < r.MinX {
		dx = r.MinX - p.X
	} else if p.X > r.MaxX {
		dx = p.X - r.MaxX
	}
	if p.Y < r.MinY {
		dy = r.MinY - p.Y
	} else if p.Y > r.MaxY {
		dy = p.Y - r.MaxY
	}
	return dx*dx + dy*dy
}

// MinDistRect returns the minimum distance between rectangles r and s; zero
// if they intersect. It is the mindist(e_P, e_Q) used by ε-distance joins.
func (r Rect) MinDistRect(s Rect) float64 {
	dx := math.Max(0, math.Max(r.MinX-s.MaxX, s.MinX-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-s.MaxY, s.MinY-r.MaxY))
	return math.Hypot(dx, dy)
}

// MaxDist returns the maximum distance between p and any point of r (the
// distance to the farthest corner).
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.MinX), math.Abs(p.X-r.MaxX))
	dy := math.Max(math.Abs(p.Y-r.MinY), math.Abs(p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// Corners returns the four corners of r in counter-clockwise order starting
// from (MinX, MinY).
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY},
		{r.MaxX, r.MinY},
		{r.MaxX, r.MaxY},
		{r.MinX, r.MaxY},
	}
}

// Sides returns the four boundary segments of r in counter-clockwise order.
// These are the sides L over which the Φ(L, p) pruning test of the
// ConditionalFilter iterates.
func (r Rect) Sides() [4]Segment {
	c := r.Corners()
	return [4]Segment{
		{c[0], c[1]},
		{c[1], c[2]},
		{c[2], c[3]},
		{c[3], c[0]},
	}
}

// Polygon returns r as a counter-clockwise convex polygon.
func (r Rect) Polygon() Polygon {
	c := r.Corners()
	return Polygon{V: c[:]}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.6g,%.6g]x[%.6g,%.6g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}
