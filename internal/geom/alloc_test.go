package geom

import "testing"

// TestClipperZeroAlloc pins the Clipper's zero-allocation guarantee: once
// its two buffers have grown to a chain's high-water vertex count, Seed,
// Clip and Intersect allocate nothing. The CIJ hot path clips millions of
// times per join, so a regression here (e.g. a make inside the clip loop)
// costs an allocation per clip and must fail the test suite.
func TestClipperZeroAlloc(t *testing.T) {
	domain := NewRect(0, 0, 100, 100)
	sites := []Point{
		Pt(30, 30), Pt(70, 35), Pt(50, 80), Pt(20, 60), Pt(85, 75),
	}
	center := Pt(50, 50)
	other := Polygon{V: []Point{Pt(40, 40), Pt(90, 45), Pt(60, 95)}}

	var cl Clipper
	// Warm up the buffers.
	cell := cl.Seed(domain)
	for _, s := range sites {
		cell = cl.Clip(cell, Bisector(center, s))
	}
	cl.Intersect(cell, other)

	allocs := testing.AllocsPerRun(100, func() {
		c := cl.Seed(domain)
		for _, s := range sites {
			c = cl.Clip(c, Bisector(center, s))
		}
		if r := cl.Intersect(c, other); r.IsEmpty() {
			t.Fatal("intersection unexpectedly empty")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Seed/Clip/Intersect chain allocates %.1f objects per run, want 0", allocs)
	}
}

// TestClipperIntersectMatchesIntersection verifies that the pooled
// Intersect applies the same halfplane sequence as Polygon.Intersection:
// results must be vertex-for-vertex identical, since the CIJ join
// predicate's verdict depends on the exact clipped area.
func TestClipperIntersectMatchesIntersection(t *testing.T) {
	a := Polygon{V: []Point{Pt(0, 0), Pt(60, 0), Pt(60, 60), Pt(0, 60)}}
	b := Polygon{V: []Point{Pt(30, 10), Pt(90, 20), Pt(70, 80), Pt(25, 55)}}
	var cl Clipper
	got := cl.Intersect(a, b)
	want := a.Intersection(b)
	if len(got.V) != len(want.V) {
		t.Fatalf("vertex count %d, want %d", len(got.V), len(want.V))
	}
	for i := range got.V {
		if got.V[i] != want.V[i] {
			t.Fatalf("vertex %d: %v, want %v", i, got.V[i], want.V[i])
		}
	}
}

// TestClipperSeed checks Seed against Rect.Polygon and the ping-pong
// aliasing contract (the seeded ring is valid input to the next Clip).
func TestClipperSeed(t *testing.T) {
	r := NewRect(1, 2, 9, 8)
	var cl Clipper
	seeded := cl.Seed(r)
	want := r.Polygon()
	if len(seeded.V) != 4 {
		t.Fatalf("seed has %d vertices, want 4", len(seeded.V))
	}
	for i := range want.V {
		if seeded.V[i] != want.V[i] {
			t.Fatalf("vertex %d: %v, want %v", i, seeded.V[i], want.V[i])
		}
	}
	clipped := cl.Clip(seeded, Bisector(Pt(3, 5), Pt(7, 5)))
	if clipped.IsEmpty() || clipped.Bounds().MaxX > 5+Eps {
		t.Fatalf("clip of seeded ring wrong: %v", clipped)
	}
}
