package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(4, 5, 0, 1) // corners given in reversed order
	if r.MinX != 0 || r.MinY != 1 || r.MaxX != 4 || r.MaxY != 5 {
		t.Fatalf("NewRect normalization failed: %v", r)
	}
	if got := r.Area(); got != 16 {
		t.Errorf("Area = %v, want 16", got)
	}
	if got := r.Margin(); got != 8 {
		t.Errorf("Margin = %v, want 8", got)
	}
	if got := r.Center(); !got.Eq(Pt(2, 3)) {
		t.Errorf("Center = %v, want (2,3)", got)
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	if e.Area() != 0 {
		t.Error("empty rect area should be 0")
	}
	r := NewRect(0, 0, 1, 1)
	if got := e.Union(r); got != r {
		t.Errorf("EmptyRect ∪ r = %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r ∪ EmptyRect = %v, want %v", got, r)
	}
	if e.Intersects(r) {
		t.Error("empty rect should intersect nothing")
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	cases := []struct {
		b    Rect
		want bool
	}{
		{NewRect(1, 1, 3, 3), true},
		{NewRect(2, 2, 3, 3), true}, // touching at a corner counts
		{NewRect(3, 3, 4, 4), false},
		{NewRect(0.5, 0.5, 1.5, 1.5), true}, // contained
		{NewRect(-1, 0, 0, 2), true},        // touching along an edge
		{NewRect(0, 3, 2, 4), false},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects not symmetric for %v", c.b)
		}
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if !r.Contains(Pt(5, 5)) || !r.Contains(Pt(0, 0)) || !r.Contains(Pt(10, 10)) {
		t.Error("closed rect should contain interior and boundary")
	}
	if r.Contains(Pt(10.5, 5)) || r.Contains(Pt(-0.5, 5)) {
		t.Error("rect should not contain outside points")
	}
	if !r.ContainsRect(NewRect(1, 1, 9, 9)) {
		t.Error("should contain inner rect")
	}
	if r.ContainsRect(NewRect(1, 1, 11, 9)) {
		t.Error("should not contain overflowing rect")
	}
	if !r.ContainsRect(EmptyRect()) {
		t.Error("every rect contains the empty rect")
	}
}

func TestRectMinDist(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(1, 1), 0},           // inside
		{Pt(0, 0), 0},           // corner
		{Pt(5, 1), 3},           // right side
		{Pt(1, -2), 2},          // below
		{Pt(5, 6), 5},           // diagonal: 3-4-5 triangle
		{Pt(-3, -4), 5},         // diagonal other corner
		{Pt(2, 2.0001), 0.0001}, // just above
	}
	for _, c := range cases {
		if got := r.MinDist(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("MinDist(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectMinDistLowerBoundsPointDist(t *testing.T) {
	// mindist(e, p) must lower-bound dist(q, p) for every q in e — the
	// property Lemma 2 relies on.
	f := func(x1, y1, x2, y2, px, py, qx, qy float64) bool {
		r := NewRect(clampCoord(x1), clampCoord(y1), clampCoord(x2), clampCoord(y2))
		p := Pt(clampCoord(px), clampCoord(py))
		// Map q into the rectangle.
		q := Pt(
			r.MinX+math.Mod(math.Abs(clampCoord(qx)), r.Width()+1e-9),
			r.MinY+math.Mod(math.Abs(clampCoord(qy)), r.Height()+1e-9),
		)
		if !r.Contains(q) {
			return true // degenerate rect; skip
		}
		return r.MinDist(p) <= p.Dist(q)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectMinDistRect(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	cases := []struct {
		b    Rect
		want float64
	}{
		{NewRect(0.5, 0.5, 2, 2), 0},
		{NewRect(2, 0, 3, 1), 1},
		{NewRect(4, 5, 6, 7), 5}, // dx=3, dy=4
	}
	for _, c := range cases {
		if got := a.MinDistRect(c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("MinDistRect(%v) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestRectMaxDist(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	if got := r.MaxDist(Pt(0, 0)); math.Abs(got-2*math.Sqrt2) > 1e-9 {
		t.Errorf("MaxDist corner = %v", got)
	}
	if got := r.MaxDist(Pt(1, 1)); math.Abs(got-math.Sqrt2) > 1e-9 {
		t.Errorf("MaxDist center = %v", got)
	}
}

func TestRectUnionCommutativeCoversBoth(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 float64) bool {
		a := NewRect(clampCoord(x1), clampCoord(y1), clampCoord(x2), clampCoord(y2))
		b := NewRect(clampCoord(x3), clampCoord(y3), clampCoord(x4), clampCoord(y4))
		u := a.Union(b)
		return u == b.Union(a) && u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectEnlargement(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	if got := a.Enlargement(NewRect(1, 1, 2, 2)); got != 0 {
		t.Errorf("no enlargement needed, got %v", got)
	}
	if got := a.Enlargement(NewRect(0, 0, 4, 2)); math.Abs(got-4) > 1e-12 {
		t.Errorf("Enlargement = %v, want 4", got)
	}
}

func TestRectCornersSidesPolygon(t *testing.T) {
	r := NewRect(0, 0, 2, 1)
	c := r.Corners()
	want := [4]Point{{0, 0}, {2, 0}, {2, 1}, {0, 1}}
	if c != want {
		t.Errorf("Corners = %v", c)
	}
	for i, s := range r.Sides() {
		if s.A != c[i] || s.B != c[(i+1)%4] {
			t.Errorf("side %d = %v, want %v→%v", i, s, c[i], c[(i+1)%4])
		}
	}
	poly := r.Polygon()
	if !poly.IsConvexCCW() {
		t.Error("rect polygon should be convex CCW")
	}
	if math.Abs(poly.Area()-r.Area()) > 1e-12 {
		t.Errorf("polygon area %v != rect area %v", poly.Area(), r.Area())
	}
}
