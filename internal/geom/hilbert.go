package geom

// HilbertOrder is the order of the discrete grid used to linearize the
// plane: coordinates are quantized to a 2^HilbertOrder × 2^HilbertOrder
// grid before computing Hilbert values. Order 16 gives ~0.15 distance
// resolution on the paper's [0,10000]² domain — far below the typical
// point spacing of the experimental datasets.
const HilbertOrder = 16

const hilbertSide = 1 << HilbertOrder

// HilbertD2XY converts a distance d along the Hilbert curve of the given
// order into grid coordinates (x, y). Classic bit-twiddling construction
// (Butz's algorithm, the reference the paper cites for Hilbert ordering).
func HilbertD2XY(order uint, d uint64) (x, y uint32) {
	var rx, ry uint64
	t := d
	for s := uint64(1); s < 1<<order; s <<= 1 {
		rx = 1 & (t / 2)
		ry = 1 & (t ^ rx)
		x32, y32 := hilbertRot(s, uint64(x), uint64(y), rx, ry)
		x, y = uint32(x32), uint32(y32)
		x += uint32(s * rx)
		y += uint32(s * ry)
		t /= 4
	}
	return x, y
}

// HilbertXY2D converts grid coordinates into the distance along the Hilbert
// curve of the given order.
func HilbertXY2D(order uint, x, y uint32) uint64 {
	var d uint64
	xx, yy := uint64(x), uint64(y)
	for s := uint64(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint64
		if xx&s > 0 {
			rx = 1
		}
		if yy&s > 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		xx, yy = hilbertRot(s, xx, yy, rx, ry)
	}
	return d
}

// hilbertRot rotates/flips a quadrant appropriately.
func hilbertRot(s, x, y, rx, ry uint64) (uint64, uint64) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// HilbertValue maps a point inside domain to its Hilbert curve distance.
// Points outside the domain are clamped. FM-CIJ/PM-CIJ/NM-CIJ use Hilbert
// values of entry centroids to order depth-first leaf visits so that
// consecutively processed groups are close in space (Section III-C).
func HilbertValue(p Point, domain Rect) uint64 {
	w, h := domain.Width(), domain.Height()
	if w <= 0 || h <= 0 {
		return 0
	}
	fx := (p.X - domain.MinX) / w
	fy := (p.Y - domain.MinY) / h
	x := clampGrid(fx)
	y := clampGrid(fy)
	return HilbertXY2D(HilbertOrder, x, y)
}

func clampGrid(f float64) uint32 {
	v := int64(f * hilbertSide)
	if v < 0 {
		v = 0
	}
	if v >= hilbertSide {
		v = hilbertSide - 1
	}
	return uint32(v)
}
