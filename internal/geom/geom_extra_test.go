package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Second-round property tests: algebraic laws the CIJ algorithms lean on
// implicitly.

func TestIntersectionCommutativeArea(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		a, b := randConvex(rng), randConvex(rng)
		ab := a.Intersection(b).Area()
		ba := b.Intersection(a).Area()
		if math.Abs(ab-ba) > 1e-6*(1+ab) {
			t.Fatalf("intersection area not commutative: %v vs %v", ab, ba)
		}
	}
}

func TestIntersectionSubsetOfBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 300; i++ {
		a, b := randConvex(rng), randConvex(rng)
		inter := a.Intersection(b)
		if inter.IsEmpty() {
			continue
		}
		if inter.Area() > a.Area()+1e-6 || inter.Area() > b.Area()+1e-6 {
			t.Fatalf("intersection larger than an operand")
		}
		for _, v := range inter.V {
			if !a.Contains(v) || !b.Contains(v) {
				t.Fatalf("intersection vertex %v escapes an operand", v)
			}
		}
	}
}

func TestIntersectionIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		a := randConvex(rng)
		self := a.Intersection(a)
		if math.Abs(self.Area()-a.Area()) > 1e-6*(1+a.Area()) {
			t.Fatalf("A ∩ A area %v != A area %v", self.Area(), a.Area())
		}
	}
}

func TestClipContainmentProperty(t *testing.T) {
	// Every point of the clipped polygon must lie in the original.
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 300; i++ {
		g := randConvex(rng)
		pi := Pt(rng.Float64()*10, rng.Float64()*10)
		pj := Pt(rng.Float64()*10, rng.Float64()*10)
		if pi.Eq(pj) {
			continue
		}
		c := g.ClipBisector(pi, pj)
		for _, v := range c.V {
			if !g.Contains(v) {
				t.Fatalf("clip vertex %v escapes the source polygon", v)
			}
		}
	}
}

func TestCentroidInsidePolygon(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for i := 0; i < 300; i++ {
		g := randConvex(rng)
		if !g.Contains(g.Centroid()) {
			t.Fatalf("centroid %v outside its convex polygon %v", g.Centroid(), g)
		}
	}
}

func TestBoundsCoversVertices(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randConvex(rng)
		b := g.Bounds()
		for _, v := range g.V {
			if !b.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClipperMatchesPolygonClip(t *testing.T) {
	// The buffer-reusing Clipper must produce the same polygons as the
	// allocating Clip across a chain of clips.
	rng := rand.New(rand.NewSource(26))
	var cl Clipper
	ref := NewRect(0, 0, 10, 10).Polygon()
	fast := NewRect(0, 0, 10, 10).Polygon()
	for i := 0; i < 200; i++ {
		pi := Pt(rng.Float64()*10, rng.Float64()*10)
		pj := Pt(rng.Float64()*10, rng.Float64()*10)
		if pi.Eq(pj) {
			continue
		}
		h := Bisector(pi, pj)
		ref = ref.Clip(h)
		fast = cl.Clip(fast, h)
		if ref.IsEmpty() != fast.IsEmpty() {
			t.Fatalf("iteration %d: emptiness diverged", i)
		}
		if ref.IsEmpty() {
			ref = NewRect(0, 0, 10, 10).Polygon()
			fast = NewRect(0, 0, 10, 10).Polygon()
			continue
		}
		if len(ref.V) != len(fast.V) {
			t.Fatalf("iteration %d: vertex count %d vs %d", i, len(ref.V), len(fast.V))
		}
		for j := range ref.V {
			if !ref.V[j].Eq(fast.V[j]) {
				t.Fatalf("iteration %d vertex %d: %v vs %v", i, j, ref.V[j], fast.V[j])
			}
		}
		// fast aliases clipper storage; hand the next iteration a fresh
		// polygon only through the clipper (that is the supported usage).
	}
}

func TestHalfplaneScaleCached(t *testing.T) {
	h := Bisector(Pt(0, 0), Pt(3, 4))
	if h.Scale <= 0 {
		t.Fatal("Bisector should cache Scale")
	}
	// |N| = 2*5 = 10.
	if math.Abs(h.Scale-10) > 1e-12 {
		t.Errorf("Scale = %v, want 10", h.Scale)
	}
	// Literal halfplanes compute on demand and still work.
	lit := Halfplane{N: Pt(1, 0), C: 5}
	if !lit.Contains(Pt(4, 0)) || lit.Contains(Pt(6, 0)) {
		t.Error("literal halfplane sidedness broken")
	}
}

func TestDegeneratePolygons(t *testing.T) {
	// Fewer than 3 vertices: empty semantics everywhere.
	for _, g := range []Polygon{
		{},
		{V: []Point{Pt(1, 1)}},
		{V: []Point{Pt(1, 1), Pt(2, 2)}},
	} {
		if !g.IsEmpty() {
			t.Errorf("%v should be empty", g)
		}
		if g.Area() != 0 {
			t.Errorf("%v area should be 0", g)
		}
		if g.Contains(Pt(1, 1)) {
			t.Errorf("%v should contain nothing", g)
		}
		if g.Intersects(NewRect(0, 0, 5, 5).Polygon()) {
			t.Errorf("%v should intersect nothing", g)
		}
	}
	// Zero-area triangle (collinear vertices): area 0, still not empty by
	// vertex count; Intersection with anything has ~zero area.
	flat := Polygon{V: []Point{Pt(0, 0), Pt(5, 0), Pt(10, 0)}}
	if flat.Area() > 1e-12 {
		t.Errorf("flat polygon area = %v", flat.Area())
	}
}

func TestRegularPolygonGeometry(t *testing.T) {
	// A regular hexagon of circumradius r has area (3√3/2)r².
	c := Pt(100, 100)
	r := 10.0
	var vs []Point
	for i := 0; i < 6; i++ {
		ang := 2 * math.Pi * float64(i) / 6
		vs = append(vs, Pt(c.X+r*math.Cos(ang), c.Y+r*math.Sin(ang)))
	}
	hex := Polygon{V: vs}
	want := 3 * math.Sqrt(3) / 2 * r * r
	if math.Abs(hex.Area()-want) > 1e-9 {
		t.Errorf("hexagon area = %v, want %v", hex.Area(), want)
	}
	if !hex.Centroid().Eq(c) {
		t.Errorf("hexagon centroid = %v, want %v", hex.Centroid(), c)
	}
	if !hex.IsConvexCCW() {
		t.Error("hexagon should be convex CCW")
	}
}
