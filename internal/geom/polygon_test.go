package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func unitSquare() Polygon { return NewRect(0, 0, 10, 10).Polygon() }

func TestBisectorSidedness(t *testing.T) {
	// Every location in ⊥pi(pi,pj) must be at least as close to pi as pj,
	// and vice versa — checked on random triples.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		pi := Pt(rng.Float64()*10000, rng.Float64()*10000)
		pj := Pt(rng.Float64()*10000, rng.Float64()*10000)
		a := Pt(rng.Float64()*10000, rng.Float64()*10000)
		if pi.Eq(pj) {
			continue
		}
		h := Bisector(pi, pj)
		closerToPi := a.Dist2(pi) <= a.Dist2(pj)
		if h.Contains(a) != closerToPi {
			// Allow near-boundary fuzz.
			if math.Abs(a.Dist(pi)-a.Dist(pj)) > 1e-6 {
				t.Fatalf("bisector sidedness mismatch: pi=%v pj=%v a=%v", pi, pj, a)
			}
		}
	}
}

func TestClipHalfSquare(t *testing.T) {
	// Clip the square by the halfplane x ≤ 5.
	g := unitSquare().Clip(Halfplane{N: Pt(1, 0), C: 5})
	if g.IsEmpty() {
		t.Fatal("clip should not empty the square")
	}
	if math.Abs(g.Area()-50) > 1e-6 {
		t.Errorf("Area = %v, want 50", g.Area())
	}
	if !g.IsConvexCCW() {
		t.Error("clip result should stay convex CCW")
	}
	for _, v := range g.V {
		if v.X > 5+1e-9 {
			t.Errorf("vertex %v escapes the halfplane", v)
		}
	}
}

func TestClipEntirePolygonKept(t *testing.T) {
	g := unitSquare().Clip(Halfplane{N: Pt(1, 0), C: 100})
	if math.Abs(g.Area()-100) > 1e-6 {
		t.Errorf("clip by covering halfplane changed area: %v", g.Area())
	}
}

func TestClipToEmpty(t *testing.T) {
	g := unitSquare().Clip(Halfplane{N: Pt(1, 0), C: -1})
	if !g.IsEmpty() {
		t.Errorf("clip by disjoint halfplane should empty the polygon, got %v", g)
	}
	// Clipping an empty polygon stays empty.
	if got := g.Clip(Halfplane{N: Pt(0, 1), C: 3}); !got.IsEmpty() {
		t.Error("clipping empty polygon should stay empty")
	}
}

func TestClipCorner(t *testing.T) {
	// Cut the corner x+y ≤ 15 off the 10x10 square: removes a right
	// triangle with legs 5, area 12.5.
	g := unitSquare().Clip(Halfplane{N: Pt(1, 1), C: 15})
	if math.Abs(g.Area()-(100-12.5)) > 1e-6 {
		t.Errorf("Area = %v, want 87.5", g.Area())
	}
	if len(g.V) != 5 {
		t.Errorf("corner cut should give 5 vertices, got %d (%v)", len(g.V), g)
	}
}

func TestClipPropertyMonotoneConvex(t *testing.T) {
	// Property: clipping never increases area, keeps convexity/orientation,
	// and every surviving vertex satisfies the halfplane.
	rng := rand.New(rand.NewSource(7))
	g := unitSquare()
	for i := 0; i < 500; i++ {
		pi := Pt(rng.Float64()*10, rng.Float64()*10)
		pj := Pt(rng.Float64()*10, rng.Float64()*10)
		if pi.Eq(pj) {
			continue
		}
		h := Bisector(pi, pj)
		before := g.Area()
		clipped := g.Clip(h)
		if clipped.Area() > before+1e-6 {
			t.Fatalf("clip grew area: %v -> %v", before, clipped.Area())
		}
		if !clipped.IsEmpty() {
			if !clipped.IsConvexCCW() {
				t.Fatalf("clip broke convexity at iter %d: %v", i, clipped)
			}
			for _, v := range clipped.V {
				if h.Side(v) > 1e-5*h.scale() {
					t.Fatalf("vertex %v outside halfplane (side=%v)", v, h.Side(v))
				}
			}
		}
		// Keep clipping the same polygon only while it stays big enough to
		// be interesting; otherwise restart.
		if clipped.IsEmpty() || clipped.Area() < 1 {
			g = unitSquare()
		} else {
			g = clipped
		}
	}
}

func TestClipBisectorKeepsOwnSide(t *testing.T) {
	g := unitSquare().ClipBisector(Pt(2, 5), Pt(8, 5))
	// Bisector is x=5; pi side is x ≤ 5.
	if math.Abs(g.Area()-50) > 1e-6 {
		t.Errorf("Area = %v, want 50", g.Area())
	}
	if !g.Contains(Pt(2, 5)) {
		t.Error("cell must contain its own site")
	}
	if g.Contains(Pt(8, 5)) {
		t.Error("cell must not contain the other site")
	}
}

func TestPolygonContains(t *testing.T) {
	g := unitSquare()
	if !g.Contains(Pt(5, 5)) || !g.Contains(Pt(0, 0)) || !g.Contains(Pt(10, 5)) {
		t.Error("square should contain interior and boundary points")
	}
	if g.Contains(Pt(10.1, 5)) || g.Contains(Pt(-0.1, -0.1)) {
		t.Error("square should exclude outside points")
	}
}

func TestPolygonArea(t *testing.T) {
	tri := Polygon{V: []Point{Pt(0, 0), Pt(4, 0), Pt(0, 3)}}
	if math.Abs(tri.Area()-6) > 1e-12 {
		t.Errorf("triangle area = %v, want 6", tri.Area())
	}
	if got := (Polygon{}).Area(); got != 0 {
		t.Errorf("empty polygon area = %v", got)
	}
}

func TestPolygonCentroid(t *testing.T) {
	g := unitSquare()
	if got := g.Centroid(); !got.Eq(Pt(5, 5)) {
		t.Errorf("square centroid = %v", got)
	}
	tri := Polygon{V: []Point{Pt(0, 0), Pt(3, 0), Pt(0, 3)}}
	if got := tri.Centroid(); !got.Eq(Pt(1, 1)) {
		t.Errorf("triangle centroid = %v, want (1,1)", got)
	}
}

func TestPolygonIntersects(t *testing.T) {
	a := NewRect(0, 0, 4, 4).Polygon()
	cases := []struct {
		b    Polygon
		want bool
	}{
		{NewRect(2, 2, 6, 6).Polygon(), true},
		{NewRect(5, 5, 6, 6).Polygon(), false},
		{NewRect(4, 0, 8, 4).Polygon(), true}, // shared edge counts
		{NewRect(1, 1, 2, 2).Polygon(), true}, // containment counts
		{Polygon{V: []Point{Pt(5, 2), Pt(8, 0), Pt(8, 4)}}, false},
		{Polygon{V: []Point{Pt(3, 2), Pt(8, 0), Pt(8, 4)}}, true},
	}
	for i, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("case %d: Intersects not symmetric", i)
		}
	}
	if a.Intersects(Polygon{}) || (Polygon{}).Intersects(a) {
		t.Error("empty polygon intersects nothing")
	}
}

func TestPolygonIntersectsRect(t *testing.T) {
	tri := Polygon{V: []Point{Pt(0, 0), Pt(4, 0), Pt(0, 4)}}
	if !tri.IntersectsRect(NewRect(1, 1, 2, 2)) {
		t.Error("triangle should intersect inner rect")
	}
	if tri.IntersectsRect(NewRect(3.5, 3.5, 5, 5)) {
		t.Error("triangle should miss far corner rect")
	}
}

func TestPolygonIntersectionRegion(t *testing.T) {
	a := NewRect(0, 0, 4, 4).Polygon()
	b := NewRect(2, 2, 6, 6).Polygon()
	r := a.Intersection(b)
	if math.Abs(r.Area()-4) > 1e-9 {
		t.Errorf("intersection area = %v, want 4", r.Area())
	}
	bounds := r.Bounds()
	want := NewRect(2, 2, 4, 4)
	if math.Abs(bounds.MinX-want.MinX) > 1e-9 || math.Abs(bounds.MaxX-want.MaxX) > 1e-9 ||
		math.Abs(bounds.MinY-want.MinY) > 1e-9 || math.Abs(bounds.MaxY-want.MaxY) > 1e-9 {
		t.Errorf("intersection bounds = %v, want %v", bounds, want)
	}
	// Disjoint polygons intersect in the empty polygon.
	c := NewRect(10, 10, 12, 12).Polygon()
	if got := a.Intersection(c); !got.IsEmpty() {
		t.Errorf("disjoint intersection = %v, want empty", got)
	}
}

func TestIntersectionConsistentWithIntersects(t *testing.T) {
	// Property: Intersects(a,b) == !a.Intersection(b).IsEmpty() up to
	// boundary-degenerate cases (touching polygons have empty-area
	// intersection). We only assert the implication intersection-nonempty
	// ⇒ intersects.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		a := randConvex(rng)
		b := randConvex(rng)
		inter := a.Intersection(b)
		if !inter.IsEmpty() && inter.Area() > 1e-6 {
			if !a.Intersects(b) {
				t.Fatalf("nonempty intersection but Intersects false:\na=%v\nb=%v", a, b)
			}
		}
		if a.Intersects(b) && inter.IsEmpty() {
			// Only acceptable if the overlap is degenerate (touching).
			// Verify no interior point of a is strictly inside b.
			ca := a.Centroid()
			cb := b.Centroid()
			if b.Contains(ca) && a.Contains(cb) {
				t.Fatalf("contained centroids but empty intersection:\na=%v\nb=%v", a, b)
			}
		}
	}
}

// randConvex generates a random convex polygon by clipping the domain
// square with a few random bisectors around a center point.
func randConvex(rng *rand.Rand) Polygon {
	g := unitSquare()
	c := Pt(rng.Float64()*10, rng.Float64()*10)
	k := 3 + rng.Intn(4)
	for i := 0; i < k && !g.IsEmpty(); i++ {
		other := Pt(rng.Float64()*10, rng.Float64()*10)
		if other.Eq(c) {
			continue
		}
		g = g.ClipBisector(c, other)
	}
	if g.IsEmpty() {
		return unitSquare()
	}
	return g
}

func TestVoronoiCellByDirectClipping(t *testing.T) {
	// Build the Voronoi cell of the center of a 3x3 grid by clipping, then
	// verify it is the expected unit-ish square.
	pts := []Point{}
	for _, x := range []float64{2, 5, 8} {
		for _, y := range []float64{2, 5, 8} {
			pts = append(pts, Pt(x, y))
		}
	}
	center := Pt(5, 5)
	cell := unitSquare()
	for _, p := range pts {
		if p.Eq(center) {
			continue
		}
		cell = cell.ClipBisector(center, p)
	}
	// Cell should be the square [3.5,6.5]² of area 9.
	if math.Abs(cell.Area()-9) > 1e-6 {
		t.Errorf("center cell area = %v, want 9", cell.Area())
	}
	if !cell.Contains(center) {
		t.Error("cell must contain its site")
	}
}

func TestIsConvexCCW(t *testing.T) {
	if (Polygon{V: []Point{Pt(0, 0), Pt(1, 0)}}).IsConvexCCW() {
		t.Error("two points are not a polygon")
	}
	cw := Polygon{V: []Point{Pt(0, 0), Pt(0, 1), Pt(1, 1), Pt(1, 0)}}
	if cw.IsConvexCCW() {
		t.Error("clockwise square should fail CCW check")
	}
	nonConvex := Polygon{V: []Point{Pt(0, 0), Pt(4, 0), Pt(2, 1), Pt(4, 4), Pt(0, 4)}}
	if nonConvex.IsConvexCCW() {
		t.Error("star-like polygon should fail convexity")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := unitSquare()
	c := g.Clone()
	c.V[0] = Pt(99, 99)
	if g.V[0].Eq(Pt(99, 99)) {
		t.Error("Clone must deep-copy vertices")
	}
}

func TestBisectorQuick(t *testing.T) {
	f := func(x1, y1, x2, y2, ax, ay float64) bool {
		pi, pj := Pt(clampCoord(x1), clampCoord(y1)), Pt(clampCoord(x2), clampCoord(y2))
		a := Pt(clampCoord(ax), clampCoord(ay))
		if pi.Dist(pj) < 1e-6 {
			return true
		}
		h := Bisector(pi, pj)
		d := a.Dist(pi) - a.Dist(pj)
		if math.Abs(d) < 1e-6 {
			return true // too close to the boundary to classify
		}
		return h.Contains(a) == (d < 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
