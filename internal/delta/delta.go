// Package delta maintains a common-influence join incrementally under
// point-level mutation. The paper's Lemma 1/2 bound the influence of any
// single point to the region its Voronoi cell can reach, so a localized
// insert, delete or move perturbs only the cells overlapping the changed
// point's old and new cells — everything else of Vor(P) is geometrically
// identical before and after, and so is every join verdict it
// participates in. PairChurn exploits that: instead of recomputing
// CIJ(P', Q) from scratch, it computes exactly which pairs appear and
// disappear, touching O(affected sites) cells instead of O(|P|·|Q|).
//
// Correctness sketch (the internal/check oracle pins it across the full
// adversarial seed matrix):
//
//   - A surviving site p's cell changes between Vor(P) and Vor(P') only
//     if some location's nearest site flipped between p and a changed
//     point. If a location moved OUT of V(p), its new owner must be an
//     inserted point x (two surviving sites cannot swap ownership of a
//     location when neither moved), so the location lies in
//     V_old(p) ∩ V_new(x). Symmetrically, a location that moved INTO
//     V(p) was owned by a deleted point x, so it lies in
//     V_new(p) ∩ V_old(x). Affected sites are therefore exactly those
//     whose old cell overlaps some inserted point's new cell, or whose
//     new cell overlaps some deleted point's old cell — plus the changed
//     points themselves. An update contributes both of its positions.
//   - A cell whose symmetric difference has zero area yields identical
//     intersection areas with every opposite cell, hence identical join
//     verdicts; the screens above (positive-area overlap tests) are
//     therefore complete, not just sound.
//   - Candidate enumeration is the Lemma 1 bound in range-query form:
//     for any location ℓ inside a convex region C, ℓ's nearest site q
//     satisfies dist(ℓ,q) ≤ dist(ℓ,a) for the site a nearest to C's
//     center, and dist(ℓ,a) ≤ max over C's vertices of dist(v,a) =: R by
//     convexity. So every site whose cell meets C lies within R of C's
//     bounding box, and one range search bounds the candidates exactly.
//
// Per affected site the engine recomputes the exact old and new cells
// (voronoi.Workspace.BFVor against the before/after trees) and diffs the
// site's join partners under the exact core.CellsJoinWith predicate, so
// the emitted churn reproduces a full recompute byte-for-byte at the
// pair-set level.
package delta

import (
	"math"
	"sort"

	"cij/internal/core"
	"cij/internal/geom"
	"cij/internal/rtree"
	"cij/internal/storage"
	"cij/internal/voronoi"
)

// Op is the kind of one point-level change.
type Op uint8

const (
	// OpInsert adds a point that did not exist before the mutation.
	OpInsert Op = iota
	// OpDelete removes an existing point.
	OpDelete
	// OpUpdate moves an existing point (same ID, new position).
	OpUpdate
)

// String returns the wire name of the operation.
func (op Op) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	}
	return "unknown"
}

// Change is one point-level mutation of the joined dataset. The engine's
// preconditions mirror how a registry applies a batch: each ID appears at
// most once per batch, deletes and updates name points present in the old
// tree, inserts name points absent from it, and the new tree is exactly
// the old tree with every change applied.
type Change struct {
	Op Op
	ID int64
	// New is the position after the change (insert, update).
	New geom.Point
	// Old is the position before the change (delete, update).
	Old geom.Point
}

// Result is the pair churn of one mutation batch: the pairs that exist
// after but not before (Added) and before but not after (Removed), both
// sorted lexicographically. Affected and Probes are the work metric — how
// many mutated-side cells were recomputed and how many opposite-side
// membership tests ran — the numbers that make "incremental beats
// recompute" measurable per event.
type Result struct {
	Added   []core.Pair
	Removed []core.Pair
	// Affected counts mutated-side sites whose cells were recomputed
	// (changed points included).
	Affected int
	// Probes counts exact join-predicate evaluations against the opposite
	// dataset.
	Probes int
}

// affectedSite tracks where one mutated-side site lives before and after
// the batch. For sites untouched by the batch both positions coincide.
type affectedSite struct {
	id           int64
	oldPt, newPt geom.Point
	inOld, inNew bool
}

// engine bundles the reusable scratch of one PairChurn call.
type engine struct {
	ws     voronoi.Workspace // cell computation (results cloned when retained)
	probe  voronoi.Workspace // candidate-cell computation inside screens
	cl     geom.Clipper      // intersection tests; never aliases ws/probe output
	domain geom.Rect
	probes int
}

// PairChurn computes the join-pair churn caused by mutating one side of
// CIJ(left, right). oldM and newM are the mutated dataset's trees before
// and after the batch; other is the unchanged dataset's tree. mutatedLeft
// reports whether the mutated dataset is the left operand (pairs are
// (mutated, other)) or the right ((other, mutated)). All three trees are
// only read; any handle kind works (paged views, flat views, mutable
// clones).
func PairChurn(oldM, newM, other *rtree.Tree, changes []Change, mutatedLeft bool, domain geom.Rect) Result {
	e := &engine{domain: domain}

	// Phase 1: collect affected mutated-side sites. The changed points
	// seed the map with exact before/after placement; the screens add
	// every survivor whose cell geometry can have changed.
	aff := make(map[int64]*affectedSite, 2*len(changes))
	for _, c := range changes {
		s := &affectedSite{id: c.ID}
		switch c.Op {
		case OpInsert:
			s.newPt, s.inNew = c.New, true
		case OpDelete:
			s.oldPt, s.inOld = c.Old, true
		case OpUpdate:
			s.oldPt, s.newPt, s.inOld, s.inNew = c.Old, c.New, true, true
		}
		aff[c.ID] = s
	}
	mark := func(s voronoi.Site) {
		if _, ok := aff[s.ID]; ok {
			return // a batch ID; seeded above with exact placement
		}
		// Discovered sites survive the batch untouched: present in both
		// trees at the same position.
		aff[s.ID] = &affectedSite{id: s.ID, oldPt: s.Pt, newPt: s.Pt, inOld: true, inNew: true}
	}
	for _, c := range changes {
		if c.Op == OpInsert || c.Op == OpUpdate {
			// Survivors whose OLD cell overlaps the inserted position's NEW
			// cell may have lost territory to it.
			region := e.ws.BFVor(newM, voronoi.Site{ID: c.ID, Pt: c.New}, domain).Clone()
			e.sitesTouching(oldM, region, mark)
		}
		if c.Op == OpDelete || c.Op == OpUpdate {
			// Survivors whose NEW cell overlaps the deleted position's OLD
			// cell may have gained its territory.
			region := e.ws.BFVor(oldM, voronoi.Site{ID: c.ID, Pt: c.Old}, domain).Clone()
			e.sitesTouching(newM, region, mark)
		}
	}

	// Phase 2: per affected site, diff the exact join-partner sets of its
	// old and new cells. Sites are processed in ID order so the emitted
	// churn is deterministic.
	ids := make([]int64, 0, len(aff))
	for id := range aff {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var res Result
	res.Affected = len(ids)
	oldSet := make(map[int64]bool)
	newSet := make(map[int64]bool)
	for _, id := range ids {
		s := aff[id]
		clear(oldSet)
		clear(newSet)
		if s.inOld {
			region := e.ws.BFVor(oldM, voronoi.Site{ID: id, Pt: s.oldPt}, domain).Clone()
			e.joinPartners(other, region, mutatedLeft, oldSet)
		}
		if s.inNew {
			region := e.ws.BFVor(newM, voronoi.Site{ID: id, Pt: s.newPt}, domain).Clone()
			e.joinPartners(other, region, mutatedLeft, newSet)
		}
		for q := range oldSet {
			if !newSet[q] {
				res.Removed = append(res.Removed, orient(id, q, mutatedLeft))
			}
		}
		for q := range newSet {
			if !oldSet[q] {
				res.Added = append(res.Added, orient(id, q, mutatedLeft))
			}
		}
	}
	core.SortPairs(res.Added)
	core.SortPairs(res.Removed)
	res.Probes = e.probes
	return res
}

// orient builds a pair with the mutated site on the configured side.
func orient(mutated, other int64, mutatedLeft bool) core.Pair {
	if mutatedLeft {
		return core.Pair{P: mutated, Q: other}
	}
	return core.Pair{P: other, Q: mutated}
}

// candidates enumerates every site of t whose Voronoi cell can intersect
// the convex region (the Lemma 1 bound in range-query form, see the
// package comment) and hands each to visit together with its exact cell.
// The cell polygon aliases e.probe and is only valid inside visit.
func (e *engine) candidates(t *rtree.Tree, region geom.Polygon, visit func(s voronoi.Site, cell geom.Polygon)) {
	if region.IsEmpty() || t.Root() == storage.InvalidPage {
		return
	}
	b := region.Bounds()
	anchor := t.KNN(b.Center(), 1, nil)
	if len(anchor) == 0 {
		return
	}
	r := math.Sqrt(geom.MaxDist2(region.V, anchor[0].Pt))
	// Widen by a relative epsilon: the bound is exact in real arithmetic,
	// and the slack keeps borderline sites (duplicates of the anchor on
	// the region boundary, degenerate slivers) inside the search box.
	r += r*1e-9 + 1e-9
	search := geom.NewRect(b.MinX-r, b.MinY-r, b.MaxX+r, b.MaxY+r)
	for _, ent := range t.RangeSearch(search) {
		s := voronoi.Site{ID: ent.ID, Pt: ent.Pt}
		visit(s, e.probe.BFVor(t, s, e.domain))
	}
}

// sitesTouching emits every site of t whose cell overlaps region with
// positive area — the affected-site screen.
func (e *engine) sitesTouching(t *rtree.Tree, region geom.Polygon, emit func(voronoi.Site)) {
	e.candidates(t, region, func(s voronoi.Site, cell geom.Polygon) {
		if cell.IsEmpty() {
			return
		}
		if e.cl.Intersect(region, cell).Area() > 0 {
			emit(s)
		}
	})
}

// joinPartners collects into dst the IDs of every site of other whose
// cell joins region under the exact CIJ predicate. regionLeft fixes the
// operand order of the predicate so the verdict is evaluated exactly as a
// full join would evaluate it.
func (e *engine) joinPartners(other *rtree.Tree, region geom.Polygon, regionLeft bool, dst map[int64]bool) {
	e.candidates(other, region, func(s voronoi.Site, cell geom.Polygon) {
		e.probes++
		var joins bool
		if regionLeft {
			joins = core.CellsJoinWith(&e.cl, region, cell)
		} else {
			joins = core.CellsJoinWith(&e.cl, cell, region)
		}
		if joins {
			dst[s.ID] = true
		}
	})
}
