package grid

import (
	"fmt"
	"time"

	"cij/internal/core"
	"cij/internal/geom"
	"cij/internal/obs"
	"cij/internal/voronoi"
)

// Options tunes a grid join.
type Options struct {
	// TargetPerCell is the average tile occupancy the grids are sized for;
	// <= 0 selects the default (48). The result pair set is independent of
	// this value — only the partitioning (and therefore the cost profile)
	// changes, a property the test suite pins.
	TargetPerCell int
	// OnPair, when non-nil, streams every result pair as it is produced
	// (in deterministic tile order on the calling goroutine).
	OnPair func(core.Pair)
	// CollectPairs controls whether Result.Pairs is populated.
	CollectPairs bool
	// Trace, when non-nil, receives per-phase spans: "voronoi" (tagged
	// "p"/"q") for the diagram builds, "replicate" for the PBSM tiling,
	// one "tile" span per non-empty tile tagged "r,c" (folding into the
	// per-phase overflow span past the trace's cap), and an aggregate
	// "join" span. The backend performs no I/O, so spans carry only wall
	// clock and the filter-quality counters. Nil costs nothing.
	Trace *obs.Trace
}

// DefaultOptions mirrors core.DefaultOptions for the grid backend: pairs
// collected, density-derived resolution.
func DefaultOptions() Options {
	return Options{CollectPairs: true}
}

// Join evaluates CIJ(P, Q) with the partitioned in-memory backend and
// returns a result equivalent (as a pair set) to core.NMCIJ over R-trees
// on the same pointsets. No index and no simulated disk are involved:
// both Voronoi diagrams are computed through the uniform grid
// (buildDiagram), cells are replicated into the tiles of a joint grid by
// MBR (the PBSM partitioning step), and each tile joins its resident
// P- and Q-cells with the shared predicate core.CellsJoinWith. A pair
// whose cells straddle tiles is seen by several tiles; the reference-point
// rule in joinTiles reports it exactly once.
//
// Stats mapping: MatCPU is the diagram-building phase, JoinCPU the
// replicate+join phase; both I/O counters stay zero (the backend performs
// none, which is its point). Candidates counts deduplicated cell pairs
// that survived the MBR prefilter, TrueHits the pairs that joined, so
// FalseHitRatio describes the grid filter exactly as it does the NM-CIJ
// filter. PCellsComputed is |P| — the backend materializes Vor(P) in full.
func Join(p, q []geom.Point, domain geom.Rect, opts Options) core.Result {
	start := time.Now()
	var res core.Result
	res.Stats.PCellsComputed = int64(len(p))
	if len(p) == 0 || len(q) == 0 {
		res.Stats.JoinCPU = time.Since(start)
		return res
	}

	tr := opts.Trace
	var ds diagramScratch
	phaseStart := start
	cellsP := buildDiagram(voronoi.MakeSites(p), newTileGrid(domain, len(p), opts.TargetPerCell), &ds)
	if tr.Enabled() {
		// PCells rides the P span only, so the trace total matches
		// Stats.PCellsComputed; the Q diagram reports plain item count.
		now := time.Now()
		tr.Add("voronoi", "p", now.Sub(phaseStart), obs.Counters{PCells: int64(len(p))})
		phaseStart = now
	}
	cellsQ := buildDiagram(voronoi.MakeSites(q), newTileGrid(domain, len(q), opts.TargetPerCell), &ds)
	if tr.Enabled() {
		tr.Add("voronoi", "q", time.Since(phaseStart), obs.Counters{Items: int64(len(q))})
	}
	res.Stats.MatCPU = time.Since(start)

	joinStart := time.Now()
	g := newTileGrid(domain, len(p)+len(q), opts.TargetPerCell)
	repP := replicate(cellsP, g)
	repQ := replicate(cellsQ, g)
	if tr.Enabled() {
		tr.Add("replicate", "", time.Since(joinStart), obs.Counters{Items: int64(g.tiles())})
		phaseStart = time.Now()
	}
	joinTiles(g, cellsP, cellsQ, repP, repQ, opts, &res)
	if tr.Enabled() {
		// Aggregate span over all tiles; its wall overlaps the per-tile
		// spans (which carry the Candidates/TrueHits deltas), so it adds
		// no counters beyond the tile count.
		tr.Add("join", "", time.Since(phaseStart), obs.Counters{Items: int64(g.tiles())})
	}
	res.Stats.JoinCPU = time.Since(joinStart)
	return res
}

// replicate assigns every cell to each tile of g that its MBR overlaps —
// the PBSM replication step, in the same CSR layout as point bucketing.
// Empty cells (possible only for degenerate inputs) are dropped here,
// matching the join predicate, which can never accept them.
func replicate(cells []cellInfo, g tileGrid) buckets {
	b := buckets{start: make([]int32, g.tiles()+1)}
	total := 0
	for i := range cells {
		if cells[i].poly.IsEmpty() {
			continue
		}
		ix0, iy0, ix1, iy1 := g.rangeOf(cells[i].bounds)
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				b.start[iy*g.nx+ix+1]++
				total++
			}
		}
	}
	for t := 1; t < len(b.start); t++ {
		b.start[t] += b.start[t-1]
	}
	b.ids = make([]int32, total)
	next := append([]int32(nil), b.start[:g.tiles()]...)
	for i := range cells {
		if cells[i].poly.IsEmpty() {
			continue
		}
		ix0, iy0, ix1, iy1 := g.rangeOf(cells[i].bounds)
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				t := iy*g.nx + ix
				b.ids[next[t]] = int32(i)
				next[t]++
			}
		}
	}
	return b
}

// joinTiles runs the per-tile joins. Deduplication uses the PBSM
// reference-point rule: a candidate pair is evaluated only in the tile
// containing the bottom-left corner of its MBR intersection
// (max of the MinX/MinY coordinates). That corner lies in both cells'
// replication ranges — rangeOf expands the max sides by the same tilePad
// slack the MBR Intersects tolerance can introduce — so of all tiles that
// see the pair, exactly one owns it, and no cross-tile state is needed.
func joinTiles(g tileGrid, cellsP, cellsQ []cellInfo, repP, repQ buckets, opts Options, res *core.Result) {
	tr := opts.Trace
	var cl geom.Clipper
	for t := 0; t < g.tiles(); t++ {
		ps := repP.ids[repP.start[t]:repP.start[t+1]]
		qs := repQ.ids[repQ.start[t]:repQ.start[t+1]]
		if len(ps) == 0 || len(qs) == 0 {
			continue
		}
		// Per-tile spans only for tiles with work on both sides; a fine
		// grid folds the long tail into the (tile, other) overflow span.
		var tileStart time.Time
		var candBefore, hitsBefore int64
		if tr.Enabled() {
			tileStart = time.Now()
			candBefore, hitsBefore = res.Stats.Candidates, res.Stats.TrueHits
		}
		tx, ty := t%g.nx, t/g.nx
		for _, pi := range ps {
			a := &cellsP[pi]
			for _, qi := range qs {
				b := &cellsQ[qi]
				if !a.bounds.Intersects(b.bounds) {
					continue
				}
				refX := max(a.bounds.MinX, b.bounds.MinX)
				refY := max(a.bounds.MinY, b.bounds.MinY)
				if g.col(refX) != tx || g.row(refY) != ty {
					continue // another tile owns this pair
				}
				res.Stats.Candidates++
				if core.CellsJoinWith(&cl, a.poly, b.poly) {
					res.Stats.TrueHits++
					pair := core.Pair{P: a.site.ID, Q: b.site.ID}
					if opts.CollectPairs {
						res.Pairs = append(res.Pairs, pair)
					}
					if opts.OnPair != nil {
						opts.OnPair(pair)
					}
				}
			}
		}
		if tr.Enabled() {
			tr.Add("tile", fmt.Sprintf("%d,%d", ty, tx), time.Since(tileStart), obs.Counters{
				Candidates: res.Stats.Candidates - candBefore,
				TrueHits:   res.Stats.TrueHits - hitsBefore,
				Items:      1,
			})
		}
	}
}
