package grid

import (
	"math/rand"
	"testing"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/geom"
)

// runBoth computes the grid join and the brute-force oracle on the same
// inputs and fails the test unless the pair sets agree.
func requireMatchesBrute(t *testing.T, name string, p, q []geom.Point, opts Options) core.Result {
	t.Helper()
	res := Join(p, q, dataset.Domain, opts)
	want := core.BruteCIJ(p, q, dataset.Domain)
	if !core.SamePairs(res.Pairs, want) {
		t.Fatalf("%s: grid=%d pairs brute=%d pairs\nmissing=%v\nextra=%v",
			name, len(res.Pairs), len(want),
			core.DiffPairs(want, res.Pairs), core.DiffPairs(res.Pairs, want))
	}
	return res
}

func TestJoinMatchesBruteUniform(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 150, 600} {
		p := dataset.Uniform(n, int64(n))
		q := dataset.Uniform(n, int64(n)+1000)
		requireMatchesBrute(t, "uniform", p, q, DefaultOptions())
	}
}

func TestJoinMatchesBruteClustered(t *testing.T) {
	p := dataset.Clustered(400, 7, 11)
	q := dataset.Clustered(500, 5, 12)
	requireMatchesBrute(t, "clustered", p, q, DefaultOptions())
}

func TestJoinAsymmetricCardinalities(t *testing.T) {
	p := dataset.Uniform(800, 21)
	q := dataset.Uniform(50, 22)
	requireMatchesBrute(t, "800x50", p, q, DefaultOptions())
	requireMatchesBrute(t, "50x800", q, p, DefaultOptions())
}

func TestJoinEmptyInputs(t *testing.T) {
	p := dataset.Uniform(10, 1)
	if res := Join(nil, p, dataset.Domain, DefaultOptions()); len(res.Pairs) != 0 {
		t.Fatalf("empty P joined %d pairs", len(res.Pairs))
	}
	if res := Join(p, nil, dataset.Domain, DefaultOptions()); len(res.Pairs) != 0 {
		t.Fatalf("empty Q joined %d pairs", len(res.Pairs))
	}
}

// TestDedupBoundaryStraddlers is the regression test for the PBSM
// reference-point rule: points are planted right next to tile boundary
// lines at a forced-fine resolution, so nearly every Voronoi cell MBR is
// replicated into several tiles, and any dedup defect shows up as a
// duplicated (or missing) pair in the emitted multiset.
func TestDedupBoundaryStraddlers(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	g := newTileGrid(dataset.Domain, 256, 1) // the resolution a 256-point set gets at TargetPerCell 1
	var p, q []geom.Point
	for i := 0; i < 128; i++ {
		// A point a hair away from a random vertical tile line, and one
		// near a horizontal line; the cell around each straddles the line.
		lineX := dataset.Domain.MinX + float64(rng.Intn(g.nx))*g.cw
		lineY := dataset.Domain.MinY + float64(rng.Intn(g.ny))*g.ch
		off := (rng.Float64() - 0.5) * g.cw * 0.01
		p = append(p, geom.Pt(geom.Clamp(lineX+off, dataset.Domain.MinX, dataset.Domain.MaxX), rng.Float64()*dataset.Domain.MaxY))
		q = append(q, geom.Pt(rng.Float64()*dataset.Domain.MaxX, geom.Clamp(lineY+off, dataset.Domain.MinY, dataset.Domain.MaxY)))
	}

	opts := Options{TargetPerCell: 1, CollectPairs: true}
	var emitted []core.Pair
	opts.OnPair = func(pr core.Pair) { emitted = append(emitted, pr) }
	res := requireMatchesBrute(t, "straddlers", p, q, opts)

	seen := make(map[core.Pair]int)
	for _, pr := range emitted {
		seen[pr]++
		if seen[pr] > 1 {
			t.Fatalf("pair %v emitted %d times: dedup failed", pr, seen[pr])
		}
	}
	if len(emitted) != len(res.Pairs) {
		t.Fatalf("OnPair saw %d pairs, Result.Pairs has %d", len(emitted), len(res.Pairs))
	}
}

// TestResolutionIndependence pins the documented contract that the pair
// set does not depend on the grid resolution: replication and dedup must
// hide the partitioning entirely.
func TestResolutionIndependence(t *testing.T) {
	p := dataset.Clustered(300, 6, 31)
	q := dataset.Uniform(300, 32)
	base := Join(p, q, dataset.Domain, DefaultOptions())
	for _, target := range []int{1, 7, 500} {
		res := Join(p, q, dataset.Domain, Options{TargetPerCell: target, CollectPairs: true})
		if !core.SamePairs(base.Pairs, res.Pairs) {
			t.Fatalf("target %d: %d pairs, default resolution %d", target, len(res.Pairs), len(base.Pairs))
		}
	}
}

func TestDuplicateAndCollinearPoints(t *testing.T) {
	p := dataset.Uniform(60, 77)
	p = append(p, p[:10]...) // exact duplicates within the set
	var q []geom.Point
	for i := 0; i < 40; i++ { // collinear run straight across the domain
		q = append(q, geom.Pt(250*float64(i)+100, 5000))
	}
	q = append(q, p[5]) // duplicate across sets
	requireMatchesBrute(t, "dups+collinear", p, q, DefaultOptions())
}

func TestSkewEstimate(t *testing.T) {
	uni := SkewEstimate(dataset.Uniform(20000, 9), dataset.Domain)
	if uni > 1.5 {
		t.Fatalf("uniform skew estimate %.2f, want ~1", uni)
	}
	clu := SkewEstimate(dataset.Clustered(20000, 12, 9), dataset.Domain)
	if clu < 3 {
		t.Fatalf("clustered skew estimate %.2f, want >> 1", clu)
	}
	if got := SkewEstimate(nil, dataset.Domain); got != 0 {
		t.Fatalf("empty skew = %v, want 0", got)
	}
}

func BenchmarkGridJoinUniform(b *testing.B) {
	p := dataset.Uniform(20000, 1)
	q := dataset.Uniform(20000, 2)
	opts := Options{} // count only
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(p, q, dataset.Domain, opts)
	}
}
