package grid

import (
	"math"

	"cij/internal/geom"
)

// skewTargetPerCell sizes the skew histogram: coarse enough that a
// uniform dataset fills most tiles (expected occupancy ~16), fine enough
// that clustering concentrates mass into few tiles.
const skewTargetPerCell = 16

// SkewEstimate measures the spatial skew of a pointset as the
// Poisson-normalized dispersion of a coarse density histogram:
// sqrt(Var[tile count] / E[tile count]). Uniform data scatters tiles like
// a Poisson process, where variance equals mean, so the estimate sits
// near 1 regardless of cardinality; clustering concentrates points and
// drives it up without bound. The query planner uses it to decide whether
// a join is grid-friendly — uniform tiles keep the per-tile batches (and
// the per-tile join loops) near the target occupancy, while heavy skew
// piles thousands of points into single tiles and degrades the backend
// toward its quadratic worst case.
func SkewEstimate(pts []geom.Point, domain geom.Rect) float64 {
	if len(pts) == 0 {
		return 0
	}
	g := newTileGrid(domain, len(pts), skewTargetPerCell)
	counts := make([]int32, g.tiles())
	for i := range pts {
		counts[g.tileOf(pts[i])]++
	}
	mean := float64(len(pts)) / float64(len(counts))
	var ss float64
	for _, c := range counts {
		d := float64(c) - mean
		ss += d * d
	}
	variance := ss / float64(len(counts))
	return math.Sqrt(variance / mean)
}
