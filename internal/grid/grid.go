package grid

import (
	"math"

	"cij/internal/geom"
)

const (
	// defaultTargetPerCell sizes the grid from data density: the tile side
	// count is chosen so that an average tile holds about this many points.
	// Small enough that per-tile work stays near-linear, large enough that
	// a tile's batch amortizes the ring expansion over many cells.
	defaultTargetPerCell = 48
	// maxSide caps the tile count: beyond ~10⁶ points the per-tile batches
	// stay at the target size by capping the resolution instead of growing
	// the tile table without bound.
	maxSide = 512
	// tilePad expands tile rectangles used in geometric predicates, so that
	// the floating-point residue of bucketing (a point whose computed tile
	// index and recomputed coordinate disagree in the last ulp) can never
	// make a covering test miss the point. Domain coordinates are ~1e4, so
	// geom.Eps (1e-7) dominates any such residue by several orders.
	tilePad = geom.Eps
)

// tileGrid is a uniform nx×ny tiling of the domain rectangle. Points are
// bucketed by truncating their offset from the domain origin; out-of-range
// indices clamp to the edge tiles, so every point of the (closed) domain
// lands in exactly one tile.
type tileGrid struct {
	domain geom.Rect
	nx, ny int
	cw, ch float64 // tile width / height
}

// newTileGrid sizes a grid for n points at the given average tile
// occupancy (<= 0 selects defaultTargetPerCell).
func newTileGrid(domain geom.Rect, n, targetPerCell int) tileGrid {
	if targetPerCell <= 0 {
		targetPerCell = defaultTargetPerCell
	}
	side := int(math.Sqrt(float64(n) / float64(targetPerCell)))
	if side < 1 {
		side = 1
	}
	if side > maxSide {
		side = maxSide
	}
	g := tileGrid{domain: domain, nx: side, ny: side}
	g.cw = domain.Width() / float64(side)
	g.ch = domain.Height() / float64(side)
	// Degenerate domains (zero extent) collapse to one tile per axis.
	if g.cw <= 0 {
		g.nx, g.cw = 1, math.Max(domain.Width(), 1)
	}
	if g.ch <= 0 {
		g.ny, g.ch = 1, math.Max(domain.Height(), 1)
	}
	return g
}

// tiles returns the tile count.
func (g tileGrid) tiles() int { return g.nx * g.ny }

// col returns the clamped column index of coordinate x.
func (g tileGrid) col(x float64) int {
	i := int((x - g.domain.MinX) / g.cw)
	if i < 0 {
		return 0
	}
	if i >= g.nx {
		return g.nx - 1
	}
	return i
}

// row returns the clamped row index of coordinate y.
func (g tileGrid) row(y float64) int {
	i := int((y - g.domain.MinY) / g.ch)
	if i < 0 {
		return 0
	}
	if i >= g.ny {
		return g.ny - 1
	}
	return i
}

// tileOf returns the linear tile index of point p.
func (g tileGrid) tileOf(p geom.Point) int { return g.row(p.Y)*g.nx + g.col(p.X) }

// tileRect returns a rectangle covering every point bucketed into tile
// (ix, iy), padded by tilePad so the cover survives bucketing round-off.
// It is the rectangle the Lemma 2 tile test (voronoi.CanRefineMBR) runs
// against, so it must never under-cover.
func (g tileGrid) tileRect(ix, iy int) geom.Rect {
	x0 := g.domain.MinX + float64(ix)*g.cw
	y0 := g.domain.MinY + float64(iy)*g.ch
	return geom.Rect{
		MinX: x0 - tilePad, MinY: y0 - tilePad,
		MaxX: x0 + g.cw + tilePad, MaxY: y0 + g.ch + tilePad,
	}
}

// rangeOf returns the inclusive tile index range covered by rectangle r
// expanded by tilePad on the max sides — the replication range of a cell
// MBR. The expansion guarantees that the reference point of any MBR pair
// that Intersects within geom.Eps tolerance still falls inside both
// cells' replication ranges (see the dedup discussion in join.go).
func (g tileGrid) rangeOf(r geom.Rect) (ix0, iy0, ix1, iy1 int) {
	return g.col(r.MinX), g.row(r.MinY), g.col(r.MaxX + tilePad), g.row(r.MaxY + tilePad)
}
