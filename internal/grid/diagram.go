package grid

import (
	"math"

	"cij/internal/geom"
	"cij/internal/voronoi"
)

// cellInfo is one computed Voronoi cell as the join phase consumes it: the
// site, its exact cell (vertices owned by the diagram arena) and the
// cell's MBR, precomputed because the partitioned join reads it many times
// (replication, the per-pair prefilter, the dedup reference point).
type cellInfo struct {
	site   voronoi.Site
	poly   geom.Polygon
	bounds geom.Rect
}

// buckets is a CSR layout of site indices grouped by tile: the sites of
// tile t are ids[start[t]:start[t+1]]. Built with a counting sort — two
// passes, no per-tile slice headers.
type buckets struct {
	start []int32
	ids   []int32
}

// bucketSites groups sites by their grid tile.
func bucketSites(sites []voronoi.Site, g tileGrid) buckets {
	b := buckets{
		start: make([]int32, g.tiles()+1),
		ids:   make([]int32, len(sites)),
	}
	for i := range sites {
		b.start[g.tileOf(sites[i].Pt)+1]++
	}
	for t := 1; t < len(b.start); t++ {
		b.start[t] += b.start[t-1]
	}
	next := append([]int32(nil), b.start[:g.tiles()]...)
	for i := range sites {
		t := g.tileOf(sites[i].Pt)
		b.ids[next[t]] = int32(i)
		next[t]++
	}
	return b
}

// diagramScratch is the reusable state of grid diagram computation,
// mirroring voronoi.Workspace for the tree traversals: one clipper and one
// circumradius per batch member, reused across tiles so the steady-state
// loop allocates only when a tile exceeds every previous tile's occupancy.
// Finished cells are copied into the arena (a grow-only vertex store; a
// growth reallocation strands the old backing array, which previously
// placed polygons keep alive, so placements never move).
type diagramScratch struct {
	clips []geom.Clipper
	cells []geom.Polygon
	rad2  []float64
	done  []bool
	arena []geom.Point
}

// ensure grows the per-member pools to at least n entries.
func (ds *diagramScratch) ensure(n int) {
	for len(ds.clips) < n {
		ds.clips = append(ds.clips, geom.Clipper{})
	}
	for cap(ds.cells) < n {
		ds.cells = append(ds.cells[:cap(ds.cells)], geom.Polygon{})
	}
	ds.cells = ds.cells[:cap(ds.cells)]
	for cap(ds.rad2) < n {
		ds.rad2 = append(ds.rad2[:cap(ds.rad2)], 0)
	}
	ds.rad2 = ds.rad2[:cap(ds.rad2)]
	for cap(ds.done) < n {
		ds.done = append(ds.done[:cap(ds.done)], false)
	}
	ds.done = ds.done[:cap(ds.done)]
}

// place copies a vertex ring into the arena and returns the arena-owned
// copy, capped so later placements cannot overwrite it.
func (ds *diagramScratch) place(vs []geom.Point) []geom.Point {
	n := len(ds.arena)
	ds.arena = append(ds.arena, vs...)
	return ds.arena[n:len(ds.arena):len(ds.arena)]
}

// buildDiagram computes the exact Voronoi cell of every site with the
// uniform-grid analogue of the paper's batch algorithm (Algorithm 2): the
// sites of each tile form one batch whose cells are refined concurrently
// while tiles are visited in rings of increasing Chebyshev distance from
// the batch's home tile — the grid replacement for the best-first R-tree
// traversal. Pruning reuses the exact lemmas of the tree algorithms:
// voronoi.CanRefineMBR skips a whole tile (Lemma 2 with the tile rectangle
// as the MBR), voronoi.CanRefinePoint skips individual sites (Lemma 1),
// and the ring loop stops for a member as soon as every unvisited tile
// lies at least twice the member's circumradius away — the same triangle
// inequality that powers the tree prefilter, so both architectures clip
// exactly the same refining sites and produce the same cells.
//
// The returned cells are indexed by site position and own their vertices
// (in ds.arena); ds is reusable across calls.
func buildDiagram(sites []voronoi.Site, g tileGrid, ds *diagramScratch) []cellInfo {
	out := make([]cellInfo, len(sites))
	if len(sites) == 0 {
		return out
	}
	b := bucketSites(sites, g)

	for ty := 0; ty < g.ny; ty++ {
		for tx := 0; tx < g.nx; tx++ {
			home := ty*g.nx + tx
			members := b.ids[b.start[home]:b.start[home+1]]
			if len(members) == 0 {
				continue
			}
			ds.refineBatch(sites, b, g, tx, ty, members)
			for mi, idx := range members {
				poly := geom.Polygon{V: ds.place(ds.cells[mi].V)}
				out[idx] = cellInfo{site: sites[idx], poly: poly, bounds: poly.Bounds()}
			}
		}
	}
	return out
}

// refineBatch computes the cells of one tile's members into ds.cells,
// expanding rings of tiles around (tx, ty) until every member's cell is
// certified final.
func (ds *diagramScratch) refineBatch(sites []voronoi.Site, b buckets, g tileGrid, tx, ty int, members []int32) {
	ds.ensure(len(members))
	remaining := len(members)
	for mi, idx := range members {
		s := sites[idx]
		ds.cells[mi] = ds.clips[mi].Seed(g.domain)
		ds.rad2[mi] = geom.MaxDist2(ds.cells[mi].V, s.Pt)
		ds.done[mi] = false
	}

	for d := 0; remaining > 0; d++ {
		// Visit the ring of tiles at Chebyshev distance d from home: the
		// bottom and top rows in full, the side columns without the corners
		// already covered by the rows.
		if d == 0 {
			ds.scanTile(sites, b, g, tx, ty, members)
		} else {
			for _, iy := range [2]int{ty - d, ty + d} {
				if iy < 0 || iy >= g.ny {
					continue
				}
				for ix := max(tx-d, 0); ix <= min(tx+d, g.nx-1); ix++ {
					ds.scanTile(sites, b, g, ix, iy, members)
				}
			}
			for _, ix := range [2]int{tx - d, tx + d} {
				if ix < 0 || ix >= g.nx {
					continue
				}
				for iy := max(ty-d+1, 0); iy <= min(ty+d-1, g.ny-1); iy++ {
					ds.scanTile(sites, b, g, ix, iy, members)
				}
			}
		}

		// Termination: all unvisited sites lie outside the visited block
		// of tiles (rings 0..d). A member is final once the nearest face
		// of that block's complement is at least twice its circumradius
		// away — beyond it, Lemma 1's prefilter rejects every site.
		leftOpen, rightOpen := tx-d > 0, tx+d < g.nx-1
		botOpen, topOpen := ty-d > 0, ty+d < g.ny-1
		if !leftOpen && !rightOpen && !botOpen && !topOpen {
			break // the block covers the whole grid: nothing is unvisited
		}
		for mi, idx := range members {
			if ds.done[mi] {
				continue
			}
			s := sites[idx].Pt
			gap := math.Inf(1)
			if leftOpen {
				gap = math.Min(gap, s.X-(g.domain.MinX+float64(tx-d)*g.cw))
			}
			if rightOpen {
				gap = math.Min(gap, g.domain.MinX+float64(tx+d+1)*g.cw-s.X)
			}
			if botOpen {
				gap = math.Min(gap, s.Y-(g.domain.MinY+float64(ty-d)*g.ch))
			}
			if topOpen {
				gap = math.Min(gap, g.domain.MinY+float64(ty+d+1)*g.ch-s.Y)
			}
			gap -= tilePad // bucketing round-off slack
			if gap >= 0 && gap*gap >= 4*ds.rad2[mi] {
				ds.done[mi] = true
				remaining--
			}
		}
	}
}

// scanTile clips every undone member's cell by the refining sites of tile
// (ix, iy).
func (ds *diagramScratch) scanTile(sites []voronoi.Site, b buckets, g tileGrid, ix, iy int, members []int32) {
	t := iy*g.nx + ix
	pts := b.ids[b.start[t]:b.start[t+1]]
	if len(pts) == 0 {
		return
	}
	// Lemma 2 on the tile rectangle: skip the whole tile unless it could
	// refine some undone member.
	trect := g.tileRect(ix, iy)
	refinesAny := false
	for mi, idx := range members {
		if !ds.done[mi] && voronoi.CanRefineMBR(ds.cells[mi].V, sites[idx].Pt, trect, ds.rad2[mi]) {
			refinesAny = true
			break
		}
	}
	if !refinesAny {
		return
	}
	for _, pj := range pts {
		sj := sites[pj]
		for mi, idx := range members {
			if ds.done[mi] {
				continue
			}
			si := sites[idx]
			if sj.ID == si.ID {
				continue
			}
			if voronoi.CanRefinePoint(ds.cells[mi].V, si.Pt, sj.Pt, ds.rad2[mi]) {
				ds.cells[mi] = ds.clips[mi].Clip(ds.cells[mi], geom.Bisector(si.Pt, sj.Pt))
				ds.rad2[mi] = geom.MaxDist2(ds.cells[mi].V, si.Pt)
			}
		}
	}
}
