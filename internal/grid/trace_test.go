package grid

import (
	"testing"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/obs"
)

// TestTraceSumsToStats pins the trace/stats reconciliation for the grid
// backend: per-tile Candidates/TrueHits deltas (including whatever folded
// into the overflow span) sum to the aggregate Stats, PCells rides the
// P-diagram span, and no I/O counter ever appears — the backend performs
// none.
func TestTraceSumsToStats(t *testing.T) {
	p := dataset.Clustered(700, 6, 51)
	q := dataset.Uniform(600, 52)

	opts := DefaultOptions()
	opts.Trace = obs.NewTrace()
	res := Join(p, q, dataset.Domain, opts)
	if len(res.Pairs) == 0 {
		t.Fatal("no pairs")
	}

	total := opts.Trace.Total()
	if total.Candidates != res.Stats.Candidates || total.TrueHits != res.Stats.TrueHits {
		t.Fatalf("trace filter counters %+v != stats %+v", total, res.Stats)
	}
	if total.PCells != res.Stats.PCellsComputed {
		t.Fatalf("trace p-cells %d != stats %d", total.PCells, res.Stats.PCellsComputed)
	}
	if total.PagesRead != 0 || total.PagesWritten != 0 || total.LogicalReads != 0 {
		t.Fatalf("grid trace reported I/O: %+v", total)
	}

	phases := map[string]bool{}
	for _, sp := range opts.Trace.Spans() {
		phases[sp.Phase] = true
	}
	for _, want := range []string{"voronoi", "replicate", "tile", "join"} {
		if !phases[want] {
			t.Fatalf("missing phase %q in %v", want, phases)
		}
	}
}

// TestTraceDoesNotPerturbResult: the traced pair set and counters equal
// the untraced ones.
func TestTraceDoesNotPerturbResult(t *testing.T) {
	p := dataset.Uniform(500, 61)
	q := dataset.Clustered(500, 5, 62)

	plain := Join(p, q, dataset.Domain, DefaultOptions())
	opts := DefaultOptions()
	opts.Trace = obs.NewTrace()
	traced := Join(p, q, dataset.Domain, opts)
	if !core.SamePairs(plain.Pairs, traced.Pairs) {
		t.Fatal("tracing changed the grid pair set")
	}
	if plain.Stats.Candidates != traced.Stats.Candidates || plain.Stats.TrueHits != traced.Stats.TrueHits {
		t.Fatal("tracing perturbed grid counters")
	}
}
