// Package grid is the partitioned in-memory CIJ backend: a second
// execution architecture for the common influence join that uses no
// R-tree, no page buffer and no simulated disk. Where the paper's NM/PM/FM
// algorithms are index-driven — their cost model is page accesses — this
// backend assumes both pointsets fit in RAM (they always do in this
// module) and trades index traversal for a uniform grid in the style of
// the Partition Based Spatial-Merge join (PBSM, Patel & DeWitt) and its
// in-memory descendants (Tsitsigkos et al., "Parallel In-Memory Evaluation
// of Spatial Joins"; Kipf et al., "Adaptive Geospatial Joins for Modern
// Hardware").
//
// # Partitioning
//
// Each pointset is bucketed into a uniform nx×ny grid over the domain,
// with the resolution derived from data density: nx = ny =
// sqrt(n / targetPerCell), so an average tile holds targetPerCell points
// regardless of cardinality. Three grids exist per join — one per input
// for diagram computation, one joint grid (sized from |P|+|Q|) for the
// join phase.
//
// # Diagram computation
//
// The Voronoi cells of each input are computed per tile: a tile's sites
// form one batch (the grid analogue of a leaf batch in Algorithm 2 of the
// paper) whose cells are refined concurrently while surrounding tiles are
// visited in rings of increasing Chebyshev distance. Pruning reuses the
// paper's lemmas verbatim through voronoi.CanRefineMBR (a whole tile
// cannot refine any member, Lemma 2 with the tile rectangle in place of a
// subtree MBR) and voronoi.CanRefinePoint (Lemma 1 per site), and a batch
// member stops expanding once every unvisited tile lies at least twice
// its circumradius away — the same triangle-inequality bound behind the
// tree traversal's O(1) prefilter. Per-member clippers and radii live in
// a reusable diagramScratch mirroring voronoi.Workspace, so the hot loop
// allocates only when a tile's occupancy exceeds every previous tile's.
//
// # Replication and deduplication
//
// Computed cells are replicated into every joint-grid tile their MBR
// overlaps (the PBSM spatial-merge step: a Voronoi cell is an extended
// object even though its site is a point, so boundary-straddling cells
// are candidates in several tiles). Each tile then joins its resident
// P-cells against its Q-cells — MBR prefilter, then the exact
// core.CellsJoinWith predicate shared with every other algorithm, so the
// pair verdicts are bit-identical. Because replication makes a
// straddling pair visible to several tiles, the join applies the PBSM
// reference-point rule: the pair is evaluated only in the tile containing
// the bottom-left corner of its MBR intersection, which exactly one tile
// owns. Deduplication therefore costs two comparisons per candidate and
// no cross-tile state.
//
// # Where it wins, where it loses
//
// With near-uniform density every phase is linear in n and allocation
// light, and the backend beats the tree algorithms on wall clock (see
// cijbench -exp grid, which records the crossover against NM-CIJ in
// BENCH_grid.json). Under heavy skew a single tile can hold thousands of
// points, and the per-tile batches degrade toward the quadratic brute
// force; SkewEstimate quantifies this, and the query planner
// (internal/service) uses it to route skewed joins to the tree-based
// algorithms instead.
package grid
