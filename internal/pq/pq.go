// Package pq provides the typed best-first priority queue shared by every
// best-first R-tree traversal of the CIJ algorithms: BF-VOR (Algorithm 1),
// the batch Voronoi computation (Algorithm 2) and the batch conditional
// filter of NM-CIJ (Algorithm 5).
//
// It replaces the container/heap-based queues those traversals used to
// duplicate. container/heap moves items through interface{} values, which
// boxes every Push and Pop on the heap — with queue items of ~100 bytes
// that was two heap allocations per visited entry, millions per join.
// Queue stores items in a plain typed slice, so after the backing array
// has grown to the traversal's high-water mark, Push and Pop allocate
// nothing (guarded by TestQueueZeroAllocWarm).
//
// Items carry the point-tree projection of an rtree.Entry (id, point,
// MBR, child) rather than the full Entry: the CIJ traversals only ever
// run over point trees, and dropping the polygon field shrinks the item
// from 112 to 80 bytes — sift operations move whole items, so item size
// is the constant factor of every heap operation.
//
// A Queue is owned by exactly one traversal at a time but is meant to be
// reused across calls: Reset empties it while retaining capacity, so a
// batch pipeline processing hundreds of leaves pays the growth cost once.
package pq

import (
	"cij/internal/geom"
	"cij/internal/rtree"
	"cij/internal/storage"
)

// Item is one prioritized R-tree entry: the entry's point-tree fields,
// whether it came from a leaf node, and its priority key (squared mindist
// from the traversal's anchor point).
//
// The item is deliberately small (56 bytes): sift operations move whole
// items, so item size is the constant factor of every heap operation. Two
// representations are collapsed away: a leaf point's location is its
// degenerate MBR (point trees store MBR = RectFromPoint(pt) exactly), so
// Pt is derived rather than stored, and the object-id and child-page
// fields — never live at the same time — share the Ref slot.
type Item struct {
	Key  float64
	Ref  int64     // leaf entries: object id; internal entries: child page
	MBR  geom.Rect // bounding rectangle
	Leaf bool
}

// Pt returns the indexed point of a leaf entry (the MBR's min corner,
// which for point entries is the point itself).
func (it Item) Pt() geom.Point { return geom.Point{X: it.MBR.MinX, Y: it.MBR.MinY} }

// Child returns the child page of an internal entry.
func (it Item) Child() storage.PageID { return storage.PageID(it.Ref) }

// Queue is a growable binary min-heap of Items ordered by Key. The zero
// value is an empty queue ready for use. Queue is not safe for concurrent
// use; give each goroutine its own.
type Queue struct {
	a []Item
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.a) }

// Reset empties the queue, retaining the backing array for reuse.
func (q *Queue) Reset() { q.a = q.a[:0] }

// Push inserts one item.
func (q *Queue) Push(it Item) {
	q.a = append(q.a, it)
	q.up(len(q.a) - 1)
}

// PushNode bulk-inserts every entry of node n, keyed by the squared
// mindist of its MBR from anchor — the sibling-expansion step shared by
// all best-first traversals ("insert all entries of node(e) into H").
func (q *Queue) PushNode(n *rtree.Node, anchor geom.Point) {
	for i := range n.Entries {
		e := &n.Entries[i]
		ref := e.ID
		if !n.Leaf {
			ref = int64(e.Child)
		}
		q.a = append(q.a, Item{
			Key:  e.MBR.MinDist2(anchor),
			Leaf: n.Leaf,
			Ref:  ref,
			MBR:  e.MBR,
		})
		q.up(len(q.a) - 1)
	}
}

// Pop removes and returns the item with the smallest key. It panics on an
// empty queue, mirroring slice indexing semantics.
func (q *Queue) Pop() Item {
	top := q.a[0]
	last := len(q.a) - 1
	it := q.a[last]
	q.a = q.a[:last]
	if last > 0 {
		q.a[0] = it
		q.down(0)
	}
	return top
}

// Min is the generic companion of Queue: a typed min-heap of arbitrary
// values prioritized by a float64 key. It exists for the best-first
// traversals whose items are not R-tree point entries — the k-closest-pairs
// join of internal/joins queues entry PAIRS — and gives them the same
// no-boxing property: values live in a plain typed slice, so Push and Pop
// allocate nothing once the backing array has reached the traversal's
// high-water mark (guarded by TestMinZeroAllocWarm).
//
// The zero value is an empty heap ready for use; not safe for concurrent
// use.
type Min[T any] struct {
	a []keyed[T]
}

// keyed is one heap slot: the priority key and the carried value.
type keyed[T any] struct {
	key float64
	v   T
}

// Len returns the number of queued values.
func (h *Min[T]) Len() int { return len(h.a) }

// Reset empties the heap, retaining the backing array for reuse.
func (h *Min[T]) Reset() { h.a = h.a[:0] }

// Push inserts v with the given priority key.
func (h *Min[T]) Push(key float64, v T) {
	h.a = append(h.a, keyed[T]{key: key, v: v})
	i := len(h.a) - 1
	it := h.a[i]
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p].key <= it.key {
			break
		}
		h.a[i] = h.a[p]
		i = p
	}
	h.a[i] = it
}

// Pop removes and returns the value with the smallest key (and the key).
// It panics on an empty heap, mirroring slice indexing semantics.
func (h *Min[T]) Pop() (float64, T) {
	top := h.a[0]
	last := len(h.a) - 1
	it := h.a[last]
	h.a = h.a[:last]
	if last > 0 {
		i, n := 0, last
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			m := l
			if r := l + 1; r < n && h.a[r].key < h.a[l].key {
				m = r
			}
			if it.key <= h.a[m].key {
				break
			}
			h.a[i] = h.a[m]
			i = m
		}
		h.a[i] = it
	}
	return top.key, top.v
}

// up sifts the item at index i toward the root, shifting parents down into
// the hole instead of swapping (one item copy per level, not three).
func (q *Queue) up(i int) {
	it := q.a[i]
	for i > 0 {
		p := (i - 1) / 2
		if q.a[p].Key <= it.Key {
			break
		}
		q.a[i] = q.a[p]
		i = p
	}
	q.a[i] = it
}

// down sifts the item at index i toward the leaves.
func (q *Queue) down(i int) {
	it := q.a[i]
	n := len(q.a)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && q.a[r].Key < q.a[l].Key {
			m = r
		}
		if it.Key <= q.a[m].Key {
			break
		}
		q.a[i] = q.a[m]
		i = m
	}
	q.a[i] = it
}
