package pq

import (
	"math/rand"
	"sort"
	"testing"
	"unsafe"

	"cij/internal/geom"
	"cij/internal/rtree"
)

func TestQueuePopsAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q Queue
	const n = 500
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = rng.Float64() * 1000
		q.Push(Item{Key: keys[i], Ref: int64(i)})
	}
	sort.Float64s(keys)
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	for i := 0; i < n; i++ {
		it := q.Pop()
		if it.Key != keys[i] {
			t.Fatalf("pop %d: key %g, want %g", i, it.Key, keys[i])
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after draining = %d", q.Len())
	}
}

func TestQueueInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q Queue
	last := -1.0
	for round := 0; round < 50; round++ {
		for i := 0; i < rng.Intn(20)+1; i++ {
			q.Push(Item{Key: rng.Float64() * 100})
		}
		// Partial drain: keys must come out ascending within one drain.
		last = -1
		for i := 0; i < rng.Intn(q.Len()+1); i++ {
			it := q.Pop()
			if it.Key < last {
				t.Fatalf("round %d: pop out of order: %g after %g", round, it.Key, last)
			}
			last = it.Key
		}
		q.Reset()
	}
}

func TestQueuePushNodeKeys(t *testing.T) {
	anchor := geom.Pt(5, 5)
	n := &rtree.Node{Leaf: true}
	for i := 0; i < 10; i++ {
		pt := geom.Pt(float64(i), float64(i*2))
		n.Entries = append(n.Entries, rtree.Entry{
			ID: int64(i), Pt: pt, MBR: geom.RectFromPoint(pt),
		})
	}
	var q Queue
	q.PushNode(n, anchor)
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	last := -1.0
	for q.Len() > 0 {
		it := q.Pop()
		if !it.Leaf {
			t.Fatal("leaf flag lost")
		}
		if want := it.MBR.MinDist2(anchor); it.Key != want {
			t.Fatalf("key %g, want mindist2 %g", it.Key, want)
		}
		// The leaf point is reconstructed from the degenerate MBR.
		if pt := it.Pt(); pt != geom.Pt(float64(it.Ref), float64(it.Ref*2)) {
			t.Fatalf("item %d: Pt() = %v", it.Ref, pt)
		}
		if it.Key < last {
			t.Fatalf("pop out of order: %g after %g", it.Key, last)
		}
		last = it.Key
	}
}

// TestItemSize pins the item layout: sift operations copy whole items, so
// growing the struct silently taxes every heap operation of every
// traversal. 56 bytes = key + ref + MBR + leaf flag (padded).
func TestItemSize(t *testing.T) {
	if got := unsafe.Sizeof(Item{}); got != 56 {
		t.Fatalf("pq.Item is %d bytes, want 56", got)
	}
}

// TestQueueZeroAllocWarm pins the package's reason to exist: once the
// backing array has grown, Push/PushNode/Pop allocate nothing. A
// regression here (e.g. reintroducing container/heap boxing) fails loudly
// instead of silently eroding the join's allocation budget.
func TestQueueZeroAllocWarm(t *testing.T) {
	node := &rtree.Node{Leaf: true}
	for i := 0; i < 32; i++ {
		pt := geom.Pt(float64(i%7), float64(i%11))
		node.Entries = append(node.Entries, rtree.Entry{ID: int64(i), Pt: pt, MBR: geom.RectFromPoint(pt)})
	}
	var q Queue
	anchor := geom.Pt(3, 3)
	// Warm up: grow the backing array past what the measured loop needs.
	for i := 0; i < 4; i++ {
		q.PushNode(node, anchor)
	}
	q.Reset()

	allocs := testing.AllocsPerRun(100, func() {
		q.Reset()
		q.PushNode(node, anchor)
		q.Push(Item{Key: 0.5})
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("warm push/pop cycle allocates %.1f objects per run, want 0", allocs)
	}
}

func TestMinPopsAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var h Min[int]
	const n = 500
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = rng.Float64() * 1000
		h.Push(keys[i], i)
	}
	sort.Float64s(keys)
	if h.Len() != n {
		t.Fatalf("Len = %d, want %d", h.Len(), n)
	}
	for i := 0; i < n; i++ {
		key, _ := h.Pop()
		if key != keys[i] {
			t.Fatalf("pop %d: key %g, want %g", i, key, keys[i])
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len after draining = %d", h.Len())
	}
}

func TestMinCarriesValues(t *testing.T) {
	var h Min[string]
	h.Push(3, "c")
	h.Push(1, "a")
	h.Push(2, "b")
	for _, want := range []string{"a", "b", "c"} {
		if _, v := h.Pop(); v != want {
			t.Fatalf("popped %q, want %q", v, want)
		}
	}
}

// TestMinZeroAllocWarm is TestQueueZeroAllocWarm's analogue for the
// generic heap: the k-closest-pairs traversal must not regain
// container/heap's per-operation boxing.
func TestMinZeroAllocWarm(t *testing.T) {
	var h Min[[4]int64]
	for i := 0; i < 128; i++ {
		h.Push(float64(i%13), [4]int64{int64(i)})
	}
	h.Reset()

	allocs := testing.AllocsPerRun(100, func() {
		h.Reset()
		for i := 0; i < 64; i++ {
			h.Push(float64((i*37)%64), [4]int64{int64(i)})
		}
		for h.Len() > 0 {
			h.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("warm push/pop cycle allocates %.1f objects per run, want 0", allocs)
	}
}
