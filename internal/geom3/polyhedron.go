package geom3

import (
	"math"
	"sort"
)

// Halfspace is the closed region {x : N·x ≤ C}.
type Halfspace struct {
	N Vec3
	C float64
}

// Side returns N·x − C: ≤ 0 inside.
func (h Halfspace) Side(x Vec3) float64 { return h.N.Dot(x) - h.C }

// Contains reports membership with a tolerance relative to |N|.
func (h Halfspace) Contains(x Vec3) bool {
	return h.Side(x) <= Eps*h.scale()
}

func (h Halfspace) scale() float64 {
	s := h.N.Norm()
	if s < 1 {
		return 1
	}
	return s
}

// Bisector3 returns the halfspace of locations at least as close to pi as
// to pj (the 3D ⊥pi(pi, pj) of Eq. 1).
func Bisector3(pi, pj Vec3) Halfspace {
	return Halfspace{
		N: pj.Sub(pi).Scale(2),
		C: pj.Dot(pj) - pi.Dot(pi),
	}
}

// Polyhedron is a bounded convex polyhedron in H-representation. Its
// halfspace list always includes the six faces of a domain box, so vertex
// enumeration always terminates with a bounded (possibly empty) result.
// The vertex set is cached and recomputed lazily after clips.
type Polyhedron struct {
	H     []Halfspace
	verts []Vec3
	dirty bool
}

// BoxPolyhedron returns the polyhedron of the box itself.
func BoxPolyhedron(b Box3) *Polyhedron {
	p := &Polyhedron{
		H: []Halfspace{
			{N: Vec3{-1, 0, 0}, C: -b.Min.X},
			{N: Vec3{1, 0, 0}, C: b.Max.X},
			{N: Vec3{0, -1, 0}, C: -b.Min.Y},
			{N: Vec3{0, 1, 0}, C: b.Max.Y},
			{N: Vec3{0, 0, -1}, C: -b.Min.Z},
			{N: Vec3{0, 0, 1}, C: b.Max.Z},
		},
		dirty: true,
	}
	return p
}

// Clone deep-copies the polyhedron.
func (p *Polyhedron) Clone() *Polyhedron {
	return &Polyhedron{
		H:     append([]Halfspace(nil), p.H...),
		verts: append([]Vec3(nil), p.verts...),
		dirty: p.dirty,
	}
}

// Clip intersects the polyhedron with h in place and drops halfspaces
// made redundant (those supporting no vertex), keeping |H| proportional
// to the face count.
func (p *Polyhedron) Clip(h Halfspace) {
	// Skip if every current vertex already satisfies h strictly: h is
	// redundant (this is also the Lemma 1 fast path for bisectors).
	if !p.dirty {
		redundant := true
		for _, v := range p.Vertices() {
			if h.Side(v) > Eps*h.scale() {
				redundant = false
				break
			}
		}
		if redundant {
			return
		}
	}
	p.H = append(p.H, h)
	p.dirty = true
	p.reduce()
}

// Vertices returns the vertex set (triple-plane intersections feasible
// for every halfspace), recomputing it if the polyhedron changed.
func (p *Polyhedron) Vertices() []Vec3 {
	if p.dirty {
		p.verts = enumerateVertices(p.H)
		p.dirty = false
	}
	return p.verts
}

// IsEmpty reports whether the polyhedron has no feasible vertex. For
// bounded systems (ours always are, thanks to the domain box) emptiness
// of the vertex set is emptiness of the polyhedron.
func (p *Polyhedron) IsEmpty() bool { return len(p.Vertices()) == 0 }

// Contains reports whether x satisfies all halfspaces.
func (p *Polyhedron) Contains(x Vec3) bool {
	for _, h := range p.H {
		if !h.Contains(x) {
			return false
		}
	}
	return true
}

// Bounds returns the AABB of the vertex set.
func (p *Polyhedron) Bounds() Box3 {
	b := EmptyBox3()
	for _, v := range p.Vertices() {
		b = b.UnionPoint(v)
	}
	return b
}

// Centroid returns the mean of the vertices (adequate as a search anchor;
// not the volumetric centroid).
func (p *Polyhedron) Centroid() Vec3 {
	vs := p.Vertices()
	if len(vs) == 0 {
		return Vec3{}
	}
	var s Vec3
	for _, v := range vs {
		s = s.Add(v)
	}
	return s.Scale(1 / float64(len(vs)))
}

// IntersectionVolume returns the volume of p ∩ q, computed by combining
// the two halfspace systems and measuring the result. The 3D CIJ join
// predicate is IntersectionVolume > some epsilon.
func IntersectionVolume(p, q *Polyhedron) float64 {
	comb := &Polyhedron{H: append(append([]Halfspace(nil), p.H...), q.H...), dirty: true}
	comb.reduce()
	return comb.Volume()
}

// Intersects reports whether the two polyhedra share a point.
func (p *Polyhedron) Intersects(q *Polyhedron) bool {
	if !p.Bounds().Intersects(q.Bounds()) {
		return false
	}
	comb := &Polyhedron{H: append(append([]Halfspace(nil), p.H...), q.H...), dirty: true}
	return !comb.IsEmpty()
}

// Volume computes the volume by summing signed tetrahedra over the
// triangulated faces: vertices on each supporting plane are ordered
// around the face normal and coned to the polyhedron centroid.
func (p *Polyhedron) Volume() float64 {
	vs := p.Vertices()
	if len(vs) < 4 {
		return 0
	}
	c := p.Centroid()
	var total float64
	var seen []Halfspace
	for _, h := range p.H {
		// Combined systems (IntersectionVolume) can contain the same
		// supporting plane twice; summing its face twice would double the
		// volume contribution.
		dup := false
		for _, s := range seen {
			if samePlane(h, s) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen = append(seen, h)
		face := faceVertices(h, vs)
		if len(face) < 3 {
			continue
		}
		orderAroundNormal(face, h.N)
		for i := 1; i+1 < len(face); i++ {
			// Tetrahedron (c, face[0], face[i], face[i+1]).
			a := face[0].Sub(c)
			b := face[i].Sub(c)
			d := face[i+1].Sub(c)
			total += math.Abs(a.Dot(b.Cross(d))) / 6
		}
	}
	return total
}

// samePlane reports whether two halfspaces have the same (normalized)
// boundary plane and orientation.
func samePlane(a, b Halfspace) bool {
	sa, sb := a.scale(), b.scale()
	na := a.N.Scale(1 / sa)
	nb := b.N.Scale(1 / sb)
	return na.Eq(nb) && math.Abs(a.C/sa-b.C/sb) <= Eps
}

// faceVertices returns the vertices lying on h's plane.
func faceVertices(h Halfspace, vs []Vec3) []Vec3 {
	tol := 1e-5 * h.scale()
	var out []Vec3
	for _, v := range vs {
		if math.Abs(h.Side(v)) <= tol {
			out = append(out, v)
		}
	}
	return out
}

// orderAroundNormal sorts coplanar points angularly around their mean,
// in the plane orthogonal to n.
func orderAroundNormal(pts []Vec3, n Vec3) {
	var c Vec3
	for _, v := range pts {
		c = c.Add(v)
	}
	c = c.Scale(1 / float64(len(pts)))
	// Build an orthonormal basis (u, w) of the plane.
	u := n.Cross(Vec3{1, 0, 0})
	if u.Norm() < 1e-9 {
		u = n.Cross(Vec3{0, 1, 0})
	}
	u = u.Scale(1 / u.Norm())
	w := n.Cross(u)
	sort.Slice(pts, func(i, j int) bool {
		di, dj := pts[i].Sub(c), pts[j].Sub(c)
		return math.Atan2(di.Dot(w), di.Dot(u)) < math.Atan2(dj.Dot(w), dj.Dot(u))
	})
}

// reduce drops halfspaces that support no vertex of the current feasible
// set (keeping the six box faces is unnecessary once interior constraints
// dominate, so they may be dropped too).
func (p *Polyhedron) reduce() {
	vs := p.Vertices()
	if len(vs) == 0 {
		return
	}
	kept := p.H[:0]
	for _, h := range p.H {
		if len(faceVertices(h, vs)) > 0 {
			kept = append(kept, h)
		}
	}
	p.H = kept
	// Vertex set unchanged by dropping redundant constraints.
}

// enumerateVertices solves every triple of planes and keeps the feasible,
// deduplicated solutions.
func enumerateVertices(hs []Halfspace) []Vec3 {
	var out []Vec3
	n := len(hs)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				v, ok := solve3(hs[i], hs[j], hs[k])
				if !ok {
					continue
				}
				feasible := true
				for _, h := range hs {
					if h.Side(v) > 1e-6*h.scale() {
						feasible = false
						break
					}
				}
				if !feasible {
					continue
				}
				dup := false
				for _, u := range out {
					if u.Eq(v) {
						dup = true
						break
					}
				}
				if !dup {
					out = append(out, v)
				}
			}
		}
	}
	return out
}

// solve3 solves N1·x=C1, N2·x=C2, N3·x=C3 by Cramer's rule.
func solve3(a, b, c Halfspace) (Vec3, bool) {
	det := a.N.Dot(b.N.Cross(c.N))
	scale := a.N.Norm() * b.N.Norm() * c.N.Norm()
	if scale < 1 {
		scale = 1
	}
	if math.Abs(det) < 1e-9*scale {
		return Vec3{}, false
	}
	x := Vec3{a.C, b.C, c.C}
	// Columns of the inverse via cross products.
	inv := b.N.Cross(c.N).Scale(x.X).
		Add(c.N.Cross(a.N).Scale(x.Y)).
		Add(a.N.Cross(b.N).Scale(x.Z))
	return inv.Scale(1 / det), true
}
