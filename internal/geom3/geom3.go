// Package geom3 provides the 3D geometry for the paper's first
// future-work item (Section VI): "we will extend our solutions for 3D
// points, with the intuition that the convex polygon Vc(pi) ... in 2D
// space is analogous to a convex polyhedron in 3D space."
//
// Polyhedra are kept in H-representation (a list of closed halfspaces,
// always including the six domain-box faces, so every polyhedron is
// bounded) with vertices enumerated on demand by triple-plane
// intersection. That favors exactly the operations the Voronoi/CIJ
// algorithms need — clip by a bisector, inspect the vertex set Γc for
// Lemma 1/2 pruning, test intersection, measure volume — over generality.
package geom3

import "math"

// Eps is the absolute tolerance of the 3D predicates, for domain-scale
// (≤1e4) coordinates.
const Eps = 1e-6

// Vec3 is a point/vector in 3-space.
type Vec3 struct {
	X, Y, Z float64
}

// V3 is a shorthand constructor.
func V3(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a scaled by s.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Dot returns a·b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns a × b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm returns |a|.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Dist returns the Euclidean distance between a and b.
func (a Vec3) Dist(b Vec3) float64 { return a.Sub(b).Norm() }

// Dist2 returns the squared distance between a and b.
func (a Vec3) Dist2(b Vec3) float64 {
	d := a.Sub(b)
	return d.Dot(d)
}

// Eq reports coordinatewise equality within Eps.
func (a Vec3) Eq(b Vec3) bool {
	return math.Abs(a.X-b.X) <= Eps && math.Abs(a.Y-b.Y) <= Eps && math.Abs(a.Z-b.Z) <= Eps
}

// Box3 is an axis-aligned box.
type Box3 struct {
	Min, Max Vec3
}

// NewBox3 builds the box spanning two corners given in any order.
func NewBox3(a, b Vec3) Box3 {
	return Box3{
		Min: Vec3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)},
		Max: Vec3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)},
	}
}

// EmptyBox3 is the identity for Union.
func EmptyBox3() Box3 {
	inf := math.Inf(1)
	return Box3{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// IsEmpty reports whether the box is the empty box.
func (b Box3) IsEmpty() bool { return b.Min.X > b.Max.X }

// Contains reports whether v lies in the closed box.
func (b Box3) Contains(v Vec3) bool {
	return v.X >= b.Min.X-Eps && v.X <= b.Max.X+Eps &&
		v.Y >= b.Min.Y-Eps && v.Y <= b.Max.Y+Eps &&
		v.Z >= b.Min.Z-Eps && v.Z <= b.Max.Z+Eps
}

// Union returns the smallest box covering both.
func (b Box3) Union(o Box3) Box3 {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return Box3{
		Min: Vec3{math.Min(b.Min.X, o.Min.X), math.Min(b.Min.Y, o.Min.Y), math.Min(b.Min.Z, o.Min.Z)},
		Max: Vec3{math.Max(b.Max.X, o.Max.X), math.Max(b.Max.Y, o.Max.Y), math.Max(b.Max.Z, o.Max.Z)},
	}
}

// UnionPoint grows the box to cover v.
func (b Box3) UnionPoint(v Vec3) Box3 {
	return b.Union(Box3{Min: v, Max: v})
}

// Intersects reports whether two closed boxes share a point.
func (b Box3) Intersects(o Box3) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.Min.X <= o.Max.X+Eps && o.Min.X <= b.Max.X+Eps &&
		b.Min.Y <= o.Max.Y+Eps && o.Min.Y <= b.Max.Y+Eps &&
		b.Min.Z <= o.Max.Z+Eps && o.Min.Z <= b.Max.Z+Eps
}

// Center returns the center of the box.
func (b Box3) Center() Vec3 {
	return Vec3{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2, (b.Min.Z + b.Max.Z) / 2}
}

// Volume returns the box volume.
func (b Box3) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	return (b.Max.X - b.Min.X) * (b.Max.Y - b.Min.Y) * (b.Max.Z - b.Min.Z)
}

// MinDist2 returns the squared distance from v to the box (0 inside) —
// the 3D mindist of Lemma 2.
func (b Box3) MinDist2(v Vec3) float64 {
	var dx, dy, dz float64
	if v.X < b.Min.X {
		dx = b.Min.X - v.X
	} else if v.X > b.Max.X {
		dx = v.X - b.Max.X
	}
	if v.Y < b.Min.Y {
		dy = b.Min.Y - v.Y
	} else if v.Y > b.Max.Y {
		dy = v.Y - b.Max.Y
	}
	if v.Z < b.Min.Z {
		dz = b.Min.Z - v.Z
	} else if v.Z > b.Max.Z {
		dz = v.Z - b.Max.Z
	}
	return dx*dx + dy*dy + dz*dz
}

// Face is one axis-aligned face of a box: the rectangle where axis Axis is
// pinned to Value, spanning the box's extent in the other two axes. It is
// the 3D analogue of the rectangle side L in the Φ(L, p) pruning test.
type Face struct {
	Box   Box3
	Axis  int // 0 = x, 1 = y, 2 = z
	Value float64
}

// Faces returns the six faces of the box.
func (b Box3) Faces() [6]Face {
	return [6]Face{
		{b, 0, b.Min.X}, {b, 0, b.Max.X},
		{b, 1, b.Min.Y}, {b, 1, b.Max.Y},
		{b, 2, b.Min.Z}, {b, 2, b.Max.Z},
	}
}

// Dist2Point returns the squared distance from t to the face rectangle:
// clamp the two free axes to the box extent, pin the third.
func (f Face) Dist2Point(t Vec3) float64 {
	c := [3]float64{t.X, t.Y, t.Z}
	lo := [3]float64{f.Box.Min.X, f.Box.Min.Y, f.Box.Min.Z}
	hi := [3]float64{f.Box.Max.X, f.Box.Max.Y, f.Box.Max.Z}
	var sum float64
	for ax := 0; ax < 3; ax++ {
		v := c[ax]
		var w float64
		if ax == f.Axis {
			w = v - f.Value
		} else if v < lo[ax] {
			w = lo[ax] - v
		} else if v > hi[ax] {
			w = v - hi[ax]
		}
		sum += w * w
	}
	return sum
}

// InPhi reports whether t ∈ Φ(F, p) = {b : dist(p,b) ≤ mindist(F,b)} — the
// face generalization of Eq. 3.
func (f Face) InPhi(p, t Vec3) bool {
	return p.Dist2(t) <= f.Dist2Point(t)+Eps
}
