package geom3

import (
	"math"
	"math/rand"
	"testing"
)

func TestVec3Ops(t *testing.T) {
	a, b := V3(1, 2, 3), V3(4, 5, 6)
	if a.Add(b) != V3(5, 7, 9) || a.Sub(b) != V3(-3, -3, -3) {
		t.Fatal("add/sub broken")
	}
	if a.Dot(b) != 32 {
		t.Fatalf("dot = %v", a.Dot(b))
	}
	if a.Cross(b) != V3(-3, 6, -3) {
		t.Fatalf("cross = %v", a.Cross(b))
	}
	if d := V3(0, 0, 0).Dist(V3(2, 3, 6)); math.Abs(d-7) > 1e-12 {
		t.Fatalf("dist = %v", d)
	}
}

func TestBox3Basics(t *testing.T) {
	b := NewBox3(V3(4, 5, 6), V3(1, 2, 3))
	if b.Min != V3(1, 2, 3) || b.Max != V3(4, 5, 6) {
		t.Fatalf("normalization: %+v", b)
	}
	if b.Volume() != 27 {
		t.Fatalf("volume = %v", b.Volume())
	}
	if !b.Contains(V3(2, 3, 4)) || b.Contains(V3(0, 0, 0)) {
		t.Fatal("contains broken")
	}
	if b.Center() != V3(2.5, 3.5, 4.5) {
		t.Fatalf("center = %v", b.Center())
	}
	e := EmptyBox3()
	if !e.IsEmpty() || e.Volume() != 0 {
		t.Fatal("empty box broken")
	}
	if got := e.Union(b); got != b {
		t.Fatal("union with empty should be identity")
	}
}

func TestBox3MinDist2(t *testing.T) {
	b := NewBox3(V3(0, 0, 0), V3(2, 2, 2))
	cases := []struct {
		v    Vec3
		want float64
	}{
		{V3(1, 1, 1), 0},
		{V3(3, 1, 1), 1},
		{V3(3, 3, 1), 2},
		{V3(3, 3, 3), 3},
		{V3(-1, -1, -1), 3},
	}
	for _, c := range cases {
		if got := b.MinDist2(c.v); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MinDist2(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestFaceDistAndPhi(t *testing.T) {
	b := NewBox3(V3(0, 0, 0), V3(2, 2, 2))
	faces := b.Faces()
	// The x=0 face: distance from (-3,1,1) is 3; from (1,1,1) is 1.
	f := faces[0]
	if got := f.Dist2Point(V3(-3, 1, 1)); math.Abs(got-9) > 1e-12 {
		t.Fatalf("face dist = %v", got)
	}
	if got := f.Dist2Point(V3(1, 1, 1)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("interior face dist = %v", got)
	}
	// Corner clamping: from (-1,3,3), dist² to x=0 face = 1+1+1.
	if got := f.Dist2Point(V3(-1, 3, 3)); math.Abs(got-3) > 1e-12 {
		t.Fatalf("clamped face dist = %v", got)
	}
	// Φ semantics: p right next to t, face far away.
	if !f.InPhi(V3(9, 9, 9), V3(9.5, 9, 9)) {
		t.Error("nearby p should dominate a distant face")
	}
	if f.InPhi(V3(9, 9, 9), V3(0, 1, 1)) {
		t.Error("point on the face is closer to the face than to distant p")
	}
}

func TestBisector3Semantics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		pi := V3(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		pj := V3(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		x := V3(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		if pi.Eq(pj) {
			continue
		}
		h := Bisector3(pi, pj)
		closer := x.Dist2(pi) <= x.Dist2(pj)
		if h.Contains(x) != closer && math.Abs(x.Dist(pi)-x.Dist(pj)) > 1e-6 {
			t.Fatalf("bisector sidedness wrong: pi=%v pj=%v x=%v", pi, pj, x)
		}
	}
}

func TestBoxPolyhedron(t *testing.T) {
	b := NewBox3(V3(0, 0, 0), V3(10, 10, 10))
	p := BoxPolyhedron(b)
	vs := p.Vertices()
	if len(vs) != 8 {
		t.Fatalf("box should have 8 vertices, got %d", len(vs))
	}
	if math.Abs(p.Volume()-1000) > 1e-6 {
		t.Fatalf("volume = %v, want 1000", p.Volume())
	}
	if !p.Contains(V3(5, 5, 5)) || p.Contains(V3(11, 5, 5)) {
		t.Fatal("containment broken")
	}
	if p.IsEmpty() {
		t.Fatal("box is not empty")
	}
	if c := p.Centroid(); !c.Eq(V3(5, 5, 5)) {
		t.Fatalf("centroid = %v", c)
	}
}

func TestPolyhedronClipHalf(t *testing.T) {
	b := NewBox3(V3(0, 0, 0), V3(10, 10, 10))
	p := BoxPolyhedron(b)
	// Clip by the bisector of (2,5,5) and (8,5,5): keep x ≤ 5.
	p.Clip(Bisector3(V3(2, 5, 5), V3(8, 5, 5)))
	if math.Abs(p.Volume()-500) > 1e-6 {
		t.Fatalf("half-box volume = %v, want 500", p.Volume())
	}
	if !p.Contains(V3(2, 5, 5)) || p.Contains(V3(8, 5, 5)) {
		t.Fatal("clip kept the wrong side")
	}
	// Clipping by a redundant halfspace changes nothing.
	before := p.Volume()
	p.Clip(Halfspace{N: V3(1, 0, 0), C: 100})
	if math.Abs(p.Volume()-before) > 1e-9 {
		t.Fatal("redundant clip changed the polyhedron")
	}
	// Clip to empty.
	p.Clip(Halfspace{N: V3(1, 0, 0), C: -1})
	if !p.IsEmpty() {
		t.Fatal("infeasible clip should empty the polyhedron")
	}
}

func TestCornerClipTetrahedron(t *testing.T) {
	// Cutting the corner x+y+z ≤ 3 off the unit-10 box leaves volume
	// 1000 − 4.5 (tetrahedron with legs 3: 3³/6 = 4.5 removed ... kept
	// region is the box minus that tetrahedron).
	p := BoxPolyhedron(NewBox3(V3(0, 0, 0), V3(10, 10, 10)))
	p.Clip(Halfspace{N: V3(-1, -1, -1), C: -3}) // keep x+y+z ≥ 3
	want := 1000 - 27.0/6
	if math.Abs(p.Volume()-want) > 1e-6 {
		t.Fatalf("volume = %v, want %v", p.Volume(), want)
	}
}

func TestIntersectionVolume(t *testing.T) {
	a := BoxPolyhedron(NewBox3(V3(0, 0, 0), V3(4, 4, 4)))
	b := BoxPolyhedron(NewBox3(V3(2, 2, 2), V3(6, 6, 6)))
	if got := IntersectionVolume(a, b); math.Abs(got-8) > 1e-6 {
		t.Fatalf("intersection volume = %v, want 8", got)
	}
	if !a.Intersects(b) {
		t.Fatal("overlapping boxes must intersect")
	}
	c := BoxPolyhedron(NewBox3(V3(10, 10, 10), V3(12, 12, 12)))
	if a.Intersects(c) {
		t.Fatal("disjoint boxes must not intersect")
	}
	if got := IntersectionVolume(a, c); got != 0 {
		t.Fatalf("disjoint volume = %v", got)
	}
	// Touching boxes intersect with zero volume.
	d := BoxPolyhedron(NewBox3(V3(4, 0, 0), V3(8, 4, 4)))
	if got := IntersectionVolume(a, d); got > 1e-9 {
		t.Fatalf("touching volume = %v", got)
	}
}

func TestVoronoiCellOf3DGridCenter(t *testing.T) {
	// 3×3×3 grid: the center point's cell is the middle cube.
	domain := NewBox3(V3(0, 0, 0), V3(9000, 9000, 9000))
	cell := BoxPolyhedron(domain)
	center := V3(4500, 4500, 4500)
	for _, x := range []float64{1500, 4500, 7500} {
		for _, y := range []float64{1500, 4500, 7500} {
			for _, z := range []float64{1500, 4500, 7500} {
				other := V3(x, y, z)
				if other.Eq(center) {
					continue
				}
				cell.Clip(Bisector3(center, other))
			}
		}
	}
	if math.Abs(cell.Volume()-3000*3000*3000) > 1 {
		t.Fatalf("center cell volume = %v, want 2.7e10", cell.Volume())
	}
	if !cell.Contains(center) {
		t.Fatal("cell must contain its site")
	}
}

func TestCloneIndependence3(t *testing.T) {
	a := BoxPolyhedron(NewBox3(V3(0, 0, 0), V3(5, 5, 5)))
	b := a.Clone()
	b.Clip(Halfspace{N: V3(1, 0, 0), C: 2})
	if math.Abs(a.Volume()-125) > 1e-9 {
		t.Fatal("clipping the clone mutated the original")
	}
}
