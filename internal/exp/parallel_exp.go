package exp

import (
	"runtime"
	"time"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/geom"
	"cij/internal/parallel"
)

// ScalRow is one point of the parallel scalability experiment: one
// dataset × worker-count cell, with wall-clock time, speedup over the
// serial NM-CIJ baseline on the same data, summed physical I/O and the
// result cardinality (a cheap equivalence check across rows).
type ScalRow struct {
	Dataset string
	Workers int // 0 = serial NM-CIJ baseline
	Wall    time.Duration
	Speedup float64
	IO      int64
	Pairs   int64
}

// RunScalability measures the partitioned engine against serial NM-CIJ on
// the uniform paper-style workload and a clustered one (|P| = |Q| = n),
// across the given worker counts. Clustered rows run the cost-balanced
// partitioner, uniform rows the plain one — each mode on the data shape
// it exists for. Wall-clock scaling tops out at the machine's core count
// (runtime.NumCPU, reported by cmd/cijbench alongside the table).
func RunScalability(n int, workerCounts []int, seed int64) []ScalRow {
	type ds struct {
		name string
		p, q []geom.Point
	}
	datasets := []ds{
		{"uniform", dataset.Uniform(n, seed), dataset.Uniform(n, seed+1)},
		{"clustered", dataset.Clustered(n, 64, seed+2), dataset.Clustered(n, 48, seed+3)},
	}

	var rows []ScalRow
	for _, d := range datasets {
		env := BuildEnv(d.p, d.q, DefaultPageSize, DefaultBufferPct)

		var serialPairs int64
		sOpts := countOnly()
		sOpts.OnPair = func(core.Pair) { serialPairs++ }
		start := time.Now()
		sRes := core.NMCIJ(env.RP, env.RQ, Domain, sOpts)
		serialWall := time.Since(start)
		rows = append(rows, ScalRow{
			Dataset: d.name,
			Workers: 0,
			Wall:    serialWall,
			Speedup: 1,
			IO:      sRes.Stats.PageAccesses(),
			Pairs:   serialPairs,
		})

		for _, w := range workerCounts {
			env.Reset()
			var pairs int64
			opts := parallel.DefaultOptions()
			opts.Workers = w
			opts.Balanced = d.name == "clustered"
			opts.CollectPairs = false
			opts.OnPair = func(core.Pair) { pairs++ }
			start := time.Now()
			res := parallel.Join(env.RP, env.RQ, Domain, opts)
			wall := time.Since(start)
			rows = append(rows, ScalRow{
				Dataset: d.name,
				Workers: w,
				Wall:    wall,
				Speedup: float64(serialWall) / float64(wall),
				IO:      res.Stats.PageAccesses(),
				Pairs:   pairs,
			})
		}
	}
	return rows
}

// NumCPUForScal reports the core budget wall-clock scaling is bounded by,
// for the table caption.
func NumCPUForScal() int { return runtime.NumCPU() }
