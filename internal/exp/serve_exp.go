package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cij/internal/dataset"
	"cij/internal/obs"
	"cij/internal/service"
)

// ServeLoadOptions configures the query-service load generator
// (cijbench -exp serve).
type ServeLoadOptions struct {
	// Addr targets a running cijserver ("host:port" or full URL); empty
	// starts a private in-process server seeded with two uniform datasets.
	Addr string
	// Clients is the list of concurrency levels to sustain, e.g. 1,4,16.
	Clients []int
	// Duration is how long each level runs.
	Duration time.Duration
	// N is the per-dataset cardinality of the in-process server's seed
	// datasets (ignored with Addr).
	N int
	// Seed derives the seed datasets.
	Seed int64
	// Cache enables the in-process server's result cache. Off by default:
	// the load generator rotates a fixed query mix, so with caching the
	// benchmark would measure memoized-response throughput rather than
	// sustained join execution.
	Cache bool
}

// ServeRow is one concurrency level of the serve benchmark. The client
// quantiles come from exact per-request samples; the Server* quantiles are
// interpolated from the service's own cij_http_request_seconds{route="join"}
// histogram delta over the level (in-process runs only — a remote -addr
// target's registry is not reachable, so they stay zero/omitted).
type ServeRow struct {
	Clients    int           `json:"clients"`
	Requests   int64         `json:"requests"`
	Errors     int64         `json:"errors"`
	Wall       time.Duration `json:"wall_ns"`
	Throughput float64       `json:"req_per_sec"`
	P50        time.Duration `json:"p50_ns"`
	P95        time.Duration `json:"p95_ns"`
	P99        time.Duration `json:"p99_ns"`
	ServerP50  time.Duration `json:"server_p50_ns,omitempty"`
	ServerP95  time.Duration `json:"server_p95_ns,omitempty"`
	ServerP99  time.Duration `json:"server_p99_ns,omitempty"`
}

// serveQueryMix is the rotating request mix: serial NM, the parallel
// engine, and a TopK-capped variant, so one run exercises the planner's
// main paths rather than one hot loop.
var serveQueryMix = []service.JoinRequest{
	{Left: "load_p", Right: "load_q", Algo: "nm"},
	{Left: "load_p", Right: "load_q", Algo: "parallel", Workers: 2},
	{Left: "load_p", Right: "load_q", Algo: "nm", TopK: 10},
}

// RunServeLoad drives POST /join at each requested concurrency level for
// the configured duration and reports sustained throughput and latency
// quantiles. With no target address it serves itself: a service.Service
// behind httptest with two generated datasets, which is what the
// BENCH_service.json trajectory records.
func RunServeLoad(opts ServeLoadOptions) ([]ServeRow, error) {
	base := opts.Addr
	var histProbe func() obs.HistSnapshot
	if base == "" {
		cacheEntries := -1
		if opts.Cache {
			cacheEntries = 0 // service default
		}
		svc := service.New(service.Config{CacheEntries: cacheEntries})
		n := opts.N
		if n <= 0 {
			n = 2000
		}
		if _, err := svc.Ingest("load_p", dataset.Uniform(n, opts.Seed)); err != nil {
			return nil, err
		}
		if _, err := svc.Ingest("load_q", dataset.Uniform(n, opts.Seed+1)); err != nil {
			return nil, err
		}
		ts := httptest.NewServer(svc.Handler())
		defer ts.Close()
		base = ts.URL
		histProbe = func() obs.HistSnapshot {
			// The series materializes on the first /join request, so the
			// pre-level probe may still find nothing; the zero snapshot
			// subtracts cleanly.
			if h := svc.Metrics().FindHistogram("cij_http_request_seconds", "join"); h != nil {
				return h.Snapshot()
			}
			return obs.HistSnapshot{}
		}
	} else if base[0] == ':' {
		base = "http://127.0.0.1" + base
	} else if len(base) < 7 || (base[:7] != "http://" && base[:8] != "https://") {
		base = "http://" + base
	}

	bodies := make([][]byte, len(serveQueryMix))
	for i, q := range serveQueryMix {
		b, err := json.Marshal(q)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	client := &http.Client{Timeout: 30 * time.Second}
	var rows []ServeRow
	for _, clients := range opts.Clients {
		row, err := runServeLevel(client, base, bodies, clients, opts.Duration, histProbe)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runServeLevel sustains one concurrency level: clients goroutines loop
// over the query mix until the deadline, recording per-request latency.
func runServeLevel(client *http.Client, base string, bodies [][]byte, clients int, duration time.Duration, histProbe func() obs.HistSnapshot) (ServeRow, error) {
	if duration <= 0 {
		duration = 2 * time.Second
	}
	var histBefore obs.HistSnapshot
	if histProbe != nil {
		histBefore = histProbe()
	}
	var (
		stop     atomic.Bool
		requests atomic.Int64
		errs     atomic.Int64
		mu       sync.Mutex
		lats     []time.Duration
		wg       sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			local := make([]time.Duration, 0, 1024)
			for i := c; !stop.Load(); i++ {
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(base+"/join", "application/json", bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				ok := resp.StatusCode == http.StatusOK
				var jr service.JoinResponse
				if json.NewDecoder(resp.Body).Decode(&jr) != nil || jr.Count == 0 {
					ok = false // a join of non-empty datasets always has pairs
				}
				resp.Body.Close()
				requests.Add(1)
				if !ok {
					// Error responses count as attempts but never as
					// throughput or latency samples: a row must not report
					// 400-response round-trips as join serving rate.
					errs.Add(1)
					continue
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(c)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	wall := time.Since(start)

	row := ServeRow{
		Clients:  clients,
		Requests: requests.Load(),
		Errors:   errs.Load(),
		Wall:     wall,
	}
	succeeded := int64(len(lats))
	if wall > 0 {
		row.Throughput = float64(succeeded) / wall.Seconds()
	}
	if succeeded > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		row.P50 = lats[len(lats)*50/100]
		row.P95 = lats[min(len(lats)*95/100, len(lats)-1)]
		row.P99 = lats[min(len(lats)*99/100, len(lats)-1)]
	}
	if histProbe != nil {
		if d := histProbe().Sub(histBefore); d.Count > 0 {
			row.ServerP50 = time.Duration(d.Quantile(0.50) * float64(time.Second))
			row.ServerP95 = time.Duration(d.Quantile(0.95) * float64(time.Second))
			row.ServerP99 = time.Duration(d.Quantile(0.99) * float64(time.Second))
		}
	}
	if succeeded == 0 {
		return row, fmt.Errorf("serve load: no successful request at %d clients (%d attempts, %d errors — server unreachable or missing the load_p/load_q datasets?)",
			clients, row.Requests, row.Errors)
	}
	return row, nil
}

// TableServe renders the serve benchmark rows. The srv p95 column is the
// server's own request-latency histogram quantile ("-" when the target is
// remote and its registry unreachable); comparing it to the client p95
// isolates client/transport overhead from serving latency.
func TableServe(rows []ServeRow) Table {
	t := Table{
		Title:   "Serve — sustained join throughput vs concurrent clients (POST /join, cache off)",
		Columns: []string{"clients", "requests", "errors", "req/s", "p50", "p95", "p99", "srv p95", "srv p99"},
	}
	srvCol := func(d time.Duration) string {
		if d == 0 {
			return "-"
		}
		return d.Round(time.Microsecond * 10).String()
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			formatInt(r.Clients),
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%d", r.Errors),
			fmt.Sprintf("%.1f", r.Throughput),
			r.P50.Round(time.Microsecond * 10).String(),
			r.P95.Round(time.Microsecond * 10).String(),
			r.P99.Round(time.Microsecond * 10).String(),
			srvCol(r.ServerP95),
			srvCol(r.ServerP99),
		})
	}
	return t
}

// WriteServeJSON writes the serve rows as the BENCH_service.json document:
// one record per concurrency level plus run metadata.
func WriteServeJSON(w io.Writer, rows []ServeRow, scale float64) error {
	doc := struct {
		Date  string     `json:"date"`
		Host  HostInfo   `json:"host"`
		Scale float64    `json:"scale"`
		Rows  []ServeRow `json:"rows"`
	}{
		Date:  time.Now().UTC().Format(time.RFC3339),
		Host:  Host(),
		Scale: scale,
		Rows:  rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
