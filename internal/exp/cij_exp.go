package exp

import (
	"time"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/geom"
)

// Algorithm names in the order the paper plots them.
var AlgoNames = []string{"FM-CIJ", "PM-CIJ", "NM-CIJ"}

// runAlgo dispatches by index: 0 = FM, 1 = PM, 2 = NM.
func runAlgo(i int, env *Env, opts core.Options) core.Result {
	switch i {
	case 0:
		return core.FMCIJ(env.RP, env.RQ, Domain, opts)
	case 1:
		return core.PMCIJ(env.RP, env.RQ, Domain, opts)
	default:
		return core.NMCIJ(env.RP, env.RQ, Domain, opts)
	}
}

// countOnly are the Options used by cost experiments: stream-count pairs
// without retaining them.
func countOnly() core.Options { return core.Options{Reuse: true, CollectPairs: false} }

// Fig7Row is one algorithm of the Fig. 7 cost breakdown.
type Fig7Row struct {
	Algo    string
	MatIO   int64
	JoinIO  int64
	MatCPU  time.Duration
	JoinCPU time.Duration
	Pairs   int64
}

// RunFig7 reproduces Fig. 7: I/O and CPU broken into materialization and
// join phases at the default setting (|P| = |Q| = n uniform, 2% buffer).
func RunFig7(n int, seed int64) []Fig7Row {
	p := dataset.Uniform(n, seed)
	q := dataset.Uniform(n, seed+1)
	var rows []Fig7Row
	for i, name := range AlgoNames {
		env := BuildEnv(p, q, DefaultPageSize, DefaultBufferPct)
		var pairs int64
		opts := countOnly()
		opts.OnPair = func(core.Pair) { pairs++ }
		res := runAlgo(i, env, opts)
		rows = append(rows, Fig7Row{
			Algo:    name,
			MatIO:   res.Stats.Mat.PageAccesses(),
			JoinIO:  res.Stats.Join.PageAccesses(),
			MatCPU:  res.Stats.MatCPU,
			JoinCPU: res.Stats.JoinCPU,
			Pairs:   pairs,
		})
	}
	return rows
}

// SweepRow is one x-axis point of the Fig. 8/9a sweeps: total I/O of the
// three algorithms plus the lower bound.
type SweepRow struct {
	X    string // axis label (buffer %, datasize, or ratio)
	FM   int64
	PM   int64
	NM   int64
	LB   int64
	CPUs [3]time.Duration
}

// RunFig8a reproduces Fig. 8a: I/O versus LRU buffer size (% of data
// size), at |P| = |Q| = n.
func RunFig8a(n int, bufferPcts []float64, seed int64) []SweepRow {
	p := dataset.Uniform(n, seed)
	q := dataset.Uniform(n, seed+1)
	var rows []SweepRow
	for _, pct := range bufferPcts {
		row := SweepRow{X: formatPct(pct)}
		for i := range AlgoNames {
			env := BuildEnv(p, q, DefaultPageSize, pct)
			start := time.Now()
			res := runAlgo(i, env, countOnly())
			row.CPUs[i] = time.Since(start)
			setAlgoIO(&row, i, res.Stats.PageAccesses())
			row.LB = env.LowerBound()
		}
		rows = append(rows, row)
	}
	return rows
}

// RunFig8b reproduces Fig. 8b: I/O versus datasize with |P| = |Q| = n and
// the default buffer.
func RunFig8b(sizes []int, seed int64) []SweepRow {
	var rows []SweepRow
	for _, n := range sizes {
		p := dataset.Uniform(n, seed)
		q := dataset.Uniform(n, seed+1)
		row := SweepRow{X: formatK(n)}
		for i := range AlgoNames {
			env := BuildEnv(p, q, DefaultPageSize, DefaultBufferPct)
			start := time.Now()
			res := runAlgo(i, env, countOnly())
			row.CPUs[i] = time.Since(start)
			setAlgoIO(&row, i, res.Stats.PageAccesses())
			row.LB = env.LowerBound()
		}
		rows = append(rows, row)
	}
	return rows
}

// Ratio is a |Q|:|P| cardinality ratio of the Fig. 9a/10b/11b sweeps.
type Ratio struct {
	QPart, PPart int
}

// Label renders "1:4" style.
func (r Ratio) Label() string { return formatInt(r.QPart) + ":" + formatInt(r.PPart) }

// Split divides a total cardinality according to the ratio.
func (r Ratio) Split(total int) (nq, np int) {
	nq = total * r.QPart / (r.QPart + r.PPart)
	return nq, total - nq
}

// PaperRatios are the five ratios of Fig. 9a.
var PaperRatios = []Ratio{{1, 4}, {1, 2}, {1, 1}, {2, 1}, {4, 1}}

// RunFig9a reproduces Fig. 9a: I/O versus cardinality ratio |Q|:|P| with
// |Q| + |P| = total.
func RunFig9a(total int, ratios []Ratio, seed int64) []SweepRow {
	var rows []SweepRow
	for _, r := range ratios {
		nq, np := r.Split(total)
		p := dataset.Uniform(np, seed)
		q := dataset.Uniform(nq, seed+1)
		row := SweepRow{X: r.Label()}
		for i := range AlgoNames {
			env := BuildEnv(p, q, DefaultPageSize, DefaultBufferPct)
			start := time.Now()
			res := runAlgo(i, env, countOnly())
			row.CPUs[i] = time.Since(start)
			setAlgoIO(&row, i, res.Stats.PageAccesses())
			row.LB = env.LowerBound()
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig9bResult carries the progressive-output curves of the three
// algorithms: result pairs produced as a function of page accesses.
type Fig9bResult struct {
	Curves [3][]core.ProgressPoint
}

// RunFig9b reproduces Fig. 9b at the default setting.
func RunFig9b(n int, seed int64) Fig9bResult {
	p := dataset.Uniform(n, seed)
	q := dataset.Uniform(n, seed+1)
	var res Fig9bResult
	for i := range AlgoNames {
		env := BuildEnv(p, q, DefaultPageSize, DefaultBufferPct)
		r := runAlgo(i, env, countOnly())
		res.Curves[i] = r.Stats.Progress
	}
	return res
}

// Fig10Row is one x-axis point of the false-hit-ratio plots.
type Fig10Row struct {
	X          string
	FHR        float64
	Candidates int64
	TrueHits   int64
}

// RunFig10a reproduces Fig. 10a: NM-CIJ filter false hit ratio versus
// datasize (|P| = |Q| = n).
func RunFig10a(sizes []int, seed int64) []Fig10Row {
	var rows []Fig10Row
	for _, n := range sizes {
		p := dataset.Uniform(n, seed)
		q := dataset.Uniform(n, seed+1)
		env := BuildEnv(p, q, DefaultPageSize, DefaultBufferPct)
		res := core.NMCIJ(env.RP, env.RQ, Domain, countOnly())
		rows = append(rows, Fig10Row{
			X:          formatK(n),
			FHR:        res.Stats.FalseHitRatio(),
			Candidates: res.Stats.Candidates,
			TrueHits:   res.Stats.TrueHits,
		})
	}
	return rows
}

// RunFig10b reproduces Fig. 10b: FHR versus cardinality ratio with
// |Q| + |P| = total.
func RunFig10b(total int, ratios []Ratio, seed int64) []Fig10Row {
	var rows []Fig10Row
	for _, r := range ratios {
		nq, np := r.Split(total)
		p := dataset.Uniform(np, seed)
		q := dataset.Uniform(nq, seed+1)
		env := BuildEnv(p, q, DefaultPageSize, DefaultBufferPct)
		res := core.NMCIJ(env.RP, env.RQ, Domain, countOnly())
		rows = append(rows, Fig10Row{
			X:          r.Label(),
			FHR:        res.Stats.FalseHitRatio(),
			Candidates: res.Stats.Candidates,
			TrueHits:   res.Stats.TrueHits,
		})
	}
	return rows
}

// Fig11Row is one x-axis point of the cell-reuse ablation.
type Fig11Row struct {
	X       string
	Reuse   int64 // exact P-cells computed with the reuse buffer
	NoReuse int64 // without it
	SizeP   int64 // |P|: the unavoidable minimum
}

// RunFig11a reproduces Fig. 11a: P-cell computations versus datasize.
func RunFig11a(sizes []int, seed int64) []Fig11Row {
	var rows []Fig11Row
	for _, n := range sizes {
		p := dataset.Uniform(n, seed)
		q := dataset.Uniform(n, seed+1)
		rows = append(rows, runFig11Point(p, q, formatK(n)))
	}
	return rows
}

// RunFig11b reproduces Fig. 11b: P-cell computations versus ratio.
func RunFig11b(total int, ratios []Ratio, seed int64) []Fig11Row {
	var rows []Fig11Row
	for _, r := range ratios {
		nq, np := r.Split(total)
		p := dataset.Uniform(np, seed)
		q := dataset.Uniform(nq, seed+1)
		rows = append(rows, runFig11Point(p, q, r.Label()))
	}
	return rows
}

func runFig11Point(p, q []geom.Point, label string) Fig11Row {
	env := BuildEnv(p, q, DefaultPageSize, DefaultBufferPct)
	withReuse := core.NMCIJ(env.RP, env.RQ, Domain, countOnly())
	env.Reset()
	opts := countOnly()
	opts.Reuse = false
	withoutReuse := core.NMCIJ(env.RP, env.RQ, Domain, opts)
	return Fig11Row{
		X:       label,
		Reuse:   withReuse.Stats.PCellsComputed,
		NoReuse: withoutReuse.Stats.PCellsComputed,
		SizeP:   int64(env.RP.Size()),
	}
}

// Table3Row is one dataset pair of Table III.
type Table3Row struct {
	Q, P  string
	Pairs int64
	FM    int64
	PM    int64
	NM    int64
	LB    int64
}

// Table3Pairs are the joined dataset pairs of Table III (Q joined with P).
var Table3Pairs = [][2]string{
	{"SC", "PP"}, {"CE", "LO"}, {"CE", "SC"}, {"LO", "PP"}, {"PA", "SC"}, {"PA", "PP"},
}

// RunTable3 reproduces Table III on the real-like datasets at the given
// scale (1 = paper cardinalities).
func RunTable3(scale float64) ([]Table3Row, error) {
	cache := map[string][]geom.Point{}
	load := func(name string) ([]geom.Point, error) {
		if pts, ok := cache[name]; ok {
			return pts, nil
		}
		pts, err := dataset.RealLike(name, scale)
		if err != nil {
			return nil, err
		}
		cache[name] = pts
		return pts, nil
	}
	var rows []Table3Row
	for _, pair := range Table3Pairs {
		qPts, err := load(pair[0])
		if err != nil {
			return nil, err
		}
		pPts, err := load(pair[1])
		if err != nil {
			return nil, err
		}
		row := Table3Row{Q: pair[0], P: pair[1]}
		for i := range AlgoNames {
			env := BuildEnv(pPts, qPts, DefaultPageSize, DefaultBufferPct)
			var pairs int64
			opts := countOnly()
			opts.OnPair = func(core.Pair) { pairs++ }
			res := runAlgo(i, env, opts)
			setAlgoIOTable3(&row, i, res.Stats.PageAccesses())
			row.Pairs = pairs
			row.LB = env.LowerBound()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func setAlgoIO(row *SweepRow, i int, io int64) {
	switch i {
	case 0:
		row.FM = io
	case 1:
		row.PM = io
	default:
		row.NM = io
	}
}

func setAlgoIOTable3(row *Table3Row, i int, io int64) {
	switch i {
	case 0:
		row.FM = io
	case 1:
		row.PM = io
	default:
		row.NM = io
	}
}
