package exp

import (
	"math/rand"
	"time"

	"cij/internal/dataset"
	"cij/internal/rtree"
	"cij/internal/storage"
	"cij/internal/voronoi"
)

// Fig5Row is one query of the Fig. 5 experiment: node accesses and CPU of
// a single Voronoi-cell computation, for the multi-traversal baseline
// TP-VOR and the paper's single-traversal BF-VOR.
type Fig5Row struct {
	Query     int
	TPNodes   int64
	BFNodes   int64
	TPCPU     time.Duration
	BFCPU     time.Duration
	TPProbes  int // separate traversals issued by TP-VOR
	CellVerts int
}

// Fig5Result aggregates the individual-query measurements of Fig. 5.
type Fig5Result struct {
	N       int
	Queries []Fig5Row
}

// Means returns the average node accesses of both methods.
func (r Fig5Result) Means() (tp, bf float64) {
	if len(r.Queries) == 0 {
		return 0, 0
	}
	var st, sb int64
	for _, q := range r.Queries {
		st += q.TPNodes
		sb += q.BFNodes
	}
	n := float64(len(r.Queries))
	return float64(st) / n, float64(sb) / n
}

// RunFig5 reproduces Fig. 5: the cost of computing the Voronoi cells of
// `queries` points randomly chosen from a uniform dataset of n points,
// comparing TP-VOR [10] against BF-VOR (Algorithm 1). Node accesses are
// logical (the experiment is bufferless, as in the paper).
func RunFig5(n, queries int, seed int64) Fig5Result {
	pts := dataset.Uniform(n, seed)
	disk := storage.NewDisk(DefaultPageSize)
	buf := storage.NewBuffer(disk, 0) // no buffer: node accesses = physical
	tree := rtree.BulkLoadPoints(buf, pts, Domain, 1)
	rng := rand.New(rand.NewSource(seed + 1))

	res := Fig5Result{N: n}
	for qi := 0; qi < queries; qi++ {
		idx := rng.Intn(len(pts))
		site := voronoi.Site{ID: int64(idx), Pt: pts[idx]}

		buf.ResetStats()
		start := time.Now()
		cell, stats := voronoi.TPVor(tree, site, Domain, 1000)
		tpCPU := time.Since(start)
		tpNodes := buf.Stats().LogicalReads

		buf.ResetStats()
		start = time.Now()
		cellBF := voronoi.BFVor(tree, site, Domain)
		bfCPU := time.Since(start)
		bfNodes := buf.Stats().LogicalReads

		_ = cell
		res.Queries = append(res.Queries, Fig5Row{
			Query:     qi,
			TPNodes:   tpNodes,
			BFNodes:   bfNodes,
			TPCPU:     tpCPU,
			BFCPU:     bfCPU,
			TPProbes:  stats.Traversals,
			CellVerts: len(cellBF.V),
		})
	}
	return res
}

// Fig6Row is one datasize point of Fig. 6: page accesses and CPU of
// full-diagram computation with ITER and BATCH, against the LB of one tree
// traversal.
type Fig6Row struct {
	N        int
	IterIO   int64
	BatchIO  int64
	LB       int64
	IterCPU  time.Duration
	BatchCPU time.Duration
}

// RunFig6 reproduces Fig. 6: Voronoi diagram computation cost as a
// function of the datasize, with an LRU buffer of bufferPct% of the tree
// size (the paper uses 2%; at paper scale that is ~100 pages — scaled-down
// runs should raise the percentage to keep the same absolute buffer).
func RunFig6(sizes []int, bufferPct float64, seed int64) []Fig6Row {
	var rows []Fig6Row
	for _, n := range sizes {
		pts := dataset.Uniform(n, seed)
		disk := storage.NewDisk(DefaultPageSize)
		buf := storage.NewBuffer(disk, 1<<30)
		tree := rtree.BulkLoadPoints(buf, pts, Domain, 1)
		pages := tree.NumPages()
		bufPages := int(float64(pages) * bufferPct / 100)
		if bufPages < 1 {
			bufPages = 1
		}
		buf.SetCapacity(bufPages)

		row := Fig6Row{N: n, LB: int64(pages)}

		buf.DropAll()
		buf.ResetStats()
		start := time.Now()
		voronoi.ComputeDiagramIter(tree, Domain, func(voronoi.Cell) {})
		row.IterCPU = time.Since(start)
		row.IterIO = buf.Stats().PageAccesses()

		buf.DropAll()
		buf.ResetStats()
		start = time.Now()
		voronoi.ComputeDiagramBatch(tree, Domain, func(voronoi.Cell) {})
		row.BatchCPU = time.Since(start)
		row.BatchIO = buf.Stats().PageAccesses()

		rows = append(rows, row)
	}
	return rows
}

// Table2Row is one dataset of Table II: BATCH diagram computation on a
// real-like dataset.
type Table2Row struct {
	Name    string
	N       int
	Pages   int64
	CPU     time.Duration
	TreeP   int // pages of the input tree (context; not in the paper table)
	Cells   int
	AvgArea float64
}

// RunTable2 reproduces Table II on the clustered stand-ins for the five
// geonames datasets, at the given scale (1 = paper cardinalities).
func RunTable2(scale float64, _ int64) ([]Table2Row, error) {
	var rows []Table2Row
	for _, d := range dataset.RealDatasets {
		pts, err := dataset.RealLike(d.Name, scale)
		if err != nil {
			return nil, err
		}
		disk := storage.NewDisk(DefaultPageSize)
		buf := storage.NewBuffer(disk, 1<<30)
		tree := rtree.BulkLoadPoints(buf, pts, Domain, 1)
		pages := tree.NumPages()
		bufPages := pages * 2 / 100
		if bufPages < 1 {
			bufPages = 1
		}
		buf.SetCapacity(bufPages)
		buf.DropAll()
		buf.ResetStats()

		start := time.Now()
		cells := 0
		var areaSum float64
		voronoi.ComputeDiagramBatch(tree, Domain, func(c voronoi.Cell) {
			cells++
			areaSum += c.Poly.Area()
		})
		cpu := time.Since(start)

		rows = append(rows, Table2Row{
			Name:  d.Name,
			N:     len(pts),
			Pages: buf.Stats().PageAccesses(),
			CPU:   cpu,
			TreeP: pages,
			Cells: cells,
			AvgArea: func() float64 {
				if cells == 0 {
					return 0
				}
				return areaSum / float64(cells)
			}(),
		})
	}
	return rows, nil
}
