// Package exp is the experiment harness: one entry point per table and
// figure of the paper's evaluation (Section V), each regenerating the
// corresponding rows/series with this repository's implementations.
// cmd/cijbench drives them at paper scale; bench_test.go at reduced scale.
//
// Defaults follow Section V: domain [0,10000]², 1 KB pages, |P| = |Q| =
// 100K uniform points, LRU buffer = 2% of the data size on disk, 10 ms
// charged per physical page access.
package exp

import (
	"math"
	"time"

	"cij/internal/dataset"
	"cij/internal/geom"
	"cij/internal/rtree"
	"cij/internal/storage"
)

// Defaults of the experimental section.
const (
	DefaultPageSize  = storage.DefaultPageSize
	DefaultBufferPct = 2.0
	DefaultN         = 100_000
	// PageAccessCost is the charged cost per random page access used in
	// the paper's I/O-vs-CPU discussion ("if we charge a typical 10ms for
	// each random disk page access").
	PageAccessCost = 10 * time.Millisecond
)

// Domain is the normalized experiment domain.
var Domain = dataset.Domain

// Env is one experimental setup: two point R-trees sharing a disk and an
// LRU buffer sized as a percentage of the data size on disk.
type Env struct {
	Buf *storage.Buffer
	RP  *rtree.Tree
	RQ  *rtree.Tree
	// DataPages is the page count of the two input trees (the "data size
	// on disk" that buffer percentages refer to).
	DataPages int

	// Flat-mode lazies (Flat): the two trees frozen onto one shared stats
	// ledger, mirroring the paged setup's single shared buffer so
	// collectors that meter RP's buffer see the combined node accesses.
	flatRP, flatRQ *rtree.Tree
	flatLedger     *storage.Buffer
}

// BuildEnv indexes p and q on a fresh simulated disk and sizes the buffer
// to bufferPct% of the resulting data pages. Counters are reset and the
// cache dropped, so measurements start cold.
func BuildEnv(p, q []geom.Point, pageSize int, bufferPct float64) *Env {
	disk := storage.NewDisk(pageSize)
	// Build with an unbounded-ish buffer; measurement capacity is set
	// afterwards, once the data size is known.
	buf := storage.NewBuffer(disk, 1<<30)
	rp := rtree.BulkLoadPoints(buf, p, Domain, 1)
	rq := rtree.BulkLoadPoints(buf, q, Domain, 1)
	env := &Env{Buf: buf, RP: rp, RQ: rq}
	env.DataPages = rp.NumPages() + rq.NumPages()
	env.SetBufferPct(bufferPct)
	env.Reset()
	return env
}

// SetBufferPct resizes the LRU buffer to pct% of the data pages (at least
// one page unless pct is zero).
func (e *Env) SetBufferPct(pct float64) {
	pages := int(math.Ceil(float64(e.DataPages) * pct / 100))
	if pct > 0 && pages < 1 {
		pages = 1
	}
	e.Buf.SetCapacity(pages)
}

// Reset drops the cache and zeroes counters: the next measurement starts
// cold. The flat ledger (when Flat has been called) is zeroed too.
func (e *Env) Reset() {
	e.Buf.DropAll()
	e.Buf.ResetStats()
	if e.flatLedger != nil {
		e.flatLedger.ResetStats()
	}
}

// Flat returns the environment's two trees in flat (arena-resident) form,
// frozen on first use onto ONE shared stats ledger — the flat analogue of
// the paged setup's single shared buffer, so algorithms that meter RP's
// buffer capture the node accesses of both trees, exactly as they do in
// paged mode. Freezing reads through the paged buffer, so the paged cache
// is dropped and both stat sets zeroed afterwards: whichever mode runs
// next starts cold.
func (e *Env) Flat() (rp, rq *rtree.Tree) {
	if e.flatRP == nil {
		ledger := storage.NewFlatLedger(e.Buf.Disk())
		e.flatRP = e.RP.FreezeWith(ledger)
		e.flatRQ = e.RQ.FreezeWith(ledger)
		e.flatLedger = ledger
		e.Reset()
	}
	return e.flatRP, e.flatRQ
}

// LowerBound returns the LB of the paper's CIJ plots: the I/O cost of
// traversing both input trees exactly once. Footnote 3: every point of P
// and Q participates in the result, so any algorithm must visit all of
// both trees.
func (e *Env) LowerBound() int64 {
	return int64(e.DataPages)
}

// ChargedCost converts physical page accesses to charged time under the
// paper's 10 ms/page model and adds the measured CPU time.
func ChargedCost(pages int64, cpu time.Duration) time.Duration {
	return time.Duration(pages)*PageAccessCost + cpu
}
