package exp

import (
	"os"
	"runtime"
	"strings"
)

// HostInfo describes the machine a benchmark document was recorded on.
// Every BENCH_*.json embeds it: the committed performance trajectory is
// meaningless without knowing how much parallelism the host could express
// — a flat speedup curve recorded on one CPU says nothing about the
// engine, and earlier documents omitted exactly that fact.
type HostInfo struct {
	// CPUs is the number of logical CPUs (runtime.NumCPU).
	CPUs int `json:"cpus"`
	// GOMAXPROCS is the effective Go scheduler width at record time.
	GOMAXPROCS int `json:"gomaxprocs"`
	// CPUModel is the processor model string, "unknown" when it cannot be
	// determined.
	CPUModel string `json:"cpu_model"`
}

// Host returns the current machine's HostInfo.
func Host() HostInfo {
	return HostInfo{
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
	}
}

// cpuModel extracts the processor model from /proc/cpuinfo (Linux); other
// platforms report "unknown" — the JSON field stays machine-readable
// either way.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, value, ok := strings.Cut(line, ":"); ok {
			switch strings.TrimSpace(name) {
			case "model name", "Processor", "cpu model":
				return strings.TrimSpace(value)
			}
		}
	}
	return "unknown"
}
