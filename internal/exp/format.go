package exp

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

func formatPct(p float64) string { return strconv.FormatFloat(p, 'g', -1, 64) + "%" }

func formatInt(n int) string { return strconv.Itoa(n) }

// formatK renders a cardinality the way the paper's axes do ("100K").
func formatK(n int) string {
	if n >= 1000 && n%1000 == 0 {
		return strconv.Itoa(n/1000) + "K"
	}
	return strconv.Itoa(n)
}

func formatCPU(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// Table is a rendered experiment table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Fprint writes the table in aligned plain text.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		fmt.Fprintln(w, sb.String())
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, r := range t.Rows {
		printRow(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Table renders the Fig. 5 result as summary statistics plus the first
// queries, mirroring the per-query scatter of the paper's plot.
func (r Fig5Result) Table() Table {
	t := Table{
		Title:   fmt.Sprintf("Fig. 5 — Voronoi cell computation, %d individual queries, n=%s", len(r.Queries), formatK(r.N)),
		Columns: []string{"query", "TP-VOR nodes", "BF-VOR nodes", "TP-VOR cpu", "BF-VOR cpu", "TP probes"},
	}
	for _, q := range r.Queries {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(q.Query),
			strconv.FormatInt(q.TPNodes, 10),
			strconv.FormatInt(q.BFNodes, 10),
			q.TPCPU.String(),
			q.BFCPU.String(),
			strconv.Itoa(q.TPProbes),
		})
	}
	tp, bf := r.Means()
	t.Rows = append(t.Rows, []string{"mean", fmt.Sprintf("%.1f", tp), fmt.Sprintf("%.1f", bf), "", "", ""})
	return t
}

// TableFig6 renders Fig. 6 rows.
func TableFig6(rows []Fig6Row) Table {
	t := Table{
		Title:   "Fig. 6 — Voronoi diagram computation vs datasize (I/O = page accesses, 2% buffer)",
		Columns: []string{"n", "ITER I/O", "BATCH I/O", "LB", "ITER CPU", "BATCH CPU"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			formatK(r.N),
			strconv.FormatInt(r.IterIO, 10),
			strconv.FormatInt(r.BatchIO, 10),
			strconv.FormatInt(r.LB, 10),
			formatCPU(r.IterCPU),
			formatCPU(r.BatchCPU),
		})
	}
	return t
}

// TableT1 renders Table I (the dataset inventory).
func TableT1(rows []Table2Row) Table {
	t := Table{
		Title:   "Table I — datasets (clustered synthetic stand-ins at paper cardinalities)",
		Columns: []string{"dataset", "cardinality"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Name, strconv.Itoa(r.N)})
	}
	return t
}

// TableT2 renders Table II.
func TableT2(rows []Table2Row) Table {
	t := Table{
		Title:   "Table II — BatchVoronoi on real-like datasets",
		Columns: []string{"dataset", "n", "page accesses", "CPU"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Name, strconv.Itoa(r.N),
			strconv.FormatInt(r.Pages, 10),
			formatCPU(r.CPU),
		})
	}
	return t
}

// TableFig7 renders the cost breakdown.
func TableFig7(rows []Fig7Row) Table {
	t := Table{
		Title:   "Fig. 7 — cost breakdown (MAT vs JOIN)",
		Columns: []string{"algorithm", "MAT I/O", "JOIN I/O", "total I/O", "MAT CPU", "JOIN CPU", "pairs"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Algo,
			strconv.FormatInt(r.MatIO, 10),
			strconv.FormatInt(r.JoinIO, 10),
			strconv.FormatInt(r.MatIO+r.JoinIO, 10),
			formatCPU(r.MatCPU),
			formatCPU(r.JoinCPU),
			strconv.FormatInt(r.Pairs, 10),
		})
	}
	return t
}

// TableSweep renders a Fig. 8/9a-style sweep.
func TableSweep(title, xlabel string, rows []SweepRow) Table {
	t := Table{
		Title:   title,
		Columns: []string{xlabel, "FM-CIJ", "PM-CIJ", "NM-CIJ", "LB"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.X,
			strconv.FormatInt(r.FM, 10),
			strconv.FormatInt(r.PM, 10),
			strconv.FormatInt(r.NM, 10),
			strconv.FormatInt(r.LB, 10),
		})
	}
	return t
}

// TableFig9b renders the progressiveness curves, downsampled.
func TableFig9b(res Fig9bResult) Table {
	t := Table{
		Title:   "Fig. 9b — output progress (pairs produced vs page accesses)",
		Columns: []string{"algorithm", "25% I/O", "50% I/O", "75% I/O", "100% I/O"},
	}
	for i, name := range AlgoNames {
		curve := res.Curves[i]
		if len(curve) == 0 {
			t.Rows = append(t.Rows, []string{name, "-", "-", "-", "-"})
			continue
		}
		total := curve[len(curve)-1].PageAccesses
		row := []string{name}
		for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
			target := int64(float64(total) * frac)
			var pairs int64
			for _, pt := range curve {
				if pt.PageAccesses <= target {
					pairs = pt.Pairs
				}
			}
			row = append(row, strconv.FormatInt(pairs, 10))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// TableFig10 renders a false-hit-ratio sweep.
func TableFig10(title, xlabel string, rows []Fig10Row) Table {
	t := Table{
		Title:   title,
		Columns: []string{xlabel, "false hit ratio", "candidates", "true hits"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.X,
			fmt.Sprintf("%.4f", r.FHR),
			strconv.FormatInt(r.Candidates, 10),
			strconv.FormatInt(r.TrueHits, 10),
		})
	}
	return t
}

// TableFig11 renders a reuse-ablation sweep.
func TableFig11(title, xlabel string, rows []Fig11Row) Table {
	t := Table{
		Title:   title,
		Columns: []string{xlabel, "REUSE cells", "NO-REUSE cells", "|P|"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.X,
			strconv.FormatInt(r.Reuse, 10),
			strconv.FormatInt(r.NoReuse, 10),
			strconv.FormatInt(r.SizeP, 10),
		})
	}
	return t
}

// TableScal renders the parallel scalability experiment.
func TableScal(rows []ScalRow) Table {
	t := Table{
		Title: fmt.Sprintf("Scalability — partitioned NM-CIJ wall-clock vs workers (%d CPUs available)",
			NumCPUForScal()),
		Columns: []string{"dataset", "workers", "wall", "speedup", "page accesses", "pairs"},
	}
	for _, r := range rows {
		workers := "serial"
		if r.Workers > 0 {
			workers = strconv.Itoa(r.Workers)
		}
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			workers,
			r.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", r.Speedup),
			strconv.FormatInt(r.IO, 10),
			strconv.FormatInt(r.Pairs, 10),
		})
	}
	return t
}

// TableT3 renders Table III.
func TableT3(rows []Table3Row) Table {
	t := Table{
		Title:   "Table III — result size and page accesses on real-like dataset pairs",
		Columns: []string{"Q", "P", "CIJ pairs", "FM-CIJ", "PM-CIJ", "NM-CIJ", "LB"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Q, r.P,
			strconv.FormatInt(r.Pairs, 10),
			strconv.FormatInt(r.FM, 10),
			strconv.FormatInt(r.PM, 10),
			strconv.FormatInt(r.NM, 10),
			strconv.FormatInt(r.LB, 10),
		})
	}
	return t
}
