package exp

import (
	"testing"

	"cij/internal/core"
	"cij/internal/dataset"
)

// BenchmarkNMProfile exists to profile NM-CIJ hotspots:
//
//	go test ./internal/exp -bench NMProfile -benchtime 1x -cpuprofile cpu.out
func BenchmarkNMProfile(b *testing.B) {
	p := dataset.Uniform(30000, 1)
	q := dataset.Uniform(30000, 2)
	for i := 0; i < b.N; i++ {
		env := BuildEnv(p, q, DefaultPageSize, DefaultBufferPct)
		core.NMCIJ(env.RP, env.RQ, Domain, core.Options{Reuse: true})
	}
}
