package exp

import (
	"bytes"
	"strings"
	"testing"

	"cij/internal/dataset"
)

// The exp tests run every experiment at a drastically reduced scale and
// assert the paper's qualitative findings (the "shape" of each figure),
// not absolute numbers.

func TestFig5ShapeBFBeatsTP(t *testing.T) {
	res := RunFig5(20000, 30, 1)
	if len(res.Queries) != 30 {
		t.Fatalf("queries = %d", len(res.Queries))
	}
	tp, bf := res.Means()
	if bf <= 0 || tp <= 0 {
		t.Fatal("zero node accesses recorded")
	}
	if bf >= tp {
		t.Errorf("Fig5 shape: BF-VOR (%.1f) should beat TP-VOR (%.1f)", bf, tp)
	}
	// BF-VOR's stability claim: its per-query spread stays moderate.
	minB, maxB := res.Queries[0].BFNodes, res.Queries[0].BFNodes
	for _, q := range res.Queries {
		if q.BFNodes < minB {
			minB = q.BFNodes
		}
		if q.BFNodes > maxB {
			maxB = q.BFNodes
		}
	}
	if maxB > 12*minB {
		t.Errorf("BF-VOR unstable: min %d max %d", minB, maxB)
	}
}

func TestFig6ShapeNearLB(t *testing.T) {
	// The paper's 2% buffer at 100K points is ~100 pages; at the reduced
	// test scale we keep the buffer-to-tree ratio equivalent (40% of a
	// 250-page tree ≈ the same absolute buffer) so the near-LB shape can
	// emerge.
	rows := RunFig6([]int{5000, 10000}, 40, 2)
	for _, r := range rows {
		if r.IterIO <= 0 || r.BatchIO <= 0 {
			t.Fatalf("n=%d: zero I/O", r.N)
		}
		// ITER and BATCH should be within a small factor of LB.
		if float64(r.BatchIO) > 3*float64(r.LB) {
			t.Errorf("n=%d: BATCH I/O %d too far from LB %d", r.N, r.BatchIO, r.LB)
		}
		// Fig. 6a claim is "similar I/O as LB" for both, not a strict
		// ordering: allow noise-level differences.
		if float64(r.BatchIO) > 1.15*float64(r.IterIO) {
			t.Errorf("n=%d: BATCH (%d) clearly worse than ITER (%d)", r.N, r.BatchIO, r.IterIO)
		}
	}
	// I/O grows with datasize.
	if rows[1].BatchIO <= rows[0].BatchIO {
		t.Error("I/O should grow with datasize")
	}
	// Fig. 6b claim: the CPU gap favors BATCH and widens with n. Allow
	// generous slack; timing noise must not flake the suite.
	if rows[1].BatchCPU > rows[1].IterCPU*3/2 {
		t.Errorf("BATCH CPU (%v) should not exceed ITER CPU (%v) at the larger size",
			rows[1].BatchCPU, rows[1].IterCPU)
	}
}

func TestTable2RunsOnAllDatasets(t *testing.T) {
	rows, err := RunTable2(0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(dataset.RealDatasets) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Cells != r.N {
			t.Errorf("%s: %d cells for %d points", r.Name, r.Cells, r.N)
		}
		if r.Pages <= 0 {
			t.Errorf("%s: no I/O recorded", r.Name)
		}
	}
}

func TestFig7ShapeNMSavesMaterialization(t *testing.T) {
	rows := RunFig7(4000, 4)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	fm, pm, nm := rows[0], rows[1], rows[2]
	if nm.MatIO != 0 {
		t.Error("NM-CIJ must have zero MAT I/O")
	}
	if fm.MatIO <= pm.MatIO {
		t.Error("FM materializes two trees, PM one: FM MAT should exceed PM MAT")
	}
	total := func(r Fig7Row) int64 { return r.MatIO + r.JoinIO }
	if !(total(nm) < total(pm) && total(pm) < total(fm)) {
		t.Errorf("I/O ordering violated: FM=%d PM=%d NM=%d", total(fm), total(pm), total(nm))
	}
	// All three compute the same number of pairs.
	if fm.Pairs != pm.Pairs || pm.Pairs != nm.Pairs {
		t.Errorf("pair counts diverge: %d %d %d", fm.Pairs, pm.Pairs, nm.Pairs)
	}
}

func TestFig8aShapeBufferHelps(t *testing.T) {
	// Buffer percentages are scaled up to match the paper's absolute
	// buffer size at this reduced datasize (see TestFig6ShapeNearLB).
	rows := RunFig8a(3000, []float64{2, 50}, 5)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More buffer, less I/O (or equal) — for every algorithm.
	if rows[1].NM > rows[0].NM || rows[1].PM > rows[0].PM || rows[1].FM > rows[0].FM {
		t.Errorf("larger buffer increased I/O: %+v vs %+v", rows[1], rows[0])
	}
	// NM close to LB at a buffer matching the paper's absolute size.
	if float64(rows[1].NM) > 2.5*float64(rows[1].LB) {
		t.Errorf("NM (%d) should approach LB (%d) with a paper-equivalent buffer", rows[1].NM, rows[1].LB)
	}
}

func TestFig8bShapeScales(t *testing.T) {
	rows := RunFig8b([]int{2000, 4000}, 6)
	if rows[1].NM <= rows[0].NM {
		t.Error("NM I/O should grow with datasize")
	}
	for _, r := range rows {
		if !(r.NM < r.PM && r.PM < r.FM) {
			t.Errorf("ordering violated at %s: FM=%d PM=%d NM=%d", r.X, r.FM, r.PM, r.NM)
		}
		if r.NM < r.LB {
			t.Errorf("NM (%d) below LB (%d)?", r.NM, r.LB)
		}
	}
}

func TestFig9aShapeRatios(t *testing.T) {
	rows := RunFig9a(6000, []Ratio{{1, 2}, {2, 1}}, 7)
	for _, r := range rows {
		if !(r.NM <= r.PM && r.PM <= r.FM) {
			t.Errorf("ordering violated at ratio %s: FM=%d PM=%d NM=%d", r.X, r.FM, r.PM, r.NM)
		}
	}
	// PM materializes Vor(P): smaller |P| (ratio 2:1) must cost PM less
	// materialization than larger |P| (ratio 1:2).
	if rows[1].PM >= rows[0].PM {
		t.Errorf("PM should get cheaper as |P| shrinks: 1:2→%d 2:1→%d", rows[0].PM, rows[1].PM)
	}
}

func TestFig9bShapeProgressive(t *testing.T) {
	res := RunFig9b(3000, 8)
	nm := res.Curves[2]
	if len(nm) < 4 {
		t.Fatalf("NM curve too sparse: %d", len(nm))
	}
	total := nm[len(nm)-1]
	// NM must have produced a sizable fraction of pairs by half its I/O.
	var atHalf int64
	for _, pt := range nm {
		if pt.PageAccesses <= total.PageAccesses/2 {
			atHalf = pt.Pairs
		}
	}
	if atHalf == 0 {
		t.Error("NM-CIJ produced nothing by half of its I/O")
	}
	// FM produces nothing until materialization is over: its first sample
	// (post-MAT) carries 0 pairs at substantial I/O.
	fm := res.Curves[0]
	if len(fm) == 0 || fm[0].Pairs != 0 || fm[0].PageAccesses == 0 {
		t.Errorf("FM should be blocking; first sample %+v", fm[0])
	}
}

func TestFig10ShapeLowFHR(t *testing.T) {
	rows := RunFig10a([]int{3000}, 9)
	if rows[0].FHR > 0.5 {
		t.Errorf("FHR %v too high", rows[0].FHR)
	}
	rb := RunFig10b(6000, []Ratio{{1, 4}, {4, 1}}, 10)
	// Small |Q|:|P| (many P points) has higher FHR than large ratio.
	if rb[0].FHR < rb[1].FHR {
		t.Logf("note: FHR ordering across ratios %v vs %v (paper predicts decreasing)", rb[0].FHR, rb[1].FHR)
	}
	for _, r := range rb {
		if r.FHR < 0 {
			t.Errorf("negative FHR %v", r.FHR)
		}
	}
}

func TestFig11ShapeReuseSaves(t *testing.T) {
	rows := RunFig11a([]int{3000}, 11)
	r := rows[0]
	if r.Reuse >= r.NoReuse {
		t.Errorf("reuse (%d) should compute fewer cells than no-reuse (%d)", r.Reuse, r.NoReuse)
	}
	if r.Reuse < r.SizeP {
		t.Errorf("cells computed (%d) below |P| (%d)?", r.Reuse, r.SizeP)
	}
}

func TestTable3RunsOnAllPairs(t *testing.T) {
	rows, err := RunTable3(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table3Pairs) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Pairs <= 0 {
			t.Errorf("%s⋈%s: empty join", r.Q, r.P)
		}
		if !(r.NM < r.PM && r.PM < r.FM) {
			t.Errorf("%s⋈%s: ordering violated FM=%d PM=%d NM=%d", r.Q, r.P, r.FM, r.PM, r.NM)
		}
	}
}

func TestTablesRender(t *testing.T) {
	var buf bytes.Buffer
	res := RunFig5(2000, 3, 12)
	res.Table().Fprint(&buf)
	TableFig6(RunFig6([]int{2000}, 2, 13)).Fprint(&buf)
	rows7 := RunFig7(1500, 14)
	TableFig7(rows7).Fprint(&buf)
	TableSweep("Fig8a", "buffer", RunFig8a(1500, []float64{2}, 15)).Fprint(&buf)
	TableFig9b(RunFig9b(1500, 16)).Fprint(&buf)
	TableFig10("Fig10a", "n", RunFig10a([]int{1500}, 17)).Fprint(&buf)
	TableFig11("Fig11a", "n", RunFig11a([]int{1500}, 18)).Fprint(&buf)
	t2, err := RunTable2(0.005, 19)
	if err != nil {
		t.Fatal(err)
	}
	TableT1(t2).Fprint(&buf)
	TableT2(t2).Fprint(&buf)
	t3, err := RunTable3(0.005)
	if err != nil {
		t.Fatal(err)
	}
	TableT3(t3).Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"Fig. 5", "Fig. 6", "Fig. 7", "Fig8a", "Fig. 9b", "Fig10a", "Fig11a", "Table I", "Table II", "Table III"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
	if strings.Contains(out, "%!") {
		t.Error("formatting verb error in rendered output")
	}
}

func TestEnvHelpers(t *testing.T) {
	p := dataset.Uniform(500, 20)
	q := dataset.Uniform(500, 21)
	env := BuildEnv(p, q, DefaultPageSize, 2)
	if env.DataPages <= 0 {
		t.Fatal("no data pages")
	}
	if env.LowerBound() != int64(env.DataPages) {
		t.Error("LB should equal data pages")
	}
	if env.Buf.Capacity() < 1 {
		t.Error("2% buffer should have at least one page")
	}
	env.SetBufferPct(0)
	if env.Buf.Capacity() != 0 {
		t.Error("0% buffer should disable caching")
	}
	if got := ChargedCost(100, 0); got != 100*PageAccessCost {
		t.Errorf("ChargedCost = %v", got)
	}
}

func TestRatioSplit(t *testing.T) {
	r := Ratio{1, 4}
	nq, np := r.Split(200000)
	if nq != 40000 || np != 160000 {
		t.Errorf("split = %d,%d", nq, np)
	}
	if r.Label() != "1:4" {
		t.Errorf("label = %s", r.Label())
	}
}
