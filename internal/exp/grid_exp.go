// The grid crossover experiment (cijbench -exp grid): the partitioned
// in-memory backend of internal/grid against serial NM-CIJ on the same
// pointsets, across cardinalities and distributions. It extends the
// paper's evaluation with the question the ROADMAP's multi-backend goal
// raises — when does partition-based in-memory evaluation beat index
// traversal? — and records the answer machine-readably in BENCH_grid.json
// so the planner's routing thresholds stay anchored to measurements.
package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"cij/internal/core"
	"cij/internal/dataset"
	"cij/internal/geom"
	"cij/internal/grid"
)

// DefaultGridSizes is the cardinality sweep of the crossover experiment
// (per side, before -scale).
var DefaultGridSizes = []int{2_000, 10_000, 40_000, 100_000}

// GridDistributions names the pointset distributions the crossover runs
// on: the near-uniform case the grid backend is built for, the ordinary
// clustered case that stresses its tiling but still favors it, and the
// near-point-mass case (one tight Gaussian) where the uniform grid
// degenerates toward quadratic and NM-CIJ wins — the regime behind the
// planner's skew gate.
var GridDistributions = []string{"uniform", "clustered", "pointmass"}

// GridRow is one (distribution, cardinality) cell of the crossover sweep.
type GridRow struct {
	Dist  string  `json:"dist"`
	N     int     `json:"n"`
	Pairs int64   `json:"pairs"`
	Skew  float64 `json:"skew"` // planner's estimate on the P side
	// Wall-clock milliseconds of each backend on identical inputs.
	GridMS float64 `json:"grid_ms"`
	NMMS   float64 `json:"nm_ms"`
	// Speedup is NM/grid wall time: > 1 where the in-memory backend wins.
	Speedup float64 `json:"speedup"`
	// NMPages is NM-CIJ's physical I/O (the grid backend performs none).
	NMPages int64 `json:"nm_pages"`
}

// genGridSet materializes one side of a crossover input.
func genGridSet(dist string, n int, seed int64) []geom.Point {
	switch dist {
	case "clustered":
		return dataset.Clustered(n, 1+n/1500, seed)
	case "pointmass":
		// One tight Gaussian at the domain center: virtually all points
		// share a handful of grid tiles (skew estimate ~60).
		rng := rand.New(rand.NewSource(seed))
		pts := make([]geom.Point, n)
		c := Domain.Center()
		for i := range pts {
			pts[i] = geom.Pt(
				geom.Clamp(c.X+rng.NormFloat64()*100, Domain.MinX, Domain.MaxX),
				geom.Clamp(c.Y+rng.NormFloat64()*100, Domain.MinY, Domain.MaxY))
		}
		return pts
	default:
		return dataset.Uniform(n, seed)
	}
}

// RunGridCrossover measures grid vs NM-CIJ over sizes × distributions.
// Both backends run with pair collection off and a counting OnPair, so
// the comparison is pure evaluation cost.
func RunGridCrossover(sizes []int, bufferPct float64, seed int64) []GridRow {
	var rows []GridRow
	for _, dist := range GridDistributions {
		for _, n := range sizes {
			p := genGridSet(dist, n, seed)
			q := genGridSet(dist, n, seed+1)

			gOpts := grid.DefaultOptions()
			gOpts.CollectPairs = false
			var gridPairs int64
			gOpts.OnPair = func(core.Pair) { gridPairs++ }
			gridStart := time.Now()
			grid.Join(p, q, Domain, gOpts)
			gridWall := time.Since(gridStart)

			env := BuildEnv(p, q, DefaultPageSize, bufferPct)
			nOpts := core.DefaultOptions()
			nOpts.CollectPairs = false
			var nmPairs int64
			nOpts.OnPair = func(core.Pair) { nmPairs++ }
			nmStart := time.Now()
			nmRes := core.NMCIJ(env.RP, env.RQ, Domain, nOpts)
			nmWall := time.Since(nmStart)

			if gridPairs != nmPairs {
				// The equivalence suite guards this; a drift here means the
				// benchmark itself is broken, so fail loudly rather than
				// record garbage.
				panic(fmt.Sprintf("exp: grid/%s n=%d produced %d pairs, NM %d", dist, n, gridPairs, nmPairs))
			}
			row := GridRow{
				Dist:    dist,
				N:       n,
				Pairs:   gridPairs,
				Skew:    grid.SkewEstimate(p, Domain),
				GridMS:  float64(gridWall) / float64(time.Millisecond),
				NMMS:    float64(nmWall) / float64(time.Millisecond),
				NMPages: nmRes.Stats.PageAccesses(),
			}
			if row.GridMS > 0 {
				row.Speedup = row.NMMS / row.GridMS
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// TableGrid renders the crossover sweep.
func TableGrid(rows []GridRow) Table {
	t := Table{
		Title:   "Grid backend vs NM-CIJ — wall clock by distribution and cardinality",
		Columns: []string{"dist", "n", "skew", "pairs", "grid ms", "nm ms", "nm/grid", "nm pages"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Dist, formatK(r.N),
			fmt.Sprintf("%.2f", r.Skew),
			fmt.Sprintf("%d", r.Pairs),
			fmt.Sprintf("%.1f", r.GridMS),
			fmt.Sprintf("%.1f", r.NMMS),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%d", r.NMPages),
		})
	}
	return t
}

// WriteGridJSON writes the crossover rows as the BENCH_grid.json document.
func WriteGridJSON(w io.Writer, rows []GridRow, scale float64) error {
	doc := struct {
		Date  string    `json:"date"`
		Host  HostInfo  `json:"host"`
		Scale float64   `json:"scale"`
		Rows  []GridRow `json:"rows"`
	}{
		Date:  time.Now().UTC().Format(time.RFC3339),
		Host:  Host(),
		Scale: scale,
		Rows:  rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
