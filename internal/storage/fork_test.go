package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// seededDisk writes n distinguishable pages through a throwaway buffer and
// returns that buffer (capacity cap).
func seededDisk(n, cap int) *Buffer {
	buf := NewBuffer(NewDisk(64), cap)
	for i := 0; i < n; i++ {
		id := buf.Alloc()
		buf.Write(id, []byte(fmt.Sprintf("page-%d", id)))
	}
	return buf
}

// TestForkIsolation: a fork starts empty (cold cache, zeroed counters) and
// its traffic never shows up in the parent's counters or cache.
func TestForkIsolation(t *testing.T) {
	base := seededDisk(8, 8)
	base.ResetStats()
	fork := base.Fork(4)
	if got := fork.Stats(); got != (Stats{}) {
		t.Fatalf("fork counters = %+v, want zero", got)
	}
	if fork.Capacity() != 4 {
		t.Fatalf("fork capacity = %d, want 4", fork.Capacity())
	}
	for id := 0; id < 8; id++ {
		if fork.Contains(PageID(id)) {
			t.Fatalf("fork born with page %d cached", id)
		}
		fork.Read(PageID(id))
	}
	if got := fork.Stats(); got.LogicalReads != 8 || got.PageReads != 8 {
		t.Fatalf("fork stats after cold scan = %+v", got)
	}
	if got := base.Stats(); got != (Stats{}) {
		t.Fatalf("fork traffic leaked into parent counters: %+v", got)
	}
	// Parent kept its own cache: pages written above are still hits.
	base.Read(PageID(0))
	if got := base.Stats(); got.PageReads != 0 {
		t.Fatalf("parent lost its cache to the fork: %+v", got)
	}
}

// TestConcurrentForks is the contract the parallel engine and the query
// service lean on: any number of goroutines may Fork the same buffer and
// read (and resize) their private forks concurrently, as long as nobody
// allocates or writes pages. Run under -race this guards the lock-free
// sharing design.
func TestConcurrentForks(t *testing.T) {
	const pages, workers, rounds = 64, 8, 4
	base := seededDisk(pages, pages)

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				fork := base.Fork(1 + w%5)
				order := rng.Perm(pages)
				for i, id := range order {
					// Resize mid-scan: shrink then grow, exercising
					// evictOverflow under live traffic.
					if i == pages/2 {
						fork.SetCapacity(1)
						fork.SetCapacity(2 + w)
					}
					// Pages are fixed-size and zero-padded; compare content.
					got := string(bytes.TrimRight(fork.Read(PageID(id)), "\x00"))
					if want := fmt.Sprintf("page-%d", id); got != want {
						errs <- fmt.Errorf("worker %d: page %d = %q, want %q", w, id, got, want)
						return
					}
				}
				s := fork.Stats()
				if s.LogicalReads != pages {
					errs <- fmt.Errorf("worker %d: logical reads %d, want %d", w, s.LogicalReads, pages)
					return
				}
				if s.PageReads < int64(pages)-int64(fork.Capacity()) || s.PageReads > pages {
					errs <- fmt.Errorf("worker %d: physical reads %d out of range", w, s.PageReads)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSetCapacityZeroDropsCaching: shrinking to zero evicts everything and
// disables installs, and growing back re-enables caching.
func TestSetCapacityZeroDropsCaching(t *testing.T) {
	buf := seededDisk(4, 4)
	buf.SetCapacity(0)
	for id := 0; id < 4; id++ {
		if buf.Contains(PageID(id)) {
			t.Fatalf("page %d survived SetCapacity(0)", id)
		}
	}
	buf.ResetStats()
	buf.Read(PageID(1))
	buf.Read(PageID(1))
	if got := buf.Stats(); got.PageReads != 2 {
		t.Fatalf("capacity-0 reads = %+v, want 2 physical", got)
	}
	buf.SetCapacity(2)
	buf.Read(PageID(1))
	buf.Read(PageID(1))
	if got := buf.Stats(); got.PageReads != 3 {
		t.Fatalf("after regrow = %+v, want exactly one more physical read", got)
	}
}

// TestForkInheritsOnEvict: an eviction hook installed on a base buffer
// observes evictions from forks created afterwards — the mechanism behind
// the service's cij_buffer_evictions_total counter, which hooks each
// dataset's base buffer and counts across all per-request views.
func TestForkInheritsOnEvict(t *testing.T) {
	base := seededDisk(8, 8)
	var evicted int
	base.SetOnEvict(func(id PageID, decoded any) { evicted++ })

	fork := base.Fork(2) // room for 2 pages: reading 8 evicts 6
	for id := 0; id < 8; id++ {
		fork.Read(PageID(id))
	}
	if evicted != 6 {
		t.Fatalf("evictions observed through fork = %d, want 6", evicted)
	}

	// Removing the hook on the base does not reach into existing forks
	// (the fork copied the function value), but new forks see the change.
	base.SetOnEvict(nil)
	fresh := base.Fork(1)
	for id := 0; id < 4; id++ {
		fresh.Read(PageID(id))
	}
	if evicted != 6 {
		t.Fatalf("hookless fork still reported evictions: %d", evicted)
	}
}
