package storage

import (
	"container/list"
	"fmt"
)

// Stats accumulates the I/O counters reported in the paper's experiments.
type Stats struct {
	// LogicalReads counts node accesses: every page request, hit or miss.
	// Fig. 5 reports this metric (per-query node accesses, no buffer).
	LogicalReads int64
	// PageReads counts physical reads, i.e. buffer misses. Together with
	// PageWrites this is the "page accesses" metric of Figs. 6-9 and
	// Tables II-III.
	PageReads int64
	// PageWrites counts physical page writes (tree materialization cost).
	PageWrites int64
}

// PageAccesses returns the combined physical I/O count.
func (s Stats) PageAccesses() int64 { return s.PageReads + s.PageWrites }

// Sub returns the difference s - o of two counter snapshots, used to
// attribute I/O to phases (MAT vs JOIN in Fig. 7).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		LogicalReads: s.LogicalReads - o.LogicalReads,
		PageReads:    s.PageReads - o.PageReads,
		PageWrites:   s.PageWrites - o.PageWrites,
	}
}

// Add returns the sum of two counter snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		LogicalReads: s.LogicalReads + o.LogicalReads,
		PageReads:    s.PageReads + o.PageReads,
		PageWrites:   s.PageWrites + o.PageWrites,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("logical=%d reads=%d writes=%d", s.LogicalReads, s.PageReads, s.PageWrites)
}

// Buffer is an LRU page cache in front of a Disk. Capacity 0 disables
// caching entirely (every access is physical), which matches the
// buffer-less node-access experiments of Fig. 5.
//
// Writes are write-through: each Write costs one physical page write and
// installs the page in the cache, so materializing an R-tree costs exactly
// its page count in writes (Section III-C: "the I/O cost of tree
// construction is exactly the cost of writing the nodes of R'P to disk").
type Buffer struct {
	disk     *Disk
	capacity int
	stats    Stats

	lru     *list.List               // front = most recently used
	entries map[PageID]*list.Element // page id -> lru element
}

type bufEntry struct {
	id   PageID
	data []byte
}

// NewBuffer creates a buffer over disk with room for capacity pages.
func NewBuffer(disk *Disk, capacity int) *Buffer {
	if capacity < 0 {
		capacity = 0
	}
	return &Buffer{
		disk:     disk,
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[PageID]*list.Element),
	}
}

// Disk returns the underlying disk.
func (b *Buffer) Disk() *Disk { return b.disk }

// Fork returns a fresh, empty buffer over the same disk with the given
// capacity and zeroed counters. A Buffer is single-goroutine state (LRU
// list plus counters), so concurrent readers each Fork their own buffer
// instead of sharing one: Disk reads are safe concurrently as long as no
// page is allocated or written (see the Disk doc), which holds for the
// join phase of the CIJ algorithms — they only read the two input trees.
// Per-fork Stats then attribute I/O to each worker exactly, and summing
// them yields the total physical I/O of a parallel run.
func (b *Buffer) Fork(capacity int) *Buffer { return NewBuffer(b.disk, capacity) }

// Capacity returns the buffer capacity in pages.
func (b *Buffer) Capacity() int { return b.capacity }

// SetCapacity resizes the buffer, evicting least-recently-used pages if it
// shrinks.
func (b *Buffer) SetCapacity(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	b.capacity = capacity
	b.evictOverflow()
}

// Stats returns a snapshot of the I/O counters.
func (b *Buffer) Stats() Stats { return b.stats }

// ResetStats zeroes the I/O counters without touching cached pages.
func (b *Buffer) ResetStats() { b.stats = Stats{} }

// RestoreStats overwrites the counters with a previously captured
// snapshot. Structural bookkeeping (invariant checks, page counting) uses
// it to stay invisible in measured experiments.
func (b *Buffer) RestoreStats(s Stats) { b.stats = s }

// DropAll empties the cache (cold restart) without touching the counters.
func (b *Buffer) DropAll() {
	b.lru.Init()
	b.entries = make(map[PageID]*list.Element)
}

// Read returns the contents of the page, through the cache. The returned
// slice is shared; callers must not modify it.
func (b *Buffer) Read(id PageID) []byte {
	b.stats.LogicalReads++
	if el, ok := b.entries[id]; ok {
		b.lru.MoveToFront(el)
		return el.Value.(*bufEntry).data
	}
	b.stats.PageReads++
	data := b.disk.read(id)
	b.install(id, data)
	return data
}

// Contains reports whether the page is currently cached (no counter
// impact). Used by tests.
func (b *Buffer) Contains(id PageID) bool {
	_, ok := b.entries[id]
	return ok
}

// Write stores data into the page (write-through) and caches it.
func (b *Buffer) Write(id PageID, data []byte) {
	b.stats.PageWrites++
	b.disk.write(id, data)
	if el, ok := b.entries[id]; ok {
		el.Value.(*bufEntry).data = b.disk.read(id)
		b.lru.MoveToFront(el)
		return
	}
	b.install(id, b.disk.read(id))
}

// Alloc allocates a fresh page on the underlying disk. Allocation itself
// is free; the subsequent Write pays the I/O.
func (b *Buffer) Alloc() PageID { return b.disk.Alloc() }

func (b *Buffer) install(id PageID, data []byte) {
	if b.capacity == 0 {
		return
	}
	el := b.lru.PushFront(&bufEntry{id: id, data: data})
	b.entries[id] = el
	b.evictOverflow()
}

func (b *Buffer) evictOverflow() {
	for b.lru.Len() > b.capacity {
		back := b.lru.Back()
		if back == nil {
			return
		}
		b.lru.Remove(back)
		delete(b.entries, back.Value.(*bufEntry).id)
	}
}
